//! Offline drop-in subset of the `proptest` crate API.
//!
//! The build environment has no registry access, so this workspace-local
//! shim implements the slice of `proptest` 1.x the repo uses: the
//! `proptest!` test macro, `prop_assert!`/`prop_assert_eq!`, `any::<T>()`,
//! numeric `Range` strategies, tuple strategies, `collection::vec`, and
//! `prop_map`. Cases are drawn from a deterministic RNG seeded by the
//! test's module path + name, so failures reproduce exactly on re-run.
//! (No shrinking: a failing case reports its inputs via the panic
//! message instead.)

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

pub use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration (subset: case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Error carried by a failing `prop_assert!`.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// A failed-case error with the given reason.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Deterministic per-test RNG.
pub mod test_runner {
    use super::*;

    /// RNG seeded from the test's fully qualified name (FNV-1a), so each
    /// property gets a stable, independent stream.
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        /// Builds the RNG for the named test.
        pub fn for_test(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }
    }
}

use test_runner::TestRng;

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.0.gen::<u64>() % span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.0.gen::<f32>() * (self.end - self.start)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.0.gen::<f64>() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Marker for types generatable by [`any`].
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.0.gen::<u64>() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.0.gen::<bool>()
    }
}

/// Strategy over the full value range of `T`.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Generates any value of `T` (uniform over the whole domain).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Length specification for [`vec`]: an exact `usize` or a
    /// half-open `Range<usize>`.
    pub trait IntoSizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty length range");
            self.start + (rng.0.gen::<u64>() as usize) % (self.end - self.start)
        }
    }

    /// Strategy for `Vec<S::Value>` with a random length.
    pub struct VecStrategy<S, L> {
        elem: S,
        len: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Vector of values from `elem` with length drawn from `len`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(elem: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { elem, len }
    }
}

/// The usual glob import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` running `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let dbg_inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; ",)+),
                    $(&$arg,)+
                );
                let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    { $body }
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "proptest {} failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name),
                        case,
                        cfg.cases,
                        e,
                        dbg_inputs
                    );
                }
            }
        }
    )*};
}

/// Fails the current proptest case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current proptest case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (l, r) = (&$a, &$b);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                l,
                r
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$a, &$b);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Fails the current proptest case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (l, r) = (&$a, &$b);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3i32..17, y in 0.25f32..0.75, n in 0usize..9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&y), "y out of range: {y}");
            prop_assert!(n < 9);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        /// Vec lengths honour both exact and ranged specs; prop_map runs.
        #[test]
        fn vec_and_map_work(
            v in crate::collection::vec(any::<u8>(), 0..33),
            w in crate::collection::vec((0i32..4, 0i32..4), 5),
            s in (1u32..9).prop_map(|b| 1u64 << b),
        ) {
            prop_assert!(v.len() < 33);
            prop_assert_eq!(w.len(), 5);
            prop_assert!(s.is_power_of_two());
            prop_assert_ne!(s, 0);
        }
    }

    #[test]
    fn per_test_streams_are_deterministic() {
        let mut a = crate::test_runner::TestRng::for_test("x::y");
        let mut b = crate::test_runner::TestRng::for_test("x::y");
        let s = 0u64..u64::MAX;
        for _ in 0..32 {
            assert_eq!(
                crate::Strategy::generate(&s, &mut a),
                crate::Strategy::generate(&s, &mut b)
            );
        }
    }
}
