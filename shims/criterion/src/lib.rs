//! Offline drop-in subset of the `criterion` crate API.
//!
//! The build environment has no registry access, so this workspace-local
//! shim provides the slice of `criterion` 0.5 the benches use:
//! `Criterion::default()` + builder knobs, `bench_function` with
//! `Bencher::iter`/`iter_batched`, and the `criterion_group!`/
//! `criterion_main!` macros. It is a real (if simple) benchmark runner:
//! a warm-up phase, then timed samples whose median/mean/min are printed
//! per benchmark. No statistical analysis, plots, or baseline storage.

use std::time::{Duration, Instant};

/// How batched inputs are grouped (accepted for API compatibility; the
/// shim always times per-batch and divides by the batch size).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Runs the closure under timing.
pub struct Bencher<'a> {
    samples: &'a mut Vec<f64>,
    sample_size: usize,
    measurement: Duration,
    warmup: Duration,
}

impl Bencher<'_> {
    /// Times `routine` in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also estimates iterations per sample.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warmup {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.warmup.as_secs_f64() / warm_iters.max(1) as f64;
        let target = self.measurement.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((target / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);

        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(t0.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
    }

    /// Times `routine` over fresh inputs from `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warmup {
            let input = setup();
            std::hint::black_box(routine(input));
            warm_iters += 1;
        }
        let per_iter = self.warmup.as_secs_f64() / warm_iters.max(1) as f64;
        let target = self.measurement.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((target / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);

        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..iters_per_sample).map(|_| setup()).collect();
            let t0 = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            self.samples.push(t0.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
    }
}

/// Benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement: Duration,
    warmup: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement: Duration::from_secs(2),
            warmup: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement time budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement = d;
        self
    }

    /// Warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warmup = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        name: &str,
        mut f: F,
    ) -> &mut Criterion {
        let mut samples = Vec::with_capacity(self.sample_size);
        let mut b = Bencher {
            samples: &mut samples,
            sample_size: self.sample_size,
            measurement: self.measurement,
            warmup: self.warmup,
        };
        f(&mut b);
        if samples.is_empty() {
            println!("{name:<40} (no samples)");
            return self;
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{name:<40} min {:>12} median {:>12} mean {:>12} ({} samples)",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean),
            samples.len()
        );
        self
    }

    /// No-op in the shim (upstream writes reports here).
    pub fn final_summary(&mut self) {}
}

fn fmt_ns(secs: f64) -> String {
    let ns = secs * 1e9;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a benchmark group: a function running each target against a
/// shared `Criterion` config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $($target(&mut c);)+
            c.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares `main` for a bench binary. Under `cargo test` (harness
/// disabled via `harness = false` but still built and run by the test
/// runner) the `--test` flag is honoured by skipping measurement.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench binaries with `--test`; keep that
            // fast by skipping actual measurement.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(10));
        let mut x = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                x = x.wrapping_add(1);
                x
            })
        });
        assert!(x > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_input() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 64],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }
}
