//! Offline drop-in subset of the `rand` crate API.
//!
//! The build environment has no registry access, so this workspace-local
//! shim provides the (small) slice of `rand` 0.8 the repo actually uses:
//! `StdRng::seed_from_u64`, `Rng::gen` for the primitive types, and
//! `gen_range`/`gen_bool`. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic across platforms, which is all the tests
//! and the fault-injection layer rely on. Streams differ from upstream
//! `rand`'s ChaCha-based `StdRng`; nothing in-tree depends on the exact
//! values, only on determinism for a fixed seed.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values drawable uniformly from an `RngCore` (the shim's stand-in for
/// `Standard: Distribution<T>`).
pub trait StandardSample {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] like upstream `rand`.
pub trait Rng: RngCore {
    /// Uniform value of type `T` (matches `rand`'s `Standard` semantics
    /// for the types the repo uses: full-range ints, `[0,1)` floats,
    /// fair `bool`).
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform value in `range` (half-open).
    #[inline]
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (API-compatible stand-in for
    /// `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.gen::<u64>()).collect::<Vec<_>>(),
            (0..8).map(|_| b.gen::<u64>()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let xs: Vec<f64> = (0..1000).map(|_| rng.gen()).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
