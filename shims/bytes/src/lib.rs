//! Offline drop-in subset of the `bytes` crate API.
//!
//! The build environment has no registry access, so this workspace-local
//! shim implements the slice of `bytes` 1.x the repo uses: an Arc-backed
//! immutable [`Bytes`] with cheap `clone`/`slice`, a `Vec`-backed
//! [`BytesMut`] builder, and the [`Buf`]/[`BufMut`] cursor traits for the
//! little-endian accessors the packet codec needs.

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer (shared `Arc<[u8]>` + range).
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Bytes {
        Bytes::from(Vec::new())
    }

    /// Copies `src` into a new buffer.
    pub fn copy_from_slice(src: &[u8]) -> Bytes {
        Bytes::from(src.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-slice sharing the same allocation.
    ///
    /// # Panics
    /// Panics when the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice {lo}..{hi} out of bounds of {}", self.len());
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes { data: Arc::from(v.into_boxed_slice()), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref().iter().take(32) {
            write!(f, "\\x{b:02x}")?;
        }
        if self.len() > 32 {
            write!(f, "..{} bytes", self.len())?;
        }
        write!(f, "\"")
    }
}

/// Growable byte builder that freezes into [`Bytes`].
#[derive(Debug, Default, Clone)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Empty builder with `cap` reserved bytes.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    /// Empty builder.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

/// Read cursor over a byte source (implemented for `&[u8]`: the slice
/// reference itself advances, as in upstream `bytes`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_le_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let c = self.chunk();
        let v = u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        self.advance(8);
        v
    }

    /// Copies `dst.len()` bytes out and advances.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write sink for building packets.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        for _ in 0..cnt {
            self.put_u8(val);
        }
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_integers() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u16_le(0x1234);
        b.put_u8(0x7F);
        b.put_bytes(0, 3);
        b.put_slice(&[1, 2, 3]);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 13);
        let mut cur = &frozen[..];
        assert_eq!(cur.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cur.get_u16_le(), 0x1234);
        assert_eq!(cur.get_u8(), 0x7F);
        cur.advance(3);
        assert_eq!(cur, &[1, 2, 3]);
    }

    #[test]
    fn slice_shares_and_bounds_check() {
        let b = Bytes::from((0u8..100).collect::<Vec<_>>());
        let s = b.slice(10..20);
        assert_eq!(s.len(), 10);
        assert_eq!(s[0], 10);
        let s2 = s.slice(..5);
        assert_eq!(&s2[..], &[10, 11, 12, 13, 14]);
        assert_eq!(b.slice(95..).to_vec(), vec![95, 96, 97, 98, 99]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let b = Bytes::from(vec![0u8; 4]);
        let _ = b.slice(2..10);
    }

    #[test]
    fn equality_and_clone_are_cheap_views() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a, vec![1u8, 2, 3]);
        assert_eq!(a, [1u8, 2, 3][..]);
    }
}
