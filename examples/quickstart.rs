//! Quickstart: push a few frames through the full Agora uplink PHY.
//!
//! Builds a small 8x2 MIMO cell, emulates the RRU (IQ sample generator +
//! AWGN channel), processes the frames with the single-threaded engine,
//! and checks the decoded bits against the generator's ground truth.
//!
//! Run with: `cargo run --release --example quickstart`

use agora_core::{EngineConfig, InlineProcessor};
use agora_fronthaul::{RruConfig, RruEmulator};
use agora_ldpc::ErrorStats;
use agora_phy::CellConfig;

fn main() {
    // 1. Describe the cell: 8 antennas, 2 users, QPSK, rate-1/3 LDPC,
    // 1 pilot + 4 uplink data symbols per frame.
    let cell = CellConfig::tiny_test(4);
    cell.validate().expect("valid cell");
    println!(
        "cell: {}x{} MIMO, {} subcarriers, {:?}, frame = {} symbols ({} us)",
        cell.num_antennas,
        cell.num_users,
        cell.num_data_sc,
        cell.modulation,
        cell.symbols_per_frame(),
        cell.frame_duration_ns() / 1000,
    );

    // 2. Emulated RRU: generates per-antenna IQ packets through an AWGN
    // channel at 25 dB SNR (the paper's emulated setting).
    let mut rru = RruEmulator::new(cell.clone(), RruConfig { snr_db: 25.0, ..Default::default() });

    // 3. The baseband engine (single-threaded deterministic mode).
    let mut cfg = EngineConfig::new(cell.clone(), 1);
    cfg.noise_power = rru.noise_power();
    let mut engine = InlineProcessor::new(cfg);

    // 4. Process frames and score them.
    let mut stats = ErrorStats::new();
    for frame in 0..10u32 {
        let (packets, gt) = rru.generate_frame(frame);
        let result = engine.process_frame(frame, &packets);
        for symbol in cell.schedule.uplink_indices() {
            for user in 0..cell.num_users {
                stats.record(
                    &gt.info_bits[symbol][user],
                    &result.decoded[symbol][user],
                    result.decode_ok[symbol][user],
                );
            }
        }
    }

    println!(
        "processed {} blocks: BER = {:.2e}, BLER = {:.2e}",
        stats.blocks,
        stats.ber(),
        stats.bler()
    );
    println!("uplink MAC rate at this numerology: {:.1} Mbps", cell.uplink_data_rate_bps() / 1e6);
    assert_eq!(stats.bler(), 0.0, "expected error-free decoding at 25 dB");
    println!("all blocks decoded correctly ✓");
}
