//! Downlink beamforming demo: encode -> modulate+precode -> IFFT, then
//! play the transmitted antenna signals through the reciprocal channel
//! and verify each simulated user receives its own (and only its own)
//! stream — the zero-forcing promise.
//!
//! Run with: `cargo run --release --example downlink_beamforming`

use agora_core::{kernels::mac_payload, EngineConfig, InlineProcessor};
use agora_fft::{Direction, FftPlan, SubcarrierMap};
use agora_fronthaul::{RruConfig, RruEmulator};
use agora_ldpc::{DecodeConfig, Decoder};
use agora_math::Cf32;
use agora_phy::demod::demod_soft;
use agora_phy::frame::FrameSchedule;
use agora_phy::CellConfig;

fn main() {
    // 8x2 cell with one pilot and three downlink symbols.
    let mut cell = CellConfig::tiny_test(0);
    cell.schedule = FrameSchedule::parse("PDDD").unwrap();
    cell.validate().expect("valid cell");

    // The RRU still delivers the frame's pilot packets (channel sounding
    // is uplink even in a downlink-heavy TDD frame).
    let mut rru = RruEmulator::new(cell.clone(), RruConfig { snr_db: 40.0, ..Default::default() });
    let mut cfg = EngineConfig::new(cell.clone(), 1);
    cfg.noise_power = 1e-3;
    let mut engine = InlineProcessor::new(cfg);

    let (packets, gt) = rru.generate_frame(0);
    let result = engine.process_frame(0, &packets);

    // Simulated user receivers: r_k = H^T y (TDD reciprocity).
    let map = SubcarrierMap::new(cell.fft_size, cell.num_data_sc);
    let plan = FftPlan::new(cell.fft_size);
    let rm = cell.ldpc.rate_match();
    let mut dec = Decoder::new(cell.ldpc.base_graph, cell.ldpc.z);

    for symbol in cell.schedule.downlink_indices() {
        let mut grids: Vec<Vec<Cf32>> = Vec::new();
        for ant in 0..cell.num_antennas {
            let mut grid = result.dl_time[symbol][ant].clone();
            plan.execute(&mut grid, Direction::Forward);
            grids.push(grid);
        }
        for user in 0..cell.num_users {
            let mut rx = vec![Cf32::ZERO; cell.fft_size];
            for (ant, grid) in grids.iter().enumerate() {
                let h = gt.h[(ant, user)];
                for (acc, &v) in rx.iter_mut().zip(grid.iter()) {
                    *acc = h.mul_add(v, *acc);
                }
            }
            let mut active = vec![Cf32::ZERO; cell.num_data_sc];
            map.demap_symbols(&rx, &mut active);
            // Normalise to unit constellation power (ZF gives c*I).
            let p: f32 = active.iter().map(|z| z.norm_sqr()).sum::<f32>() / active.len() as f32;
            for z in active.iter_mut() {
                *z = z.scale(1.0 / p.sqrt().max(1e-12));
            }
            // EVM against the ideal constellation.
            let mut best_evm = 0.0f32;
            for &z in active.iter().take(64) {
                let v = agora_phy::modulation::unmap_symbol(cell.modulation, z);
                let ideal = agora_phy::modulation::map_symbol(cell.modulation, v);
                best_evm += (z - ideal).norm_sqr();
            }
            let evm = (best_evm / 64.0).sqrt();
            let mut llrs = Vec::new();
            demod_soft(cell.modulation, &active, 0.05, &mut llrs);
            let full = rm.fill_llrs(&llrs[..rm.tx_len()]);
            let out = dec.decode(
                &full,
                &DecodeConfig {
                    max_iters: 20,
                    active_rows: Some(rm.active_rows()),
                    ..Default::default()
                },
            );
            let expected = mac_payload(0, symbol as u32, user as u32, rm.info_len());
            let ok = out.success && out.info_bits == expected;
            println!(
                "symbol {symbol} user {user}: EVM {:.3} ({:.1} dB), decode {}",
                evm,
                -20.0 * evm.log10(),
                if ok { "OK ✓" } else { "FAILED ✗" }
            );
            assert!(ok, "downlink decode failed");
        }
    }
    println!("\nzero-forcing downlink delivered every user's payload ✓");
}
