//! Over-the-air-style BLER sweep (a fast miniature of Figure 9).
//!
//! The paper drives a 64-antenna Skylark Faros array with eight Iris
//! clients indoors (LOS, 17–26 dB SNR) and reports worst-user BLER vs
//! the number of uplink streams. This example substitutes a Rician LOS
//! channel model (DESIGN.md §3, substitution 5) on a reduced cell so it
//! runs in seconds; the full-size sweep is `fig9_bler` in the bench
//! crate.
//!
//! Run with: `cargo run --release --example ota_bler`

use agora_channel::FadingModel;
use agora_core::{EngineConfig, InlineProcessor};
use agora_fronthaul::{RruConfig, RruEmulator};
use agora_ldpc::ErrorStats;
use agora_phy::pilots::PilotScheme;
use agora_phy::{CellConfig, ModScheme};

fn main() {
    println!("users  worst-BLER   blocks  (Rician LOS, K-factor 10 dB, 17-26 dB SNR)");
    for num_users in [1usize, 2, 4] {
        // Reduced OTA-style cell: 16 antennas, 256-FFT, 240 data SCs,
        // time-orthogonal ZC pilots, 16-QAM.
        let mut cell = CellConfig::over_the_air(num_users, 6);
        cell.num_antennas = 16;
        cell.fft_size = 256;
        cell.num_data_sc = 240;
        cell.modulation = ModScheme::Qam16;
        cell.pilot_scheme = PilotScheme::TimeOrthogonal;
        cell.ldpc.z = 26; // 260 info bits -> 780 coded <= 960 capacity
        cell.validate().expect("valid cell");

        let snrs = agora_channel::per_user_snrs(num_users, 17.0, 26.0, 99);
        let offsets: Vec<f32> = snrs.iter().map(|s| s - 26.0).collect();
        let mut rru = RruEmulator::new(
            cell.clone(),
            RruConfig {
                snr_db: 26.0,
                fading: FadingModel::Rician { k_db: 10.0 },
                user_snr_offsets_db: Some(offsets),
                seed: 7,
                ..Default::default()
            },
        );
        let mut cfg = EngineConfig::new(cell.clone(), 1);
        cfg.noise_power = rru.noise_power();
        let mut engine = InlineProcessor::new(cfg);

        let mut per_user: Vec<ErrorStats> = vec![ErrorStats::new(); num_users];
        for frame in 0..12u32 {
            let (packets, gt) = rru.generate_frame(frame);
            let res = engine.process_frame(frame, &packets);
            for symbol in cell.schedule.uplink_indices() {
                for (user, stats) in per_user.iter_mut().enumerate() {
                    stats.record(
                        &gt.info_bits[symbol][user],
                        &res.decoded[symbol][user],
                        res.decode_ok[symbol][user],
                    );
                }
            }
        }
        let worst = per_user.iter().map(|s| s.bler()).fold(0.0f64, f64::max);
        let blocks: u64 = per_user.iter().map(|s| s.blocks).sum();
        println!("{num_users:>5}  {worst:>10.4}   {blocks:>6}");
    }
    println!("\n(worst-user BLER stays below the 5G NR 10% target — Figure 9's shape)");
}
