//! Threaded uplink end-to-end run: RRU emulator -> fronthaul packets ->
//! the manager/worker engine -> per-frame latency and per-block stats.
//!
//! This exercises the *threaded* engine (manager + worker + network
//! threads with lock-free queues), i.e. the same machinery the paper
//! runs on its 64-core server, scaled to a cell that fits this machine.
//!
//! Run with: `cargo run --release --example uplink_e2e [num_workers]`

use agora_core::{Engine, EngineConfig};
use agora_fronthaul::{RruConfig, RruEmulator};
use agora_phy::{CellConfig, ModScheme};

fn main() {
    let workers: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2);

    // A mid-size cell: 16 antennas, 4 users, 16-QAM, 1 pilot + 4 UL
    // symbols.
    let mut cell = CellConfig::emulated_rru(16, 4, 4);
    cell.fft_size = 512;
    cell.num_data_sc = 240;
    cell.modulation = ModScheme::Qam16;
    cell.ldpc.z = 12; // code block 792 bits <= 240 * 4 = 960-bit capacity
    cell.validate().expect("valid cell");

    let mut rru = RruEmulator::new(cell.clone(), RruConfig { snr_db: 25.0, ..Default::default() });
    let mut cfg = EngineConfig::new(cell.clone(), workers);
    cfg.noise_power = rru.noise_power();
    let engine = Engine::new(cfg);

    // Pre-generate frames (the generator is not the system under test).
    let num_frames = 8u32;
    let mut packets = Vec::new();
    let mut truths = Vec::new();
    for f in 0..num_frames {
        let (pkts, gt) = rru.generate_frame(f);
        packets.extend(pkts);
        truths.push(gt);
    }

    println!(
        "processing {num_frames} frames of {}x{} MIMO with {workers} workers...",
        cell.num_antennas, cell.num_users
    );
    let results = engine.process(packets, num_frames, false);

    let mut errors = 0usize;
    let mut blocks = 0usize;
    for r in &results {
        for symbol in cell.schedule.uplink_indices() {
            for user in 0..cell.num_users {
                blocks += 1;
                if r.decoded[symbol][user] != truths[r.frame as usize].info_bits[symbol][user] {
                    errors += 1;
                }
            }
        }
        println!(
            "frame {:>2}: latency {:.2} ms (pilot {:.2}, ZF {:.2}, decode {:.2})",
            r.frame,
            r.uplink_latency_ns() as f64 / 1e6,
            (r.milestones.pilot_done_ns - r.milestones.first_packet_ns) as f64 / 1e6,
            (r.milestones.zf_done_ns - r.milestones.first_packet_ns) as f64 / 1e6,
            (r.milestones.decode_done_ns - r.milestones.first_packet_ns) as f64 / 1e6,
        );
    }
    println!("\nblock errors: {errors}/{blocks}");
    println!("\nrun summary:\n{}", engine.stats().summary().trim_end());
    println!("\nper-block execution stats (Table 3 style):\n{}", engine.stats().table());
    assert_eq!(errors, 0, "all blocks must decode correctly at 25 dB");
    println!("all {blocks} blocks decoded correctly ✓");
}
