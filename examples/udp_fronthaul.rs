//! Real-network fronthaul demo: the RRU emulator and the baseband engine
//! talk over actual UDP sockets (loopback), exercising the same packet
//! format the paper puts on 40 GbE — 64-byte header plus 24-bit IQ
//! samples, one packet per (frame, symbol, antenna).
//!
//! The in-memory ring (the DPDK stand-in) is the benchmark transport;
//! this example shows the identical code path surviving a real kernel
//! network stack, including out-of-order and best-effort delivery.
//!
//! Run with: `cargo run --release --example udp_fronthaul`

use agora_core::{EngineConfig, InlineProcessor};
use agora_fronthaul::{Fronthaul, PacketBuf, PacketPool, RruConfig, RruEmulator, UdpFronthaul};
use agora_phy::CellConfig;
use std::collections::VecDeque;
use std::net::SocketAddr;

fn main() {
    let cell = CellConfig::tiny_test(2);
    let mut rru = RruEmulator::new(cell.clone(), RruConfig { snr_db: 28.0, ..Default::default() });

    // Bind both endpoints on ephemeral loopback ports and cross-wire.
    let any: SocketAddr = "127.0.0.1:0".parse().unwrap();
    let mut rru_side = UdpFronthaul::new(any, any).expect("bind RRU socket");
    // Receive into recycled pool slots: steady-state RX never allocates.
    let bbu_side = UdpFronthaul::new(any, rru_side.local_addr().unwrap())
        .expect("bind BBU socket")
        .with_pool(PacketPool::new(256, 2048));
    rru_side.set_peer(bbu_side.local_addr().unwrap());
    println!(
        "fronthaul: RRU {} -> BBU {}",
        rru_side.local_addr().unwrap(),
        bbu_side.local_addr().unwrap()
    );

    let mut cfg = EngineConfig::new(cell.clone(), 1);
    cfg.noise_power = rru.noise_power();
    let mut engine = InlineProcessor::new(cfg);

    let frames = 4u32;
    let mut total_blocks = 0usize;
    let mut bad_blocks = 0usize;
    for frame in 0..frames {
        let (packets, gt) = rru.generate_frame(frame);
        let expected = packets.len();

        // Transmit over UDP in sendmmsg batches, draining the receive
        // side between bursts so the socket buffer never overflows.
        let mut outbox: VecDeque<PacketBuf> = packets.into_iter().map(PacketBuf::Heap).collect();
        let mut received = Vec::with_capacity(expected);
        let mut batch: Vec<PacketBuf> = Vec::new();
        let mut spins = 0u64;
        while (!outbox.is_empty() || received.len() < expected) && spins < 5_000_000 {
            if !outbox.is_empty() && rru_side.send_batch(&mut outbox) == 0 {
                std::thread::yield_now();
            }
            if bbu_side.recv_batch(&mut batch, 64) == 0 {
                spins += 1;
                std::thread::yield_now();
            }
            received.extend(batch.drain(..).map(PacketBuf::into_bytes));
        }
        println!("frame {frame}: {}/{} packets delivered over UDP", received.len(), expected);
        assert_eq!(received.len(), expected, "loopback UDP should not drop at this rate");

        let result = engine.process_frame(frame, &received);
        for symbol in cell.schedule.uplink_indices() {
            for user in 0..cell.num_users {
                total_blocks += 1;
                if result.decoded[symbol][user] != gt.info_bits[symbol][user] {
                    bad_blocks += 1;
                }
            }
        }
    }
    println!("\ndecoded {total_blocks} blocks over a real UDP fronthaul, {bad_blocks} errors");
    assert_eq!(bad_blocks, 0);
    println!("UDP fronthaul path verified ✓");
}
