//! Real-network fronthaul demo: two emulated RRU cells and a multi-cell
//! baseband deployment talk over actual UDP sockets (loopback),
//! exercising the same packet format the paper puts on 40 GbE — 64-byte
//! header plus 24-bit IQ samples, one packet per (frame, symbol,
//! antenna), with the originating cell in the header's cell byte.
//!
//! The in-memory ring (the DPDK stand-in) is the benchmark transport;
//! this example shows the identical code path surviving a real kernel
//! network stack: both cell streams interleave on ONE socket, the
//! deployment's demux routes packets to the right cell's engine, and a
//! shared worker pool serves both cells.
//!
//! Run with: `cargo run --release --example udp_fronthaul`

use agora_core::deploy::{Deployment, DeploymentConfig};
use agora_core::EngineConfig;
use agora_fronthaul::{Fronthaul, PacketBuf, PacketPool, RruConfig, RruEmulator, UdpFronthaul};
use agora_phy::CellConfig;
use std::collections::VecDeque;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

const CELLS: usize = 2;

fn main() {
    let cell = CellConfig::tiny_test(2);
    let mut rrus: Vec<RruEmulator> = (0..CELLS)
        .map(|c| {
            RruEmulator::new(
                cell.clone(),
                RruConfig {
                    snr_db: 28.0,
                    seed: 40 + c as u64,
                    cell_id: c as u8,
                    ..Default::default()
                },
            )
        })
        .collect();
    let cfgs: Vec<EngineConfig> = rrus
        .iter()
        .map(|r| {
            let mut cfg = EngineConfig::new(cell.clone(), 1);
            cfg.noise_power = r.noise_power();
            // UDP is best-effort: abandon rather than stall if the
            // kernel drops a packet under load.
            cfg.frame_deadline_ns = Some(500_000_000);
            cfg
        })
        .collect();

    // Bind both endpoints on ephemeral loopback ports and cross-wire.
    let any: SocketAddr = "127.0.0.1:0".parse().unwrap();
    let mut rru_side = UdpFronthaul::new(any, any).expect("bind RRU socket");
    // Receive into recycled pool slots: steady-state RX never allocates.
    let bbu_side = UdpFronthaul::new(any, rru_side.local_addr().unwrap())
        .expect("bind BBU socket")
        .with_pool(PacketPool::new(256, 2048));
    rru_side.set_peer(bbu_side.local_addr().unwrap());
    println!(
        "fronthaul: {CELLS} cells via RRU {} -> BBU {}",
        rru_side.local_addr().unwrap(),
        bbu_side.local_addr().unwrap()
    );

    // Pre-generate every frame and interleave both cells' packets into
    // per-symbol bursts — the order they'd share the wire in.
    let frames = 4u32;
    let symbols = cell.symbols_per_frame();
    let mut truths = Vec::new();
    let mut bursts: Vec<Vec<PacketBuf>> = Vec::new();
    for frame in 0..frames {
        let per_cell: Vec<_> = rrus.iter_mut().map(|r| r.generate_frame(frame)).collect();
        for sym in 0..symbols {
            let mut burst = Vec::with_capacity(CELLS * cell.num_antennas);
            for (packets, _) in &per_cell {
                let per_sym = packets.len() / symbols;
                burst.extend(
                    packets[sym * per_sym..(sym + 1) * per_sym]
                        .iter()
                        .cloned()
                        .map(PacketBuf::Heap),
                );
            }
            bursts.push(burst);
        }
        if frame == 0 {
            truths = per_cell.iter().map(|(_, gt)| vec![gt.clone()]).collect();
        } else {
            for (c, (_, gt)) in per_cell.iter().enumerate() {
                truths[c].push(gt.clone());
            }
        }
    }

    let deployment = Deployment::new(DeploymentConfig::new(cfgs, CELLS));
    let done = AtomicBool::new(false);
    let results = std::thread::scope(|scope| {
        // Producer: one send_batch per symbol slot, sleeping between
        // bursts so the demux thread keeps pace on small machines (a
        // real RRU paces at the symbol clock; sleeping also yields the
        // core, which a spin-pacer would hog).
        scope.spawn(|| {
            for burst in bursts {
                let mut out: VecDeque<PacketBuf> = burst.into();
                while !out.is_empty() {
                    if rru_side.send_batch(&mut out) == 0 {
                        std::thread::yield_now();
                    }
                }
                std::thread::sleep(Duration::from_micros(500));
            }
            done.store(true, Ordering::Release);
        });
        deployment.process_fronthaul(&bbu_side, frames, &done)
    });

    let mut total_blocks = 0usize;
    let mut bad_blocks = 0usize;
    let mut dropped = 0usize;
    for (c, res) in results.iter().enumerate() {
        for r in res {
            if r.dropped {
                dropped += 1;
                continue;
            }
            let gt = &truths[c][r.frame as usize];
            for symbol in cell.schedule.uplink_indices() {
                for user in 0..cell.num_users {
                    total_blocks += 1;
                    if r.decoded[symbol][user] != gt.info_bits[symbol][user] {
                        bad_blocks += 1;
                    }
                }
            }
        }
        println!("cell {c}: {}", deployment.stats().cell(c).summary().trim_end());
    }
    println!(
        "\ndecoded {total_blocks} blocks across {CELLS} cells over a real UDP fronthaul, \
         {bad_blocks} errors, {dropped} frames dropped"
    );
    assert_eq!(bad_blocks, 0, "completed frames must decode cleanly");
    assert!(dropped <= (CELLS * frames as usize) / 2, "loopback should deliver most frames");
    println!("rollup: {}", deployment.stats().rollup().summary().trim_end());
    println!("multi-cell UDP fronthaul path verified ✓");
}
