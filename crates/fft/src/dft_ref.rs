//! Naive `O(n^2)` DFT used as the correctness oracle for the fast
//! transforms. Never used on a hot path.

use agora_math::Cf32;

/// Direct evaluation of the DFT definition:
/// `X[k] = sum_n x[n] e^{-2 pi i k n / N}`.
pub fn dft(input: &[Cf32]) -> Vec<Cf32> {
    let n = input.len();
    let mut out = vec![Cf32::ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = Cf32::ZERO;
        for (idx, &x) in input.iter().enumerate() {
            let ang = -2.0 * core::f64::consts::PI * (k as f64) * (idx as f64) / (n as f64);
            let tw = Cf32::new(ang.cos() as f32, ang.sin() as f32);
            acc = x.mul_add(tw, acc);
        }
        *o = acc;
    }
    out
}

/// Direct inverse DFT with `1/N` normalisation:
/// `x[n] = (1/N) sum_k X[k] e^{+2 pi i k n / N}`.
pub fn idft(input: &[Cf32]) -> Vec<Cf32> {
    let n = input.len();
    let mut out = vec![Cf32::ZERO; n];
    let inv_n = 1.0 / n as f32;
    for (t, o) in out.iter_mut().enumerate() {
        let mut acc = Cf32::ZERO;
        for (k, &x) in input.iter().enumerate() {
            let ang = 2.0 * core::f64::consts::PI * (k as f64) * (t as f64) / (n as f64);
            let tw = Cf32::new(ang.cos() as f32, ang.sin() as f32);
            acc = x.mul_add(tw, acc);
        }
        *o = acc.scale(inv_n);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dft_of_impulse_is_flat() {
        let mut x = vec![Cf32::ZERO; 8];
        x[0] = Cf32::ONE;
        let y = dft(&x);
        for v in y {
            assert!((v.re - 1.0).abs() < 1e-5 && v.im.abs() < 1e-5);
        }
    }

    #[test]
    fn idft_inverts_dft() {
        let x: Vec<Cf32> = (0..16).map(|i| Cf32::new((i as f32).sin(), (i as f32).cos())).collect();
        let y = idft(&dft(&x));
        for (a, b) in x.iter().zip(y.iter()) {
            assert!((*a - *b).abs() < 1e-4);
        }
    }
}
