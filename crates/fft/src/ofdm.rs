//! OFDM (de)modulation on top of the FFT: cyclic prefix handling and the
//! guard-band subcarrier layout used by the paper's 5G NR configuration
//! (2048-point FFT, 1200 active subcarriers, the rest guards).

use crate::plan::{Direction, FftPlan};
use agora_math::Cf32;
use std::sync::Arc;

/// Subcarrier layout of one OFDM symbol: `fft_size` total bins of which
/// `num_data` centred bins are active, the rest guard bands (and DC
/// nulled), matching standard OFDM numerology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubcarrierMap {
    /// Total FFT bins (power of two).
    pub fft_size: usize,
    /// Number of active data/pilot subcarriers.
    pub num_data: usize,
}

impl SubcarrierMap {
    /// Creates a layout; panics if `num_data >= fft_size` or fft_size is
    /// not a power of two.
    pub fn new(fft_size: usize, num_data: usize) -> Self {
        assert!(fft_size.is_power_of_two(), "FFT size must be a power of two");
        assert!(num_data < fft_size, "data subcarriers must leave room for guards");
        Self { fft_size, num_data }
    }

    /// Iterator over the FFT bin index of each active subcarrier, in
    /// logical (lowest-frequency-first) order. Active subcarriers straddle
    /// DC: negative frequencies map to the top half of the FFT.
    pub fn active_bins(&self) -> impl Iterator<Item = usize> + '_ {
        let half = self.num_data / 2;
        let n = self.fft_size;
        (0..self.num_data).map(move |i| {
            if i < half {
                // Negative frequencies: bins N-half .. N-1
                n - half + i
            } else {
                // Positive frequencies: bins 1 ..= num_data-half (skip DC)
                i - half + 1
            }
        })
    }

    /// Scatters `num_data` frequency-domain samples into a zero-padded
    /// FFT-size buffer according to the layout.
    pub fn map_symbols(&self, data: &[Cf32], grid: &mut [Cf32]) {
        assert_eq!(data.len(), self.num_data);
        assert_eq!(grid.len(), self.fft_size);
        grid.fill(Cf32::ZERO);
        for (i, bin) in self.active_bins().enumerate() {
            grid[bin] = data[i];
        }
    }

    /// Like [`Self::map_symbols`], but scatters through a bit-reversal
    /// table (`grid[bitrev[bin]] = value`) so the following inverse
    /// transform can use [`FftPlan::execute_prereversed`] and skip its
    /// permutation pass — the downlink IFFT's fusion of the uplink's
    /// gather-on-copy trick.
    pub fn map_symbols_bitrev(&self, data: &[Cf32], grid: &mut [Cf32], bitrev: &[u32]) {
        assert_eq!(data.len(), self.num_data);
        assert_eq!(grid.len(), self.fft_size);
        assert_eq!(bitrev.len(), self.fft_size);
        grid.fill(Cf32::ZERO);
        for (i, bin) in self.active_bins().enumerate() {
            grid[bitrev[bin] as usize] = data[i];
        }
    }

    /// Gathers the active bins out of a full FFT-size grid.
    pub fn demap_symbols(&self, grid: &[Cf32], data: &mut [Cf32]) {
        assert_eq!(data.len(), self.num_data);
        assert_eq!(grid.len(), self.fft_size);
        for (i, bin) in self.active_bins().enumerate() {
            data[i] = grid[bin];
        }
    }
}

/// OFDM modulator/demodulator: FFT plan + subcarrier map + cyclic prefix.
#[derive(Debug, Clone)]
pub struct Ofdm {
    plan: Arc<FftPlan>,
    map: SubcarrierMap,
    cp_len: usize,
}

impl Ofdm {
    /// Builds an OFDM processor. `cp_len` is the cyclic prefix length in
    /// samples (may be zero for the emulated-RRU configuration, which
    /// sends symbol-aligned sample blocks).
    pub fn new(map: SubcarrierMap, cp_len: usize) -> Self {
        assert!(cp_len < map.fft_size, "CP cannot exceed the symbol");
        Self { plan: Arc::new(FftPlan::new(map.fft_size)), map, cp_len }
    }

    /// Samples per transmitted OFDM symbol including CP.
    pub fn symbol_len(&self) -> usize {
        self.map.fft_size + self.cp_len
    }

    /// The subcarrier layout.
    pub fn map(&self) -> SubcarrierMap {
        self.map
    }

    /// The underlying FFT plan (shared with the engine's FFT tasks).
    pub fn plan(&self) -> &Arc<FftPlan> {
        &self.plan
    }

    /// Modulates `num_data` frequency-domain symbols into `symbol_len()`
    /// time-domain samples (IFFT + cyclic prefix).
    pub fn modulate(&self, freq_data: &[Cf32], time_out: &mut [Cf32]) {
        assert_eq!(time_out.len(), self.symbol_len());
        let n = self.map.fft_size;
        let (_cp, body) = time_out.split_at_mut(self.cp_len);
        self.map.map_symbols(freq_data, body);
        self.plan.execute(body, Direction::Inverse);
        // Copy tail as cyclic prefix.
        let tail_start = n - self.cp_len;
        let tail: Vec<Cf32> = body[tail_start..].to_vec();
        time_out[..self.cp_len].copy_from_slice(&tail);
    }

    /// Demodulates `symbol_len()` time-domain samples into the active
    /// subcarriers (CP removal + FFT + demap).
    pub fn demodulate(&self, time_in: &[Cf32], freq_out: &mut [Cf32]) {
        assert_eq!(time_in.len(), self.symbol_len());
        assert_eq!(freq_out.len(), self.map.num_data);
        let mut grid: Vec<Cf32> = time_in[self.cp_len..].to_vec();
        self.plan.execute(&mut grid, Direction::Forward);
        self.map.demap_symbols(&grid, freq_out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_bins_avoid_dc_and_are_unique() {
        let map = SubcarrierMap::new(64, 48);
        let bins: Vec<usize> = map.active_bins().collect();
        assert_eq!(bins.len(), 48);
        assert!(!bins.contains(&0), "DC must stay unused");
        let mut sorted = bins.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 48, "bins must be unique");
    }

    #[test]
    fn paper_numerology_bins() {
        // 2048-point FFT with 1200 active subcarriers (paper §5.2).
        let map = SubcarrierMap::new(2048, 1200);
        let bins: Vec<usize> = map.active_bins().collect();
        assert_eq!(bins.len(), 1200);
        assert_eq!(bins[0], 2048 - 600); // lowest negative frequency
        assert_eq!(bins[599], 2047); // highest negative frequency
        assert_eq!(bins[600], 1); // first positive frequency (skips DC)
        assert_eq!(bins[1199], 600);
    }

    #[test]
    fn map_demap_roundtrip() {
        let map = SubcarrierMap::new(128, 96);
        let data: Vec<Cf32> = (0..96).map(|i| Cf32::new(i as f32, -(i as f32))).collect();
        let mut grid = vec![Cf32::ZERO; 128];
        map.map_symbols(&data, &mut grid);
        let mut back = vec![Cf32::ZERO; 96];
        map.demap_symbols(&grid, &mut back);
        assert_eq!(data, back);
    }

    #[test]
    fn map_symbols_bitrev_plus_prereversed_ifft_matches_two_pass() {
        let n = 256;
        let map = SubcarrierMap::new(n, 180);
        let plan = FftPlan::new(n);
        let data: Vec<Cf32> = (0..180).map(|i| Cf32::cis(0.31 * i as f32).scale(0.5)).collect();
        let mut two_pass = vec![Cf32::ZERO; n];
        map.map_symbols(&data, &mut two_pass);
        plan.execute(&mut two_pass, Direction::Inverse);
        let mut fused = vec![Cf32::ZERO; n];
        map.map_symbols_bitrev(&data, &mut fused, plan.bitrev());
        plan.execute_prereversed(&mut fused, Direction::Inverse);
        for (a, b) in two_pass.iter().zip(fused.iter()) {
            assert!((*a - *b).abs() < 1e-6);
        }
    }

    #[test]
    fn ofdm_modulate_demodulate_roundtrip() {
        let ofdm = Ofdm::new(SubcarrierMap::new(256, 180), 32);
        let data: Vec<Cf32> = (0..180).map(|i| Cf32::cis(0.13 * i as f32).scale(0.7)).collect();
        let mut time = vec![Cf32::ZERO; ofdm.symbol_len()];
        ofdm.modulate(&data, &mut time);
        let mut back = vec![Cf32::ZERO; 180];
        ofdm.demodulate(&time, &mut back);
        for (a, b) in data.iter().zip(back.iter()) {
            assert!((*a - *b).abs() < 1e-3);
        }
    }

    #[test]
    fn cyclic_prefix_is_symbol_tail() {
        let cp = 16;
        let ofdm = Ofdm::new(SubcarrierMap::new(64, 48), cp);
        let data: Vec<Cf32> = (0..48).map(|i| Cf32::new(1.0, i as f32 * 0.1)).collect();
        let mut time = vec![Cf32::ZERO; ofdm.symbol_len()];
        ofdm.modulate(&data, &mut time);
        let body = &time[cp..];
        assert_eq!(&time[..cp], &body[body.len() - cp..]);
    }

    #[test]
    fn zero_cp_roundtrip() {
        let ofdm = Ofdm::new(SubcarrierMap::new(64, 48), 0);
        assert_eq!(ofdm.symbol_len(), 64);
        let data: Vec<Cf32> = (0..48).map(|i| Cf32::real(i as f32)).collect();
        let mut time = vec![Cf32::ZERO; 64];
        ofdm.modulate(&data, &mut time);
        let mut back = vec![Cf32::ZERO; 48];
        ofdm.demodulate(&time, &mut back);
        for (a, b) in data.iter().zip(back.iter()) {
            assert!((*a - *b).abs() < 1e-3);
        }
    }
}
