//! Precomputed FFT plans.
//!
//! Like MKL/FFTW, the transform is split into a *plan* (twiddle factors and
//! the bit-reversal permutation, computed once per size) and an *execute*
//! step that does no allocation. Every FFT task in the engine executes
//! against a shared, immutable [`FftPlan`], so plans are `Sync` and can be
//! stored in an `Arc` next to the cell configuration.
//!
//! Execution is [`SimdTier`]-dispatched: on AVX2 hosts the butterflies run
//! four complex values per 256-bit vector with the first two stages fused
//! (see [`crate::simd`]); everywhere else the scalar radix-2 loop is the
//! reference. Callers that can produce their input in bit-reversed order
//! (the engine's fused IQ-unpack gather) use the `*_prereversed` entry
//! points and skip the permutation pass entirely, and [`FftBatchPlan`] /
//! [`FftPlan::execute_batch`] run several independent transforms through
//! each stage together so twiddle loads amortize across the batch.

use agora_math::simd::SimdTier;
use agora_math::Cf32;

/// Transform direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Time domain -> frequency domain (negative exponent).
    Forward,
    /// Frequency domain -> time domain (positive exponent, `1/N` scaling).
    Inverse,
}

/// A radix-2 decimation-in-time FFT plan for one power-of-two size.
///
/// Twiddles are stored per stage in natural access order so the butterfly
/// inner loop streams them contiguously; the AVX2 path additionally keeps
/// a pre-splatted copy (see [`FftPlan::new`]).
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    log2n: u32,
    /// Bit-reversal permutation of indices `0..n`.
    bitrev: Vec<u32>,
    /// The `(i, j)` index pairs with `i < bitrev[i] = j`: exactly the swaps
    /// the in-place permutation performs. Streaming this list avoids the
    /// branch-per-element of walking `bitrev` and skipping fixed points.
    swaps: Vec<(u32, u32)>,
    /// Forward-direction twiddles, concatenated per stage: stage `s`
    /// (butterfly half-width `w = 2^s`) contributes the `w` twiddles
    /// `e^{-i pi j / w}` for `j` in `0..w` — exclusive of `w` itself
    /// (the half-turn `e^{-i pi}` is the negated `j = 0` twiddle and
    /// never stored).
    twiddles: Vec<Cf32>,
    /// AVX2 twiddle layout for the stages with `w >= 4`, concatenated per
    /// stage: each twiddle's real part duplicated per complex slot
    /// (`[re0 re0 re1 re1 ...]`) so a plain 256-bit load lines four
    /// twiddles up against four interleaved `Cf32` — no broadcasts in the
    /// butterfly loop.
    tw_re_dup: Vec<f32>,
    /// Companion imaginary parts with alternating sign
    /// (`[-im0 +im0 -im1 +im1 ...]`), matching the swap-multiply-add
    /// complex product in `simd::butterflies_avx2`.
    tw_im_alt: Vec<f32>,
    /// Dispatch tier, clamped to what the host supports.
    tier: SimdTier,
}

impl FftPlan {
    /// Builds a plan for a power-of-two transform size, dispatching to the
    /// best SIMD tier the host supports.
    ///
    /// # Panics
    /// Panics if `n` is zero or not a power of two.
    pub fn new(n: usize) -> Self {
        Self::with_tier(n, SimdTier::detect())
    }

    /// Builds a plan pinned to a specific SIMD tier (clamped to what the
    /// host actually supports, so forcing `Avx2` on a scalar-only machine
    /// degrades safely). Used by the tier-parity tests and benches.
    ///
    /// # Panics
    /// Panics if `n` is zero or not a power of two.
    pub fn with_tier(n: usize, tier: SimdTier) -> Self {
        assert!(n.is_power_of_two() && n > 0, "FFT size must be a power of two, got {n}");
        let log2n = n.trailing_zeros();
        // Bit-reversal table.
        let mut bitrev = vec![0u32; n];
        for (i, b) in bitrev.iter_mut().enumerate() {
            *b = (i as u32).reverse_bits() >> (32 - log2n.max(1));
        }
        if n == 1 {
            bitrev[0] = 0;
        }
        let swaps: Vec<(u32, u32)> = bitrev
            .iter()
            .enumerate()
            .filter(|&(i, &j)| (i as u32) < j)
            .map(|(i, &j)| (i as u32, j))
            .collect();
        // Twiddles per stage, computed in f64 for accuracy.
        let mut twiddles = Vec::with_capacity(n.saturating_sub(1));
        let mut w = 1usize;
        while w < n {
            for j in 0..w {
                let ang = -core::f64::consts::PI * (j as f64) / (w as f64);
                twiddles.push(Cf32::new(ang.cos() as f32, ang.sin() as f32));
            }
            w *= 2;
        }
        // Pre-splatted AVX2 layout for the w >= 4 stages.
        let simd_len = 2 * n.saturating_sub(4);
        let mut tw_re_dup = Vec::with_capacity(simd_len);
        let mut tw_im_alt = Vec::with_capacity(simd_len);
        let mut w = 4usize;
        let mut off = 3usize; // stages 0 (1 twiddle) and 1 (2) are fused
        while w <= n / 2 {
            for j in 0..w {
                let tw = twiddles[off + j];
                tw_re_dup.push(tw.re);
                tw_re_dup.push(tw.re);
                tw_im_alt.push(-tw.im);
                tw_im_alt.push(tw.im);
            }
            off += w;
            w *= 2;
        }
        Self {
            n,
            log2n,
            bitrev,
            swaps,
            twiddles,
            tw_re_dup,
            tw_im_alt,
            tier: tier.min(SimdTier::detect()),
        }
    }

    /// Transform size.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false`: construction enforces `n >= 1`, so a plan never
    /// covers zero points. Kept for `len`/`is_empty` API symmetry.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The SIMD tier this plan dispatches to.
    pub fn tier(&self) -> SimdTier {
        self.tier
    }

    /// The bit-reversal permutation table (`out[i] = in[bitrev[i]]` puts
    /// input in the order the butterfly stages expect). Callers that
    /// gather their input through this table can use the `*_prereversed`
    /// execute variants and skip the in-place permutation pass.
    #[inline(always)]
    pub fn bitrev(&self) -> &[u32] {
        &self.bitrev
    }

    /// In-place transform of exactly `self.len()` samples.
    ///
    /// # Panics
    /// Panics if `data.len() != self.len()`.
    pub fn execute(&self, data: &mut [Cf32], dir: Direction) {
        assert_eq!(data.len(), self.n, "buffer length must equal plan size");
        self.run(data, dir, false);
    }

    /// In-place transform of input already in bit-reversed order (e.g.
    /// written through [`Self::bitrev`] by a fused gather). Identical
    /// output to [`Self::execute`] on naturally-ordered input, minus the
    /// permutation pass.
    ///
    /// # Panics
    /// Panics if `data.len() != self.len()`.
    pub fn execute_prereversed(&self, data: &mut [Cf32], dir: Direction) {
        assert_eq!(data.len(), self.n, "buffer length must equal plan size");
        self.run(data, dir, true);
    }

    /// In-place transform of `data.len() / self.len()` independent,
    /// back-to-back transforms. All transforms advance through each
    /// butterfly stage together, so per-stage twiddle loads are shared
    /// across the batch (the engine's per-symbol antenna batch).
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of the plan size.
    pub fn execute_batch(&self, data: &mut [Cf32], dir: Direction) {
        assert_eq!(data.len() % self.n, 0, "buffer length must be a multiple of plan size");
        self.run(data, dir, false);
    }

    /// Batched variant of [`Self::execute_prereversed`]: every transform
    /// in the batch must already be bit-reversed.
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of the plan size.
    pub fn execute_batch_prereversed(&self, data: &mut [Cf32], dir: Direction) {
        assert_eq!(data.len() % self.n, 0, "buffer length must be a multiple of plan size");
        self.run(data, dir, true);
    }

    /// Out-of-place transform: copies `src` into `dst` then runs in place.
    ///
    /// # Panics
    /// Panics if the slice lengths don't equal the plan size.
    pub fn execute_to(&self, src: &[Cf32], dst: &mut [Cf32], dir: Direction) {
        assert_eq!(src.len(), self.n);
        assert_eq!(dst.len(), self.n);
        dst.copy_from_slice(src);
        self.execute(dst, dir);
    }

    /// Shared body for all execute variants; `data` holds one or more
    /// transforms.
    fn run(&self, data: &mut [Cf32], dir: Direction, prereversed: bool) {
        if self.n == 1 || data.is_empty() {
            return;
        }
        // Conjugate trick for the inverse: IFFT(x) = conj(FFT(conj(x)))/N.
        // Conjugation is elementwise, so it commutes with the bit-reversal
        // permutation and is valid on pre-reversed input too.
        if dir == Direction::Inverse {
            self.conj_pass(data);
        }
        if !prereversed {
            // Permute and butterfly tile by tile, so a transform's data is
            // still cache-resident when its butterflies start. With large
            // batches a permute-everything-then-butterfly-everything order
            // would evict each transform between the two passes.
            let tile = self.tile_transforms() * self.n;
            for slice in data.chunks_mut(tile) {
                for chunk in slice.chunks_exact_mut(self.n) {
                    self.bit_reverse(chunk);
                }
                self.butterflies(slice);
            }
        } else {
            self.butterflies(data);
        }
        if dir == Direction::Inverse {
            self.conj_scale_pass(data, 1.0 / self.n as f32);
        }
    }

    /// Transforms the SIMD tier processes per cache tile (1 for scalar,
    /// which has no cross-transform twiddle sharing to exploit).
    fn tile_transforms(&self) -> usize {
        #[cfg(target_arch = "x86_64")]
        if self.tier == SimdTier::Avx2 {
            return crate::simd::tile_transforms(self.n);
        }
        1
    }

    /// In-place bit-reversal permutation of one transform (swap once per
    /// pair, streaming the precomputed swap list).
    fn bit_reverse(&self, data: &mut [Cf32]) {
        for &(i, j) in &self.swaps {
            data.swap(i as usize, j as usize);
        }
    }

    /// All butterfly stages over one or more bit-reversed transforms.
    fn butterflies(&self, data: &mut [Cf32]) {
        #[cfg(target_arch = "x86_64")]
        if self.tier == SimdTier::Avx2 && self.n >= 4 {
            unsafe {
                crate::simd::butterflies_avx2(data, self.n, &self.tw_re_dup, &self.tw_im_alt)
            };
            return;
        }
        for chunk in data.chunks_exact_mut(self.n) {
            self.butterflies_scalar(chunk);
        }
    }

    fn conj_pass(&self, data: &mut [Cf32]) {
        #[cfg(target_arch = "x86_64")]
        if self.tier == SimdTier::Avx2 {
            unsafe { crate::simd::conj_avx2(data) };
            return;
        }
        for z in data.iter_mut() {
            *z = z.conj();
        }
    }

    fn conj_scale_pass(&self, data: &mut [Cf32], scale: f32) {
        #[cfg(target_arch = "x86_64")]
        if self.tier == SimdTier::Avx2 {
            unsafe { crate::simd::conj_scale_avx2(data, scale) };
            return;
        }
        for z in data.iter_mut() {
            *z = z.conj().scale(scale);
        }
    }

    /// Scalar reference butterflies for one bit-reversed transform.
    fn butterflies_scalar(&self, data: &mut [Cf32]) {
        let n = self.n;
        // Iterative DIT butterflies.
        let mut w = 1usize; // half-width of the current butterfly
        let mut tw_off = 0usize;
        for _stage in 0..self.log2n {
            let stride = w * 2;
            let tws = &self.twiddles[tw_off..tw_off + w];
            let mut base = 0usize;
            while base < n {
                for j in 0..w {
                    let a = data[base + j];
                    let b = data[base + j + w] * tws[j];
                    data[base + j] = a + b;
                    data[base + j + w] = a - b;
                }
                base += stride;
            }
            tw_off += w;
            w = stride;
        }
    }
}

/// A fixed-batch handle over an [`FftPlan`]: `batch` independent size-`n`
/// transforms, laid out back to back, executed through each stage
/// together. This is the engine's "one symbol, B antennas" granularity —
/// twiddle vectors are loaded once per butterfly block and applied to
/// every antenna before moving on.
#[derive(Debug, Clone)]
pub struct FftBatchPlan {
    plan: FftPlan,
    batch: usize,
}

impl FftBatchPlan {
    /// Builds a batch plan for `batch` transforms of size `n`.
    ///
    /// # Panics
    /// Panics if `n` is not a power of two or `batch` is zero.
    pub fn new(n: usize, batch: usize) -> Self {
        Self::with_tier(n, batch, SimdTier::detect())
    }

    /// Tier-pinned variant (see [`FftPlan::with_tier`]).
    ///
    /// # Panics
    /// Panics if `n` is not a power of two or `batch` is zero.
    pub fn with_tier(n: usize, batch: usize, tier: SimdTier) -> Self {
        assert!(batch > 0, "batch must be at least one transform");
        Self { plan: FftPlan::with_tier(n, tier), batch }
    }

    /// The underlying single-transform plan.
    pub fn plan(&self) -> &FftPlan {
        &self.plan
    }

    /// Transforms per execution.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Total samples per execution (`batch * n`).
    pub fn len(&self) -> usize {
        self.batch * self.plan.len()
    }

    /// True only for a degenerate size-1, batch-amount-of-nothing plan;
    /// construction enforces `batch >= 1` and `n >= 1`, so always `false`.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// In-place transform of exactly `batch` back-to-back transforms.
    ///
    /// # Panics
    /// Panics if `data.len() != self.len()`.
    pub fn execute(&self, data: &mut [Cf32], dir: Direction) {
        assert_eq!(data.len(), self.len(), "buffer length must equal batch * plan size");
        self.plan.execute_batch(data, dir);
    }

    /// Batched transform of input already in bit-reversed order.
    ///
    /// # Panics
    /// Panics if `data.len() != self.len()`.
    pub fn execute_prereversed(&self, data: &mut [Cf32], dir: Direction) {
        assert_eq!(data.len(), self.len(), "buffer length must equal batch * plan size");
        self.plan.execute_batch_prereversed(data, dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft_ref::{dft, idft};

    fn signal(n: usize) -> Vec<Cf32> {
        (0..n)
            .map(|i| {
                let t = i as f32;
                Cf32::new((0.3 * t).sin() + 0.2, (0.7 * t).cos() - 0.1)
            })
            .collect()
    }

    fn max_err(a: &[Cf32], b: &[Cf32]) -> f32 {
        a.iter().zip(b.iter()).map(|(x, y)| (*x - *y).abs()).fold(0.0, f32::max)
    }

    #[test]
    fn matches_reference_dft_all_small_sizes() {
        for log2 in 0..=10 {
            let n = 1usize << log2;
            let x = signal(n);
            let mut y = x.clone();
            FftPlan::new(n).execute(&mut y, Direction::Forward);
            let y_ref = dft(&x);
            let tol = 1e-3 * (n as f32).sqrt();
            assert!(max_err(&y, &y_ref) < tol, "size {n} error too large");
        }
    }

    #[test]
    fn scalar_tier_matches_reference_dft_all_small_sizes() {
        for log2 in 0..=10 {
            let n = 1usize << log2;
            let x = signal(n);
            let mut y = x.clone();
            FftPlan::with_tier(n, SimdTier::Scalar).execute(&mut y, Direction::Forward);
            let y_ref = dft(&x);
            let tol = 1e-3 * (n as f32).sqrt();
            assert!(max_err(&y, &y_ref) < tol, "size {n} error too large");
        }
    }

    #[test]
    fn inverse_matches_reference_idft() {
        let n = 64;
        let x = signal(n);
        let mut y = x.clone();
        FftPlan::new(n).execute(&mut y, Direction::Inverse);
        let y_ref = idft(&x);
        assert!(max_err(&y, &y_ref) < 1e-4);
    }

    #[test]
    fn roundtrip_identity() {
        for &n in &[8usize, 256, 2048] {
            let plan = FftPlan::new(n);
            let x = signal(n);
            let mut y = x.clone();
            plan.execute(&mut y, Direction::Forward);
            plan.execute(&mut y, Direction::Inverse);
            assert!(max_err(&x, &y) < 1e-3, "roundtrip failed for {n}");
        }
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let n = 128;
        let mut x = vec![Cf32::ZERO; n];
        x[0] = Cf32::ONE;
        FftPlan::new(n).execute(&mut x, Direction::Forward);
        for v in x {
            assert!((v.re - 1.0).abs() < 1e-4 && v.im.abs() < 1e-4);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 256;
        let k = 19usize;
        let x: Vec<Cf32> = (0..n)
            .map(|i| Cf32::cis(2.0 * core::f32::consts::PI * (k * i) as f32 / n as f32))
            .collect();
        let mut y = x.clone();
        FftPlan::new(n).execute(&mut y, Direction::Forward);
        for (bin, v) in y.iter().enumerate() {
            if bin == k {
                assert!((v.abs() - n as f32).abs() < 0.1 * n as f32);
            } else {
                assert!(v.abs() < 1e-2 * n as f32, "leakage in bin {bin}: {}", v.abs());
            }
        }
    }

    #[test]
    fn linearity() {
        let n = 64;
        let plan = FftPlan::new(n);
        let a = signal(n);
        let b: Vec<Cf32> = signal(n).iter().map(|z| z.conj()).collect();
        let sum: Vec<Cf32> = a.iter().zip(b.iter()).map(|(x, y)| *x + *y).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fsum = sum.clone();
        plan.execute(&mut fa, Direction::Forward);
        plan.execute(&mut fb, Direction::Forward);
        plan.execute(&mut fsum, Direction::Forward);
        let combined: Vec<Cf32> = fa.iter().zip(fb.iter()).map(|(x, y)| *x + *y).collect();
        assert!(max_err(&fsum, &combined) < 1e-3);
    }

    #[test]
    fn parseval_energy_conservation() {
        let n = 512;
        let x = signal(n);
        let time_energy: f32 = x.iter().map(|z| z.norm_sqr()).sum();
        let mut y = x;
        FftPlan::new(n).execute(&mut y, Direction::Forward);
        let freq_energy: f32 = y.iter().map(|z| z.norm_sqr()).sum::<f32>() / n as f32;
        assert!((time_energy - freq_energy).abs() < 1e-2 * time_energy);
    }

    #[test]
    fn size_one_is_identity() {
        let plan = FftPlan::new(1);
        let mut x = [Cf32::new(3.0, -2.0)];
        plan.execute(&mut x, Direction::Forward);
        assert_eq!(x[0], Cf32::new(3.0, -2.0));
    }

    #[test]
    fn plans_are_never_empty() {
        assert!(!FftPlan::new(1).is_empty());
        assert!(!FftPlan::new(2048).is_empty());
        assert!(!FftBatchPlan::new(8, 4).is_empty());
    }

    #[test]
    fn prereversed_matches_two_pass_execute() {
        for &n in &[8usize, 64, 2048] {
            for dir in [Direction::Forward, Direction::Inverse] {
                let plan = FftPlan::new(n);
                let x = signal(n);
                // Two-pass path: natural order in, permutation inside.
                let mut two_pass = x.clone();
                plan.execute(&mut two_pass, dir);
                // Fused path: gather through the table, skip the pass.
                let mut gathered: Vec<Cf32> =
                    plan.bitrev().iter().map(|&j| x[j as usize]).collect();
                plan.execute_prereversed(&mut gathered, dir);
                assert!(
                    max_err(&two_pass, &gathered) < 1e-6,
                    "prereversed diverged at n={n} {dir:?}"
                );
            }
        }
    }

    #[test]
    fn batch_matches_independent_transforms() {
        let n = 256;
        let batch = 5;
        for dir in [Direction::Forward, Direction::Inverse] {
            let plan = FftPlan::new(n);
            let mut data: Vec<Cf32> = Vec::new();
            for t in 0..batch {
                data.extend(signal(n).iter().map(|z| z.scale(1.0 + t as f32 * 0.3)));
            }
            let mut expect = data.clone();
            for chunk in expect.chunks_exact_mut(n) {
                plan.execute(chunk, dir);
            }
            plan.execute_batch(&mut data, dir);
            assert!(max_err(&expect, &data) < 1e-5, "batch diverged ({dir:?})");
        }
    }

    #[test]
    fn batch_plan_validates_length() {
        let bp = FftBatchPlan::new(64, 3);
        assert_eq!(bp.len(), 192);
        assert_eq!(bp.batch(), 3);
        assert_eq!(bp.plan().len(), 64);
        let mut data = vec![Cf32::ONE; 192];
        bp.execute(&mut data, Direction::Forward);
        bp.execute_prereversed(&mut data, Direction::Inverse);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = FftPlan::new(48);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn wrong_buffer_length_rejected() {
        let plan = FftPlan::new(8);
        let mut x = vec![Cf32::ZERO; 4];
        plan.execute(&mut x, Direction::Forward);
    }

    #[test]
    #[should_panic(expected = "multiple of plan size")]
    fn batch_length_must_be_multiple() {
        let plan = FftPlan::new(8);
        let mut x = vec![Cf32::ZERO; 12];
        plan.execute_batch(&mut x, Direction::Forward);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn rand_signal(n: usize, seed: u64) -> Vec<Cf32> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                let mut next = || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    ((state >> 11) as f32 / (1u64 << 53) as f32) - 0.25
                };
                Cf32::new(next(), next())
            })
            .collect()
    }

    fn max_err(a: &[Cf32], b: &[Cf32]) -> f32 {
        a.iter().zip(b.iter()).map(|(x, y)| (*x - *y).abs()).fold(0.0, f32::max)
    }

    proptest! {
        #[test]
        fn roundtrip_recovers_input(
            log2 in 1u32..9,
            seed in any::<u64>(),
        ) {
            let n = 1usize << log2;
            let x = rand_signal(n, seed);
            let plan = FftPlan::new(n);
            let mut y = x.clone();
            plan.execute(&mut y, Direction::Forward);
            plan.execute(&mut y, Direction::Inverse);
            let err = x.iter().zip(y.iter()).map(|(a, b)| (*a - *b).abs()).fold(0.0f32, f32::max);
            prop_assert!(err < 1e-3);
        }

        /// Scalar-vs-detected-tier parity for single transforms, sizes
        /// 8..=4096, both directions. On a scalar-only host this
        /// degenerates to scalar-vs-scalar and trivially holds.
        #[test]
        fn tier_parity_single(
            log2 in 3u32..13,
            seed in any::<u64>(),
            forward in any::<bool>(),
        ) {
            let n = 1usize << log2;
            let dir = if forward { Direction::Forward } else { Direction::Inverse };
            let x = rand_signal(n, seed);
            let mut scalar = x.clone();
            FftPlan::with_tier(n, SimdTier::Scalar).execute(&mut scalar, dir);
            let mut simd = x;
            FftPlan::with_tier(n, SimdTier::Avx2).execute(&mut simd, dir);
            // Near-bit-exact: the vector stages do the same IEEE ops in the
            // same order; only the multiply-free fused stages can differ in
            // signed-zero handling.
            let tol = 1e-4 * (n as f32).sqrt().max(1.0);
            prop_assert!(max_err(&scalar, &simd) < tol, "tier divergence at n={n} {dir:?}");
        }

        /// Scalar-vs-detected-tier parity for the batched path, sizes
        /// 8..=4096, both directions.
        #[test]
        fn tier_parity_batch(
            log2 in 3u32..13,
            batch in 1usize..5,
            seed in any::<u64>(),
            forward in any::<bool>(),
        ) {
            let n = 1usize << log2;
            let dir = if forward { Direction::Forward } else { Direction::Inverse };
            let x = rand_signal(n * batch, seed);
            let mut scalar = x.clone();
            FftBatchPlan::with_tier(n, batch, SimdTier::Scalar).execute(&mut scalar, dir);
            let mut simd = x;
            FftBatchPlan::with_tier(n, batch, SimdTier::Avx2).execute(&mut simd, dir);
            let tol = 1e-4 * (n as f32).sqrt().max(1.0);
            prop_assert!(
                max_err(&scalar, &simd) < tol,
                "batched tier divergence at n={n} b={batch} {dir:?}"
            );
        }

        /// The batched executor must agree with running each transform
        /// alone on the same tier (loop reordering, not math changes).
        #[test]
        fn batch_parity_with_single(
            log2 in 3u32..12,
            batch in 1usize..5,
            seed in any::<u64>(),
            forward in any::<bool>(),
        ) {
            let n = 1usize << log2;
            let dir = if forward { Direction::Forward } else { Direction::Inverse };
            let plan = FftPlan::new(n);
            let mut batched = rand_signal(n * batch, seed);
            let mut single = batched.clone();
            for chunk in single.chunks_exact_mut(n) {
                plan.execute(chunk, dir);
            }
            plan.execute_batch(&mut batched, dir);
            prop_assert!(max_err(&single, &batched) < 1e-5);
        }
    }
}
