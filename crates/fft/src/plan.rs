//! Precomputed FFT plans.
//!
//! Like MKL/FFTW, the transform is split into a *plan* (twiddle factors and
//! the bit-reversal permutation, computed once per size) and an *execute*
//! step that does no allocation. Every FFT task in the engine executes
//! against a shared, immutable [`FftPlan`], so plans are `Sync` and can be
//! stored in an `Arc` next to the cell configuration.

use agora_math::Cf32;

/// Transform direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Time domain -> frequency domain (negative exponent).
    Forward,
    /// Frequency domain -> time domain (positive exponent, `1/N` scaling).
    Inverse,
}

/// A radix-2 decimation-in-time FFT plan for one power-of-two size.
///
/// Twiddles are stored per stage in natural access order so the butterfly
/// inner loop streams them contiguously.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    log2n: u32,
    /// Bit-reversal permutation of indices `0..n`.
    bitrev: Vec<u32>,
    /// Forward-direction twiddles, concatenated per stage: stage `s`
    /// (butterfly half-width `w = 2^s`) contributes `w` twiddles
    /// `e^{-i pi j / w}`, `j = 0..w`.
    twiddles: Vec<Cf32>,
}

impl FftPlan {
    /// Builds a plan for a power-of-two transform size.
    ///
    /// # Panics
    /// Panics if `n` is zero or not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two() && n > 0, "FFT size must be a power of two, got {n}");
        let log2n = n.trailing_zeros();
        // Bit-reversal table.
        let mut bitrev = vec![0u32; n];
        for (i, b) in bitrev.iter_mut().enumerate() {
            *b = (i as u32).reverse_bits() >> (32 - log2n.max(1));
        }
        if n == 1 {
            bitrev[0] = 0;
        }
        // Twiddles per stage, computed in f64 for accuracy.
        let mut twiddles = Vec::with_capacity(n.saturating_sub(1));
        let mut w = 1usize;
        while w < n {
            for j in 0..w {
                let ang = -core::f64::consts::PI * (j as f64) / (w as f64);
                twiddles.push(Cf32::new(ang.cos() as f32, ang.sin() as f32));
            }
            w *= 2;
        }
        Self { n, log2n, bitrev, twiddles }
    }

    /// Transform size.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True only for the degenerate size-1 plan... which still "is" a plan.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// In-place transform of exactly `self.len()` samples.
    ///
    /// # Panics
    /// Panics if `data.len() != self.len()`.
    pub fn execute(&self, data: &mut [Cf32], dir: Direction) {
        assert_eq!(data.len(), self.n, "buffer length must equal plan size");
        if self.n == 1 {
            return;
        }
        // Conjugate trick for the inverse: IFFT(x) = conj(FFT(conj(x)))/N.
        if dir == Direction::Inverse {
            for z in data.iter_mut() {
                *z = z.conj();
            }
        }
        self.forward_in_place(data);
        if dir == Direction::Inverse {
            let inv_n = 1.0 / self.n as f32;
            for z in data.iter_mut() {
                *z = z.conj().scale(inv_n);
            }
        }
    }

    /// Out-of-place transform: copies `src` into `dst` then runs in place.
    ///
    /// # Panics
    /// Panics if the slice lengths don't equal the plan size.
    pub fn execute_to(&self, src: &[Cf32], dst: &mut [Cf32], dir: Direction) {
        assert_eq!(src.len(), self.n);
        assert_eq!(dst.len(), self.n);
        dst.copy_from_slice(src);
        self.execute(dst, dir);
    }

    fn forward_in_place(&self, data: &mut [Cf32]) {
        let n = self.n;
        // Bit-reversal permutation (swap once per pair).
        for i in 0..n {
            let j = self.bitrev[i] as usize;
            if j > i {
                data.swap(i, j);
            }
        }
        // Iterative DIT butterflies.
        let mut w = 1usize; // half-width of the current butterfly
        let mut tw_off = 0usize;
        for _stage in 0..self.log2n {
            let stride = w * 2;
            let tws = &self.twiddles[tw_off..tw_off + w];
            let mut base = 0usize;
            while base < n {
                for j in 0..w {
                    let a = data[base + j];
                    let b = data[base + j + w] * tws[j];
                    data[base + j] = a + b;
                    data[base + j + w] = a - b;
                }
                base += stride;
            }
            tw_off += w;
            w = stride;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft_ref::{dft, idft};

    fn signal(n: usize) -> Vec<Cf32> {
        (0..n)
            .map(|i| {
                let t = i as f32;
                Cf32::new((0.3 * t).sin() + 0.2, (0.7 * t).cos() - 0.1)
            })
            .collect()
    }

    fn max_err(a: &[Cf32], b: &[Cf32]) -> f32 {
        a.iter().zip(b.iter()).map(|(x, y)| (*x - *y).abs()).fold(0.0, f32::max)
    }

    #[test]
    fn matches_reference_dft_all_small_sizes() {
        for log2 in 0..=10 {
            let n = 1usize << log2;
            let x = signal(n);
            let mut y = x.clone();
            FftPlan::new(n).execute(&mut y, Direction::Forward);
            let y_ref = dft(&x);
            let tol = 1e-3 * (n as f32).sqrt();
            assert!(max_err(&y, &y_ref) < tol, "size {n} error too large");
        }
    }

    #[test]
    fn inverse_matches_reference_idft() {
        let n = 64;
        let x = signal(n);
        let mut y = x.clone();
        FftPlan::new(n).execute(&mut y, Direction::Inverse);
        let y_ref = idft(&x);
        assert!(max_err(&y, &y_ref) < 1e-4);
    }

    #[test]
    fn roundtrip_identity() {
        for &n in &[8usize, 256, 2048] {
            let plan = FftPlan::new(n);
            let x = signal(n);
            let mut y = x.clone();
            plan.execute(&mut y, Direction::Forward);
            plan.execute(&mut y, Direction::Inverse);
            assert!(max_err(&x, &y) < 1e-3, "roundtrip failed for {n}");
        }
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let n = 128;
        let mut x = vec![Cf32::ZERO; n];
        x[0] = Cf32::ONE;
        FftPlan::new(n).execute(&mut x, Direction::Forward);
        for v in x {
            assert!((v.re - 1.0).abs() < 1e-4 && v.im.abs() < 1e-4);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 256;
        let k = 19usize;
        let x: Vec<Cf32> = (0..n)
            .map(|i| Cf32::cis(2.0 * core::f32::consts::PI * (k * i) as f32 / n as f32))
            .collect();
        let mut y = x.clone();
        FftPlan::new(n).execute(&mut y, Direction::Forward);
        for (bin, v) in y.iter().enumerate() {
            if bin == k {
                assert!((v.abs() - n as f32).abs() < 0.1 * n as f32);
            } else {
                assert!(v.abs() < 1e-2 * n as f32, "leakage in bin {bin}: {}", v.abs());
            }
        }
    }

    #[test]
    fn linearity() {
        let n = 64;
        let plan = FftPlan::new(n);
        let a = signal(n);
        let b: Vec<Cf32> = signal(n).iter().map(|z| z.conj()).collect();
        let sum: Vec<Cf32> = a.iter().zip(b.iter()).map(|(x, y)| *x + *y).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fsum = sum.clone();
        plan.execute(&mut fa, Direction::Forward);
        plan.execute(&mut fb, Direction::Forward);
        plan.execute(&mut fsum, Direction::Forward);
        let combined: Vec<Cf32> = fa.iter().zip(fb.iter()).map(|(x, y)| *x + *y).collect();
        assert!(max_err(&fsum, &combined) < 1e-3);
    }

    #[test]
    fn parseval_energy_conservation() {
        let n = 512;
        let x = signal(n);
        let time_energy: f32 = x.iter().map(|z| z.norm_sqr()).sum();
        let mut y = x;
        FftPlan::new(n).execute(&mut y, Direction::Forward);
        let freq_energy: f32 = y.iter().map(|z| z.norm_sqr()).sum::<f32>() / n as f32;
        assert!((time_energy - freq_energy).abs() < 1e-2 * time_energy);
    }

    #[test]
    fn size_one_is_identity() {
        let plan = FftPlan::new(1);
        let mut x = [Cf32::new(3.0, -2.0)];
        plan.execute(&mut x, Direction::Forward);
        assert_eq!(x[0], Cf32::new(3.0, -2.0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = FftPlan::new(48);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn wrong_buffer_length_rejected() {
        let plan = FftPlan::new(8);
        let mut x = vec![Cf32::ZERO; 4];
        plan.execute(&mut x, Direction::Forward);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn roundtrip_recovers_input(
            log2 in 1u32..9,
            seed in any::<u64>(),
        ) {
            let n = 1usize << log2;
            let mut state = seed | 1;
            let x: Vec<Cf32> = (0..n).map(|_| {
                let mut next = || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    ((state >> 11) as f32 / (1u64 << 53) as f32) - 0.25
                };
                Cf32::new(next(), next())
            }).collect();
            let plan = FftPlan::new(n);
            let mut y = x.clone();
            plan.execute(&mut y, Direction::Forward);
            plan.execute(&mut y, Direction::Inverse);
            let err = x.iter().zip(y.iter()).map(|(a, b)| (*a - *b).abs()).fold(0.0f32, f32::max);
            prop_assert!(err < 1e-3);
        }
    }
}
