//! # agora-fft — FFT/IFFT and OFDM framing
//!
//! From-scratch replacement for the DFT portion of Intel MKL used by the
//! Agora paper: precomputed radix-2 plans ([`FftPlan`]), a naive DFT
//! oracle for tests ([`dft_ref`]), and OFDM subcarrier mapping with cyclic
//! prefix handling ([`ofdm`]).

pub mod dft_ref;
pub mod ofdm;
pub mod plan;
pub mod simd;

pub use ofdm::{Ofdm, SubcarrierMap};
pub use plan::{Direction, FftBatchPlan, FftPlan};
