//! AVX2 butterfly kernels for [`crate::FftPlan`].
//!
//! One `__m256` holds four interleaved `Cf32` values (the same layout
//! trick `agora_math`'s transpose microkernels use), so every butterfly
//! stage with half-width `w >= 4` processes four butterflies per
//! load/store pair. Three structural optimisations on top of that:
//!
//! * the first two stages need no complex multiplies at all — their
//!   twiddles are `1` and `-i` — and are fused into a single in-register
//!   radix-4 kernel;
//! * subsequent stages run in *pairs*: a 4-vector working set carries the
//!   data of stage `s` straight into stage `s+1`, so the buffer is
//!   traversed once per two stages instead of once per stage (the
//!   traversal count, not the multiply count, is what bounds a radix-2
//!   FFT once it is vectorised);
//! * batched execution tiles the transforms into L1-sized groups and
//!   hoists each twiddle load over the whole tile, so independent
//!   per-antenna transforms share twiddle traffic without blowing the
//!   working set past the cache.
//!
//! Later stages read twiddles from the plan's pre-splatted layout
//! (`[re re ...]` / `[-im +im ...]`), so a complex multiply is two
//! multiplies, one in-lane swap, and one add with no broadcasts in the
//! inner loop.
//!
//! All entry points here are `unsafe` and require AVX2; the plan clamps
//! its dispatch tier to `SimdTier::detect()` so they are only reached on
//! capable hosts. The scalar path in `plan.rs` is the reference; the
//! tier-parity proptests there pin these kernels to it.

#![cfg(target_arch = "x86_64")]

use agora_math::Cf32;
use core::arch::x86_64::*;

/// Bytes of transform data a batch tile may occupy: small enough that a
/// tile plus its twiddles stays L1-resident, since every fused stage pair
/// traverses the whole tile.
const TILE_BYTES: usize = 16 * 1024;

/// Transforms per L1 tile for size-`n` transforms (at least one).
pub(crate) fn tile_transforms(n: usize) -> usize {
    (TILE_BYTES / (n * core::mem::size_of::<Cf32>()).max(1)).max(1)
}

/// Runs all butterfly stages over `data`, which holds `data.len() / n`
/// independent bit-reversed transforms of size `n` laid out back to back.
///
/// # Safety
/// Requires AVX2. `n` must be a power of two with `n >= 4`, `data.len()`
/// a multiple of `n`, and the twiddle arrays must come from the matching
/// [`crate::FftPlan`] (length `2 * (n - 4)` each).
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn butterflies_avx2(
    data: &mut [Cf32],
    n: usize,
    tw_re_dup: &[f32],
    tw_im_alt: &[f32],
) {
    debug_assert!(n >= 4 && n.is_power_of_two());
    debug_assert_eq!(data.len() % n, 0);
    let batch = data.len() / n;
    let tile = (TILE_BYTES / (n * core::mem::size_of::<Cf32>())).clamp(1, batch);
    let p = data.as_mut_ptr() as *mut f32;
    let mut t0 = 0usize;
    while t0 < batch {
        let tb = tile.min(batch - t0);
        butterflies_tile(p.add(t0 * 2 * n), n, tb, tw_re_dup, tw_im_alt);
        t0 += tb;
    }
}

/// All stages over one L1-resident tile of `tb` transforms.
///
/// # Safety
/// Requires AVX2; `p` must point at `tb * 2 * n` writable `f32`s.
#[target_feature(enable = "avx2")]
unsafe fn butterflies_tile(p: *mut f32, n: usize, tb: usize, tw_re: &[f32], tw_im: &[f32]) {
    // Stages 0+1 fused: radix-4 on each aligned group of four samples.
    for t in 0..tb {
        let base = t * 2 * n;
        for g4 in 0..n / 4 {
            fused_radix4(p.add(base + 8 * g4));
        }
    }
    // Stages with half-widths 4, 8, ..., n/2, fused three (then two) at a
    // time so the tile is traversed once per fused group instead of once
    // per stage. The splatted arrays store stage `w` at float offset
    // `2 * (w - 4)`.
    let mut w = 4usize;
    while 4 * w <= n / 2 {
        stage_triple(p, n, tb, w, tw_re, tw_im);
        w *= 8;
    }
    if 2 * w <= n / 2 {
        stage_pair(p, n, tb, w, tw_re, tw_im);
        w *= 4;
    }
    if w <= n / 2 {
        stage_single(p, n, tb, w, tw_re, tw_im);
    }
}

/// Complex multiply of four interleaved values by four pre-splatted
/// twiddles: `[re*wr - im*wi, im*wr + re*wi]`.
///
/// # Safety
/// Requires AVX2.
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn cmul(b: __m256, wr: __m256, wi: __m256) -> __m256 {
    let bs = _mm256_permute_ps(b, 0b1011_0001);
    _mm256_add_ps(_mm256_mul_ps(b, wr), _mm256_mul_ps(bs, wi))
}

/// One butterfly stage of half-width `w >= 4` over `tb` transforms, each
/// twiddle vector loaded once per butterfly block and reused across the
/// tile.
///
/// # Safety
/// Requires AVX2; `w` must satisfy `4 <= w <= n / 2`.
#[target_feature(enable = "avx2")]
unsafe fn stage_single(p: *mut f32, n: usize, tb: usize, w: usize, tw_re: &[f32], tw_im: &[f32]) {
    let off = 2 * (w - 4);
    let stride = 2 * w;
    let mut base = 0usize;
    while base < n {
        for jb in (0..w).step_by(4) {
            let wr = _mm256_loadu_ps(tw_re.as_ptr().add(off + 2 * jb));
            let wi = _mm256_loadu_ps(tw_im.as_ptr().add(off + 2 * jb));
            for t in 0..tb {
                let q = p.add(t * 2 * n + 2 * (base + jb));
                let a = _mm256_loadu_ps(q);
                let b = _mm256_loadu_ps(q.add(2 * w));
                let tv = cmul(b, wr, wi);
                _mm256_storeu_ps(q, _mm256_add_ps(a, tv));
                _mm256_storeu_ps(q.add(2 * w), _mm256_sub_ps(a, tv));
            }
        }
        base += stride;
    }
}

/// Two consecutive butterfly stages (`w`, then `2w`) fused into one
/// traversal: a block of four vectors is carried from stage `w`'s
/// butterflies straight into stage `2w`'s without touching memory in
/// between.
///
/// # Safety
/// Requires AVX2; requires `4 <= w` and `2 * w <= n / 2`.
#[target_feature(enable = "avx2")]
unsafe fn stage_pair(p: *mut f32, n: usize, tb: usize, w: usize, tw_re: &[f32], tw_im: &[f32]) {
    let off_s = 2 * (w - 4);
    let off_s1 = 2 * (2 * w - 4);
    let mut base = 0usize;
    while base < n {
        for jb in (0..w).step_by(4) {
            // Stage w twiddle j = jb; stage 2w twiddles j = jb and jb + w.
            let wsr = _mm256_loadu_ps(tw_re.as_ptr().add(off_s + 2 * jb));
            let wsi = _mm256_loadu_ps(tw_im.as_ptr().add(off_s + 2 * jb));
            let wt0r = _mm256_loadu_ps(tw_re.as_ptr().add(off_s1 + 2 * jb));
            let wt0i = _mm256_loadu_ps(tw_im.as_ptr().add(off_s1 + 2 * jb));
            let wt1r = _mm256_loadu_ps(tw_re.as_ptr().add(off_s1 + 2 * (jb + w)));
            let wt1i = _mm256_loadu_ps(tw_im.as_ptr().add(off_s1 + 2 * (jb + w)));
            for t in 0..tb {
                let q = p.add(t * 2 * n + 2 * (base + jb));
                let t0 = _mm256_loadu_ps(q);
                let t1 = _mm256_loadu_ps(q.add(2 * w));
                let t2 = _mm256_loadu_ps(q.add(4 * w));
                let t3 = _mm256_loadu_ps(q.add(6 * w));
                // Stage w: butterflies (t0, t1) and (t2, t3).
                let b1 = cmul(t1, wsr, wsi);
                let u0 = _mm256_add_ps(t0, b1);
                let u1 = _mm256_sub_ps(t0, b1);
                let b3 = cmul(t3, wsr, wsi);
                let u2 = _mm256_add_ps(t2, b3);
                let u3 = _mm256_sub_ps(t2, b3);
                // Stage 2w: butterflies (u0, u2) and (u1, u3).
                let c2 = cmul(u2, wt0r, wt0i);
                _mm256_storeu_ps(q, _mm256_add_ps(u0, c2));
                _mm256_storeu_ps(q.add(4 * w), _mm256_sub_ps(u0, c2));
                let c3 = cmul(u3, wt1r, wt1i);
                _mm256_storeu_ps(q.add(2 * w), _mm256_add_ps(u1, c3));
                _mm256_storeu_ps(q.add(6 * w), _mm256_sub_ps(u1, c3));
            }
        }
        base += 4 * w;
    }
}

/// Three consecutive butterfly stages (`w`, `2w`, `4w`) fused into one
/// traversal of each `8w`-sample block: eight vectors are carried through
/// all three stages in registers (the stage-`4w` twiddles spill, but those
/// reloads hit L1, unlike the tile re-traversals they replace).
///
/// # Safety
/// Requires AVX2; requires `4 <= w` and `4 * w <= n / 2`.
#[target_feature(enable = "avx2")]
unsafe fn stage_triple(p: *mut f32, n: usize, tb: usize, w: usize, tw_re: &[f32], tw_im: &[f32]) {
    let off_s = 2 * (w - 4);
    let off_s1 = 2 * (2 * w - 4);
    let off_s2 = 2 * (4 * w - 4);
    let mut base = 0usize;
    while base < n {
        for jb in (0..w).step_by(4) {
            // Stage w twiddle j = jb; stage 2w twiddles j = jb, jb + w;
            // stage 4w twiddles j = jb, jb + w, jb + 2w, jb + 3w.
            let wsr = _mm256_loadu_ps(tw_re.as_ptr().add(off_s + 2 * jb));
            let wsi = _mm256_loadu_ps(tw_im.as_ptr().add(off_s + 2 * jb));
            let wt0r = _mm256_loadu_ps(tw_re.as_ptr().add(off_s1 + 2 * jb));
            let wt0i = _mm256_loadu_ps(tw_im.as_ptr().add(off_s1 + 2 * jb));
            let wt1r = _mm256_loadu_ps(tw_re.as_ptr().add(off_s1 + 2 * (jb + w)));
            let wt1i = _mm256_loadu_ps(tw_im.as_ptr().add(off_s1 + 2 * (jb + w)));
            let wu0r = _mm256_loadu_ps(tw_re.as_ptr().add(off_s2 + 2 * jb));
            let wu0i = _mm256_loadu_ps(tw_im.as_ptr().add(off_s2 + 2 * jb));
            let wu1r = _mm256_loadu_ps(tw_re.as_ptr().add(off_s2 + 2 * (jb + w)));
            let wu1i = _mm256_loadu_ps(tw_im.as_ptr().add(off_s2 + 2 * (jb + w)));
            let wu2r = _mm256_loadu_ps(tw_re.as_ptr().add(off_s2 + 2 * (jb + 2 * w)));
            let wu2i = _mm256_loadu_ps(tw_im.as_ptr().add(off_s2 + 2 * (jb + 2 * w)));
            let wu3r = _mm256_loadu_ps(tw_re.as_ptr().add(off_s2 + 2 * (jb + 3 * w)));
            let wu3i = _mm256_loadu_ps(tw_im.as_ptr().add(off_s2 + 2 * (jb + 3 * w)));
            for t in 0..tb {
                let q = p.add(t * 2 * n + 2 * (base + jb));
                let t0 = _mm256_loadu_ps(q);
                let t1 = _mm256_loadu_ps(q.add(2 * w));
                let t2 = _mm256_loadu_ps(q.add(4 * w));
                let t3 = _mm256_loadu_ps(q.add(6 * w));
                let t4 = _mm256_loadu_ps(q.add(8 * w));
                let t5 = _mm256_loadu_ps(q.add(10 * w));
                let t6 = _mm256_loadu_ps(q.add(12 * w));
                let t7 = _mm256_loadu_ps(q.add(14 * w));
                // Stage w: (t0,t1) (t2,t3) (t4,t5) (t6,t7), all twiddle jb.
                let b1 = cmul(t1, wsr, wsi);
                let u0 = _mm256_add_ps(t0, b1);
                let u1 = _mm256_sub_ps(t0, b1);
                let b3 = cmul(t3, wsr, wsi);
                let u2 = _mm256_add_ps(t2, b3);
                let u3 = _mm256_sub_ps(t2, b3);
                let b5 = cmul(t5, wsr, wsi);
                let u4 = _mm256_add_ps(t4, b5);
                let u5 = _mm256_sub_ps(t4, b5);
                let b7 = cmul(t7, wsr, wsi);
                let u6 = _mm256_add_ps(t6, b7);
                let u7 = _mm256_sub_ps(t6, b7);
                // Stage 2w: (u0,u2) (u1,u3) and (u4,u6) (u5,u7).
                let c2 = cmul(u2, wt0r, wt0i);
                let v0 = _mm256_add_ps(u0, c2);
                let v2 = _mm256_sub_ps(u0, c2);
                let c3 = cmul(u3, wt1r, wt1i);
                let v1 = _mm256_add_ps(u1, c3);
                let v3 = _mm256_sub_ps(u1, c3);
                let c6 = cmul(u6, wt0r, wt0i);
                let v4 = _mm256_add_ps(u4, c6);
                let v6 = _mm256_sub_ps(u4, c6);
                let c7 = cmul(u7, wt1r, wt1i);
                let v5 = _mm256_add_ps(u5, c7);
                let v7 = _mm256_sub_ps(u5, c7);
                // Stage 4w: (v0,v4) (v1,v5) (v2,v6) (v3,v7).
                let d4 = cmul(v4, wu0r, wu0i);
                _mm256_storeu_ps(q, _mm256_add_ps(v0, d4));
                _mm256_storeu_ps(q.add(8 * w), _mm256_sub_ps(v0, d4));
                let d5 = cmul(v5, wu1r, wu1i);
                _mm256_storeu_ps(q.add(2 * w), _mm256_add_ps(v1, d5));
                _mm256_storeu_ps(q.add(10 * w), _mm256_sub_ps(v1, d5));
                let d6 = cmul(v6, wu2r, wu2i);
                _mm256_storeu_ps(q.add(4 * w), _mm256_add_ps(v2, d6));
                _mm256_storeu_ps(q.add(12 * w), _mm256_sub_ps(v2, d6));
                let d7 = cmul(v7, wu3r, wu3i);
                _mm256_storeu_ps(q.add(6 * w), _mm256_add_ps(v3, d7));
                _mm256_storeu_ps(q.add(14 * w), _mm256_sub_ps(v3, d7));
            }
        }
        base += 8 * w;
    }
}

/// Four-point DFT of four consecutive bit-reversed samples, entirely in
/// registers: stage 0 (twiddle `1`) then stage 1 (twiddles `1`, `-i`).
///
/// # Safety
/// Requires AVX2; `q` must point at 8 readable/writable `f32`s.
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn fused_radix4(q: *mut f32) {
    let v = _mm256_loadu_ps(q); // [x0 x1 x2 x3] as (re, im) pairs
                                // Stage 0: s = [x0+x1, x0-x1, x2+x3, x2-x3]. Complex values are f64
                                // lanes, so pd-shuffles move whole (re, im) pairs.
    let vd = _mm256_castps_pd(v);
    let ve = _mm256_castpd_ps(_mm256_movedup_pd(vd)); // [x0 x0 x2 x2]
    let vo = _mm256_castpd_ps(_mm256_permute_pd(vd, 0b1111)); // [x1 x1 x3 x3]
    let neg_odd = _mm256_set_ps(-0.0, -0.0, 0.0, 0.0, -0.0, -0.0, 0.0, 0.0);
    let s = _mm256_add_ps(ve, _mm256_xor_ps(vo, neg_odd));
    // Stage 1: out = [s0+s2, s1+t3, s0-s2, s1-t3] with t3 = s3 * -i =
    // (s3.im, -s3.re) — a swap and a sign flip, no multiply.
    let lo = _mm256_permute2f128_ps(s, s, 0x00); // [s0 s1 s0 s1]
    let hi = _mm256_permute2f128_ps(s, s, 0x11); // [s2 s3 s2 s3]
    let rot = _mm256_permute_ps(hi, 0b1011_0001); // (im, re) per value
    let neg_im13 = _mm256_set_ps(-0.0, 0.0, 0.0, 0.0, -0.0, 0.0, 0.0, 0.0);
    let rot = _mm256_xor_ps(rot, neg_im13); // (im, -re) in slots 1 and 3
    let tv = _mm256_blend_ps(hi, rot, 0b1100_1100);
    let neg_hi = _mm256_set_ps(-0.0, -0.0, -0.0, -0.0, 0.0, 0.0, 0.0, 0.0);
    let out = _mm256_add_ps(lo, _mm256_xor_ps(tv, neg_hi));
    _mm256_storeu_ps(q, out);
}

/// In-place conjugation (the inverse transform's pre-pass).
///
/// # Safety
/// Requires AVX2.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn conj_avx2(data: &mut [Cf32]) {
    let neg_im = _mm256_set_ps(-0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0);
    let p = data.as_mut_ptr() as *mut f32;
    let quads = data.len() / 4;
    for i in 0..quads {
        let q = p.add(8 * i);
        _mm256_storeu_ps(q, _mm256_xor_ps(_mm256_loadu_ps(q), neg_im));
    }
    for z in &mut data[quads * 4..] {
        *z = z.conj();
    }
}

/// In-place conjugate-and-scale (the inverse transform's post-pass:
/// `z -> conj(z) / n`).
///
/// # Safety
/// Requires AVX2.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn conj_scale_avx2(data: &mut [Cf32], scale: f32) {
    let neg_im = _mm256_set_ps(-0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0);
    let vs = _mm256_set1_ps(scale);
    let p = data.as_mut_ptr() as *mut f32;
    let quads = data.len() / 4;
    for i in 0..quads {
        let q = p.add(8 * i);
        let v = _mm256_xor_ps(_mm256_loadu_ps(q), neg_im);
        _mm256_storeu_ps(q, _mm256_mul_ps(v, vs));
    }
    for z in &mut data[quads * 4..] {
        *z = z.conj().scale(scale);
    }
}
