//! # agora-queue — lock-free synchronisation primitives
//!
//! From-scratch replacement for the moodycamel `ConcurrentQueue` the Agora
//! paper uses for manager/worker messaging:
//!
//! * [`mpmc`]: Vyukov-style bounded MPMC queue (task and completion queues).
//! * [`spsc`]: wait-free single-producer/single-consumer ring (network
//!   thread channels).
//! * [`msg`]: the 64-byte, one-cache-line message format (Figure 3).
//! * [`padded`]: cache-line padding to prevent false sharing (§4.1).
//! * [`lane`]: per-worker bounded task lanes with batch stealing (the
//!   work-stealing scheduler's dispatch rings).
//! * [`park`]: spin → yield → park idling with a lost-wakeup-free
//!   eventcount gate.
//! * [`affinity`]: best-effort `sched_setaffinity` core pinning.

pub mod affinity;
pub mod lane;
pub mod mpmc;
pub mod msg;
pub mod padded;
pub mod park;
pub mod spsc;

pub use lane::TaskLane;
pub use mpmc::MpmcQueue;
pub use msg::{Msg, TaskType};
pub use padded::{CachePadded, CACHE_LINE};
pub use park::{IdleAction, IdleBackoff, IdleGate};
pub use spsc::{spsc, Consumer, Producer};
