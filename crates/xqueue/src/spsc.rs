//! Bounded wait-free single-producer single-consumer ring.
//!
//! The network threads each feed the manager through a dedicated channel
//! (Figure 3's `Msg(RX)`/`Msg(TX)` pairs). With exactly one producer and
//! one consumer a plain ring with two monotone indices suffices — no CAS at
//! all, one release store per operation. Split into [`Producer`] and
//! [`Consumer`] halves so the single-endpoint discipline is enforced by
//! ownership rather than by convention.

use crate::padded::CachePadded;
use core::cell::UnsafeCell;
use core::mem::MaybeUninit;
use core::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

struct Ring<T> {
    buffer: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next position to write (owned by the producer, read by consumer).
    head: CachePadded<AtomicUsize>,
    /// Next position to read (owned by the consumer, read by producer).
    tail: CachePadded<AtomicUsize>,
}

unsafe impl<T: Send> Send for Ring<T> {}
unsafe impl<T: Send> Sync for Ring<T> {}

/// The sending half of an SPSC ring.
pub struct Producer<T> {
    ring: Arc<Ring<T>>,
    /// Cached copy of the consumer's tail to avoid re-reading the shared
    /// atomic on every push.
    cached_tail: usize,
}

/// The receiving half of an SPSC ring.
pub struct Consumer<T> {
    ring: Arc<Ring<T>>,
    /// Cached copy of the producer's head.
    cached_head: usize,
}

// Each half is used from one thread at a time but may be *moved* across
// threads.
unsafe impl<T: Send> Send for Producer<T> {}
unsafe impl<T: Send> Send for Consumer<T> {}

/// Creates an SPSC ring with capacity rounded up to a power of two
/// (minimum 2).
pub fn spsc<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let buffer: Box<[UnsafeCell<MaybeUninit<T>>]> =
        (0..cap).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect();
    let ring = Arc::new(Ring {
        buffer,
        mask: cap - 1,
        head: CachePadded::new(AtomicUsize::new(0)),
        tail: CachePadded::new(AtomicUsize::new(0)),
    });
    (Producer { ring: ring.clone(), cached_tail: 0 }, Consumer { ring, cached_head: 0 })
}

impl<T> Producer<T> {
    /// Attempts to push; returns `Err(value)` if the ring is full.
    pub fn push(&mut self, value: T) -> Result<(), T> {
        let head = self.ring.head.load(Ordering::Relaxed);
        if head.wrapping_sub(self.cached_tail) > self.ring.mask {
            // Looks full against the cached tail; refresh.
            self.cached_tail = self.ring.tail.load(Ordering::Acquire);
            if head.wrapping_sub(self.cached_tail) > self.ring.mask {
                return Err(value);
            }
        }
        unsafe {
            (*self.ring.buffer[head & self.ring.mask].get()).write(value);
        }
        self.ring.head.store(head.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Approximate occupancy (diagnostics only).
    pub fn len(&self) -> usize {
        self.ring.head.load(Ordering::Relaxed).wrapping_sub(self.ring.tail.load(Ordering::Relaxed))
    }

    /// Approximate emptiness (diagnostics only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Consumer<T> {
    /// Attempts to pop; returns `None` if the ring is empty.
    pub fn pop(&mut self) -> Option<T> {
        let tail = self.ring.tail.load(Ordering::Relaxed);
        if tail == self.cached_head {
            self.cached_head = self.ring.head.load(Ordering::Acquire);
            if tail == self.cached_head {
                return None;
            }
        }
        let value = unsafe { (*self.ring.buffer[tail & self.ring.mask].get()).assume_init_read() };
        self.ring.tail.store(tail.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// Approximate occupancy (diagnostics only).
    pub fn len(&self) -> usize {
        self.ring.head.load(Ordering::Relaxed).wrapping_sub(self.ring.tail.load(Ordering::Relaxed))
    }

    /// Approximate emptiness (diagnostics only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        // The consumer is the last to see values; drain so destructors run.
        // (If the producer outlives the consumer it can no longer insert
        // values that would leak, because Producer::push only writes into
        // slots the consumer has already vacated.)
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let (mut tx, mut rx) = spsc(8);
        for i in 0..8 {
            tx.push(i).unwrap();
        }
        assert_eq!(tx.push(99), Err(99));
        for i in 0..8 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn interleaved_wraparound() {
        let (mut tx, mut rx) = spsc(4);
        for lap in 0..1000 {
            tx.push(lap).unwrap();
            tx.push(lap + 1_000_000).unwrap();
            assert_eq!(rx.pop(), Some(lap));
            assert_eq!(rx.pop(), Some(lap + 1_000_000));
        }
    }

    #[test]
    fn cross_thread_order_preserved() {
        let (mut tx, mut rx) = spsc(128);
        let producer = std::thread::spawn(move || {
            for i in 0..30_000u64 {
                let mut v = i;
                while let Err(back) = tx.push(v) {
                    v = back;
                    std::hint::spin_loop();
                }
            }
        });
        let mut expected = 0u64;
        while expected < 30_000 {
            if let Some(v) = rx.pop() {
                assert_eq!(v, expected);
                expected += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
    }

    #[test]
    fn drop_consumer_drains_values() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let counter = Arc::new(AtomicU64::new(0));
        struct Probe(Arc<AtomicU64>);
        impl Drop for Probe {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (mut tx, rx) = spsc(8);
        for _ in 0..3 {
            tx.push(Probe(counter.clone())).map_err(|_| ()).unwrap();
        }
        drop(rx);
        assert_eq!(counter.load(Ordering::SeqCst), 3);
    }
}
