//! Cache-line padding.
//!
//! Agora's manager and workers synchronise tens of thousands of times per
//! frame through shared counters and queue indices. Co-locating two
//! independently written atomics in one 64-byte line makes every write
//! invalidate the other core's cached copy ("false sharing"); the paper
//! calls this out in §4.1 ("We also pad buffers to cache line size to
//! avoid false sharing"). [`CachePadded`] aligns and pads a value to the
//! x86 cache-line size.

use core::ops::{Deref, DerefMut};

/// The cache line size this workspace targets (x86-64 servers).
pub const CACHE_LINE: usize = 64;

/// Wraps a value so it occupies (at least) its own cache line.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in its own cache line.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Unwraps the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    #[inline(always)]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    #[inline(always)]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::sync::atomic::AtomicU64;

    #[test]
    fn alignment_is_cache_line() {
        assert_eq!(core::mem::align_of::<CachePadded<u8>>(), CACHE_LINE);
        assert_eq!(core::mem::align_of::<CachePadded<AtomicU64>>(), CACHE_LINE);
    }

    #[test]
    fn size_is_multiple_of_cache_line() {
        assert_eq!(core::mem::size_of::<CachePadded<u8>>(), CACHE_LINE);
        assert_eq!(core::mem::size_of::<CachePadded<[u64; 9]>>(), 2 * CACHE_LINE);
    }

    #[test]
    fn adjacent_elements_in_array_do_not_share_lines() {
        let arr = [CachePadded::new(0u8), CachePadded::new(1u8)];
        let a = &*arr[0] as *const u8 as usize;
        let b = &*arr[1] as *const u8 as usize;
        assert!(b - a >= CACHE_LINE);
    }

    #[test]
    fn deref_and_into_inner() {
        let mut p = CachePadded::new(41u32);
        *p += 1;
        assert_eq!(*p, 42);
        assert_eq!(p.into_inner(), 42);
    }
}
