//! Bounded lock-free multi-producer multi-consumer queue.
//!
//! This is the workhorse behind Agora's task and completion queues. The
//! design is Dmitry Vyukov's bounded MPMC queue: a power-of-two ring of
//! slots, each carrying a sequence number that encodes whether the slot is
//! ready for a producer or a consumer. Producers and consumers claim slots
//! with a single CAS on their respective cursor; there are no locks and no
//! allocation after construction. The paper uses moodycamel's
//! `ConcurrentQueue` for the same role; Vyukov's design is simpler and has
//! the same single-CAS fast path.
//!
//! Progress caveat (same as the original): a producer that claims a slot
//! and is descheduled before publishing delays consumers of *that slot*,
//! i.e. the queue is lock-free but not wait-free. Agora pins one thread
//! per core and keeps critical sections at a few instructions, so this is
//! immaterial in practice.

use crate::padded::CachePadded;
use core::cell::UnsafeCell;
use core::mem::MaybeUninit;
use core::sync::atomic::{AtomicUsize, Ordering};

struct Slot<T> {
    /// Sequence: `i` when writable by the producer that claims position
    /// `i`, `i + 1` once the value is published, `i + capacity` when
    /// consumed and writable again on the next lap.
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// A bounded lock-free MPMC queue.
///
/// `T` should be small and `Copy`-like (the engine enqueues 64-byte
/// [`crate::msg::Msg`] values); larger payloads work but move through the
/// ring by value.
pub struct MpmcQueue<T> {
    buffer: Box<[Slot<T>]>,
    mask: usize,
    enqueue_pos: CachePadded<AtomicUsize>,
    dequeue_pos: CachePadded<AtomicUsize>,
}

unsafe impl<T: Send> Send for MpmcQueue<T> {}
unsafe impl<T: Send> Sync for MpmcQueue<T> {}

impl<T> MpmcQueue<T> {
    /// Creates a queue with capacity rounded up to the next power of two
    /// (minimum 2).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let buffer: Box<[Slot<T>]> = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        Self {
            buffer,
            mask: cap - 1,
            enqueue_pos: CachePadded::new(AtomicUsize::new(0)),
            dequeue_pos: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    /// Capacity of the ring (a power of two).
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Attempts to enqueue; returns `Err(value)` if the queue is full.
    pub fn push(&self, value: T) -> Result<(), T> {
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.buffer[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos as isize;
            if diff == 0 {
                // Slot is free for this position; try to claim it.
                match self.enqueue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // We own the slot: publish value then bump seq.
                        unsafe { (*slot.value.get()).write(value) };
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(actual) => pos = actual,
                }
            } else if diff < 0 {
                // Slot still holds an unconsumed value from the previous
                // lap: the queue is full.
                return Err(value);
            } else {
                // Another producer claimed this position; reload.
                pos = self.enqueue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Attempts to dequeue; returns `None` if the queue is empty.
    pub fn pop(&self) -> Option<T> {
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.buffer[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - (pos.wrapping_add(1)) as isize;
            if diff == 0 {
                match self.dequeue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.seq.store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        return Some(value);
                    }
                    Err(actual) => pos = actual,
                }
            } else if diff < 0 {
                // Nothing published at this position yet: empty.
                return None;
            } else {
                pos = self.dequeue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Enqueues a prefix of `values` with ONE cursor claim: the producer
    /// counts the consecutive free slots ahead of `enqueue_pos`, CASes
    /// the cursor forward by that many in a single step, then publishes
    /// the claimed slots in order. Returns how many values were enqueued
    /// (0 when the queue is full); the caller owns the unpushed tail.
    ///
    /// Compared with `n` single [`Self::push`] calls this amortises the
    /// cursor CAS — the dominant cost of an uncontended enqueue — across
    /// the whole batch. The progress caveat scales with the batch: a
    /// producer descheduled mid-publish delays consumers of all claimed
    /// slots, so batches should stay small (the engine uses one symbol's
    /// task messages).
    pub fn push_batch(&self, values: &[T]) -> usize
    where
        T: Copy,
    {
        if values.is_empty() {
            return 0;
        }
        let max = values.len().min(self.mask + 1);
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            // Count consecutive free slots starting at `pos`.
            let mut n = 0usize;
            let mut stale = false;
            while n < max {
                let p = pos.wrapping_add(n);
                let seq = self.buffer[p & self.mask].seq.load(Ordering::Acquire);
                let diff = (seq as isize).wrapping_sub(p as isize);
                if diff == 0 {
                    n += 1;
                } else if diff < 0 {
                    // Unconsumed value from the previous lap: full here.
                    break;
                } else {
                    // Another producer already claimed `p`: our cursor
                    // read is stale.
                    stale = true;
                    break;
                }
            }
            if n == 0 {
                if !stale {
                    return 0; // full at the head position
                }
                pos = self.enqueue_pos.load(Ordering::Relaxed);
                continue;
            }
            match self.enqueue_pos.compare_exchange_weak(
                pos,
                pos.wrapping_add(n),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    // We own positions `pos..pos+n` exclusively (the
                    // cursor is the sole source of claims): publish in
                    // order so consumers drain FIFO.
                    for (i, &v) in values[..n].iter().enumerate() {
                        let p = pos.wrapping_add(i);
                        let slot = &self.buffer[p & self.mask];
                        unsafe { (*slot.value.get()).write(v) };
                        slot.seq.store(p.wrapping_add(1), Ordering::Release);
                    }
                    return n;
                }
                Err(actual) => pos = actual,
            }
        }
    }

    /// Dequeues up to `max` values with ONE cursor claim, appending them
    /// to `out`. Returns how many were dequeued (0 when empty). The
    /// batch-claim counterpart of [`Self::push_batch`]: one CAS retires
    /// a whole run of published slots.
    pub fn pop_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        let max = max.min(self.mask + 1);
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            // Count consecutive published slots starting at `pos`.
            let mut n = 0usize;
            let mut stale = false;
            while n < max {
                let p = pos.wrapping_add(n);
                let seq = self.buffer[p & self.mask].seq.load(Ordering::Acquire);
                let diff = (seq as isize).wrapping_sub(p.wrapping_add(1) as isize);
                if diff == 0 {
                    n += 1;
                } else if diff < 0 {
                    // Nothing published at `p` yet: end of the run.
                    break;
                } else {
                    stale = true;
                    break;
                }
            }
            if n == 0 {
                if !stale {
                    return 0; // empty at the head position
                }
                pos = self.dequeue_pos.load(Ordering::Relaxed);
                continue;
            }
            match self.dequeue_pos.compare_exchange_weak(
                pos,
                pos.wrapping_add(n),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    for i in 0..n {
                        let p = pos.wrapping_add(i);
                        let slot = &self.buffer[p & self.mask];
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        out.push(value);
                        slot.seq.store(p.wrapping_add(self.mask + 1), Ordering::Release);
                    }
                    return n;
                }
                Err(actual) => pos = actual,
            }
        }
    }

    /// Approximate number of queued elements (racy; diagnostics only).
    pub fn len(&self) -> usize {
        let tail = self.enqueue_pos.load(Ordering::Relaxed);
        let head = self.dequeue_pos.load(Ordering::Relaxed);
        tail.wrapping_sub(head)
    }

    /// Approximate emptiness (racy; diagnostics only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for MpmcQueue<T> {
    fn drop(&mut self) {
        // Drain any unconsumed values so their destructors run.
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn fifo_order_single_thread() {
        let q = MpmcQueue::new(8);
        for i in 0..8 {
            q.push(i).unwrap();
        }
        for i in 0..8 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(MpmcQueue::<u8>::new(5).capacity(), 8);
        assert_eq!(MpmcQueue::<u8>::new(0).capacity(), 2);
        assert_eq!(MpmcQueue::<u8>::new(64).capacity(), 64);
    }

    #[test]
    fn push_fails_when_full() {
        let q = MpmcQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        q.push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn wraps_many_laps() {
        let q = MpmcQueue::new(4);
        for lap in 0..100u64 {
            for i in 0..4 {
                q.push(lap * 4 + i).unwrap();
            }
            for i in 0..4 {
                assert_eq!(q.pop(), Some(lap * 4 + i));
            }
        }
    }

    #[test]
    fn drop_releases_unconsumed_values() {
        let counter = Arc::new(AtomicU64::new(0));
        struct Probe(Arc<AtomicU64>);
        impl Drop for Probe {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let q = MpmcQueue::new(8);
            for _ in 0..5 {
                q.push(Probe(counter.clone())).map_err(|_| ()).unwrap();
            }
            let _ = q.pop(); // one dropped here
        }
        assert_eq!(counter.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn mpmc_stress_no_loss_no_dup() {
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 4;
        const PER_PRODUCER: u64 = 4_000;
        let q = Arc::new(MpmcQueue::new(1024));
        let sum = Arc::new(AtomicU64::new(0));
        let count = Arc::new(AtomicU64::new(0));

        std::thread::scope(|s| {
            for p in 0..PRODUCERS {
                let q = q.clone();
                s.spawn(move || {
                    for i in 0..PER_PRODUCER {
                        let v = (p as u64) * PER_PRODUCER + i + 1;
                        let mut item = v;
                        loop {
                            match q.push(item) {
                                Ok(()) => break,
                                Err(back) => {
                                    item = back;
                                    std::hint::spin_loop();
                                }
                            }
                        }
                    }
                });
            }
            for _ in 0..CONSUMERS {
                let q = q.clone();
                let sum = sum.clone();
                let count = count.clone();
                s.spawn(move || {
                    let total = PRODUCERS as u64 * PER_PRODUCER;
                    loop {
                        if count.load(Ordering::SeqCst) >= total {
                            break;
                        }
                        if let Some(v) = q.pop() {
                            sum.fetch_add(v, Ordering::SeqCst);
                            count.fetch_add(1, Ordering::SeqCst);
                        } else {
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });

        let n = PRODUCERS as u64 * PER_PRODUCER;
        assert_eq!(count.load(Ordering::SeqCst), n);
        assert_eq!(sum.load(Ordering::SeqCst), n * (n + 1) / 2);
    }

    #[test]
    fn mpmc_stress_small_capacities_exact_multiset() {
        // At tiny capacities every push contends with wrap-around, which
        // is where a Vyukov ring's sequence arithmetic would break. The
        // exact multiset check (one slot per value) catches both loss and
        // duplication, which a sum test alone can miss when errors cancel.
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 4;
        const PER_PRODUCER: usize = 400;
        for capacity in [2usize, 4, 8] {
            let q = Arc::new(MpmcQueue::new(capacity));
            assert_eq!(q.capacity(), capacity);
            let total = PRODUCERS * PER_PRODUCER;
            let seen: Vec<AtomicU64> = (0..total).map(|_| AtomicU64::new(0)).collect();
            let consumed = Arc::new(AtomicU64::new(0));

            std::thread::scope(|s| {
                for p in 0..PRODUCERS {
                    let q = q.clone();
                    s.spawn(move || {
                        for i in 0..PER_PRODUCER {
                            let mut item = (p * PER_PRODUCER + i) as u64;
                            while let Err(back) = q.push(item) {
                                item = back;
                                std::hint::spin_loop();
                            }
                        }
                    });
                }
                for _ in 0..CONSUMERS {
                    let q = q.clone();
                    let consumed = consumed.clone();
                    let seen = &seen;
                    s.spawn(move || loop {
                        if consumed.load(Ordering::SeqCst) >= total as u64 {
                            break;
                        }
                        if let Some(v) = q.pop() {
                            seen[v as usize].fetch_add(1, Ordering::SeqCst);
                            consumed.fetch_add(1, Ordering::SeqCst);
                        } else {
                            std::thread::yield_now();
                        }
                    });
                }
            });

            for (v, slot) in seen.iter().enumerate() {
                let n = slot.load(Ordering::SeqCst);
                assert_eq!(n, 1, "capacity {capacity}: value {v} seen {n} times");
            }
        }
    }

    #[test]
    fn push_batch_claims_prefix_and_preserves_fifo() {
        let q = MpmcQueue::new(8);
        assert_eq!(q.push_batch(&[1, 2, 3]), 3);
        assert_eq!(q.push_batch(&[4, 5, 6, 7, 8, 9, 10]), 5, "only the free slots are claimed");
        assert_eq!(q.push_batch(&[99]), 0, "full queue pushes nothing");
        for i in 1..=8 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_batch_drains_in_order() {
        let q = MpmcQueue::new(8);
        for i in 0..6 {
            q.push(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(&mut out, 4), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(q.pop_batch(&mut out, 10), 2, "bounded by what is queued");
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(q.pop_batch(&mut out, 4), 0, "empty queue pops nothing");
    }

    #[test]
    fn batch_ops_wrap_many_laps() {
        let q = MpmcQueue::new(4);
        let mut out: Vec<u64> = Vec::new();
        for lap in 0..200u64 {
            let vals = [lap * 3, lap * 3 + 1, lap * 3 + 2];
            assert_eq!(q.push_batch(&vals), 3);
            out.clear();
            assert_eq!(q.pop_batch(&mut out, 8), 3);
            assert_eq!(out, vals);
        }
    }

    #[test]
    fn batch_ops_interoperate_with_single_ops() {
        let q = MpmcQueue::new(16);
        q.push(0u64).unwrap();
        assert_eq!(q.push_batch(&[1, 2, 3]), 3);
        q.push(4).unwrap();
        let mut out = Vec::new();
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop_batch(&mut out, 3), 3);
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(q.pop(), Some(4));
    }

    #[test]
    fn batch_stress_no_loss_no_dup() {
        // Mixed single/batch producers and batch consumers at a small
        // capacity: the exact multiset check catches loss, duplication
        // and any claim/publish ordering bug in the batched cursor path.
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 4;
        const PER_PRODUCER: usize = 1200;
        let q = Arc::new(MpmcQueue::new(16));
        let total = PRODUCERS * PER_PRODUCER;
        let seen: Vec<AtomicU64> = (0..total).map(|_| AtomicU64::new(0)).collect();
        let consumed = Arc::new(AtomicU64::new(0));

        std::thread::scope(|s| {
            for p in 0..PRODUCERS {
                let q = q.clone();
                s.spawn(move || {
                    let vals: Vec<u64> =
                        (0..PER_PRODUCER).map(|i| (p * PER_PRODUCER + i) as u64).collect();
                    let mut off = 0;
                    while off < vals.len() {
                        // Alternate batch sizes to mix claim shapes.
                        let want = 1 + (off % 7).min(vals.len() - off - 1);
                        let n = q.push_batch(&vals[off..off + want]);
                        if n == 0 {
                            std::hint::spin_loop();
                        }
                        off += n;
                    }
                });
            }
            for _ in 0..CONSUMERS {
                let q = q.clone();
                let consumed = consumed.clone();
                let seen = &seen;
                s.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        if consumed.load(Ordering::SeqCst) >= total as u64 {
                            break;
                        }
                        out.clear();
                        let n = q.pop_batch(&mut out, 5);
                        if n == 0 {
                            std::thread::yield_now();
                            continue;
                        }
                        for &v in &out {
                            seen[v as usize].fetch_add(1, Ordering::SeqCst);
                        }
                        consumed.fetch_add(n as u64, Ordering::SeqCst);
                    }
                });
            }
        });

        for (v, slot) in seen.iter().enumerate() {
            let n = slot.load(Ordering::SeqCst);
            assert_eq!(n, 1, "value {v} seen {n} times");
        }
    }

    #[test]
    fn spsc_usage_preserves_order_across_threads() {
        let q = Arc::new(MpmcQueue::new(64));
        let q2 = q.clone();
        let producer = std::thread::spawn(move || {
            for i in 0..20_000u64 {
                let mut v = i;
                while let Err(back) = q2.push(v) {
                    v = back;
                    std::hint::spin_loop();
                }
            }
        });
        let mut expected = 0u64;
        while expected < 20_000 {
            if let Some(v) = q.pop() {
                assert_eq!(v, expected);
                expected += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
    }
}
