//! Core pinning via `sched_setaffinity`, with a portable no-op fallback.
//!
//! Agora dedicates one pinned thread per core (§5); unpinned threads
//! let the OS migrate workers across cores and wreck the cache-resident
//! frame buffers. Pinning is best-effort everywhere: on non-Linux
//! targets, or when the syscall fails (cgroup cpuset restrictions,
//! single-core machines), callers simply run unpinned.
//!
//! Hand-declared FFI — no libc crate — following the same pattern as
//! the transport crate's `sys.rs`.

/// Number of CPUs visible to this process (always ≥ 1).
pub fn available_cpus() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Pins the calling thread to `cpu`. Returns `true` on success, `false`
/// when pinning is unsupported or refused (the caller keeps running
/// unpinned — this is a performance hint, never a correctness
/// requirement).
pub fn pin_current_thread(cpu: usize) -> bool {
    imp::pin_current_thread(cpu)
}

#[cfg(target_os = "linux")]
mod imp {
    /// 1024-bit CPU set, matching the kernel's default `cpu_set_t` size.
    const CPU_SET_WORDS: usize = 16;
    const CPU_SET_BYTES: usize = CPU_SET_WORDS * 8;

    extern "C" {
        // int sched_setaffinity(pid_t pid, size_t cpusetsize, const cpu_set_t *mask);
        // pid 0 means the calling thread.
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }

    pub fn pin_current_thread(cpu: usize) -> bool {
        if cpu >= CPU_SET_WORDS * 64 {
            return false;
        }
        let mut mask = [0u64; CPU_SET_WORDS];
        mask[cpu / 64] = 1u64 << (cpu % 64);
        // SAFETY: `mask` is a valid, initialized CPU_SET_BYTES-byte
        // buffer that outlives the call; pid 0 targets only the calling
        // thread, so no other thread's affinity is touched.
        let rc = unsafe { sched_setaffinity(0, CPU_SET_BYTES, mask.as_ptr()) };
        rc == 0
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    pub fn pin_current_thread(_cpu: usize) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn available_cpus_is_positive() {
        assert!(available_cpus() >= 1);
    }

    #[test]
    fn pin_to_out_of_range_cpu_fails_gracefully() {
        // CPU ids past the mask width (or not present) must report
        // failure, not panic or abort.
        assert!(!pin_current_thread(100_000));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn pin_to_cpu0_succeeds_on_linux() {
        // CPU 0 exists on every machine; a cgroup cpuset could exclude
        // it in exotic setups, so tolerate (but don't expect) failure
        // only if *no* visible CPU accepts the pin.
        let ok = (0..available_cpus()).any(pin_current_thread);
        assert!(ok, "pinning to every visible CPU failed");
    }
}
