//! Per-worker task lanes for the work-stealing scheduler.
//!
//! A lane is a small bounded ring owned by one worker: the manager
//! pushes that worker's tasks into it (batched — one cursor claim per
//! symbol's worth of messages), the owner drains it in batches, and
//! idle neighbours steal half the backlog at a time. Built on the
//! Vyukov [`MpmcQueue`] so stealing needs no extra synchronisation:
//! steals are just concurrent `pop_batch` calls from non-owner threads.
//!
//! This replaces the *shared* per-type queues as the dispatch hot path:
//! with W workers hammering one queue, every operation contends on two
//! global cursors; with per-worker lanes the common case is one
//! producer (the manager) and one consumer (the owner) per ring, and
//! cross-worker traffic only happens on imbalance (steals) or overflow
//! (fallback to the shared queues).

use crate::mpmc::MpmcQueue;

/// A bounded per-worker task lane (manager-filled, owner-drained,
/// neighbour-stealable).
pub struct TaskLane<T> {
    ring: MpmcQueue<T>,
}

impl<T> TaskLane<T> {
    /// Creates a lane with capacity rounded up to the next power of two.
    pub fn new(capacity: usize) -> Self {
        Self { ring: MpmcQueue::new(capacity) }
    }

    /// Lane capacity (a power of two).
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// Approximate backlog (racy; used for least-loaded placement and
    /// steal sizing).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Approximate emptiness (racy; diagnostics and idle checks only).
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Enqueues one task; `Err(value)` when the lane is full (the caller
    /// falls back to the shared per-type queue).
    pub fn push(&self, value: T) -> Result<(), T> {
        self.ring.push(value)
    }

    /// Enqueues a prefix of `values` with one cursor claim; returns how
    /// many fit. The caller overflows the tail to the shared queues.
    pub fn push_batch(&self, values: &[T]) -> usize
    where
        T: Copy,
    {
        self.ring.push_batch(values)
    }

    /// Owner dequeue of a single task.
    pub fn pop(&self) -> Option<T> {
        self.ring.pop()
    }

    /// Owner dequeue of up to `max` tasks in one cursor claim.
    pub fn pop_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        self.ring.pop_batch(out, max)
    }

    /// Steals up to half of the victim's current backlog (capped at
    /// `max`) in one cursor claim. Taking half keeps the victim's owner
    /// supplied while spreading a burst across the pool; returns how
    /// many tasks were actually stolen (the backlog is a racy estimate).
    pub fn steal_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        let take = self.len().div_ceil(2).min(max);
        if take == 0 {
            return 0;
        }
        self.ring.pop_batch(out, take)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_drains_fifo() {
        let lane = TaskLane::new(8);
        assert_eq!(lane.push_batch(&[1, 2, 3, 4]), 4);
        let mut out = Vec::new();
        assert_eq!(lane.pop_batch(&mut out, 8), 4);
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn full_lane_rejects_push() {
        let lane = TaskLane::new(2);
        lane.push(1).unwrap();
        lane.push(2).unwrap();
        assert_eq!(lane.push(3), Err(3));
        assert_eq!(lane.push_batch(&[4, 5]), 0);
    }

    #[test]
    fn steal_takes_half_the_backlog() {
        let lane = TaskLane::new(16);
        assert_eq!(lane.push_batch(&[0, 1, 2, 3, 4, 5, 6, 7]), 8);
        let mut loot = Vec::new();
        assert_eq!(lane.steal_batch(&mut loot, 16), 4, "half of 8");
        assert_eq!(loot, vec![0, 1, 2, 3], "steals come from the head (FIFO)");
        assert_eq!(lane.len(), 4, "owner keeps the other half");
        loot.clear();
        assert_eq!(lane.steal_batch(&mut loot, 1), 1, "cap bounds the steal");
        assert_eq!(lane.len(), 3);
    }

    #[test]
    fn steal_from_empty_lane_is_zero() {
        let lane: TaskLane<u32> = TaskLane::new(4);
        let mut loot = Vec::new();
        assert_eq!(lane.steal_batch(&mut loot, 8), 0);
        assert!(loot.is_empty());
    }

    #[test]
    fn concurrent_owner_and_thief_lose_nothing() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        const TOTAL: usize = 8_000;
        let lane = Arc::new(TaskLane::new(64));
        let taken = Arc::new(AtomicU64::new(0));
        let sum = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            {
                let lane = lane.clone();
                s.spawn(move || {
                    let vals: Vec<u64> = (1..=TOTAL as u64).collect();
                    let mut off = 0;
                    while off < vals.len() {
                        let n = lane.push_batch(&vals[off..(off + 8).min(vals.len())]);
                        if n == 0 {
                            std::thread::yield_now();
                        }
                        off += n;
                    }
                });
            }
            for stealer in [false, true] {
                let lane = lane.clone();
                let taken = taken.clone();
                let sum = sum.clone();
                s.spawn(move || {
                    let mut out = Vec::new();
                    while taken.load(Ordering::SeqCst) < TOTAL as u64 {
                        out.clear();
                        let n = if stealer {
                            lane.steal_batch(&mut out, 8)
                        } else {
                            lane.pop_batch(&mut out, 8)
                        };
                        if n == 0 {
                            std::thread::yield_now();
                            continue;
                        }
                        sum.fetch_add(out.iter().sum::<u64>(), Ordering::SeqCst);
                        taken.fetch_add(n as u64, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(taken.load(Ordering::SeqCst), TOTAL as u64);
        let t = TOTAL as u64;
        assert_eq!(sum.load(Ordering::SeqCst), t * (t + 1) / 2);
    }
}
