//! Adaptive idling for worker threads: bounded spin → yield → park.
//!
//! The engine's workers used to busy-poll the task queues with an
//! unconditional `yield_now`, which burns a full core per idle worker —
//! harmless on a dedicated machine, hostile in a multi-cell deployment
//! where parked cells should leave their cores to busy ones.
//!
//! [`IdleGate`] is an eventcount: a worker that has exhausted its spin
//! budget reads the gate's epoch, re-checks its queues, and parks only
//! if the epoch is unchanged — any producer that pushed work in between
//! bumped the epoch (and woke sleepers), so the wakeup cannot be lost.
//! The waker takes the mutex only when `sleepers > 0`, keeping the
//! hot dispatch path to one atomic load in the common no-sleeper case.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Eventcount-style park/wake gate shared by a pool of workers.
pub struct IdleGate {
    /// Bumped by every wake; sleepers re-check against their snapshot.
    epoch: AtomicUsize,
    /// Number of workers inside (or committing to) `park`.
    sleepers: AtomicUsize,
    /// Serializes the epoch re-check against wakers (lost-wakeup guard).
    lock: Mutex<()>,
    cond: Condvar,
}

impl IdleGate {
    pub fn new() -> Self {
        Self {
            epoch: AtomicUsize::new(0),
            sleepers: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cond: Condvar::new(),
        }
    }

    /// Snapshot of the wake epoch. Read this *before* the final
    /// empty-queue check; pass it to [`park`](Self::park).
    pub fn epoch(&self) -> usize {
        self.epoch.load(Ordering::Acquire)
    }

    /// Number of currently parked (or parking) workers; racy, for stats.
    pub fn sleepers(&self) -> usize {
        self.sleepers.load(Ordering::Relaxed)
    }

    /// Announces new work: bumps the epoch and wakes sleepers if any.
    /// Returns `true` if sleepers were (possibly) woken — callers use
    /// this to count wake events.
    pub fn wake_all(&self) -> bool {
        self.epoch.fetch_add(1, Ordering::Release);
        if self.sleepers.load(Ordering::SeqCst) == 0 {
            return false;
        }
        // Taking the lock orders this wake after any in-flight parker's
        // epoch re-check: the parker either sees the new epoch and skips
        // the wait, or is already waiting and receives the notify.
        let _g = self.lock.lock().unwrap();
        self.cond.notify_all();
        true
    }

    /// Parks until the epoch moves past `seen` or `timeout` elapses.
    /// Returns `true` if the park actually slept (epoch was unchanged).
    ///
    /// The caller must re-check its queues after `epoch()` and before
    /// calling this; work pushed after the snapshot bumps the epoch and
    /// makes this return immediately.
    pub fn park(&self, seen: usize, timeout: Duration) -> bool {
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        let slept;
        {
            let guard = self.lock.lock().unwrap();
            if self.epoch.load(Ordering::Acquire) != seen {
                slept = false;
            } else {
                // Timeout is belt-and-braces against any missed wake;
                // correctness never depends on it.
                let _ = self.cond.wait_timeout(guard, timeout).unwrap();
                slept = true;
            }
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
        slept
    }
}

impl Default for IdleGate {
    fn default() -> Self {
        Self::new()
    }
}

/// What a worker should do on an empty poll, from [`IdleBackoff`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdleAction {
    /// Spin again (cheap `hint::spin_loop`).
    Spin,
    /// Yield the timeslice.
    Yield,
    /// Take an epoch snapshot, re-check queues, then park on the gate.
    Park,
}

/// Per-worker backoff ladder: `SPIN` spins, then `YIELD` yields, then
/// park until woken. Reset whenever work is found.
pub struct IdleBackoff {
    streak: u32,
}

impl IdleBackoff {
    const SPIN: u32 = 64;
    const YIELD: u32 = 16;

    pub fn new() -> Self {
        Self { streak: 0 }
    }

    /// Records an empty poll and returns the next idle action. Stays at
    /// [`IdleAction::Park`] until [`reset`](Self::reset).
    /// (Not an `Iterator`: the ladder never ends and `reset` rewinds it.)
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> IdleAction {
        let s = self.streak;
        self.streak = self.streak.saturating_add(1);
        if s < Self::SPIN {
            IdleAction::Spin
        } else if s < Self::SPIN + Self::YIELD {
            IdleAction::Yield
        } else {
            IdleAction::Park
        }
    }

    /// Work was found: restart the ladder at the spin stage.
    pub fn reset(&mut self) {
        self.streak = 0;
    }
}

impl Default for IdleBackoff {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn backoff_ladder_spins_then_yields_then_parks() {
        let mut b = IdleBackoff::new();
        for _ in 0..64 {
            assert_eq!(b.next(), IdleAction::Spin);
        }
        for _ in 0..16 {
            assert_eq!(b.next(), IdleAction::Yield);
        }
        assert_eq!(b.next(), IdleAction::Park);
        assert_eq!(b.next(), IdleAction::Park, "stays parked until reset");
        b.reset();
        assert_eq!(b.next(), IdleAction::Spin);
    }

    #[test]
    fn park_returns_immediately_when_epoch_moved() {
        let gate = IdleGate::new();
        let seen = gate.epoch();
        gate.wake_all();
        let start = Instant::now();
        let slept = gate.park(seen, Duration::from_secs(5));
        assert!(!slept);
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn wake_reports_sleepers_and_unblocks_them() {
        let gate = Arc::new(IdleGate::new());
        let woken = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            {
                let gate = gate.clone();
                let woken = woken.clone();
                s.spawn(move || {
                    let seen = gate.epoch();
                    gate.park(seen, Duration::from_secs(10));
                    woken.store(true, Ordering::SeqCst);
                });
            }
            // Wait until the sleeper is committed, then wake it.
            while gate.sleepers() == 0 {
                std::thread::yield_now();
            }
            assert!(gate.wake_all(), "wake with a sleeper present reports it");
            // Scope join proves the sleeper exits well before its 10s timeout.
        });
        assert!(woken.load(Ordering::SeqCst));
        assert!(!gate.wake_all(), "wake with no sleepers is a no-op");
    }

    #[test]
    fn no_lost_wakeup_under_racing_producers() {
        // A consumer parks only when a shared "queue" (counter) is empty;
        // producers increment it then wake. If the epoch protocol lost a
        // wakeup the consumer would sleep its full 2s timeout and the
        // test would exceed its budget.
        let gate = Arc::new(IdleGate::new());
        let work = Arc::new(AtomicUsize::new(0));
        const ITEMS: usize = 2_000;
        let start = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..2 {
                let gate = gate.clone();
                let work = work.clone();
                s.spawn(move || {
                    for _ in 0..ITEMS / 2 {
                        work.fetch_add(1, Ordering::SeqCst);
                        gate.wake_all();
                    }
                });
            }
            let gate = gate.clone();
            let work = work.clone();
            s.spawn(move || {
                let mut taken = 0;
                while taken < ITEMS {
                    let seen = gate.epoch();
                    if work.load(Ordering::SeqCst) > taken {
                        taken += 1;
                        continue;
                    }
                    gate.park(seen, Duration::from_secs(2));
                }
            });
        });
        assert!(start.elapsed() < Duration::from_secs(30), "consumer stalled: lost wakeup");
    }
}
