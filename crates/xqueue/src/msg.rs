//! The 64-byte queue message.
//!
//! Agora's threads synchronise through FIFO queues "using 64-byte messages
//! each containing two fields: task type and buffer location" (§3.2,
//! Figure 3). One message occupies exactly one cache line, so enqueueing
//! or dequeueing it moves a single line between cores. [`Msg`] is the
//! wire format; the engine layers typed constructors on top.

use crate::padded::CACHE_LINE;

/// Task/message kind discriminator carried in a [`Msg`].
///
/// The numeric values are stable: they index the engine's per-type task
/// queues and the priority table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum TaskType {
    /// Uplink FFT (+ fused channel estimation on pilot symbols).
    Fft = 0,
    /// Zero-forcing precoder/detector calculation.
    Zf = 1,
    /// Equalization + demodulation (fused).
    Demod = 2,
    /// LDPC decoding.
    Decode = 3,
    /// LDPC encoding (downlink).
    Encode = 4,
    /// Precoding + modulation (fused, downlink).
    Precode = 5,
    /// Downlink IFFT.
    Ifft = 6,
    /// Packet received from the fronthaul (network -> manager).
    PacketRx = 7,
    /// Packet ready for transmission (manager -> network).
    PacketTx = 8,
    /// Task-complete notification (worker -> manager).
    Complete = 9,
}

impl TaskType {
    /// All compute task types, in *paper* pipeline order.
    pub const COMPUTE: [TaskType; 7] = [
        TaskType::Fft,
        TaskType::Zf,
        TaskType::Demod,
        TaskType::Decode,
        TaskType::Encode,
        TaskType::Precode,
        TaskType::Ifft,
    ];

    /// Converts the stable numeric id back to a `TaskType`.
    pub fn from_u16(v: u16) -> Option<TaskType> {
        Some(match v {
            0 => TaskType::Fft,
            1 => TaskType::Zf,
            2 => TaskType::Demod,
            3 => TaskType::Decode,
            4 => TaskType::Encode,
            5 => TaskType::Precode,
            6 => TaskType::Ifft,
            7 => TaskType::PacketRx,
            8 => TaskType::PacketTx,
            9 => TaskType::Complete,
            _ => return None,
        })
    }
}

/// A 64-byte, cache-line-sized queue message.
///
/// Field meanings depend on `task`:
/// * compute tasks: `frame`/`symbol` locate the work, `base` is the first
///   task index (antenna, subcarrier-group, or user), `count` is the batch
///   size (§3.4 "Batching"), and `aux` carries the completing worker id in
///   `Complete` messages.
/// * packet messages: `base` is the antenna index and `aux` the buffer
///   slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C, align(64))]
pub struct Msg {
    /// What kind of work / notification this is.
    pub task: TaskType,
    /// Completing worker id (Complete) or transport slot (packets).
    pub aux: u16,
    /// Batch size: number of consecutive tasks this message carries.
    pub count: u32,
    /// Frame id (monotonically increasing, never wrapped).
    pub frame: u32,
    /// Symbol index within the frame.
    pub symbol: u32,
    /// First task index within the block (antenna / subcarrier group /
    /// user, depending on `task`).
    pub base: u32,
    /// Reserved padding to fill the cache line; always zero.
    _pad: [u32; 11],
}

const _: () = assert!(core::mem::size_of::<Msg>() == CACHE_LINE);
const _: () = assert!(core::mem::align_of::<Msg>() == CACHE_LINE);

impl Msg {
    /// Creates a task message for a batch of `count` tasks starting at
    /// `base` within `(frame, symbol)`.
    pub fn task(task: TaskType, frame: u32, symbol: u32, base: u32, count: u32) -> Self {
        Self { task, aux: 0, count, frame, symbol, base, _pad: [0; 11] }
    }

    /// Creates a completion notification echoing the task coordinates.
    pub fn complete(
        task: TaskType,
        frame: u32,
        symbol: u32,
        base: u32,
        count: u32,
        worker: u16,
    ) -> Self {
        Self { task, aux: worker, count, frame, symbol, base, _pad: [0; 11] }
    }
}

impl Default for Msg {
    fn default() -> Self {
        Msg::task(TaskType::Fft, 0, 0, 0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msg_is_exactly_one_cache_line() {
        assert_eq!(core::mem::size_of::<Msg>(), 64);
        assert_eq!(core::mem::align_of::<Msg>(), 64);
    }

    #[test]
    fn task_type_roundtrip() {
        for t in TaskType::COMPUTE {
            assert_eq!(TaskType::from_u16(t as u16), Some(t));
        }
        assert_eq!(TaskType::from_u16(9), Some(TaskType::Complete));
        assert_eq!(TaskType::from_u16(100), None);
    }

    #[test]
    fn constructors_fill_fields() {
        let m = Msg::task(TaskType::Demod, 7, 3, 128, 8);
        assert_eq!(m.task, TaskType::Demod);
        assert_eq!(m.frame, 7);
        assert_eq!(m.symbol, 3);
        assert_eq!(m.base, 128);
        assert_eq!(m.count, 8);
        let c = Msg::complete(TaskType::Demod, 7, 3, 128, 8, 21);
        assert_eq!(c.aux, 21);
    }

    #[test]
    fn compute_order_matches_pipeline() {
        assert_eq!(TaskType::COMPUTE[0], TaskType::Fft);
        assert_eq!(TaskType::COMPUTE[3], TaskType::Decode);
        assert_eq!(TaskType::COMPUTE[6], TaskType::Ifft);
    }
}
