//! Deterministic single-threaded frame processor.
//!
//! Runs the exact same kernels as the threaded engine, in dependency
//! order, on the calling thread. This is the tool for accuracy
//! experiments (Figure 9's BLER-vs-users, LDPC waterfalls) where
//! thousands of frames must be pushed through the full PHY and threading
//! adds nothing but noise — and it doubles as the reference
//! implementation the threaded engine is differentially tested against.

use crate::buffers::{FrameBuffers, FrameWindow};
use crate::config::EngineConfig;
use crate::kernels::{Kernels, WorkerScratch};
use agora_fronthaul::packet::decode as decode_packet;
use agora_fronthaul::PacketBuf;
use agora_phy::frame::SymbolType;
use bytes::Bytes;

/// Decoded output of one inline-processed frame.
#[derive(Debug, Clone)]
pub struct InlineResult {
    /// Frame id.
    pub frame: u32,
    /// Decoded info bits per `[symbol][user]` (uplink symbols only).
    pub decoded: Vec<Vec<Vec<u8>>>,
    /// Decode success per `[symbol][user]`.
    pub decode_ok: Vec<Vec<bool>>,
    /// Downlink time-domain samples per `[symbol][antenna]` (downlink
    /// symbols only; empty otherwise).
    pub dl_time: Vec<Vec<Vec<agora_math::Cf32>>>,
}

/// Single-threaded processor owning one frame slot.
pub struct InlineProcessor {
    kernels: Kernels,
    window: FrameWindow,
    scratch: WorkerScratch,
}

impl InlineProcessor {
    /// Builds the processor for a cell configuration.
    pub fn new(cfg: EngineConfig) -> Self {
        let kernels = Kernels::new(cfg);
        let window = FrameWindow::new(kernels.geom, 2);
        let scratch = kernels.scratch();
        Self { kernels, window, scratch }
    }

    /// Access to the kernels (geometry etc.).
    pub fn kernels(&self) -> &Kernels {
        &self.kernels
    }

    /// Processes one frame's packets synchronously and returns the
    /// decoded output. Packets may arrive in any order but must all
    /// belong to `frame`.
    pub fn process_frame(&mut self, frame: u32, packets: &[Bytes]) -> InlineResult {
        let g = self.kernels.geom;
        let cell = self.kernels.cfg.cell.clone();
        let fb = self.window.slot(frame);

        // 1. Ingest packets, retained zero-copy in the slot table (the
        // `Bytes` clone bumps a refcount; payload bytes are not copied).
        // SAFETY: single-threaded processor — exclusive table access.
        // Clearing first drops the slot's previous occupant's packets.
        unsafe { fb.rx_pkts.clear_all() };
        for pkt in packets {
            let (hdr, _) = decode_packet(pkt).expect("bad packet");
            assert_eq!(hdr.frame, frame, "packet from a different frame");
            let idx = fb.pkt_index(&g, hdr.symbol as usize, hdr.antenna as usize);
            // SAFETY: exclusive access as above; duplicates overwrite
            // with byte-identical packets.
            unsafe { fb.rx_pkts.store(idx, PacketBuf::Heap(pkt.clone())) };
        }

        // 2. Pilot FFT + CSI, then interpolation and ZF. FFT work runs in
        // batch-sized antenna chunks through the same batched/single
        // branch as the threaded engine, so the `batched_fft` ablation is
        // exercised identically here.
        let bf = self.kernels.cfg.batch.fft.max(1);
        for symbol in cell.schedule.pilot_indices() {
            let mut base = 0;
            while base < g.m {
                let count = bf.min(g.m - base);
                if self.kernels.cfg.ablation.batched_fft && count > 1 {
                    self.kernels.fft_batch_task(fb, &mut self.scratch, symbol, base, count);
                } else {
                    for ant in base..base + count {
                        self.kernels.fft_task(fb, &mut self.scratch, symbol, ant);
                    }
                }
                base += count;
            }
        }
        self.kernels.interpolate_csi(fb);
        if self.kernels.clustered_zf() {
            // Staged path: all partial Grams land before any reduce, and
            // reduces run in fixed (group, shard) order — the same
            // dependency order the threaded engine's manager enforces.
            for cluster in 0..self.kernels.zf_clusters() {
                for group in 0..cell.num_zf_groups() {
                    self.kernels.gram_partial_task(fb, &mut self.scratch, group, cluster);
                }
            }
            for group in 0..cell.num_zf_groups() {
                for shard in 0..self.kernels.zf_reduce_shards() {
                    self.kernels.zf_reduce_task(fb, &mut self.scratch, group, shard);
                }
            }
        } else {
            for group in 0..cell.num_zf_groups() {
                self.kernels.zf_task(fb, &mut self.scratch, group);
            }
        }

        // 3. Uplink data symbols: FFT -> demod -> decode.
        let mut decoded = vec![Vec::new(); cell.symbols_per_frame()];
        let mut decode_ok = vec![Vec::new(); cell.symbols_per_frame()];
        for symbol in cell.schedule.uplink_indices() {
            let mut base = 0;
            while base < g.m {
                let count = bf.min(g.m - base);
                if self.kernels.cfg.ablation.batched_fft && count > 1 {
                    self.kernels.fft_batch_task(fb, &mut self.scratch, symbol, base, count);
                } else {
                    for ant in base..base + count {
                        self.kernels.fft_task(fb, &mut self.scratch, symbol, ant);
                    }
                }
                base += count;
            }
            self.kernels.demod_task(fb, &mut self.scratch, frame, symbol, 0, g.q);
            for user in 0..g.k {
                self.kernels.decode_task(fb, &mut self.scratch, symbol, user);
                let bits = unsafe { fb.decoded.slice(fb.decoded_range(&g, symbol, user)) }.to_vec();
                let ok = unsafe { fb.decode_ok.read(symbol * g.k + user) } != 0;
                decoded[symbol].push(bits);
                decode_ok[symbol].push(ok);
            }
        }

        // 4. Downlink symbols: encode -> precode+modulate -> IFFT.
        let mut dl_time = vec![Vec::new(); cell.symbols_per_frame()];
        for symbol in cell.schedule.downlink_indices() {
            for user in 0..g.k {
                self.kernels.encode_task(fb, frame, symbol, user);
            }
            self.kernels.precode_task(fb, &mut self.scratch, symbol, 0, g.q);
            let bi = self.kernels.cfg.batch.ifft.max(1);
            let mut base = 0;
            while base < g.m {
                let count = bi.min(g.m - base);
                if self.kernels.cfg.ablation.batched_fft && count > 1 {
                    self.kernels.ifft_batch_task(fb, &mut self.scratch, symbol, base, count);
                } else {
                    for ant in base..base + count {
                        self.kernels.ifft_task(fb, &mut self.scratch, symbol, ant);
                    }
                }
                base += count;
            }
            for ant in 0..g.m {
                let t = unsafe { fb.dl_time.slice(fb.dl_time_range(&g, symbol, ant)) }.to_vec();
                dl_time[symbol].push(t);
            }
        }

        InlineResult { frame, decoded, decode_ok, dl_time }
    }

    /// Direct access to the frame buffers of a frame slot (testing and
    /// instrumentation).
    pub fn buffers(&self, frame: u32) -> &FrameBuffers {
        self.window.slot(frame)
    }

    /// Symbol type lookup shortcut.
    pub fn symbol_type(&self, symbol: usize) -> SymbolType {
        self.kernels.cfg.cell.schedule.symbol(symbol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agora_channel::FadingModel;
    use agora_fronthaul::{RruConfig, RruEmulator};
    use agora_phy::CellConfig;

    /// End-to-end: generator -> inline engine -> decoded bits match the
    /// generator's ground truth. This exercises the entire uplink PHY.
    #[test]
    fn uplink_e2e_recovers_all_bits_awgn() {
        let cell = CellConfig::tiny_test(2);
        let mut rru = RruEmulator::new(
            cell.clone(),
            RruConfig { snr_db: 30.0, fading: FadingModel::Awgn, seed: 7, ..Default::default() },
        );
        let mut cfg = EngineConfig::new(cell, 1);
        cfg.noise_power = rru.noise_power();
        let mut proc = InlineProcessor::new(cfg);
        for frame in 0..3u32 {
            let (packets, gt) = rru.generate_frame(frame);
            let res = proc.process_frame(frame, &packets);
            for symbol in proc.kernels().cfg.cell.schedule.uplink_indices() {
                for user in 0..proc.kernels().geom.k {
                    assert!(
                        res.decode_ok[symbol][user],
                        "frame {frame} symbol {symbol} user {user} failed decode"
                    );
                    assert_eq!(
                        res.decoded[symbol][user], gt.info_bits[symbol][user],
                        "frame {frame} symbol {symbol} user {user} bits differ"
                    );
                }
            }
        }
    }

    #[test]
    fn uplink_e2e_rayleigh_fading() {
        let cell = CellConfig::tiny_test(2);
        let mut rru = RruEmulator::new(
            cell.clone(),
            RruConfig {
                snr_db: 30.0,
                fading: FadingModel::Rayleigh,
                seed: 21,
                ..Default::default()
            },
        );
        let mut cfg = EngineConfig::new(cell, 1);
        cfg.noise_power = rru.noise_power();
        let mut proc = InlineProcessor::new(cfg);
        let (packets, gt) = rru.generate_frame(0);
        let res = proc.process_frame(0, &packets);
        for symbol in proc.kernels().cfg.cell.schedule.uplink_indices() {
            for user in 0..2 {
                assert!(res.decode_ok[symbol][user]);
                assert_eq!(res.decoded[symbol][user], gt.info_bits[symbol][user]);
            }
        }
    }

    #[test]
    fn strided_layout_ablation_gives_same_bits() {
        let cell = CellConfig::tiny_test(1);
        let rc = RruConfig { snr_db: 30.0, seed: 9, ..Default::default() };
        let mut rru = RruEmulator::new(cell.clone(), rc);
        let (packets, gt) = rru.generate_frame(0);

        let mut cfg_fast = EngineConfig::new(cell.clone(), 1);
        cfg_fast.noise_power = rru.noise_power();
        let mut cfg_slow = cfg_fast.clone();
        cfg_slow.ablation.cache_layout = false;
        cfg_slow.ablation.streaming_stores = false;

        let mut fast = InlineProcessor::new(cfg_fast);
        let mut slow = InlineProcessor::new(cfg_slow);
        let rf = fast.process_frame(0, &packets);
        let rs = slow.process_frame(0, &packets);
        let symbol = fast.kernels().cfg.cell.schedule.uplink_indices()[0];
        for user in 0..2 {
            assert_eq!(rf.decoded[symbol][user], gt.info_bits[symbol][user]);
            assert_eq!(rf.decoded[symbol][user], rs.decoded[symbol][user]);
        }
    }

    /// The `batched_fft` ablation only changes task granularity — batched
    /// and single-transform execution must produce bit-identical uplink
    /// decodes and downlink time-domain samples.
    #[test]
    fn batched_fft_ablation_is_bit_identical() {
        use agora_phy::frame::FrameSchedule;

        let mut cell = CellConfig::tiny_test(2);
        // Mixed frame: pilot + uplink + downlink so both the FFT and the
        // IFFT batched paths run.
        cell.schedule = FrameSchedule::parse("PUUDD").unwrap();
        cell.validate().unwrap();
        let rc = RruConfig { snr_db: 25.0, seed: 17, ..Default::default() };
        let mut rru = RruEmulator::new(cell.clone(), rc);
        let (packets, _gt) = rru.generate_frame(0);

        let mut cfg_on = EngineConfig::new(cell.clone(), 1);
        cfg_on.noise_power = rru.noise_power();
        let mut cfg_off = cfg_on.clone();
        cfg_off.ablation.batched_fft = false;
        assert!(cfg_on.batch.fft > 1, "batch size must exercise the batched path");

        let mut on = InlineProcessor::new(cfg_on);
        let mut off = InlineProcessor::new(cfg_off);
        let ron = on.process_frame(0, &packets);
        let roff = off.process_frame(0, &packets);

        for symbol in cell.schedule.uplink_indices() {
            assert_eq!(ron.decoded[symbol], roff.decoded[symbol]);
            assert_eq!(ron.decode_ok[symbol], roff.decode_ok[symbol]);
        }
        for symbol in cell.schedule.downlink_indices() {
            for ant in 0..cell.num_antennas {
                let a = &ron.dl_time[symbol][ant];
                let b = &roff.dl_time[symbol][ant];
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(b.iter()) {
                    assert_eq!(x.re.to_bits(), y.re.to_bits(), "symbol {symbol} ant {ant}");
                    assert_eq!(x.im.to_bits(), y.im.to_bits(), "symbol {symbol} ant {ant}");
                }
            }
        }
    }

    /// The AVX2 complex-GEMM plane (`ablation.simd_gemm`) is a pure speed
    /// toggle: ZF pinv, equalization, and precoding must produce the same
    /// bits whether the products run the scalar or the vector kernels.
    #[test]
    fn simd_gemm_ablation_is_bit_identical() {
        use agora_phy::frame::FrameSchedule;

        let mut cell = CellConfig::tiny_test(2);
        // Mixed frame so the detector (equalize) and precoder (downlink)
        // GEMM paths both run.
        cell.schedule = FrameSchedule::parse("PUUDD").unwrap();
        cell.validate().unwrap();
        let rc = RruConfig { snr_db: 25.0, seed: 23, ..Default::default() };
        let mut rru = RruEmulator::new(cell.clone(), rc);
        let (packets, _gt) = rru.generate_frame(0);

        let mut cfg_on = EngineConfig::new(cell.clone(), 1);
        cfg_on.noise_power = rru.noise_power();
        let mut cfg_off = cfg_on.clone();
        cfg_off.ablation.simd_gemm = false;
        // Run the strided ablation too on one side-by-side pair so the
        // per-subcarrier GEMV path is covered as well as the blocked GEMM.
        let mut cfg_on_strided = cfg_on.clone();
        cfg_on_strided.ablation.cache_layout = false;
        let mut cfg_off_strided = cfg_off.clone();
        cfg_off_strided.ablation.cache_layout = false;

        for (a, b) in [(cfg_on, cfg_off), (cfg_on_strided, cfg_off_strided)] {
            let mut on = InlineProcessor::new(a);
            let mut off = InlineProcessor::new(b);
            let ron = on.process_frame(0, &packets);
            let roff = off.process_frame(0, &packets);
            for symbol in cell.schedule.uplink_indices() {
                assert_eq!(ron.decoded[symbol], roff.decoded[symbol]);
                assert_eq!(ron.decode_ok[symbol], roff.decode_ok[symbol]);
            }
            for symbol in cell.schedule.downlink_indices() {
                for ant in 0..cell.num_antennas {
                    let x = &ron.dl_time[symbol][ant];
                    let y = &roff.dl_time[symbol][ant];
                    assert_eq!(x.len(), y.len());
                    for (u, v) in x.iter().zip(y.iter()) {
                        assert_eq!(u.re.to_bits(), v.re.to_bits(), "symbol {symbol} ant {ant}");
                        assert_eq!(u.im.to_bits(), v.im.to_bits(), "symbol {symbol} ant {ant}");
                    }
                }
            }
        }
    }

    /// `ablation.zf_cholesky` swaps the Gauss-Jordan Gram inverse for the
    /// Cholesky solve. The two detectors differ only in f32 rounding
    /// (~1e-7), so both sides must decode every block to the ground
    /// truth, on both demod layouts.
    #[test]
    fn zf_cholesky_ablation_gives_same_bits() {
        let cell = CellConfig::tiny_test(2);
        let rc = RruConfig { snr_db: 28.0, seed: 41, ..Default::default() };
        let mut rru = RruEmulator::new(cell.clone(), rc);
        let (packets, gt) = rru.generate_frame(0);

        let mut cfg_chol = EngineConfig::new(cell.clone(), 1);
        cfg_chol.noise_power = rru.noise_power();
        assert!(cfg_chol.ablation.zf_cholesky, "Cholesky solve must be the default");
        let mut cfg_gj = cfg_chol.clone();
        cfg_gj.ablation.zf_cholesky = false;
        let mut cfg_chol_strided = cfg_chol.clone();
        cfg_chol_strided.ablation.cache_layout = false;

        for cfg in [cfg_chol, cfg_gj, cfg_chol_strided] {
            let mut proc = InlineProcessor::new(cfg);
            let res = proc.process_frame(0, &packets);
            for symbol in cell.schedule.uplink_indices() {
                for user in 0..cell.num_users {
                    assert!(res.decode_ok[symbol][user], "symbol {symbol} user {user}");
                    assert_eq!(res.decoded[symbol][user], gt.info_bits[symbol][user]);
                }
            }
        }
    }

    /// Iterative equalization (per-subcarrier CG on the Gram system,
    /// never forming the inverse) must decode the same bits as the
    /// direct formed-detector path, on both demod layouts, and its
    /// downlink precoder (computed via the Cholesky solve) must be
    /// bit-identical to the direct mode's.
    #[test]
    fn iterative_eq_mode_gives_same_bits() {
        use crate::config::EqMode;
        use agora_phy::frame::FrameSchedule;

        let mut cell = CellConfig::tiny_test(2);
        // Mixed frame so the iterative mode's downlink path (formed
        // detector via Cholesky into separate staging) runs too.
        cell.schedule = FrameSchedule::parse("PUUDD").unwrap();
        cell.validate().unwrap();
        let rc = RruConfig { snr_db: 28.0, seed: 43, ..Default::default() };
        let mut rru = RruEmulator::new(cell.clone(), rc);
        let (packets, gt) = rru.generate_frame(0);

        let mut cfg_direct = EngineConfig::new(cell.clone(), 1);
        cfg_direct.noise_power = rru.noise_power();
        let mut cfg_iter = cfg_direct.clone();
        cfg_iter.ablation.eq_mode = EqMode::Iterative;
        let mut cfg_iter_strided = cfg_iter.clone();
        cfg_iter_strided.ablation.cache_layout = false;

        let mut direct = InlineProcessor::new(cfg_direct);
        let rd = direct.process_frame(0, &packets);
        for cfg in [cfg_iter, cfg_iter_strided] {
            let mut proc = InlineProcessor::new(cfg);
            let ri = proc.process_frame(0, &packets);
            for symbol in cell.schedule.uplink_indices() {
                for user in 0..cell.num_users {
                    assert!(ri.decode_ok[symbol][user], "symbol {symbol} user {user}");
                    assert_eq!(ri.decoded[symbol][user], gt.info_bits[symbol][user]);
                    assert_eq!(ri.decoded[symbol][user], rd.decoded[symbol][user]);
                }
            }
            // Both modes run the same Cholesky Gram solve for the
            // precoder, so the downlink samples agree bit for bit.
            for symbol in cell.schedule.downlink_indices() {
                for ant in 0..cell.num_antennas {
                    let a = &ri.dl_time[symbol][ant];
                    let b = &rd.dl_time[symbol][ant];
                    assert_eq!(a.len(), b.len());
                    for (x, y) in a.iter().zip(b.iter()) {
                        assert_eq!(x.re.to_bits(), y.re.to_bits(), "symbol {symbol} ant {ant}");
                        assert_eq!(x.im.to_bits(), y.im.to_bits(), "symbol {symbol} ant {ant}");
                    }
                }
            }
        }
    }

    /// At `antenna_clusters = 1` the staged path is the monolithic path
    /// with an extra buffer hop: one partial Gram (zero-fill +
    /// accumulate ≡ `gram_pair` bitwise), a one-chunk reduce (a copy),
    /// then the identical solve. Uplink decodes AND downlink time-domain
    /// samples must match the monolithic engine bit for bit, in both
    /// direct and iterative equalization modes.
    #[test]
    fn clustered_zf_single_cluster_is_bit_identical() {
        use crate::config::EqMode;
        use agora_phy::frame::FrameSchedule;

        let mut cell = CellConfig::tiny_test(2);
        // Mixed frame so the precoder (reduce-side normalisation) runs.
        cell.schedule = FrameSchedule::parse("PUUDD").unwrap();
        cell.validate().unwrap();
        let rc = RruConfig { snr_db: 25.0, seed: 17, ..Default::default() };
        let mut rru = RruEmulator::new(cell.clone(), rc);
        let (packets, _gt) = rru.generate_frame(0);

        for iterative in [false, true] {
            let mut cfg_mono = EngineConfig::new(cell.clone(), 1);
            cfg_mono.noise_power = rru.noise_power();
            if iterative {
                cfg_mono.ablation.eq_mode = EqMode::Iterative;
            }
            let mut cfg_staged = cfg_mono.clone();
            cfg_staged.ablation.clustered_zf = true;
            cfg_staged.antenna_clusters = 1;

            let mut mono = InlineProcessor::new(cfg_mono);
            let mut staged = InlineProcessor::new(cfg_staged);
            let rm = mono.process_frame(0, &packets);
            let rs = staged.process_frame(0, &packets);

            for symbol in cell.schedule.uplink_indices() {
                assert_eq!(rm.decoded[symbol], rs.decoded[symbol], "iterative={iterative}");
                assert_eq!(rm.decode_ok[symbol], rs.decode_ok[symbol]);
            }
            for symbol in cell.schedule.downlink_indices() {
                for ant in 0..cell.num_antennas {
                    let a = &rm.dl_time[symbol][ant];
                    let b = &rs.dl_time[symbol][ant];
                    assert_eq!(a.len(), b.len());
                    for (x, y) in a.iter().zip(b.iter()) {
                        assert_eq!(x.re.to_bits(), y.re.to_bits(), "symbol {symbol} ant {ant}");
                        assert_eq!(x.im.to_bits(), y.im.to_bits(), "symbol {symbol} ant {ant}");
                    }
                }
            }
        }
    }

    /// Multi-cluster ZF changes the f32 summation order of the Gram (a
    /// deterministic tree fold instead of one long dot product), so the
    /// detector differs from monolithic by ~1e-7 rounding — every block
    /// must still decode to ground truth at every cluster count, and
    /// cluster counts that do not divide the antenna count (uneven
    /// slices) must work too.
    #[test]
    fn clustered_zf_multi_cluster_decodes_ground_truth() {
        let cell = CellConfig::tiny_test(2);
        let rc = RruConfig { snr_db: 28.0, seed: 41, ..Default::default() };
        let mut rru = RruEmulator::new(cell.clone(), rc);
        let (packets, gt) = rru.generate_frame(0);

        for clusters in [2, 3, 4, 8] {
            let mut cfg = EngineConfig::new(cell.clone(), 1);
            cfg.noise_power = rru.noise_power();
            cfg.ablation.clustered_zf = true;
            cfg.antenna_clusters = clusters;
            let mut proc = InlineProcessor::new(cfg);
            let res = proc.process_frame(0, &packets);
            for symbol in cell.schedule.uplink_indices() {
                for user in 0..cell.num_users {
                    assert!(res.decode_ok[symbol][user], "clusters={clusters} symbol {symbol}");
                    assert_eq!(
                        res.decoded[symbol][user], gt.info_bits[symbol][user],
                        "clusters={clusters} symbol {symbol} user {user}"
                    );
                }
            }
        }
    }

    #[test]
    fn svd_pinv_ablation_gives_same_bits() {
        let cell = CellConfig::tiny_test(1);
        let mut rru = RruEmulator::new(
            cell.clone(),
            RruConfig { snr_db: 30.0, seed: 11, ..Default::default() },
        );
        let (packets, gt) = rru.generate_frame(0);
        let mut cfg = EngineConfig::new(cell, 1);
        cfg.noise_power = rru.noise_power();
        cfg.ablation.pinv_method = agora_math::PinvMethod::Svd;
        cfg.ablation.jit_gemm = false;
        let mut proc = InlineProcessor::new(cfg);
        let res = proc.process_frame(0, &packets);
        let symbol = proc.kernels().cfg.cell.schedule.uplink_indices()[0];
        for user in 0..2 {
            assert_eq!(res.decoded[symbol][user], gt.info_bits[symbol][user]);
        }
    }

    /// Downlink: encode/precode/IFFT produce time-domain signals that a
    /// simulated user can demodulate back to the MAC payload.
    #[test]
    fn downlink_e2e_user_recovers_payload() {
        use agora_fft::{Direction, FftPlan, SubcarrierMap};
        use agora_ldpc::{DecodeConfig, Decoder};
        use agora_math::Cf32;
        use agora_phy::demod::demod_soft;
        use agora_phy::frame::FrameSchedule;

        let mut cell = CellConfig::tiny_test(0);
        cell.schedule = FrameSchedule::parse("PDD").unwrap();
        cell.validate().unwrap();
        let mut cfg = EngineConfig::new(cell.clone(), 1);
        cfg.noise_power = 1e-3;
        let mut proc = InlineProcessor::new(cfg);

        // The downlink needs CSI from pilots: the RRU emulator still
        // produces the frame's pilot packets (downlink symbols carry no
        // uplink payload).
        let mut rru = RruEmulator::new(
            cell.clone(),
            RruConfig { snr_db: 50.0, seed: 33, ..Default::default() },
        );
        let (packets, gt) = rru.generate_frame(0);
        let res = proc.process_frame(0, &packets);

        // Simulated user receiver: r_k = sum_a H^T[k][a] * y_a (TDD
        // reciprocity), per downlink symbol.
        let g = proc.kernels().geom;
        let map = SubcarrierMap::new(cell.fft_size, cell.num_data_sc);
        let plan = FftPlan::new(cell.fft_size);
        let rm = cell.ldpc.rate_match();
        let mut dec = Decoder::new(cell.ldpc.base_graph, cell.ldpc.z);
        for symbol in cell.schedule.downlink_indices() {
            // FFT each antenna's transmitted time signal once.
            let mut grids: Vec<Vec<Cf32>> = Vec::new();
            for ant in 0..g.m {
                let mut grid = res.dl_time[symbol][ant].clone();
                plan.execute(&mut grid, Direction::Forward);
                grids.push(grid);
            }
            for user in 0..g.k {
                let mut rx_grid = vec![Cf32::ZERO; cell.fft_size];
                for (ant, grid) in grids.iter().enumerate() {
                    let h = gt.h[(ant, user)]; // H^T row = column of H
                    for (acc, &v) in rx_grid.iter_mut().zip(grid.iter()) {
                        *acc = h.mul_add(v, *acc);
                    }
                }
                let mut active = vec![Cf32::ZERO; g.q];
                map.demap_symbols(&rx_grid, &mut active);
                // ZF makes H^T W = c I with real positive c; normalise by
                // the mean amplitude so the constellation has unit power.
                let p: f32 = active.iter().map(|z| z.norm_sqr()).sum::<f32>() / active.len() as f32;
                let scale = 1.0 / p.sqrt().max(1e-9);
                for z in active.iter_mut() {
                    *z = z.scale(scale);
                }
                let mut llrs = Vec::new();
                demod_soft(cell.modulation, &active, 0.05, &mut llrs);
                let full = rm.fill_llrs(&llrs[..rm.tx_len()]);
                let out = dec.decode(
                    &full,
                    &DecodeConfig {
                        max_iters: 20,
                        active_rows: Some(rm.active_rows()),
                        ..Default::default()
                    },
                );
                let expect =
                    crate::kernels::mac_payload(0, symbol as u32, user as u32, rm.info_len());
                assert!(out.success, "symbol {symbol} user {user} DL decode failed");
                assert_eq!(out.info_bits, expect, "symbol {symbol} user {user} bits");
            }
        }
    }
}

#[cfg(test)]
mod selective_channel_tests {
    use super::*;
    use agora_fronthaul::{RruConfig, RruEmulator};
    use agora_phy::CellConfig;

    /// Frequency-selective multipath: the per-group ZF approximation and
    /// the estimator's in-group interpolation now carry real model error;
    /// at high SNR with a modest delay spread the link must still close.
    #[test]
    fn uplink_survives_frequency_selective_channel() {
        let mut cell = CellConfig::tiny_test(2);
        // Tighter ZF groups reduce the per-group flatness error.
        cell.zf_group = 8;
        let mut rru = RruEmulator::new(
            cell.clone(),
            RruConfig { snr_db: 35.0, seed: 5, delay_spread_taps: 3, ..Default::default() },
        );
        let mut cfg = EngineConfig::new(cell.clone(), 1);
        cfg.noise_power = rru.noise_power();
        let mut proc = InlineProcessor::new(cfg);
        let mut bad = 0usize;
        let mut total = 0usize;
        for frame in 0..3u32 {
            let (packets, gt) = rru.generate_frame(frame);
            assert!(gt.h_freq.is_some(), "ground truth must expose per-SC channel");
            let res = proc.process_frame(frame, &packets);
            for symbol in cell.schedule.uplink_indices() {
                for user in 0..cell.num_users {
                    total += 1;
                    if res.decoded[symbol][user] != gt.info_bits[symbol][user] {
                        bad += 1;
                    }
                }
            }
        }
        assert_eq!(bad, 0, "{bad}/{total} blocks failed under multipath");
    }

    /// The per-subcarrier ground-truth channel actually varies across the
    /// band (sanity check on the tap model).
    #[test]
    fn selective_ground_truth_varies_across_band() {
        let cell = CellConfig::tiny_test(1);
        let mut rru = RruEmulator::new(
            cell.clone(),
            RruConfig { delay_spread_taps: 4, seed: 9, ..Default::default() },
        );
        let (_p, gt) = rru.generate_frame(0);
        let per_sc = gt.h_freq.unwrap();
        let first = &per_sc[0];
        let last = &per_sc[cell.num_data_sc - 1];
        assert!(first.max_abs_diff(last) > 0.05, "channel should differ across the band");
        // Adjacent subcarriers stay highly correlated (smooth response).
        let adjacent = per_sc[1].max_abs_diff(first);
        assert!(adjacent < 0.2, "adjacent-subcarrier jump {adjacent} too large");
    }
}

#[cfg(test)]
mod detector_tests {
    use super::*;
    use crate::config::DetectorKind;
    use agora_fronthaul::{RruConfig, RruEmulator};
    use agora_phy::CellConfig;

    fn run_with(detector: DetectorKind, snr_db: f32) -> usize {
        let cell = CellConfig::tiny_test(2);
        let mut rru =
            RruEmulator::new(cell.clone(), RruConfig { snr_db, seed: 3, ..Default::default() });
        let mut cfg = EngineConfig::new(cell.clone(), 1);
        cfg.noise_power = rru.noise_power();
        cfg.ablation.detector = detector;
        let mut proc = InlineProcessor::new(cfg);
        let mut bad = 0usize;
        for frame in 0..2u32 {
            let (packets, gt) = rru.generate_frame(frame);
            let res = proc.process_frame(frame, &packets);
            for symbol in cell.schedule.uplink_indices() {
                for user in 0..cell.num_users {
                    if res.decoded[symbol][user] != gt.info_bits[symbol][user] {
                        bad += 1;
                    }
                }
            }
        }
        bad
    }

    #[test]
    fn mmse_detector_decodes_cleanly_at_high_snr() {
        assert_eq!(run_with(DetectorKind::Mmse, 28.0), 0);
    }

    #[test]
    fn conjugate_detector_decodes_with_large_array_margin() {
        // 8 antennas for 2 users: enough array gain for the matched
        // filter to close the link at high SNR despite residual
        // inter-user interference.
        assert_eq!(run_with(DetectorKind::Conjugate, 30.0), 0);
    }
}

#[cfg(test)]
mod cpe_tests {
    use super::*;
    use agora_fronthaul::{RruConfig, RruEmulator};
    use agora_phy::CellConfig;

    fn block_errors(drift: f32, correct: bool) -> usize {
        let cell = CellConfig::tiny_test(4);
        let mut rru = RruEmulator::new(
            cell.clone(),
            RruConfig { snr_db: 28.0, seed: 19, phase_drift_rad: drift, ..Default::default() },
        );
        let mut cfg = EngineConfig::new(cell.clone(), 1);
        cfg.noise_power = rru.noise_power();
        cfg.cpe_correction = correct;
        let mut proc = InlineProcessor::new(cfg);
        let (packets, gt) = rru.generate_frame(0);
        let res = proc.process_frame(0, &packets);
        cell.schedule
            .uplink_indices()
            .into_iter()
            .flat_map(|s| (0..cell.num_users).map(move |u| (s, u)))
            .filter(|&(s, u)| res.decoded[s][u] != gt.info_bits[s][u])
            .count()
    }

    /// Residual sync drift accumulates to 1.2 rad by the last symbol —
    /// far beyond the QPSK pi/4 decision ambiguity, so uncorrected
    /// decoding garbles the late symbols. *Tracked* CPE correction only
    /// ever has to capture the per-step increment (0.3 rad), so it
    /// follows the drift and rescues every block.
    #[test]
    fn cpe_correction_rescues_drifting_frame() {
        let uncorrected = block_errors(0.3, false);
        let corrected = block_errors(0.3, true);
        assert!(uncorrected > 0, "drift should break uncorrected decoding");
        assert_eq!(corrected, 0, "CPE correction should rescue every block");
    }

    /// With no drift the corrector must be a no-op (no false rotations).
    #[test]
    fn cpe_correction_harmless_without_drift() {
        assert_eq!(block_errors(0.0, true), 0);
    }
}
