//! # agora-core — the Agora baseband processing engine
//!
//! Real-time massive MIMO baseband processing in software (CoNEXT 2020),
//! reproduced in Rust:
//!
//! * [`config`]: engine configuration, batch sizes, Table 4 ablations.
//! * [`buffers`]: lock-free shared frame buffers (§3.2).
//! * [`state`]: the per-frame dependency state machine.
//! * [`kernels`]: task bodies over the buffers (Figure 1b blocks, with
//!   the Table 2 fusions).
//! * [`engine`]: the threaded manager-worker engine, with data-parallel
//!   and pipeline-parallel (BigStation-style) worker policies.
//! * [`inline_engine`]: deterministic single-threaded processor for
//!   BER/BLER experiments.
//! * [`deploy`]: multi-cell deployments — C cell engines on one shared
//!   worker pool with a dynamic core-reallocation supervisor.
//! * [`alloc`]: core allocation for the pipeline-parallel variant
//!   (§5.4), generalized to any shares-over-cores split.
//! * [`stats`]: per-block busy-time accounting (Table 3).
//! * [`sim`]: the calibrated discrete-event schedule simulator used for
//!   the multi-core performance figures (see DESIGN.md §3, substitution
//!   4).

pub mod alloc;
pub mod buffers;
pub mod config;
pub mod deploy;
pub mod engine;
pub mod inline_engine;
pub mod kernels;
pub mod sim;
pub mod state;
pub mod stats;

pub use config::{Ablation, BatchSizes, DetectorKind, EngineConfig};
pub use deploy::{Deployment, DeploymentConfig, DeploymentStats, Supervisor, SupervisorConfig};
pub use engine::{Engine, FrameResult, WorkerPolicy};
pub use inline_engine::InlineProcessor;
pub use kernels::Kernels;
pub use state::{FrameState, Milestones, Ready};
pub use stats::EngineStats;
