//! The Agora engine: manager-worker baseband processing (Figure 3).
//!
//! One manager thread tracks dependencies and dispatches 64-byte task
//! messages into per-type lock-free queues; worker threads busy-poll the
//! queues in a static priority order, execute kernels against the shared
//! frame buffers, and post completions. A network thread ingests
//! fronthaul packets into the buffers. The data-parallel policy lets any
//! worker take any task type; the pipeline-parallel variant (§5.4)
//! restricts each worker to one block, reproducing BigStation's design on
//! the same machine.

use crate::buffers::FrameWindow;
use crate::config::EngineConfig;
use crate::kernels::{Kernels, WorkerScratch};
use crate::state::{FrameState, Milestones, Ready};
use crate::stats::EngineStats;
use agora_fronthaul::packet::decode_ref;
use agora_fronthaul::{Fronthaul, PacketBuf};
use agora_queue::{IdleAction, IdleBackoff, IdleGate, MpmcQueue, Msg, TaskLane, TaskType};
use bytes::Bytes;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Messages a worker takes from its lane (or a victim's) per trip: one
/// cursor claim amortised over up to this many tasks.
pub(crate) const WORKER_BATCH: usize = 16;

/// Completion messages the manager drains per cursor claim.
const COMPLETE_BATCH: usize = 64;

/// Parked workers re-poll at least this often (belt-and-braces against
/// a missed wake; also bounds shutdown latency).
const PARK_TIMEOUT: Duration = Duration::from_millis(1);

/// Task-queue priority order for data-parallel workers: unblock the
/// widest dependency fans first (ZF gates every data symbol), keep the
/// per-symbol chain moving (demod), then drain the heavy sink (decode),
/// and fill remaining cycles with FFTs of future symbols — the
/// intra-frame pipeline parallelism of §3.4.1.
pub const PRIORITY: [TaskType; 7] = [
    TaskType::Zf,
    TaskType::Demod,
    TaskType::Decode,
    TaskType::Fft,
    TaskType::Precode,
    TaskType::Ifft,
    TaskType::Encode,
];

/// How workers pick tasks.
#[derive(Debug, Clone)]
pub enum WorkerPolicy {
    /// Any worker executes any task type (Agora's design).
    DataParallel,
    /// Worker `i` only polls `assignment[i]` (BigStation-style static
    /// core groups); see [`crate::alloc`] for computing assignments.
    PipelineParallel(Vec<Vec<TaskType>>),
}

/// Everything produced for one completed frame.
#[derive(Debug, Clone)]
pub struct FrameResult {
    /// Frame id.
    pub frame: u32,
    /// Timing milestones (ns since `Engine::process` start).
    pub milestones: Milestones,
    /// Decoded information bits per `[symbol][user]` (uplink symbols
    /// only; other symbols have empty vecs).
    pub decoded: Vec<Vec<Vec<u8>>>,
    /// Per `[symbol][user]` decode success flags.
    pub decode_ok: Vec<Vec<bool>>,
    /// True if the frame was abandoned because packets never arrived
    /// (fronthaul loss) — decoded bits are whatever completed before the
    /// timeout.
    pub dropped: bool,
    /// Packets that never arrived for this frame (0 for completed
    /// frames; the per-frame share of fronthaul loss for dropped ones).
    pub lost_packets: u32,
}

impl FrameResult {
    /// Frame processing latency: first packet to uplink completion.
    pub fn uplink_latency_ns(&self) -> u64 {
        self.milestones.decode_done_ns.saturating_sub(self.milestones.first_packet_ns)
    }

    /// Frame processing latency for downlink frames.
    pub fn downlink_latency_ns(&self) -> u64 {
        self.milestones.ifft_done_ns.saturating_sub(self.milestones.first_packet_ns)
    }
}

pub(crate) struct TaskQueues {
    pub(crate) tasks: Vec<MpmcQueue<Msg>>,
    pub(crate) complete: MpmcQueue<Msg>,
    pub(crate) rx: MpmcQueue<Msg>,
    /// Per-worker task lanes (empty when `work_stealing` is off or the
    /// worker policy is type-restricted). Lane `w` is filled by the
    /// manager, drained by worker `w`, and stolen from by idle peers.
    pub(crate) lanes: Vec<TaskLane<Msg>>,
    /// Park/wake gate for idle workers (only parked on when lanes are
    /// in use — the shared-queue path keeps the legacy yield spin).
    pub(crate) gate: IdleGate,
}

impl TaskQueues {
    fn new(capacity: usize, num_lanes: usize, lane_capacity: usize) -> Self {
        Self {
            tasks: (0..7).map(|_| MpmcQueue::new(capacity)).collect(),
            complete: MpmcQueue::new(capacity),
            rx: MpmcQueue::new(capacity),
            lanes: (0..num_lanes).map(|_| TaskLane::new(lane_capacity)).collect(),
            gate: IdleGate::new(),
        }
    }

    pub(crate) fn queue(&self, t: TaskType) -> &MpmcQueue<Msg> {
        &self.tasks[crate::stats::type_index(t)]
    }
}

/// Manager-thread scheduling state: the frame/symbol → worker affinity
/// map for lane placement, reusable staging buffers, and the
/// round-robin cursor breaking least-loaded ties. Owned by
/// `manager_loop`, never shared.
pub(crate) struct ManagerCtx {
    /// Last worker to execute (or be handed) tasks of a (frame, symbol)
    /// — its L1/L2 holds that symbol's buffers, so later stages of the
    /// same symbol go to the same lane. Pruned on frame retirement.
    affinity: HashMap<(u32, u32), usize>,
    /// Staging buffer: one Ready item's messages, placed as one batch.
    stage: Vec<Msg>,
    /// Reusable drain buffer for `flush_abandoned`.
    flush_scratch: Vec<Msg>,
    /// Round-robin cursor for least-loaded tie-breaking, so equal-depth
    /// lanes don't all collapse onto worker 0.
    rr: usize,
}

impl ManagerCtx {
    pub(crate) fn new() -> Self {
        Self { affinity: HashMap::new(), stage: Vec::new(), flush_scratch: Vec::new(), rr: 0 }
    }
}

/// Network-thread intake state: validates, retains and announces
/// received packets. The packet itself (pooled or heap) is parked in the
/// frame slot's [`crate::buffers::PacketSlots`] table, so the FFT stage
/// reads IQ samples straight out of the receive buffer — intake never
/// copies payload bytes.
pub(crate) struct NetIngest<'a> {
    kernels: &'a Kernels,
    window: &'a FrameWindow,
    queues: &'a TaskQueues,
    stats: &'a EngineStats,
    min_frame: &'a AtomicU64,
    /// Which frame currently owns each window slot's packet table. The
    /// network thread is the sole writer of every table, so this is
    /// plain thread-local state: a slot is cleared exactly once, at the
    /// moment its first packet of a new frame arrives.
    slot_frame: Vec<Option<u32>>,
}

impl<'a> NetIngest<'a> {
    fn new(
        kernels: &'a Kernels,
        window: &'a FrameWindow,
        queues: &'a TaskQueues,
        stats: &'a EngineStats,
        min_frame: &'a AtomicU64,
    ) -> Self {
        Self { kernels, window, queues, stats, min_frame, slot_frame: vec![None; window.window()] }
    }

    /// Ingests one packet: decode + validate, reject stragglers, apply
    /// window flow control, retain the buffer in the frame's slot table
    /// and notify the manager.
    pub(crate) fn ingest(&mut self, pkt: PacketBuf) {
        let g = &self.kernels.geom;
        let win = self.slot_frame.len() as u64;
        let Ok((hdr, payload)) = decode_ref(&pkt) else {
            self.stats.rx_error();
            return;
        };
        let (frame, symbol, ant) = (hdr.frame, hdr.symbol as usize, hdr.antenna as usize);
        // Shape validation: a mis-addressed or mis-sized packet must not
        // index out of the slot table or hand the FFT a short payload.
        if symbol >= g.symbols || ant >= g.m || payload.len() != g.samples * 3 {
            self.stats.rx_error();
            return;
        }
        // Late rejection: the frame's slot has been retired (and may
        // already belong to a newer frame) — storing would corrupt the
        // new occupant. Happens to duplicates/stragglers arriving after
        // their frame completed or was abandoned.
        if (frame as u64) < self.min_frame.load(Ordering::Acquire) {
            self.stats.packet_late();
            return;
        }
        // Flow control: wait until the frame's slot is free.
        while frame as u64 >= self.min_frame.load(Ordering::Acquire) + win {
            std::thread::yield_now();
        }
        let fb = self.window.slot(frame);
        let slot = (frame as u64 % win) as usize;
        if self.slot_frame[slot] != Some(frame) {
            // First packet of `frame` in this slot: drop the previous
            // occupant's retained packets (returning pooled buffers).
            // SAFETY: the previous occupant is `frame - k*win` for some
            // k >= 1, which is below `min_frame` (Acquire above), so the
            // manager retired it with zero in-flight tasks — no reader
            // can touch the table; this thread is the sole writer.
            unsafe { fb.rx_pkts.clear_all() };
            self.slot_frame[slot] = Some(frame);
        }
        let idx = fb.pkt_index(g, symbol, ant);
        if !fb.rx_pkts.occupied(idx) {
            // SAFETY: sole writer thread, entry unoccupied, and no task
            // was dispatched for it yet (dispatch follows the rx message
            // pushed below).
            unsafe { fb.rx_pkts.store(idx, pkt) };
        }
        // Duplicates drop the new copy (the retained payload is
        // byte-identical) but still notify the manager, which owns the
        // duplicate ledger.
        let msg = Msg::task(TaskType::PacketRx, frame, symbol as u32, ant as u32, 1);
        let mut m = msg;
        while let Err(back) = self.queues.rx.push(m) {
            m = back;
            std::thread::yield_now();
        }
    }
}

/// The per-cell processing core: kernels, frame window, task queues,
/// stats and the flow-control watermark — everything the manager,
/// network and worker threads share for ONE cell. [`Engine`] wraps a
/// single core with a dedicated worker pool; [`crate::deploy::
/// Deployment`] runs several cores on one shared pool and migrates
/// workers between them at runtime.
#[derive(Clone)]
pub(crate) struct CellCore {
    pub(crate) kernels: Arc<Kernels>,
    pub(crate) window: Arc<FrameWindow>,
    pub(crate) queues: Arc<TaskQueues>,
    pub(crate) stats: Arc<EngineStats>,
    pub(crate) min_frame: Arc<AtomicU64>,
}

impl CellCore {
    /// Builds the shared state for one cell. `stats_workers` sizes the
    /// per-worker busy-time table — the engine passes its own pool size,
    /// a deployment the *global* pool size so any worker can record
    /// against any cell. `num_lanes` is the number of per-worker task
    /// lanes to allocate (0 disables the work-stealing dispatch path and
    /// keeps the legacy shared-queue-only scheduling).
    pub(crate) fn new(mut cfg: EngineConfig, stats_workers: usize, num_lanes: usize) -> Self {
        cfg.clamp_batches();
        let frame_window = cfg.frame_window;
        let lane_capacity = cfg.lane_capacity.max(1);
        let kernels = Arc::new(Kernels::new(cfg));
        let window = Arc::new(FrameWindow::new(kernels.geom, frame_window));
        // Queue capacity: enough for every task message of all in-flight
        // frames (demod dominates: q/8 messages per symbol; the staged
        // ZF path adds up to ~2 messages per (group, cluster)). Lanes
        // only ever hold a subset of the same in-flight messages, so the
        // shared queues can always absorb a full lane flush.
        let g = &kernels.geom;
        let staged_zf = g.clusters * (g.q.div_ceil(g.zf_group) * 2 + 8);
        let cap =
            ((g.symbols * (g.m + g.q + g.k + 8) + staged_zf) * frame_window).next_power_of_two();
        Self {
            kernels,
            window,
            queues: Arc::new(TaskQueues::new(cap, num_lanes, lane_capacity)),
            stats: Arc::new(EngineStats::new(stats_workers)),
            min_frame: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Fresh network-thread intake state bound to this core.
    pub(crate) fn ingest_state(&self) -> NetIngest<'_> {
        NetIngest::new(&self.kernels, &self.window, &self.queues, &self.stats, &self.min_frame)
    }
}

/// The running engine: spawned workers plus one cell's shared state.
pub struct Engine {
    core: CellCore,
    shutdown: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
}

impl Engine {
    /// Builds a data-parallel engine and spawns its workers.
    pub fn new(cfg: EngineConfig) -> Self {
        Self::with_policy(cfg, WorkerPolicy::DataParallel)
    }

    /// Builds an engine with an explicit worker policy.
    pub fn with_policy(cfg: EngineConfig, policy: WorkerPolicy) -> Self {
        let num_workers = cfg.num_workers;
        // Lanes carry any task type, so they only make sense when every
        // worker may execute every type: the pipeline-parallel policy
        // keeps the per-type shared queues as its only dispatch path.
        let num_lanes = match &policy {
            WorkerPolicy::DataParallel if cfg.ablation.work_stealing => num_workers,
            _ => 0,
        };
        let pin = cfg.pin_cores;
        let core = CellCore::new(cfg, num_workers, num_lanes);
        let shutdown = Arc::new(AtomicBool::new(false));

        let workers = (0..num_workers)
            .map(|wid| {
                let core = core.clone();
                let shutdown = shutdown.clone();
                let my_types: Vec<TaskType> = match &policy {
                    WorkerPolicy::DataParallel => PRIORITY.to_vec(),
                    WorkerPolicy::PipelineParallel(assign) => assign[wid].clone(),
                };
                std::thread::Builder::new()
                    .name(format!("agora-worker-{wid}"))
                    .spawn(move || {
                        if pin {
                            pin_thread(PinRole::Worker(wid));
                        }
                        worker_loop(
                            wid,
                            &core.kernels,
                            &core.window,
                            &core.queues,
                            &core.stats,
                            &shutdown,
                            &my_types,
                        )
                    })
                    .expect("failed to spawn worker")
            })
            .collect();

        Self { core, shutdown, workers }
    }

    /// Statistics sink (live; read after `process` for Table 3 numbers).
    pub fn stats(&self) -> &EngineStats {
        &self.core.stats
    }

    /// The engine's kernel set (geometry, plans).
    pub fn kernels(&self) -> &Kernels {
        &self.core.kernels
    }

    /// Processes `num_frames` frames worth of packets. A network thread
    /// ingests `packets` (optionally paced to the cell's symbol
    /// duration); the calling thread becomes the manager. Returns one
    /// [`FrameResult`] per frame, in completion order.
    pub fn process(&self, packets: Vec<Bytes>, num_frames: u32, paced: bool) -> Vec<FrameResult> {
        let start = Instant::now();
        let net_done = Arc::new(AtomicBool::new(false));
        let symbol_ns = self.core.kernels.cfg.cell.symbol_duration_ns;

        std::thread::scope(|scope| {
            // --- network thread ---
            {
                let core = self.core.clone();
                let net_done = net_done.clone();
                scope.spawn(move || {
                    if core.kernels.cfg.pin_cores {
                        pin_thread(PinRole::Net);
                    }
                    let g = &core.kernels.geom;
                    let mut ingest = core.ingest_state();
                    let mut pace = paced.then(|| {
                        agora_fronthaul::Pacer::new(std::time::Duration::from_nanos(symbol_ns))
                    });
                    let mut last_symbol = u64::MAX;
                    for pkt in packets {
                        // Pace at symbol boundaries.
                        if let Some(p) = pace.as_mut() {
                            if let Ok((hdr, _)) = decode_ref(&pkt) {
                                let sym_abs =
                                    hdr.frame as u64 * g.symbols as u64 + hdr.symbol as u64;
                                if sym_abs != last_symbol {
                                    p.wait_next();
                                    last_symbol = sym_abs;
                                }
                            }
                        }
                        ingest.ingest(PacketBuf::Heap(pkt));
                    }
                    net_done.store(true, Ordering::Release);
                });
            }

            // --- manager loop (this thread) ---
            self.core.manager_loop(start, num_frames, &net_done)
        })
    }

    /// Processes `num_frames` frames arriving live over a fronthaul
    /// link. The network thread drains the link in whole batches per
    /// poll ([`Fronthaul::recv_batch`] — one `recvmmsg` on UDP links)
    /// and parks each packet buffer, pooled or heap, in the frame's slot
    /// table for zero-copy FFT intake. Polling continues until
    /// `producer_done` is observed true *and* the link is empty, so the
    /// caller must set it after the last packet has been sent. Returns
    /// one [`FrameResult`] per frame, in frame order; socket error and
    /// batch-size counters land in [`Self::stats`].
    pub fn process_fronthaul<F: Fronthaul + Sync + ?Sized>(
        &self,
        fh: &F,
        num_frames: u32,
        producer_done: &AtomicBool,
    ) -> Vec<FrameResult> {
        let start = Instant::now();
        let net_done = Arc::new(AtomicBool::new(false));
        let rx_batch = self.core.kernels.cfg.rx_batch.max(1);

        std::thread::scope(|scope| {
            // --- network thread ---
            {
                let core = self.core.clone();
                let net_done = net_done.clone();
                scope.spawn(move || {
                    if core.kernels.cfg.pin_cores {
                        pin_thread(PinRole::Net);
                    }
                    let stats = core.stats.clone();
                    let mut ingest = core.ingest_state();
                    let mut batch: Vec<PacketBuf> = Vec::with_capacity(rx_batch);
                    loop {
                        let n = fh.recv_batch(&mut batch, rx_batch);
                        if n > 0 {
                            stats.record_rx_batch(n);
                            for pkt in batch.drain(..) {
                                ingest.ingest(pkt);
                            }
                        } else if producer_done.load(Ordering::Acquire) {
                            // The producer signalled completion after its
                            // last send, so an empty poll here means the
                            // link is drained for good.
                            break;
                        } else {
                            std::thread::yield_now();
                        }
                    }
                    let (tx_e, rx_e) = fh.link_errors();
                    stats.set_link_errors(tx_e, rx_e);
                    net_done.store(true, Ordering::Release);
                });
            }

            // --- manager loop (this thread) ---
            self.core.manager_loop(start, num_frames, &net_done)
        })
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        // Parked workers re-check `shutdown` as soon as they're woken
        // (and at latest after PARK_TIMEOUT).
        self.core.queues.gate.wake_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Which thread is being pinned; decides its CPU under the fixed map.
#[derive(Debug, Clone, Copy)]
pub(crate) enum PinRole {
    /// Manager (and deployment demux) threads: CPU 0.
    Manager,
    /// Network ingest threads: CPU 1 when available, else CPU 0.
    Net,
    /// Worker `wid`: CPUs 2.. round-robin, keeping workers off the
    /// manager/net CPUs whenever the machine has more than two.
    Worker(usize),
}

/// Best-effort pin of the calling thread under the engine's CPU map.
/// Failure (no pinning support, cpuset restrictions, too few CPUs) is
/// ignored: pinning is a cache-locality hint, never correctness.
pub(crate) fn pin_thread(role: PinRole) {
    let n = agora_queue::affinity::available_cpus();
    let cpu = match role {
        PinRole::Manager => 0,
        PinRole::Net => usize::from(n >= 2),
        PinRole::Worker(wid) => {
            if n >= 3 {
                2 + wid % (n - 2)
            } else {
                wid % n
            }
        }
    };
    let _ = agora_queue::affinity::pin_current_thread(cpu);
}

impl CellCore {
    pub(crate) fn manager_loop(
        &self,
        start: Instant,
        num_frames: u32,
        net_done: &AtomicBool,
    ) -> Vec<FrameResult> {
        if self.kernels.cfg.pin_cores {
            pin_thread(PinRole::Manager);
        }
        // Frame abandonment: if the network thread has delivered
        // everything it will ever deliver and a frame is still waiting on
        // packets with no tasks in flight, the fronthaul lost packets —
        // emit the partial result instead of spinning forever.
        let mut ctx = ManagerCtx::new();
        let mut cbuf: Vec<Msg> = Vec::with_capacity(COMPLETE_BATCH);
        let mut last_progress = Instant::now();
        let kernels = &self.kernels;
        let g = &kernels.geom;
        let cell = &kernels.cfg.cell;
        let batch = kernels.cfg.batch;
        let mut states: HashMap<u32, FrameState> = HashMap::new();
        let mut results: Vec<FrameResult> = Vec::with_capacity(num_frames as usize);
        let mut completed: std::collections::HashSet<u64> = std::collections::HashSet::new();
        // Frames whose ZF (and thus precoder buffers) are complete — the
        // stale-precoder early start reads the previous frame's entry.
        let mut zf_complete: std::collections::HashSet<u32> = std::collections::HashSet::new();
        let stale_dl_symbols: Vec<usize> = if kernels.cfg.stale_precoder {
            cell.schedule.downlink_indices().into_iter().take(2).collect()
        } else {
            Vec::new()
        };
        // Pending FFT batch accumulator per (frame, symbol): consecutive
        // antenna run awaiting flush (base, count).
        let mut fft_runs: HashMap<(u32, usize), (u32, u32)> = HashMap::new();
        // Task messages currently in flight (queued or executing) per
        // frame. A frame's slot may only be retired once this reaches
        // zero — otherwise a worker could touch a reused buffer.
        let mut inflight: HashMap<u32, usize> = HashMap::new();
        // Frames past their deadline, waiting for their in-flight tasks
        // to drain before the dropped result is emitted.
        let mut abandoning: std::collections::HashSet<u32> = std::collections::HashSet::new();
        let deadline_ns = kernels.cfg.frame_deadline_ns;

        let now_ns = |start: Instant| start.elapsed().as_nanos() as u64;

        while results.len() < num_frames as usize {
            let mut idle = true;

            // 1. Ingest packet notifications.
            while let Some(msg) = self.queues.rx.pop() {
                idle = false;
                last_progress = Instant::now();
                let frame = msg.frame;
                let symbol = msg.symbol as usize;
                let ant = msg.base as usize;
                // Late rejection: the frame already finished (completed
                // or being abandoned) — a straggler or duplicate must not
                // resurrect its state.
                if completed.contains(&(frame as u64)) || abandoning.contains(&frame) {
                    self.stats.packet_late();
                    continue;
                }
                let mut pushed = 0usize;
                let st = states.entry(frame).or_insert_with(|| {
                    let mut st = FrameState::new(
                        frame,
                        cell.schedule.clone(),
                        g.m,
                        g.k,
                        g.q,
                        cell.num_zf_groups(),
                    );
                    if kernels.clustered_zf() {
                        st =
                            st.with_clustered_zf(kernels.zf_clusters(), kernels.zf_reduce_shards());
                    }
                    st.milestones.first_packet_ns = now_ns(start);
                    st.milestones.processing_start_ns = now_ns(start);
                    for r in st.initial_work() {
                        pushed += self.dispatch(&mut ctx, frame, r, &batch);
                    }
                    st
                });
                let Some(ready) = st.on_packet(symbol, ant) else {
                    // Duplicate (symbol, antenna): the byte-identical
                    // payload rewrite is harmless, but dispatching a
                    // second FFT would double-count the pilot barrier.
                    self.stats.packet_duplicate();
                    *inflight.entry(frame).or_insert(0) += pushed;
                    continue;
                };
                let rx_complete = st.packets_received(symbol) == g.m;
                for r in ready {
                    if let Ready::Fft { symbol, antenna } = r {
                        // Batch consecutive antennas into one message
                        // (§3.4 "Batching", N tasks per message).
                        let key = (frame, symbol);
                        let entry = fft_runs.entry(key).or_insert((antenna as u32, 0));
                        if entry.0 + entry.1 == antenna as u32 {
                            entry.1 += 1;
                        } else {
                            let (b, c) = *entry;
                            pushed += self.push_task(
                                &mut ctx,
                                Msg::task(TaskType::Fft, frame, symbol as u32, b, c),
                            );
                            *entry = (antenna as u32, 1);
                        }
                        if entry.1 as usize >= batch.fft {
                            let (b, c) = fft_runs.remove(&key).unwrap();
                            pushed += self.push_task(
                                &mut ctx,
                                Msg::task(TaskType::Fft, frame, symbol as u32, b, c),
                            );
                        }
                    }
                }
                // Flush any partial FFT run once the symbol's packets are
                // all in — nothing more will extend it.
                if rx_complete {
                    if let Some((b, c)) = fft_runs.remove(&(frame, symbol)) {
                        pushed += self.push_task(
                            &mut ctx,
                            Msg::task(TaskType::Fft, frame, symbol as u32, b, c),
                        );
                    }
                }
                *inflight.entry(frame).or_insert(0) += pushed;
            }

            // 2. Drain completions, a whole batch per cursor claim.
            loop {
                cbuf.clear();
                if self.queues.complete.pop_batch(&mut cbuf, COMPLETE_BATCH) == 0 {
                    break;
                }
                for &msg in cbuf.iter() {
                    idle = false;
                    last_progress = Instant::now();
                    let frame = msg.frame;
                    if let Some(n) = inflight.get_mut(&frame) {
                        *n = n.saturating_sub(1);
                    }
                    // The completing worker's caches now hold this symbol's
                    // buffers: send the symbol's next stage to its lane.
                    if !self.queues.lanes.is_empty() && (msg.aux as usize) < self.queues.lanes.len()
                    {
                        ctx.affinity.insert((frame, msg.symbol), msg.aux as usize);
                    }
                    if abandoning.contains(&frame) {
                        // The frame is being torn down: ignore the result and
                        // finalize once the last in-flight task has drained
                        // (only then is the slot safe to retire).
                        if inflight.get(&frame).copied().unwrap_or(0) == 0 {
                            self.finalize_abandoned(
                                &mut ctx,
                                frame,
                                &mut states,
                                &mut results,
                                &mut completed,
                                &mut abandoning,
                                &mut inflight,
                            );
                        }
                        continue;
                    }
                    let Some(st) = states.get_mut(&frame) else { continue };
                    let symbol = msg.symbol as usize;
                    let mut pushed = 0usize;
                    let mut ready = Vec::new();
                    let mut ul_done = false;
                    let mut dl_done = false;
                    match msg.task {
                        TaskType::Fft => {
                            ready = st.on_fft_done(symbol, msg.count as usize);
                            if st.pilots_complete() && st.milestones.pilot_done_ns == 0 {
                                st.milestones.pilot_done_ns = now_ns(start);
                            }
                        }
                        TaskType::Zf => {
                            // Staged path: the echoed `symbol` carries the ZF
                            // stage — 0 = monolithic task, 1..=C = cluster
                            // partial, above C = reduce shard (base = group).
                            let clusters = kernels.zf_clusters();
                            ready = if !kernels.clustered_zf() {
                                st.on_zf_done(msg.count as usize)
                            } else if (1..=clusters).contains(&symbol) {
                                st.on_zf_partial_done(msg.base as usize, msg.count as usize)
                            } else {
                                st.on_zf_reduce_done(msg.base as usize)
                            };
                            if st.zf_complete() && st.milestones.zf_done_ns == 0 {
                                st.milestones.zf_done_ns = now_ns(start);
                                zf_complete.insert(frame);
                            }
                        }
                        TaskType::Demod => {
                            ready = st.on_demod_done(symbol, msg.count as usize);
                        }
                        TaskType::Decode => {
                            ul_done = st.on_decode_done(symbol, msg.count as usize);
                        }
                        TaskType::Encode => {
                            ready = st.on_encode_done(symbol, msg.count as usize);
                            // §3.4.2 early start: the first downlink symbols
                            // may beam with the previous frame's precoder.
                            // Safe only while frame-1's slot is unretired
                            // (its buffers cannot be reused before then).
                            if ready.is_empty()
                                && kernels.cfg.stale_precoder
                                && frame > 0
                                && st.encode_complete(symbol)
                                && !st.zf_complete()
                                && zf_complete.contains(&(frame - 1))
                                && (frame - 1) as u64 >= self.min_frame.load(Ordering::Relaxed)
                                && stale_dl_symbols.contains(&symbol)
                            {
                                for r in st.precode_with_stale(symbol) {
                                    pushed += self.dispatch_stale(&mut ctx, frame, r, &batch);
                                }
                            }
                        }
                        TaskType::Precode => {
                            ready = st.on_precode_done(symbol, msg.count as usize);
                        }
                        TaskType::Ifft => {
                            dl_done = st.on_ifft_done(symbol, msg.count as usize);
                        }
                        _ => {}
                    }
                    // CSI interpolation runs inline on the manager between
                    // pilot completion and ZF dispatch (cheap, single pass).
                    if ready.contains(&Ready::AllZf) {
                        kernels.interpolate_csi(self.window.slot(frame));
                    }
                    for r in ready {
                        pushed += self.dispatch(&mut ctx, frame, r, &batch);
                    }
                    *inflight.entry(frame).or_insert(0) += pushed;
                    let has_ul = !cell.schedule.uplink_indices().is_empty();
                    let has_dl = !cell.schedule.downlink_indices().is_empty();
                    if ul_done && st.milestones.decode_done_ns == 0 {
                        st.milestones.decode_done_ns = now_ns(start);
                    }
                    if dl_done && st.milestones.ifft_done_ns == 0 {
                        st.milestones.ifft_done_ns = now_ns(start);
                    }
                    let complete =
                        (!has_ul || st.uplink_complete()) && (!has_dl || st.downlink_complete());
                    if complete {
                        let st = states.remove(&frame).unwrap();
                        inflight.remove(&frame);
                        ctx.affinity.retain(|&(f, _), _| f != frame);
                        self.stats.frame_completed();
                        results.push(self.collect_result(&st));
                        completed.insert(frame as u64);
                        // Retire contiguously from the bottom so the network
                        // thread can reuse slots.
                        let mut min = self.min_frame.load(Ordering::Relaxed);
                        while completed.contains(&min) {
                            min += 1;
                        }
                        self.min_frame.store(min, Ordering::Release);
                    }
                }
            }

            // 3. Deadline watchdog: abandon frames that have been in
            // flight longer than the configured budget — missing packets
            // would otherwise stall the pipeline (and, via flow control,
            // the whole fronthaul) until end-of-input.
            if let Some(deadline) = deadline_ns {
                if !states.is_empty() {
                    let now = now_ns(start);
                    let expired: Vec<u32> = states
                        .iter()
                        .filter(|(f, st)| {
                            !abandoning.contains(f)
                                && now.saturating_sub(st.milestones.first_packet_ns) > deadline
                        })
                        .map(|(&f, _)| f)
                        .collect();
                    if !expired.is_empty() {
                        idle = false;
                        last_progress = Instant::now();
                        for &f in &expired {
                            abandoning.insert(f);
                            // Un-flushed FFT runs will never be pushed.
                            fft_runs.retain(|&(fr, _), _| fr != f);
                        }
                        // Remove the abandoned frames' queued tasks so
                        // workers never touch their (soon freed) slots.
                        self.flush_abandoned(&mut ctx, &abandoning, &mut inflight);
                        let drained: Vec<u32> = abandoning
                            .iter()
                            .copied()
                            .filter(|f| inflight.get(f).copied().unwrap_or(0) == 0)
                            .collect();
                        for f in drained {
                            self.finalize_abandoned(
                                &mut ctx,
                                f,
                                &mut states,
                                &mut results,
                                &mut completed,
                                &mut abandoning,
                                &mut inflight,
                            );
                        }
                    }
                }
            }

            if idle {
                // Stall detection: network thread finished, every task
                // queue is empty, and nothing has completed for a while
                // -> the remaining frames are missing packets. Abandon
                // them with partial results rather than spinning forever.
                if net_done.load(Ordering::Acquire)
                    && last_progress.elapsed() > std::time::Duration::from_millis(200)
                    && self.queues.tasks.iter().all(|q| q.is_empty())
                    && self.queues.lanes.iter().all(|l| l.is_empty())
                {
                    ctx.affinity.clear();
                    let stalled: Vec<u32> = states.keys().copied().collect();
                    for frame in stalled {
                        let st = states.remove(&frame).unwrap();
                        abandoning.remove(&frame);
                        inflight.remove(&frame);
                        self.stats.add_packets_lost(st.packets_missing() as u64);
                        self.stats.frame_dropped();
                        let mut r = self.collect_result(&st);
                        r.dropped = true;
                        results.push(r);
                        completed.insert(frame as u64);
                    }
                    let mut min = self.min_frame.load(Ordering::Relaxed);
                    while completed.contains(&min) {
                        min += 1;
                    }
                    self.min_frame.store(min, Ordering::Release);
                    if results.len() < num_frames as usize {
                        // Frames whose packets never arrived at all: emit
                        // empty dropped results so callers see them.
                        let symbols = self.kernels.cfg.cell.symbols_per_frame();
                        let full_load = (cell.schedule.pilot_indices().len()
                            + cell.schedule.uplink_indices().len())
                            * g.m;
                        for f in 0..num_frames {
                            if !completed.contains(&(f as u64)) {
                                self.stats.add_packets_lost(full_load as u64);
                                self.stats.frame_dropped();
                                results.push(FrameResult {
                                    frame: f,
                                    milestones: crate::state::Milestones::default(),
                                    decoded: vec![Vec::new(); symbols],
                                    decode_ok: vec![Vec::new(); symbols],
                                    dropped: true,
                                    lost_packets: full_load as u32,
                                });
                                completed.insert(f as u64);
                            }
                        }
                    }
                    continue;
                }
                std::thread::yield_now();
            }
        }
        results.sort_by_key(|r| r.frame);
        results
    }

    /// Converts a ready-item into queue messages (applying batching) and
    /// places them — one lane `push_batch` (single cursor claim) when
    /// work stealing is on, per-type shared queues otherwise. Returns
    /// the number of messages pushed so the manager can track per-frame
    /// in-flight work.
    fn dispatch(
        &self,
        ctx: &mut ManagerCtx,
        frame: u32,
        ready: Ready,
        batch: &crate::config::BatchSizes,
    ) -> usize {
        let g = &self.kernels.geom;
        let mut stage = std::mem::take(&mut ctx.stage);
        stage.clear();
        match ready {
            Ready::Fft { .. } => unreachable!("FFT dispatch handled by the run accumulator"),
            Ready::AllZf => {
                let groups = self.kernels.cfg.cell.num_zf_groups();
                if self.kernels.clustered_zf() {
                    // Stage one: per-cluster partial-Gram sweeps over all
                    // groups. Stage is encoded as `symbol = cluster + 1`
                    // (it survives the completion echo; `aux` does not).
                    for cluster in 0..self.kernels.zf_clusters() as u32 {
                        let mut base = 0u32;
                        while (base as usize) < groups {
                            let count = batch.zf.min(groups - base as usize) as u32;
                            stage.push(Msg::task(TaskType::Zf, frame, cluster + 1, base, count));
                            base += count;
                        }
                    }
                } else {
                    let mut base = 0u32;
                    while (base as usize) < groups {
                        let count = batch.zf.min(groups - base as usize) as u32;
                        stage.push(Msg::task(TaskType::Zf, frame, 0, base, count));
                        base += count;
                    }
                }
            }
            Ready::ZfReduce { group } => {
                // Stage two: `symbol = C + 1 + shard`, `base` carries the
                // group index.
                let c = self.kernels.zf_clusters() as u32;
                for shard in 0..self.kernels.zf_reduce_shards() as u32 {
                    stage.push(Msg::task(TaskType::Zf, frame, c + 1 + shard, group as u32, 1));
                }
            }
            Ready::DemodSymbol { symbol } => {
                let mut base = 0u32;
                while (base as usize) < g.q {
                    let count = batch.demod.min(g.q - base as usize) as u32;
                    stage.push(Msg::task(TaskType::Demod, frame, symbol as u32, base, count));
                    base += count;
                }
            }
            Ready::DecodeSymbol { symbol } => {
                let mut base = 0u32;
                while (base as usize) < g.k {
                    let count = batch.decode.min(g.k - base as usize) as u32;
                    stage.push(Msg::task(TaskType::Decode, frame, symbol as u32, base, count));
                    base += count;
                }
            }
            Ready::EncodeSymbol { symbol } => {
                let mut base = 0u32;
                while (base as usize) < g.k {
                    let count = batch.encode.min(g.k - base as usize) as u32;
                    stage.push(Msg::task(TaskType::Encode, frame, symbol as u32, base, count));
                    base += count;
                }
            }
            Ready::PrecodeSymbol { symbol } => {
                let mut base = 0u32;
                while (base as usize) < g.q {
                    let count = batch.precode.min(g.q - base as usize) as u32;
                    stage.push(Msg::task(TaskType::Precode, frame, symbol as u32, base, count));
                    base += count;
                }
            }
            Ready::IfftSymbol { symbol } => {
                let mut base = 0u32;
                while (base as usize) < g.m {
                    let count = batch.ifft.min(g.m - base as usize) as u32;
                    stage.push(Msg::task(TaskType::Ifft, frame, symbol as u32, base, count));
                    base += count;
                }
            }
        }
        let pushed = self.place_batch(ctx, &stage);
        ctx.stage = stage;
        pushed
    }

    /// Dispatches a stale-precoder precode ready-item: identical to
    /// [`Self::dispatch`] but messages carry `aux = 1`, telling workers
    /// to read the precoder from the previous frame's buffers.
    fn dispatch_stale(
        &self,
        ctx: &mut ManagerCtx,
        frame: u32,
        ready: Ready,
        batch: &crate::config::BatchSizes,
    ) -> usize {
        let g = &self.kernels.geom;
        if let Ready::PrecodeSymbol { symbol } = ready {
            let mut stage = std::mem::take(&mut ctx.stage);
            stage.clear();
            let mut base = 0u32;
            while (base as usize) < g.q {
                let count = batch.precode.min(g.q - base as usize) as u32;
                let mut msg = Msg::task(TaskType::Precode, frame, symbol as u32, base, count);
                msg.aux = 1;
                stage.push(msg);
                base += count;
            }
            let pushed = self.place_batch(ctx, &stage);
            ctx.stage = stage;
            pushed
        } else {
            self.dispatch(ctx, frame, ready, batch)
        }
    }

    /// Places one task message (the single-message path of
    /// [`Self::place_batch`]).
    fn push_task(&self, ctx: &mut ManagerCtx, msg: Msg) -> usize {
        if msg.count == 0 {
            return 0;
        }
        self.place_batch(ctx, &[msg])
    }

    /// Places a staged batch of task messages. With lanes: pick the
    /// affinity lane for the batch's (frame, symbol) — the worker whose
    /// caches last held those buffers — falling back to the least-loaded
    /// lane; enqueue the whole batch with one cursor claim; overflow any
    /// tail to the shared per-type queues; wake parked workers once.
    /// Imbalance from affinity clustering is corrected by stealing, not
    /// by the manager. Without lanes: per-type shared queues, as before.
    fn place_batch(&self, ctx: &mut ManagerCtx, msgs: &[Msg]) -> usize {
        if msgs.is_empty() {
            return 0;
        }
        let lanes = &self.queues.lanes;
        if lanes.is_empty() {
            for &m in msgs {
                self.push_shared(m);
            }
            return msgs.len();
        }
        let key = (msgs[0].frame, msgs[0].symbol);
        let lane_id = match ctx.affinity.get(&key) {
            Some(&w) if w < lanes.len() => w,
            _ => {
                // Least-loaded fallback, round-robin start so equal
                // depths spread instead of piling onto worker 0.
                let start = ctx.rr;
                ctx.rr = (ctx.rr + 1) % lanes.len();
                let mut best = start;
                let mut best_len = lanes[start].len();
                for off in 1..lanes.len() {
                    let i = (start + off) % lanes.len();
                    let l = lanes[i].len();
                    if l < best_len {
                        best = i;
                        best_len = l;
                    }
                }
                best
            }
        };
        let lane = &lanes[lane_id];
        let depth = lane.len();
        let fit = lane.push_batch(msgs);
        if fit > 0 {
            self.stats.record_lane_push(fit as u64, depth);
        }
        if fit < msgs.len() {
            self.stats.add_lane_overflows((msgs.len() - fit) as u64);
            for &m in &msgs[fit..] {
                self.push_shared(m);
            }
        }
        for &m in msgs {
            ctx.affinity.insert((m.frame, m.symbol), lane_id);
        }
        if self.queues.gate.wake_all() {
            self.stats.wake();
        }
        msgs.len()
    }

    /// Pushes one message into its shared per-type queue, counting retry
    /// spins (queue-full backpressure) instead of silently yielding.
    /// Cannot livelock: queue capacity covers every in-flight message of
    /// the whole window, and workers keep draining while we spin.
    fn push_shared(&self, msg: Msg) {
        let q = self.queues.queue(msg.task);
        let mut m = msg;
        let mut retries = 0u64;
        while let Err(back) = q.push(m) {
            m = back;
            retries += 1;
            std::thread::yield_now();
        }
        if retries > 0 {
            self.stats.add_push_retries(msg.task, retries);
        }
    }

    /// Removes every queued task belonging to an abandoning frame,
    /// crediting its in-flight count. Tasks a worker already popped
    /// complete normally and drain through the completion queue — the
    /// frame's slot stays valid until its count reaches zero, so workers
    /// never observe a freed buffer. The manager is the only task-queue
    /// producer, so pop-all / re-push cannot chase its own tail.
    /// Survivors drain into the reusable `ctx.flush_scratch` (no fresh
    /// allocation per abandonment); lane survivors are re-pushed to the
    /// shared queues, which are sized to absorb every in-flight message.
    fn flush_abandoned(
        &self,
        ctx: &mut ManagerCtx,
        abandoning: &std::collections::HashSet<u32>,
        inflight: &mut HashMap<u32, usize>,
    ) {
        let scratch = &mut ctx.flush_scratch;
        for q in &self.queues.tasks {
            scratch.clear();
            while q.pop_batch(scratch, COMPLETE_BATCH) > 0 {}
            for &msg in scratch.iter() {
                if abandoning.contains(&msg.frame) {
                    if let Some(n) = inflight.get_mut(&msg.frame) {
                        *n = n.saturating_sub(1);
                    }
                } else {
                    self.push_shared(msg);
                }
            }
        }
        for lane in &self.queues.lanes {
            scratch.clear();
            while lane.pop_batch(scratch, COMPLETE_BATCH) > 0 {}
            for &msg in scratch.iter() {
                if abandoning.contains(&msg.frame) {
                    if let Some(n) = inflight.get_mut(&msg.frame) {
                        *n = n.saturating_sub(1);
                    }
                } else {
                    self.push_shared(msg);
                }
            }
        }
        scratch.clear();
        if !self.queues.lanes.is_empty() && self.queues.gate.wake_all() {
            self.stats.wake();
        }
    }

    /// Emits the dropped result for an abandoned frame and retires its
    /// slot. Must only be called once the frame's in-flight count is
    /// zero.
    #[allow(clippy::too_many_arguments)]
    fn finalize_abandoned(
        &self,
        ctx: &mut ManagerCtx,
        frame: u32,
        states: &mut HashMap<u32, FrameState>,
        results: &mut Vec<FrameResult>,
        completed: &mut std::collections::HashSet<u64>,
        abandoning: &mut std::collections::HashSet<u32>,
        inflight: &mut HashMap<u32, usize>,
    ) {
        ctx.affinity.retain(|&(f, _), _| f != frame);
        abandoning.remove(&frame);
        inflight.remove(&frame);
        let Some(st) = states.remove(&frame) else { return };
        self.stats.add_packets_lost(st.packets_missing() as u64);
        self.stats.frame_dropped();
        let mut r = self.collect_result(&st);
        r.dropped = true;
        results.push(r);
        completed.insert(frame as u64);
        let mut min = self.min_frame.load(Ordering::Relaxed);
        while completed.contains(&min) {
            min += 1;
        }
        self.min_frame.store(min, Ordering::Release);
    }

    fn collect_result(&self, st: &FrameState) -> FrameResult {
        let g = &self.kernels.geom;
        let fb = self.window.slot(st.frame);
        let symbols = self.kernels.cfg.cell.symbols_per_frame();
        let ul: std::collections::HashSet<usize> =
            self.kernels.cfg.cell.schedule.uplink_indices().into_iter().collect();
        let mut decoded = vec![Vec::new(); symbols];
        let mut ok = vec![Vec::new(); symbols];
        for sym in 0..symbols {
            if !ul.contains(&sym) {
                continue;
            }
            for user in 0..g.k {
                // Safe: the frame is complete; no writers remain.
                let bits = unsafe { fb.decoded.slice(fb.decoded_range(g, sym, user)) }.to_vec();
                let flag = unsafe { fb.decode_ok.read(sym * g.k + user) } != 0;
                decoded[sym].push(bits);
                ok[sym].push(flag);
            }
        }
        FrameResult {
            frame: st.frame,
            milestones: st.milestones,
            decoded,
            decode_ok: ok,
            dropped: false,
            lost_packets: st.packets_missing() as u32,
        }
    }
}

/// True if any queue this worker may serve holds work. The final check
/// before parking: taken *after* the gate epoch snapshot, so a push
/// racing with the park bumps the epoch and the park returns at once.
pub(crate) fn has_work(queues: &TaskQueues, my_types: &[TaskType]) -> bool {
    queues.lanes.iter().any(|l| !l.is_empty())
        || my_types.iter().any(|&t| !queues.queue(t).is_empty())
}

pub(crate) fn worker_loop(
    wid: usize,
    kernels: &Kernels,
    window: &FrameWindow,
    queues: &TaskQueues,
    stats: &EngineStats,
    shutdown: &AtomicBool,
    my_types: &[TaskType],
) {
    let mut scratch = kernels.scratch();
    let lanes_on = !queues.lanes.is_empty();
    let mut batch: Vec<Msg> = Vec::with_capacity(WORKER_BATCH);
    let mut done: Vec<Msg> = Vec::with_capacity(WORKER_BATCH);
    let mut backoff = IdleBackoff::new();
    while !shutdown.load(Ordering::Acquire) {
        batch.clear();
        // 1. Own lane: a batch per cursor claim.
        if lanes_on {
            queues.lanes[wid].pop_batch(&mut batch, WORKER_BATCH);
        }
        // 2. Shared per-type queues in priority order (overflow traffic
        //    and the non-stealing configurations).
        if batch.is_empty() {
            for &t in my_types {
                if let Some(msg) = queues.queue(t).pop() {
                    batch.push(msg);
                    break;
                }
            }
        }
        // 3. Steal: scan peers' lanes from our right-hand neighbour,
        //    taking half a victim's backlog in one claim.
        if batch.is_empty() && lanes_on {
            for off in 1..queues.lanes.len() {
                let victim = (wid + off) % queues.lanes.len();
                let n = queues.lanes[victim].steal_batch(&mut batch, WORKER_BATCH);
                if n > 0 {
                    stats.record_steal(n as u64);
                    break;
                }
            }
        }
        if !batch.is_empty() {
            backoff.reset();
            done.clear();
            for msg in &batch {
                let t0 = Instant::now();
                execute(kernels, window, &mut scratch, msg);
                let ns = t0.elapsed().as_nanos() as u64;
                stats.record(wid, msg.task, msg.count as u64, ns);
                done.push(Msg::complete(
                    msg.task, msg.frame, msg.symbol, msg.base, msg.count, wid as u16,
                ));
            }
            // Completion pushes amortised: one claim per batch.
            let mut off = 0;
            while off < done.len() {
                let n = queues.complete.push_batch(&done[off..]);
                if n == 0 {
                    std::thread::yield_now();
                }
                off += n;
            }
            continue;
        }
        // 4. Idle: spin → yield → park (legacy unconditional yield when
        //    lanes are off, preserving the shared-queue baseline).
        if !lanes_on {
            std::thread::yield_now();
            continue;
        }
        match backoff.next() {
            IdleAction::Spin => std::hint::spin_loop(),
            IdleAction::Yield => std::thread::yield_now(),
            IdleAction::Park => {
                let seen = queues.gate.epoch();
                if has_work(queues, my_types) || shutdown.load(Ordering::Acquire) {
                    continue;
                }
                stats.park();
                queues.gate.park(seen, PARK_TIMEOUT);
            }
        }
    }
}

pub(crate) fn execute(
    kernels: &Kernels,
    window: &FrameWindow,
    scratch: &mut WorkerScratch,
    msg: &Msg,
) {
    let fb = window.slot(msg.frame);
    let symbol = msg.symbol as usize;
    let base = msg.base as usize;
    let count = msg.count as usize;
    match msg.task {
        TaskType::Fft => {
            if kernels.cfg.ablation.batched_fft && count > 1 {
                kernels.fft_batch_task(fb, scratch, symbol, base, count);
            } else {
                for i in 0..count {
                    kernels.fft_task(fb, scratch, symbol, base + i);
                }
            }
        }
        TaskType::Zf => {
            let clusters = kernels.zf_clusters();
            if !kernels.clustered_zf() {
                for i in 0..count {
                    kernels.zf_task(fb, scratch, base + i);
                }
            } else if (1..=clusters).contains(&symbol) {
                for i in 0..count {
                    kernels.gram_partial_task(fb, scratch, base + i, symbol - 1);
                }
            } else {
                kernels.zf_reduce_task(fb, scratch, base, symbol - clusters - 1);
            }
        }
        TaskType::Demod => kernels.demod_task(fb, scratch, msg.frame, symbol, base, count),
        TaskType::Decode => {
            for i in 0..count {
                kernels.decode_task(fb, scratch, symbol, base + i);
            }
        }
        TaskType::Encode => {
            for i in 0..count {
                kernels.encode_task(fb, msg.frame, symbol, base + i);
            }
        }
        TaskType::Precode => {
            if msg.aux == 1 && msg.frame > 0 {
                // Stale-precoder early start: precoder from frame-1.
                let pre_src = window.slot(msg.frame - 1);
                kernels.precode_task_with(fb, pre_src, scratch, symbol, base, count);
            } else {
                kernels.precode_task(fb, scratch, symbol, base, count);
            }
        }
        TaskType::Ifft => {
            if kernels.cfg.ablation.batched_fft && count > 1 {
                kernels.ifft_batch_task(fb, scratch, symbol, base, count);
            } else {
                for i in 0..count {
                    kernels.ifft_task(fb, scratch, symbol, base + i);
                }
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EngineConfig, EqMode};
    use agora_fronthaul::{MemFronthaul, RruConfig, RruEmulator};
    use agora_phy::CellConfig;

    /// The threaded engine must decode ground truth through both the
    /// default direct path (Cholesky-solved ZF detector) and the
    /// iterative CG equalization mode — the same kernels the inline
    /// engine A/B-tests, here under the real scheduler.
    #[test]
    fn threaded_engine_decodes_direct_and_iterative() {
        let cell = CellConfig::tiny_test(2);
        let mut rru = RruEmulator::new(
            cell.clone(),
            RruConfig { snr_db: 30.0, seed: 45, ..Default::default() },
        );
        let frames = 2u32;
        let mut packets = Vec::new();
        let mut gts = Vec::new();
        for f in 0..frames {
            let (p, gt) = rru.generate_frame(f);
            packets.extend(p);
            gts.push(gt);
        }
        for iterative in [false, true] {
            let mut cfg = EngineConfig::new(cell.clone(), 2);
            cfg.noise_power = rru.noise_power();
            if iterative {
                cfg.ablation.eq_mode = EqMode::Iterative;
            }
            let engine = Engine::new(cfg);
            let mut results = engine.process(packets.clone(), frames, false);
            results.sort_by_key(|r| r.frame);
            assert_eq!(results.len(), frames as usize);
            for r in &results {
                assert!(!r.dropped, "iterative={iterative} frame {} dropped", r.frame);
                let gt = &gts[r.frame as usize];
                for symbol in cell.schedule.uplink_indices() {
                    for user in 0..cell.num_users {
                        assert!(
                            r.decode_ok[symbol][user],
                            "iterative={iterative} frame {} symbol {symbol} user {user}",
                            r.frame
                        );
                        assert_eq!(r.decoded[symbol][user], gt.info_bits[symbol][user]);
                    }
                }
            }
        }
    }

    /// The staged antenna-cluster ZF path must decode the same bits as
    /// the monolithic path under the real scheduler, for both the
    /// direct solve (with its sharded reduce) and the iterative CG mode
    /// (single-shard reduce).
    #[test]
    fn threaded_clustered_zf_matches_monolithic_bits() {
        let cell = CellConfig::tiny_test(2);
        let mut rru = RruEmulator::new(
            cell.clone(),
            RruConfig { snr_db: 30.0, seed: 45, ..Default::default() },
        );
        let frames = 2u32;
        let mut packets = Vec::new();
        for f in 0..frames {
            let (p, _) = rru.generate_frame(f);
            packets.extend(p);
        }
        let run = |clusters: usize, iterative: bool| {
            let mut cfg = EngineConfig::new(cell.clone(), 2);
            cfg.noise_power = rru.noise_power();
            if iterative {
                cfg.ablation.eq_mode = EqMode::Iterative;
            }
            if clusters > 0 {
                cfg.ablation.clustered_zf = true;
                cfg.antenna_clusters = clusters;
            }
            let mut results = Engine::new(cfg).process(packets.clone(), frames, false);
            results.sort_by_key(|r| r.frame);
            results
        };
        for iterative in [false, true] {
            let mono = run(0, iterative);
            for clusters in [1, 4] {
                let staged = run(clusters, iterative);
                assert_eq!(mono.len(), staged.len());
                for (m, s) in mono.iter().zip(staged.iter()) {
                    assert!(!s.dropped, "clusters={clusters} frame {} dropped", s.frame);
                    assert_eq!(
                        m.decoded, s.decoded,
                        "clusters={clusters} iterative={iterative} frame {}",
                        s.frame
                    );
                    assert_eq!(m.decode_ok, s.decode_ok);
                }
            }
        }
    }

    /// Driving the engine straight off a [`Fronthaul`] link must decode
    /// identically to the packet-list path, drain the link in whole
    /// batches, and surface the batch/error observability counters.
    #[test]
    fn process_fronthaul_drains_batches_and_records_stats() {
        let cell = CellConfig::tiny_test(2);
        let mut rru = RruEmulator::new(
            cell.clone(),
            RruConfig { snr_db: 30.0, seed: 9, ..Default::default() },
        );
        let frames = 2u32;
        let (tx, rx) = MemFronthaul::pair(1024);
        // One malformed datagram rides along; intake must count and
        // skip it without disturbing the frames.
        tx.send(PacketBuf::Heap(Bytes::from(vec![0xFFu8; 32]))).unwrap();
        let mut gts = Vec::new();
        let mut total = 1u64;
        for f in 0..frames {
            let (p, gt) = rru.generate_frame(f);
            total += p.len() as u64;
            for pkt in p {
                tx.send(PacketBuf::Heap(pkt)).unwrap();
            }
            gts.push(gt);
        }
        let mut cfg = EngineConfig::new(cell.clone(), 2);
        cfg.noise_power = rru.noise_power();
        let rx_batch = cfg.rx_batch as u64;
        let engine = Engine::new(cfg);
        // Everything is already queued, so the producer is done.
        let done = AtomicBool::new(true);
        let results = engine.process_fronthaul(&rx, frames, &done);
        assert_eq!(results.len(), frames as usize);
        for r in &results {
            assert!(!r.dropped, "frame {} dropped", r.frame);
            let gt = &gts[r.frame as usize];
            for symbol in cell.schedule.uplink_indices() {
                for user in 0..cell.num_users {
                    assert!(r.decode_ok[symbol][user], "frame {} sym {symbol} u {user}", r.frame);
                    assert_eq!(r.decoded[symbol][user], gt.info_bits[symbol][user]);
                }
            }
        }
        let stats = engine.stats();
        assert_eq!(stats.rx_batch_packets(), total, "every queued packet drained");
        assert!(stats.rx_batches() >= total.div_ceil(rx_batch), "batch count sanity");
        assert!(stats.rx_batch_max() <= rx_batch, "polls bounded by the configured batch");
        assert!(stats.rx_batch_max() > 1, "a pre-filled link must drain multi-packet batches");
        assert_eq!(stats.rx_errors(), 1, "the malformed datagram is counted");
        assert_eq!(stats.link_errors(), (0, 0), "in-memory link has no socket errors");
    }
}
