//! Task bodies — what a worker actually executes for each task type.
//!
//! One [`Kernels`] instance per engine holds the immutable plans (FFT
//! twiddles, GEMM dispatch, pilot references); each worker additionally
//! owns a [`WorkerScratch`] with its decoder state and staging buffers so
//! task execution never allocates. The same kernels serve the
//! data-parallel engine, the pipeline-parallel variant, and the inline
//! single-threaded mode — the schedulers differ, the math does not.

use crate::buffers::{BufferGeometry, FrameBuffers};
use crate::config::{EngineConfig, EqMode};
use agora_fft::{Direction, FftPlan, SubcarrierMap};
use agora_ldpc::{DecodeConfig, DecodeConfigI8, Decoder, DecoderI8, Encoder, RateMatch};
use agora_math::simd::{stream_copy, SimdTier};
use agora_math::{
    gram_accumulate_with_tier, gram_pair_with_tier, gram_reduce, normalize_precoder_in_place,
    pinv_from_gram_slice_into, pinv_into, CMat, Cf32, Gemm, PinvMethod, PinvScratch,
};
use agora_phy::demod::{demod_soft_i8, demod_soft_simd};
use agora_phy::equalize::{cg_solve_gram, neumann_diag_inv, CgScratch, CG_MAX_ITERS, CG_REL_TOL};
use agora_phy::frame::SymbolType;
use agora_phy::iq::{unpack_sample, BYTES_PER_SAMPLE};
use agora_phy::modulation::{map_symbol, ModScheme};
use agora_phy::pilots::PilotPlan;
use agora_phy::ClusterPlan;

/// Immutable, shared kernel state.
pub struct Kernels {
    /// Engine configuration (cell + ablations).
    pub cfg: EngineConfig,
    /// Buffer geometry derived from the cell.
    pub geom: BufferGeometry,
    fft: FftPlan,
    map: SubcarrierMap,
    pilots: PilotPlan,
    rate_match: RateMatch,
    encoder: Encoder,
    /// Planned GEMM for equalization (`K x M x block`).
    eq_gemm: Gemm,
    /// Planned GEMM for precoding (`M x K x block`).
    pre_gemm: Gemm,
    simd: SimdTier,
    /// Tier the beamforming matrix kernels (ZF pinv, equalize GEMV,
    /// precode) dispatch to — `Scalar` when `ablation.simd_gemm` is off.
    gemm_tier: SimdTier,
    /// Pseudo-inverse method the zero-forcing path actually runs:
    /// `ablation.pinv_method` with `Direct` upgraded to `Cholesky` when
    /// `ablation.zf_cholesky` is on.
    pinv_method: PinvMethod,
    /// Whether the schedule carries downlink symbols (the iterative
    /// equalizer skips the precoder entirely when it doesn't).
    has_downlink: bool,
    /// Coded bits actually carried per (symbol, user).
    coded_bits: usize,
}

/// Per-worker mutable scratch: decoder state and staging buffers.
pub struct WorkerScratch {
    decoder: Decoder,
    /// Fixed-point decoder for the quantised plane (`ablation.
    /// quantized_decoder`); carries its own message/posterior scratch.
    decoder_i8: DecoderI8,
    grid: Vec<Cf32>,
    /// Staging for batched (I)FFT execution: up to
    /// `max(batch.fft, batch.ifft)` transform-sized grids back to back, so
    /// one `execute_batch_prereversed` call covers a whole task batch.
    batch_grid: Vec<Cf32>,
    active: Vec<Cf32>,
    ant_block: Vec<Cf32>,
    user_block: Vec<Cf32>,
    /// Per-user equalized rows for the strided demod path,
    /// `[user][zf_group]` — gathered so demodulation runs the SIMD
    /// demapper over a contiguous row instead of symbol-at-a-time.
    strided_rows: Vec<Cf32>,
    llr_tmp: Vec<f32>,
    llr_i8_tmp: Vec<i8>,
    full_llr: Vec<f32>,
    full_llr_i8: Vec<i8>,
    /// Tracked common-phase-error estimate (radians), carried across
    /// blocks/symbols processed by this worker.
    cpe_seed: f32,
    /// Frame the CPE seed belongs to (drift restarts at each frame's
    /// pilot, so the tracker resets on frame changes).
    cpe_frame: u32,
    /// ZF scratch: channel matrix (`M x K`), detector (`K x M`), precoder
    /// (`M x K`) and pseudo-inverse intermediates, reused across groups so
    /// the ZF task never allocates on the direct path.
    zf_h: CMat,
    zf_det: CMat,
    zf_pre: CMat,
    zf_pinv: PinvScratch,
    /// Conjugate-transpose staging for one cluster's partial Gram
    /// (`K x max_len` under the balanced antenna split) — the partitioned
    /// ZF path's per-cluster `H_c^H` operand.
    zf_part_ah: Vec<Cf32>,
    /// Reduce-shard solve staging: one `K x width` matrix per distinct
    /// shard width (at most two under the balanced split). Empty when the
    /// reduce is unsharded — the full-width solve lands in `zf_det`.
    zf_shard: Vec<CMat>,
    /// Formed detector staging for the iterative mode's downlink
    /// precoder (`K x M`) — the `det` plane holds `H^H` there, so the
    /// true ZF solution needs its own home.
    zf_w: CMat,
    /// Iterative-equalization scratch: CG state plus per-subcarrier
    /// RHS/solution staging.
    cg: CgScratch,
    cg_b: Vec<Cf32>,
    cg_x: Vec<Cf32>,
    /// Per-user LLR noise variances for the current block, filled by
    /// `demod_task` before demapping (direct: `noise * ||w_u||^2`;
    /// iterative: `noise * diag((H^H H)^{-1})_u` via the Neumann series).
    nv_row: Vec<f32>,
    /// Neumann diagonal-inverse estimates for the current group.
    diag_inv: Vec<f32>,
}

impl Kernels {
    /// Builds kernels for a validated engine configuration.
    pub fn new(cfg: EngineConfig) -> Self {
        cfg.validate().expect("invalid engine configuration");
        let cell = &cfg.cell;
        let geom = BufferGeometry {
            m: cell.num_antennas,
            k: cell.num_users,
            q: cell.num_data_sc,
            symbols: cell.symbols_per_frame(),
            samples: cell.samples_per_symbol(),
            block: cfg.demod_block,
            zf_group: cell.zf_group,
            // The partial-Gram plane only exists on the staged path; keep
            // it a single (unused) tile per group otherwise.
            clusters: if cfg.ablation.clustered_zf { cfg.antenna_clusters } else { 1 },
            cap_bits: cell.bits_per_symbol_per_user(),
            info_bits: cell.info_bits_per_symbol(),
        };
        let fft = FftPlan::new(cell.fft_size);
        let map = SubcarrierMap::new(cell.fft_size, cell.num_data_sc);
        let pilots = PilotPlan::new(cell.pilot_scheme, cell.num_users, cell.num_data_sc);
        let rate_match = cell.ldpc.rate_match();
        let encoder = Encoder::new(cell.ldpc.base_graph, cell.ldpc.z);
        // `simd_gemm` picks the SIMD tier of every beamforming product
        // (bit-identical across tiers); `jit_gemm` keeps its Table 4
        // meaning of dropping the planned equalize/precode kernels to the
        // generic scalar loop.
        let gemm_tier = if cfg.ablation.simd_gemm { SimdTier::cached() } else { SimdTier::Scalar };
        let (eq_gemm, pre_gemm) = if cfg.ablation.jit_gemm {
            (
                Gemm::plan_with_tier(geom.k, geom.m, geom.block, gemm_tier),
                Gemm::plan_with_tier(geom.m, geom.k, geom.block, gemm_tier),
            )
        } else {
            (
                Gemm::plan_generic(geom.k, geom.m, geom.block),
                Gemm::plan_generic(geom.m, geom.k, geom.block),
            )
        };
        let coded_bits = cell.coded_bits_per_symbol();
        let pinv_method =
            if cfg.ablation.zf_cholesky && cfg.ablation.pinv_method == PinvMethod::Direct {
                PinvMethod::Cholesky
            } else {
                cfg.ablation.pinv_method
            };
        let has_downlink = !cell.schedule.downlink_indices().is_empty();
        Self {
            cfg,
            geom,
            fft,
            map,
            pilots,
            rate_match,
            encoder,
            eq_gemm,
            pre_gemm,
            simd: SimdTier::detect(),
            gemm_tier,
            pinv_method,
            has_downlink,
            coded_bits,
        }
    }

    /// Creates a fresh per-worker scratch.
    pub fn scratch(&self) -> WorkerScratch {
        let g = &self.geom;
        WorkerScratch {
            decoder: Decoder::new(self.cfg.cell.ldpc.base_graph, self.cfg.cell.ldpc.z),
            decoder_i8: DecoderI8::new(self.cfg.cell.ldpc.base_graph, self.cfg.cell.ldpc.z),
            grid: vec![Cf32::ZERO; self.cfg.cell.fft_size],
            batch_grid: vec![
                Cf32::ZERO;
                self.cfg.batch.fft.max(self.cfg.batch.ifft).max(1)
                    * self.cfg.cell.fft_size
            ],
            active: vec![Cf32::ZERO; g.q],
            ant_block: vec![Cf32::ZERO; g.m * g.block],
            user_block: vec![Cf32::ZERO; g.k * g.block],
            strided_rows: vec![Cf32::ZERO; g.k * g.zf_group],
            llr_tmp: Vec::with_capacity(g.zf_group * 8),
            llr_i8_tmp: Vec::with_capacity(g.zf_group * 8),
            full_llr: vec![0.0; self.rate_match.codeword_len()],
            full_llr_i8: vec![0; self.rate_match.codeword_len()],
            cpe_seed: 0.0,
            cpe_frame: u32::MAX,
            zf_h: CMat::zeros(g.m, g.k),
            zf_det: CMat::zeros(g.k, g.m),
            zf_pre: CMat::zeros(g.m, g.k),
            zf_pinv: PinvScratch::with_tier(g.m, g.k, self.gemm_tier),
            zf_part_ah: vec![Cf32::ZERO; g.k * ClusterPlan::new(g.m, g.clusters).max_len()],
            zf_shard: {
                let shards = self.zf_reduce_shards();
                if shards > 1 {
                    let plan = ClusterPlan::new(g.m, shards);
                    let mut widths: Vec<usize> = (0..shards).map(|i| plan.range(i).len()).collect();
                    widths.dedup();
                    widths.into_iter().map(|w| CMat::zeros(g.k, w)).collect()
                } else {
                    Vec::new()
                }
            },
            zf_w: CMat::zeros(g.k, g.m),
            cg: CgScratch::new(g.k),
            cg_b: vec![Cf32::ZERO; g.k],
            cg_x: vec![Cf32::ZERO; g.k],
            nv_row: vec![0.0; g.k],
            diag_inv: vec![0.0; g.k],
        }
    }

    /// The rate-matching plan.
    pub fn rate_match(&self) -> &RateMatch {
        &self.rate_match
    }

    /// The pilot plan.
    pub fn pilots(&self) -> &PilotPlan {
        &self.pilots
    }

    /// Coded bits carried per (symbol, user).
    pub fn coded_bits(&self) -> usize {
        self.coded_bits
    }

    /// Which pilot-symbol ordinal a frame symbol index is (0-based among
    /// pilots); only valid for pilot symbols.
    pub fn pilot_ordinal(&self, symbol: usize) -> usize {
        self.cfg
            .cell
            .schedule
            .pilot_indices()
            .iter()
            .position(|&s| s == symbol)
            .expect("symbol is not a pilot")
    }

    /// FFT task (uplink): unpack one antenna's payload, FFT, then either
    /// estimate CSI (pilot symbols — the FFT+CSI fusion of Table 2) or
    /// store frequency-domain data for demodulation.
    ///
    /// The front of the task is fused: IQ unpack, cyclic-prefix skip and
    /// the FFT's bit-reversal permutation collapse into one gather-on-copy
    /// pass ([`unpack_bitrev`]), after which the transform runs its
    /// butterfly stages directly ([`FftPlan::execute_prereversed`]).
    ///
    /// # Safety contract
    /// Requires exclusive ownership of this (symbol, antenna)'s output
    /// regions, guaranteed by the scheduler.
    pub fn fft_task(&self, fb: &FrameBuffers, s: &mut WorkerScratch, symbol: usize, ant: usize) {
        let g = &self.geom;
        // SAFETY: the scheduler dispatched this (symbol, antenna), so
        // its packet slot is occupied and no longer written; the view
        // lives only for this task.
        let payload = unsafe { fb.rx_payload_view(g, symbol, ant) };
        // The emulated RRU sends CP-less symbols; any leading samples
        // beyond the FFT size are the (empty) prefix and are skipped by
        // the fused gather.
        let skip = g.samples - self.cfg.cell.fft_size;
        unpack_bitrev(payload, skip, self.fft.bitrev(), &mut s.grid);
        self.fft.execute_prereversed(&mut s.grid, Direction::Forward);
        self.map.demap_symbols(&s.grid, &mut s.active);
        self.fft_store(fb, symbol, ant, &s.active);
    }

    /// Batched FFT task: the same per-antenna work as [`Self::fft_task`]
    /// for `count` consecutive antennas, with all transforms executed in
    /// one [`FftPlan::execute_batch_prereversed`] call so the SIMD kernel
    /// amortises twiddle loads and keeps L1-resident tiles hot across
    /// transforms. Output is bit-identical to `count` single tasks.
    pub fn fft_batch_task(
        &self,
        fb: &FrameBuffers,
        s: &mut WorkerScratch,
        symbol: usize,
        base: usize,
        count: usize,
    ) {
        let g = &self.geom;
        let n = self.cfg.cell.fft_size;
        assert!(count * n <= s.batch_grid.len(), "batch exceeds scratch capacity");
        let skip = g.samples - n;
        for i in 0..count {
            // SAFETY: as in `fft_task` — every antenna in the dispatched
            // batch has an occupied, no-longer-written packet slot.
            let payload = unsafe { fb.rx_payload_view(g, symbol, base + i) };
            unpack_bitrev(payload, skip, self.fft.bitrev(), &mut s.batch_grid[i * n..(i + 1) * n]);
        }
        self.fft.execute_batch_prereversed(&mut s.batch_grid[..count * n], Direction::Forward);
        for i in 0..count {
            self.map.demap_symbols(&s.batch_grid[i * n..(i + 1) * n], &mut s.active);
            self.fft_store(fb, symbol, base + i, &s.active);
        }
    }

    /// Post-FFT store: CSI estimation for pilots, frequency-plane write
    /// for uplink data. `active` holds the demapped data subcarriers of
    /// `(symbol, ant)`.
    fn fft_store(&self, fb: &FrameBuffers, symbol: usize, ant: usize, active: &[Cf32]) {
        let g = &self.geom;
        match self.cfg.cell.schedule.symbol(symbol) {
            SymbolType::Pilot => {
                // Fused channel estimation: LS divide by the known pilot.
                let ordinal = self.pilot_ordinal(symbol);
                let k = g.k;
                for (sc, &y) in active.iter().enumerate() {
                    if let Some((user, p)) = self.pilots.owner(ordinal, sc) {
                        let h = y * p.inv();
                        // Element-precise write: concurrent FFT tasks for
                        // other antennas target different indices of the
                        // same subcarrier's CSI block.
                        let idx = fb.csi_range(sc).start + ant * k + user;
                        unsafe { fb.csi.write(idx, h) };
                    }
                }
            }
            SymbolType::Uplink => {
                let sym_base = fb.freq_symbol_range(symbol).start;
                if self.cfg.ablation.cache_layout {
                    // Block layout: [block][antenna][8 sc]. Slice exactly
                    // this antenna's 8-sample window of each block so
                    // concurrent antennas never alias.
                    let b = g.block;
                    for (blk, chunk) in active.chunks_exact(b).enumerate() {
                        let off = sym_base + fb.freq_block_offset(g, blk, ant);
                        let out = unsafe { fb.freq.slice_mut(off..off + b) };
                        if self.cfg.ablation.streaming_stores {
                            stream_copy(chunk, out, self.simd);
                        } else {
                            out.copy_from_slice(chunk);
                        }
                    }
                } else {
                    // Strided layout: [antenna][sc]; one contiguous run
                    // per antenna.
                    let off = sym_base + fb.freq_strided_offset(g, ant, 0);
                    let out = unsafe { fb.freq.slice_mut(off..off + g.q) };
                    if self.cfg.ablation.streaming_stores {
                        stream_copy(active, out, self.simd);
                    } else {
                        out.copy_from_slice(active);
                    }
                }
            }
            _ => {}
        }
    }

    /// Interpolates the CSI across subcarriers after all pilot FFTs are
    /// done. Cheap; the manager runs it inline between pilot completion
    /// and ZF dispatch. For frequency-orthogonal pilots each user is only
    /// observed every K-th subcarrier; copy the nearest estimate (flat-
    /// channel assumption, as the paper's emulation).
    pub fn interpolate_csi(&self, fb: &FrameBuffers) {
        if self.pilots.scheme() == agora_phy::PilotScheme::TimeOrthogonal {
            return;
        }
        let g = &self.geom;
        let k = g.k;
        for sc in 0..g.q {
            let anchor = (sc / k) * k; // first subcarrier of this K-group
            for user in 0..k {
                let src_sc = anchor + user;
                if src_sc == sc || src_sc >= g.q {
                    continue;
                }
                for ant in 0..g.m {
                    let v = unsafe { fb.csi.slice(fb.csi_range(src_sc)) }[ant * k + user];
                    let dst = unsafe { fb.csi.slice_mut(fb.csi_range(sc)) };
                    dst[ant * k + user] = v;
                }
            }
        }
    }

    /// ZF task: compute detector and precoder for one subcarrier group.
    /// The detector family is configurable ([`crate::config::DetectorKind`]);
    /// zero-forcing additionally honours the pseudo-inverse ablation
    /// (direct Gram inversion vs SVD).
    ///
    /// The hot path (zero-forcing with the direct Gram inverse) is
    /// allocation-free: the channel copy, pseudo-inverse intermediates,
    /// detector and precoder all live in `WorkerScratch`. The SVD
    /// fallback and the MMSE/conjugate detectors still allocate — they
    /// are ablation/degraded paths, not the per-group steady state.
    pub fn zf_task(&self, fb: &FrameBuffers, s: &mut WorkerScratch, group: usize) {
        use crate::config::DetectorKind;
        let g = &self.geom;
        let sc = group * g.zf_group;
        let csi = unsafe { fb.csi.slice(fb.csi_range(sc)) };
        s.zf_h.as_mut_slice().copy_from_slice(csi);
        let iterative = self.cfg.ablation.eq_mode == EqMode::Iterative
            && self.cfg.ablation.detector == DetectorKind::ZeroForcing;
        match self.cfg.ablation.detector {
            DetectorKind::ZeroForcing if iterative => {
                // Iterative equalization: publish `H^H` in the detector
                // plane and the Gram matrix in the gram plane; the
                // per-subcarrier CG solve happens at demod time, so the
                // ZF task never factors anything on the uplink path.
                s.zf_h.hermitian_into(&mut s.zf_det);
                let gram = unsafe { fb.gram.slice_mut(fb.gram_range(group)) };
                gram_pair_with_tier(
                    g.m,
                    g.k,
                    s.zf_det.as_slice(),
                    s.zf_h.as_slice(),
                    gram,
                    self.gemm_tier,
                );
            }
            DetectorKind::ZeroForcing => {
                pinv_into(&s.zf_h, self.pinv_method, &mut s.zf_pinv, &mut s.zf_det);
            }
            DetectorKind::Mmse => {
                let det = agora_phy::Detector::Mmse { noise_power: self.cfg.noise_power }
                    .compute(&s.zf_h);
                s.zf_det.copy_from(&det);
            }
            DetectorKind::Conjugate => {
                // Row-normalised matched filter, matching
                // `agora_phy::Detector::Conjugate` bit for bit.
                s.zf_h.hermitian_into(&mut s.zf_det);
                let (rows, m) = s.zf_det.shape();
                for u in 0..rows {
                    let gain: f32 = (0..m).map(|a| s.zf_det[(u, a)].norm_sqr()).sum();
                    if gain > 0.0 {
                        let inv = 1.0 / gain;
                        for a in 0..m {
                            s.zf_det[(u, a)] = s.zf_det[(u, a)].scale(inv);
                        }
                    }
                }
            }
        }
        let need_pre = !iterative || self.has_downlink;
        if iterative && self.has_downlink {
            // The downlink still needs the formed detector; solve the
            // Gram system once per group (Cholesky) into its own staging
            // so the published `H^H` stays untouched.
            pinv_into(&s.zf_h, self.pinv_method, &mut s.zf_pinv, &mut s.zf_w);
        }
        if need_pre {
            let det = if iterative { &s.zf_w } else { &s.zf_det };
            det.transpose_into(&mut s.zf_pre);
            normalize_precoder_in_place(&mut s.zf_pre);
        }
        unsafe {
            fb.det.slice_mut(fb.det_range(group)).copy_from_slice(s.zf_det.as_slice());
            if need_pre {
                fb.pre.slice_mut(fb.pre_range(group)).copy_from_slice(s.zf_pre.as_slice());
            }
        }
    }

    /// Whether the staged (antenna-cluster partitioned) ZF path is on.
    pub fn clustered_zf(&self) -> bool {
        self.cfg.ablation.clustered_zf
    }

    /// Antenna clusters of the staged ZF path (1 when it's off).
    pub fn zf_clusters(&self) -> usize {
        self.geom.clusters
    }

    /// True when the zero-forcing path runs in iterative (CG) mode.
    fn zf_iterative(&self) -> bool {
        use crate::config::DetectorKind;
        self.cfg.ablation.eq_mode == EqMode::Iterative
            && self.cfg.ablation.detector == DetectorKind::ZeroForcing
    }

    /// Reduce shards per group on the staged ZF path. The solve is
    /// sharded across the detector's antenna columns (one shard per
    /// cluster) only when nothing needs the full detector in one place:
    /// the downlink precoder normalisation scales by the *global* max
    /// antenna power, and the iterative mode's reduce publishes one
    /// shared Gram plane — both force a single reduce task.
    pub fn zf_reduce_shards(&self) -> usize {
        if self.has_downlink || self.zf_iterative() {
            1
        } else {
            self.geom.clusters
        }
    }

    /// Stage one of the partitioned ZF path: compute the partial Gram
    /// `H_c^H H_c` over cluster `cluster`'s contiguous antenna rows of
    /// group `group`'s channel and publish it in the partial-Gram plane.
    ///
    /// The zero-fill + [`gram_accumulate_with_tier`] pair is bit-identical
    /// to a fresh `gram_pair` over the same rows, so a single cluster
    /// reproduces the monolithic Gram exactly.
    pub fn gram_partial_task(
        &self,
        fb: &FrameBuffers,
        s: &mut WorkerScratch,
        group: usize,
        cluster: usize,
    ) {
        let g = &self.geom;
        let plan = ClusterPlan::new(g.m, g.clusters);
        let rows = plan.range(cluster);
        let len = rows.len();
        let sc = group * g.zf_group;
        let csi = unsafe { fb.csi.slice(fb.csi_range(sc)) };
        // The cluster's antennas are contiguous rows of the `M x K`
        // row-major CSI slice — the Gram's A operand needs no staging.
        let a = &csi[rows.start * g.k..rows.end * g.k];
        debug_assert!(g.k * len <= s.zf_part_ah.len(), "cluster staging too small");
        let ah = &mut s.zf_part_ah[..g.k * len];
        agora_math::simd::conj_transpose(a, len, g.k, ah, self.gemm_tier);
        let out = unsafe { fb.gram_part.slice_mut(fb.gram_part_range(group, cluster)) };
        out.fill(Cf32::ZERO);
        gram_accumulate_with_tier(len, g.k, ah, a, out, self.gemm_tier);
    }

    /// Stage two of the partitioned ZF path: fold group `group`'s partial
    /// Grams in fixed cluster order (every shard folds all of them — the
    /// factorisation inputs are bit-identical across shards), then solve
    /// shard `shard`'s antenna-column slice of the detector.
    ///
    /// With a single shard this runs the full monolithic tail (precoder
    /// transpose, normalisation, publication); sharded reduces skip the
    /// precoder entirely (only dispatched when the schedule has no
    /// downlink) and publish their detector columns element-wise, so
    /// concurrent shards never alias.
    pub fn zf_reduce_task(
        &self,
        fb: &FrameBuffers,
        s: &mut WorkerScratch,
        group: usize,
        shard: usize,
    ) {
        let g = &self.geom;
        let shards = self.zf_reduce_shards();
        debug_assert!(shard < shards, "reduce shard out of range");
        let sc = group * g.zf_group;
        let csi = unsafe { fb.csi.slice(fb.csi_range(sc)) };
        s.zf_h.as_mut_slice().copy_from_slice(csi);
        // Deterministic tree reduction: a fixed left fold over the
        // cluster-ordered partial plane. Identical bits in every shard.
        let parts = unsafe { fb.gram_part.slice(fb.gram_part_group_range(group)) };
        gram_reduce(parts, s.zf_pinv.gram_mut().as_mut_slice());

        if self.zf_iterative() {
            // Iterative mode: publish the folded Gram and `H^H`; the CG
            // solves happen at demod time. Mirrors the monolithic
            // iterative arm of [`Self::zf_task`] with the Gram swapped
            // for the reduction result.
            debug_assert_eq!(shards, 1);
            s.zf_h.hermitian_into(&mut s.zf_det);
            unsafe {
                fb.gram
                    .slice_mut(fb.gram_range(group))
                    .copy_from_slice(s.zf_pinv.gram_mut().as_slice());
                fb.det.slice_mut(fb.det_range(group)).copy_from_slice(s.zf_det.as_slice());
            }
            if self.has_downlink {
                pinv_from_gram_slice_into(
                    &s.zf_h,
                    self.pinv_method,
                    0,
                    g.m,
                    &mut s.zf_pinv,
                    &mut s.zf_w,
                );
                s.zf_w.transpose_into(&mut s.zf_pre);
                normalize_precoder_in_place(&mut s.zf_pre);
                unsafe {
                    fb.pre.slice_mut(fb.pre_range(group)).copy_from_slice(s.zf_pre.as_slice());
                }
            }
            return;
        }

        if shards == 1 {
            // Unsharded direct mode: full-width solve from the folded
            // Gram, then the monolithic tail.
            pinv_from_gram_slice_into(
                &s.zf_h,
                self.pinv_method,
                0,
                g.m,
                &mut s.zf_pinv,
                &mut s.zf_det,
            );
            s.zf_det.transpose_into(&mut s.zf_pre);
            normalize_precoder_in_place(&mut s.zf_pre);
            unsafe {
                fb.det.slice_mut(fb.det_range(group)).copy_from_slice(s.zf_det.as_slice());
                fb.pre.slice_mut(fb.pre_range(group)).copy_from_slice(s.zf_pre.as_slice());
            }
            return;
        }

        // Sharded direct mode: solve only this shard's antenna columns.
        // Per-RHS-column independence of the triangular sweeps makes the
        // assembled detector bit-identical to the full-width solve.
        let cols = ClusterPlan::new(g.m, shards).range(shard);
        let out = s
            .zf_shard
            .iter_mut()
            .find(|m| m.shape() == (g.k, cols.len()))
            .expect("no shard staging for this width");
        pinv_from_gram_slice_into(
            &s.zf_h,
            self.pinv_method,
            cols.start,
            cols.len(),
            &mut s.zf_pinv,
            out,
        );
        let det_base = fb.det_range(group).start;
        for u in 0..g.k {
            for (j, a) in cols.clone().enumerate() {
                debug_assert!(a < g.m, "detector column out of range");
                // Element-precise writes: concurrent shards of the same
                // group target disjoint column sets of the same plane.
                unsafe { fb.det.write(det_base + u * g.m + a, out[(u, j)]) };
            }
        }
    }

    /// Fused equalization + demodulation for `count` consecutive
    /// subcarriers starting at `sc_base` of one uplink symbol. Writes
    /// per-user LLRs.
    pub fn demod_task(
        &self,
        fb: &FrameBuffers,
        s: &mut WorkerScratch,
        frame: u32,
        symbol: usize,
        sc_base: usize,
        count: usize,
    ) {
        if s.cpe_frame != frame {
            // New frame: the pilot re-anchors the phase reference.
            s.cpe_frame = frame;
            s.cpe_seed = 0.0;
        }
        let g = &self.geom;
        let bps = self.cfg.cell.modulation.bits_per_symbol();
        let freq = unsafe { fb.freq.slice(fb.freq_symbol_range(symbol)) };
        let noise = self.cfg.noise_power.max(1e-9);
        let iterative = self.cfg.ablation.eq_mode == EqMode::Iterative;

        if self.cfg.ablation.cache_layout {
            debug_assert_eq!(sc_base % g.block, 0);
            debug_assert_eq!(count % g.block, 0);
            for blk_off in (0..count).step_by(g.block) {
                let sc = sc_base + blk_off;
                let blk = sc / g.block;
                let group = sc / g.zf_group;
                let det_slice = unsafe { fb.det.slice(fb.det_range(group)) };
                // Antenna block is contiguous per antenna in this layout.
                let base = fb.freq_block_offset(g, blk, 0);
                let ant_block = &freq[base..base + g.m * g.block];
                // Direct: `det` holds W, the GEMM finishes equalization.
                // Iterative: `det` holds H^H, the GEMM forms the CG
                // right-hand sides `H^H y` for the whole block.
                self.eq_gemm.run(det_slice, ant_block, &mut s.user_block);
                if iterative {
                    let gram = unsafe { fb.gram.slice(fb.gram_range(group)) };
                    self.cg_block(s, gram, g.block);
                    neumann_diag_inv(gram, g.k, &mut s.diag_inv);
                    for u in 0..g.k {
                        s.nv_row[u] = noise * s.diag_inv[u];
                    }
                } else {
                    for u in 0..g.k {
                        s.nv_row[u] = noise * row_norm_sqr(det_slice, g.m, u);
                    }
                }
                self.write_llrs(fb, s, symbol, sc, g.block, bps);
            }
        } else {
            // Strided layout: equalization still runs one GEMV per
            // subcarrier over M strided samples (the wasted-cache-line
            // pattern §4.1 describes is the point of this ablation), but
            // demodulation is batched — each user's equalized symbols are
            // gathered into a contiguous row and routed through the SIMD
            // demapper instead of a scalar call per subcarrier. Chunks
            // stop at ZF-group boundaries so the detector (and with it
            // the post-ZF noise amplification) is constant per chunk.
            let mut done = 0;
            while done < count {
                let sc0 = sc_base + done;
                let group = sc0 / g.zf_group;
                let group_end = (group + 1) * g.zf_group;
                let w = (group_end - sc0).min(count - done);
                let det_slice = unsafe { fb.det.slice(fb.det_range(group)) };
                let gram = iterative.then(|| unsafe { fb.gram.slice(fb.gram_range(group)) });
                if let Some(gram) = gram {
                    neumann_diag_inv(gram, g.k, &mut s.diag_inv);
                    for u in 0..g.k {
                        s.nv_row[u] = noise * s.diag_inv[u];
                    }
                } else {
                    for u in 0..g.k {
                        s.nv_row[u] = noise * row_norm_sqr(det_slice, g.m, u);
                    }
                }
                for i in 0..w {
                    let sc = sc0 + i;
                    for ant in 0..g.m {
                        s.ant_block[ant] = freq[fb.freq_strided_offset(g, ant, sc)];
                    }
                    agora_math::gemv_with_tier(
                        g.k,
                        g.m,
                        det_slice,
                        &s.ant_block[..g.m],
                        &mut s.user_block[..g.k],
                        self.gemm_tier,
                    );
                    if let Some(gram) = gram {
                        // GEMV produced `H^H y`; solve the Gram system.
                        s.cg_b.copy_from_slice(&s.user_block[..g.k]);
                        cg_solve_gram(
                            gram,
                            g.k,
                            &s.cg_b,
                            &mut s.cg_x,
                            CG_MAX_ITERS,
                            CG_REL_TOL,
                            &mut s.cg,
                        );
                        for user in 0..g.k {
                            s.strided_rows[user * g.zf_group + i] = s.cg_x[user];
                        }
                    } else {
                        for user in 0..g.k {
                            s.strided_rows[user * g.zf_group + i] = s.user_block[user];
                        }
                    }
                }
                for user in 0..g.k {
                    let nv = s.nv_row[user];
                    self.demap_row(fb, s, symbol, user, sc0, w, bps, nv, g.zf_group);
                }
                done += w;
            }
        }
    }

    /// Replaces each column of `user_block` (`K x width`, currently the
    /// CG right-hand sides `H^H y`) with the solution of
    /// `(H^H H) x = H^H y` for that subcarrier.
    fn cg_block(&self, s: &mut WorkerScratch, gram: &[Cf32], width: usize) {
        let k = self.geom.k;
        for c in 0..width {
            for u in 0..k {
                s.cg_b[u] = s.user_block[u * width + c];
            }
            cg_solve_gram(gram, k, &s.cg_b, &mut s.cg_x, CG_MAX_ITERS, CG_REL_TOL, &mut s.cg);
            for u in 0..k {
                s.user_block[u * width + c] = s.cg_x[u];
            }
        }
    }

    /// Demaps one user's contiguous row of `width` equalized symbols
    /// (staged in `strided_rows` at the given stride) into the active LLR
    /// plane, starting at subcarrier `sc0`.
    #[allow(clippy::too_many_arguments)]
    fn demap_row(
        &self,
        fb: &FrameBuffers,
        s: &mut WorkerScratch,
        symbol: usize,
        user: usize,
        sc0: usize,
        width: usize,
        bps: usize,
        nv: f32,
        stride: usize,
    ) {
        let g = &self.geom;
        let row = &s.strided_rows[user * stride..user * stride + width];
        let base = fb.llr_range(g, symbol, user).start;
        if self.cfg.ablation.quantized_decoder {
            s.llr_i8_tmp.clear();
            demod_soft_i8(
                self.cfg.cell.modulation,
                row,
                nv,
                self.cfg.llr_quant_scale,
                &mut s.llr_tmp,
                &mut s.llr_i8_tmp,
            );
            let out = unsafe { fb.llr_i8.slice_mut(base + sc0 * bps..base + (sc0 + width) * bps) };
            out.copy_from_slice(&s.llr_i8_tmp);
        } else {
            demod_soft_simd(self.cfg.cell.modulation, row, nv, &mut s.llr_tmp);
            let out = unsafe { fb.llr.slice_mut(base + sc0 * bps..base + (sc0 + width) * bps) };
            out.copy_from_slice(&s.llr_tmp);
        }
    }

    /// Writes LLRs for one equalized block (`K x block` in
    /// `s.user_block`). Per-user noise variances are read from
    /// `s.nv_row`, filled by the caller for the current block.
    #[allow(clippy::too_many_arguments)]
    fn write_llrs(
        &self,
        fb: &FrameBuffers,
        s: &mut WorkerScratch,
        symbol: usize,
        sc: usize,
        width: usize,
        bps: usize,
    ) {
        let g = &self.geom;
        if self.cfg.cpe_correction {
            // Tracked CPE correction: derotate the whole block (all
            // users x width — the rotation is common) by the running
            // estimate, then estimate and remove the residual. Tracking
            // keeps the per-step residual inside the constellation's
            // decision-directed capture range even when the absolute
            // drift has accumulated far beyond it.
            let block = &mut s.user_block[..g.k * width];
            agora_phy::cpe::correct_cpe(block, s.cpe_seed);
            let residual = agora_phy::cpe::estimate_and_correct(self.cfg.cell.modulation, block);
            s.cpe_seed += residual;
        }
        for user in 0..g.k {
            let row = &s.user_block[user * width..(user + 1) * width];
            // Post-ZF noise on user u is amplified by ||w_u||^2 (direct)
            // or its Neumann estimate (iterative); see `demod_task`.
            let nv = s.nv_row[user];
            let base = fb.llr_range(g, symbol, user).start;
            // Width is the 8-subcarrier cache-line block: exactly one
            // AVX2 vector per axis.
            if self.cfg.ablation.quantized_decoder {
                s.llr_i8_tmp.clear();
                demod_soft_i8(
                    self.cfg.cell.modulation,
                    row,
                    nv,
                    self.cfg.llr_quant_scale,
                    &mut s.llr_tmp,
                    &mut s.llr_i8_tmp,
                );
                let llr =
                    unsafe { fb.llr_i8.slice_mut(base + sc * bps..base + (sc + width) * bps) };
                llr.copy_from_slice(&s.llr_i8_tmp);
            } else {
                demod_soft_simd(self.cfg.cell.modulation, row, nv, &mut s.llr_tmp);
                let llr = unsafe { fb.llr.slice_mut(base + sc * bps..base + (sc + width) * bps) };
                llr.copy_from_slice(&s.llr_tmp);
            }
        }
    }

    /// LDPC decode task for one (symbol, user). Routes through the f32
    /// layered decoder or, with `ablation.quantized_decoder`, the
    /// Z-lane-vectorised i8 decoder reading the quantised LLR plane. Both
    /// paths re-inflate into reusable scratch — no hot-path allocation.
    pub fn decode_task(
        &self,
        fb: &FrameBuffers,
        s: &mut WorkerScratch,
        symbol: usize,
        user: usize,
    ) {
        let g = &self.geom;
        let tx_len = self.rate_match.tx_len();
        let res = if self.cfg.ablation.quantized_decoder {
            let llr = unsafe { fb.llr_i8.slice(fb.llr_range(g, symbol, user)) };
            self.rate_match.fill_llrs_into(&llr[..tx_len], &mut s.full_llr_i8);
            s.decoder_i8.decode(
                &s.full_llr_i8,
                &DecodeConfigI8 {
                    max_iters: self.cfg.cell.ldpc.max_iters,
                    active_rows: Some(self.rate_match.active_rows()),
                    ..Default::default()
                },
            )
        } else {
            let llr = unsafe { fb.llr.slice(fb.llr_range(g, symbol, user)) };
            self.rate_match.fill_llrs_into(&llr[..tx_len], &mut s.full_llr);
            s.decoder.decode(
                &s.full_llr,
                &DecodeConfig {
                    max_iters: self.cfg.cell.ldpc.max_iters,
                    active_rows: Some(self.rate_match.active_rows()),
                    ..Default::default()
                },
            )
        };
        unsafe {
            fb.decoded.slice_mut(fb.decoded_range(g, symbol, user)).copy_from_slice(&res.info_bits);
            fb.decode_ok.write(symbol * g.k + user, res.success as u8);
        }
    }

    /// LDPC encode task (downlink): deterministic MAC payload for
    /// `(frame, symbol, user)`, encoded and rate-matched into `dl_bits`.
    pub fn encode_task(&self, fb: &FrameBuffers, frame: u32, symbol: usize, user: usize) {
        let g = &self.geom;
        let info = mac_payload(frame, symbol as u32, user as u32, self.encoder.info_len());
        let cw = self.encoder.encode(&info);
        let mut tx = self.rate_match.extract(&cw);
        tx.resize(g.cap_bits, 0);
        unsafe {
            fb.dl_bits.slice_mut(fb.dl_bits_range(g, symbol, user)).copy_from_slice(&tx);
        }
    }

    /// Fused modulation + precoding for `count` consecutive subcarriers of
    /// one downlink symbol. Reads `dl_bits`, writes `dl_freq` blocks.
    pub fn precode_task(
        &self,
        fb: &FrameBuffers,
        s: &mut WorkerScratch,
        symbol: usize,
        sc_base: usize,
        count: usize,
    ) {
        self.precode_task_with(fb, fb, s, symbol, sc_base, count)
    }

    /// Like [`Self::precode_task`] but takes the precoder from a separate
    /// frame's buffers — the §3.4.2 stale-precoder early start, where the
    /// first downlink symbols beam with the previous frame's ZF output.
    pub fn precode_task_with(
        &self,
        fb: &FrameBuffers,
        pre_src: &FrameBuffers,
        s: &mut WorkerScratch,
        symbol: usize,
        sc_base: usize,
        count: usize,
    ) {
        let g = &self.geom;
        let bps = self.cfg.cell.modulation.bits_per_symbol();
        let sym_base = fb.freq_symbol_range(symbol).start;
        debug_assert_eq!(sc_base % g.block, 0);
        for blk_off in (0..count).step_by(g.block) {
            let sc = sc_base + blk_off;
            let width = g.block.min(g.q - sc);
            // Build the K x width user-symbol matrix (modulation fusion).
            for user in 0..g.k {
                let bits = unsafe { fb.dl_bits.slice(fb.dl_bits_range(g, symbol, user)) };
                for w in 0..width {
                    let mut v = 0u32;
                    for b in 0..bps {
                        v |= ((bits[(sc + w) * bps + b] & 1) as u32) << b;
                    }
                    s.user_block[user * width + w] = map_symbol(self.cfg.cell.modulation, v);
                }
            }
            let pre_slice = unsafe { pre_src.pre.slice(pre_src.pre_range(sc / g.zf_group)) };
            self.pre_gemm.run(
                pre_slice,
                &s.user_block[..g.k * width],
                &mut s.ant_block[..g.m * width],
            );
            // Scatter to [block][antenna][width]; this task owns the
            // whole block (all antennas) for its subcarriers.
            let base = sym_base + fb.freq_block_offset(g, sc / g.block, 0);
            let out = unsafe { fb.dl_freq.slice_mut(base..base + g.m * width) };
            if self.cfg.ablation.streaming_stores {
                stream_copy(&s.ant_block[..g.m * width], out, self.simd);
            } else {
                out.copy_from_slice(&s.ant_block[..g.m * width]);
            }
        }
    }

    /// IFFT task (downlink): gather one antenna's subcarriers, inverse
    /// transform, write time-domain samples. The subcarrier scatter is
    /// fused with the transform's bit-reversal permutation
    /// ([`SubcarrierMap::map_symbols_bitrev`]) so the grid is built
    /// pre-reversed and the butterflies run directly on it.
    pub fn ifft_task(&self, fb: &FrameBuffers, s: &mut WorkerScratch, symbol: usize, ant: usize) {
        let g = &self.geom;
        let freq = unsafe { fb.dl_freq.slice(fb.freq_symbol_range(symbol)) };
        for blk in 0..g.q / g.block {
            let off = fb.freq_block_offset(g, blk, ant);
            s.active[blk * g.block..(blk + 1) * g.block].copy_from_slice(&freq[off..off + g.block]);
        }
        self.map.map_symbols_bitrev(&s.active, &mut s.grid, self.fft.bitrev());
        self.fft.execute_prereversed(&mut s.grid, Direction::Inverse);
        let out = unsafe { fb.dl_time.slice_mut(fb.dl_time_range(g, symbol, ant)) };
        // CP-less symbols, as in the uplink path.
        out.copy_from_slice(&s.grid[..g.samples]);
    }

    /// Batched IFFT task: [`Self::ifft_task`] for `count` consecutive
    /// antennas through one batched inverse transform. Output is
    /// bit-identical to `count` single tasks.
    pub fn ifft_batch_task(
        &self,
        fb: &FrameBuffers,
        s: &mut WorkerScratch,
        symbol: usize,
        base: usize,
        count: usize,
    ) {
        let g = &self.geom;
        let n = self.cfg.cell.fft_size;
        assert!(count * n <= s.batch_grid.len(), "batch exceeds scratch capacity");
        let freq = unsafe { fb.dl_freq.slice(fb.freq_symbol_range(symbol)) };
        for i in 0..count {
            let ant = base + i;
            for blk in 0..g.q / g.block {
                let off = fb.freq_block_offset(g, blk, ant);
                s.active[blk * g.block..(blk + 1) * g.block]
                    .copy_from_slice(&freq[off..off + g.block]);
            }
            self.map.map_symbols_bitrev(
                &s.active,
                &mut s.batch_grid[i * n..(i + 1) * n],
                self.fft.bitrev(),
            );
        }
        self.fft.execute_batch_prereversed(&mut s.batch_grid[..count * n], Direction::Inverse);
        let out = unsafe { fb.dl_time.slice_mut(fb.dl_time_run_range(g, symbol, base, count)) };
        for i in 0..count {
            out[i * g.samples..(i + 1) * g.samples]
                .copy_from_slice(&s.batch_grid[i * n..i * n + g.samples]);
        }
    }

    /// Modulation scheme shortcut.
    pub fn modulation(&self) -> ModScheme {
        self.cfg.cell.modulation
    }
}

/// Fused IQ unpack + cyclic-prefix skip + bit-reversal: reads the packed
/// 12-bit IQ samples of one symbol payload and writes the FFT-sized tail
/// (samples `skip..`) into `out` in bit-reversed order, ready for
/// [`FftPlan::execute_prereversed`]. One gather-on-copy pass replaces the
/// previous unpack → tail copy → in-place permutation sequence — the
/// samples are touched once instead of three times.
pub fn unpack_bitrev(payload: &[u8], skip: usize, bitrev: &[u32], out: &mut [Cf32]) {
    assert_eq!(out.len(), bitrev.len(), "output must be transform-sized");
    assert!(
        payload.len() >= (skip + out.len()) * BYTES_PER_SAMPLE,
        "payload too short for skip + transform"
    );
    for (o, &j) in out.iter_mut().zip(bitrev.iter()) {
        let b = (skip + j as usize) * BYTES_PER_SAMPLE;
        let bytes: &[u8; 3] = payload[b..b + BYTES_PER_SAMPLE].try_into().unwrap();
        *o = unpack_sample(bytes);
    }
}

/// Squared norm of detector row `user` (length `m`).
fn row_norm_sqr(det: &[Cf32], m: usize, user: usize) -> f32 {
    det[user * m..(user + 1) * m].iter().map(|z| z.norm_sqr()).sum()
}

/// Deterministic pseudo-random MAC payload for downlink experiments.
pub fn mac_payload(frame: u32, symbol: u32, user: u32, len: usize) -> Vec<u8> {
    let mut state = ((frame as u64) << 32) ^ ((symbol as u64) << 16) ^ (user as u64) ^ 0x9E37;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state & 1) as u8
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use agora_phy::CellConfig;

    #[test]
    fn kernels_build_for_paper_and_tiny_configs() {
        let _ = Kernels::new(EngineConfig::new(CellConfig::tiny_test(2), 2));
        let _ = Kernels::new(EngineConfig::new(CellConfig::emulated_rru(16, 4, 2), 4));
    }

    #[test]
    fn mac_payload_is_deterministic_and_binary() {
        let a = mac_payload(1, 2, 3, 100);
        let b = mac_payload(1, 2, 3, 100);
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| x <= 1));
        let c = mac_payload(1, 2, 4, 100);
        assert_ne!(a, c);
    }

    #[test]
    fn pilot_ordinal_maps_schedule() {
        let k = Kernels::new(EngineConfig::new(CellConfig::tiny_test(2), 2));
        assert_eq!(k.pilot_ordinal(0), 0);
    }

    #[test]
    fn scratch_sizes_match_geometry() {
        let k = Kernels::new(EngineConfig::new(CellConfig::tiny_test(2), 2));
        let s = k.scratch();
        assert_eq!(s.grid.len(), k.cfg.cell.fft_size);
        assert_eq!(
            s.batch_grid.len(),
            k.cfg.batch.fft.max(k.cfg.batch.ifft).max(1) * k.cfg.cell.fft_size
        );
        assert_eq!(s.active.len(), k.geom.q);
        assert_eq!(s.full_llr.len(), k.rate_match().codeword_len());
        assert_eq!(s.zf_h.shape(), (k.geom.m, k.geom.k));
        assert_eq!(s.zf_det.shape(), (k.geom.k, k.geom.m));
        assert_eq!(s.zf_pre.shape(), (k.geom.m, k.geom.k));
    }

    /// Satellite sizing audit for the partitioned-ZF scratch at large
    /// arrays: every staging buffer is sized from the validated
    /// `EngineConfig` at construction, wide enough for the widest
    /// cluster/shard and no wider.
    #[test]
    fn clustered_scratch_sized_from_config_at_large_m() {
        use agora_phy::ClusterPlan;
        for m in [128usize, 256] {
            for clusters in [1usize, 4, 8, 6] {
                let mut cfg = EngineConfig::new(CellConfig::emulated_rru(m, 16, 2), 2);
                cfg.ablation.clustered_zf = true;
                cfg.antenna_clusters = clusters;
                let k = Kernels::new(cfg);
                assert_eq!(k.zf_clusters(), clusters);
                let s = k.scratch();
                let plan = ClusterPlan::new(m, clusters);
                assert_eq!(s.zf_part_ah.len(), k.geom.k * plan.max_len());
                // Uplink-only direct mode shards the reduce per cluster;
                // staging must cover exactly the distinct shard widths.
                let shards = k.zf_reduce_shards();
                assert_eq!(shards, clusters);
                if shards > 1 {
                    let widths: std::collections::BTreeSet<usize> =
                        (0..shards).map(|i| ClusterPlan::new(m, shards).range(i).len()).collect();
                    let staged: std::collections::BTreeSet<usize> =
                        s.zf_shard.iter().map(|c| c.shape().1).collect();
                    assert_eq!(staged, widths, "m={m} clusters={clusters}");
                    assert!(s.zf_shard.iter().all(|c| c.shape().0 == k.geom.k));
                    assert!(s.zf_shard.len() <= 2, "balanced split has at most two widths");
                } else {
                    assert!(s.zf_shard.is_empty(), "unsharded reduce solves into zf_det");
                }
            }
        }
    }

    /// The fused unpack → bit-reversal gather plus `execute_prereversed`
    /// must be bit-identical to the naive pipeline it replaced: unpack
    /// everything, copy the FFT-sized tail, run the full transform.
    #[test]
    fn fused_unpack_bitrev_matches_naive_pipeline() {
        use agora_fft::FftPlan;
        use agora_phy::iq::{pack_samples, unpack_samples};

        let n = 64;
        let skip = 16; // emulate a cyclic prefix ahead of the window
        let samples: Vec<Cf32> = (0..skip + n)
            .map(|i| {
                let t = i as f32 * 0.37;
                Cf32::new(
                    (t.sin() * 0.4 * 2048.0).round() / 2048.0,
                    (t.cos() * 0.4 * 2048.0).round() / 2048.0,
                )
            })
            .collect();
        let mut payload = Vec::new();
        pack_samples(&samples, &mut payload);

        let plan = FftPlan::new(n);

        // Naive path: unpack all, copy tail, full execute (with its own
        // bit-reversal pass).
        let mut time = Vec::new();
        unpack_samples(&payload, &mut time);
        let mut naive: Vec<Cf32> = time[skip..].to_vec();
        plan.execute(&mut naive, Direction::Forward);

        // Fused path.
        let mut fused = vec![Cf32::ZERO; n];
        unpack_bitrev(&payload, skip, plan.bitrev(), &mut fused);
        plan.execute_prereversed(&mut fused, Direction::Forward);

        for (a, b) in naive.iter().zip(fused.iter()) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }
}
