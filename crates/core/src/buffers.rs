//! Global shared-memory buffers.
//!
//! "Worker threads exchange intermediate results using a set of shared
//! memory buffers. Workers access these buffers without locking" (§3.2).
//! Safety comes from the scheduler, not from locks: the manager only
//! dispatches a task once its inputs are fully written, and tasks within
//! a block write disjoint regions. [`SharedVec`] encodes that contract:
//! an unsafe, lock-free grid whose mutable views the caller promises are
//! disjoint.

use agora_math::Cf32;
use core::cell::UnsafeCell;

/// A heap buffer shared across threads without locking.
///
/// # Safety contract
/// `slice_mut` hands out `&mut` views without synchronisation. Callers
/// (the engine's task bodies) must guarantee that concurrently-outstanding
/// mutable views are disjoint, and that no read of a region races a write
/// — exactly the guarantee Agora's dependency-respecting scheduler
/// provides. All bookkeeping that *establishes* those guarantees lives in
/// the manager thread; queue send/receive edges provide the necessary
/// happens-before ordering (release on task enqueue, acquire on dequeue).
pub struct SharedVec<T> {
    data: UnsafeCell<Box<[T]>>,
}

unsafe impl<T: Send> Send for SharedVec<T> {}
unsafe impl<T: Send> Sync for SharedVec<T> {}

impl<T: Clone> SharedVec<T> {
    /// Allocates `len` elements initialised to `init`.
    pub fn new(len: usize, init: T) -> Self {
        Self { data: UnsafeCell::new(vec![init; len].into_boxed_slice()) }
    }
}

impl<T> SharedVec<T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        unsafe { (&raw const *self.data.get()).as_ref().unwrap().len() }
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Immutable view of a range.
    ///
    /// # Safety
    /// No concurrent mutable view may overlap `range` (scheduler-enforced).
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice(&self, range: core::ops::Range<usize>) -> &[T] {
        let b: &[T] = &*self.data.get();
        &b[range]
    }

    /// Mutable view of a range.
    ///
    /// # Safety
    /// No concurrent view (mutable or immutable) may overlap `range`.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, range: core::ops::Range<usize>) -> &mut [T] {
        let b: &mut Box<[T]> = &mut *self.data.get();
        &mut b[range]
    }

    /// Writes a single element through a raw pointer. Unlike
    /// [`Self::slice_mut`] this never materialises a wide `&mut`, so
    /// concurrent writers to *different* indices within the same logical
    /// region are sound.
    ///
    /// # Safety
    /// No concurrent access (read or write) to index `idx`.
    pub unsafe fn write(&self, idx: usize, value: T) {
        let b: &mut Box<[T]> = &mut *self.data.get();
        let p = b.as_mut_ptr().add(idx);
        core::ptr::write(p, value);
    }

    /// Reads a single element through a raw pointer.
    ///
    /// # Safety
    /// No concurrent write to index `idx`.
    pub unsafe fn read(&self, idx: usize) -> T
    where
        T: Copy,
    {
        let b: &[T] = &*self.data.get();
        let p = b.as_ptr().add(idx);
        core::ptr::read(p)
    }
}

/// All shared buffers for one in-flight frame.
///
/// Layouts (all row-major, sizes derived from the cell config):
/// * `rx_payload[symbol][antenna]` — raw 3-byte IQ payloads as received.
/// * `freq[symbol]` — post-FFT active subcarriers of data symbols. With
///   the cache-friendly layout: `[block][antenna][8 sc]`; with the
///   ablation layout: `[antenna][sc]`.
/// * `csi[sc][antenna][user]` — estimated channel (pilot symbols).
/// * `det[group][user][antenna]`, `pre[group][antenna][user]` — ZF
///   outputs. With iterative equalization `det` holds `H^H` instead of
///   the formed detector.
/// * `gram[group][user][user]` — per-group Gram matrices `H^H H`
///   (written only in iterative equalization mode).
/// * `llr[symbol][user][bit]` — demodulated soft bits.
/// * `decoded[symbol][user][bit]` + `decode_ok[symbol][user]`.
/// * downlink mirrors: `dl_bits`, `dl_freq`, `dl_time`.
pub struct FrameBuffers {
    /// Raw received payload bytes per (symbol, antenna).
    pub rx_payload: SharedVec<u8>,
    /// Frequency-domain samples per data/pilot symbol.
    pub freq: SharedVec<Cf32>,
    /// Channel estimates.
    pub csi: SharedVec<Cf32>,
    /// Uplink detectors.
    pub det: SharedVec<Cf32>,
    /// Downlink precoders.
    pub pre: SharedVec<Cf32>,
    /// Per-group Gram matrices (`K x K`), for the iterative equalizer's
    /// CG solves and Neumann noise estimates.
    pub gram: SharedVec<Cf32>,
    /// Soft demodulator output.
    pub llr: SharedVec<f32>,
    /// Quantised soft demodulator output (fixed-point decoding plane).
    /// Same `[symbol][user][bit]` layout as `llr`; only the plane selected
    /// by `ablation.quantized_decoder` is written per frame.
    pub llr_i8: SharedVec<i8>,
    /// Decoded information bits.
    pub decoded: SharedVec<u8>,
    /// Per-(symbol, user) decode success flags (1 = CRC/syndrome pass).
    pub decode_ok: SharedVec<u8>,
    /// Downlink coded bits per (symbol, user).
    pub dl_bits: SharedVec<u8>,
    /// Downlink frequency-domain antenna samples per symbol.
    pub dl_freq: SharedVec<Cf32>,
    /// Downlink time-domain samples per (symbol, antenna).
    pub dl_time: SharedVec<Cf32>,
    // --- derived strides ---
    payload_per_ant: usize,
    freq_per_symbol: usize,
    mk: usize,
    kk: usize,
    llr_per_user: usize,
    info_bits: usize,
    dl_bits_per_user: usize,
}

/// Index helpers for the frame buffers; all geometry in one place.
#[derive(Debug, Clone, Copy)]
pub struct BufferGeometry {
    /// Antennas.
    pub m: usize,
    /// Users.
    pub k: usize,
    /// Active subcarriers.
    pub q: usize,
    /// Symbols per frame.
    pub symbols: usize,
    /// Time-domain samples per symbol.
    pub samples: usize,
    /// Demod kernel block (8 subcarriers).
    pub block: usize,
    /// ZF group size.
    pub zf_group: usize,
    /// Coded-bit capacity per (symbol, user).
    pub cap_bits: usize,
    /// Information bits per code block.
    pub info_bits: usize,
}

impl FrameBuffers {
    /// Allocates zeroed buffers for one frame slot.
    pub fn new(g: &BufferGeometry) -> Self {
        let payload_per_ant = g.samples * 3;
        let freq_per_symbol = g.q * g.m;
        let groups = g.q.div_ceil(g.zf_group);
        Self {
            rx_payload: SharedVec::new(g.symbols * g.m * payload_per_ant, 0u8),
            freq: SharedVec::new(g.symbols * freq_per_symbol, Cf32::ZERO),
            csi: SharedVec::new(g.q * g.m * g.k, Cf32::ZERO),
            det: SharedVec::new(groups * g.k * g.m, Cf32::ZERO),
            pre: SharedVec::new(groups * g.m * g.k, Cf32::ZERO),
            gram: SharedVec::new(groups * g.k * g.k, Cf32::ZERO),
            llr: SharedVec::new(g.symbols * g.k * g.cap_bits, 0.0f32),
            llr_i8: SharedVec::new(g.symbols * g.k * g.cap_bits, 0i8),
            decoded: SharedVec::new(g.symbols * g.k * g.info_bits, 0u8),
            decode_ok: SharedVec::new(g.symbols * g.k, 0u8),
            dl_bits: SharedVec::new(g.symbols * g.k * g.cap_bits, 0u8),
            dl_freq: SharedVec::new(g.symbols * freq_per_symbol, Cf32::ZERO),
            dl_time: SharedVec::new(g.symbols * g.m * g.samples, Cf32::ZERO),
            payload_per_ant,
            freq_per_symbol,
            mk: g.m * g.k,
            kk: g.k * g.k,
            llr_per_user: g.cap_bits,
            info_bits: g.info_bits,
            dl_bits_per_user: g.cap_bits,
        }
    }

    /// Byte range of one (symbol, antenna) payload.
    pub fn payload_range(
        &self,
        g: &BufferGeometry,
        symbol: usize,
        ant: usize,
    ) -> core::ops::Range<usize> {
        let base = (symbol * g.m + ant) * self.payload_per_ant;
        base..base + self.payload_per_ant
    }

    /// Range of one symbol's frequency-domain data (all antennas).
    pub fn freq_symbol_range(&self, symbol: usize) -> core::ops::Range<usize> {
        let base = symbol * self.freq_per_symbol;
        base..base + self.freq_per_symbol
    }

    /// Offset of `(block, antenna)` within a symbol's frequency data
    /// (cache-friendly layout): `block * M * B + ant * B`.
    pub fn freq_block_offset(&self, g: &BufferGeometry, block: usize, ant: usize) -> usize {
        block * g.m * g.block + ant * g.block
    }

    /// Offset of `(antenna, sc)` within a symbol's frequency data
    /// (ablation layout): `ant * Q + sc`.
    pub fn freq_strided_offset(&self, g: &BufferGeometry, ant: usize, sc: usize) -> usize {
        ant * g.q + sc
    }

    /// Range of one subcarrier's CSI (`M x K` row-major).
    pub fn csi_range(&self, sc: usize) -> core::ops::Range<usize> {
        let base = sc * self.mk;
        base..base + self.mk
    }

    /// Range of one ZF group's detector.
    pub fn det_range(&self, group: usize) -> core::ops::Range<usize> {
        let base = group * self.mk;
        base..base + self.mk
    }

    /// Range of one ZF group's precoder.
    pub fn pre_range(&self, group: usize) -> core::ops::Range<usize> {
        let base = group * self.mk;
        base..base + self.mk
    }

    /// Range of one ZF group's Gram matrix (`K x K` row-major).
    pub fn gram_range(&self, group: usize) -> core::ops::Range<usize> {
        let base = group * self.kk;
        base..base + self.kk
    }

    /// Range of one (symbol, user) LLR block.
    pub fn llr_range(
        &self,
        g: &BufferGeometry,
        symbol: usize,
        user: usize,
    ) -> core::ops::Range<usize> {
        let base = (symbol * g.k + user) * self.llr_per_user;
        base..base + self.llr_per_user
    }

    /// Range of one (symbol, user) decoded block.
    pub fn decoded_range(
        &self,
        g: &BufferGeometry,
        symbol: usize,
        user: usize,
    ) -> core::ops::Range<usize> {
        let base = (symbol * g.k + user) * self.info_bits;
        base..base + self.info_bits
    }

    /// Range of one (symbol, user) downlink coded-bit block.
    pub fn dl_bits_range(
        &self,
        g: &BufferGeometry,
        symbol: usize,
        user: usize,
    ) -> core::ops::Range<usize> {
        let base = (symbol * g.k + user) * self.dl_bits_per_user;
        base..base + self.dl_bits_per_user
    }

    /// Range of one (symbol, antenna) downlink time-domain block.
    pub fn dl_time_range(
        &self,
        g: &BufferGeometry,
        symbol: usize,
        ant: usize,
    ) -> core::ops::Range<usize> {
        let base = (symbol * g.m + ant) * g.samples;
        base..base + g.samples
    }

    /// Combined range of `count` consecutive antennas' downlink
    /// time-domain blocks within one symbol — antennas are adjacent in
    /// this plane, so a batched IFFT task writes all of its outputs
    /// through a single view.
    pub fn dl_time_run_range(
        &self,
        g: &BufferGeometry,
        symbol: usize,
        ant0: usize,
        count: usize,
    ) -> core::ops::Range<usize> {
        debug_assert!(ant0 + count <= g.m, "antenna run exceeds array");
        let base = (symbol * g.m + ant0) * g.samples;
        base..base + count * g.samples
    }
}

/// The window of in-flight frame buffers, indexed by `frame % window`.
pub struct FrameWindow {
    slots: Vec<FrameBuffers>,
    geometry: BufferGeometry,
}

impl FrameWindow {
    /// Allocates `window` frame slots.
    pub fn new(geometry: BufferGeometry, window: usize) -> Self {
        assert!(window >= 2);
        Self { slots: (0..window).map(|_| FrameBuffers::new(&geometry)).collect(), geometry }
    }

    /// The buffer geometry.
    pub fn geometry(&self) -> &BufferGeometry {
        &self.geometry
    }

    /// Number of slots.
    pub fn window(&self) -> usize {
        self.slots.len()
    }

    /// The slot a frame id maps to. The engine must retire frame
    /// `f - window` before frame `f` arrives (enforced by the manager's
    /// flow control).
    pub fn slot(&self, frame: u32) -> &FrameBuffers {
        &self.slots[frame as usize % self.slots.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> BufferGeometry {
        BufferGeometry {
            m: 4,
            k: 2,
            q: 32,
            symbols: 3,
            samples: 64,
            block: 8,
            zf_group: 16,
            cap_bits: 64,
            info_bits: 20,
        }
    }

    #[test]
    fn shared_vec_basic_access() {
        let v = SharedVec::new(10, 7u32);
        assert_eq!(v.len(), 10);
        unsafe {
            let s = v.slice_mut(2..5);
            s[0] = 42;
            assert_eq!(v.slice(0..10)[2], 42);
            assert_eq!(v.slice(0..10)[0], 7);
        }
    }

    #[test]
    fn shared_vec_disjoint_writes_from_threads() {
        let v = std::sync::Arc::new(SharedVec::new(1000, 0u64));
        std::thread::scope(|s| {
            for t in 0..4 {
                let v = v.clone();
                s.spawn(move || {
                    let r = unsafe { v.slice_mut(t * 250..(t + 1) * 250) };
                    for (i, x) in r.iter_mut().enumerate() {
                        *x = (t * 250 + i) as u64;
                    }
                });
            }
        });
        let all = unsafe { v.slice(0..1000) };
        for (i, &x) in all.iter().enumerate() {
            assert_eq!(x, i as u64);
        }
    }

    #[test]
    fn ranges_are_disjoint_across_coordinates() {
        let g = geom();
        let fb = FrameBuffers::new(&g);
        // Payload ranges for different (symbol, antenna) never overlap.
        let mut seen: Vec<core::ops::Range<usize>> = Vec::new();
        for sym in 0..g.symbols {
            for ant in 0..g.m {
                let r = fb.payload_range(&g, sym, ant);
                for s in &seen {
                    assert!(r.end <= s.start || s.end <= r.start, "overlap {r:?} vs {s:?}");
                }
                seen.push(r);
            }
        }
        assert_eq!(seen.last().unwrap().end, fb.rx_payload.len());
    }

    #[test]
    fn llr_ranges_tile_buffer() {
        let g = geom();
        let fb = FrameBuffers::new(&g);
        let mut total = 0;
        for sym in 0..g.symbols {
            for u in 0..g.k {
                total += fb.llr_range(&g, sym, u).len();
            }
        }
        assert_eq!(total, fb.llr.len());
    }

    #[test]
    fn gram_ranges_tile_buffer() {
        let g = geom();
        let fb = FrameBuffers::new(&g);
        let groups = g.q.div_ceil(g.zf_group);
        let mut total = 0;
        for group in 0..groups {
            let r = fb.gram_range(group);
            assert_eq!(r.len(), g.k * g.k);
            total += r.len();
        }
        assert_eq!(total, fb.gram.len());
    }

    #[test]
    fn block_and_strided_offsets_stay_in_symbol() {
        let g = geom();
        let fb = FrameBuffers::new(&g);
        let per_symbol = fb.freq_symbol_range(0).len();
        assert_eq!(per_symbol, g.q * g.m);
        // Last block, last antenna stays in range.
        let blocks = g.q / g.block;
        let off = fb.freq_block_offset(&g, blocks - 1, g.m - 1);
        assert!(off + g.block <= per_symbol);
        let off = fb.freq_strided_offset(&g, g.m - 1, g.q - 1);
        assert!(off < per_symbol);
    }

    #[test]
    fn window_wraps_slots() {
        let w = FrameWindow::new(geom(), 3);
        assert_eq!(w.window(), 3);
        let a = w.slot(0) as *const _;
        let b = w.slot(3) as *const _;
        assert_eq!(a, b, "frame 3 reuses frame 0's slot");
        assert_ne!(w.slot(1) as *const _, a);
    }
}
