//! Global shared-memory buffers.
//!
//! "Worker threads exchange intermediate results using a set of shared
//! memory buffers. Workers access these buffers without locking" (§3.2).
//! Safety comes from the scheduler, not from locks: the manager only
//! dispatches a task once its inputs are fully written, and tasks within
//! a block write disjoint regions. [`SharedVec`] encodes that contract:
//! an unsafe, lock-free grid whose mutable views the caller promises are
//! disjoint.

use agora_fronthaul::{PacketBuf, HEADER_LEN};
use agora_math::Cf32;
use core::cell::UnsafeCell;

/// A heap buffer shared across threads without locking.
///
/// # Safety contract
/// `slice_mut` hands out `&mut` views without synchronisation. Callers
/// (the engine's task bodies) must guarantee that concurrently-outstanding
/// mutable views are disjoint, and that no read of a region races a write
/// — exactly the guarantee Agora's dependency-respecting scheduler
/// provides. All bookkeeping that *establishes* those guarantees lives in
/// the manager thread; queue send/receive edges provide the necessary
/// happens-before ordering (release on task enqueue, acquire on dequeue).
pub struct SharedVec<T> {
    data: UnsafeCell<Box<[T]>>,
}

unsafe impl<T: Send> Send for SharedVec<T> {}
unsafe impl<T: Send> Sync for SharedVec<T> {}

impl<T: Clone> SharedVec<T> {
    /// Allocates `len` elements initialised to `init`.
    pub fn new(len: usize, init: T) -> Self {
        Self { data: UnsafeCell::new(vec![init; len].into_boxed_slice()) }
    }
}

impl<T> SharedVec<T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        unsafe { (&raw const *self.data.get()).as_ref().unwrap().len() }
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Immutable view of a range.
    ///
    /// # Safety
    /// No concurrent mutable view may overlap `range` (scheduler-enforced).
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice(&self, range: core::ops::Range<usize>) -> &[T] {
        let b: &[T] = &*self.data.get();
        &b[range]
    }

    /// Mutable view of a range.
    ///
    /// # Safety
    /// No concurrent view (mutable or immutable) may overlap `range`.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, range: core::ops::Range<usize>) -> &mut [T] {
        let b: &mut Box<[T]> = &mut *self.data.get();
        &mut b[range]
    }

    /// Writes a single element through a raw pointer. Unlike
    /// [`Self::slice_mut`] this never materialises a wide `&mut`, so
    /// concurrent writers to *different* indices within the same logical
    /// region are sound.
    ///
    /// # Safety
    /// No concurrent access (read or write) to index `idx`.
    pub unsafe fn write(&self, idx: usize, value: T) {
        let b: &mut Box<[T]> = &mut *self.data.get();
        let p = b.as_mut_ptr().add(idx);
        core::ptr::write(p, value);
    }

    /// Reads a single element through a raw pointer.
    ///
    /// # Safety
    /// No concurrent write to index `idx`.
    pub unsafe fn read(&self, idx: usize) -> T
    where
        T: Copy,
    {
        let b: &[T] = &*self.data.get();
        let p = b.as_ptr().add(idx);
        core::ptr::read(p)
    }
}

/// Zero-copy packet retention for one in-flight frame: one slot per
/// (symbol, antenna), holding the whole received packet (header +
/// payload) until the frame retires. FFT tasks read the IQ payload as a
/// borrowed view straight out of the receive buffer — pooled or heap —
/// so intake never copies sample bytes.
///
/// # Safety contract
/// Mirrors [`SharedVec`]: synchronisation comes from the engine's
/// scheduler, not from locks. The network thread is the *sole* writer
/// ([`Self::store`] / [`Self::clear_all`]); it only clears a slot table
/// after observing (Acquire on `min_frame`) that the previous occupant
/// frame retired, and only stores into unoccupied entries. Readers
/// ([`Self::payload`]) run strictly after the store that filled the
/// entry, ordered by the task-queue release/acquire edge that dispatched
/// them, and never survive frame retirement.
pub struct PacketSlots {
    slots: UnsafeCell<Box<[Option<PacketBuf>]>>,
}

// SAFETY: see the scheduler contract above — disjoint-entry writes by a
// single writer thread, reads ordered behind the filling store by queue
// edges, clears ordered behind every read by frame retirement.
unsafe impl Send for PacketSlots {}
unsafe impl Sync for PacketSlots {}

impl PacketSlots {
    /// Allocates `n` empty slots.
    pub fn new(n: usize) -> Self {
        Self { slots: UnsafeCell::new((0..n).map(|_| None).collect()) }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        // SAFETY: the length is immutable after construction.
        unsafe { (&*self.slots.get()).len() }
    }

    /// True if the table has no slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when a packet is retained at `idx`. Sound under concurrent
    /// `payload` reads (both are shared reads); the single-writer rule
    /// makes the answer exact for the network thread.
    pub fn occupied(&self, idx: usize) -> bool {
        // SAFETY: shared read; no `&mut` can exist concurrently because
        // writes only target entries no reader (or occupancy probe)
        // touches — unoccupied entries or retired frames.
        unsafe { (*self.slots.get())[idx].is_some() }
    }

    /// Retains `pkt` at `idx`. Storing over an occupied entry drops the
    /// previous packet.
    ///
    /// # Safety
    /// Caller is the sole writer thread and no reader holds a view of
    /// `idx` (no task was dispatched for it, or the caller has exclusive
    /// access to the whole table).
    pub unsafe fn store(&self, idx: usize, pkt: PacketBuf) {
        (*self.slots.get())[idx] = Some(pkt);
    }

    /// Borrowed payload view (bytes after the 64-byte header) of the
    /// packet at `idx`, or `None` when the packet never arrived.
    ///
    /// # Safety
    /// The entry must not be concurrently stored or cleared — guaranteed
    /// for dispatched tasks by the scheduler contract above.
    pub unsafe fn payload(&self, idx: usize) -> Option<&[u8]> {
        (*self.slots.get())[idx].as_ref().map(|p| &p[HEADER_LEN..])
    }

    /// Drops every retained packet (returning pooled buffers to their
    /// pool).
    ///
    /// # Safety
    /// Caller is the sole writer thread and no reader can touch this
    /// table: its frame retired (min_frame advanced past it) or the
    /// engine is quiescent.
    pub unsafe fn clear_all(&self) {
        for slot in (*self.slots.get()).iter_mut() {
            *slot = None;
        }
    }
}

/// All shared buffers for one in-flight frame.
///
/// Layouts (all row-major, sizes derived from the cell config):
/// * `rx_pkts[symbol * M + antenna]` — retained received packets
///   (zero-copy payload views for the FFT stage).
/// * `freq[symbol]` — post-FFT active subcarriers of data symbols. With
///   the cache-friendly layout: `[block][antenna][8 sc]`; with the
///   ablation layout: `[antenna][sc]`.
/// * `csi[sc][antenna][user]` — estimated channel (pilot symbols).
/// * `det[group][user][antenna]`, `pre[group][antenna][user]` — ZF
///   outputs. With iterative equalization `det` holds `H^H` instead of
///   the formed detector.
/// * `gram[group][user][user]` — per-group Gram matrices `H^H H`
///   (written only in iterative equalization mode).
/// * `llr[symbol][user][bit]` — demodulated soft bits.
/// * `decoded[symbol][user][bit]` + `decode_ok[symbol][user]`.
/// * downlink mirrors: `dl_bits`, `dl_freq`, `dl_time`.
pub struct FrameBuffers {
    /// Retained received packets per (symbol, antenna).
    pub rx_pkts: PacketSlots,
    /// Frequency-domain samples per data/pilot symbol.
    pub freq: SharedVec<Cf32>,
    /// Channel estimates.
    pub csi: SharedVec<Cf32>,
    /// Uplink detectors.
    pub det: SharedVec<Cf32>,
    /// Downlink precoders.
    pub pre: SharedVec<Cf32>,
    /// Per-group Gram matrices (`K x K`), for the iterative equalizer's
    /// CG solves and Neumann noise estimates.
    pub gram: SharedVec<Cf32>,
    /// Per-(group, cluster) partial Gram matrices (`K x K`) for the
    /// antenna-cluster partitioned ZF path: cluster `c` publishes
    /// `H_c^H H_c` here, and the reduce task folds the partials in fixed
    /// cluster order. Unused (zero-length stride reuse aside) when
    /// `clusters == 1`.
    pub gram_part: SharedVec<Cf32>,
    /// Soft demodulator output.
    pub llr: SharedVec<f32>,
    /// Quantised soft demodulator output (fixed-point decoding plane).
    /// Same `[symbol][user][bit]` layout as `llr`; only the plane selected
    /// by `ablation.quantized_decoder` is written per frame.
    pub llr_i8: SharedVec<i8>,
    /// Decoded information bits.
    pub decoded: SharedVec<u8>,
    /// Per-(symbol, user) decode success flags (1 = CRC/syndrome pass).
    pub decode_ok: SharedVec<u8>,
    /// Downlink coded bits per (symbol, user).
    pub dl_bits: SharedVec<u8>,
    /// Downlink frequency-domain antenna samples per symbol.
    pub dl_freq: SharedVec<Cf32>,
    /// Downlink time-domain samples per (symbol, antenna).
    pub dl_time: SharedVec<Cf32>,
    // --- derived strides ---
    freq_per_symbol: usize,
    mk: usize,
    kk: usize,
    clusters: usize,
    llr_per_user: usize,
    info_bits: usize,
    dl_bits_per_user: usize,
}

/// Index helpers for the frame buffers; all geometry in one place.
#[derive(Debug, Clone, Copy)]
pub struct BufferGeometry {
    /// Antennas.
    pub m: usize,
    /// Users.
    pub k: usize,
    /// Active subcarriers.
    pub q: usize,
    /// Symbols per frame.
    pub symbols: usize,
    /// Time-domain samples per symbol.
    pub samples: usize,
    /// Demod kernel block (8 subcarriers).
    pub block: usize,
    /// ZF group size.
    pub zf_group: usize,
    /// Antenna clusters for the partitioned-ZF path (1 = monolithic).
    pub clusters: usize,
    /// Coded-bit capacity per (symbol, user).
    pub cap_bits: usize,
    /// Information bits per code block.
    pub info_bits: usize,
}

impl FrameBuffers {
    /// Allocates zeroed buffers for one frame slot.
    pub fn new(g: &BufferGeometry) -> Self {
        let freq_per_symbol = g.q * g.m;
        let groups = g.q.div_ceil(g.zf_group);
        Self {
            rx_pkts: PacketSlots::new(g.symbols * g.m),
            freq: SharedVec::new(g.symbols * freq_per_symbol, Cf32::ZERO),
            csi: SharedVec::new(g.q * g.m * g.k, Cf32::ZERO),
            det: SharedVec::new(groups * g.k * g.m, Cf32::ZERO),
            pre: SharedVec::new(groups * g.m * g.k, Cf32::ZERO),
            gram: SharedVec::new(groups * g.k * g.k, Cf32::ZERO),
            gram_part: SharedVec::new(groups * g.clusters * g.k * g.k, Cf32::ZERO),
            llr: SharedVec::new(g.symbols * g.k * g.cap_bits, 0.0f32),
            llr_i8: SharedVec::new(g.symbols * g.k * g.cap_bits, 0i8),
            decoded: SharedVec::new(g.symbols * g.k * g.info_bits, 0u8),
            decode_ok: SharedVec::new(g.symbols * g.k, 0u8),
            dl_bits: SharedVec::new(g.symbols * g.k * g.cap_bits, 0u8),
            dl_freq: SharedVec::new(g.symbols * freq_per_symbol, Cf32::ZERO),
            dl_time: SharedVec::new(g.symbols * g.m * g.samples, Cf32::ZERO),
            freq_per_symbol,
            mk: g.m * g.k,
            kk: g.k * g.k,
            clusters: g.clusters,
            llr_per_user: g.cap_bits,
            info_bits: g.info_bits,
            dl_bits_per_user: g.cap_bits,
        }
    }

    /// Slot index of one (symbol, antenna) packet in [`Self::rx_pkts`].
    pub fn pkt_index(&self, g: &BufferGeometry, symbol: usize, ant: usize) -> usize {
        symbol * g.m + ant
    }

    /// Borrowed IQ payload of the retained (symbol, antenna) packet.
    ///
    /// # Safety
    /// Same contract as [`PacketSlots::payload`]; additionally the
    /// packet must have been stored (the task was only dispatched after
    /// intake), so the view is always present.
    pub unsafe fn rx_payload_view(&self, g: &BufferGeometry, symbol: usize, ant: usize) -> &[u8] {
        self.rx_pkts
            .payload(self.pkt_index(g, symbol, ant))
            .expect("missing packet for dispatched task")
    }

    /// Range of one symbol's frequency-domain data (all antennas).
    pub fn freq_symbol_range(&self, symbol: usize) -> core::ops::Range<usize> {
        let base = symbol * self.freq_per_symbol;
        base..base + self.freq_per_symbol
    }

    /// Offset of `(block, antenna)` within a symbol's frequency data
    /// (cache-friendly layout): `block * M * B + ant * B`.
    pub fn freq_block_offset(&self, g: &BufferGeometry, block: usize, ant: usize) -> usize {
        block * g.m * g.block + ant * g.block
    }

    /// Offset of `(antenna, sc)` within a symbol's frequency data
    /// (ablation layout): `ant * Q + sc`.
    pub fn freq_strided_offset(&self, g: &BufferGeometry, ant: usize, sc: usize) -> usize {
        ant * g.q + sc
    }

    /// Range of one subcarrier's CSI (`M x K` row-major).
    pub fn csi_range(&self, sc: usize) -> core::ops::Range<usize> {
        let base = sc * self.mk;
        base..base + self.mk
    }

    /// Range of one ZF group's detector.
    pub fn det_range(&self, group: usize) -> core::ops::Range<usize> {
        let base = group * self.mk;
        base..base + self.mk
    }

    /// Range of one ZF group's precoder.
    pub fn pre_range(&self, group: usize) -> core::ops::Range<usize> {
        let base = group * self.mk;
        base..base + self.mk
    }

    /// Range of one ZF group's Gram matrix (`K x K` row-major).
    pub fn gram_range(&self, group: usize) -> core::ops::Range<usize> {
        let base = group * self.kk;
        base..base + self.kk
    }

    /// Range of one (group, cluster) partial Gram matrix (`K x K`
    /// row-major). Clusters of a group are adjacent, so the reduce task
    /// reads all of a group's partials through one contiguous view.
    pub fn gram_part_range(&self, group: usize, cluster: usize) -> core::ops::Range<usize> {
        debug_assert!(cluster < self.clusters, "cluster out of range");
        let base = (group * self.clusters + cluster) * self.kk;
        base..base + self.kk
    }

    /// Combined range of all of a group's partial Grams, in cluster
    /// order — the reduce task's input view.
    pub fn gram_part_group_range(&self, group: usize) -> core::ops::Range<usize> {
        let base = group * self.clusters * self.kk;
        base..base + self.clusters * self.kk
    }

    /// Range of one (symbol, user) LLR block.
    pub fn llr_range(
        &self,
        g: &BufferGeometry,
        symbol: usize,
        user: usize,
    ) -> core::ops::Range<usize> {
        let base = (symbol * g.k + user) * self.llr_per_user;
        base..base + self.llr_per_user
    }

    /// Range of one (symbol, user) decoded block.
    pub fn decoded_range(
        &self,
        g: &BufferGeometry,
        symbol: usize,
        user: usize,
    ) -> core::ops::Range<usize> {
        let base = (symbol * g.k + user) * self.info_bits;
        base..base + self.info_bits
    }

    /// Range of one (symbol, user) downlink coded-bit block.
    pub fn dl_bits_range(
        &self,
        g: &BufferGeometry,
        symbol: usize,
        user: usize,
    ) -> core::ops::Range<usize> {
        let base = (symbol * g.k + user) * self.dl_bits_per_user;
        base..base + self.dl_bits_per_user
    }

    /// Range of one (symbol, antenna) downlink time-domain block.
    pub fn dl_time_range(
        &self,
        g: &BufferGeometry,
        symbol: usize,
        ant: usize,
    ) -> core::ops::Range<usize> {
        let base = (symbol * g.m + ant) * g.samples;
        base..base + g.samples
    }

    /// Combined range of `count` consecutive antennas' downlink
    /// time-domain blocks within one symbol — antennas are adjacent in
    /// this plane, so a batched IFFT task writes all of its outputs
    /// through a single view.
    pub fn dl_time_run_range(
        &self,
        g: &BufferGeometry,
        symbol: usize,
        ant0: usize,
        count: usize,
    ) -> core::ops::Range<usize> {
        debug_assert!(ant0 + count <= g.m, "antenna run exceeds array");
        let base = (symbol * g.m + ant0) * g.samples;
        base..base + count * g.samples
    }
}

/// The window of in-flight frame buffers, indexed by `frame % window`.
pub struct FrameWindow {
    slots: Vec<FrameBuffers>,
    geometry: BufferGeometry,
}

impl FrameWindow {
    /// Allocates `window` frame slots.
    pub fn new(geometry: BufferGeometry, window: usize) -> Self {
        assert!(window >= 2);
        Self { slots: (0..window).map(|_| FrameBuffers::new(&geometry)).collect(), geometry }
    }

    /// The buffer geometry.
    pub fn geometry(&self) -> &BufferGeometry {
        &self.geometry
    }

    /// Number of slots.
    pub fn window(&self) -> usize {
        self.slots.len()
    }

    /// The slot a frame id maps to. The engine must retire frame
    /// `f - window` before frame `f` arrives (enforced by the manager's
    /// flow control).
    pub fn slot(&self, frame: u32) -> &FrameBuffers {
        &self.slots[frame as usize % self.slots.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> BufferGeometry {
        BufferGeometry {
            m: 4,
            k: 2,
            q: 32,
            symbols: 3,
            samples: 64,
            block: 8,
            zf_group: 16,
            clusters: 2,
            cap_bits: 64,
            info_bits: 20,
        }
    }

    #[test]
    fn shared_vec_basic_access() {
        let v = SharedVec::new(10, 7u32);
        assert_eq!(v.len(), 10);
        unsafe {
            let s = v.slice_mut(2..5);
            s[0] = 42;
            assert_eq!(v.slice(0..10)[2], 42);
            assert_eq!(v.slice(0..10)[0], 7);
        }
    }

    #[test]
    fn shared_vec_disjoint_writes_from_threads() {
        let v = std::sync::Arc::new(SharedVec::new(1000, 0u64));
        std::thread::scope(|s| {
            for t in 0..4 {
                let v = v.clone();
                s.spawn(move || {
                    let r = unsafe { v.slice_mut(t * 250..(t + 1) * 250) };
                    for (i, x) in r.iter_mut().enumerate() {
                        *x = (t * 250 + i) as u64;
                    }
                });
            }
        });
        let all = unsafe { v.slice(0..1000) };
        for (i, &x) in all.iter().enumerate() {
            assert_eq!(x, i as u64);
        }
    }

    #[test]
    fn pkt_indices_are_unique_and_tile_the_slot_table() {
        let g = geom();
        let fb = FrameBuffers::new(&g);
        // Slot indices for different (symbol, antenna) never collide and
        // cover the whole table.
        let mut seen = std::collections::BTreeSet::new();
        for sym in 0..g.symbols {
            for ant in 0..g.m {
                assert!(seen.insert(fb.pkt_index(&g, sym, ant)), "index collision");
            }
        }
        assert_eq!(seen.len(), fb.rx_pkts.len());
        assert_eq!(*seen.iter().next_back().unwrap(), fb.rx_pkts.len() - 1);
    }

    #[test]
    fn packet_slots_store_and_view_roundtrip() {
        use agora_fronthaul::{encode, PacketDir, PacketHeader};
        let g = geom();
        let fb = FrameBuffers::new(&g);
        let payload: Vec<u8> = (0..g.samples * 3).map(|i| i as u8).collect();
        let hdr = PacketHeader {
            frame: 7,
            symbol: 1,
            antenna: 2,
            dir: PacketDir::Uplink,
            cell: 3,
            payload_len: payload.len() as u32,
        };
        let idx = fb.pkt_index(&g, 1, 2);
        assert!(!fb.rx_pkts.occupied(idx));
        // SAFETY: single-threaded test — no concurrent access.
        unsafe {
            fb.rx_pkts.store(idx, PacketBuf::Heap(encode(&hdr, &payload)));
            assert!(fb.rx_pkts.occupied(idx));
            assert_eq!(fb.rx_payload_view(&g, 1, 2), &payload[..]);
            assert!(fb.rx_pkts.payload(fb.pkt_index(&g, 0, 0)).is_none());
            fb.rx_pkts.clear_all();
            assert!(!fb.rx_pkts.occupied(idx));
        }
    }

    #[test]
    fn llr_ranges_tile_buffer() {
        let g = geom();
        let fb = FrameBuffers::new(&g);
        let mut total = 0;
        for sym in 0..g.symbols {
            for u in 0..g.k {
                total += fb.llr_range(&g, sym, u).len();
            }
        }
        assert_eq!(total, fb.llr.len());
    }

    #[test]
    fn gram_ranges_tile_buffer() {
        let g = geom();
        let fb = FrameBuffers::new(&g);
        let groups = g.q.div_ceil(g.zf_group);
        let mut total = 0;
        for group in 0..groups {
            let r = fb.gram_range(group);
            assert_eq!(r.len(), g.k * g.k);
            total += r.len();
        }
        assert_eq!(total, fb.gram.len());
    }

    #[test]
    fn gram_part_ranges_tile_buffer() {
        let g = geom();
        let fb = FrameBuffers::new(&g);
        let groups = g.q.div_ceil(g.zf_group);
        // Per-(group, cluster) ranges are disjoint, K x K each, and tile
        // the plane; a group's clusters are adjacent so the group view
        // is exactly their concatenation in cluster order.
        let mut next = 0;
        for group in 0..groups {
            let gr = fb.gram_part_group_range(group);
            assert_eq!(gr.start, next);
            for cluster in 0..g.clusters {
                let r = fb.gram_part_range(group, cluster);
                assert_eq!(r.len(), g.k * g.k);
                assert_eq!(r.start, next, "cluster ranges not adjacent");
                next = r.end;
            }
            assert_eq!(gr.end, next);
        }
        assert_eq!(next, fb.gram_part.len());
    }

    #[test]
    fn block_and_strided_offsets_stay_in_symbol() {
        let g = geom();
        let fb = FrameBuffers::new(&g);
        let per_symbol = fb.freq_symbol_range(0).len();
        assert_eq!(per_symbol, g.q * g.m);
        // Last block, last antenna stays in range.
        let blocks = g.q / g.block;
        let off = fb.freq_block_offset(&g, blocks - 1, g.m - 1);
        assert!(off + g.block <= per_symbol);
        let off = fb.freq_strided_offset(&g, g.m - 1, g.q - 1);
        assert!(off < per_symbol);
    }

    #[test]
    fn window_wraps_slots() {
        let w = FrameWindow::new(geom(), 3);
        assert_eq!(w.window(), 3);
        let a = w.slot(0) as *const _;
        let b = w.slot(3) as *const _;
        assert_eq!(a, b, "frame 3 reuses frame 0's slot");
        assert_ne!(w.slot(1) as *const _, a);
    }
}
