//! Runtime statistics: per-worker, per-task-type busy time and counts.
//!
//! Workers bump relaxed atomics around each task execution; the
//! aggregates feed Table 3 ("time per task", "total time across cores")
//! and the synchronisation-overhead analysis of Figure 11 (total budget
//! minus busy time).

use agora_queue::msg::TaskType;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of distinct task types tracked.
pub const NUM_TASK_TYPES: usize = 7;

/// Maps a compute task type to its stats slot.
pub fn type_index(t: TaskType) -> usize {
    match t {
        TaskType::Fft => 0,
        TaskType::Zf => 1,
        TaskType::Demod => 2,
        TaskType::Decode => 3,
        TaskType::Encode => 4,
        TaskType::Precode => 5,
        TaskType::Ifft => 6,
        _ => panic!("not a compute task type: {t:?}"),
    }
}

/// Human-readable block names in slot order.
pub const TYPE_NAMES: [&str; NUM_TASK_TYPES] =
    ["FFT", "ZF", "Demod", "Decode", "Encode", "Precode", "IFFT"];

/// Shared, lock-free statistics sink.
#[derive(Debug, Default)]
pub struct EngineStats {
    busy_ns: [AtomicU64; NUM_TASK_TYPES],
    tasks: [AtomicU64; NUM_TASK_TYPES],
    messages: [AtomicU64; NUM_TASK_TYPES],
    /// Total busy nanoseconds per worker id (sized at engine start).
    worker_busy_ns: Vec<AtomicU64>,
    /// Packets that never arrived for frames the engine gave up on.
    packets_lost: AtomicU64,
    /// Packets rejected because their frame was already completed,
    /// abandoned, or retired past the flow-control window.
    packets_late: AtomicU64,
    /// Packets rejected because the same (frame, symbol, antenna) was
    /// already received.
    packets_duplicate: AtomicU64,
    /// Frames fully processed to completion.
    frames_completed: AtomicU64,
    /// Frames abandoned (deadline or stall) with partial output.
    frames_dropped: AtomicU64,
    /// Packets rejected at intake as malformed (bad header, out-of-range
    /// symbol/antenna, or wrong payload size for the cell).
    rx_errors: AtomicU64,
    /// Packets addressed to a cell id outside the deployment — dropped at
    /// the demux, never delivered to cell 0 by default.
    packets_misrouted: AtomicU64,
    /// Non-empty receive batches drained by the network thread.
    rx_batches: AtomicU64,
    /// Packets delivered across those batches.
    rx_batch_packets: AtomicU64,
    /// Largest single receive batch observed.
    rx_batch_max: AtomicU64,
    /// Socket-level send errors reported by the fronthaul link.
    link_tx_errors: AtomicU64,
    /// Socket-level receive errors reported by the fronthaul link.
    link_rx_errors: AtomicU64,
    /// `push_task` retry spins per task type (shared queue was full).
    push_retries: [AtomicU64; NUM_TASK_TYPES],
    /// Task messages placed directly into a worker's lane.
    lane_pushes: AtomicU64,
    /// Task messages that overflowed a full lane to the shared queues.
    lane_overflows: AtomicU64,
    /// Deepest lane backlog observed at placement time.
    lane_depth_max: AtomicU64,
    /// Task messages a worker took from another worker's lane.
    steals: AtomicU64,
    /// Steal operations (batches), regardless of size.
    steal_batches: AtomicU64,
    /// Times a worker parked on the idle gate.
    parks: AtomicU64,
    /// Wake signals that found at least one parked worker.
    wakes: AtomicU64,
}

impl EngineStats {
    /// Creates a sink for `num_workers` workers.
    pub fn new(num_workers: usize) -> Self {
        Self {
            worker_busy_ns: (0..num_workers).map(|_| AtomicU64::new(0)).collect(),
            ..Default::default()
        }
    }

    /// Records one executed message: `count` tasks of type `t` taking
    /// `ns` nanoseconds on worker `worker`.
    pub fn record(&self, worker: usize, t: TaskType, count: u64, ns: u64) {
        let i = type_index(t);
        self.busy_ns[i].fetch_add(ns, Ordering::Relaxed);
        self.tasks[i].fetch_add(count, Ordering::Relaxed);
        self.messages[i].fetch_add(1, Ordering::Relaxed);
        if let Some(w) = self.worker_busy_ns.get(worker) {
            w.fetch_add(ns, Ordering::Relaxed);
        }
    }

    /// Cumulative busy nanoseconds for one task type.
    pub fn busy_ns(&self, t: TaskType) -> u64 {
        self.busy_ns[type_index(t)].load(Ordering::Relaxed)
    }

    /// Number of tasks executed for one type.
    pub fn tasks(&self, t: TaskType) -> u64 {
        self.tasks[type_index(t)].load(Ordering::Relaxed)
    }

    /// Number of queue messages processed for one type.
    pub fn messages(&self, t: TaskType) -> u64 {
        self.messages[type_index(t)].load(Ordering::Relaxed)
    }

    /// Mean task duration in microseconds (None if no tasks ran).
    pub fn mean_task_us(&self, t: TaskType) -> Option<f64> {
        let n = self.tasks(t);
        if n == 0 {
            None
        } else {
            Some(self.busy_ns(t) as f64 / n as f64 / 1000.0)
        }
    }

    /// Total busy nanoseconds across all workers and types.
    pub fn total_busy_ns(&self) -> u64 {
        self.busy_ns.iter().map(|a| a.load(Ordering::Relaxed)).sum()
    }

    /// Busy nanoseconds of one worker.
    pub fn worker_busy_ns(&self, worker: usize) -> u64 {
        self.worker_busy_ns.get(worker).map_or(0, |a| a.load(Ordering::Relaxed))
    }

    /// Records `n` packets as lost (frame abandoned before they arrived).
    pub fn add_packets_lost(&self, n: u64) {
        self.packets_lost.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one late packet (frame already completed/abandoned/retired).
    pub fn packet_late(&self) {
        self.packets_late.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one duplicate packet.
    pub fn packet_duplicate(&self) {
        self.packets_duplicate.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one frame processed to completion.
    pub fn frame_completed(&self) {
        self.frames_completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one frame abandoned with partial output.
    pub fn frame_dropped(&self) {
        self.frames_dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Packets that never arrived for abandoned frames.
    pub fn packets_lost(&self) -> u64 {
        self.packets_lost.load(Ordering::Relaxed)
    }

    /// Packets rejected as late.
    pub fn packets_late(&self) -> u64 {
        self.packets_late.load(Ordering::Relaxed)
    }

    /// Packets rejected as duplicates.
    pub fn packets_duplicate(&self) -> u64 {
        self.packets_duplicate.load(Ordering::Relaxed)
    }

    /// Frames processed to completion.
    pub fn frames_completed(&self) -> u64 {
        self.frames_completed.load(Ordering::Relaxed)
    }

    /// Frames abandoned with partial output.
    pub fn frames_dropped(&self) -> u64 {
        self.frames_dropped.load(Ordering::Relaxed)
    }

    /// Records one malformed packet rejected at intake.
    pub fn rx_error(&self) {
        self.rx_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Malformed packets rejected at intake.
    pub fn rx_errors(&self) -> u64 {
        self.rx_errors.load(Ordering::Relaxed)
    }

    /// Records one packet addressed to an unknown cell id.
    pub fn packet_misrouted(&self) {
        self.packets_misrouted.fetch_add(1, Ordering::Relaxed);
    }

    /// Packets addressed to a cell id outside the deployment.
    pub fn packets_misrouted(&self) -> u64 {
        self.packets_misrouted.load(Ordering::Relaxed)
    }

    /// Records one non-empty receive batch of `n` packets.
    pub fn record_rx_batch(&self, n: usize) {
        self.rx_batches.fetch_add(1, Ordering::Relaxed);
        self.rx_batch_packets.fetch_add(n as u64, Ordering::Relaxed);
        self.rx_batch_max.fetch_max(n as u64, Ordering::Relaxed);
    }

    /// Non-empty receive batches drained by the network thread.
    pub fn rx_batches(&self) -> u64 {
        self.rx_batches.load(Ordering::Relaxed)
    }

    /// Packets delivered across all receive batches.
    pub fn rx_batch_packets(&self) -> u64 {
        self.rx_batch_packets.load(Ordering::Relaxed)
    }

    /// Largest single receive batch observed.
    pub fn rx_batch_max(&self) -> u64 {
        self.rx_batch_max.load(Ordering::Relaxed)
    }

    /// Mean packets per non-empty receive batch (None before any batch).
    pub fn mean_rx_batch(&self) -> Option<f64> {
        let b = self.rx_batches();
        if b == 0 {
            None
        } else {
            Some(self.rx_batch_packets() as f64 / b as f64)
        }
    }

    /// Records `n` retry spins while pushing a type-`t` task into a full
    /// shared queue (backpressure that used to be a silent yield loop).
    pub fn add_push_retries(&self, t: TaskType, n: u64) {
        self.push_retries[type_index(t)].fetch_add(n, Ordering::Relaxed);
    }

    /// Retry spins recorded for one task type.
    pub fn push_retries(&self, t: TaskType) -> u64 {
        self.push_retries[type_index(t)].load(Ordering::Relaxed)
    }

    /// Retry spins summed over all task types.
    pub fn total_push_retries(&self) -> u64 {
        self.push_retries.iter().map(|a| a.load(Ordering::Relaxed)).sum()
    }

    /// Records `n` tasks placed into a worker lane whose backlog was
    /// `depth` before the push.
    pub fn record_lane_push(&self, n: u64, depth: usize) {
        self.lane_pushes.fetch_add(n, Ordering::Relaxed);
        self.lane_depth_max.fetch_max(depth as u64, Ordering::Relaxed);
    }

    /// Records `n` tasks that overflowed a full lane to the shared queues.
    pub fn add_lane_overflows(&self, n: u64) {
        self.lane_overflows.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one steal of `n` tasks from another worker's lane.
    pub fn record_steal(&self, n: u64) {
        self.steals.fetch_add(n, Ordering::Relaxed);
        self.steal_batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one park on the idle gate.
    pub fn park(&self) {
        self.parks.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one wake that found parked workers.
    pub fn wake(&self) {
        self.wakes.fetch_add(1, Ordering::Relaxed);
    }

    /// Tasks placed directly into worker lanes.
    pub fn lane_pushes(&self) -> u64 {
        self.lane_pushes.load(Ordering::Relaxed)
    }

    /// Tasks that overflowed full lanes to the shared queues.
    pub fn lane_overflows(&self) -> u64 {
        self.lane_overflows.load(Ordering::Relaxed)
    }

    /// Deepest lane backlog observed at placement time.
    pub fn lane_depth_max(&self) -> u64 {
        self.lane_depth_max.load(Ordering::Relaxed)
    }

    /// Tasks taken from other workers' lanes.
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Steal operations (batches).
    pub fn steal_batches(&self) -> u64 {
        self.steal_batches.load(Ordering::Relaxed)
    }

    /// Parks on the idle gate.
    pub fn parks(&self) -> u64 {
        self.parks.load(Ordering::Relaxed)
    }

    /// Wakes that found parked workers.
    pub fn wakes(&self) -> u64 {
        self.wakes.load(Ordering::Relaxed)
    }

    /// Publishes the fronthaul link's cumulative socket error counters.
    pub fn set_link_errors(&self, tx: u64, rx: u64) {
        self.link_tx_errors.store(tx, Ordering::Relaxed);
        self.link_rx_errors.store(rx, Ordering::Relaxed);
    }

    /// Socket-level (tx, rx) error counts from the fronthaul link.
    pub fn link_errors(&self) -> (u64, u64) {
        (self.link_tx_errors.load(Ordering::Relaxed), self.link_rx_errors.load(Ordering::Relaxed))
    }

    /// Accumulates `other`'s counters into `self`, so per-cell stats
    /// roll up into one sink without hand-summing every counter.
    /// Additive counters add; `rx_batch_max` takes the max; link error
    /// gauges add (each cell reports its own link's cumulative counts).
    /// Per-worker busy time adds by worker id — deployments size every
    /// cell's sink to the global pool, so ids line up.
    pub fn merge(&self, other: &EngineStats) {
        for i in 0..NUM_TASK_TYPES {
            self.busy_ns[i].fetch_add(other.busy_ns[i].load(Ordering::Relaxed), Ordering::Relaxed);
            self.tasks[i].fetch_add(other.tasks[i].load(Ordering::Relaxed), Ordering::Relaxed);
            self.messages[i]
                .fetch_add(other.messages[i].load(Ordering::Relaxed), Ordering::Relaxed);
        }
        for (w, o) in self.worker_busy_ns.iter().zip(&other.worker_busy_ns) {
            w.fetch_add(o.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.packets_lost.fetch_add(other.packets_lost(), Ordering::Relaxed);
        self.packets_late.fetch_add(other.packets_late(), Ordering::Relaxed);
        self.packets_duplicate.fetch_add(other.packets_duplicate(), Ordering::Relaxed);
        self.frames_completed.fetch_add(other.frames_completed(), Ordering::Relaxed);
        self.frames_dropped.fetch_add(other.frames_dropped(), Ordering::Relaxed);
        self.rx_errors.fetch_add(other.rx_errors(), Ordering::Relaxed);
        self.packets_misrouted.fetch_add(other.packets_misrouted(), Ordering::Relaxed);
        self.rx_batches.fetch_add(other.rx_batches(), Ordering::Relaxed);
        self.rx_batch_packets.fetch_add(other.rx_batch_packets(), Ordering::Relaxed);
        self.rx_batch_max.fetch_max(other.rx_batch_max(), Ordering::Relaxed);
        let (tx, rx) = other.link_errors();
        self.link_tx_errors.fetch_add(tx, Ordering::Relaxed);
        self.link_rx_errors.fetch_add(rx, Ordering::Relaxed);
        for i in 0..NUM_TASK_TYPES {
            self.push_retries[i]
                .fetch_add(other.push_retries[i].load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.lane_pushes.fetch_add(other.lane_pushes(), Ordering::Relaxed);
        self.lane_overflows.fetch_add(other.lane_overflows(), Ordering::Relaxed);
        self.lane_depth_max.fetch_max(other.lane_depth_max(), Ordering::Relaxed);
        self.steals.fetch_add(other.steals(), Ordering::Relaxed);
        self.steal_batches.fetch_add(other.steal_batches(), Ordering::Relaxed);
        self.parks.fetch_add(other.parks(), Ordering::Relaxed);
        self.wakes.fetch_add(other.wakes(), Ordering::Relaxed);
    }

    /// One-paragraph human-readable summary: frame ledger, packet
    /// ledger, and the busiest task blocks. Complements [`Self::table`]
    /// (which is per-block timing only).
    pub fn summary(&self) -> String {
        let mut out = format!(
            "frames: {} completed, {} dropped | packets: {} lost, {} late, {} dup, {} rx-err, {} misrouted\n",
            self.frames_completed(),
            self.frames_dropped(),
            self.packets_lost(),
            self.packets_late(),
            self.packets_duplicate(),
            self.rx_errors(),
            self.packets_misrouted(),
        );
        if let Some(mean) = self.mean_rx_batch() {
            out.push_str(&format!(
                "rx: {} batches, {} packets (mean {:.1}/batch, max {})\n",
                self.rx_batches(),
                self.rx_batch_packets(),
                mean,
                self.rx_batch_max(),
            ));
        }
        let (tx_e, rx_e) = self.link_errors();
        if tx_e + rx_e > 0 {
            out.push_str(&format!("link errors: {tx_e} tx, {rx_e} rx\n"));
        }
        if self.lane_pushes() + self.lane_overflows() + self.steals() + self.parks() > 0 {
            out.push_str(&format!(
                "sched: {} lane pushes (max depth {}), {} overflows, {} stolen in {} steals, {} parks, {} wakes\n",
                self.lane_pushes(),
                self.lane_depth_max(),
                self.lane_overflows(),
                self.steals(),
                self.steal_batches(),
                self.parks(),
                self.wakes(),
            ));
        }
        let retries = self.total_push_retries();
        if retries > 0 {
            let parts: Vec<String> = (0..NUM_TASK_TYPES)
                .filter_map(|i| {
                    let n = self.push_retries[i].load(Ordering::Relaxed);
                    (n > 0).then(|| format!("{} {}", TYPE_NAMES[i], n))
                })
                .collect();
            out.push_str(&format!("queue-full retries: {retries} ({})\n", parts.join(", ")));
        }
        let mut blocks: Vec<(usize, u64)> = (0..NUM_TASK_TYPES)
            .map(|i| (i, self.busy_ns[i].load(Ordering::Relaxed)))
            .filter(|&(_, ns)| ns > 0)
            .collect();
        blocks.sort_by_key(|&(_, ns)| std::cmp::Reverse(ns));
        if !blocks.is_empty() {
            out.push_str("busy: ");
            let parts: Vec<String> = blocks
                .iter()
                .map(|&(i, ns)| format!("{} {:.2}ms", TYPE_NAMES[i], ns as f64 / 1e6))
                .collect();
            out.push_str(&parts.join(", "));
            out.push('\n');
        }
        out
    }

    /// Formats a Table 3-style summary.
    pub fn table(&self) -> String {
        let mut out = String::from("block     tasks    msgs     time/task(us)  total(ms)\n");
        for (i, name) in TYPE_NAMES.iter().enumerate() {
            let tasks = self.tasks[i].load(Ordering::Relaxed);
            if tasks == 0 {
                continue;
            }
            let msgs = self.messages[i].load(Ordering::Relaxed);
            let busy = self.busy_ns[i].load(Ordering::Relaxed);
            out.push_str(&format!(
                "{:<9} {:<8} {:<8} {:<14.2} {:.3}\n",
                name,
                tasks,
                msgs,
                busy as f64 / tasks as f64 / 1000.0,
                busy as f64 / 1e6,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_read_back() {
        let s = EngineStats::new(2);
        s.record(0, TaskType::Fft, 2, 5000);
        s.record(1, TaskType::Fft, 2, 7000);
        s.record(0, TaskType::Decode, 1, 40_000);
        assert_eq!(s.tasks(TaskType::Fft), 4);
        assert_eq!(s.messages(TaskType::Fft), 2);
        assert_eq!(s.busy_ns(TaskType::Fft), 12_000);
        assert_eq!(s.mean_task_us(TaskType::Fft), Some(3.0));
        assert_eq!(s.total_busy_ns(), 52_000);
        assert_eq!(s.worker_busy_ns(0), 45_000);
        assert_eq!(s.worker_busy_ns(1), 7_000);
    }

    #[test]
    fn empty_types_report_none() {
        let s = EngineStats::new(1);
        assert_eq!(s.mean_task_us(TaskType::Zf), None);
    }

    #[test]
    fn table_lists_active_blocks_only() {
        let s = EngineStats::new(1);
        s.record(0, TaskType::Demod, 64, 12_000);
        let t = s.table();
        assert!(t.contains("Demod"));
        assert!(!t.contains("IFFT"));
    }

    #[test]
    #[should_panic(expected = "not a compute task")]
    fn non_compute_type_panics() {
        type_index(TaskType::Complete);
    }

    #[test]
    fn fault_counters_accumulate() {
        let s = EngineStats::new(1);
        s.add_packets_lost(3);
        s.add_packets_lost(2);
        s.packet_late();
        s.packet_duplicate();
        s.packet_duplicate();
        s.frame_completed();
        s.frame_dropped();
        assert_eq!(s.packets_lost(), 5);
        assert_eq!(s.packets_late(), 1);
        assert_eq!(s.packets_duplicate(), 2);
        assert_eq!(s.frames_completed(), 1);
        assert_eq!(s.frames_dropped(), 1);
    }

    #[test]
    fn merge_rolls_up_counters() {
        let a = EngineStats::new(2);
        a.record(0, TaskType::Fft, 2, 5000);
        a.frame_completed();
        a.add_packets_lost(3);
        a.record_rx_batch(8);
        a.set_link_errors(1, 0);
        let b = EngineStats::new(2);
        b.record(1, TaskType::Fft, 1, 2000);
        b.record(1, TaskType::Zf, 1, 9000);
        b.frame_completed();
        b.frame_dropped();
        b.packet_misrouted();
        b.record_rx_batch(32);
        b.set_link_errors(0, 4);

        let total = EngineStats::new(2);
        total.merge(&a);
        total.merge(&b);
        assert_eq!(total.tasks(TaskType::Fft), 3);
        assert_eq!(total.busy_ns(TaskType::Fft), 7000);
        assert_eq!(total.tasks(TaskType::Zf), 1);
        assert_eq!(total.worker_busy_ns(0), 5000);
        assert_eq!(total.worker_busy_ns(1), 11_000);
        assert_eq!(total.frames_completed(), 2);
        assert_eq!(total.frames_dropped(), 1);
        assert_eq!(total.packets_lost(), 3);
        assert_eq!(total.packets_misrouted(), 1);
        assert_eq!(total.rx_batches(), 2);
        assert_eq!(total.rx_batch_packets(), 40);
        assert_eq!(total.rx_batch_max(), 32);
        assert_eq!(total.link_errors(), (1, 4));
    }

    #[test]
    fn summary_reports_ledgers_and_busiest_blocks() {
        let s = EngineStats::new(1);
        s.frame_completed();
        s.packet_misrouted();
        s.record(0, TaskType::Decode, 4, 80_000);
        s.record(0, TaskType::Fft, 4, 10_000);
        let text = s.summary();
        assert!(text.contains("1 completed"));
        assert!(text.contains("1 misrouted"));
        // Busiest block listed first.
        let decode_at = text.find("Decode").unwrap();
        let fft_at = text.find("FFT").unwrap();
        assert!(decode_at < fft_at, "blocks sorted by busy time:\n{text}");
    }

    #[test]
    fn sched_counters_record_merge_and_surface() {
        let a = EngineStats::new(1);
        a.add_push_retries(TaskType::Decode, 7);
        a.record_lane_push(4, 9);
        a.add_lane_overflows(2);
        a.record_steal(3);
        a.park();
        a.wake();
        let b = EngineStats::new(1);
        b.add_push_retries(TaskType::Decode, 1);
        b.add_push_retries(TaskType::Fft, 2);
        b.record_lane_push(6, 5);
        b.record_steal(1);
        b.park();

        let total = EngineStats::new(1);
        total.merge(&a);
        total.merge(&b);
        assert_eq!(total.push_retries(TaskType::Decode), 8);
        assert_eq!(total.total_push_retries(), 10);
        assert_eq!(total.lane_pushes(), 10);
        assert_eq!(total.lane_overflows(), 2);
        assert_eq!(total.lane_depth_max(), 9);
        assert_eq!(total.steals(), 4);
        assert_eq!(total.steal_batches(), 2);
        assert_eq!(total.parks(), 2);
        assert_eq!(total.wakes(), 1);
        let text = total.summary();
        assert!(text.contains("10 lane pushes"), "{text}");
        assert!(text.contains("queue-full retries: 10"), "{text}");
        assert!(text.contains("Decode 8"), "{text}");
    }

    #[test]
    fn rx_batch_and_link_counters() {
        let s = EngineStats::new(1);
        assert_eq!(s.mean_rx_batch(), None);
        s.record_rx_batch(4);
        s.record_rx_batch(32);
        s.record_rx_batch(12);
        assert_eq!(s.rx_batches(), 3);
        assert_eq!(s.rx_batch_packets(), 48);
        assert_eq!(s.rx_batch_max(), 32);
        assert_eq!(s.mean_rx_batch(), Some(16.0));
        s.rx_error();
        assert_eq!(s.rx_errors(), 1);
        s.set_link_errors(2, 5);
        assert_eq!(s.link_errors(), (2, 5));
    }
}
