//! Core allocation for the pipeline-parallel variant (§5.4).
//!
//! In the BigStation-style design every block owns a fixed, dedicated
//! group of cores, so someone must decide the group sizes. The paper
//! uses "a combination of empirical data and mathematical analysis to
//! find the allocation of cores to blocks that minimizes the frame
//! latency", constrained by "each block must get enough cores to finish
//! within a frame's time budget". That is exactly what [`allocate`]
//! does: start from the per-block minimum `ceil(work / frame_time)`,
//! then hand out the remaining cores to whichever block currently has
//! the longest per-core completion time.

use agora_queue::TaskType;

/// Measured (or simulated) per-frame work for one block.
#[derive(Debug, Clone, Copy)]
pub struct BlockWork {
    /// The block's task type.
    pub task: TaskType,
    /// Total compute time for all of the block's tasks in one frame, in
    /// nanoseconds (cumulated over tasks, not wall clock).
    pub total_ns: u64,
    /// Number of parallel tasks in the block per frame — an upper bound
    /// on how many cores the block can use at once.
    pub max_parallelism: usize,
}

/// Allocation failure reasons.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// Even one core per block doesn't fit: need at least `needed`
    /// workers to sustain the frame rate.
    NotEnoughCores {
        /// Minimum worker count that satisfies the rate constraint.
        needed: usize,
    },
}

impl core::fmt::Display for AllocError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AllocError::NotEnoughCores { needed } => {
                write!(f, "pipeline allocation needs at least {needed} cores")
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// One share of work competing for the core budget — a task block inside
/// a cell (the §5.4 pipeline variant) or a whole cell inside a server
/// (the deployment supervisor). The solver is the same either way.
#[derive(Debug, Clone, Copy)]
pub struct ShareWork {
    /// Total compute time per frame (or epoch), in nanoseconds.
    pub total_ns: u64,
    /// Upper bound on how many cores this share can use at once.
    pub max_parallelism: usize,
}

/// Computes a cores-per-share allocation — the generalized §5.4 solver.
///
/// Returns `cores[i]` aligned with `work[i]`. Every share gets at least
/// `max(min_cores, ceil(total_ns / frame_ns))` cores (the keep-up
/// constraint); remaining cores go to the share with the largest
/// `total_ns / cores` (the latency-minimising greedy step), capped by
/// the share's parallelism.
pub fn allocate_weighted(
    work: &[ShareWork],
    num_workers: usize,
    frame_ns: u64,
    min_cores: usize,
) -> Result<Vec<usize>, AllocError> {
    assert!(frame_ns > 0);
    assert!(min_cores > 0);
    let mut cores: Vec<usize> =
        work.iter().map(|w| (w.total_ns.div_ceil(frame_ns) as usize).max(min_cores)).collect();
    let needed: usize = cores.iter().sum();
    if needed > num_workers {
        return Err(AllocError::NotEnoughCores { needed });
    }
    let mut spare = num_workers - needed;
    while spare > 0 {
        // Give the next core to the share with the worst per-core time
        // that can still use another core.
        let candidate =
            (0..work.len()).filter(|&i| cores[i] < work[i].max_parallelism).max_by(|&a, &b| {
                let ta = work[a].total_ns as f64 / cores[a] as f64;
                let tb = work[b].total_ns as f64 / cores[b] as f64;
                ta.partial_cmp(&tb).unwrap()
            });
        match candidate {
            Some(i) => cores[i] += 1,
            None => break, // every share saturated its parallelism
        }
        spare -= 1;
    }
    Ok(cores)
}

/// Computes a static cores-per-block allocation for the pipeline
/// variant. Thin wrapper over [`allocate_weighted`] with a one-core
/// floor per block.
pub fn allocate_cores(
    blocks: &[BlockWork],
    num_workers: usize,
    frame_ns: u64,
) -> Result<Vec<usize>, AllocError> {
    let work: Vec<ShareWork> = blocks
        .iter()
        .map(|b| ShareWork { total_ns: b.total_ns, max_parallelism: b.max_parallelism })
        .collect();
    allocate_weighted(&work, num_workers, frame_ns, 1)
}

/// Expands a cores-per-block allocation into per-worker task-type lists
/// for [`crate::engine::WorkerPolicy::PipelineParallel`]. Workers beyond
/// the allocated total (if any) poll every type as overflow helpers.
pub fn worker_assignments(
    blocks: &[BlockWork],
    cores: &[usize],
    num_workers: usize,
) -> Vec<Vec<TaskType>> {
    assert_eq!(blocks.len(), cores.len());
    let mut out = Vec::with_capacity(num_workers);
    for (b, &c) in blocks.iter().zip(cores.iter()) {
        for _ in 0..c {
            out.push(vec![b.task]);
        }
    }
    while out.len() < num_workers {
        out.push(blocks.iter().map(|b| b.task).collect());
    }
    out.truncate(num_workers);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn blocks() -> Vec<BlockWork> {
        vec![
            BlockWork { task: TaskType::Fft, total_ns: 2_450_000, max_parallelism: 896 },
            BlockWork { task: TaskType::Zf, total_ns: 1_590_000, max_parallelism: 75 },
            BlockWork { task: TaskType::Demod, total_ns: 2_920_000, max_parallelism: 15_600 },
            BlockWork { task: TaskType::Decode, total_ns: 9_670_000, max_parallelism: 208 },
        ]
    }

    #[test]
    fn paper_uplink_minimum_cores() {
        // With the paper's Table 3 totals and a 1 ms frame, the rate
        // constraint alone needs 3 + 2 + 3 + 10 = 18 cores.
        let cores = allocate_cores(&blocks(), 26, 1_000_000).unwrap();
        assert_eq!(cores.len(), 4);
        assert!(cores[0] >= 3 && cores[1] >= 2 && cores[2] >= 3 && cores[3] >= 10);
        assert_eq!(cores.iter().sum::<usize>(), 26);
        // Decode, the heaviest block, receives the most cores.
        assert!(cores[3] >= *cores.iter().max().unwrap() - 1);
    }

    #[test]
    fn fails_when_rate_unsustainable() {
        let err = allocate_cores(&blocks(), 10, 1_000_000).unwrap_err();
        match err {
            AllocError::NotEnoughCores { needed } => assert!(needed > 10),
        }
    }

    #[test]
    fn spare_cores_go_to_slowest_block() {
        let b = vec![
            BlockWork { task: TaskType::Fft, total_ns: 100, max_parallelism: 100 },
            BlockWork { task: TaskType::Decode, total_ns: 10_000, max_parallelism: 100 },
        ];
        let cores = allocate_cores(&b, 10, 1_000_000).unwrap();
        assert_eq!(cores.iter().sum::<usize>(), 10);
        assert!(cores[1] > cores[0], "decode must dominate: {cores:?}");
    }

    #[test]
    fn parallelism_caps_respected() {
        let b = vec![
            BlockWork { task: TaskType::Zf, total_ns: 10_000, max_parallelism: 2 },
            BlockWork { task: TaskType::Decode, total_ns: 10_000, max_parallelism: 3 },
        ];
        let cores = allocate_cores(&b, 16, 1_000_000).unwrap();
        assert!(cores[0] <= 2 && cores[1] <= 3, "{cores:?}");
    }

    #[test]
    fn all_blocks_saturated_leaves_spare_cores_unassigned() {
        // Every block capped at its parallelism with cores to spare: the
        // greedy loop must stop at the caps, not spin or overassign.
        let b = vec![
            BlockWork { task: TaskType::Fft, total_ns: 5_000, max_parallelism: 2 },
            BlockWork { task: TaskType::Zf, total_ns: 7_000, max_parallelism: 1 },
            BlockWork { task: TaskType::Decode, total_ns: 9_000, max_parallelism: 3 },
        ];
        let cores = allocate_cores(&b, 32, 1_000_000).unwrap();
        assert_eq!(cores, vec![2, 1, 3]);
        assert_eq!(cores.iter().sum::<usize>(), 6, "26 spare cores stay unassigned");
    }

    #[test]
    fn single_block_gets_everything_up_to_its_cap() {
        let b = vec![BlockWork { task: TaskType::Decode, total_ns: 50_000, max_parallelism: 64 }];
        // Cap above the worker count: the block takes the whole budget.
        assert_eq!(allocate_cores(&b, 8, 1_000_000).unwrap(), vec![8]);
        // Cap below the worker count: the block stops at the cap.
        let b = vec![BlockWork { task: TaskType::Decode, total_ns: 50_000, max_parallelism: 5 }];
        assert_eq!(allocate_cores(&b, 8, 1_000_000).unwrap(), vec![5]);
        // Rate-constrained minimum still applies with one block.
        let b =
            vec![BlockWork { task: TaskType::Decode, total_ns: 3_500_000, max_parallelism: 64 }];
        let cores = allocate_cores(&b, 8, 1_000_000).unwrap();
        assert!(cores[0] >= 4, "keep-up needs ceil(3.5) = 4 cores: {cores:?}");
    }

    #[test]
    fn weighted_minimum_floor_applies_per_share() {
        let work = vec![
            ShareWork { total_ns: 0, max_parallelism: 8 },
            ShareWork { total_ns: 1_000, max_parallelism: 8 },
        ];
        // min_cores = 2: even the idle share keeps two cores.
        let cores = allocate_weighted(&work, 8, u64::MAX, 2).unwrap();
        assert!(cores[0] >= 2 && cores[1] >= 2, "{cores:?}");
        assert_eq!(cores.iter().sum::<usize>(), 8);
        // Budget below the floors is an error naming the true need.
        let err = allocate_weighted(&work, 3, u64::MAX, 2).unwrap_err();
        assert_eq!(err, AllocError::NotEnoughCores { needed: 4 });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Keep-up constraint: wherever the parallelism cap allows it,
        /// every returned allocation satisfies `total_ns / cores <=
        /// frame_ns` — i.e. `cores >= ceil(total_ns / frame_ns)`.
        #[test]
        fn keep_up_constraint_holds(
            n_blocks in 1usize..6,
            seed in 0u64..4096,
            frame_ns in 100_000u64..2_000_000,
            extra in 0usize..24,
        ) {
            let mut s = seed;
            let mut next = || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                s >> 33
            };
            let blocks: Vec<BlockWork> = (0..n_blocks)
                .map(|_| BlockWork {
                    task: TaskType::Decode,
                    total_ns: next() % 10_000_000,
                    max_parallelism: 1 + (next() % 32) as usize,
                })
                .collect();
            let minimum: usize = blocks
                .iter()
                .map(|b| b.total_ns.div_ceil(frame_ns).max(1) as usize)
                .sum();
            let num_workers = minimum + extra;
            let cores = allocate_cores(&blocks, num_workers, frame_ns).unwrap();
            prop_assert_eq!(cores.len(), blocks.len());
            let mut assigned = 0usize;
            for (b, &c) in blocks.iter().zip(&cores) {
                let need = b.total_ns.div_ceil(frame_ns).max(1) as usize;
                prop_assert!(
                    c >= need,
                    "block needs {} cores for keep-up, got {} (frame {} ns, work {} ns)",
                    need, c, frame_ns, b.total_ns
                );
                assigned += c;
            }
            prop_assert!(assigned <= num_workers, "over-assigned: {} > {}", assigned, num_workers);
        }
    }

    #[test]
    fn assignments_cover_all_workers() {
        let b = blocks();
        let cores = allocate_cores(&b, 26, 1_000_000).unwrap();
        let assign = worker_assignments(&b, &cores, 26);
        assert_eq!(assign.len(), 26);
        // First worker does FFT only; some worker does Decode only.
        assert_eq!(assign[0], vec![TaskType::Fft]);
        assert!(assign.iter().any(|a| a == &vec![TaskType::Decode]));
    }

    #[test]
    fn overflow_workers_poll_everything() {
        let b = vec![BlockWork { task: TaskType::Fft, total_ns: 100, max_parallelism: 1 }];
        let cores = allocate_cores(&b, 3, 1_000).unwrap();
        let assign = worker_assignments(&b, &cores, 3);
        assert_eq!(assign.len(), 3);
        assert_eq!(assign[0], vec![TaskType::Fft]);
        // Helpers poll the full list (here just Fft again).
        assert_eq!(assign[2], vec![TaskType::Fft]);
    }
}
