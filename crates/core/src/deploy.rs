//! Multi-cell deployment: C independent cell engines on one shared
//! worker-core budget.
//!
//! The paper's engine serves one `M × K` cell; a production site serves
//! many from the same server. A [`Deployment`] instantiates one
//! [`CellCore`](crate::engine) per cell — its own frame window, task
//! queues, stats and flow-control watermark, so cells never share frame
//! state — and spawns a single pool of workers. Each worker is *assigned*
//! to one cell at a time (an atomic it re-reads every poll) and executes
//! only that cell's queues, giving strict per-cell buffer ownership: a
//! worker finishes its current task before an assignment change takes
//! effect, and task/completion queue edges order all buffer access.
//!
//! A [`Supervisor`] generalizes the §5.4 core-allocation solver from
//! task-groups-within-a-cell to cells-within-a-server: each epoch it
//! samples per-cell busy time from [`EngineStats`], solves for the
//! load-proportional core split, and migrates at most a few workers
//! toward overloaded cells — gated by hysteresis so balanced loads never
//! thrash. Epochs are counted in completed frames, not wall-clock time,
//! so supervised runs are reproducible in tests.
//!
//! One fronthaul socket feeds all cells: the network thread drains
//! `recv_batch` and routes each packet by its header cell byte via
//! [`CellDemux`]. Packets naming a cell outside the deployment are
//! counted (`packets_misrouted`) and dropped — never delivered to cell 0.

use crate::alloc::{allocate_weighted, ShareWork};
use crate::config::EngineConfig;
use crate::engine::{
    execute, has_work, pin_thread, CellCore, FrameResult, PinRole, PRIORITY, WORKER_BATCH,
};
use crate::kernels::WorkerScratch;
use crate::stats::EngineStats;
use agora_fronthaul::demux::{CellDemux, Route};
use agora_fronthaul::{Fronthaul, PacketBuf};
use agora_queue::{IdleAction, IdleBackoff, Msg};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Supervisor policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct SupervisorConfig {
    /// Frames (summed across cells) per reallocation epoch.
    pub epoch_frames: u64,
    /// A worker migrates only when the receiving cell's per-core load
    /// exceeds the donor's by this fraction (0.25 = 25%). Keeps balanced
    /// deployments from thrashing cores back and forth.
    pub hysteresis: f64,
    /// Upper bound on worker migrations per epoch (gradual rebalancing).
    pub max_moves_per_epoch: usize,
    /// Every cell keeps at least this many workers, no matter how idle.
    pub min_cores_per_cell: usize,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self { epoch_frames: 4, hysteresis: 0.25, max_moves_per_epoch: 1, min_cores_per_cell: 1 }
    }
}

/// The cells-over-shared-cores core reallocator: the §5.4 solver with
/// cells as the competing shares, plus hysteresis-gated migration.
///
/// Pure state machine — [`Supervisor::step`] maps a per-cell busy-time
/// sample to the next allocation with no clocks or randomness, so tests
/// drive it deterministically.
#[derive(Debug)]
pub struct Supervisor {
    cfg: SupervisorConfig,
    alloc: Vec<usize>,
    epochs: u64,
    migrations: u64,
}

impl Supervisor {
    /// Even initial split of `total_cores` over `num_cells` (remainder
    /// to the lowest cell ids).
    ///
    /// # Panics
    /// If the budget cannot give every cell its configured minimum.
    pub fn new(num_cells: usize, total_cores: usize, cfg: SupervisorConfig) -> Self {
        assert!(num_cells > 0, "a deployment has at least one cell");
        assert!(cfg.min_cores_per_cell > 0, "cells need at least one core");
        assert!(
            total_cores >= num_cells * cfg.min_cores_per_cell,
            "core budget {total_cores} below {num_cells} cells x {} minimum",
            cfg.min_cores_per_cell
        );
        let base = total_cores / num_cells;
        let rem = total_cores % num_cells;
        let alloc = (0..num_cells).map(|c| base + usize::from(c < rem)).collect();
        Self { cfg, alloc, epochs: 0, migrations: 0 }
    }

    /// Current cores-per-cell allocation.
    pub fn allocation(&self) -> &[usize] {
        &self.alloc
    }

    /// Total workers migrated since start.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Epochs stepped since start.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// One reallocation epoch: `busy_ns[c]` is cell `c`'s busy time over
    /// the elapsed epoch. Returns the (possibly updated) allocation.
    ///
    /// The target split comes from [`allocate_weighted`] — the same
    /// greedy latency-minimiser the pipeline variant uses, with each
    /// cell's floor at `min_cores_per_cell`. The supervisor then walks
    /// toward the target with at most `max_moves_per_epoch` single-core
    /// moves, each gated on the receiver's per-core load exceeding the
    /// donor's by the hysteresis margin.
    pub fn step(&mut self, busy_ns: &[u64]) -> &[usize] {
        assert_eq!(busy_ns.len(), self.alloc.len(), "one busy sample per cell");
        self.epochs += 1;
        let total: usize = self.alloc.iter().sum();
        let min = self.cfg.min_cores_per_cell;
        // Leave every *other* cell its floor; the rest is one cell's cap.
        let cap = total - (self.alloc.len() - 1) * min;
        let work: Vec<ShareWork> =
            busy_ns.iter().map(|&b| ShareWork { total_ns: b, max_parallelism: cap }).collect();
        // `frame_ns = u64::MAX` disables the keep-up minimum (an epoch
        // has no deadline); floors come from `min_cores`. The budget
        // always suffices: `new` checked `total >= cells * min`.
        let target = allocate_weighted(&work, total, u64::MAX, min)
            .expect("allocation feasible by construction");

        let load = |busy: u64, cores: usize| busy as f64 / cores as f64;
        for _ in 0..self.cfg.max_moves_per_epoch {
            // Receiver: the under-target cell with the worst per-core
            // load; donor: the over-target cell with the best.
            let recv =
                (0..self.alloc.len()).filter(|&c| self.alloc[c] < target[c]).max_by(|&a, &b| {
                    load(busy_ns[a], self.alloc[a])
                        .partial_cmp(&load(busy_ns[b], self.alloc[b]))
                        .unwrap()
                });
            let donor = (0..self.alloc.len())
                .filter(|&c| self.alloc[c] > target[c] && self.alloc[c] > min)
                .min_by(|&a, &b| {
                    load(busy_ns[a], self.alloc[a])
                        .partial_cmp(&load(busy_ns[b], self.alloc[b]))
                        .unwrap()
                });
            let (Some(r), Some(d)) = (recv, donor) else { break };
            let l_recv = load(busy_ns[r], self.alloc[r]);
            let l_donor = load(busy_ns[d], self.alloc[d]);
            if l_recv <= l_donor * (1.0 + self.cfg.hysteresis) {
                break;
            }
            self.alloc[d] -= 1;
            self.alloc[r] += 1;
            self.migrations += 1;
        }
        &self.alloc
    }
}

/// Configuration for a multi-cell deployment.
#[derive(Debug, Clone)]
pub struct DeploymentConfig {
    /// One engine configuration per cell (index = cell id on the wire).
    /// Each cell's `num_workers` field is ignored — workers come from
    /// the shared pool.
    pub cells: Vec<EngineConfig>,
    /// Shared worker-core budget across all cells.
    pub total_workers: usize,
    /// Core-reallocation policy.
    pub supervisor: SupervisorConfig,
    /// Packets requested per `recv_batch` poll on the shared socket.
    pub rx_batch: usize,
    /// Pin the pool workers and the demux thread to distinct CPUs
    /// (best-effort, same map as [`EngineConfig::pin_cores`]; per-cell
    /// manager threads pin via their own cell's `pin_cores` knob).
    pub pin_cores: bool,
}

impl DeploymentConfig {
    /// Default supervisor and batch sizing for the given cells/budget.
    pub fn new(cells: Vec<EngineConfig>, total_workers: usize) -> Self {
        Self {
            cells,
            total_workers,
            supervisor: SupervisorConfig::default(),
            rx_batch: 32,
            pin_cores: false,
        }
    }

    /// Sanity checks across the whole deployment.
    pub fn validate(&self) -> Result<(), String> {
        if self.cells.is_empty() {
            return Err("deployment needs at least one cell".into());
        }
        if self.cells.len() > u8::MAX as usize + 1 {
            return Err("cell ids are one byte on the wire: at most 256 cells".into());
        }
        let floor = self.cells.len() * self.supervisor.min_cores_per_cell.max(1);
        if self.total_workers < floor {
            return Err(format!(
                "total_workers {} below the {} needed for {} cells",
                self.total_workers,
                floor,
                self.cells.len()
            ));
        }
        if self.rx_batch == 0 {
            return Err("rx batch must be at least 1".into());
        }
        for (c, cell) in self.cells.iter().enumerate() {
            let mut cfg = cell.clone();
            cfg.num_workers = 1; // pooled: the per-cell field is unused
            cfg.validate().map_err(|e| format!("cell {c}: {e}"))?;
        }
        Ok(())
    }
}

/// Aggregated deployment statistics: per-cell [`EngineStats`] plus the
/// shared link's counters (rx batches, socket errors, misrouted
/// packets), with a merged roll-up view.
#[derive(Clone)]
pub struct DeploymentStats {
    cells: Vec<Arc<EngineStats>>,
    link: Arc<EngineStats>,
    total_workers: usize,
}

impl DeploymentStats {
    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// One cell's counters.
    pub fn cell(&self, c: usize) -> &EngineStats {
        &self.cells[c]
    }

    /// The shared link's counters (rx batches, link errors, misrouted).
    pub fn link(&self) -> &EngineStats {
        &self.link
    }

    /// Merges link + every cell into one fresh sink.
    pub fn rollup(&self) -> EngineStats {
        let total = EngineStats::new(self.total_workers);
        total.merge(&self.link);
        for c in &self.cells {
            total.merge(c);
        }
        total
    }

    /// Per-cell frame/packet ledgers plus the rolled-up summary.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for (c, s) in self.cells.iter().enumerate() {
            out.push_str(&format!("cell {c}: {}", s.summary()));
        }
        out.push_str(&format!("total: {}", self.rollup().summary()));
        out
    }
}

struct SupervisorState {
    supervisor: Supervisor,
    /// Per-cell cumulative busy-ns at the last epoch boundary.
    last_busy: Vec<u64>,
    /// Total completed+dropped frames that end the next epoch.
    next_epoch: u64,
}

/// C cell engines sharing one worker pool, one fronthaul socket, and a
/// core-reallocation supervisor.
pub struct Deployment {
    cells: Vec<CellCore>,
    stats: DeploymentStats,
    demux: CellDemux,
    /// Worker id -> currently assigned cell id.
    assign: Arc<Vec<AtomicUsize>>,
    sup: Mutex<SupervisorState>,
    epoch_frames: u64,
    rx_batch: usize,
    pin_cores: bool,
    shutdown: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
}

impl Deployment {
    /// Builds the per-cell cores and spawns the shared worker pool.
    ///
    /// # Panics
    /// If `cfg` fails [`DeploymentConfig::validate`].
    pub fn new(cfg: DeploymentConfig) -> Self {
        cfg.validate().unwrap_or_else(|e| panic!("invalid deployment config: {e}"));
        let total = cfg.total_workers;
        // Every cell's lane array is sized to the GLOBAL pool: any worker
        // may be assigned to any cell, and it drains/steals lanes of its
        // current cell only, indexed by its global worker id.
        let cells: Vec<CellCore> = cfg
            .cells
            .into_iter()
            .map(|c| {
                let lanes = if c.ablation.work_stealing { total } else { 0 };
                CellCore::new(c, total, lanes)
            })
            .collect();
        let supervisor = Supervisor::new(cells.len(), total, cfg.supervisor);

        // Initial worker->cell map from the even split.
        let mut worker_cell = Vec::with_capacity(total);
        for (c, &n) in supervisor.allocation().iter().enumerate() {
            worker_cell.extend(std::iter::repeat_n(c, n));
        }
        let assign: Arc<Vec<AtomicUsize>> =
            Arc::new(worker_cell.into_iter().map(AtomicUsize::new).collect());

        let stats = DeploymentStats {
            cells: cells.iter().map(|c| c.stats.clone()).collect(),
            link: Arc::new(EngineStats::new(total)),
            total_workers: total,
        };
        let shutdown = Arc::new(AtomicBool::new(false));
        let pin = cfg.pin_cores;
        let workers = (0..total)
            .map(|wid| {
                let cells = cells.clone();
                let assign = assign.clone();
                let shutdown = shutdown.clone();
                std::thread::Builder::new()
                    .name(format!("agora-pool-{wid}"))
                    .spawn(move || {
                        if pin {
                            pin_thread(PinRole::Worker(wid));
                        }
                        pool_worker_loop(wid, &cells, &assign, &shutdown)
                    })
                    .expect("failed to spawn pool worker")
            })
            .collect();

        let last_busy = vec![0; cells.len()];
        let demux = CellDemux::new(cells.len());
        Self {
            cells,
            stats,
            demux,
            assign,
            sup: Mutex::new(SupervisorState {
                supervisor,
                last_busy,
                next_epoch: cfg.supervisor.epoch_frames,
            }),
            epoch_frames: cfg.supervisor.epoch_frames,
            rx_batch: cfg.rx_batch,
            pin_cores: cfg.pin_cores,
            shutdown,
            workers,
        }
    }

    /// Number of deployed cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Aggregated statistics (live).
    pub fn stats(&self) -> &DeploymentStats {
        &self.stats
    }

    /// The shared-socket demux counters (per-cell routed, misrouted,
    /// undecodable), cumulative across `process_fronthaul` calls.
    pub fn demux_stats(&self) -> &agora_fronthaul::demux::DemuxStats {
        self.demux.stats()
    }

    /// Snapshot of the supervisor's cores-per-cell allocation.
    pub fn allocation(&self) -> Vec<usize> {
        self.sup.lock().unwrap().supervisor.allocation().to_vec()
    }

    /// Workers migrated between cells since start.
    pub fn migrations(&self) -> u64 {
        self.sup.lock().unwrap().supervisor.migrations()
    }

    /// Processes `frames_per_cell` frames for every cell from one shared
    /// fronthaul link. The calling thread becomes the demux/network
    /// thread; one manager thread per cell tracks that cell's frame
    /// dependencies. Returns `results[cell]` in frame order, exactly as
    /// each cell's standalone [`crate::Engine`] would.
    ///
    /// Per-cell flow control holds the *shared* intake when one cell's
    /// window is full (head-of-line blocking) — the same backpressure a
    /// shared socket has; the supervisor exists to shift cores before
    /// that point.
    pub fn process_fronthaul<F: Fronthaul + Sync + ?Sized>(
        &self,
        fh: &F,
        frames_per_cell: u32,
        producer_done: &AtomicBool,
    ) -> Vec<Vec<FrameResult>> {
        let start = Instant::now();
        if self.pin_cores {
            pin_thread(PinRole::Net);
        }
        let net_done = AtomicBool::new(false);
        let link = &self.stats.link;
        let demux = &self.demux;

        std::thread::scope(|scope| {
            // --- per-cell manager threads ---
            let managers: Vec<_> = self
                .cells
                .iter()
                .map(|core| {
                    let net_done = &net_done;
                    scope.spawn(move || core.manager_loop(start, frames_per_cell, net_done))
                })
                .collect();

            // --- demux/network loop (this thread) ---
            let mut ingests: Vec<_> = self.cells.iter().map(|c| c.ingest_state()).collect();
            let mut batch: Vec<PacketBuf> = Vec::with_capacity(self.rx_batch);
            loop {
                let n = fh.recv_batch(&mut batch, self.rx_batch);
                if n > 0 {
                    link.record_rx_batch(n);
                    for pkt in batch.drain(..) {
                        match demux.classify(&pkt) {
                            Route::Cell(c) => ingests[c].ingest(pkt),
                            Route::Misrouted => link.packet_misrouted(),
                            Route::Undecodable => link.rx_error(),
                        }
                    }
                } else if producer_done.load(Ordering::Acquire) {
                    break;
                } else {
                    std::thread::yield_now();
                }
                self.maybe_reallocate();
            }
            let (tx_e, rx_e) = fh.link_errors();
            link.set_link_errors(tx_e, rx_e);
            net_done.store(true, Ordering::Release);
            // Keep stepping the supervisor while managers drain their
            // tails, so late-epoch load still rebalances.
            let results: Vec<Vec<FrameResult>> = managers
                .into_iter()
                .map(|m| {
                    while !m.is_finished() {
                        self.maybe_reallocate();
                        std::thread::yield_now();
                    }
                    m.join().expect("cell manager panicked")
                })
                .collect();
            results
        })
    }

    /// Runs a supervisor epoch if enough frames completed since the last
    /// one, and applies any allocation change to the worker pool.
    fn maybe_reallocate(&self) {
        if self.epoch_frames == 0 {
            return;
        }
        let done: u64 =
            self.stats.cells.iter().map(|s| s.frames_completed() + s.frames_dropped()).sum();
        let mut st = self.sup.lock().unwrap();
        if done < st.next_epoch {
            return;
        }
        st.next_epoch = done + self.epoch_frames;
        let busy: Vec<u64> = self.stats.cells.iter().map(|s| s.total_busy_ns()).collect();
        let delta: Vec<u64> =
            busy.iter().zip(&st.last_busy).map(|(b, l)| b.saturating_sub(*l)).collect();
        st.last_busy = busy;
        st.supervisor.step(&delta);
        self.apply_allocation(st.supervisor.allocation());
    }

    /// Reassigns the fewest workers that realize `alloc`: cells over
    /// their share yield their highest-numbered workers to cells under
    /// it. Running tasks finish on the old cell; the worker re-reads its
    /// assignment before every poll.
    fn apply_allocation(&self, alloc: &[usize]) {
        let mut have = vec![0usize; alloc.len()];
        for a in self.assign.iter() {
            have[a.load(Ordering::Relaxed)] += 1;
        }
        let mut surplus: Vec<usize> = Vec::new();
        for (wid, a) in self.assign.iter().enumerate().rev() {
            let c = a.load(Ordering::Relaxed);
            if have[c] > alloc[c] {
                have[c] -= 1;
                surplus.push(wid);
            }
        }
        for (c, (&want, &h)) in alloc.iter().zip(&have).enumerate() {
            for _ in h..want {
                let wid = surplus.pop().expect("allocation sums preserved");
                self.assign[wid].store(c, Ordering::Release);
            }
        }
        // A reassigned worker may be parked on its OLD cell's gate; wake
        // every gate so it re-reads its assignment promptly instead of
        // waiting out the park timeout.
        for core in &self.cells {
            core.queues.gate.wake_all();
        }
    }
}

impl Drop for Deployment {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        for core in &self.cells {
            core.queues.gate.wake_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Shared-pool worker: serves whichever cell it is currently assigned
/// to, re-reading the assignment (Acquire) every trip so a migration
/// takes effect at the next poll — any in-hand batch finishes on the old
/// cell first. Within the assigned cell the schedule mirrors a dedicated
/// engine worker: own lane batch → shared queues in priority order →
/// steal from peers' lanes *of the same cell* (strict per-cell buffer
/// ownership) → spin/yield/park on that cell's gate. Scratch is per-cell
/// (geometries differ between cells).
fn pool_worker_loop(wid: usize, cells: &[CellCore], assign: &[AtomicUsize], shutdown: &AtomicBool) {
    let mut scratches: Vec<WorkerScratch> = cells.iter().map(|c| c.kernels.scratch()).collect();
    let mut batch: Vec<Msg> = Vec::with_capacity(WORKER_BATCH);
    let mut done: Vec<Msg> = Vec::with_capacity(WORKER_BATCH);
    let mut backoff = IdleBackoff::new();
    while !shutdown.load(Ordering::Acquire) {
        let cell = assign[wid].load(Ordering::Acquire);
        let core = &cells[cell];
        let lanes = &core.queues.lanes;
        let lanes_on = !lanes.is_empty();
        batch.clear();
        if lanes_on {
            lanes[wid].pop_batch(&mut batch, WORKER_BATCH);
        }
        if batch.is_empty() {
            for &t in &PRIORITY {
                if let Some(msg) = core.queues.queue(t).pop() {
                    batch.push(msg);
                    break;
                }
            }
        }
        if batch.is_empty() && lanes_on {
            for off in 1..lanes.len() {
                let victim = (wid + off) % lanes.len();
                let n = lanes[victim].steal_batch(&mut batch, WORKER_BATCH);
                if n > 0 {
                    core.stats.record_steal(n as u64);
                    break;
                }
            }
        }
        if !batch.is_empty() {
            backoff.reset();
            done.clear();
            for msg in &batch {
                let t0 = Instant::now();
                execute(&core.kernels, &core.window, &mut scratches[cell], msg);
                let ns = t0.elapsed().as_nanos() as u64;
                core.stats.record(wid, msg.task, msg.count as u64, ns);
                done.push(Msg::complete(
                    msg.task, msg.frame, msg.symbol, msg.base, msg.count, wid as u16,
                ));
            }
            let mut off = 0;
            while off < done.len() {
                let n = core.queues.complete.push_batch(&done[off..]);
                if n == 0 {
                    std::thread::yield_now();
                }
                off += n;
            }
            continue;
        }
        if !lanes_on {
            std::thread::yield_now();
            continue;
        }
        match backoff.next() {
            IdleAction::Spin => std::hint::spin_loop(),
            IdleAction::Yield => std::thread::yield_now(),
            IdleAction::Park => {
                let seen = core.queues.gate.epoch();
                // Re-checks ordered after the epoch snapshot: work pushed
                // (or a reassignment applied — `apply_allocation` wakes
                // every gate) in between bumps the epoch and the park
                // falls through.
                if has_work(&core.queues, &PRIORITY)
                    || assign[wid].load(Ordering::Acquire) != cell
                    || shutdown.load(Ordering::Acquire)
                {
                    continue;
                }
                core.stats.park();
                core.queues.gate.park(seen, std::time::Duration::from_millis(1));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agora_fronthaul::{MemFronthaul, MultiCellGenerator, RruConfig, RruEmulator};
    use agora_phy::CellConfig;

    #[test]
    fn supervisor_initial_split_is_even() {
        let s = Supervisor::new(4, 8, SupervisorConfig::default());
        assert_eq!(s.allocation(), &[2, 2, 2, 2]);
        let s = Supervisor::new(3, 8, SupervisorConfig::default());
        assert_eq!(s.allocation(), &[3, 3, 2]);
    }

    #[test]
    #[should_panic(expected = "core budget")]
    fn supervisor_rejects_budget_below_floor() {
        let cfg = SupervisorConfig { min_cores_per_cell: 2, ..Default::default() };
        Supervisor::new(4, 7, cfg);
    }

    /// The acceptance-criteria scenario: one loaded cell among idle
    /// ones. The supervisor must move >= 1 core from an idle cell to the
    /// loaded one within a bounded number of epochs — no wall clock,
    /// pure `step` calls.
    #[test]
    fn skewed_load_migrates_cores_within_bounded_epochs() {
        let mut s = Supervisor::new(4, 8, SupervisorConfig::default());
        // Cell 1 is saturated (8 ms busy per epoch); the rest are idle.
        let busy = [0u64, 8_000_000, 0, 0];
        let mut first_migration = None;
        for epoch in 1..=8 {
            s.step(&busy);
            if first_migration.is_none() && s.migrations() > 0 {
                first_migration = Some(epoch);
            }
        }
        assert_eq!(first_migration, Some(1), "an idle->loaded move happens immediately");
        // With max_moves 1/epoch and 3 donor cells at the floor of 1,
        // the allocation converges to [1, 5, 1, 1] within 3 epochs.
        assert_eq!(s.allocation(), &[1, 5, 1, 1]);
        assert_eq!(s.migrations(), 3, "converged: no further thrash after the target");
    }

    #[test]
    fn balanced_load_never_thrashes() {
        let mut s = Supervisor::new(2, 8, SupervisorConfig::default());
        for _ in 0..16 {
            s.step(&[1_000_000, 1_050_000]); // within the 25% band
        }
        assert_eq!(s.migrations(), 0);
        assert_eq!(s.allocation(), &[4, 4]);
    }

    #[test]
    fn all_idle_cells_never_thrash() {
        let mut s = Supervisor::new(4, 8, SupervisorConfig::default());
        for _ in 0..8 {
            s.step(&[0, 0, 0, 0]);
        }
        assert_eq!(s.migrations(), 0);
    }

    #[test]
    fn load_reversal_migrates_back() {
        let mut s = Supervisor::new(2, 6, SupervisorConfig::default());
        for _ in 0..4 {
            s.step(&[9_000_000, 0]);
        }
        assert_eq!(s.allocation(), &[5, 1]);
        for _ in 0..8 {
            s.step(&[0, 9_000_000]);
        }
        assert_eq!(s.allocation(), &[1, 5], "cores follow the load when it moves");
    }

    #[test]
    fn min_cores_floor_is_respected() {
        let cfg = SupervisorConfig { min_cores_per_cell: 2, ..Default::default() };
        let mut s = Supervisor::new(3, 9, cfg);
        for _ in 0..16 {
            s.step(&[50_000_000, 0, 0]);
        }
        assert!(s.allocation().iter().all(|&c| c >= 2), "{:?}", s.allocation());
        assert_eq!(s.allocation().iter().sum::<usize>(), 9);
    }

    fn tiny_cell_cfg(cell_id: u8, seed: u64) -> (EngineConfig, RruEmulator) {
        let cell = CellConfig::tiny_test(2);
        let rru = RruEmulator::new(
            cell.clone(),
            RruConfig { snr_db: 30.0, seed, cell_id, ..Default::default() },
        );
        let mut cfg = EngineConfig::new(cell, 1);
        cfg.noise_power = rru.noise_power();
        (cfg, rru)
    }

    /// End-to-end C=2: both cells decode their own ground truth from one
    /// shared link, and per-cell stats stay separate.
    #[test]
    fn two_cell_deployment_decodes_both_cells() {
        let frames = 2u32;
        let (cfg0, rru0) = tiny_cell_cfg(0, 301);
        let (cfg1, rru1) = tiny_cell_cfg(1, 302);
        let schedule = cfg0.cell.schedule.clone();
        let users = cfg0.cell.num_users;
        let mut generator = MultiCellGenerator::new(vec![rru0, rru1]);
        let (tx, rx) = MemFronthaul::pair(4096);
        let truths = generator.run(&tx, frames);

        let deployment = Deployment::new(DeploymentConfig::new(vec![cfg0, cfg1], 2));
        let done = AtomicBool::new(true);
        let results = deployment.process_fronthaul(&rx, frames, &done);
        assert_eq!(results.len(), 2);
        for (cell, res) in results.iter().enumerate() {
            assert_eq!(res.len(), frames as usize, "cell {cell}");
            for r in res {
                assert!(!r.dropped, "cell {cell} frame {} dropped", r.frame);
                let gt = &truths[cell][r.frame as usize];
                for symbol in schedule.uplink_indices() {
                    for user in 0..users {
                        assert!(r.decode_ok[symbol][user], "cell {cell} frame {}", r.frame);
                        assert_eq!(r.decoded[symbol][user], gt.info_bits[symbol][user]);
                    }
                }
            }
        }
        let stats = deployment.stats();
        assert_eq!(stats.cell(0).frames_completed(), frames as u64);
        assert_eq!(stats.cell(1).frames_completed(), frames as u64);
        assert_eq!(stats.rollup().frames_completed(), 2 * frames as u64);
        assert_eq!(stats.link().packets_misrouted(), 0);
    }

    /// A packet naming cell 7 in a C=2 deployment is counted and
    /// dropped; both real cells still complete every frame.
    #[test]
    fn misrouted_packets_counted_and_dropped() {
        let frames = 1u32;
        let (cfg0, rru0) = tiny_cell_cfg(0, 311);
        let (cfg1, rru1) = tiny_cell_cfg(1, 313);
        let (_, mut rogue) = tiny_cell_cfg(7, 312);
        let (tx, rx) = MemFronthaul::pair(4096);
        // A rogue stream for cell 7 rides along on the same link.
        let (rogue_pkts, _) = rogue.generate_frame(0);
        let rogue_count = rogue_pkts.len() as u64;
        for p in rogue_pkts {
            tx.send(PacketBuf::Heap(p)).unwrap();
        }
        let mut generator = MultiCellGenerator::new(vec![rru0, rru1]);
        let truths = generator.run(&tx, frames);

        let deployment = Deployment::new(DeploymentConfig::new(vec![cfg0, cfg1], 2));
        let done = AtomicBool::new(true);
        let results = deployment.process_fronthaul(&rx, frames, &done);
        for (cell, res) in results.iter().enumerate() {
            assert_eq!(res.len(), 1);
            assert!(!res[0].dropped, "cell {cell} survived the rogue stream");
            assert!(!truths[cell].is_empty());
        }
        let stats = deployment.stats();
        assert_eq!(stats.link().packets_misrouted(), rogue_count);
        assert_eq!(stats.rollup().packets_misrouted(), rogue_count);
        assert_eq!(stats.cell(0).rx_errors(), 0, "rogue packets never reach a cell");
    }
}
