//! Engine configuration: worker counts, batching, and the ablation
//! switches behind Table 4.

use agora_math::PinvMethod;
use agora_phy::CellConfig;

/// Which linear detector family the ZF block computes (the paper uses
/// zero-forcing; §4.2 cites conjugate beamforming as the low-overhead
/// fallback for ill-conditioned channels, and MMSE is the standard
/// regularised middle ground).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DetectorKind {
    /// Zero-forcing (the paper's choice).
    #[default]
    ZeroForcing,
    /// Linear MMSE, regularised with the engine's configured noise power.
    Mmse,
    /// Conjugate (matched-filter) beamforming — no matrix inversion.
    Conjugate,
}

/// How the engine turns the ZF block's output into equalized user
/// symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EqMode {
    /// Form the detector `W = (H^H H)^{-1} H^H` per group and equalize
    /// with the planned GEMM/GEMV (the paper's pipeline).
    #[default]
    Direct,
    /// Never form the inverse: the ZF block stores `H^H` and the Gram
    /// matrix per group, and demodulation solves `(H^H H) x = H^H y`
    /// per subcarrier with Jacobi-preconditioned conjugate gradient.
    /// Per-user LLR noise variances come from a truncated Neumann series
    /// for `diag((H^H H)^{-1})`. Only meaningful for the zero-forcing
    /// detector.
    Iterative,
}

/// Optimisation toggles. Each field corresponds to a row of Table 4;
/// disabling one reproduces that ablation.
#[derive(Debug, Clone, Copy)]
pub struct Ablation {
    /// §3.4 "Batching": multiple tasks per queue message. Disabled, every
    /// message carries exactly one task.
    pub batching: bool,
    /// §3.4 batching, FFT flavour: when a queue message carries several
    /// (I)FFT tasks, execute them as one batched transform
    /// (`fft_batch_task`/`ifft_batch_task`) so the SIMD kernel amortises
    /// twiddle loads across L1-resident tiles. Disabled, the worker loops
    /// single-transform tasks. Output is bit-identical either way — this
    /// flag isolates the batched-execution speedup.
    pub batched_fft: bool,
    /// §4.1 "Improving memory access efficiency": lay FFT output out in
    /// antenna-blocks of 8 consecutive subcarriers so demodulation
    /// consumes whole cache lines. Disabled, the layout is subcarrier-
    /// strided and demodulation works one subcarrier at a time.
    pub cache_layout: bool,
    /// §4.1 "Non-temporal stores": use streaming stores when writing
    /// block outputs consumed by other cores.
    pub streaming_stores: bool,
    /// §4.2 "Pseudo-inverse": direct Gram inversion vs full SVD.
    pub pinv_method: PinvMethod,
    /// Route the zero-forcing Gram solve through the Cholesky
    /// factorisation instead of Gauss-Jordan when `pinv_method` is
    /// `Direct` — half the flops, never forms the explicit inverse, and
    /// its pivot sign is an intrinsically correct positive-definite test
    /// (an `f32`-aware singularity guard). Disabled, the ZF task keeps
    /// the Gauss-Jordan inverse; explicit `Cholesky`/`Svd` pinv methods
    /// are unaffected either way.
    pub zf_cholesky: bool,
    /// Direct (formed detector) vs iterative (per-subcarrier CG)
    /// equalization; see [`EqMode`].
    pub eq_mode: EqMode,
    /// §4.2 "Matrix multiplication": shape-specialised GEMM kernels
    /// (the MKL-JIT analogue) vs the generic loop kernel.
    pub jit_gemm: bool,
    /// AVX2 complex-GEMM plane: routes every beamforming product — the ZF
    /// Gram/inverse chain, equalization GEMM/GEMV, downlink precoding —
    /// through the register-tiled vector kernels in `agora-math`.
    /// Disabled, the same products run the scalar kernels (planned or
    /// generic per `jit_gemm`). The kernels are bit-identical across
    /// tiers, so this toggles speed only — `FrameResult`s do not change.
    pub simd_gemm: bool,
    /// Detector family computed by the ZF block.
    pub detector: DetectorKind,
    /// §4.3 "Real-time process": when *disabled*, the simulator injects
    /// OS-scheduler preemption jitter into task times (tail blow-up).
    pub realtime_process: bool,
    /// Fixed-point decoding plane: demodulation emits saturating `i8`
    /// LLRs and `decode_task` runs the Z-lane-vectorised i8 layered
    /// min-sum decoder instead of the scalar `f32` one (the FlexRAN-style
    /// configuration the paper offloads to). Disabled, the engine keeps
    /// the float plane — the A/B for fig-style runs.
    pub quantized_decoder: bool,
    /// Antenna-cluster partitioned ZF: split each group's `H^H H` Gram
    /// into [`EngineConfig::antenna_clusters`] per-cluster partial Grams
    /// computed by independent workers, reduced in fixed cluster-index
    /// order (deterministic f32 sum order) before the solve. With one
    /// cluster the staged path is bit-identical to the monolithic
    /// `zf_task`; disabled, the monolithic task runs regardless of the
    /// cluster count. Only meaningful for the zero-forcing detector.
    pub clustered_zf: bool,
    /// §5-style dispatch discipline: per-worker bounded task lanes with
    /// affinity-aware placement, batched (single-cursor-claim) enqueue
    /// and dequeue, cross-lane batch stealing, and spin→yield→park
    /// idling, instead of every worker busy-polling the shared per-type
    /// queues. Results are bit-identical either way — which worker runs
    /// a task never changes what it writes — so this toggles scheduling
    /// overhead only.
    pub work_stealing: bool,
}

impl Default for Ablation {
    fn default() -> Self {
        Self {
            batching: true,
            batched_fft: true,
            cache_layout: true,
            streaming_stores: true,
            pinv_method: PinvMethod::Direct,
            zf_cholesky: true,
            eq_mode: EqMode::Direct,
            jit_gemm: true,
            simd_gemm: true,
            detector: DetectorKind::ZeroForcing,
            realtime_process: true,
            quantized_decoder: false,
            clustered_zf: false,
            work_stealing: true,
        }
    }
}

/// Per-block batch sizes (tasks per queue message), Table 3's "Batching
/// size" row.
#[derive(Debug, Clone, Copy)]
pub struct BatchSizes {
    /// FFT tasks (antennas) per message. Paper: 2.
    pub fft: usize,
    /// ZF groups per message. Paper: 3.
    pub zf: usize,
    /// Demodulation subcarriers per message. Paper: 64.
    pub demod: usize,
    /// Decode tasks (users) per message. Paper: 1.
    pub decode: usize,
    /// Encode tasks per message (downlink).
    pub encode: usize,
    /// Precoding subcarriers per message (downlink).
    pub precode: usize,
    /// IFFT tasks per message (downlink).
    pub ifft: usize,
}

impl Default for BatchSizes {
    fn default() -> Self {
        Self { fft: 2, zf: 3, demod: 64, decode: 1, encode: 1, precode: 64, ifft: 2 }
    }
}

impl BatchSizes {
    /// All batch sizes forced to one (the Table 4 "batching disabled"
    /// configuration).
    pub fn ones() -> Self {
        Self { fft: 1, zf: 1, demod: 1, decode: 1, encode: 1, precode: 1, ifft: 1 }
    }
}

/// Full engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The cell this engine serves.
    pub cell: CellConfig,
    /// Number of worker threads (excluding manager and network threads).
    pub num_workers: usize,
    /// Frames that may be in flight simultaneously (buffer window). The
    /// paper provisions "sufficient shared memory buffer space for tens
    /// of frames to handle performance jitter".
    pub frame_window: usize,
    /// Per-block batch sizes.
    pub batch: BatchSizes,
    /// Optimisation toggles.
    pub ablation: Ablation,
    /// Subcarriers per demodulation kernel call (cache-line unit). The
    /// paper uses 8 (64 bytes / 8-byte sample).
    pub demod_block: usize,
    /// Channel noise power assumed by the soft demodulator (per active
    /// subcarrier, post-channel). Receivers estimate this from pilots;
    /// experiments set it from the generator's ground truth.
    pub noise_power: f32,
    /// `f32 -> i8` LLR quantisation scale for the fixed-point decoding
    /// plane (`ablation.quantized_decoder`): integer steps per LLR unit.
    pub llr_quant_scale: f32,
    /// §3.4.2: precode the first downlink symbols of frame `f` with frame
    /// `f-1`'s precoder so the RRU's air time never idles waiting for the
    /// new frame's ZF (slightly stale CSI, negligible at low mobility).
    pub stale_precoder: bool,
    /// Decision-directed common-phase-error correction between
    /// equalization and demodulation (residual sync drift tracking).
    pub cpe_correction: bool,
    /// Per-frame processing deadline. When set, a frame whose first
    /// packet arrived more than this many nanoseconds ago is abandoned:
    /// its in-flight tasks are flushed, its state freed, and a result
    /// with `dropped: true` is emitted so the pipeline keeps pace under
    /// fronthaul loss ("Agora drops the frame and continues", §6).
    /// `None` keeps the legacy behaviour: incomplete frames are only
    /// reaped by the end-of-input stall detector.
    pub frame_deadline_ns: Option<u64>,
    /// Packets the network thread requests per `recv_batch` poll when
    /// driven from a [`agora_fronthaul::Fronthaul`] link (one `recvmmsg`
    /// syscall drains up to this many).
    pub rx_batch: usize,
    /// Antenna clusters for the partitioned ZF path
    /// (`ablation.clustered_zf`): each ZF group's Gram is computed as
    /// this many per-cluster partials in parallel and tree-reduced in
    /// fixed cluster order. Must be between 1 and the cell's antenna
    /// count; 1 degenerates to a single partial plus a copy-reduce.
    pub antenna_clusters: usize,
    /// Pin the manager, network, and worker threads to distinct CPUs via
    /// `sched_setaffinity` (best-effort: silently unpinned where the
    /// syscall is unavailable or refused). Off by default so tests and
    /// benches on shared machines don't fight the OS scheduler.
    pub pin_cores: bool,
    /// Capacity of each worker's task lane (rounded up to a power of
    /// two). Tasks that don't fit overflow to the shared per-type
    /// queues, so this bounds per-worker buffering, not correctness.
    pub lane_capacity: usize,
}

impl EngineConfig {
    /// A sensible default for a cell: paper batch sizes, 4-frame window.
    pub fn new(cell: CellConfig, num_workers: usize) -> Self {
        let mut cfg = Self {
            cell,
            num_workers,
            frame_window: 4,
            batch: BatchSizes::default(),
            ablation: Ablation::default(),
            demod_block: 8,
            noise_power: 0.05,
            llr_quant_scale: agora_ldpc::DEFAULT_LLR_SCALE,
            stale_precoder: false,
            cpe_correction: false,
            frame_deadline_ns: None,
            rx_batch: 32,
            antenna_clusters: 1,
            pin_cores: false,
            lane_capacity: 256,
        };
        cfg.clamp_batches();
        cfg
    }

    /// Applies the ablation's batching switch and clamps batch sizes to
    /// the actual task counts.
    pub fn clamp_batches(&mut self) {
        if !self.ablation.batching {
            self.batch = BatchSizes::ones();
        }
        let groups = self.cell.num_zf_groups().max(1);
        self.batch.zf = self.batch.zf.clamp(1, groups);
        self.batch.fft = self.batch.fft.clamp(1, self.cell.num_antennas);
        self.batch.demod = self.batch.demod.clamp(1, self.cell.num_data_sc);
        self.batch.decode = self.batch.decode.clamp(1, self.cell.num_users);
        // Demod batches must stay multiples of the kernel block so a
        // message never straddles a partially-owned cache line.
        if self.batch.demod > self.demod_block {
            self.batch.demod -= self.batch.demod % self.demod_block;
        }
    }

    /// Sanity checks (in addition to `CellConfig::validate`).
    pub fn validate(&self) -> Result<(), String> {
        self.cell.validate()?;
        if self.num_workers == 0 {
            return Err("need at least one worker".into());
        }
        if self.frame_window < 2 {
            return Err("frame window must be at least 2".into());
        }
        if !(self.llr_quant_scale > 0.0 && self.llr_quant_scale.is_finite()) {
            return Err("LLR quantisation scale must be positive and finite".into());
        }
        if !self.demod_block.is_power_of_two() {
            return Err("demod block must be a power of two".into());
        }
        if !self.cell.num_data_sc.is_multiple_of(self.demod_block) {
            return Err(format!(
                "demod block {} must divide data subcarriers {}",
                self.demod_block, self.cell.num_data_sc
            ));
        }
        if !self.cell.zf_group.is_multiple_of(self.demod_block) {
            return Err("ZF group must be a multiple of the demod block".into());
        }
        if self.ablation.eq_mode == EqMode::Iterative
            && self.ablation.detector != DetectorKind::ZeroForcing
        {
            return Err("iterative equalization requires the zero-forcing detector".into());
        }
        if self.rx_batch == 0 {
            return Err("rx batch must be at least 1".into());
        }
        if self.antenna_clusters == 0 {
            return Err("antenna clusters must be at least 1".into());
        }
        if self.antenna_clusters > self.cell.num_antennas {
            return Err(format!(
                "antenna clusters {} exceed antenna count {}",
                self.antenna_clusters, self.cell.num_antennas
            ));
        }
        if self.ablation.clustered_zf && self.ablation.detector != DetectorKind::ZeroForcing {
            return Err("clustered ZF requires the zero-forcing detector".into());
        }
        if self.lane_capacity == 0 {
            return Err("lane capacity must be at least 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agora_phy::CellConfig;

    #[test]
    fn default_batches_match_paper() {
        let b = BatchSizes::default();
        assert_eq!((b.fft, b.zf, b.demod, b.decode), (2, 3, 64, 1));
    }

    #[test]
    fn paper_config_validates() {
        let cfg = EngineConfig::new(CellConfig::emulated_rru(64, 16, 13), 26);
        cfg.validate().expect("paper engine config must validate");
    }

    #[test]
    fn tiny_config_validates() {
        let cfg = EngineConfig::new(CellConfig::tiny_test(2), 3);
        cfg.validate().expect("tiny engine config must validate");
    }

    #[test]
    fn batching_ablation_forces_unit_batches() {
        let mut cfg = EngineConfig::new(CellConfig::tiny_test(2), 2);
        cfg.ablation.batching = false;
        cfg.clamp_batches();
        assert_eq!(cfg.batch.fft, 1);
        assert_eq!(cfg.batch.demod, 1);
    }

    #[test]
    fn batches_clamped_to_task_counts() {
        // Tiny cell: 8 antennas, 240 subcarriers, 15 ZF groups.
        let mut cfg = EngineConfig::new(CellConfig::tiny_test(2), 2);
        cfg.batch.fft = 100;
        cfg.batch.zf = 100;
        cfg.clamp_batches();
        assert_eq!(cfg.batch.fft, 8);
        assert_eq!(cfg.batch.zf, 15);
    }

    #[test]
    fn invalid_worker_count_rejected() {
        let mut cfg = EngineConfig::new(CellConfig::tiny_test(2), 1);
        cfg.num_workers = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn zero_rx_batch_rejected() {
        let mut cfg = EngineConfig::new(CellConfig::tiny_test(2), 1);
        cfg.rx_batch = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn iterative_eq_requires_zero_forcing() {
        let mut cfg = EngineConfig::new(CellConfig::tiny_test(2), 2);
        cfg.ablation.eq_mode = EqMode::Iterative;
        cfg.validate().expect("iterative + zero-forcing must validate");
        cfg.ablation.detector = DetectorKind::Mmse;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn antenna_cluster_bounds_enforced() {
        let mut cfg = EngineConfig::new(CellConfig::tiny_test(2), 2);
        assert_eq!(cfg.antenna_clusters, 1, "clusters default to one");
        assert!(!cfg.ablation.clustered_zf, "clustered ZF defaults off");
        cfg.ablation.clustered_zf = true;
        cfg.antenna_clusters = cfg.cell.num_antennas;
        cfg.validate().expect("clusters = antennas must validate");
        cfg.antenna_clusters = 0;
        assert!(cfg.validate().is_err(), "zero clusters rejected");
        cfg.antenna_clusters = cfg.cell.num_antennas + 1;
        assert!(cfg.validate().is_err(), "clusters > antennas rejected");
        cfg.antenna_clusters = 2;
        cfg.ablation.detector = DetectorKind::Mmse;
        cfg.ablation.clustered_zf = true;
        assert!(cfg.validate().is_err(), "clustered ZF needs zero-forcing");
    }

    #[test]
    fn work_stealing_defaults_on_and_lane_capacity_validated() {
        let mut cfg = EngineConfig::new(CellConfig::tiny_test(2), 2);
        assert!(cfg.ablation.work_stealing, "work stealing defaults on");
        assert!(!cfg.pin_cores, "pinning defaults off");
        assert_eq!(cfg.lane_capacity, 256);
        cfg.validate().expect("defaults must validate");
        cfg.lane_capacity = 0;
        assert!(cfg.validate().is_err(), "zero lane capacity rejected");
    }

    #[test]
    fn demod_batch_stays_block_aligned() {
        let mut cfg = EngineConfig::new(CellConfig::tiny_test(2), 2);
        cfg.batch.demod = 63;
        cfg.clamp_batches();
        assert_eq!(cfg.batch.demod % cfg.demod_block, 0);
    }
}
