//! Per-frame dependency tracking — the manager's bookkeeping.
//!
//! This is the pure logic behind Agora's scheduling policy: which tasks
//! become ready when a packet arrives or a completion message lands. It
//! owns no buffers and spawns no threads, so every dependency rule
//! (Figure 1b) is unit-testable:
//!
//! * FFT of (symbol, antenna) needs that antenna's packet.
//! * ZF needs *all* pilot FFTs (the synchronisation barrier of §2).
//! * Demodulation of a symbol needs that symbol's FFTs *and* all ZF.
//! * Decoding of (symbol, user) needs the symbol fully demodulated.
//! * Downlink: encode is free; precoding needs ZF + the symbol's encodes;
//!   IFFT needs the symbol fully precoded.

use agora_phy::frame::{FrameSchedule, SymbolType};

/// Ready-to-dispatch work discovered by a state transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ready {
    /// FFT for (symbol, antenna).
    Fft {
        /// Symbol index.
        symbol: usize,
        /// Antenna index.
        antenna: usize,
    },
    /// All ZF groups (dispatched together once pilots are done).
    AllZf,
    /// One group's ZF reduce (staged path: every cluster's partial Gram
    /// for the group has been published).
    ZfReduce {
        /// Subcarrier group index.
        group: usize,
    },
    /// Demodulation for a whole symbol (manager batches subcarriers).
    DemodSymbol {
        /// Symbol index.
        symbol: usize,
    },
    /// Decode for every user of a symbol.
    DecodeSymbol {
        /// Symbol index.
        symbol: usize,
    },
    /// Encode for every user of a downlink symbol.
    EncodeSymbol {
        /// Symbol index.
        symbol: usize,
    },
    /// Precoding for a whole downlink symbol.
    PrecodeSymbol {
        /// Symbol index.
        symbol: usize,
    },
    /// IFFT for (symbol, antenna).
    IfftSymbol {
        /// Symbol index.
        symbol: usize,
    },
}

/// Milestones within a frame's processing (nanoseconds since engine
/// start), mirroring Figure 13(b).
#[derive(Debug, Clone, Copy, Default)]
pub struct Milestones {
    /// First packet of the frame entered the system.
    pub first_packet_ns: u64,
    /// Manager began scheduling the frame (queueing delay ends).
    pub processing_start_ns: u64,
    /// All pilot symbols FFT'd + CSI complete.
    pub pilot_done_ns: u64,
    /// All ZF groups computed.
    pub zf_done_ns: u64,
    /// Last uplink decode finished (uplink frame completion).
    pub decode_done_ns: u64,
    /// Last downlink IFFT finished (downlink frame completion).
    pub ifft_done_ns: u64,
}

/// Dependency/state tracker for one in-flight frame.
#[derive(Debug, Clone)]
pub struct FrameState {
    /// The frame id being tracked.
    pub frame: u32,
    /// Timing milestones.
    pub milestones: Milestones,
    schedule: FrameSchedule,
    m: usize,
    k: usize,
    q: usize,
    zf_groups: usize,
    // --- uplink ---
    pkts: Vec<usize>,
    /// Per-(symbol, antenna) arrival flags (`symbol * m + antenna`):
    /// rejects duplicate fronthaul packets, which would otherwise
    /// double-count toward the FFT barrier and corrupt the dependency
    /// counters.
    rx_seen: Vec<bool>,
    fft_done: Vec<usize>,
    pilot_ffts_remaining: usize,
    zf_dispatched: bool,
    zf_done: usize,
    /// Staged ZF: clusters per group (0 = monolithic path, staged
    /// accounting off).
    zf_clusters: usize,
    /// Staged ZF: reduce shards per group.
    zf_reduce_shards: usize,
    /// Staged ZF: per-group partial-Gram completions.
    zf_partials: Vec<usize>,
    /// Staged ZF: per-group reduce-shard completions.
    zf_reduces: Vec<usize>,
    demod_dispatched: Vec<bool>,
    demod_done: Vec<usize>,
    decode_dispatched: Vec<bool>,
    decode_done: Vec<usize>,
    ul_decodes_remaining: usize,
    // --- downlink ---
    encode_done: Vec<usize>,
    precode_dispatched: Vec<bool>,
    precode_done: Vec<usize>,
    ifft_dispatched: Vec<bool>,
    ifft_done: Vec<usize>,
    dl_iffts_remaining: usize,
}

impl FrameState {
    /// Creates the tracker for `frame` given cell geometry.
    pub fn new(
        frame: u32,
        schedule: FrameSchedule,
        m: usize,
        k: usize,
        q: usize,
        zf_groups: usize,
    ) -> Self {
        let symbols = schedule.len();
        let pilot_ffts = schedule.pilot_indices().len() * m;
        let ul_symbols = schedule.uplink_indices().len();
        let dl_symbols = schedule.downlink_indices().len();
        Self {
            frame,
            milestones: Milestones::default(),
            schedule,
            m,
            k,
            q,
            zf_groups,
            pkts: vec![0; symbols],
            rx_seen: vec![false; symbols * m],
            fft_done: vec![0; symbols],
            pilot_ffts_remaining: pilot_ffts,
            zf_dispatched: false,
            zf_done: 0,
            zf_clusters: 0,
            zf_reduce_shards: 0,
            zf_partials: Vec::new(),
            zf_reduces: Vec::new(),
            demod_dispatched: vec![false; symbols],
            demod_done: vec![0; symbols],
            decode_dispatched: vec![false; symbols],
            decode_done: vec![0; symbols],
            ul_decodes_remaining: ul_symbols * k,
            encode_done: vec![0; symbols],
            precode_dispatched: vec![false; symbols],
            precode_done: vec![0; symbols],
            ifft_dispatched: vec![false; symbols],
            ifft_done: vec![0; symbols],
            dl_iffts_remaining: dl_symbols * m,
        }
    }

    /// Switches the tracker to the staged (antenna-cluster partitioned)
    /// ZF accounting: each group needs `clusters` partial-Gram
    /// completions before its reduce becomes ready, and `reduce_shards`
    /// reduce completions before the group counts toward `zf_done`.
    pub fn with_clustered_zf(mut self, clusters: usize, reduce_shards: usize) -> Self {
        assert!(clusters >= 1 && reduce_shards >= 1);
        self.zf_clusters = clusters;
        self.zf_reduce_shards = reduce_shards;
        self.zf_partials = vec![0; self.zf_groups];
        self.zf_reduces = vec![0; self.zf_groups];
        self
    }

    /// The frame schedule.
    pub fn schedule(&self) -> &FrameSchedule {
        &self.schedule
    }

    /// Downlink symbols that can start immediately (encode needs no RX
    /// input — the data comes from the MAC).
    pub fn initial_work(&self) -> Vec<Ready> {
        self.schedule
            .downlink_indices()
            .into_iter()
            .map(|symbol| Ready::EncodeSymbol { symbol })
            .collect()
    }

    /// A packet for `(symbol, antenna)` arrived; its payload is already in
    /// the frame buffer. Returns the FFT task this unlocks (uplink/pilot
    /// symbols only; downlink symbols carry no uplink packets). Returns
    /// `None` for a duplicate `(symbol, antenna)` — the caller must not
    /// dispatch anything for it (the byte-identical payload rewrite is
    /// harmless, but a second FFT would double-count the barrier).
    pub fn on_packet(&mut self, symbol: usize, antenna: usize) -> Option<Vec<Ready>> {
        let idx = symbol * self.m + antenna;
        if self.rx_seen[idx] {
            return None;
        }
        self.rx_seen[idx] = true;
        self.pkts[symbol] += 1;
        Some(match self.schedule.symbol(symbol) {
            SymbolType::Pilot | SymbolType::Uplink => {
                vec![Ready::Fft { symbol, antenna }]
            }
            _ => Vec::new(),
        })
    }

    /// An FFT task completed. May unlock ZF (pilots done) or
    /// demodulation (data symbol done + ZF done).
    pub fn on_fft_done(&mut self, symbol: usize, count: usize) -> Vec<Ready> {
        self.fft_done[symbol] += count;
        debug_assert!(self.fft_done[symbol] <= self.m);
        let mut out = Vec::new();
        match self.schedule.symbol(symbol) {
            SymbolType::Pilot => {
                self.pilot_ffts_remaining -= count;
                if self.pilot_ffts_remaining == 0 && !self.zf_dispatched {
                    self.zf_dispatched = true;
                    out.push(Ready::AllZf);
                }
            }
            SymbolType::Uplink if self.fft_done[symbol] == self.m => {
                out.extend(self.try_demod(symbol));
            }
            _ => {}
        }
        out
    }

    /// A batch of ZF groups completed. When all groups are done, every
    /// fully-FFT'd data symbol becomes demodulation-ready and every
    /// fully-encoded downlink symbol becomes precoding-ready.
    pub fn on_zf_done(&mut self, count: usize) -> Vec<Ready> {
        self.zf_done += count;
        debug_assert!(self.zf_done <= self.zf_groups);
        let mut out = Vec::new();
        if self.zf_done == self.zf_groups {
            for symbol in self.schedule.uplink_indices() {
                if self.fft_done[symbol] == self.m {
                    out.extend(self.try_demod(symbol));
                }
            }
            for symbol in self.schedule.downlink_indices() {
                if self.encode_done[symbol] == self.k {
                    out.extend(self.try_precode(symbol));
                }
            }
        }
        out
    }

    /// A batch of partial-Gram tasks (one cluster each, groups
    /// `base..base + count`) completed. A group whose last cluster just
    /// published becomes reduce-ready — the fixed-order fold must only
    /// fire once every partial it reads is in place.
    pub fn on_zf_partial_done(&mut self, base: usize, count: usize) -> Vec<Ready> {
        debug_assert!(self.zf_clusters > 0, "staged accounting without clustered ZF");
        let mut out = Vec::new();
        for group in base..base + count {
            self.zf_partials[group] += 1;
            debug_assert!(self.zf_partials[group] <= self.zf_clusters);
            if self.zf_partials[group] == self.zf_clusters {
                out.push(Ready::ZfReduce { group });
            }
        }
        out
    }

    /// One reduce shard of a group completed. The group counts toward
    /// `zf_done` (with the usual unlock cascade) only once *all* of its
    /// shards have published their detector columns.
    pub fn on_zf_reduce_done(&mut self, group: usize) -> Vec<Ready> {
        debug_assert!(self.zf_clusters > 0, "staged accounting without clustered ZF");
        self.zf_reduces[group] += 1;
        debug_assert!(self.zf_reduces[group] <= self.zf_reduce_shards);
        if self.zf_reduces[group] == self.zf_reduce_shards {
            self.on_zf_done(1)
        } else {
            Vec::new()
        }
    }

    /// Demodulation progress on a symbol (in subcarriers).
    pub fn on_demod_done(&mut self, symbol: usize, subcarriers: usize) -> Vec<Ready> {
        self.demod_done[symbol] += subcarriers;
        debug_assert!(self.demod_done[symbol] <= self.q);
        if self.demod_done[symbol] == self.q && !self.decode_dispatched[symbol] {
            self.decode_dispatched[symbol] = true;
            vec![Ready::DecodeSymbol { symbol }]
        } else {
            Vec::new()
        }
    }

    /// Decode progress (in users). Returns `true` as second element when
    /// the whole uplink frame is finished.
    pub fn on_decode_done(&mut self, symbol: usize, users: usize) -> bool {
        self.decode_done[symbol] += users;
        debug_assert!(self.decode_done[symbol] <= self.k);
        self.ul_decodes_remaining -= users;
        self.ul_decodes_remaining == 0
    }

    /// Encode progress on a downlink symbol (in users).
    pub fn on_encode_done(&mut self, symbol: usize, users: usize) -> Vec<Ready> {
        self.encode_done[symbol] += users;
        debug_assert!(self.encode_done[symbol] <= self.k);
        if self.encode_done[symbol] == self.k && self.zf_done == self.zf_groups {
            self.try_precode(symbol)
        } else {
            Vec::new()
        }
    }

    /// Precoding progress (in subcarriers). Unlocks the symbol's IFFTs.
    pub fn on_precode_done(&mut self, symbol: usize, subcarriers: usize) -> Vec<Ready> {
        self.precode_done[symbol] += subcarriers;
        debug_assert!(self.precode_done[symbol] <= self.q);
        if self.precode_done[symbol] == self.q && !self.ifft_dispatched[symbol] {
            self.ifft_dispatched[symbol] = true;
            vec![Ready::IfftSymbol { symbol }]
        } else {
            Vec::new()
        }
    }

    /// IFFT progress (in antennas). Returns `true` when the downlink
    /// frame is complete.
    pub fn on_ifft_done(&mut self, symbol: usize, antennas: usize) -> bool {
        self.ifft_done[symbol] += antennas;
        debug_assert!(self.ifft_done[symbol] <= self.m);
        self.dl_iffts_remaining -= antennas;
        self.dl_iffts_remaining == 0
    }

    /// True when every uplink decode has finished.
    pub fn uplink_complete(&self) -> bool {
        self.ul_decodes_remaining == 0
    }

    /// True when every downlink IFFT has finished.
    pub fn downlink_complete(&self) -> bool {
        self.dl_iffts_remaining == 0
    }

    /// True once all pilot FFT+CSI work is done.
    pub fn pilots_complete(&self) -> bool {
        self.pilot_ffts_remaining == 0
    }

    /// Packets received so far for one symbol.
    pub fn packets_received(&self, symbol: usize) -> usize {
        self.pkts[symbol]
    }

    /// Distinct packets still missing across all packet-bearing symbols
    /// (pilot + uplink; downlink symbols carry no uplink packets). This
    /// is the loss count attributed to a frame when it is abandoned.
    pub fn packets_missing(&self) -> usize {
        self.schedule
            .pilot_indices()
            .into_iter()
            .chain(self.schedule.uplink_indices())
            .map(|s| self.m - self.pkts[s])
            .sum()
    }

    /// True once every user of a downlink symbol has been encoded.
    pub fn encode_complete(&self, symbol: usize) -> bool {
        self.encode_done[symbol] == self.k
    }

    /// Forces precoding dispatch for a symbol *before* this frame's ZF is
    /// ready — the §3.4.2 "stale precoder" optimisation, where the first
    /// downlink symbols of frame `f` are precoded with frame `f-1`'s
    /// precoder so the RRU's air time never idles. The caller is
    /// responsible for checking that the previous frame's precoder exists
    /// and that the symbol's encodes are complete.
    pub fn precode_with_stale(&mut self, symbol: usize) -> Vec<Ready> {
        debug_assert!(self.encode_complete(symbol));
        self.try_precode(symbol)
    }

    /// True once all ZF groups are done.
    pub fn zf_complete(&self) -> bool {
        self.zf_done == self.zf_groups
    }

    fn try_demod(&mut self, symbol: usize) -> Vec<Ready> {
        if self.zf_done == self.zf_groups && !self.demod_dispatched[symbol] {
            self.demod_dispatched[symbol] = true;
            vec![Ready::DemodSymbol { symbol }]
        } else {
            Vec::new()
        }
    }

    fn try_precode(&mut self, symbol: usize) -> Vec<Ready> {
        if !self.precode_dispatched[symbol] {
            self.precode_dispatched[symbol] = true;
            vec![Ready::PrecodeSymbol { symbol }]
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agora_phy::frame::FrameSchedule;

    /// 1 pilot + 2 uplink symbols, 4 antennas, 2 users, 32 SCs, 2 groups.
    fn ul_state() -> FrameState {
        FrameState::new(0, FrameSchedule::uplink(1, 2), 4, 2, 32, 2)
    }

    /// 1 pilot + 2 downlink symbols.
    fn dl_state() -> FrameState {
        FrameState::new(0, FrameSchedule::downlink(1, 2), 4, 2, 32, 2)
    }

    #[test]
    fn packets_unlock_ffts() {
        let mut st = ul_state();
        let r = st.on_packet(0, 3).unwrap();
        assert_eq!(r, vec![Ready::Fft { symbol: 0, antenna: 3 }]);
    }

    #[test]
    fn duplicate_packets_rejected() {
        let mut st = ul_state();
        assert!(st.on_packet(1, 2).is_some());
        // Same (symbol, antenna) again: rejected, no second FFT, and the
        // arrival counter does not double-count toward the barrier.
        assert!(st.on_packet(1, 2).is_none());
        assert_eq!(st.packets_received(1), 1);
        // A different antenna on the same symbol is still accepted.
        assert!(st.on_packet(1, 3).is_some());
        assert_eq!(st.packets_received(1), 2);
    }

    #[test]
    fn packets_missing_counts_undelivered() {
        let mut st = ul_state();
        // 3 packet-bearing symbols (1 pilot + 2 uplink) x 4 antennas.
        assert_eq!(st.packets_missing(), 12);
        let _ = st.on_packet(0, 0);
        let _ = st.on_packet(1, 2);
        let _ = st.on_packet(1, 2); // duplicate must not count
        assert_eq!(st.packets_missing(), 10);
        for sym in 0..3 {
            for ant in 0..4 {
                let _ = st.on_packet(sym, ant);
            }
        }
        assert_eq!(st.packets_missing(), 0);
    }

    #[test]
    fn zf_waits_for_all_pilot_ffts() {
        let mut st = ul_state();
        for ant in 0..3 {
            st.on_packet(0, ant);
            assert!(st.on_fft_done(0, 1).is_empty());
        }
        st.on_packet(0, 3);
        let r = st.on_fft_done(0, 1);
        assert_eq!(r, vec![Ready::AllZf]);
        assert!(st.pilots_complete());
    }

    #[test]
    fn demod_needs_both_fft_and_zf() {
        let mut st = ul_state();
        // Data symbol 1 fully FFT'd before ZF: no demod yet.
        for ant in 0..4 {
            st.on_packet(1, ant);
            st.on_fft_done(1, 1);
        }
        assert!(!st.zf_complete());
        // Finish pilots -> ZF dispatch.
        for ant in 0..4 {
            st.on_packet(0, ant);
        }
        let r = st.on_fft_done(0, 4);
        assert_eq!(r, vec![Ready::AllZf]);
        // ZF completion unlocks the already-FFT'd symbol 1.
        let r = st.on_zf_done(2);
        assert_eq!(r, vec![Ready::DemodSymbol { symbol: 1 }]);
        // Symbol 2 FFT'd after ZF: unlocked by the FFT completion.
        for ant in 0..4 {
            st.on_packet(2, ant);
        }
        let r = st.on_fft_done(2, 4);
        assert_eq!(r, vec![Ready::DemodSymbol { symbol: 2 }]);
    }

    #[test]
    fn demod_completion_unlocks_decode_once() {
        let mut st = ul_state();
        complete_pilots_and_zf(&mut st);
        for ant in 0..4 {
            st.on_packet(1, ant);
        }
        st.on_fft_done(1, 4);
        assert!(st.on_demod_done(1, 16).is_empty());
        let r = st.on_demod_done(1, 16);
        assert_eq!(r, vec![Ready::DecodeSymbol { symbol: 1 }]);
        // No duplicate dispatch.
        assert!(st.on_demod_done(1, 0).is_empty());
    }

    #[test]
    fn frame_completes_after_all_decodes() {
        let mut st = ul_state();
        complete_pilots_and_zf(&mut st);
        for sym in [1usize, 2] {
            for ant in 0..4 {
                st.on_packet(sym, ant);
            }
            st.on_fft_done(sym, 4);
            st.on_demod_done(sym, 32);
        }
        assert!(!st.on_decode_done(1, 2));
        assert!(!st.on_decode_done(2, 1));
        assert!(st.on_decode_done(2, 1));
        assert!(st.uplink_complete());
    }

    #[test]
    fn downlink_flow() {
        let mut st = dl_state();
        // Encodes are available immediately.
        let init = st.initial_work();
        assert_eq!(
            init,
            vec![Ready::EncodeSymbol { symbol: 1 }, Ready::EncodeSymbol { symbol: 2 }]
        );
        // Encode done before ZF: nothing unlocked.
        assert!(st.on_encode_done(1, 2).is_empty());
        complete_pilots_and_zf_expect_precode(&mut st);
        // Second symbol encoded after ZF: unlocked directly.
        let r = st.on_encode_done(2, 2);
        assert_eq!(r, vec![Ready::PrecodeSymbol { symbol: 2 }]);
        // Precode -> IFFT -> frame completion.
        assert!(st.on_precode_done(1, 16).is_empty());
        let r = st.on_precode_done(1, 16);
        assert_eq!(r, vec![Ready::IfftSymbol { symbol: 1 }]);
        st.on_precode_done(2, 32);
        assert!(!st.on_ifft_done(1, 4));
        assert!(st.on_ifft_done(2, 4));
        assert!(st.downlink_complete());
    }

    fn complete_pilots_and_zf(st: &mut FrameState) {
        for ant in 0..4 {
            st.on_packet(0, ant);
        }
        let r = st.on_fft_done(0, 4);
        assert_eq!(r, vec![Ready::AllZf]);
        st.on_zf_done(2);
    }

    fn complete_pilots_and_zf_expect_precode(st: &mut FrameState) {
        for ant in 0..4 {
            st.on_packet(0, ant);
        }
        let r = st.on_fft_done(0, 4);
        assert_eq!(r, vec![Ready::AllZf]);
        // ZF done unlocks precode for the already-encoded symbol 1.
        let r = st.on_zf_done(2);
        assert_eq!(r, vec![Ready::PrecodeSymbol { symbol: 1 }]);
    }

    #[test]
    fn uplink_frame_has_no_initial_work() {
        assert!(ul_state().initial_work().is_empty());
    }

    #[test]
    fn staged_zf_reduce_fires_only_when_all_partials_land() {
        // 2 groups x 3 clusters x 2 reduce shards.
        let mut st =
            FrameState::new(0, FrameSchedule::uplink(1, 1), 4, 2, 32, 2).with_clustered_zf(3, 2);
        for ant in 0..4 {
            st.on_packet(0, ant);
            st.on_packet(1, ant);
            st.on_fft_done(1, 1);
        }
        let r = st.on_fft_done(0, 4);
        assert_eq!(r, vec![Ready::AllZf]);
        // Two clusters across both groups: no reduce yet.
        assert!(st.on_zf_partial_done(0, 2).is_empty());
        assert!(st.on_zf_partial_done(0, 2).is_empty());
        // Third cluster finishes group 0 first, then group 1.
        assert_eq!(st.on_zf_partial_done(0, 1), vec![Ready::ZfReduce { group: 0 }]);
        assert_eq!(st.on_zf_partial_done(1, 1), vec![Ready::ZfReduce { group: 1 }]);
        // One shard of each group: ZF still incomplete, nothing unlocked.
        assert!(st.on_zf_reduce_done(0).is_empty());
        assert!(st.on_zf_reduce_done(1).is_empty());
        assert!(!st.zf_complete());
        // Final shards: group 0 completes silently (group 1 pending),
        // group 1's completion runs the usual post-ZF unlock cascade.
        assert!(st.on_zf_reduce_done(0).is_empty());
        let r = st.on_zf_reduce_done(1);
        assert!(st.zf_complete());
        assert_eq!(r, vec![Ready::DemodSymbol { symbol: 1 }]);
    }
}
