//! Zero-forcing detector/precoder calculation — the "ZF" block.
//!
//! One ZF task takes the estimated channel at a subcarrier and produces
//! the `K x M` uplink detector and the `M x K` downlink precoder. The
//! paper computes ZF once per *group* of 16 subcarriers (75 tasks for
//! 1200 subcarriers), exploiting channel coherence across neighbouring
//! subcarriers; [`ZfConfig::group_size`] reproduces that knob.

use crate::chanest::CsiBuffer;
use agora_math::{normalize_precoder, pinv, CMat, PinvMethod};

/// Configuration of the ZF block.
#[derive(Debug, Clone, Copy)]
pub struct ZfConfig {
    /// Subcarriers sharing one precoder (the paper uses 16).
    pub group_size: usize,
    /// Pseudo-inverse route: direct Gram inverse (fast) or SVD (robust) —
    /// Table 4's "matrix inverse optimisation" ablation.
    pub method: PinvMethod,
}

impl Default for ZfConfig {
    fn default() -> Self {
        Self { group_size: 16, method: PinvMethod::Direct }
    }
}

impl ZfConfig {
    /// Number of ZF tasks for a band of `num_subcarriers`.
    pub fn num_groups(&self, num_subcarriers: usize) -> usize {
        num_subcarriers.div_ceil(self.group_size)
    }
}

/// Balanced partition of the `M` antennas into clusters for the
/// antenna-cluster partitioned ZF path: cluster `i` owns a contiguous
/// row slice of the `M x K` channel, the first `M mod C` clusters one
/// row wider than the rest, so no cluster ever lags more than one
/// antenna behind its siblings. The same plan shards the detector's
/// antenna *columns* across reduce tasks — contiguity in the antenna
/// dimension is what keeps both the partial-Gram operand and the solve
/// RHS slice contiguous.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterPlan {
    antennas: usize,
    clusters: usize,
}

impl ClusterPlan {
    /// Builds a plan splitting `antennas` rows into `clusters` slices.
    ///
    /// # Panics
    /// Panics if `clusters` is zero or exceeds `antennas` (an empty
    /// cluster would publish a zero partial and waste a task).
    pub fn new(antennas: usize, clusters: usize) -> Self {
        assert!(clusters >= 1, "at least one cluster");
        assert!(clusters <= antennas, "more clusters than antennas");
        Self { antennas, clusters }
    }

    /// Number of clusters.
    pub fn clusters(&self) -> usize {
        self.clusters
    }

    /// Total antenna count.
    pub fn antennas(&self) -> usize {
        self.antennas
    }

    /// The contiguous antenna range owned by `cluster`.
    pub fn range(&self, cluster: usize) -> core::ops::Range<usize> {
        assert!(cluster < self.clusters, "cluster out of range");
        let base = self.antennas / self.clusters;
        let rem = self.antennas % self.clusters;
        let start = cluster * base + cluster.min(rem);
        let len = base + usize::from(cluster < rem);
        start..start + len
    }

    /// Widest cluster (the first one under the balanced split) — sizes
    /// per-cluster scratch.
    pub fn max_len(&self) -> usize {
        self.range(0).len()
    }
}

/// Per-frame detector/precoder storage: one pair per subcarrier group.
#[derive(Debug, Clone)]
pub struct ZfBuffer {
    group_size: usize,
    /// Uplink detectors, `K x M`, one per group.
    detectors: Vec<CMat>,
    /// Downlink precoders, `M x K`, power-normalised, one per group.
    precoders: Vec<CMat>,
}

impl ZfBuffer {
    /// Creates a zeroed buffer for `num_subcarriers` with the given group
    /// size.
    pub fn new(m: usize, k: usize, num_subcarriers: usize, group_size: usize) -> Self {
        let groups = num_subcarriers.div_ceil(group_size);
        Self {
            group_size,
            detectors: vec![CMat::zeros(k, m); groups],
            precoders: vec![CMat::zeros(m, k); groups],
        }
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.detectors.len()
    }

    /// Uplink detector for a *subcarrier* (group lookup included).
    pub fn detector_for(&self, sc: usize) -> &CMat {
        &self.detectors[sc / self.group_size]
    }

    /// Downlink precoder for a subcarrier.
    pub fn precoder_for(&self, sc: usize) -> &CMat {
        &self.precoders[sc / self.group_size]
    }

    /// Uplink detector by group index.
    pub fn detector(&self, group: usize) -> &CMat {
        &self.detectors[group]
    }

    /// Downlink precoder by group index.
    pub fn precoder(&self, group: usize) -> &CMat {
        &self.precoders[group]
    }
}

/// Executes one ZF task: computes detector and precoder for subcarrier
/// group `group` from the CSI at the group's first subcarrier.
///
/// The detector is the ZF pseudo-inverse `W = (H^H H)^{-1} H^H`. With TDD
/// reciprocity the downlink channel is `H^T`, so the paper's precoder
/// `H* (H^T H*)^{-1}` is exactly `W^T` (transpose, no conjugate):
/// `H^T W^T = (W H)^T = I`. It is normalised so no antenna exceeds unit
/// power.
pub fn zf_task(csi: &CsiBuffer, cfg: &ZfConfig, group: usize, out: &mut ZfBuffer) {
    let sc = group * cfg.group_size;
    assert!(sc < csi.num_subcarriers(), "group out of range");
    let h = csi.at(sc);
    let det = pinv(h, cfg.method);
    let pre = normalize_precoder(&det.transpose());
    out.detectors[group] = det;
    out.precoders[group] = pre;
}

#[cfg(test)]
mod tests {
    use super::*;
    use agora_math::{CMat, Cf32};

    fn random_csi(m: usize, k: usize, q: usize, seed: u64) -> CsiBuffer {
        let mut state = seed | 1;
        let mut csi = CsiBuffer::new(m, k, q);
        for sc in 0..q {
            let h = CMat::from_fn(m, k, |_, _| {
                let mut next = || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    ((state >> 11) as f32 / (1u64 << 53) as f32) - 0.25
                };
                Cf32::new(next(), next())
            });
            *csi.at_mut(sc) = h;
        }
        csi
    }

    #[test]
    fn cluster_plan_tiles_antennas_balanced() {
        // Non-dividing counts: slices stay contiguous, cover every
        // antenna exactly once, and differ in width by at most one.
        for (m, c) in [(64usize, 1usize), (64, 4), (63, 4), (65, 4), (7, 3), (128, 8), (5, 5)] {
            let plan = ClusterPlan::new(m, c);
            assert_eq!(plan.clusters(), c);
            assert_eq!(plan.antennas(), m);
            let mut next = 0usize;
            let mut widths = Vec::new();
            for i in 0..c {
                let r = plan.range(i);
                assert_eq!(r.start, next, "{m}/{c} cluster {i} not contiguous");
                widths.push(r.len());
                next = r.end;
            }
            assert_eq!(next, m, "{m}/{c} does not cover all antennas");
            let (min, max) = (*widths.iter().min().unwrap(), *widths.iter().max().unwrap());
            assert!(max - min <= 1, "{m}/{c} unbalanced: {widths:?}");
            assert_eq!(plan.max_len(), max);
        }
    }

    #[test]
    #[should_panic(expected = "more clusters than antennas")]
    fn cluster_plan_rejects_empty_clusters() {
        let _ = ClusterPlan::new(4, 5);
    }

    #[test]
    fn group_count_matches_paper() {
        // 1200 subcarriers / 16 per group = 75 ZF tasks (§6.2.1).
        let cfg = ZfConfig::default();
        assert_eq!(cfg.num_groups(1200), 75);
    }

    #[test]
    fn detector_left_inverts_channel() {
        let csi = random_csi(16, 4, 32, 3);
        let cfg = ZfConfig { group_size: 16, method: PinvMethod::Direct };
        let mut buf = ZfBuffer::new(16, 4, 32, cfg.group_size);
        for g in 0..cfg.num_groups(32) {
            zf_task(&csi, &cfg, g, &mut buf);
        }
        for g in 0..2 {
            let wh = buf.detector(g).matmul(csi.at(g * 16));
            assert!(wh.max_abs_diff(&CMat::identity(4)) < 1e-2, "group {g}");
        }
    }

    #[test]
    fn precoder_inverts_reciprocal_channel() {
        let csi = random_csi(8, 2, 16, 9);
        let cfg = ZfConfig { group_size: 16, method: PinvMethod::Direct };
        let mut buf = ZfBuffer::new(8, 2, 16, 16);
        zf_task(&csi, &cfg, 0, &mut buf);
        let pre = buf.precoder(0);
        assert_eq!(pre.shape(), (8, 2));
        // No antenna (row of the M x K precoder) exceeds unit power.
        for a in 0..8 {
            let p: f32 = (0..2).map(|u| pre[(a, u)].norm_sqr()).sum();
            assert!(p <= 1.0 + 1e-4);
        }
        // Zero-forcing through the reciprocal downlink channel: H^T W_dl
        // proportional to the identity.
        let eff = csi.at(0).transpose().matmul(pre);
        let c = eff[(0, 0)];
        assert!(c.abs() > 1e-3);
        let mut ident = CMat::zeros(2, 2);
        for i in 0..2 {
            ident[(i, i)] = c;
        }
        assert!(eff.max_abs_diff(&ident) < 1e-2 * c.abs().max(1.0));
    }

    #[test]
    fn subcarrier_lookup_uses_groups() {
        let csi = random_csi(4, 2, 40, 17);
        let cfg = ZfConfig { group_size: 16, method: PinvMethod::Direct };
        let mut buf = ZfBuffer::new(4, 2, 40, 16);
        for g in 0..cfg.num_groups(40) {
            zf_task(&csi, &cfg, g, &mut buf);
        }
        assert_eq!(buf.num_groups(), 3);
        // Subcarriers 0..15 share group 0's detector.
        assert!(buf.detector_for(0).max_abs_diff(buf.detector(0)) < 1e-9);
        assert!(buf.detector_for(15).max_abs_diff(buf.detector(0)) < 1e-9);
        assert!(buf.detector_for(16).max_abs_diff(buf.detector(1)) < 1e-9);
        assert!(buf.detector_for(39).max_abs_diff(buf.detector(2)) < 1e-9);
    }

    #[test]
    fn svd_method_agrees_with_direct() {
        let csi = random_csi(16, 4, 16, 23);
        let mut direct = ZfBuffer::new(16, 4, 16, 16);
        let mut svd = ZfBuffer::new(16, 4, 16, 16);
        zf_task(&csi, &ZfConfig { group_size: 16, method: PinvMethod::Direct }, 0, &mut direct);
        zf_task(&csi, &ZfConfig { group_size: 16, method: PinvMethod::Svd }, 0, &mut svd);
        assert!(direct.detector(0).max_abs_diff(svd.detector(0)) < 1e-2);
    }
}
