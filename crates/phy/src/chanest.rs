//! Least-squares channel estimation from pilot symbols.
//!
//! For each (antenna, user, subcarrier) resource element where a pilot is
//! known, the LS estimate is simply `H = y / p`. With frequency-orthogonal
//! pilots each user is only observed on every K-th subcarrier, so the
//! estimate is interpolated across the band (the paper's emulated channels
//! are frequency-flat AWGN, making nearest-pilot interpolation exact; a
//! linear interpolator is provided for frequency-selective channels).

use crate::pilots::{PilotPlan, PilotScheme};
use agora_math::{CMat, Cf32};

/// Per-frame channel state: `H[sc]` is the `M x K` channel matrix at each
/// active subcarrier.
#[derive(Debug, Clone)]
pub struct CsiBuffer {
    num_antennas: usize,
    num_users: usize,
    /// Row-major `M x K` per subcarrier.
    h: Vec<CMat>,
}

impl CsiBuffer {
    /// Creates a zeroed CSI buffer for `num_subcarriers` subcarriers.
    pub fn new(num_antennas: usize, num_users: usize, num_subcarriers: usize) -> Self {
        Self {
            num_antennas,
            num_users,
            h: vec![CMat::zeros(num_antennas, num_users); num_subcarriers],
        }
    }

    /// Channel matrix at one subcarrier.
    pub fn at(&self, sc: usize) -> &CMat {
        &self.h[sc]
    }

    /// Mutable channel matrix at one subcarrier.
    pub fn at_mut(&mut self, sc: usize) -> &mut CMat {
        &mut self.h[sc]
    }

    /// Number of subcarriers covered.
    pub fn num_subcarriers(&self) -> usize {
        self.h.len()
    }

    /// Antenna count `M`.
    pub fn num_antennas(&self) -> usize {
        self.num_antennas
    }

    /// User count `K`.
    pub fn num_users(&self) -> usize {
        self.num_users
    }
}

/// Interpolation applied between pilot-bearing subcarriers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Interpolation {
    /// Copy the nearest pilot estimate (exact for flat channels).
    #[default]
    Nearest,
    /// Linear interpolation between surrounding pilots.
    Linear,
}

/// Channel estimator for one pilot plan.
#[derive(Debug, Clone)]
pub struct ChannelEstimator {
    plan: PilotPlan,
    interp: Interpolation,
}

impl ChannelEstimator {
    /// Creates an estimator.
    pub fn new(plan: PilotPlan, interp: Interpolation) -> Self {
        Self { plan, interp }
    }

    /// The pilot plan in use.
    pub fn plan(&self) -> &PilotPlan {
        &self.plan
    }

    /// Processes one received pilot symbol for one antenna.
    ///
    /// `rx` holds the frequency-domain samples of pilot symbol `sym` at
    /// antenna `ant` (post-FFT, active subcarriers only). Raw LS estimates
    /// are written at the pilot positions in `csi`; call
    /// [`Self::interpolate`] after all pilot symbols have been absorbed.
    pub fn absorb_pilot(&self, sym: usize, ant: usize, rx: &[Cf32], csi: &mut CsiBuffer) {
        let q = self.plan.num_subcarriers();
        assert_eq!(rx.len(), q, "pilot symbol length mismatch");
        assert_eq!(csi.num_subcarriers(), q);
        for (sc, &y) in rx.iter().enumerate() {
            if let Some((user, p)) = self.plan.owner(sym, sc) {
                // LS: divide by the known reference (unit-magnitude ZC, so
                // this is numerically benign).
                csi.at_mut(sc)[(ant, user)] = y * p.inv();
            }
        }
    }

    /// Fills non-pilot resource elements of `csi` by interpolation. For
    /// time-orthogonal pilots every subcarrier is observed and this is a
    /// no-op.
    pub fn interpolate(&self, csi: &mut CsiBuffer) {
        if self.plan.scheme() == PilotScheme::TimeOrthogonal {
            return;
        }
        let k = self.plan.num_users();
        let q = self.plan.num_subcarriers();
        let m = csi.num_antennas();
        for user in 0..k {
            // Pilot positions for this user: user, user + k, user + 2k...
            for ant in 0..m {
                match self.interp {
                    Interpolation::Nearest => {
                        for sc in 0..q {
                            let pilot_sc = nearest_pilot(sc, user, k, q);
                            if pilot_sc != sc {
                                let v = csi.at(pilot_sc)[(ant, user)];
                                csi.at_mut(sc)[(ant, user)] = v;
                            }
                        }
                    }
                    Interpolation::Linear => {
                        for sc in 0..q {
                            if sc % k == user {
                                continue;
                            }
                            let below = prev_pilot(sc, user, k);
                            let above = next_pilot(sc, user, k, q);
                            let v = match (below, above) {
                                (Some(b), Some(a)) => {
                                    let t = (sc - b) as f32 / (a - b) as f32;
                                    let hb = csi.at(b)[(ant, user)];
                                    let ha = csi.at(a)[(ant, user)];
                                    hb.scale(1.0 - t) + ha.scale(t)
                                }
                                (Some(b), None) => csi.at(b)[(ant, user)],
                                (None, Some(a)) => csi.at(a)[(ant, user)],
                                (None, None) => Cf32::ZERO,
                            };
                            csi.at_mut(sc)[(ant, user)] = v;
                        }
                    }
                }
            }
        }
    }
}

fn nearest_pilot(sc: usize, user: usize, k: usize, q: usize) -> usize {
    // Round sc to the closest index congruent to `user` mod k.
    let base = (sc / k) * k + user;
    let candidates = [base.checked_sub(k), Some(base), base.checked_add(k)];
    candidates
        .into_iter()
        .flatten()
        .filter(|&c| c < q)
        .min_by_key(|&c| sc.abs_diff(c))
        .unwrap_or(user)
}

fn prev_pilot(sc: usize, user: usize, k: usize) -> Option<usize> {
    let base = (sc / k) * k + user;
    if base <= sc {
        Some(base)
    } else {
        base.checked_sub(k)
    }
}

fn next_pilot(sc: usize, user: usize, k: usize, q: usize) -> Option<usize> {
    let base = (sc / k) * k + user;
    let c = if base >= sc { base } else { base + k };
    if c < q {
        Some(c)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pilots::PilotScheme;

    /// Simulates pilot reception through a known flat channel and checks
    /// the estimator recovers it.
    fn run_roundtrip(scheme: PilotScheme, interp: Interpolation) {
        let (m, k, q) = (4usize, 2usize, 16usize);
        let plan = PilotPlan::new(scheme, k, q);
        let est = ChannelEstimator::new(plan.clone(), interp);
        // Ground-truth flat channel.
        let h_true =
            CMat::from_fn(m, k, |a, u| Cf32::new(0.3 + a as f32 * 0.1, -0.2 + u as f32 * 0.4));
        let mut csi = CsiBuffer::new(m, k, q);
        for sym in 0..plan.pilot_symbols() {
            // Received at antenna `ant`: sum over users of H[ant][u] * pilot_u.
            for ant in 0..m {
                let mut rx = vec![Cf32::ZERO; q];
                for u in 0..k {
                    let tx = plan.tx_pilot(sym, u);
                    for sc in 0..q {
                        rx[sc] += h_true[(ant, u)] * tx[sc];
                    }
                }
                est.absorb_pilot(sym, ant, &rx, &mut csi);
            }
        }
        est.interpolate(&mut csi);
        for sc in 0..q {
            assert!(
                csi.at(sc).max_abs_diff(&h_true) < 1e-4,
                "{scheme:?}/{interp:?}: subcarrier {sc} estimate off"
            );
        }
    }

    #[test]
    fn frequency_orthogonal_nearest_recovers_flat_channel() {
        run_roundtrip(PilotScheme::FrequencyOrthogonal, Interpolation::Nearest);
    }

    #[test]
    fn frequency_orthogonal_linear_recovers_flat_channel() {
        run_roundtrip(PilotScheme::FrequencyOrthogonal, Interpolation::Linear);
    }

    #[test]
    fn time_orthogonal_recovers_flat_channel() {
        run_roundtrip(PilotScheme::TimeOrthogonal, Interpolation::Nearest);
    }

    #[test]
    fn linear_interp_recovers_linearly_varying_channel() {
        // One antenna, one user whose channel varies linearly in sc.
        let (m, k, q) = (1usize, 1usize, 8usize);
        let plan = PilotPlan::new(PilotScheme::FrequencyOrthogonal, k, q);
        let est = ChannelEstimator::new(plan.clone(), Interpolation::Linear);
        let mut csi = CsiBuffer::new(m, k, q);
        let tx = plan.tx_pilot(0, 0);
        let h = |sc: usize| Cf32::new(1.0 + sc as f32 * 0.1, 0.0);
        let rx: Vec<Cf32> = (0..q).map(|sc| h(sc) * tx[sc]).collect();
        est.absorb_pilot(0, 0, &rx, &mut csi);
        est.interpolate(&mut csi);
        // With K=1 every subcarrier is a pilot, so exact.
        for sc in 0..q {
            assert!((csi.at(sc)[(0, 0)] - h(sc)).abs() < 1e-5);
        }
    }

    #[test]
    fn nearest_pilot_helper() {
        // k=4, user=1 -> pilots at 1, 5, 9, 13 (q=16).
        assert_eq!(nearest_pilot(0, 1, 4, 16), 1);
        assert_eq!(nearest_pilot(3, 1, 4, 16), 1); // |3-1|=2 < |3-5|=2, tie -> min index
        assert_eq!(nearest_pilot(4, 1, 4, 16), 5);
        assert_eq!(nearest_pilot(15, 1, 4, 16), 13);
    }

    #[test]
    fn csi_buffer_shapes() {
        let csi = CsiBuffer::new(8, 4, 32);
        assert_eq!(csi.num_antennas(), 8);
        assert_eq!(csi.num_users(), 4);
        assert_eq!(csi.num_subcarriers(), 32);
        assert_eq!(csi.at(0).shape(), (8, 4));
    }
}
