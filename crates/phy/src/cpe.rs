//! Common phase error (CPE) estimation and correction.
//!
//! Residual synchronisation drift — oscillator phase noise, sampling
//! clock offset, or uncompensated CFO left after coarse sync — shows up
//! at the equalizer output as a *common rotation* of each symbol's
//! constellation that grows over the frame. The paper's testbed
//! (Faros/Iris) handles this in its radio calibration; a software PHY
//! that meets real radios needs the same tool, so this module provides a
//! decision-directed CPE estimator and derotator that slots in between
//! equalization and demodulation.
//!
//! Decision-directed estimate: for equalized symbols `y_i` with nearest
//! constellation decisions `d_i`, the residual rotation is
//! `theta = arg( sum_i y_i * conj(d_i) )`. Valid while the true rotation
//! stays within the constellation's decision regions (≈ ±pi/4 for QPSK,
//! tighter for higher orders at low SNR).

use crate::modulation::{map_symbol, unmap_symbol, ModScheme};
use agora_math::Cf32;

/// Estimates the common rotation (radians) of a block of equalized
/// symbols via decision feedback. Returns 0 for an empty block.
pub fn estimate_cpe(scheme: ModScheme, symbols: &[Cf32]) -> f32 {
    let mut acc = Cf32::ZERO;
    for &y in symbols {
        let d = map_symbol(scheme, unmap_symbol(scheme, y));
        // y * conj(d): rotation of y relative to its decision.
        acc += y * d.conj();
    }
    if acc == Cf32::ZERO {
        0.0
    } else {
        acc.arg()
    }
}

/// Derotates symbols in place by `theta` radians.
pub fn correct_cpe(symbols: &mut [Cf32], theta: f32) {
    let rot = Cf32::cis(-theta);
    for z in symbols.iter_mut() {
        *z *= rot;
    }
}

/// One-shot estimate-and-correct; returns the estimated rotation.
pub fn estimate_and_correct(scheme: ModScheme, symbols: &mut [Cf32]) -> f32 {
    let theta = estimate_cpe(scheme, symbols);
    correct_cpe(symbols, theta);
    theta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modulation::modulate;

    fn symbols(scheme: ModScheme, n: usize, seed: u64) -> Vec<Cf32> {
        let bps = scheme.bits_per_symbol();
        let mut state = seed | 1;
        let bits: Vec<u8> = (0..n * bps)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state & 1) as u8
            })
            .collect();
        let mut out = Vec::new();
        modulate(scheme, &bits, &mut out);
        out
    }

    #[test]
    fn zero_rotation_estimates_zero() {
        let syms = symbols(ModScheme::Qam16, 64, 1);
        let theta = estimate_cpe(ModScheme::Qam16, &syms);
        assert!(theta.abs() < 1e-4, "theta = {theta}");
    }

    #[test]
    fn known_rotation_recovered_qpsk() {
        for &true_theta in &[-0.5f32, -0.2, 0.1, 0.4, 0.7] {
            let mut syms = symbols(ModScheme::Qpsk, 128, 2);
            let rot = Cf32::cis(true_theta);
            for z in syms.iter_mut() {
                *z *= rot;
            }
            let est = estimate_cpe(ModScheme::Qpsk, &syms);
            assert!((est - true_theta).abs() < 0.02, "true {true_theta}, estimated {est}");
        }
    }

    #[test]
    fn known_rotation_recovered_qam64_small_angles() {
        // Higher orders have tighter decision regions: valid for small
        // rotations only.
        for &true_theta in &[-0.04f32, 0.02, 0.05] {
            let mut syms = symbols(ModScheme::Qam64, 256, 3);
            let rot = Cf32::cis(true_theta);
            for z in syms.iter_mut() {
                *z *= rot;
            }
            let est = estimate_cpe(ModScheme::Qam64, &syms);
            assert!((est - true_theta).abs() < 0.01, "true {true_theta}, estimated {est}");
        }
    }

    #[test]
    fn correction_restores_constellation() {
        // 0.1 rad keeps 16-QAM's outer ring inside its decision regions
        // (the capture limit for blind decision feedback; larger
        // rotations need the tracked mode the engine uses).
        let clean = symbols(ModScheme::Qam16, 100, 4);
        let mut rotated = clean.clone();
        let rot = Cf32::cis(0.1);
        for z in rotated.iter_mut() {
            *z *= rot;
        }
        let est = estimate_and_correct(ModScheme::Qam16, &mut rotated);
        assert!((est - 0.1).abs() < 0.02, "estimated {est}");
        for (a, b) in clean.iter().zip(rotated.iter()) {
            assert!((*a - *b).abs() < 0.05, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn estimation_tolerates_noise() {
        let mut syms = symbols(ModScheme::Qpsk, 256, 5);
        let rot = Cf32::cis(0.25);
        let mut state = 77u64;
        for z in syms.iter_mut() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let nr = ((state >> 11) as f32 / (1u64 << 53) as f32 - 0.25) * 0.2;
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let ni = ((state >> 11) as f32 / (1u64 << 53) as f32 - 0.25) * 0.2;
            *z = *z * rot + Cf32::new(nr, ni);
        }
        let est = estimate_cpe(ModScheme::Qpsk, &syms);
        assert!((est - 0.25).abs() < 0.05, "estimated {est}");
    }

    #[test]
    fn empty_block_returns_zero() {
        assert_eq!(estimate_cpe(ModScheme::Qam16, &[]), 0.0);
    }
}
