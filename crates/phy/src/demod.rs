//! Soft demodulation: per-bit log-likelihood ratios for the LDPC decoder.
//!
//! The equalizer hands each user a stream of noisy constellation points;
//! this module converts them to LLRs with the max-log approximation
//! `LLR(b) = (min_{s: b=1} |y-s|^2 - min_{s: b=0} |y-s|^2) / sigma^2`
//! (positive LLR means bit 0 more likely, matching `agora-ldpc`).
//!
//! Two paths, as in the paper's AVX-512 demodulator:
//! * [`demod_soft_exact`] — exact max-log over the whole 2-D
//!   constellation; the reference implementation for any scheme.
//! * [`demod_soft`] — per-axis max-log for Gray square QAM. Because the
//!   I and Q labels are independent, the 2-D search factorises into two
//!   1-D searches (8 levels instead of 64 points for 64-QAM), which is
//!   the structure vectorised demappers exploit. Output is bit-exact
//!   equal to the exhaustive search.

use crate::modulation::{constellation, ModScheme};
use agora_math::Cf32;

/// Exact max-log LLRs by exhaustive search over the constellation.
///
/// Output layout: `bits_per_symbol` consecutive LLRs per input symbol,
/// LSB-first (same bit order as [`crate::modulation::modulate`]).
pub fn demod_soft_exact(scheme: ModScheme, symbols: &[Cf32], noise_var: f32, out: &mut Vec<f32>) {
    let pts = constellation(scheme);
    let bps = scheme.bits_per_symbol();
    out.clear();
    out.reserve(symbols.len() * bps);
    let inv_nv = 1.0 / noise_var.max(1e-12);
    for &y in symbols {
        for bit in 0..bps {
            let mut d0 = f32::INFINITY;
            let mut d1 = f32::INFINITY;
            for (v, &s) in pts.iter().enumerate() {
                let d = (y - s).norm_sqr();
                if (v >> bit) & 1 == 0 {
                    d0 = d0.min(d);
                } else {
                    d1 = d1.min(d);
                }
            }
            out.push((d1 - d0) * inv_nv);
        }
    }
}

/// Per-axis PAM alphabet for one QAM axis: `(level, gray_label)` pairs.
fn axis_levels(scheme: ModScheme) -> Vec<(f32, u32)> {
    let half_bits = scheme.bits_per_symbol() / 2;
    let levels = 1usize << half_bits;
    let s = scheme.scale();
    (0..levels as u32)
        .map(|idx| {
            let pam = (2 * idx as i32 - (levels as i32 - 1)) as f32 * s;
            (pam, idx ^ (idx >> 1)) // binary-reflected Gray label
        })
        .collect()
}

/// Fast factorised max-log demapper for Gray square QAM (and BPSK).
///
/// Identical output to [`demod_soft_exact`]; the tests assert closeness to
/// float rounding.
pub fn demod_soft(scheme: ModScheme, symbols: &[Cf32], noise_var: f32, out: &mut Vec<f32>) {
    let bps = scheme.bits_per_symbol();
    out.clear();
    out.reserve(symbols.len() * bps);
    let inv_nv = 1.0 / noise_var.max(1e-12);
    if scheme == ModScheme::Bpsk {
        // d1 - d0 = (y+1)^2 - (y-1)^2 = 4y.
        for &y in symbols {
            out.push(4.0 * y.re * inv_nv);
        }
        return;
    }
    let half = bps / 2;
    let levels = axis_levels(scheme);
    let mut i_llr = [0.0f32; 4];
    let mut q_llr = [0.0f32; 4];
    for &y in symbols {
        axis_max_log(&levels, y.re, half, &mut i_llr);
        axis_max_log(&levels, y.im, half, &mut q_llr);
        for &l in i_llr.iter().take(half) {
            out.push(l * inv_nv);
        }
        for &l in q_llr.iter().take(half) {
            out.push(l * inv_nv);
        }
    }
}

/// 1-D max-log LLRs over a labelled PAM alphabet.
#[inline]
fn axis_max_log(levels: &[(f32, u32)], x: f32, bits: usize, out: &mut [f32; 4]) {
    debug_assert!(bits <= 4);
    let mut d0 = [f32::INFINITY; 4];
    let mut d1 = [f32::INFINITY; 4];
    for &(level, label) in levels {
        let d = (x - level) * (x - level);
        for k in 0..bits {
            if (label >> k) & 1 == 0 {
                if d < d0[k] {
                    d0[k] = d;
                }
            } else if d < d1[k] {
                d1[k] = d;
            }
        }
    }
    for k in 0..bits {
        out[k] = d1[k] - d0[k];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modulation::{map_symbol, modulate};

    fn rand_symbols(scheme: ModScheme, n: usize, noise: f32, seed: u64) -> (Vec<u8>, Vec<Cf32>) {
        let bps = scheme.bits_per_symbol();
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let bits: Vec<u8> = (0..n * bps).map(|_| (next() & 1) as u8).collect();
        let mut syms = Vec::new();
        modulate(scheme, &bits, &mut syms);
        let noisy: Vec<Cf32> = syms
            .iter()
            .map(|&z| {
                let nr = ((next() >> 11) as f32 / (1u64 << 53) as f32 - 0.25) * 4.0 * noise;
                let ni = ((next() >> 11) as f32 / (1u64 << 53) as f32 - 0.25) * 4.0 * noise;
                z + Cf32::new(nr, ni)
            })
            .collect();
        (bits, noisy)
    }

    #[test]
    fn exact_llr_signs_match_bits_noiseless() {
        for scheme in [ModScheme::Qpsk, ModScheme::Qam16, ModScheme::Qam64, ModScheme::Qam256] {
            let bps = scheme.bits_per_symbol();
            for v in 0..scheme.order() as u32 {
                let y = map_symbol(scheme, v);
                let mut llrs = Vec::new();
                demod_soft_exact(scheme, &[y], 0.1, &mut llrs);
                for bit in 0..bps {
                    let expect_one = (v >> bit) & 1 == 1;
                    assert!(
                        (llrs[bit] < 0.0) == expect_one,
                        "{scheme:?} v={v} bit {bit}: llr {}",
                        llrs[bit]
                    );
                }
            }
        }
    }

    #[test]
    fn fast_demod_matches_exact_bitwise() {
        for scheme in [
            ModScheme::Bpsk,
            ModScheme::Qpsk,
            ModScheme::Qam16,
            ModScheme::Qam64,
            ModScheme::Qam256,
        ] {
            let (_bits, noisy) = rand_symbols(scheme, 300, 0.08, 7);
            let mut fast = Vec::new();
            let mut exact = Vec::new();
            demod_soft(scheme, &noisy, 0.13, &mut fast);
            demod_soft_exact(scheme, &noisy, 0.13, &mut exact);
            assert_eq!(fast.len(), exact.len());
            for (i, (f, e)) in fast.iter().zip(exact.iter()).enumerate() {
                assert!((f - e).abs() < 1e-3 * e.abs().max(1.0), "{scheme:?} llr {i}: {f} vs {e}");
            }
        }
    }

    #[test]
    fn bpsk_llr_is_scaled_real_part() {
        let y = [Cf32::new(0.5, 0.3), Cf32::new(-0.2, 0.0)];
        let mut llrs = Vec::new();
        demod_soft(ModScheme::Bpsk, &y, 0.5, &mut llrs);
        assert!((llrs[0] - 4.0 * 0.5 / 0.5).abs() < 1e-5);
        assert!((llrs[1] - 4.0 * -0.2 / 0.5).abs() < 1e-5);
    }

    #[test]
    fn llr_magnitude_scales_with_noise_variance() {
        let (_, noisy) = rand_symbols(ModScheme::Qam16, 10, 0.02, 9);
        let mut low = Vec::new();
        let mut high = Vec::new();
        demod_soft_exact(ModScheme::Qam16, &noisy, 0.1, &mut low);
        demod_soft_exact(ModScheme::Qam16, &noisy, 0.4, &mut high);
        for (l, h) in low.iter().zip(high.iter()) {
            assert!((l - 4.0 * h).abs() < 1e-3);
        }
    }

    #[test]
    fn noisy_soft_decisions_recover_bits_via_sign() {
        let scheme = ModScheme::Qam64;
        // Small noise (well below half the minimum distance).
        let (bits, noisy) = rand_symbols(scheme, 500, scheme.scale() * 0.1, 13);
        let mut llrs = Vec::new();
        demod_soft(scheme, &noisy, 0.1, &mut llrs);
        let decided: Vec<u8> = llrs.iter().map(|&l| (l < 0.0) as u8).collect();
        assert_eq!(bits, decided);
    }

    #[test]
    fn far_outside_point_gets_confident_llrs() {
        let scheme = ModScheme::Qam16;
        let y = [Cf32::new(10.0, 10.0)];
        let mut llrs = Vec::new();
        demod_soft(scheme, &y, 1.0, &mut llrs);
        // The corner point is unambiguous: all LLR magnitudes large.
        assert!(llrs.iter().all(|l| l.abs() > 1.0));
    }
}

/// AVX2-accelerated demapper: identical output to [`demod_soft`], with
/// the per-axis max-log search vectorised eight symbols at a time — the
/// Rust analogue of the paper's AVX-512 demodulation kernel. Falls back
/// to the scalar path on non-AVX2 hardware or for BPSK/odd tails.
pub fn demod_soft_simd(scheme: ModScheme, symbols: &[Cf32], noise_var: f32, out: &mut Vec<f32>) {
    #[cfg(target_arch = "x86_64")]
    {
        if scheme != ModScheme::Bpsk && std::arch::is_x86_feature_detected!("avx2") {
            let bps = scheme.bits_per_symbol();
            out.clear();
            out.reserve(symbols.len() * bps);
            let inv_nv = 1.0 / noise_var.max(1e-12);
            let levels = axis_levels(scheme);
            let half = bps / 2;
            let chunks = symbols.len() / 8;
            unsafe {
                let mut i_llr = [[0.0f32; 8]; 4];
                let mut q_llr = [[0.0f32; 8]; 4];
                for c in 0..chunks {
                    let block = &symbols[c * 8..(c + 1) * 8];
                    let mut re = [0.0f32; 8];
                    let mut im = [0.0f32; 8];
                    for (j, z) in block.iter().enumerate() {
                        re[j] = z.re;
                        im[j] = z.im;
                    }
                    axis_max_log_x8(&levels, &re, half, &mut i_llr);
                    axis_max_log_x8(&levels, &im, half, &mut q_llr);
                    for j in 0..8 {
                        for l in i_llr.iter().take(half) {
                            out.push(l[j] * inv_nv);
                        }
                        for l in q_llr.iter().take(half) {
                            out.push(l[j] * inv_nv);
                        }
                    }
                }
            }
            // Scalar tail.
            let mut tail = Vec::new();
            demod_soft(scheme, &symbols[chunks * 8..], noise_var, &mut tail);
            out.extend_from_slice(&tail);
            return;
        }
    }
    demod_soft(scheme, symbols, noise_var, out);
}

/// Quantised demapper: runs the SIMD max-log demapper and emits
/// saturating `i8` LLRs directly, feeding the engine's fixed-point
/// decoding plane without a second pass over a stored `f32` buffer.
///
/// `scratch` is caller-owned reuse space for the intermediate float LLRs
/// (cleared and refilled here; no allocation once warm). Output is
/// appended to `out`, `bits_per_symbol` LLRs per input symbol, quantised
/// as `round(llr * scale)` clamped to `[-127, 127]` (see
/// [`agora_ldpc::quantize_llrs`]).
pub fn demod_soft_i8(
    scheme: ModScheme,
    symbols: &[Cf32],
    noise_var: f32,
    scale: f32,
    scratch: &mut Vec<f32>,
    out: &mut Vec<i8>,
) {
    demod_soft_simd(scheme, symbols, noise_var, scratch);
    let start = out.len();
    out.resize(start + scratch.len(), 0);
    agora_ldpc::quantize_llrs(scratch, &mut out[start..], scale);
}

/// Eight-lane 1-D max-log over a labelled PAM alphabet: for each axis
/// bit, `out[k][lane] = min d(bit=1) - min d(bit=0)`.
///
/// # Safety
/// Caller must ensure AVX2 support.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn axis_max_log_x8(
    levels: &[(f32, u32)],
    xs: &[f32; 8],
    bits: usize,
    out: &mut [[f32; 8]; 4],
) {
    use core::arch::x86_64::*;
    let x = _mm256_loadu_ps(xs.as_ptr());
    let inf = _mm256_set1_ps(f32::INFINITY);
    let mut d0 = [inf; 4];
    let mut d1 = [inf; 4];
    for &(level, label) in levels {
        let diff = _mm256_sub_ps(x, _mm256_set1_ps(level));
        let d = _mm256_mul_ps(diff, diff);
        for (k, (d0k, d1k)) in d0.iter_mut().zip(d1.iter_mut()).enumerate().take(bits) {
            if (label >> k) & 1 == 0 {
                *d0k = _mm256_min_ps(*d0k, d);
            } else {
                *d1k = _mm256_min_ps(*d1k, d);
            }
        }
    }
    for k in 0..bits {
        let llr = _mm256_sub_ps(d1[k], d0[k]);
        _mm256_storeu_ps(out[k].as_mut_ptr(), llr);
    }
}

#[cfg(test)]
mod simd_tests {
    use super::*;
    use crate::modulation::modulate;

    #[test]
    fn simd_demod_matches_scalar_exactly() {
        for scheme in [ModScheme::Qpsk, ModScheme::Qam16, ModScheme::Qam64, ModScheme::Qam256] {
            let bps = scheme.bits_per_symbol();
            let mut state = 0xDEADBEEFu64;
            let bits: Vec<u8> = (0..bps * 100)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    (state & 1) as u8
                })
                .collect();
            let mut syms = Vec::new();
            modulate(scheme, &bits, &mut syms);
            // Add deterministic noise.
            for (i, z) in syms.iter_mut().enumerate() {
                *z += Cf32::new(
                    ((i * 37 % 100) as f32 / 100.0 - 0.5) * 0.1,
                    ((i * 59 % 100) as f32 / 100.0 - 0.5) * 0.1,
                );
            }
            let mut scalar = Vec::new();
            let mut simd = Vec::new();
            demod_soft(scheme, &syms, 0.07, &mut scalar);
            demod_soft_simd(scheme, &syms, 0.07, &mut simd);
            assert_eq!(scalar.len(), simd.len());
            for (i, (a, b)) in scalar.iter().zip(simd.iter()).enumerate() {
                assert!(
                    (a - b).abs() <= 1e-4 * a.abs().max(1.0),
                    "{scheme:?} llr {i}: scalar {a} simd {b}"
                );
            }
        }
    }

    #[test]
    fn simd_demod_handles_non_multiple_of_eight() {
        let syms: Vec<Cf32> = (0..13).map(|i| Cf32::cis(0.41 * i as f32).scale(0.8)).collect();
        let mut scalar = Vec::new();
        let mut simd = Vec::new();
        demod_soft(ModScheme::Qam16, &syms, 0.1, &mut scalar);
        demod_soft_simd(ModScheme::Qam16, &syms, 0.1, &mut simd);
        assert_eq!(scalar.len(), simd.len());
        for (a, b) in scalar.iter().zip(simd.iter()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn simd_demod_bpsk_falls_back() {
        let syms = [Cf32::new(0.5, 0.0), Cf32::new(-0.7, 0.0)];
        let mut out = Vec::new();
        demod_soft_simd(ModScheme::Bpsk, &syms, 0.5, &mut out);
        assert!((out[0] - 4.0 * 0.5 / 0.5).abs() < 1e-5);
    }

    #[test]
    fn i8_demod_is_quantized_simd_output() {
        let syms: Vec<Cf32> = (0..21).map(|i| Cf32::cis(0.73 * i as f32).scale(0.9)).collect();
        let mut f = Vec::new();
        demod_soft_simd(ModScheme::Qam16, &syms, 0.1, &mut f);
        let mut scratch = Vec::new();
        let mut q = vec![7i8; 3]; // existing content must be preserved (append semantics)
        demod_soft_i8(ModScheme::Qam16, &syms, 0.1, 4.0, &mut scratch, &mut q);
        assert_eq!(q.len(), 3 + f.len());
        assert_eq!(&q[..3], &[7, 7, 7]);
        for (i, (&fi, &qi)) in f.iter().zip(q[3..].iter()).enumerate() {
            let expect = (fi * 4.0).round().clamp(-127.0, 127.0) as i8;
            assert_eq!(qi, expect, "llr {i}: f32 {fi}");
        }
    }
}
