//! Pilot sequences and pilot multiplexing schemes.
//!
//! Users announce themselves with known pilot symbols from which the base
//! station estimates the channel matrix `H`. The paper uses
//! *frequency-orthogonal* pilots in the emulated-RRU experiments (users
//! occupy interleaved subcarriers of one pilot symbol, §5.2) and
//! *time-orthogonal full-band Zadoff-Chu* pilots in the over-the-air
//! experiments (§6.1.3). Both schemes are implemented.

use agora_math::Cf32;

/// Generates a Zadoff-Chu sequence of length `n` with root `root`
/// (`gcd(root, n) == 1` required for the CAZAC property).
///
/// ZC sequences have constant amplitude and zero autocorrelation, which is
/// why LTE/5G use them for pilots: the receiver sees unit-magnitude
/// reference symbols on every subcarrier regardless of the channel.
pub fn zadoff_chu(root: usize, n: usize) -> Vec<Cf32> {
    assert!(n > 0, "sequence length must be positive");
    assert!(gcd(root, n) == 1, "root must be coprime with length");
    let cf = (n % 2) as f64; // 0 for even length, 1 for odd
    (0..n)
        .map(|k| {
            let kf = k as f64;
            let phase = -std::f64::consts::PI * root as f64 * kf * (kf + cf) / n as f64;
            Cf32::new(phase.cos() as f32, phase.sin() as f32)
        })
        .collect()
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// How users' pilots are kept separable at the base station.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PilotScheme {
    /// All users transmit in the same pilot symbol on interleaved
    /// subcarriers: user `k` occupies subcarriers `k, k+K, k+2K, ...`
    /// (one pilot symbol total — the emulated-RRU configuration).
    FrequencyOrthogonal,
    /// Each user gets its own full-band pilot symbol (K pilot symbols —
    /// the over-the-air configuration).
    TimeOrthogonal,
}

impl PilotScheme {
    /// Number of pilot symbols needed at the start of each frame.
    pub fn pilot_symbols(self, num_users: usize) -> usize {
        match self {
            PilotScheme::FrequencyOrthogonal => 1,
            PilotScheme::TimeOrthogonal => num_users,
        }
    }
}

/// Pilot plan for one cell: which user transmits what on which pilot
/// symbol/subcarrier, plus the reference values the estimator divides by.
#[derive(Debug, Clone)]
pub struct PilotPlan {
    scheme: PilotScheme,
    num_users: usize,
    num_subcarriers: usize,
    /// Per-user reference sequence over the full band (ZC-based).
    refs: Vec<Vec<Cf32>>,
}

impl PilotPlan {
    /// Builds a pilot plan. Reference sequences are Zadoff-Chu with
    /// per-user roots (odd roots, coprime with the length by
    /// construction).
    pub fn new(scheme: PilotScheme, num_users: usize, num_subcarriers: usize) -> Self {
        assert!(num_users > 0 && num_subcarriers >= num_users);
        let refs = (0..num_users)
            .map(|u| {
                // Choose an odd root coprime with the length.
                let mut root = 2 * u + 1;
                while gcd(root, num_subcarriers) != 1 {
                    root += 2;
                }
                zadoff_chu(root, num_subcarriers)
            })
            .collect();
        Self { scheme, num_users, num_subcarriers, refs }
    }

    /// The multiplexing scheme.
    pub fn scheme(&self) -> PilotScheme {
        self.scheme
    }

    /// Number of pilot symbols per frame.
    pub fn pilot_symbols(&self) -> usize {
        self.scheme.pilot_symbols(self.num_users)
    }

    /// The frequency-domain samples user `user` transmits during pilot
    /// symbol `sym` (zero on subcarriers it does not own).
    pub fn tx_pilot(&self, sym: usize, user: usize) -> Vec<Cf32> {
        assert!(user < self.num_users && sym < self.pilot_symbols());
        let mut out = vec![Cf32::ZERO; self.num_subcarriers];
        match self.scheme {
            PilotScheme::FrequencyOrthogonal => {
                let mut sc = user;
                while sc < self.num_subcarriers {
                    out[sc] = self.refs[user][sc];
                    sc += self.num_users;
                }
            }
            PilotScheme::TimeOrthogonal => {
                if sym == user {
                    out.copy_from_slice(&self.refs[user]);
                }
            }
        }
        out
    }

    /// The known reference value for `(pilot symbol, subcarrier)` and the
    /// user that owns that resource element, or `None` if unused.
    pub fn owner(&self, sym: usize, sc: usize) -> Option<(usize, Cf32)> {
        match self.scheme {
            PilotScheme::FrequencyOrthogonal => {
                let user = sc % self.num_users;
                Some((user, self.refs[user][sc]))
            }
            PilotScheme::TimeOrthogonal => {
                let user = sym;
                if user < self.num_users {
                    Some((user, self.refs[user][sc]))
                } else {
                    None
                }
            }
        }
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Number of (active) subcarriers.
    pub fn num_subcarriers(&self) -> usize {
        self.num_subcarriers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zc_has_constant_amplitude() {
        for (root, n) in [(1usize, 63usize), (5, 139), (7, 300)] {
            let zc = zadoff_chu(root, n);
            for z in &zc {
                assert!((z.abs() - 1.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn zc_zero_autocorrelation() {
        let n = 139; // prime length gives ideal CAZAC
        let zc = zadoff_chu(5, n);
        for shift in 1..n {
            let corr: Cf32 = (0..n).map(|k| zc[k].conj_mul(zc[(k + shift) % n])).sum();
            assert!(corr.abs() < 1e-3 * n as f32, "shift {shift}: |corr| = {}", corr.abs());
        }
    }

    #[test]
    fn zc_rejects_non_coprime_root() {
        let result = std::panic::catch_unwind(|| zadoff_chu(3, 300));
        assert!(result.is_err());
    }

    #[test]
    fn frequency_orthogonal_users_disjoint() {
        let plan = PilotPlan::new(PilotScheme::FrequencyOrthogonal, 4, 64);
        assert_eq!(plan.pilot_symbols(), 1);
        let pilots: Vec<Vec<Cf32>> = (0..4).map(|u| plan.tx_pilot(0, u)).collect();
        for sc in 0..64 {
            let active: Vec<usize> = (0..4).filter(|&u| pilots[u][sc] != Cf32::ZERO).collect();
            assert_eq!(active.len(), 1, "subcarrier {sc} owned by {active:?}");
            assert_eq!(active[0], sc % 4);
        }
    }

    #[test]
    fn time_orthogonal_one_user_per_symbol() {
        let plan = PilotPlan::new(PilotScheme::TimeOrthogonal, 3, 32);
        assert_eq!(plan.pilot_symbols(), 3);
        for sym in 0..3 {
            for u in 0..3 {
                let p = plan.tx_pilot(sym, u);
                let energy: f32 = p.iter().map(|z| z.norm_sqr()).sum();
                if u == sym {
                    assert!(energy > 31.0); // full band, unit amplitude
                } else {
                    assert_eq!(energy, 0.0);
                }
            }
        }
    }

    #[test]
    fn owner_covers_every_resource_element() {
        let plan = PilotPlan::new(PilotScheme::FrequencyOrthogonal, 4, 64);
        for sc in 0..64 {
            let (user, r) = plan.owner(0, sc).unwrap();
            assert_eq!(user, sc % 4);
            assert!((r.abs() - 1.0).abs() < 1e-5);
        }
        let plan = PilotPlan::new(PilotScheme::TimeOrthogonal, 2, 16);
        assert!(plan.owner(0, 5).is_some());
        assert!(plan.owner(5, 0).is_none());
    }

    #[test]
    fn owner_reference_matches_transmitted_value() {
        let plan = PilotPlan::new(PilotScheme::FrequencyOrthogonal, 4, 64);
        for sc in 0..64 {
            let (user, r) = plan.owner(0, sc).unwrap();
            let tx = plan.tx_pilot(0, user);
            assert_eq!(tx[sc], r);
        }
    }
}
