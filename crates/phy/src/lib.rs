//! # agora-phy — physical-layer signal processing kernels
//!
//! The per-block kernels of Figure 1(b), independent of threading:
//!
//! * [`modulation`] / [`demod`]: Gray QAM mapping and max-log soft LLRs.
//! * [`pilots`]: Zadoff-Chu sequences, frequency/time-orthogonal plans.
//! * [`chanest`]: LS channel estimation into the CSI buffer.
//! * [`zf`]: zero-forcing detector/precoder calculation per group.
//! * [`detect`]: the wider linear detector menu (ZF / MMSE / conjugate).
//! * [`cpe`]: decision-directed common-phase-error tracking.
//! * [`equalize`] / [`precode`]: the uplink and downlink linear stages.
//! * [`scrambler`]: Gold-sequence bit scrambling.
//! * [`iq`]: 12+12-bit packed fronthaul sample codec.
//! * [`frame`]: cell configuration and the TDD symbol schedule.
//!
//! The `agora-core` engine composes these kernels into tasks; everything
//! here is plain single-threaded code operating on slices.

pub mod chanest;
pub mod cpe;
pub mod demod;
pub mod detect;
pub mod equalize;
pub mod frame;
pub mod iq;
pub mod modulation;
pub mod pilots;
pub mod precode;
pub mod scrambler;
pub mod zf;

pub use chanest::{ChannelEstimator, CsiBuffer, Interpolation};
pub use cpe::{correct_cpe, estimate_and_correct, estimate_cpe};
pub use demod::{demod_soft, demod_soft_exact, demod_soft_i8, demod_soft_simd};
pub use detect::Detector;
pub use frame::{CellConfig, FrameSchedule, LdpcParams, SymbolType};
pub use modulation::{demodulate_hard, modulate, ModScheme};
pub use pilots::{zadoff_chu, PilotPlan, PilotScheme};
pub use zf::{zf_task, ClusterPlan, ZfBuffer, ZfConfig};
