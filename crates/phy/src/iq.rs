//! Fixed-point IQ sample packing.
//!
//! The RRU fronthaul carries "24-bit IQ samples" (§5): 12-bit signed I and
//! 12-bit signed Q packed into three bytes. Agora "pads them to be 32-bit
//! before performing computation" — i.e. converts to a float pair. This
//! module implements the 3-byte wire codec and the float conversion (the
//! data-type-conversion kernel the paper vectorises with AVX-512; the
//! wider i16 path lives in `agora_math::simd`).

use agora_math::Cf32;

/// Bytes per packed complex sample.
pub const BYTES_PER_SAMPLE: usize = 3;
/// Full-scale magnitude of a 12-bit component.
pub const FULL_SCALE: f32 = 2048.0;

/// Packs one complex float (clamped to ±1.0 full scale) into 3 bytes:
/// 12-bit I in bits [0..12), 12-bit Q in bits [12..24), little-endian.
#[inline]
pub fn pack_sample(z: Cf32, out: &mut [u8; 3]) {
    let q12 = |x: f32| -> u16 {
        let v = (x * FULL_SCALE).round().clamp(-2048.0, 2047.0) as i16;
        (v as u16) & 0x0FFF
    };
    let i = q12(z.re) as u32;
    let q = q12(z.im) as u32;
    let word = i | (q << 12);
    out[0] = word as u8;
    out[1] = (word >> 8) as u8;
    out[2] = (word >> 16) as u8;
}

/// Unpacks one 3-byte sample to a complex float in [-1, 1).
#[inline]
pub fn unpack_sample(b: &[u8; 3]) -> Cf32 {
    let word = b[0] as u32 | ((b[1] as u32) << 8) | ((b[2] as u32) << 16);
    let sext12 = |v: u32| -> i32 { ((v as i32) << 20) >> 20 };
    let i = sext12(word & 0xFFF);
    let q = sext12((word >> 12) & 0xFFF);
    Cf32::new(i as f32 / FULL_SCALE, q as f32 / FULL_SCALE)
}

/// Packs a slice of complex samples into a byte buffer
/// (`samples.len() * 3` bytes).
pub fn pack_samples(samples: &[Cf32], out: &mut Vec<u8>) {
    out.clear();
    out.reserve(samples.len() * BYTES_PER_SAMPLE);
    let mut buf = [0u8; 3];
    for &z in samples {
        pack_sample(z, &mut buf);
        out.extend_from_slice(&buf);
    }
}

/// Unpacks a byte buffer into complex samples.
///
/// # Panics
/// Panics if `bytes.len()` is not a multiple of 3.
pub fn unpack_samples(bytes: &[u8], out: &mut Vec<Cf32>) {
    assert_eq!(bytes.len() % BYTES_PER_SAMPLE, 0, "byte count must be a multiple of 3");
    out.clear();
    out.reserve(bytes.len() / BYTES_PER_SAMPLE);
    for chunk in bytes.chunks_exact(BYTES_PER_SAMPLE) {
        out.push(unpack_sample(&[chunk[0], chunk[1], chunk[2]]));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_within_quantisation_error() {
        let step = 1.0 / FULL_SCALE;
        for (re, im) in [(0.0f32, 0.0f32), (0.5, -0.5), (0.999, -1.0), (-0.123, 0.77)] {
            let z = Cf32::new(re, im);
            let mut b = [0u8; 3];
            pack_sample(z, &mut b);
            let back = unpack_sample(&b);
            assert!((back.re - re).abs() <= step, "re {re} -> {}", back.re);
            assert!((back.im - im).abs() <= step, "im {im} -> {}", back.im);
        }
    }

    #[test]
    fn saturation_clamps_gracefully() {
        let mut b = [0u8; 3];
        pack_sample(Cf32::new(5.0, -5.0), &mut b);
        let back = unpack_sample(&b);
        assert!((back.re - 2047.0 / 2048.0).abs() < 1e-4);
        assert!((back.im + 1.0).abs() < 1e-4);
    }

    #[test]
    fn slice_roundtrip() {
        let samples: Vec<Cf32> = (0..1000)
            .map(|i| {
                Cf32::new(
                    ((i * 37) % 4000) as f32 / 4000.0 - 0.5,
                    ((i * 59) % 4000) as f32 / 4000.0 - 0.5,
                )
            })
            .collect();
        let mut bytes = Vec::new();
        pack_samples(&samples, &mut bytes);
        assert_eq!(bytes.len(), 3000);
        let mut back = Vec::new();
        unpack_samples(&bytes, &mut back);
        assert_eq!(back.len(), samples.len());
        for (a, b) in samples.iter().zip(back.iter()) {
            assert!((a.re - b.re).abs() <= 1.0 / FULL_SCALE);
            assert!((a.im - b.im).abs() <= 1.0 / FULL_SCALE);
        }
    }

    #[test]
    fn negative_values_sign_extend() {
        let mut b = [0u8; 3];
        pack_sample(Cf32::new(-1.0, -0.25), &mut b);
        let back = unpack_sample(&b);
        assert!(back.re < -0.99);
        assert!((back.im + 0.25).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "multiple of 3")]
    fn odd_byte_count_rejected() {
        let mut out = Vec::new();
        unpack_samples(&[0u8; 4], &mut out);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn pack_unpack_identity_on_quantised_values(i in -2048i32..2048, q in -2048i32..2048) {
            let z = Cf32::new(i as f32 / FULL_SCALE, q as f32 / FULL_SCALE);
            let mut b = [0u8; 3];
            pack_sample(z, &mut b);
            let back = unpack_sample(&b);
            // Values already on the quantisation grid roundtrip exactly,
            // except +2048/2048 which clamps to 2047.
            let expect_re = (i.min(2047)) as f32 / FULL_SCALE;
            let expect_im = (q.min(2047)) as f32 / FULL_SCALE;
            prop_assert!((back.re - expect_re).abs() < 1e-6);
            prop_assert!((back.im - expect_im).abs() < 1e-6);
        }

        /// Full-scale edges: any float in [-1.25, 1.25] — including ±1.0
        /// exactly and values straddling the 2047/-2048 clamp — must pack
        /// to the clamped quantisation grid and unpack within half a step
        /// (or exactly the clamp rail when saturated).
        #[test]
        fn full_scale_edges_clamp_to_rails(
            re in -1.25f32..1.25,
            im in -1.25f32..1.25,
            exact_edge in any::<bool>(),
        ) {
            // Half the cases exercise the exact ±1.0 / rail-straddling
            // values rather than a uniform draw.
            let (re, im) = if exact_edge {
                (
                    if re < 0.0 { -1.0 } else { 1.0 },
                    // Straddle the positive clamp: 2046.5/2048 .. 2048.5/2048.
                    2046.5 / FULL_SCALE + (im.abs() % (2.0 / FULL_SCALE)),
                )
            } else {
                (re, im)
            };
            let z = Cf32::new(re, im);
            let mut b = [0u8; 3];
            pack_sample(z, &mut b);
            let back = unpack_sample(&b);
            let expect = |x: f32| -> f32 {
                (x * FULL_SCALE).round().clamp(-2048.0, 2047.0) / FULL_SCALE
            };
            prop_assert!((back.re - expect(re)).abs() < 1e-6, "re {re} -> {} want {}", back.re, expect(re));
            prop_assert!((back.im - expect(im)).abs() < 1e-6, "im {im} -> {} want {}", back.im, expect(im));
            // The decoded value never escapes the representable range.
            prop_assert!((-1.0..=2047.0 / FULL_SCALE).contains(&back.re));
            prop_assert!((-1.0..=2047.0 / FULL_SCALE).contains(&back.im));
        }

        /// +1.0 saturates to the positive rail, -1.0 is exactly
        /// representable, and both survive a slice roundtrip.
        #[test]
        fn unit_magnitude_slice_roundtrip(n in 1usize..64) {
            let samples: Vec<Cf32> = (0..n)
                .map(|i| match i % 4 {
                    0 => Cf32::new(1.0, -1.0),
                    1 => Cf32::new(-1.0, 1.0),
                    2 => Cf32::new(2047.0 / FULL_SCALE, -2048.0 / FULL_SCALE),
                    _ => Cf32::new(2047.5 / FULL_SCALE, -2048.5 / FULL_SCALE),
                })
                .collect();
            let mut bytes = Vec::new();
            pack_samples(&samples, &mut bytes);
            let mut back = Vec::new();
            unpack_samples(&bytes, &mut back);
            prop_assert_eq!(back.len(), samples.len());
            for (orig, got) in samples.iter().zip(back.iter()) {
                let expect = |x: f32| (x * FULL_SCALE).round().clamp(-2048.0, 2047.0) / FULL_SCALE;
                prop_assert!((got.re - expect(orig.re)).abs() < 1e-6);
                prop_assert!((got.im - expect(orig.im)).abs() < 1e-6);
            }
        }
    }
}
