//! Downlink precoding — beamforming user streams onto antenna streams.
//!
//! The dual of equalization: for each data subcarrier the `K` modulated
//! user symbols are multiplied by the `M x K` ZF precoder to produce the
//! `M` antenna samples: `y = W_dl x`. The engine fuses modulation into
//! this block (Table 2); this module holds the linear kernel. Like
//! equalization, both entry points dispatch through `agora-math`'s SIMD
//! tier and are bit-identical between the scalar and AVX2 kernels.

use crate::zf::ZfBuffer;
use agora_math::{gemm, Cf32, Gemm};

/// Precodes one subcarrier: `antennas_out = W_dl * users_in`.
pub fn precode_one(zf: &ZfBuffer, sc: usize, users_in: &[Cf32], antennas_out: &mut [Cf32]) {
    let w = zf.precoder_for(sc);
    assert_eq!(users_in.len(), w.cols(), "user count mismatch");
    assert_eq!(antennas_out.len(), w.rows(), "antenna count mismatch");
    agora_math::gemv(w.rows(), w.cols(), w.as_slice(), users_in, antennas_out);
}

/// Precodes a batch of `B` consecutive subcarriers sharing one precoder
/// group. `users_in` is `K x B` row-major, `antennas_out` is `M x B`
/// row-major (per antenna, adjacent subcarriers contiguous — the layout
/// the IFFT stage consumes).
pub fn precode_batch(
    zf: &ZfBuffer,
    first_sc: usize,
    batch: usize,
    plan: &Gemm,
    users_in: &[Cf32],
    antennas_out: &mut [Cf32],
) {
    let w = zf.precoder_for(first_sc);
    assert_eq!(users_in.len(), w.cols() * batch);
    assert_eq!(antennas_out.len(), w.rows() * batch);
    plan.run(w.as_slice(), users_in, antennas_out);
}

/// Reference batch precoding with the generic GEMM.
pub fn precode_batch_generic(
    zf: &ZfBuffer,
    first_sc: usize,
    batch: usize,
    users_in: &[Cf32],
    antennas_out: &mut [Cf32],
) {
    let w = zf.precoder_for(first_sc);
    gemm(w.rows(), w.cols(), batch, w.as_slice(), users_in, antennas_out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chanest::CsiBuffer;
    use crate::zf::{zf_task, ZfConfig};
    use agora_math::{CMat, PinvMethod};

    fn setup(m: usize, k: usize, seed: u64) -> (CsiBuffer, ZfBuffer) {
        let mut state = seed | 1;
        let mut csi = CsiBuffer::new(m, k, 16);
        for sc in 0..16 {
            *csi.at_mut(sc) = CMat::from_fn(m, k, |_, _| {
                let mut next = || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    ((state >> 11) as f32 / (1u64 << 53) as f32) - 0.25
                };
                Cf32::new(next(), next())
            });
        }
        let cfg = ZfConfig { group_size: 16, method: PinvMethod::Direct };
        let mut zf = ZfBuffer::new(m, k, 16, 16);
        zf_task(&csi, &cfg, 0, &mut zf);
        (csi, zf)
    }

    #[test]
    fn precoded_signal_separates_at_users() {
        // With TDD reciprocity users receive through the transpose
        // channel: r = H^T y = H^T W_dl x ∝ x (zero inter-user
        // interference is the whole point of zero-forcing).
        let (csi, zf) = setup(16, 4, 3);
        let x: Vec<Cf32> = (0..4).map(|u| Cf32::new(1.0 + u as f32, -0.5 * u as f32)).collect();
        let mut ant = vec![Cf32::ZERO; 16];
        precode_one(&zf, 0, &x, &mut ant);
        let r = csi.at(0).transpose().matvec(&ant);
        // Proportionality: r_k / x_k equal across users (real positive c).
        let c0 = r[0] * x[0].inv();
        for u in 1..4 {
            let cu = r[u] * x[u].inv();
            assert!((cu - c0).abs() < 1e-2 * c0.abs(), "user {u}: {cu:?} vs {c0:?}");
        }
        // And cross-user leakage is small relative to signal.
        assert!(c0.abs() > 1e-3);
    }

    #[test]
    fn batch_matches_per_subcarrier() {
        let (m, k, b) = (16usize, 4usize, 8usize);
        let (_csi, zf) = setup(m, k, 7);
        let users: Vec<Cf32> =
            (0..k * b).map(|i| Cf32::new((i % 5) as f32 * 0.2, (i % 3) as f32 * -0.1)).collect();
        let plan = Gemm::plan(m, k, b);
        let mut batch_out = vec![Cf32::ZERO; m * b];
        precode_batch(&zf, 0, b, &plan, &users, &mut batch_out);
        for sc in 0..b {
            let x: Vec<Cf32> = (0..k).map(|u| users[u * b + sc]).collect();
            let mut single = vec![Cf32::ZERO; m];
            precode_one(&zf, sc, &x, &mut single);
            for a in 0..m {
                assert!((batch_out[a * b + sc] - single[a]).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn generic_matches_planned() {
        let (m, k, b) = (16usize, 4usize, 8usize);
        let (_csi, zf) = setup(m, k, 11);
        let users: Vec<Cf32> =
            (0..k * b).map(|i| Cf32::new(i as f32 * 0.01, -(i as f32) * 0.02)).collect();
        let plan = Gemm::plan(m, k, b);
        let mut a = vec![Cf32::ZERO; m * b];
        let mut g = vec![Cf32::ZERO; m * b];
        precode_batch(&zf, 0, b, &plan, &users, &mut a);
        precode_batch_generic(&zf, 0, b, &users, &mut g);
        for (x, y) in a.iter().zip(g.iter()) {
            assert!((*x - *y).abs() < 1e-4);
        }
    }

    /// Scalar and AVX2 plans must precode to the same bits.
    #[test]
    fn tier_parity_is_bit_exact() {
        use agora_math::SimdTier;
        let (m, k, b) = (16usize, 4usize, 8usize);
        let (_csi, zf) = setup(m, k, 19);
        let users: Vec<Cf32> =
            (0..k * b).map(|i| Cf32::new(i as f32 * 0.03, -(i as f32) * 0.05)).collect();
        let mut scalar_out = vec![Cf32::ZERO; m * b];
        let mut simd_out = vec![Cf32::ZERO; m * b];
        let scalar_plan = Gemm::plan_with_tier(m, k, b, SimdTier::Scalar);
        let simd_plan = Gemm::plan_with_tier(m, k, b, SimdTier::detect());
        precode_batch(&zf, 0, b, &scalar_plan, &users, &mut scalar_out);
        precode_batch(&zf, 0, b, &simd_plan, &users, &mut simd_out);
        for (x, y) in scalar_out.iter().zip(simd_out.iter()) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }

    #[test]
    fn antenna_power_bounded_for_unit_symbols() {
        let (m, k) = (16usize, 4usize);
        let (_csi, zf) = setup(m, k, 13);
        let x = vec![Cf32::new(0.5, 0.5); k]; // |x_k| <= 1
        let mut ant = vec![Cf32::ZERO; m];
        precode_one(&zf, 0, &x, &mut ant);
        // Normalised precoder rows have power <= 1, so by Cauchy-Schwarz
        // each antenna sample is bounded by sqrt(K) * max|x|.
        let bound = (k as f32).sqrt() * (0.5f32 * 0.5 + 0.5 * 0.5).sqrt() + 1e-4;
        for (i, a) in ant.iter().enumerate() {
            assert!(a.abs() <= bound, "antenna {i}: {} > {bound}", a.abs());
        }
    }
}
