//! Uplink equalization — demultiplexing user streams from antenna streams.
//!
//! For each data subcarrier the received `M`-vector `y` (one sample per
//! antenna) is multiplied by the `K x M` ZF detector to recover the `K`
//! user symbols: `x_hat = W y`. The engine fuses this block with
//! demodulation (Table 2); the fusion lives in the engine, the kernel
//! lives here. Batched variants process 8 consecutive subcarriers per
//! call so one task consumes a whole cache line of each antenna's data —
//! the paper's §4.1 "memory access efficiency" optimisation.
//!
//! Both entry points run vectorized on AVX2 hardware: [`equalize_one`]'s
//! GEMV and the planned GEMM behind [`equalize_batch`] dispatch through
//! `agora-math`'s SIMD tier (the plan pins the tier at construction, so
//! the per-subcarrier inner loop pays no dispatch). The scalar and vector
//! kernels are bit-identical.

use crate::zf::ZfBuffer;
use agora_math::{gemm, Cf32, Gemm};

/// Equalizes one subcarrier: `users_out = W * antennas_in`.
///
/// `antennas_in` has `M` entries (one per antenna at this subcarrier);
/// `users_out` receives `K` entries.
pub fn equalize_one(zf: &ZfBuffer, sc: usize, antennas_in: &[Cf32], users_out: &mut [Cf32]) {
    let w = zf.detector_for(sc);
    assert_eq!(antennas_in.len(), w.cols(), "antenna count mismatch");
    assert_eq!(users_out.len(), w.rows(), "user count mismatch");
    agora_math::gemv(w.rows(), w.cols(), w.as_slice(), antennas_in, users_out);
}

/// Equalizes a batch of `B` consecutive subcarriers that share a detector
/// group. `antennas_in` is `M x B` row-major (per antenna, `B` adjacent
/// subcarriers — the transposed layout the FFT stage emits); `users_out`
/// is `K x B` row-major.
///
/// `plan` must be a GEMM plan of shape `(K, M, B)`; passing the plan in
/// lets the engine reuse the "JIT"-specialised kernel across millions of
/// calls.
pub fn equalize_batch(
    zf: &ZfBuffer,
    first_sc: usize,
    batch: usize,
    plan: &Gemm,
    antennas_in: &[Cf32],
    users_out: &mut [Cf32],
) {
    let w = zf.detector_for(first_sc);
    assert_eq!(antennas_in.len(), w.cols() * batch);
    assert_eq!(users_out.len(), w.rows() * batch);
    plan.run(w.as_slice(), antennas_in, users_out);
}

/// Reference (unplanned) batch equalization used by tests and the
/// pipeline-parallel variant's cold path.
pub fn equalize_batch_generic(
    zf: &ZfBuffer,
    first_sc: usize,
    batch: usize,
    antennas_in: &[Cf32],
    users_out: &mut [Cf32],
) {
    let w = zf.detector_for(first_sc);
    gemm(w.rows(), w.cols(), batch, w.as_slice(), antennas_in, users_out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chanest::CsiBuffer;
    use crate::zf::{zf_task, ZfConfig};
    use agora_math::{CMat, PinvMethod};

    /// Builds a ZF buffer for a known random channel and returns both.
    fn setup(m: usize, k: usize, q: usize, seed: u64) -> (CsiBuffer, ZfBuffer) {
        let mut state = seed | 1;
        let mut csi = CsiBuffer::new(m, k, q);
        for sc in 0..q {
            *csi.at_mut(sc) = CMat::from_fn(m, k, |_, _| {
                let mut next = || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    ((state >> 11) as f32 / (1u64 << 53) as f32) - 0.25
                };
                Cf32::new(next(), next())
            });
        }
        let cfg = ZfConfig { group_size: 16, method: PinvMethod::Direct };
        let mut zf = ZfBuffer::new(m, k, q, cfg.group_size);
        for g in 0..cfg.num_groups(q) {
            zf_task(&csi, &cfg, g, &mut zf);
        }
        (csi, zf)
    }

    #[test]
    fn equalize_recovers_transmitted_symbols() {
        let (m, k) = (16usize, 4usize);
        let (csi, zf) = setup(m, k, 16, 5);
        // Transmit known user symbols through the channel at sc 0.
        let x: Vec<Cf32> = (0..k).map(|u| Cf32::new(u as f32 + 1.0, -(u as f32))).collect();
        let y = csi.at(0).matvec(&x);
        let mut out = vec![Cf32::ZERO; k];
        equalize_one(&zf, 0, &y, &mut out);
        for (a, b) in out.iter().zip(x.iter()) {
            assert!((*a - *b).abs() < 1e-2, "recovered {a:?} expected {b:?}");
        }
    }

    #[test]
    fn batch_matches_per_subcarrier() {
        let (m, k, b) = (16usize, 4usize, 8usize);
        let (csi, zf) = setup(m, k, 16, 7);
        // Per-antenna blocks of 8 consecutive subcarriers, all within
        // detector group 0; channel is per-sc so compute y per sc.
        let xs: Vec<Vec<Cf32>> = (0..b)
            .map(|sc| (0..k).map(|u| Cf32::new(sc as f32 * 0.1, u as f32 * 0.2 - 0.3)).collect())
            .collect();
        let mut ant_block = vec![Cf32::ZERO; m * b];
        for (sc, x) in xs.iter().enumerate() {
            let y = csi.at(sc).matvec(x);
            for a in 0..m {
                ant_block[a * b + sc] = y[a];
            }
        }
        let plan = Gemm::plan(k, m, b);
        let mut batch_out = vec![Cf32::ZERO; k * b];
        equalize_batch(&zf, 0, b, &plan, &ant_block, &mut batch_out);

        for sc in 0..b {
            let y: Vec<Cf32> = (0..m).map(|a| ant_block[a * b + sc]).collect();
            let mut single = vec![Cf32::ZERO; k];
            equalize_one(&zf, sc, &y, &mut single);
            for u in 0..k {
                assert!(
                    (batch_out[u * b + sc] - single[u]).abs() < 1e-4,
                    "sc {sc} user {u}"
                );
            }
        }
    }

    #[test]
    fn generic_batch_matches_planned() {
        let (m, k, b) = (16usize, 4usize, 8usize);
        let (_csi, zf) = setup(m, k, 16, 11);
        let ant_block: Vec<Cf32> =
            (0..m * b).map(|i| Cf32::new((i % 13) as f32 * 0.1, (i % 7) as f32 * -0.2)).collect();
        let plan = Gemm::plan(k, m, b);
        let mut a = vec![Cf32::ZERO; k * b];
        let mut g = vec![Cf32::ZERO; k * b];
        equalize_batch(&zf, 0, b, &plan, &ant_block, &mut a);
        equalize_batch_generic(&zf, 0, b, &ant_block, &mut g);
        for (x, y) in a.iter().zip(g.iter()) {
            assert!((*x - *y).abs() < 1e-4);
        }
    }

    /// Scalar and AVX2 plans must equalize to the same bits — the engine's
    /// `simd_gemm` ablation depends on it.
    #[test]
    fn tier_parity_is_bit_exact() {
        use agora_math::SimdTier;
        let (m, k, b) = (16usize, 4usize, 8usize);
        let (_csi, zf) = setup(m, k, 16, 17);
        let ant_block: Vec<Cf32> =
            (0..m * b).map(|i| Cf32::new((i % 11) as f32 * 0.3, (i % 5) as f32 * -0.4)).collect();
        let mut scalar_out = vec![Cf32::ZERO; k * b];
        let mut simd_out = vec![Cf32::ZERO; k * b];
        let scalar_plan = Gemm::plan_with_tier(k, m, b, SimdTier::Scalar);
        let simd_plan = Gemm::plan_with_tier(k, m, b, SimdTier::detect());
        equalize_batch(&zf, 0, b, &scalar_plan, &ant_block, &mut scalar_out);
        equalize_batch(&zf, 0, b, &simd_plan, &ant_block, &mut simd_out);
        for (x, y) in scalar_out.iter().zip(simd_out.iter()) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
        // Single-subcarrier GEMV path too.
        let y: Vec<Cf32> = (0..m).map(|a| ant_block[a * b]).collect();
        let mut one_scalar = vec![Cf32::ZERO; k];
        let mut one_simd = vec![Cf32::ZERO; k];
        let w = zf.detector_for(0);
        agora_math::gemv_with_tier(k, m, w.as_slice(), &y, &mut one_scalar, SimdTier::Scalar);
        equalize_one(&zf, 0, &y, &mut one_simd);
        for (x, v) in one_scalar.iter().zip(one_simd.iter()) {
            assert_eq!(x.re.to_bits(), v.re.to_bits());
            assert_eq!(x.im.to_bits(), v.im.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "antenna count")]
    fn wrong_antenna_count_panics() {
        let (_csi, zf) = setup(8, 2, 16, 13);
        let y = vec![Cf32::ZERO; 4];
        let mut out = vec![Cf32::ZERO; 2];
        equalize_one(&zf, 0, &y, &mut out);
    }
}
