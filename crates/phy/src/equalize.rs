//! Uplink equalization — demultiplexing user streams from antenna streams.
//!
//! For each data subcarrier the received `M`-vector `y` (one sample per
//! antenna) is multiplied by the `K x M` ZF detector to recover the `K`
//! user symbols: `x_hat = W y`. The engine fuses this block with
//! demodulation (Table 2); the fusion lives in the engine, the kernel
//! lives here. Batched variants process 8 consecutive subcarriers per
//! call so one task consumes a whole cache line of each antenna's data —
//! the paper's §4.1 "memory access efficiency" optimisation.
//!
//! Both entry points run vectorized on AVX2 hardware: [`equalize_one`]'s
//! GEMV and the planned GEMM behind [`equalize_batch`] dispatch through
//! `agora-math`'s SIMD tier (the plan pins the tier at construction, so
//! the per-subcarrier inner loop pays no dispatch). The scalar and vector
//! kernels are bit-identical.

use crate::zf::ZfBuffer;
use agora_math::{gemm, Cf32, Gemm};

/// Equalizes one subcarrier: `users_out = W * antennas_in`.
///
/// `antennas_in` has `M` entries (one per antenna at this subcarrier);
/// `users_out` receives `K` entries.
pub fn equalize_one(zf: &ZfBuffer, sc: usize, antennas_in: &[Cf32], users_out: &mut [Cf32]) {
    let w = zf.detector_for(sc);
    assert_eq!(antennas_in.len(), w.cols(), "antenna count mismatch");
    assert_eq!(users_out.len(), w.rows(), "user count mismatch");
    agora_math::gemv(w.rows(), w.cols(), w.as_slice(), antennas_in, users_out);
}

/// Equalizes a batch of `B` consecutive subcarriers that share a detector
/// group. `antennas_in` is `M x B` row-major (per antenna, `B` adjacent
/// subcarriers — the transposed layout the FFT stage emits); `users_out`
/// is `K x B` row-major.
///
/// `plan` must be a GEMM plan of shape `(K, M, B)`; passing the plan in
/// lets the engine reuse the "JIT"-specialised kernel across millions of
/// calls.
pub fn equalize_batch(
    zf: &ZfBuffer,
    first_sc: usize,
    batch: usize,
    plan: &Gemm,
    antennas_in: &[Cf32],
    users_out: &mut [Cf32],
) {
    let w = zf.detector_for(first_sc);
    assert_eq!(antennas_in.len(), w.cols() * batch);
    assert_eq!(users_out.len(), w.rows() * batch);
    plan.run(w.as_slice(), antennas_in, users_out);
}

/// Reference (unplanned) batch equalization used by tests and the
/// pipeline-parallel variant's cold path.
pub fn equalize_batch_generic(
    zf: &ZfBuffer,
    first_sc: usize,
    batch: usize,
    antennas_in: &[Cf32],
    users_out: &mut [Cf32],
) {
    let w = zf.detector_for(first_sc);
    gemm(w.rows(), w.cols(), batch, w.as_slice(), antennas_in, users_out);
}

/// Default CG iteration cap for the iterative equalizer. The Gram matrix
/// of a well-conditioned massive-MIMO channel (`M >> K`) is strongly
/// diagonally dominant, so the Jacobi-preconditioned iteration converges
/// in a handful of steps.
pub const CG_MAX_ITERS: usize = 8;

/// Default relative residual tolerance (`||r|| <= tol * ||b||`).
pub const CG_REL_TOL: f32 = 1e-3;

/// Reusable state for [`cg_solve_gram`]; one per worker, sized for `K`
/// users, so the per-subcarrier solve never allocates.
pub struct CgScratch {
    r: Vec<Cf32>,
    p: Vec<Cf32>,
    ap: Vec<Cf32>,
    z: Vec<Cf32>,
    dinv: Vec<f32>,
}

impl CgScratch {
    /// Allocates scratch for `k`-user solves.
    pub fn new(k: usize) -> Self {
        Self {
            r: vec![Cf32::ZERO; k],
            p: vec![Cf32::ZERO; k],
            ap: vec![Cf32::ZERO; k],
            z: vec![Cf32::ZERO; k],
            dinv: vec![0.0; k],
        }
    }
}

/// Second-order Neumann-series estimate of `diag((H^H H)^{-1})` from the
/// `K x K` Gram matrix: splitting `G = D + E` and truncating
/// `G^{-1} = D^{-1} - D^{-1} E D^{-1} + D^{-1} E D^{-1} E D^{-1} - ...`
/// after the quadratic term gives
/// `(G^{-1})_{uu} ~= 1/d_u + sum_{j != u} |G_{uj}|^2 / (d_u^2 d_j)`
/// (the linear term has zero diagonal). For ZF this diagonal *is* the
/// post-detection noise amplification `||w_u||^2`, so the iterative
/// equalizer can set per-user LLR noise variances without ever forming
/// the inverse.
pub fn neumann_diag_inv(gram: &[Cf32], k: usize, out: &mut [f32]) {
    assert_eq!(gram.len(), k * k, "gram must be K x K");
    assert_eq!(out.len(), k, "output must have K entries");
    for u in 0..k {
        let du = gram[u * k + u].re.max(f32::MIN_POSITIVE);
        let mut acc = 1.0 / du;
        for j in 0..k {
            if j == u {
                continue;
            }
            let dj = gram[j * k + j].re.max(f32::MIN_POSITIVE);
            acc += gram[u * k + j].norm_sqr() / (du * du * dj);
        }
        out[u] = acc;
    }
}

/// Real part of the Hermitian inner product `a^H b`.
fn dot_re(a: &[Cf32], b: &[Cf32]) -> f32 {
    a.iter().zip(b.iter()).map(|(x, y)| x.re * y.re + x.im * y.im).sum()
}

/// Jacobi-preconditioned conjugate gradient on the Gram system
/// `(H^H H) x = b`, where `gram` is the `K x K` Hermitian
/// positive-definite Gram matrix and `b = H^H y` for the iterative
/// equalizer. Never forms the inverse: each iteration costs one `K x K`
/// mat-vec plus vector updates, so for small iteration counts the whole
/// equalize chain is cheaper than applying a formed `K x M` detector.
///
/// Returns the number of iterations used (0 when `b` is zero). `x` holds
/// the solution on exit; convergence is declared at
/// `||r||^2 <= (rel_tol * ||b||)^2` or after `max_iters` steps.
#[allow(clippy::too_many_arguments)]
pub fn cg_solve_gram(
    gram: &[Cf32],
    k: usize,
    b: &[Cf32],
    x: &mut [Cf32],
    max_iters: usize,
    rel_tol: f32,
    s: &mut CgScratch,
) -> usize {
    assert_eq!(gram.len(), k * k, "gram must be K x K");
    assert_eq!(b.len(), k, "rhs must have K entries");
    assert_eq!(x.len(), k, "solution must have K entries");
    x.fill(Cf32::ZERO);
    let bnorm = dot_re(b, b);
    if bnorm <= 0.0 {
        return 0;
    }
    for u in 0..k {
        s.dinv[u] = 1.0 / gram[u * k + u].re.max(f32::MIN_POSITIVE);
    }
    s.r.copy_from_slice(b);
    for u in 0..k {
        s.z[u] = s.r[u].scale(s.dinv[u]);
        s.p[u] = s.z[u];
    }
    let mut rz = dot_re(&s.r, &s.z);
    let tol2 = rel_tol * rel_tol * bnorm;
    let mut iters = 0;
    for _ in 0..max_iters {
        agora_math::gemv(k, k, gram, &s.p, &mut s.ap);
        let pap = dot_re(&s.p, &s.ap);
        if !pap.is_finite() || pap <= 0.0 {
            break; // loss of positive definiteness in f32 — keep current x
        }
        let alpha = rz / pap;
        for (u, xu) in x.iter_mut().enumerate() {
            *xu = s.p[u].scale(alpha) + *xu;
            s.r[u] = s.r[u] - s.ap[u].scale(alpha);
        }
        iters += 1;
        if dot_re(&s.r, &s.r) <= tol2 {
            break;
        }
        for u in 0..k {
            s.z[u] = s.r[u].scale(s.dinv[u]);
        }
        let rz_new = dot_re(&s.r, &s.z);
        let beta = rz_new / rz;
        rz = rz_new;
        for u in 0..k {
            s.p[u] = s.z[u] + s.p[u].scale(beta);
        }
    }
    iters
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chanest::CsiBuffer;
    use crate::zf::{zf_task, ZfConfig};
    use agora_math::{CMat, PinvMethod};

    /// Builds a ZF buffer for a known random channel and returns both.
    fn setup(m: usize, k: usize, q: usize, seed: u64) -> (CsiBuffer, ZfBuffer) {
        let mut state = seed | 1;
        let mut csi = CsiBuffer::new(m, k, q);
        for sc in 0..q {
            *csi.at_mut(sc) = CMat::from_fn(m, k, |_, _| {
                let mut next = || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    ((state >> 11) as f32 / (1u64 << 53) as f32) - 0.25
                };
                Cf32::new(next(), next())
            });
        }
        let cfg = ZfConfig { group_size: 16, method: PinvMethod::Direct };
        let mut zf = ZfBuffer::new(m, k, q, cfg.group_size);
        for g in 0..cfg.num_groups(q) {
            zf_task(&csi, &cfg, g, &mut zf);
        }
        (csi, zf)
    }

    #[test]
    fn equalize_recovers_transmitted_symbols() {
        let (m, k) = (16usize, 4usize);
        let (csi, zf) = setup(m, k, 16, 5);
        // Transmit known user symbols through the channel at sc 0.
        let x: Vec<Cf32> = (0..k).map(|u| Cf32::new(u as f32 + 1.0, -(u as f32))).collect();
        let y = csi.at(0).matvec(&x);
        let mut out = vec![Cf32::ZERO; k];
        equalize_one(&zf, 0, &y, &mut out);
        for (a, b) in out.iter().zip(x.iter()) {
            assert!((*a - *b).abs() < 1e-2, "recovered {a:?} expected {b:?}");
        }
    }

    #[test]
    fn batch_matches_per_subcarrier() {
        let (m, k, b) = (16usize, 4usize, 8usize);
        let (csi, zf) = setup(m, k, 16, 7);
        // Per-antenna blocks of 8 consecutive subcarriers, all within
        // detector group 0; channel is per-sc so compute y per sc.
        let xs: Vec<Vec<Cf32>> = (0..b)
            .map(|sc| (0..k).map(|u| Cf32::new(sc as f32 * 0.1, u as f32 * 0.2 - 0.3)).collect())
            .collect();
        let mut ant_block = vec![Cf32::ZERO; m * b];
        for (sc, x) in xs.iter().enumerate() {
            let y = csi.at(sc).matvec(x);
            for a in 0..m {
                ant_block[a * b + sc] = y[a];
            }
        }
        let plan = Gemm::plan(k, m, b);
        let mut batch_out = vec![Cf32::ZERO; k * b];
        equalize_batch(&zf, 0, b, &plan, &ant_block, &mut batch_out);

        for sc in 0..b {
            let y: Vec<Cf32> = (0..m).map(|a| ant_block[a * b + sc]).collect();
            let mut single = vec![Cf32::ZERO; k];
            equalize_one(&zf, sc, &y, &mut single);
            for u in 0..k {
                assert!((batch_out[u * b + sc] - single[u]).abs() < 1e-4, "sc {sc} user {u}");
            }
        }
    }

    #[test]
    fn generic_batch_matches_planned() {
        let (m, k, b) = (16usize, 4usize, 8usize);
        let (_csi, zf) = setup(m, k, 16, 11);
        let ant_block: Vec<Cf32> =
            (0..m * b).map(|i| Cf32::new((i % 13) as f32 * 0.1, (i % 7) as f32 * -0.2)).collect();
        let plan = Gemm::plan(k, m, b);
        let mut a = vec![Cf32::ZERO; k * b];
        let mut g = vec![Cf32::ZERO; k * b];
        equalize_batch(&zf, 0, b, &plan, &ant_block, &mut a);
        equalize_batch_generic(&zf, 0, b, &ant_block, &mut g);
        for (x, y) in a.iter().zip(g.iter()) {
            assert!((*x - *y).abs() < 1e-4);
        }
    }

    /// Scalar and AVX2 plans must equalize to the same bits — the engine's
    /// `simd_gemm` ablation depends on it.
    #[test]
    fn tier_parity_is_bit_exact() {
        use agora_math::SimdTier;
        let (m, k, b) = (16usize, 4usize, 8usize);
        let (_csi, zf) = setup(m, k, 16, 17);
        let ant_block: Vec<Cf32> =
            (0..m * b).map(|i| Cf32::new((i % 11) as f32 * 0.3, (i % 5) as f32 * -0.4)).collect();
        let mut scalar_out = vec![Cf32::ZERO; k * b];
        let mut simd_out = vec![Cf32::ZERO; k * b];
        let scalar_plan = Gemm::plan_with_tier(k, m, b, SimdTier::Scalar);
        let simd_plan = Gemm::plan_with_tier(k, m, b, SimdTier::detect());
        equalize_batch(&zf, 0, b, &scalar_plan, &ant_block, &mut scalar_out);
        equalize_batch(&zf, 0, b, &simd_plan, &ant_block, &mut simd_out);
        for (x, y) in scalar_out.iter().zip(simd_out.iter()) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
        // Single-subcarrier GEMV path too.
        let y: Vec<Cf32> = (0..m).map(|a| ant_block[a * b]).collect();
        let mut one_scalar = vec![Cf32::ZERO; k];
        let mut one_simd = vec![Cf32::ZERO; k];
        let w = zf.detector_for(0);
        agora_math::gemv_with_tier(k, m, w.as_slice(), &y, &mut one_scalar, SimdTier::Scalar);
        equalize_one(&zf, 0, &y, &mut one_simd);
        for (x, v) in one_scalar.iter().zip(one_simd.iter()) {
            assert_eq!(x.re.to_bits(), v.re.to_bits());
            assert_eq!(x.im.to_bits(), v.im.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "antenna count")]
    fn wrong_antenna_count_panics() {
        let (_csi, zf) = setup(8, 2, 16, 13);
        let y = vec![Cf32::ZERO; 4];
        let mut out = vec![Cf32::ZERO; 2];
        equalize_one(&zf, 0, &y, &mut out);
    }

    /// Builds a random channel, its Gram matrix, and `b = H^H y` for a
    /// known transmit vector.
    fn gram_system(m: usize, k: usize, seed: u64) -> (Vec<Cf32>, Vec<Cf32>, Vec<Cf32>) {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f32 / (1u64 << 53) as f32) - 0.5
        };
        let h = CMat::from_fn(m, k, |_, _| Cf32::new(next(), next()));
        let x: Vec<Cf32> =
            (0..k).map(|u| Cf32::new(u as f32 * 0.3 - 0.4, 0.7 - u as f32 * 0.2)).collect();
        let y = h.matvec(&x);
        let hh = h.hermitian();
        let gram = hh.matmul(&h);
        let b = hh.matvec(&y);
        (gram.as_slice().to_vec(), b, x)
    }

    /// CG on the Gram system must recover the transmitted symbols (the
    /// consistent-system case the iterative equalizer runs): `x` solves
    /// `(H^H H) x = H^H (H x)` exactly.
    #[test]
    fn cg_recovers_transmitted_symbols() {
        let (m, k) = (16usize, 4usize);
        let (gram, b, x_true) = gram_system(m, k, 29);
        let mut s = CgScratch::new(k);
        let mut x = vec![Cf32::ZERO; k];
        let iters = cg_solve_gram(&gram, k, &b, &mut x, CG_MAX_ITERS, CG_REL_TOL, &mut s);
        assert!(iters >= 1 && iters <= CG_MAX_ITERS);
        for (a, e) in x.iter().zip(x_true.iter()) {
            assert!((*a - *e).abs() < 1e-2, "recovered {a:?} expected {e:?}");
        }
    }

    /// CG must agree with the direct Cholesky solve of the same system.
    #[test]
    fn cg_matches_cholesky_solve() {
        use agora_math::Cholesky;
        for (m, k, seed) in [(16usize, 4usize, 31u64), (64, 16, 37), (24, 7, 41)] {
            let (gram, b, _) = gram_system(m, k, seed);
            let gm = CMat::from_fn(k, k, |r, c| gram[r * k + c]);
            let chol = Cholesky::factor(&gm).expect("gram must be positive definite");
            let bm = CMat::from_fn(k, 1, |r, _| b[r]);
            let direct = chol.solve(&bm);
            let mut s = CgScratch::new(k);
            let mut x = vec![Cf32::ZERO; k];
            cg_solve_gram(&gram, k, &b, &mut x, 16, 1e-5, &mut s);
            let scale: f32 = direct.as_slice().iter().map(|z| z.abs()).fold(0.0, f32::max);
            for (a, e) in x.iter().zip(direct.as_slice().iter()) {
                assert!(
                    (*a - *e).abs() < 1e-3 * scale.max(1.0),
                    "m {m} k {k}: cg {a:?} direct {e:?}"
                );
            }
        }
    }

    #[test]
    fn cg_zero_rhs_returns_zero_in_zero_iterations() {
        let (_, k) = (8usize, 3usize);
        let gram: Vec<Cf32> = (0..k * k)
            .map(|i| if i % (k + 1) == 0 { Cf32::new(2.0, 0.0) } else { Cf32::ZERO })
            .collect();
        let b = vec![Cf32::ZERO; k];
        let mut x = vec![Cf32::new(9.0, 9.0); k];
        let mut s = CgScratch::new(k);
        let iters = cg_solve_gram(&gram, k, &b, &mut x, 8, 1e-3, &mut s);
        assert_eq!(iters, 0);
        assert!(x.iter().all(|z| z.abs() == 0.0));
    }

    /// The truncated Neumann series must track the true inverse diagonal
    /// (= the post-ZF noise amplification) on a well-conditioned tall
    /// channel, where the Gram matrix is diagonally dominant.
    #[test]
    fn neumann_diag_tracks_inverse_diagonal() {
        use agora_math::Cholesky;
        for (m, k, seed) in [(32usize, 4usize, 43u64), (64, 16, 47)] {
            let (gram, _, _) = gram_system(m, k, seed);
            let gm = CMat::from_fn(k, k, |r, c| gram[r * k + c]);
            let inv = Cholesky::factor(&gm).expect("positive definite").inverse();
            let mut est = vec![0.0f32; k];
            neumann_diag_inv(&gram, k, &mut est);
            for u in 0..k {
                let truth = inv[(u, u)].re;
                let rel = (est[u] - truth).abs() / truth;
                assert!(rel < 0.25, "m {m} k {k} user {u}: est {} truth {truth} rel {rel}", est[u]);
            }
        }
    }
}
