//! Cell and frame configuration.
//!
//! One [`CellConfig`] describes everything the baseband needs to know
//! about the air interface: MIMO dimensions, OFDM numerology, the
//! symbol-level TDD schedule (Figure 1a), modulation, and LDPC
//! parameters. The paper's two evaluation setups are provided as
//! constructors: [`CellConfig::emulated_rru`] (§5.2) and
//! [`CellConfig::over_the_air`] (§5.3).

use crate::modulation::ModScheme;
use crate::pilots::PilotScheme;
use agora_ldpc::{BaseGraphId, RateMatch};

/// What a symbol slot in the frame carries (Figure 1a).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymbolType {
    /// Uplink pilots for channel estimation.
    Pilot,
    /// Uplink data from the users.
    Uplink,
    /// Downlink data to the users.
    Downlink,
    /// Guard/unused.
    Empty,
}

/// The symbol-level frame schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameSchedule {
    symbols: Vec<SymbolType>,
}

impl FrameSchedule {
    /// Parses a compact schedule string: `P` pilot, `U` uplink,
    /// `D` downlink, `E`/`G` empty. E.g. `"PUUUUUUUUUUUUU"` is the 1 ms,
    /// 14-symbol all-uplink frame of §6.1.1.
    pub fn parse(s: &str) -> Option<FrameSchedule> {
        let symbols = s
            .chars()
            .map(|c| match c.to_ascii_uppercase() {
                'P' => Some(SymbolType::Pilot),
                'U' => Some(SymbolType::Uplink),
                'D' => Some(SymbolType::Downlink),
                'E' | 'G' => Some(SymbolType::Empty),
                _ => None,
            })
            .collect::<Option<Vec<_>>>()?;
        if symbols.is_empty() {
            None
        } else {
            Some(FrameSchedule { symbols })
        }
    }

    /// `num_pilots` pilot symbols followed by `num_data` uplink symbols.
    pub fn uplink(num_pilots: usize, num_data: usize) -> FrameSchedule {
        let mut symbols = vec![SymbolType::Pilot; num_pilots];
        symbols.extend(std::iter::repeat_n(SymbolType::Uplink, num_data));
        FrameSchedule { symbols }
    }

    /// `num_pilots` pilot symbols followed by `num_data` downlink symbols.
    pub fn downlink(num_pilots: usize, num_data: usize) -> FrameSchedule {
        let mut symbols = vec![SymbolType::Pilot; num_pilots];
        symbols.extend(std::iter::repeat_n(SymbolType::Downlink, num_data));
        FrameSchedule { symbols }
    }

    /// All symbol types in order.
    pub fn symbols(&self) -> &[SymbolType] {
        &self.symbols
    }

    /// Total symbols per frame.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// True if the schedule is empty (never constructed that way).
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Type of symbol `i`.
    pub fn symbol(&self, i: usize) -> SymbolType {
        self.symbols[i]
    }

    /// Indices of pilot symbols.
    pub fn pilot_indices(&self) -> Vec<usize> {
        self.indices_of(SymbolType::Pilot)
    }

    /// Indices of uplink data symbols.
    pub fn uplink_indices(&self) -> Vec<usize> {
        self.indices_of(SymbolType::Uplink)
    }

    /// Indices of downlink data symbols.
    pub fn downlink_indices(&self) -> Vec<usize> {
        self.indices_of(SymbolType::Downlink)
    }

    fn indices_of(&self, t: SymbolType) -> Vec<usize> {
        self.symbols.iter().enumerate().filter(|(_, &s)| s == t).map(|(i, _)| i).collect()
    }
}

/// LDPC code parameters for the cell.
#[derive(Debug, Clone, Copy)]
pub struct LdpcParams {
    /// Which base graph.
    pub base_graph: BaseGraphId,
    /// Lifting size.
    pub z: usize,
    /// Target code rate.
    pub rate: f32,
    /// Maximum decoder iterations.
    pub max_iters: usize,
}

impl LdpcParams {
    /// The rate-matching plan implied by these parameters.
    pub fn rate_match(&self) -> RateMatch {
        RateMatch::for_rate(self.base_graph, self.z, self.rate)
    }
}

/// Full cell configuration.
#[derive(Debug, Clone)]
pub struct CellConfig {
    /// RRU antennas `M`.
    pub num_antennas: usize,
    /// Served users / layers `K`.
    pub num_users: usize,
    /// OFDM FFT size (power of two).
    pub fft_size: usize,
    /// Active data subcarriers `Q` (rest are guards).
    pub num_data_sc: usize,
    /// Cyclic prefix samples per symbol.
    pub cp_len: usize,
    /// Data modulation.
    pub modulation: ModScheme,
    /// Pilot multiplexing scheme.
    pub pilot_scheme: PilotScheme,
    /// Subcarriers per zero-forcing group (paper: 16).
    pub zf_group: usize,
    /// LDPC parameters.
    pub ldpc: LdpcParams,
    /// Symbol schedule.
    pub schedule: FrameSchedule,
    /// OFDM symbol duration in nanoseconds (71 us in the paper).
    pub symbol_duration_ns: u64,
}

impl CellConfig {
    /// The paper's emulated-RRU configuration (§5.2): 2048-point FFT,
    /// 1200 data subcarriers, 64-QAM, frequency-orthogonal pilots, BG1
    /// LDPC with Z=104 and rate 1/3, one pilot symbol plus
    /// `data_symbols` uplink symbols of 71 us each.
    pub fn emulated_rru(m: usize, k: usize, data_symbols: usize) -> CellConfig {
        CellConfig {
            num_antennas: m,
            num_users: k,
            fft_size: 2048,
            num_data_sc: 1200,
            cp_len: 0,
            modulation: ModScheme::Qam64,
            pilot_scheme: PilotScheme::FrequencyOrthogonal,
            zf_group: 16,
            ldpc: LdpcParams {
                base_graph: BaseGraphId::Bg1,
                z: 104,
                rate: 1.0 / 3.0,
                max_iters: 5,
            },
            schedule: FrameSchedule::uplink(1, data_symbols),
            symbol_duration_ns: 71_000,
        }
    }

    /// The paper's over-the-air configuration (§5.3/§6.1.3): 64 antennas,
    /// up to 8 users, 512-point FFT with 300 data subcarriers, 64-QAM,
    /// time-orthogonal Zadoff-Chu pilots, rate-1/3 LDPC, 4 ms frames.
    pub fn over_the_air(num_users: usize, data_symbols: usize) -> CellConfig {
        CellConfig {
            num_antennas: 64,
            num_users,
            fft_size: 512,
            num_data_sc: 300,
            cp_len: 0,
            modulation: ModScheme::Qam64,
            pilot_scheme: PilotScheme::TimeOrthogonal,
            zf_group: 16,
            ldpc: LdpcParams { base_graph: BaseGraphId::Bg2, z: 56, rate: 1.0 / 3.0, max_iters: 5 },
            schedule: FrameSchedule::uplink(num_users, data_symbols),
            symbol_duration_ns: 71_000,
        }
    }

    /// A small configuration for fast tests: 8x2 MIMO
    /// (256-point FFT, 240 data subcarriers), QPSK, BG2 with Z=12.
    pub fn tiny_test(data_symbols: usize) -> CellConfig {
        CellConfig {
            num_antennas: 8,
            num_users: 2,
            fft_size: 256,
            num_data_sc: 240,
            cp_len: 0,
            modulation: ModScheme::Qpsk,
            pilot_scheme: PilotScheme::FrequencyOrthogonal,
            zf_group: 16,
            ldpc: LdpcParams { base_graph: BaseGraphId::Bg2, z: 12, rate: 1.0 / 3.0, max_iters: 8 },
            schedule: FrameSchedule::uplink(1, data_symbols),
            symbol_duration_ns: 71_000,
        }
    }

    /// Symbols per frame.
    pub fn symbols_per_frame(&self) -> usize {
        self.schedule.len()
    }

    /// Frame duration in nanoseconds.
    pub fn frame_duration_ns(&self) -> u64 {
        self.symbol_duration_ns * self.schedule.len() as u64
    }

    /// Time-domain samples per symbol (FFT + CP).
    pub fn samples_per_symbol(&self) -> usize {
        self.fft_size + self.cp_len
    }

    /// Modulated-bit capacity of one symbol for one user.
    pub fn bits_per_symbol_per_user(&self) -> usize {
        self.num_data_sc * self.modulation.bits_per_symbol()
    }

    /// Coded bits actually carried per (symbol, user): one code block per
    /// symbol (the paper's "up to one code block per symbol"), truncated
    /// to the symbol capacity.
    pub fn coded_bits_per_symbol(&self) -> usize {
        self.ldpc.rate_match().tx_len().min(self.bits_per_symbol_per_user())
    }

    /// Information bits per (symbol, user).
    pub fn info_bits_per_symbol(&self) -> usize {
        self.ldpc.rate_match().info_len()
    }

    /// Number of ZF groups.
    pub fn num_zf_groups(&self) -> usize {
        self.num_data_sc.div_ceil(self.zf_group)
    }

    /// Uplink information bits per frame (all users, all UL symbols).
    pub fn uplink_bits_per_frame(&self) -> usize {
        self.schedule.uplink_indices().len() * self.num_users * self.info_bits_per_symbol()
    }

    /// Uplink MAC-layer data rate in bits/second at this frame length.
    pub fn uplink_data_rate_bps(&self) -> f64 {
        self.uplink_bits_per_frame() as f64 / (self.frame_duration_ns() as f64 * 1e-9)
    }

    /// Sanity-checks the configuration, returning a description of the
    /// first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if !self.fft_size.is_power_of_two() {
            return Err(format!("fft_size {} is not a power of two", self.fft_size));
        }
        if self.num_data_sc >= self.fft_size {
            return Err("data subcarriers must leave guard bands".into());
        }
        if self.num_users > self.num_antennas {
            return Err(format!("K={} exceeds M={}", self.num_users, self.num_antennas));
        }
        if !self.num_data_sc.is_multiple_of(self.num_users)
            && self.pilot_scheme == PilotScheme::FrequencyOrthogonal
        {
            return Err("frequency-orthogonal pilots need K | num_data_sc".into());
        }
        let needed = self.pilot_scheme.pilot_symbols(self.num_users);
        if self.schedule.pilot_indices().len() < needed {
            return Err(format!(
                "schedule has {} pilot symbols, scheme needs {}",
                self.schedule.pilot_indices().len(),
                needed
            ));
        }
        if !agora_ldpc::lifting::is_valid_lifting(self.ldpc.z) {
            return Err(format!("invalid lifting size {}", self.ldpc.z));
        }
        if self.ldpc.rate_match().tx_len() > self.bits_per_symbol_per_user() {
            return Err(format!(
                "code block ({} bits) exceeds symbol capacity ({} bits)",
                self.ldpc.rate_match().tx_len(),
                self.bits_per_symbol_per_user()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_parse_roundtrip() {
        let s = FrameSchedule::parse("PUUDDE").unwrap();
        assert_eq!(s.len(), 6);
        assert_eq!(s.symbol(0), SymbolType::Pilot);
        assert_eq!(s.uplink_indices(), vec![1, 2]);
        assert_eq!(s.downlink_indices(), vec![3, 4]);
        assert!(FrameSchedule::parse("PUX").is_none());
        assert!(FrameSchedule::parse("").is_none());
    }

    #[test]
    fn paper_emulated_config_is_valid() {
        // 1 ms frame: 14 symbols (1 pilot + 13 uplink).
        let cfg = CellConfig::emulated_rru(64, 16, 13);
        cfg.validate().expect("paper config must validate");
        assert_eq!(cfg.symbols_per_frame(), 14);
        assert!((cfg.frame_duration_ns() as f64 - 1e6).abs() < 1e5);
        // Code block 6864 bits fits 1200 * 6 = 7200-bit symbols.
        assert_eq!(cfg.coded_bits_per_symbol(), 6864);
    }

    #[test]
    fn paper_data_rate_ballpark() {
        // §6.1.1: ~454 Mbps at 1/3 rate, 1 ms frames, 64x16. Our info
        // bits: 13 symbols * 16 users * 2288 bits = 475 kb per ms.
        let cfg = CellConfig::emulated_rru(64, 16, 13);
        let rate = cfg.uplink_data_rate_bps();
        assert!((4.0e8..6.0e8).contains(&rate), "uplink rate {rate} outside the paper's ballpark");
    }

    #[test]
    fn five_ms_frame_has_70_symbols() {
        let cfg = CellConfig::emulated_rru(64, 16, 69);
        assert_eq!(cfg.symbols_per_frame(), 70);
        assert!((cfg.frame_duration_ns() as f64 - 5e6).abs() < 1e5);
    }

    #[test]
    fn ota_config_is_valid() {
        let cfg = CellConfig::over_the_air(8, 10);
        cfg.validate().expect("OTA config must validate");
        // Time-orthogonal: 8 pilot symbols for 8 users.
        assert_eq!(cfg.schedule.pilot_indices().len(), 8);
        // §6.1.3: 300 data subcarriers * 6 bits = 1800 bits per symbol.
        assert_eq!(cfg.bits_per_symbol_per_user(), 1800);
    }

    #[test]
    fn tiny_config_is_valid() {
        CellConfig::tiny_test(4).validate().expect("tiny config must validate");
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut cfg = CellConfig::tiny_test(4);
        cfg.num_users = 16; // K > M
        assert!(cfg.validate().is_err());

        let mut cfg = CellConfig::tiny_test(4);
        cfg.fft_size = 100;
        assert!(cfg.validate().is_err());

        let mut cfg = CellConfig::tiny_test(4);
        cfg.ldpc.z = 17;
        assert!(cfg.validate().is_err());

        let mut cfg = CellConfig::tiny_test(4);
        cfg.schedule = FrameSchedule::parse("UUUU").unwrap(); // no pilots
        assert!(cfg.validate().is_err());

        let mut cfg = CellConfig::tiny_test(4);
        cfg.ldpc.z = 384; // code block far larger than symbol capacity
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn derived_quantities() {
        let cfg = CellConfig::emulated_rru(64, 16, 13);
        assert_eq!(cfg.num_zf_groups(), 75);
        assert_eq!(cfg.samples_per_symbol(), 2048);
        assert_eq!(cfg.info_bits_per_symbol(), 2288);
        assert_eq!(cfg.uplink_bits_per_frame(), 13 * 16 * 2288);
    }
}
