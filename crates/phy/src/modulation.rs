//! QAM constellation mapping.
//!
//! Gray-coded square constellations (BPSK through 256-QAM), normalised to
//! unit average symbol energy as in 3GPP TS 38.211 §5.1. The paper's
//! evaluation uses 64-QAM (6 bits/symbol) and mentions 256-QAM as an
//! avenue of improvement; all five schemes are implemented.

use agora_math::Cf32;

/// Modulation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModScheme {
    /// 1 bit/symbol.
    Bpsk,
    /// 2 bits/symbol.
    Qpsk,
    /// 4 bits/symbol.
    Qam16,
    /// 6 bits/symbol (the paper's evaluation setting).
    Qam64,
    /// 8 bits/symbol.
    Qam256,
}

impl ModScheme {
    /// Bits carried per modulated symbol.
    pub fn bits_per_symbol(self) -> usize {
        match self {
            ModScheme::Bpsk => 1,
            ModScheme::Qpsk => 2,
            ModScheme::Qam16 => 4,
            ModScheme::Qam64 => 6,
            ModScheme::Qam256 => 8,
        }
    }

    /// Number of constellation points.
    pub fn order(self) -> usize {
        1 << self.bits_per_symbol()
    }

    /// Per-axis amplitude normaliser so that average symbol energy is 1.
    /// For square M-QAM with PAM levels `{±1, ±3, ..}`, the mean energy is
    /// `2 (L^2 - 1) / 3` with `L = sqrt(M)` levels per axis.
    pub fn scale(self) -> f32 {
        match self {
            ModScheme::Bpsk => 1.0,
            ModScheme::Qpsk => 1.0 / 2.0f32.sqrt(),
            ModScheme::Qam16 => 1.0 / 10.0f32.sqrt(),
            ModScheme::Qam64 => 1.0 / 42.0f32.sqrt(),
            ModScheme::Qam256 => 1.0 / 170.0f32.sqrt(),
        }
    }

    /// Parses the conventional names ("BPSK", "QPSK", "16QAM", "64QAM",
    /// "256QAM"), case-insensitively.
    pub fn parse(s: &str) -> Option<ModScheme> {
        match s.to_ascii_uppercase().as_str() {
            "BPSK" => Some(ModScheme::Bpsk),
            "QPSK" | "4QAM" => Some(ModScheme::Qpsk),
            "16QAM" | "QAM16" => Some(ModScheme::Qam16),
            "64QAM" | "QAM64" => Some(ModScheme::Qam64),
            "256QAM" | "QAM256" => Some(ModScheme::Qam256),
            _ => None,
        }
    }
}

/// Gray-maps `b` bits (value `0..2^b`) to a PAM level in `{±1, ±3, ...}`.
///
/// Uses the standard binary-reflected Gray code so adjacent levels differ
/// in exactly one bit.
fn gray_to_pam(gray: u32, bits: u32) -> f32 {
    // Convert Gray code to binary index.
    let mut bin = gray;
    let mut shift = 1;
    while shift < bits {
        bin ^= bin >> shift;
        shift <<= 1;
    }
    let levels = 1i32 << bits;
    (2 * bin as i32 - (levels - 1)) as f32
}

/// Inverse of [`gray_to_pam`]: nearest PAM level index -> Gray bits.
fn pam_index_to_gray(index: u32) -> u32 {
    index ^ (index >> 1)
}

/// Maps a bit group (packed LSB-first into `v`, `bits_per_symbol` wide)
/// to a constellation point. For square QAM the first half of the bits
/// select the I axis, the second half the Q axis.
pub fn map_symbol(scheme: ModScheme, v: u32) -> Cf32 {
    let s = scheme.scale();
    match scheme {
        ModScheme::Bpsk => Cf32::new(if v & 1 == 0 { s } else { -s }, 0.0),
        _ => {
            let half = (scheme.bits_per_symbol() / 2) as u32;
            let mask = (1u32 << half) - 1;
            let i_bits = v & mask;
            let q_bits = (v >> half) & mask;
            Cf32::new(gray_to_pam(i_bits, half) * s, gray_to_pam(q_bits, half) * s)
        }
    }
}

/// Hard-decision inverse of [`map_symbol`]: nearest constellation point.
pub fn unmap_symbol(scheme: ModScheme, z: Cf32) -> u32 {
    match scheme {
        ModScheme::Bpsk => (z.re < 0.0) as u32,
        _ => {
            let half = (scheme.bits_per_symbol() / 2) as u32;
            let levels = 1i32 << half;
            let s = scheme.scale();
            let quant = |x: f32| -> u32 {
                // Nearest level in {±1, ±3, ...} scaled by s; index 0..levels.
                let idx = ((x / s + (levels - 1) as f32) / 2.0).round() as i32;
                idx.clamp(0, levels - 1) as u32
            };
            let gi = pam_index_to_gray(quant(z.re));
            let gq = pam_index_to_gray(quant(z.im));
            gi | (gq << half)
        }
    }
}

/// Modulates a bit slice (one bit per byte) into symbols. The bit count
/// must be a multiple of `bits_per_symbol`; bits within a symbol are
/// consumed LSB-first.
pub fn modulate(scheme: ModScheme, bits: &[u8], out: &mut Vec<Cf32>) {
    let bps = scheme.bits_per_symbol();
    assert_eq!(bits.len() % bps, 0, "bit count must divide bits/symbol");
    out.clear();
    out.reserve(bits.len() / bps);
    for group in bits.chunks_exact(bps) {
        let mut v = 0u32;
        for (i, &b) in group.iter().enumerate() {
            v |= ((b & 1) as u32) << i;
        }
        out.push(map_symbol(scheme, v));
    }
}

/// Hard-demodulates symbols back to bits (one bit per byte, LSB-first per
/// symbol).
pub fn demodulate_hard(scheme: ModScheme, symbols: &[Cf32], out: &mut Vec<u8>) {
    let bps = scheme.bits_per_symbol();
    out.clear();
    out.reserve(symbols.len() * bps);
    for &z in symbols {
        let v = unmap_symbol(scheme, z);
        for i in 0..bps {
            out.push(((v >> i) & 1) as u8);
        }
    }
}

/// Returns the full constellation (index -> point), used by the exact
/// max-log soft demapper and tests.
pub fn constellation(scheme: ModScheme) -> Vec<Cf32> {
    (0..scheme.order() as u32).map(|v| map_symbol(scheme, v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCHEMES: [ModScheme; 5] =
        [ModScheme::Bpsk, ModScheme::Qpsk, ModScheme::Qam16, ModScheme::Qam64, ModScheme::Qam256];

    #[test]
    fn unit_average_energy() {
        for scheme in SCHEMES {
            let pts = constellation(scheme);
            let avg: f32 = pts.iter().map(|z| z.norm_sqr()).sum::<f32>() / pts.len() as f32;
            assert!((avg - 1.0).abs() < 1e-3, "{scheme:?} energy {avg}");
        }
    }

    #[test]
    fn constellation_points_distinct() {
        for scheme in SCHEMES {
            let pts = constellation(scheme);
            for i in 0..pts.len() {
                for j in i + 1..pts.len() {
                    assert!((pts[i] - pts[j]).abs() > 1e-4, "{scheme:?} points {i},{j} collide");
                }
            }
        }
    }

    #[test]
    fn map_unmap_roundtrip() {
        for scheme in SCHEMES {
            for v in 0..scheme.order() as u32 {
                let z = map_symbol(scheme, v);
                assert_eq!(unmap_symbol(scheme, z), v, "{scheme:?} value {v}");
            }
        }
    }

    #[test]
    fn modulate_demodulate_roundtrip() {
        for scheme in SCHEMES {
            let bps = scheme.bits_per_symbol();
            let bits: Vec<u8> = (0..bps * 50).map(|i| ((i * 29 + 7) % 2) as u8).collect();
            let mut syms = Vec::new();
            modulate(scheme, &bits, &mut syms);
            assert_eq!(syms.len(), 50);
            let mut back = Vec::new();
            demodulate_hard(scheme, &syms, &mut back);
            assert_eq!(bits, back, "{scheme:?} roundtrip failed");
        }
    }

    #[test]
    fn gray_mapping_adjacent_levels_differ_by_one_bit() {
        // For 64-QAM, walk the 8 PAM levels on one axis: consecutive
        // levels must differ in exactly one bit.
        for idx in 0..7u32 {
            let a = pam_index_to_gray(idx);
            let b = pam_index_to_gray(idx + 1);
            assert_eq!((a ^ b).count_ones(), 1);
        }
    }

    #[test]
    fn hard_decision_robust_to_small_noise() {
        let scheme = ModScheme::Qam64;
        // Minimum distance is 2*scale; noise below scale/2 never flips.
        let eps = scheme.scale() * 0.4;
        for v in 0..64u32 {
            let z = map_symbol(scheme, v) + Cf32::new(eps, -eps);
            assert_eq!(unmap_symbol(scheme, z), v);
        }
    }

    #[test]
    fn parse_names() {
        assert_eq!(ModScheme::parse("64qam"), Some(ModScheme::Qam64));
        assert_eq!(ModScheme::parse("QPSK"), Some(ModScheme::Qpsk));
        assert_eq!(ModScheme::parse("512QAM"), None);
    }

    #[test]
    fn paper_bits_per_symbol() {
        // "64-QAM (6-bit) modulation" (§6.1.3).
        assert_eq!(ModScheme::Qam64.bits_per_symbol(), 6);
        assert_eq!(ModScheme::Qam16.bits_per_symbol(), 4);
    }
}
