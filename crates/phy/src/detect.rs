//! Linear detector families beyond plain zero-forcing.
//!
//! The paper adopts zero-forcing and notes (§4.2) that "in
//! ill-conditioned channels ... a lower overhead method such as
//! conjugate beamforming may perform better" [Yang & Marzetta 2013].
//! This module implements the standard linear-detector menu so that
//! trade-off can actually be measured:
//!
//! * [`Detector::ZeroForcing`] — `(H^H H)^{-1} H^H`; nulls inter-user
//!   interference, amplifies noise on weak eigenmodes.
//! * [`Detector::Mmse`] — `(H^H H + sigma^2 I)^{-1} H^H`; the regularised
//!   optimum for uncoded SINR, degrades gracefully at low SNR.
//! * [`Detector::Conjugate`] — `H^H` (matched filter); no inversion at
//!   all (`O(MK)` instead of `O(MK^2)`), accepts inter-user interference.

use agora_math::{invert, CMat, Cf32};

/// Which linear detector to compute from the channel estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Detector {
    /// Zero-forcing pseudo-inverse (the paper's choice).
    ZeroForcing,
    /// Linear MMSE with the given noise power (per receive antenna).
    Mmse {
        /// Noise power `sigma^2` used for diagonal loading.
        noise_power: f32,
    },
    /// Conjugate (matched-filter) beamforming.
    Conjugate,
}

impl Detector {
    /// Computes the `K x M` detector matrix for a channel estimate `h`
    /// (`M x K`). Falls back to conjugate beamforming if an inversion
    /// fails (rank-deficient channel), mirroring a production fallback.
    pub fn compute(&self, h: &CMat) -> CMat {
        match self {
            Detector::ZeroForcing => match zf_from_gram(h, 0.0) {
                Some(w) => w,
                None => h.hermitian(),
            },
            Detector::Mmse { noise_power } => match zf_from_gram(h, *noise_power) {
                Some(w) => w,
                None => h.hermitian(),
            },
            Detector::Conjugate => {
                // Row-normalised matched filter so symbol amplitudes are
                // comparable to the inverting detectors.
                let mut w = h.hermitian();
                let m = w.cols();
                for u in 0..w.rows() {
                    let g: f32 = (0..m).map(|a| w[(u, a)].norm_sqr()).sum();
                    if g > 0.0 {
                        let inv = 1.0 / g;
                        for a in 0..m {
                            w[(u, a)] = w[(u, a)].scale(inv);
                        }
                    }
                }
                w
            }
        }
    }

    /// Post-detection SINR for user `user` given the true channel and
    /// noise power: signal power over (interference + amplified noise).
    pub fn sinr(&self, h: &CMat, noise_power: f32, user: usize) -> f32 {
        let w = self.compute(h);
        let eff = w.matmul(h); // K x K effective channel
        let k = h.cols();
        let signal = eff[(user, user)].norm_sqr();
        let interference: f32 =
            (0..k).filter(|&j| j != user).map(|j| eff[(user, j)].norm_sqr()).sum();
        let noise_gain: f32 =
            (0..h.rows()).map(|a| w[(user, a)].norm_sqr()).sum::<f32>() * noise_power;
        signal / (interference + noise_gain).max(f32::MIN_POSITIVE)
    }
}

/// Shared Gram-matrix route: `(H^H H + lambda I)^{-1} H^H`, `None` if the
/// (regularised) Gram matrix is singular.
pub(crate) fn zf_from_gram(h: &CMat, lambda: f32) -> Option<CMat> {
    let mut gram = h.gram();
    if lambda > 0.0 {
        for i in 0..gram.rows() {
            gram[(i, i)] += Cf32::real(lambda);
        }
    }
    invert(&gram).ok().map(|g| g.matmul(&h.hermitian()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_channel(m: usize, k: usize, seed: u64) -> CMat {
        let mut state = seed | 1;
        CMat::from_fn(m, k, |_, _| {
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 11) as f32 / (1u64 << 53) as f32) - 0.25
            };
            Cf32::new(next(), next())
        })
    }

    #[test]
    fn zero_forcing_nulls_interference() {
        let h = rand_channel(16, 4, 1);
        let w = Detector::ZeroForcing.compute(&h);
        let eff = w.matmul(&h);
        for u in 0..4 {
            for j in 0..4 {
                if u != j {
                    assert!(eff[(u, j)].abs() < 1e-3, "leakage {u}->{j}");
                }
            }
        }
    }

    #[test]
    fn mmse_approaches_zf_at_high_snr() {
        let h = rand_channel(16, 4, 2);
        let zf = Detector::ZeroForcing.compute(&h);
        let mmse = Detector::Mmse { noise_power: 1e-6 }.compute(&h);
        assert!(zf.max_abs_diff(&mmse) < 1e-2);
    }

    #[test]
    fn mmse_beats_zf_at_low_snr() {
        // Average SINR over users and channels at 0 dB.
        let noise = 1.0;
        let mut zf_sum = 0.0;
        let mut mmse_sum = 0.0;
        for seed in 0..8u64 {
            let h = rand_channel(8, 4, 100 + seed);
            for u in 0..4 {
                zf_sum += Detector::ZeroForcing.sinr(&h, noise, u);
                mmse_sum += Detector::Mmse { noise_power: noise }.sinr(&h, noise, u);
            }
        }
        assert!(
            mmse_sum > zf_sum,
            "MMSE ({mmse_sum}) must beat ZF ({zf_sum}) in the noise-limited regime"
        );
    }

    #[test]
    fn conjugate_has_no_inversion_but_leaks() {
        let h = rand_channel(16, 4, 3);
        let w = Detector::Conjugate.compute(&h);
        let eff = w.matmul(&h);
        // Diagonal is ~1 after row normalisation...
        for u in 0..4 {
            assert!((eff[(u, u)].re - 1.0).abs() < 0.05, "diag {u}: {:?}", eff[(u, u)]);
        }
        // ...but some inter-user leakage exists (unlike ZF).
        let leak: f32 = (0..4)
            .flat_map(|u| (0..4).filter(move |&j| j != u).map(move |j| (u, j)))
            .map(|(u, j)| eff[(u, j)].abs())
            .sum();
        assert!(leak > 0.01, "conjugate beamforming should leak a little");
    }

    #[test]
    fn conjugate_wins_in_huge_arrays_low_snr() {
        // With M >> K and strong noise, matched filtering's array gain
        // beats ZF's noise amplification on ill-conditioned draws.
        let noise = 4.0;
        let mut conj = 0.0;
        let mut zf = 0.0;
        for seed in 0..6u64 {
            let h = rand_channel(64, 2, 500 + seed);
            for u in 0..2 {
                conj += Detector::Conjugate.sinr(&h, noise, u);
                zf += Detector::ZeroForcing.sinr(&h, noise, u);
            }
        }
        // Conjugate should be at least competitive (within 3 dB).
        assert!(conj > zf / 2.0, "conjugate {conj} vs zf {zf}");
    }

    #[test]
    fn rank_deficient_channel_falls_back() {
        let col = rand_channel(8, 1, 7);
        let h = CMat::from_fn(8, 2, |r, _| col[(r, 0)]);
        let w = Detector::ZeroForcing.compute(&h);
        assert_eq!(w.shape(), (2, 8));
        assert!(w.all_finite());
    }
}
