//! Bit-level scrambling (3GPP-style Gold sequence).
//!
//! 5G NR scrambles coded bits with a length-31 Gold sequence seeded from
//! the cell and user identity, whitening the transmitted spectrum and
//! decorrelating inter-cell interference. Scrambling is an XOR, so the
//! descrambler is the same operation with the same seed.

/// Length-31 Gold sequence generator per TS 38.211 §5.2.1:
/// `x1` fixed-seeded, `x2` seeded by `c_init`, output advanced by
/// `Nc = 1600` before use.
#[derive(Debug, Clone)]
pub struct GoldSequence {
    x1: u32,
    x2: u32,
}

const NC: usize = 1600;

impl GoldSequence {
    /// Creates a generator for a given `c_init` (e.g. derived from RNTI
    /// and cell id), advanced past the standard warm-up.
    pub fn new(c_init: u32) -> Self {
        let mut g = Self { x1: 1, x2: c_init & 0x7FFF_FFFF };
        for _ in 0..NC {
            g.step();
        }
        g
    }

    /// Advances both LFSRs one step and returns the output bit.
    #[inline]
    fn step(&mut self) -> u8 {
        let out = ((self.x1 ^ self.x2) & 1) as u8;
        // x1: x^31 + x^3 + 1; x2: x^31 + x^3 + x^2 + x + 1.
        let n1 = ((self.x1 >> 3) ^ self.x1) & 1;
        let n2 = ((self.x2 >> 3) ^ (self.x2 >> 2) ^ (self.x2 >> 1) ^ self.x2) & 1;
        self.x1 = (self.x1 >> 1) | (n1 << 30);
        self.x2 = (self.x2 >> 1) | (n2 << 30);
        out
    }

    /// Produces the next `n` sequence bits.
    pub fn take(&mut self, n: usize) -> Vec<u8> {
        (0..n).map(|_| self.step()).collect()
    }
}

/// Scrambles (or descrambles) bits in place with the sequence for
/// `c_init`. Involutive: applying twice restores the input.
pub fn scramble(c_init: u32, bits: &mut [u8]) {
    let mut g = GoldSequence::new(c_init);
    for b in bits.iter_mut() {
        *b ^= g.step();
    }
}

/// Standard `c_init` derivation for PUSCH-style scrambling:
/// `rnti * 2^15 + cell_id` (simplified from TS 38.211 §6.3.1.1).
pub fn c_init_for(rnti: u16, cell_id: u16) -> u32 {
    ((rnti as u32) << 15) | (cell_id as u32 & 0x3FF)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scramble_is_involutive() {
        let orig: Vec<u8> = (0..500).map(|i| ((i * 7) % 2) as u8).collect();
        let mut bits = orig.clone();
        scramble(12345, &mut bits);
        assert_ne!(bits, orig, "scrambling must change the bits");
        scramble(12345, &mut bits);
        assert_eq!(bits, orig);
    }

    #[test]
    fn different_seeds_give_different_sequences() {
        let a = GoldSequence::new(1).take(256);
        let b = GoldSequence::new(2).take(256);
        assert_ne!(a, b);
    }

    #[test]
    fn sequence_is_balanced() {
        // Gold sequences are nearly balanced: ones fraction close to 1/2.
        let bits = GoldSequence::new(0xBEEF).take(10_000);
        let ones: usize = bits.iter().map(|&b| b as usize).sum();
        let frac = ones as f64 / bits.len() as f64;
        assert!((frac - 0.5).abs() < 0.02, "ones fraction {frac}");
    }

    #[test]
    fn sequence_has_low_autocorrelation() {
        let bits = GoldSequence::new(0x1234).take(4096);
        for shift in [1usize, 7, 63, 501] {
            let matches = bits.iter().zip(bits[shift..].iter()).filter(|(a, b)| a == b).count();
            let frac = matches as f64 / (bits.len() - shift) as f64;
            assert!((frac - 0.5).abs() < 0.05, "shift {shift}: match fraction {frac}");
        }
    }

    #[test]
    fn c_init_packs_rnti_and_cell() {
        assert_eq!(c_init_for(1, 0), 1 << 15);
        assert_eq!(c_init_for(0, 7), 7);
        assert_eq!(c_init_for(0xFFFF, 0x3FF), (0xFFFFu32 << 15) | 0x3FF);
    }

    #[test]
    fn generator_is_deterministic() {
        assert_eq!(GoldSequence::new(99).take(64), GoldSequence::new(99).take(64));
    }
}
