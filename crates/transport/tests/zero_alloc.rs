//! Steady-state intake must not allocate: with a `PacketPool` attached,
//! the batched UDP receive path recycles fixed slab slots and the send
//! path works out of caller-owned buffers, so after warm-up a
//! send/receive/drop cycle performs zero heap allocations. A counting
//! global allocator makes that claim checkable.

use agora_fronthaul::{
    encode, Fronthaul, PacketBuf, PacketDir, PacketHeader, PacketPool, UdpFronthaul,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::VecDeque;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// System allocator with an allocation counter (deallocations are free:
/// only new heap blocks betray a copy).
struct CountingAlloc;

// SAFETY: delegates every operation to `System` unchanged; the counter
// is a relaxed atomic with no allocation of its own.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_pooled_udp_cycle_is_allocation_free() {
    const BURST: usize = 16;
    const WARMUP: usize = 8;
    const MEASURED: usize = 64;

    let any: SocketAddr = "127.0.0.1:0".parse().unwrap();
    let mut tx = UdpFronthaul::new(any, any).unwrap();
    let rx = UdpFronthaul::new(any, tx.local_addr().unwrap())
        .unwrap()
        .with_pool(PacketPool::new(64, 2048));
    tx.set_peer(rx.local_addr().unwrap());

    // Pre-encoded template packets; cloning `Bytes` bumps a refcount.
    let template: Vec<PacketBuf> = (0..BURST)
        .map(|i| {
            let payload = vec![i as u8; 384];
            PacketBuf::from(encode(
                &PacketHeader {
                    frame: i as u32,
                    symbol: 0,
                    antenna: i as u16,
                    dir: PacketDir::Uplink,
                    cell: 0,
                    payload_len: payload.len() as u32,
                },
                &payload,
            ))
        })
        .collect();

    let mut outgoing: VecDeque<PacketBuf> = VecDeque::with_capacity(BURST);
    let mut got: Vec<PacketBuf> = Vec::with_capacity(BURST);
    let cycle = |outgoing: &mut VecDeque<PacketBuf>, got: &mut Vec<PacketBuf>| {
        for pkt in &template {
            outgoing.push_back(pkt.clone());
        }
        while !outgoing.is_empty() {
            if tx.send_batch(outgoing) == 0 {
                std::thread::yield_now();
            }
        }
        for _ in 0..1_000_000 {
            let want = BURST - got.len();
            rx.recv_batch(got, want);
            if got.len() == BURST {
                break;
            }
            std::thread::yield_now();
        }
        assert_eq!(got.len(), BURST, "loopback burst must arrive whole");
        // Dropping the pooled packets hands their slots straight back.
        got.clear();
    };

    for _ in 0..WARMUP {
        cycle(&mut outgoing, &mut got);
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..MEASURED {
        cycle(&mut outgoing, &mut got);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state batched+pooled intake must be allocation-free \
         ({MEASURED} cycles performed {} allocations)",
        after - before
    );
    assert_eq!(rx.link_errors(), (0, 0));
}

#[test]
fn steady_state_aggregated_pooled_cycle_is_allocation_free() {
    const BURST: usize = 16;
    const WARMUP: usize = 8;
    const MEASURED: usize = 64;

    let any: SocketAddr = "127.0.0.1:0".parse().unwrap();
    let mut tx = UdpFronthaul::new(any, any).unwrap().with_aggregation(8);
    let rx = UdpFronthaul::new(any, tx.local_addr().unwrap())
        .unwrap()
        .with_aggregation(8)
        .with_pool(PacketPool::new(64, 2048));
    tx.set_peer(rx.local_addr().unwrap());

    let template: Vec<PacketBuf> = (0..BURST)
        .map(|i| {
            let payload = vec![i as u8; 384];
            PacketBuf::from(encode(
                &PacketHeader {
                    frame: i as u32,
                    symbol: 0,
                    antenna: i as u16,
                    dir: PacketDir::Uplink,
                    cell: 0,
                    payload_len: payload.len() as u32,
                },
                &payload,
            ))
        })
        .collect();

    let mut outgoing: VecDeque<PacketBuf> = VecDeque::with_capacity(BURST);
    let mut got: Vec<PacketBuf> = Vec::with_capacity(BURST);
    // Warm-up grows the endpoint's reused jumbo build/receive scratch
    // once; after that a cycle is coalesce -> one datagram per 8
    // packets -> split into recycled pool slots, all allocation-free.
    let cycle = |outgoing: &mut VecDeque<PacketBuf>, got: &mut Vec<PacketBuf>| {
        for pkt in &template {
            outgoing.push_back(pkt.clone());
        }
        while !outgoing.is_empty() {
            if tx.send_batch(outgoing) == 0 {
                std::thread::yield_now();
            }
        }
        for _ in 0..1_000_000 {
            let want = BURST - got.len();
            rx.recv_batch(got, want);
            if got.len() == BURST {
                break;
            }
            std::thread::yield_now();
        }
        assert_eq!(got.len(), BURST, "loopback burst must arrive whole");
        got.clear();
    };

    for _ in 0..WARMUP {
        cycle(&mut outgoing, &mut got);
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..MEASURED {
        cycle(&mut outgoing, &mut got);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state aggregated+pooled intake must be allocation-free \
         ({MEASURED} cycles performed {} allocations)",
        after - before
    );
    assert_eq!(rx.link_errors(), (0, 0));
}
