//! The emulated RRU: a software IQ sample generator.
//!
//! Reproduces the paper's "high performance IQ sample generator" (§5.2):
//! for every symbol of every frame it synthesises what each RRU antenna
//! would receive over the air — pilots and modulated user data pushed
//! through a fading channel plus AWGN — converts to time domain, packs
//! 24-bit IQ samples, and emits one packet per antenna with the standard
//! 64-byte header. Ground truth (channel, transmitted bits) is returned
//! alongside so experiments can measure BER/BLER.

use crate::packet::{encode, PacketDir, PacketHeader};
use agora_channel::{AwgnSource, ChannelModel, FadingModel};
use agora_fft::{Ofdm, SubcarrierMap};
use agora_ldpc::Encoder;
use agora_math::{CMat, Cf32};
use agora_phy::frame::{CellConfig, SymbolType};
use agora_phy::iq::pack_samples;
use agora_phy::modulation::modulate;
use agora_phy::pilots::PilotPlan;
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Everything an experiment needs to score one generated frame.
#[derive(Debug, Clone)]
pub struct FrameGroundTruth {
    /// Frame id.
    pub frame: u32,
    /// The channel used for this frame (tap-0 / flat component).
    pub h: CMat,
    /// Per-subcarrier channel when the frame used a frequency-selective
    /// profile (`delay_spread_taps > 0`); one `M x K` matrix per active
    /// subcarrier.
    pub h_freq: Option<Vec<CMat>>,
    /// `info_bits[symbol][user]` — information bits of the code block
    /// carried by each uplink data symbol (empty for non-data symbols).
    pub info_bits: Vec<Vec<Vec<u8>>>,
    /// Noise power added per active subcarrier (for LLR scaling checks).
    pub noise_power: f32,
    /// Per-user linear amplitude gains.
    pub user_gains: Vec<f32>,
}

/// Configuration knobs of the generator beyond the cell config.
#[derive(Debug, Clone)]
pub struct RruConfig {
    /// Fading model for drawing per-frame channels.
    pub fading: FadingModel,
    /// SNR in dB (per active subcarrier, relative to the mean received
    /// signal power). The paper's emulated setup uses 25 dB.
    pub snr_db: f32,
    /// Optional per-user SNR offsets in dB (length `K`); models the OTA
    /// spread of 17–26 dB. Zeros when absent.
    pub user_snr_offsets_db: Option<Vec<f32>>,
    /// RNG seed for payloads, channels and noise.
    pub seed: u64,
    /// Redraw the channel every frame (block fading, the default). Set
    /// false for a static channel — e.g. fixed wireless, or validating
    /// the §3.4.2 stale-precoder early start where frame `f` beams with
    /// frame `f-1`'s CSI.
    pub redraw_channel: bool,
    /// Residual synchronisation drift: every symbol `s` of a frame is
    /// rotated by `s * phase_drift_rad` at the receiver (common phase
    /// error from oscillator/clock offset left after coarse sync). Zero
    /// by default.
    pub phase_drift_rad: f32,
    /// Multipath taps for a frequency-selective channel; 0 (default) is
    /// the paper's frequency-flat emulation. With `L > 0` each
    /// antenna-user link becomes an `L`-tap exponential power-delay
    /// profile, so the per-subcarrier channel varies across the band and
    /// exercises the estimator's interpolation and the per-group ZF
    /// approximation.
    pub delay_spread_taps: usize,
    /// Cell id stamped into every packet header; multi-cell generators
    /// share one fronthaul socket and demux on this byte.
    pub cell_id: u8,
}

impl Default for RruConfig {
    fn default() -> Self {
        Self {
            fading: FadingModel::Awgn,
            snr_db: 25.0,
            user_snr_offsets_db: None,
            seed: 1,
            redraw_channel: true,
            phase_drift_rad: 0.0,
            delay_spread_taps: 0,
            cell_id: 0,
        }
    }
}

/// The emulated RRU / IQ sample generator.
pub struct RruEmulator {
    cell: CellConfig,
    cfg: RruConfig,
    ofdm: Ofdm,
    pilots: PilotPlan,
    encoder: Encoder,
    channel: ChannelModel,
    noise: AwgnSource,
    payload_rng: StdRng,
    user_gains: Vec<f32>,
    /// Scratch: per-user frequency-domain symbols.
    user_freq: Vec<Vec<Cf32>>,
    /// The frozen channel when `redraw_channel` is false.
    static_h: Option<CMat>,
    /// RNG for multipath tap gains.
    tap_rng: StdRng,
}

impl RruEmulator {
    /// Builds a generator for a validated cell configuration.
    pub fn new(cell: CellConfig, cfg: RruConfig) -> Self {
        cell.validate().expect("invalid cell configuration");
        let map = SubcarrierMap::new(cell.fft_size, cell.num_data_sc);
        let ofdm = Ofdm::new(map, cell.cp_len);
        let pilots = PilotPlan::new(cell.pilot_scheme, cell.num_users, cell.num_data_sc);
        let encoder = Encoder::new(cell.ldpc.base_graph, cell.ldpc.z);
        let channel =
            ChannelModel::new(cell.num_antennas, cell.num_users, cfg.fading, cfg.seed ^ 0xC0FFEE);
        // Mean received power per active subcarrier per antenna is ~K for
        // unit-power user symbols and unit-power channel entries.
        let mean_signal = cell.num_users as f32;
        let noise_power = mean_signal * 10.0f32.powf(-cfg.snr_db / 10.0);
        let noise = AwgnSource::new(noise_power, cfg.seed ^ 0x5015E);
        let user_gains = match &cfg.user_snr_offsets_db {
            Some(offsets) => {
                assert_eq!(offsets.len(), cell.num_users, "need one offset per user");
                offsets.iter().map(|db| 10.0f32.powf(db / 20.0)).collect()
            }
            None => vec![1.0; cell.num_users],
        };
        let payload_rng = StdRng::seed_from_u64(cfg.seed ^ 0xB17);
        let user_freq = vec![vec![Cf32::ZERO; cell.num_data_sc]; cell.num_users];
        let tap_seed = cfg.seed ^ 0x7A95;
        let mut this = Self {
            cell,
            cfg,
            ofdm,
            pilots,
            encoder,
            channel,
            noise,
            payload_rng,
            user_gains,
            user_freq,
            static_h: None,
            tap_rng: StdRng::seed_from_u64(tap_seed),
        };
        if !this.cfg.redraw_channel {
            this.static_h = Some(this.channel.draw());
        }
        this
    }

    /// The cell configuration this generator serves.
    pub fn cell(&self) -> &CellConfig {
        &self.cell
    }

    /// The pilot plan (shared with receiver-side channel estimation).
    pub fn pilot_plan(&self) -> &PilotPlan {
        &self.pilots
    }

    /// The generator configuration.
    pub fn config(&self) -> &RruConfig {
        &self.cfg
    }

    /// Per-subcarrier noise power the generator injects.
    pub fn noise_power(&self) -> f32 {
        self.noise.noise_power()
    }

    /// Generates all packets of one frame with random user payloads.
    pub fn generate_frame(&mut self, frame: u32) -> (Vec<Bytes>, FrameGroundTruth) {
        self.generate_frame_with_bits(frame, None)
    }

    /// Generates one frame, sourcing each (uplink symbol, user) code
    /// block's information bits from `bits(symbol, user)` when provided
    /// (bit-per-byte, length [`agora_ldpc::Encoder::info_len`]); random
    /// payloads otherwise. This is how a MAC layer transmits real data
    /// through the emulated air interface.
    #[allow(clippy::type_complexity)]
    pub fn generate_frame_with_bits(
        &mut self,
        frame: u32,
        bits: Option<&dyn Fn(usize, usize) -> Vec<u8>>,
    ) -> (Vec<Bytes>, FrameGroundTruth) {
        let m = self.cell.num_antennas;
        let q = self.cell.num_data_sc;
        let h = match &self.static_h {
            Some(h) => h.clone(),
            None => self.channel.draw(),
        };
        // Optional frequency selectivity: per-link multipath taps turn the
        // flat draw into a per-subcarrier response
        // H[sc] = h * sum_t g_t e^{-j 2 pi sc t / N} (tap 0 dominant).
        let h_freq: Option<Vec<CMat>> = if self.cfg.delay_spread_taps > 0 {
            let taps = self.cfg.delay_spread_taps;
            let n = self.cell.fft_size as f32;
            // One tap-gain set per (antenna, user): exponential profile.
            let mut gains = vec![vec![Vec::with_capacity(taps); self.cell.num_users]; m];
            let mut norm = 0.0f32;
            let profile: Vec<f32> =
                (0..taps).map(|t| (-0.7 * t as f32).exp()).inspect(|p| norm += p * p).collect();
            let norm = norm.sqrt();
            for row in gains.iter_mut() {
                for cell_gains in row.iter_mut() {
                    for &p in &profile {
                        let phase = self.tap_rng.gen::<f32>() * core::f32::consts::TAU;
                        cell_gains.push(Cf32::cis(phase).scale(p / norm));
                    }
                }
            }
            let mut per_sc = Vec::with_capacity(q);
            for sc in 0..q {
                let mut hm = CMat::zeros(m, self.cell.num_users);
                for a in 0..m {
                    for u in 0..self.cell.num_users {
                        let mut resp = Cf32::ZERO;
                        for (t, &g) in gains[a][u].iter().enumerate() {
                            let ang = -core::f32::consts::TAU * sc as f32 * t as f32 / n;
                            resp = g.mul_add(Cf32::cis(ang), resp);
                        }
                        hm[(a, u)] = h[(a, u)] * resp;
                    }
                }
                per_sc.push(hm);
            }
            Some(per_sc)
        } else {
            None
        };
        let mut packets = Vec::with_capacity(self.cell.symbols_per_frame() * m);
        let mut info_bits: Vec<Vec<Vec<u8>>> = vec![Vec::new(); self.cell.symbols_per_frame()];
        // Per-symbol scratch, hoisted out of the hot loop.
        let mut time_buf = vec![Cf32::ZERO; self.ofdm.symbol_len()];
        let mut freq_rx = vec![Cf32::ZERO; q];
        let mut bytes_buf = Vec::new();

        let mut pilot_counter = 0usize;
        // Indexed access (`schedule.symbol` returns by value) instead of
        // iterating `symbols()` or `info_bits`: the loop body mutably
        // borrows `self` and writes `info_bits` only on uplink symbols.
        #[allow(clippy::needless_range_loop)]
        for sym_idx in 0..self.cell.symbols_per_frame() {
            let sym_type = self.cell.schedule.symbol(sym_idx);
            // 1. Build each user's frequency-domain symbol.
            match sym_type {
                SymbolType::Pilot => {
                    for u in 0..self.cell.num_users {
                        let tx = self.pilots.tx_pilot(pilot_counter, u);
                        for (dst, src) in self.user_freq[u].iter_mut().zip(tx.iter()) {
                            *dst = src.scale(self.user_gains[u]);
                        }
                    }
                    pilot_counter += 1;
                }
                SymbolType::Uplink => {
                    let coded_capacity = self.cell.bits_per_symbol_per_user();
                    let rm = self.cell.ldpc.rate_match();
                    let mut sym_bits = Vec::with_capacity(self.cell.num_users);
                    for u in 0..self.cell.num_users {
                        let info: Vec<u8> = match bits {
                            Some(f) => {
                                let v = f(sym_idx, u);
                                assert_eq!(v.len(), self.encoder.info_len());
                                v
                            }
                            None => (0..self.encoder.info_len())
                                .map(|_| self.payload_rng.gen::<bool>() as u8)
                                .collect(),
                        };
                        let cw = self.encoder.encode(&info);
                        let mut tx_bits = rm.extract(&cw);
                        // Pad with zeros up to the symbol's bit capacity.
                        tx_bits.resize(coded_capacity, 0);
                        let mut syms = Vec::new();
                        modulate(self.cell.modulation, &tx_bits, &mut syms);
                        debug_assert_eq!(syms.len(), q);
                        for (dst, s) in self.user_freq[u].iter_mut().zip(syms.iter()) {
                            *dst = s.scale(self.user_gains[u]);
                        }
                        sym_bits.push(info);
                    }
                    info_bits[sym_idx] = sym_bits;
                }
                SymbolType::Downlink | SymbolType::Empty => {
                    for u in 0..self.cell.num_users {
                        self.user_freq[u].fill(Cf32::ZERO);
                    }
                }
            }

            // 2. Mix through the channel per antenna, add noise, IFFT,
            // quantise, packetise.
            // Common phase error accumulated by this symbol (identical on
            // every antenna — it originates at the clock, not the array).
            let cpe = Cf32::cis(self.cfg.phase_drift_rad * sym_idx as f32);
            let gain = self.tx_gain();
            for ant in 0..m {
                for sc in 0..q {
                    let mut acc = Cf32::ZERO;
                    for u in 0..self.cell.num_users {
                        let link = match &h_freq {
                            Some(per_sc) => per_sc[sc][(ant, u)],
                            None => h[(ant, u)],
                        };
                        acc = link.mul_add(self.user_freq[u][sc], acc);
                    }
                    freq_rx[sc] = acc * cpe;
                }
                if sym_type != SymbolType::Empty && sym_type != SymbolType::Downlink {
                    self.noise.corrupt(&mut freq_rx);
                }
                self.ofdm.modulate(&freq_rx, &mut time_buf);
                // Headroom scaling: OFDM time samples are small after the
                // 1/N IFFT; scale into the 12-bit range without clipping.
                // In place — `modulate` fully rewrites `time_buf` for the
                // next antenna.
                for z in time_buf.iter_mut() {
                    *z = z.scale(gain);
                }
                pack_samples(&time_buf, &mut bytes_buf);
                let header = PacketHeader {
                    frame,
                    symbol: sym_idx as u16,
                    antenna: ant as u16,
                    dir: PacketDir::Uplink,
                    cell: self.cfg.cell_id,
                    payload_len: bytes_buf.len() as u32,
                };
                packets.push(encode(&header, &bytes_buf));
            }
        }

        let gt = FrameGroundTruth {
            frame,
            h,
            h_freq,
            info_bits,
            noise_power: self.noise.noise_power(),
            user_gains: self.user_gains.clone(),
        };
        (packets, gt)
    }

    /// Digital gain applied before 12-bit quantisation, chosen so the RMS
    /// time-domain amplitude lands near 1/8 full scale (OFDM PAPR head-
    /// room). The receiver divides it back out.
    pub fn tx_gain(&self) -> f32 {
        // RMS time amplitude ~= sqrt(K * Q) / N for unit-power subcarriers.
        let rms = (self.cell.num_users as f32 * self.cell.num_data_sc as f32).sqrt()
            / self.cell.fft_size as f32;
        0.125 / rms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::decode;
    use agora_fft::Direction;
    use agora_phy::iq::unpack_samples;

    fn tiny() -> (CellConfig, RruConfig) {
        (CellConfig::tiny_test(2), RruConfig { snr_db: 30.0, ..Default::default() })
    }

    #[test]
    fn frame_has_one_packet_per_symbol_per_antenna() {
        let (cell, rc) = tiny();
        let mut rru = RruEmulator::new(cell.clone(), rc);
        let (packets, gt) = rru.generate_frame(5);
        assert_eq!(packets.len(), cell.symbols_per_frame() * cell.num_antennas);
        assert_eq!(gt.frame, 5);
        // Packet headers enumerate (symbol, antenna) in order.
        let (h0, _) = decode(&packets[0]).unwrap();
        assert_eq!((h0.frame, h0.symbol, h0.antenna), (5, 0, 0));
        let (h1, _) = decode(&packets[1]).unwrap();
        assert_eq!(h1.antenna, 1);
        let (hlast, _) = decode(packets.last().unwrap()).unwrap();
        assert_eq!(hlast.symbol as usize, cell.symbols_per_frame() - 1);
        assert_eq!(hlast.antenna as usize, cell.num_antennas - 1);
    }

    #[test]
    fn payload_sizes_match_numerology() {
        let (cell, rc) = tiny();
        let mut rru = RruEmulator::new(cell.clone(), rc);
        let (packets, _) = rru.generate_frame(0);
        for p in &packets {
            let (h, payload) = decode(p).unwrap();
            assert_eq!(h.payload_len as usize, cell.samples_per_symbol() * 3);
            assert_eq!(payload.len(), cell.samples_per_symbol() * 3);
        }
    }

    #[test]
    fn ground_truth_covers_uplink_symbols() {
        let (cell, rc) = tiny();
        let mut rru = RruEmulator::new(cell.clone(), rc);
        let (_, gt) = rru.generate_frame(0);
        for (i, slot) in gt.info_bits.iter().enumerate() {
            match cell.schedule.symbol(i) {
                SymbolType::Uplink => {
                    assert_eq!(slot.len(), cell.num_users);
                    for bits in slot {
                        assert_eq!(bits.len(), cell.info_bits_per_symbol());
                    }
                }
                _ => assert!(slot.is_empty()),
            }
        }
    }

    #[test]
    fn channels_are_redrawn_per_frame() {
        let (cell, rc) = tiny();
        let mut rru = RruEmulator::new(cell, RruConfig { fading: FadingModel::Rayleigh, ..rc });
        let (_, gt0) = rru.generate_frame(0);
        let (_, gt1) = rru.generate_frame(1);
        assert!(gt0.h.max_abs_diff(&gt1.h) > 1e-3);
    }

    /// FFT of the received pilot symbol should approximately recover
    /// `H * pilot` at the pilot's subcarriers: an end-to-end check of
    /// the generator's signal chain.
    #[test]
    fn pilot_symbol_survives_fft_roundtrip() {
        let (cell, mut rc) = tiny();
        rc.snr_db = 60.0; // effectively noiseless
        let mut rru = RruEmulator::new(cell.clone(), rc);
        let gain = rru.tx_gain();
        let (packets, gt) = rru.generate_frame(0);
        // Packet 0: symbol 0 (pilot), antenna 0.
        let (h, payload) = decode(&packets[0]).unwrap();
        assert_eq!(h.symbol, 0);
        let mut time = Vec::new();
        unpack_samples(&payload, &mut time);
        // Undo the TX gain, FFT, demap.
        let map = SubcarrierMap::new(cell.fft_size, cell.num_data_sc);
        let plan = agora_fft::FftPlan::new(cell.fft_size);
        let mut grid: Vec<Cf32> = time.iter().map(|z| z.scale(1.0 / gain)).collect();
        plan.execute(&mut grid, Direction::Forward);
        let mut active = vec![Cf32::ZERO; cell.num_data_sc];
        map.demap_symbols(&grid, &mut active);
        // Compare against H * pilot on a few subcarriers.
        let pilots = PilotPlan::new(cell.pilot_scheme, cell.num_users, cell.num_data_sc);
        for sc in [0usize, 7, 100, 239] {
            let (user, p) = pilots.owner(0, sc).unwrap();
            let expect = gt.h[(0, user)] * p;
            let got = active[sc];
            assert!(
                (expect - got).abs() < 0.05 * expect.abs().max(0.1),
                "sc {sc}: expected {expect:?}, got {got:?}"
            );
        }
    }

    #[test]
    fn per_user_snr_offsets_scale_gains() {
        let cell = CellConfig::tiny_test(1);
        let rc = RruConfig { user_snr_offsets_db: Some(vec![0.0, -6.0]), ..Default::default() };
        let rru = RruEmulator::new(cell, rc);
        assert!((rru.user_gains[0] - 1.0).abs() < 1e-6);
        assert!((rru.user_gains[1] - 0.501).abs() < 0.01); // -6 dB ~ 1/2
    }

    #[test]
    fn deterministic_given_seed() {
        let (cell, rc) = tiny();
        let mut a = RruEmulator::new(cell.clone(), rc.clone());
        let mut b = RruEmulator::new(cell, rc);
        let (pa, _) = a.generate_frame(3);
        let (pb, _) = b.generate_frame(3);
        assert_eq!(pa.len(), pb.len());
        for (x, y) in pa.iter().zip(pb.iter()) {
            assert_eq!(x, y);
        }
    }
}
