//! Recycled packet buffers: the DPDK mempool substitute.
//!
//! The paper's fronthaul never allocates on the data path: DPDK hands the
//! NIC driver fixed-size mbufs from a preallocated pool and returns them
//! after processing. [`PacketPool`] reproduces that contract in safe-ish
//! Rust: one contiguous slab of `slots x slot_size` bytes, with a
//! lock-free free list of slot indices on [`agora_queue::MpmcQueue`].
//! Acquiring, filling and dropping a [`PooledPacket`] performs zero heap
//! allocations — the slot index just circulates through the ring.
//!
//! [`PacketBuf`] is the packet currency of the [`crate::Fronthaul`]
//! trait: either a heap-backed [`Bytes`] (tests, generators, duplicates)
//! or a pooled slot (steady-state RX/TX). Consumers only ever see `&[u8]`
//! through `Deref`, so the two representations are interchangeable.

use agora_queue::MpmcQueue;
use bytes::Bytes;
use core::cell::UnsafeCell;
use std::sync::Arc;

struct PoolShared {
    /// One contiguous slab of `slots * slot_size` bytes. Slot `i` owns
    /// bytes `[i * slot_size, (i + 1) * slot_size)` exclusively while
    /// checked out.
    slab: UnsafeCell<Box<[u8]>>,
    /// Free slot indices. Capacity >= `slots`, so returning a slot can
    /// never fail.
    free: MpmcQueue<u32>,
    slot_size: usize,
    slots: usize,
}

// SAFETY: the slab is only ever accessed through a checked-out
// `PooledPacket`, which holds its slot index exclusively (popped from the
// free list, pushed back only on drop). Distinct slots are disjoint byte
// ranges, so concurrent holders never alias; the MPMC queue's
// acquire/release pairs order a slot's release before its next acquire.
unsafe impl Send for PoolShared {}
unsafe impl Sync for PoolShared {}

/// A fixed-slab pool of recycled packet buffers (cheaply cloneable
/// handle; clones share the same slab).
#[derive(Clone)]
pub struct PacketPool {
    shared: Arc<PoolShared>,
}

impl PacketPool {
    /// Allocates a pool of `slots` buffers of `slot_size` bytes each.
    /// This is the only allocation the pool ever performs.
    pub fn new(slots: usize, slot_size: usize) -> PacketPool {
        assert!(slots > 0 && slot_size > 0, "pool must have non-empty slots");
        assert!(slots <= u32::MAX as usize, "slot index must fit u32");
        let free = MpmcQueue::new(slots);
        for i in 0..slots {
            free.push(i as u32).expect("free list sized for all slots");
        }
        PacketPool {
            shared: Arc::new(PoolShared {
                slab: UnsafeCell::new(vec![0u8; slots * slot_size].into_boxed_slice()),
                free,
                slot_size,
                slots,
            }),
        }
    }

    /// Checks a buffer out of the pool; `None` when every slot is in
    /// flight (callers fall back to heap buffers or retry).
    pub fn acquire(&self) -> Option<PooledPacket> {
        let slot = self.shared.free.pop()?;
        Some(PooledPacket { shared: self.shared.clone(), slot, len: 0 })
    }

    /// Total number of slots.
    pub fn capacity(&self) -> usize {
        self.shared.slots
    }

    /// Bytes per slot.
    pub fn slot_size(&self) -> usize {
        self.shared.slot_size
    }

    /// Slots currently in the free list. Exact when the pool is
    /// quiescent; approximate under concurrent churn.
    pub fn available(&self) -> usize {
        self.shared.free.len().min(self.shared.slots)
    }
}

impl core::fmt::Debug for PacketPool {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PacketPool")
            .field("slots", &self.shared.slots)
            .field("slot_size", &self.shared.slot_size)
            .field("available", &self.available())
            .finish()
    }
}

/// An exclusively-owned slot of a [`PacketPool`]. Dereferences to the
/// `len` bytes written so far; returns its slot to the pool on drop.
pub struct PooledPacket {
    shared: Arc<PoolShared>,
    slot: u32,
    len: u32,
}

impl PooledPacket {
    /// Writable capacity of the slot.
    pub fn capacity(&self) -> usize {
        self.shared.slot_size
    }

    /// Valid (written) length.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when no bytes have been marked valid.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Marks the first `len` bytes of the slot as valid packet data.
    pub fn set_len(&mut self, len: usize) {
        assert!(len <= self.shared.slot_size, "len {len} exceeds slot size");
        self.len = len as u32;
    }

    /// The full slot as a writable scratch buffer (e.g. a receive target
    /// or an encode destination). Call [`Self::set_len`] afterwards.
    pub fn buf_mut(&mut self) -> &mut [u8] {
        // SAFETY: this PooledPacket owns slot `self.slot` exclusively
        // (popped from the free list, not yet returned), `&mut self`
        // prevents aliasing through this handle, and distinct slots are
        // disjoint slab ranges.
        unsafe {
            let slab = (*self.shared.slab.get()).as_mut_ptr();
            core::slice::from_raw_parts_mut(
                slab.add(self.slot as usize * self.shared.slot_size),
                self.shared.slot_size,
            )
        }
    }

    /// Raw parts of the slot buffer for FFI receive paths: a pointer
    /// valid for `capacity()` writes while this packet is held.
    pub fn raw_parts_mut(&mut self) -> (*mut u8, usize) {
        let cap = self.capacity();
        (self.buf_mut().as_mut_ptr(), cap)
    }

    fn as_slice(&self) -> &[u8] {
        // SAFETY: exclusive slot ownership as in `buf_mut`; shared
        // reborrows of the valid prefix cannot race because writers need
        // `&mut self`.
        unsafe {
            let slab = (*self.shared.slab.get()).as_ptr();
            core::slice::from_raw_parts(
                slab.add(self.slot as usize * self.shared.slot_size),
                self.len as usize,
            )
        }
    }
}

impl core::ops::Deref for PooledPacket {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for PooledPacket {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl core::fmt::Debug for PooledPacket {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PooledPacket").field("slot", &self.slot).field("len", &self.len).finish()
    }
}

impl Drop for PooledPacket {
    fn drop(&mut self) {
        // Only the `slots` indices handed out at construction circulate,
        // and the ring's capacity covers all of them, so this cannot fail.
        let _ = self.shared.free.push(self.slot);
    }
}

/// A packet in flight: heap-backed or pool-backed, uniformly `&[u8]`.
#[derive(Debug)]
pub enum PacketBuf {
    /// Reference-counted heap buffer.
    Heap(Bytes),
    /// Checked-out pool slot (returned on drop).
    Pooled(PooledPacket),
}

impl PacketBuf {
    /// The packet bytes.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            PacketBuf::Heap(b) => b,
            PacketBuf::Pooled(p) => p,
        }
    }

    /// True when backed by a pool slot.
    pub fn is_pooled(&self) -> bool {
        matches!(self, PacketBuf::Pooled(_))
    }

    /// Converts to [`Bytes`]: free for heap packets, one copy for pooled
    /// packets (which releases the slot).
    pub fn into_bytes(self) -> Bytes {
        match self {
            PacketBuf::Heap(b) => b,
            PacketBuf::Pooled(p) => Bytes::copy_from_slice(&p),
        }
    }
}

impl Clone for PacketBuf {
    /// Heap packets clone by reference count; pooled packets deep-copy to
    /// the heap (cloning is the rare path — fault-injected duplicates).
    fn clone(&self) -> PacketBuf {
        match self {
            PacketBuf::Heap(b) => PacketBuf::Heap(b.clone()),
            PacketBuf::Pooled(p) => PacketBuf::Heap(Bytes::copy_from_slice(p)),
        }
    }
}

impl core::ops::Deref for PacketBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for PacketBuf {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Bytes> for PacketBuf {
    fn from(b: Bytes) -> PacketBuf {
        PacketBuf::Heap(b)
    }
}

impl From<Vec<u8>> for PacketBuf {
    fn from(v: Vec<u8>) -> PacketBuf {
        PacketBuf::Heap(Bytes::from(v))
    }
}

impl From<PooledPacket> for PacketBuf {
    fn from(p: PooledPacket) -> PacketBuf {
        PacketBuf::Pooled(p)
    }
}

impl PartialEq for PacketBuf {
    fn eq(&self, other: &PacketBuf) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for PacketBuf {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_write_read_roundtrip() {
        let pool = PacketPool::new(4, 128);
        let mut p = pool.acquire().unwrap();
        assert_eq!(p.capacity(), 128);
        p.buf_mut()[..5].copy_from_slice(b"agora");
        p.set_len(5);
        assert_eq!(&p[..], b"agora");
        assert_eq!(pool.available(), 3);
        drop(p);
        assert_eq!(pool.available(), 4);
    }

    #[test]
    fn exhaustion_returns_none_until_release() {
        let pool = PacketPool::new(2, 16);
        let a = pool.acquire().unwrap();
        let b = pool.acquire().unwrap();
        assert!(pool.acquire().is_none(), "exhausted pool must refuse");
        drop(a);
        assert!(pool.acquire().is_some());
        drop(b);
    }

    #[test]
    fn slots_are_disjoint() {
        let pool = PacketPool::new(3, 8);
        let mut held: Vec<PooledPacket> = (0..3).map(|_| pool.acquire().unwrap()).collect();
        for (i, p) in held.iter_mut().enumerate() {
            p.buf_mut().fill(i as u8 + 1);
            p.set_len(8);
        }
        for (i, p) in held.iter().enumerate() {
            assert!(p.iter().all(|&b| b == i as u8 + 1), "slot {i} corrupted by a neighbour");
        }
    }

    #[test]
    fn recycling_is_allocation_free_in_shape() {
        // Churn far more packets than slots: the same indices circulate.
        let pool = PacketPool::new(2, 32);
        for i in 0..1000u32 {
            let mut p = pool.acquire().unwrap();
            p.buf_mut()[..4].copy_from_slice(&i.to_le_bytes());
            p.set_len(4);
            assert_eq!(u32::from_le_bytes(p[..4].try_into().unwrap()), i);
        }
        assert_eq!(pool.available(), 2);
    }

    #[test]
    fn packet_buf_unifies_heap_and_pooled() {
        let pool = PacketPool::new(1, 16);
        let mut p = pool.acquire().unwrap();
        p.buf_mut()[..3].copy_from_slice(&[1, 2, 3]);
        p.set_len(3);
        let pooled = PacketBuf::from(p);
        let heap = PacketBuf::from(vec![1u8, 2, 3]);
        assert_eq!(pooled, heap);
        assert!(pooled.is_pooled() && !heap.is_pooled());
        // Cloning a pooled packet lands on the heap (slot not duplicated).
        let dup = pooled.clone();
        assert!(!dup.is_pooled());
        assert_eq!(dup, pooled);
        // into_bytes releases the slot.
        let b = pooled.into_bytes();
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(pool.available(), 1);
    }

    #[test]
    fn cross_thread_churn_loses_no_slots() {
        let pool = PacketPool::new(8, 64);
        std::thread::scope(|s| {
            for t in 0..4 {
                let pool = pool.clone();
                s.spawn(move || {
                    for i in 0..2000 {
                        if let Some(mut p) = pool.acquire() {
                            p.buf_mut()[0] = (t + i) as u8;
                            p.set_len(1);
                        } else {
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        assert_eq!(pool.available(), 8, "every slot must return to the free list");
    }
}
