//! The fronthaul packet format.
//!
//! One UDP packet per (frame, symbol, antenna): "Each packet consists of a
//! 64-byte header specifying the frame, symbol and antenna indexes, and as
//! many 24-bit IQ samples as the number of OFDM subcarriers" (§5.2). The
//! header is padded to 64 bytes so the payload starts cache-line aligned
//! after a kernel-bypass receive.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Header magic ("AGRA" little-endian) for cheap corruption detection.
pub const MAGIC: u32 = 0x4152_4741;
/// Wire size of the packet header.
pub const HEADER_LEN: usize = 64;

/// Direction discriminator carried in the header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum PacketDir {
    /// RRU -> baseband (received IQ samples).
    Uplink = 0,
    /// Baseband -> RRU (samples to transmit).
    Downlink = 1,
}

/// Parsed packet header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketHeader {
    /// Monotonic frame id.
    pub frame: u32,
    /// Symbol index within the frame.
    pub symbol: u16,
    /// Antenna index.
    pub antenna: u16,
    /// Direction of travel.
    pub dir: PacketDir,
    /// Payload length in bytes (`3 * samples`).
    pub payload_len: u32,
}

/// Errors from packet decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketError {
    /// Buffer shorter than the fixed header.
    TooShort,
    /// Magic mismatch.
    BadMagic,
    /// Unknown direction byte.
    BadDirection,
    /// Payload length field disagrees with the buffer.
    LengthMismatch,
}

impl core::fmt::Display for PacketError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PacketError::TooShort => write!(f, "packet shorter than header"),
            PacketError::BadMagic => write!(f, "bad magic"),
            PacketError::BadDirection => write!(f, "bad direction byte"),
            PacketError::LengthMismatch => write!(f, "payload length mismatch"),
        }
    }
}

impl std::error::Error for PacketError {}

/// Encodes a packet: 64-byte header followed by the sample payload.
pub fn encode(header: &PacketHeader, payload: &[u8]) -> Bytes {
    debug_assert_eq!(header.payload_len as usize, payload.len());
    let mut buf = BytesMut::with_capacity(HEADER_LEN + payload.len());
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(header.frame);
    buf.put_u16_le(header.symbol);
    buf.put_u16_le(header.antenna);
    buf.put_u8(header.dir as u8);
    buf.put_bytes(0, 3); // alignment
    buf.put_u32_le(payload.len() as u32);
    buf.put_bytes(0, HEADER_LEN - 20); // pad header to 64 bytes
    buf.put_slice(payload);
    buf.freeze()
}

/// Decodes a packet, returning the header and a zero-copy payload slice.
pub fn decode(packet: &Bytes) -> Result<(PacketHeader, Bytes), PacketError> {
    if packet.len() < HEADER_LEN {
        return Err(PacketError::TooShort);
    }
    let mut cur = &packet[..];
    if cur.get_u32_le() != MAGIC {
        return Err(PacketError::BadMagic);
    }
    let frame = cur.get_u32_le();
    let symbol = cur.get_u16_le();
    let antenna = cur.get_u16_le();
    let dir = match cur.get_u8() {
        0 => PacketDir::Uplink,
        1 => PacketDir::Downlink,
        _ => return Err(PacketError::BadDirection),
    };
    cur.advance(3);
    let payload_len = cur.get_u32_le();
    if packet.len() != HEADER_LEN + payload_len as usize {
        return Err(PacketError::LengthMismatch);
    }
    let header = PacketHeader { frame, symbol, antenna, dir, payload_len };
    Ok((header, packet.slice(HEADER_LEN..)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header(payload_len: u32) -> PacketHeader {
        PacketHeader { frame: 1234, symbol: 7, antenna: 63, dir: PacketDir::Uplink, payload_len }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let payload: Vec<u8> = (0..300).map(|i| i as u8).collect();
        let pkt = encode(&sample_header(300), &payload);
        assert_eq!(pkt.len(), HEADER_LEN + 300);
        let (h, p) = decode(&pkt).unwrap();
        assert_eq!(h, sample_header(300));
        assert_eq!(&p[..], &payload[..]);
    }

    #[test]
    fn header_is_exactly_64_bytes() {
        let pkt = encode(&sample_header(0), &[]);
        assert_eq!(pkt.len(), 64);
    }

    #[test]
    fn paper_sized_packet() {
        // 2048 subcarriers * 3 bytes = 6144-byte payload; fits a 9000-byte
        // jumbo Ethernet frame as the paper requires (§4.3).
        let payload = vec![0u8; 2048 * 3];
        let pkt = encode(
            &PacketHeader { payload_len: payload.len() as u32, ..sample_header(0) },
            &payload,
        );
        assert!(pkt.len() <= 9000, "packet {} bytes exceeds jumbo frame", pkt.len());
    }

    #[test]
    fn bad_magic_rejected() {
        let payload = [0u8; 8];
        let pkt = encode(&sample_header(8), &payload);
        let mut raw = pkt.to_vec();
        raw[0] ^= 0xFF;
        assert_eq!(decode(&Bytes::from(raw)).unwrap_err(), PacketError::BadMagic);
    }

    #[test]
    fn truncated_packet_rejected() {
        let pkt = encode(&sample_header(100), &[0u8; 100]);
        let truncated = pkt.slice(..40);
        assert_eq!(decode(&truncated).unwrap_err(), PacketError::TooShort);
        let clipped = pkt.slice(..HEADER_LEN + 50);
        assert_eq!(decode(&clipped).unwrap_err(), PacketError::LengthMismatch);
    }

    #[test]
    fn bad_direction_rejected() {
        let pkt = encode(&sample_header(0), &[]);
        let mut raw = pkt.to_vec();
        raw[12] = 9; // direction byte
        assert_eq!(decode(&Bytes::from(raw)).unwrap_err(), PacketError::BadDirection);
    }

    #[test]
    fn downlink_direction_roundtrips() {
        let h = PacketHeader { dir: PacketDir::Downlink, ..sample_header(0) };
        let (back, _) = decode(&encode(&h, &[])).unwrap();
        assert_eq!(back.dir, PacketDir::Downlink);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Decoding must never panic on arbitrary bytes — the fronthaul
        /// is an external input surface.
        #[test]
        fn decode_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let _ = decode(&Bytes::from(data));
        }

        /// Any well-formed packet roundtrips exactly.
        #[test]
        fn arbitrary_valid_packets_roundtrip(
            frame in any::<u32>(),
            symbol in any::<u16>(),
            antenna in any::<u16>(),
            dl in any::<bool>(),
            payload in proptest::collection::vec(any::<u8>(), 0..256),
        ) {
            let h = PacketHeader {
                frame,
                symbol,
                antenna,
                dir: if dl { PacketDir::Downlink } else { PacketDir::Uplink },
                payload_len: payload.len() as u32,
            };
            let (back, p) = decode(&encode(&h, &payload)).unwrap();
            prop_assert_eq!(back, h);
            prop_assert_eq!(&p[..], &payload[..]);
        }

        /// Truncating a valid packet anywhere must yield an error, never
        /// a bogus success.
        #[test]
        fn truncations_always_rejected(cut in 0usize..64) {
            let payload = vec![7u8; 96];
            let h = PacketHeader {
                frame: 1, symbol: 2, antenna: 3,
                dir: PacketDir::Uplink, payload_len: 96,
            };
            let pkt = encode(&h, &payload);
            let truncated = pkt.slice(..cut.min(pkt.len() - 1));
            prop_assert!(decode(&truncated).is_err());
        }
    }
}
