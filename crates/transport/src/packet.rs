//! The fronthaul packet format.
//!
//! One UDP packet per (frame, symbol, antenna): "Each packet consists of a
//! 64-byte header specifying the frame, symbol and antenna indexes, and as
//! many 24-bit IQ samples as the number of OFDM subcarriers" (§5.2). The
//! header is padded to 64 bytes so the payload starts cache-line aligned
//! after a kernel-bypass receive.
//!
//! Wire layout (little-endian):
//!
//! | offset | field       |
//! |--------|-------------|
//! | 0..4   | magic       |
//! | 4..8   | frame       |
//! | 8..10  | symbol      |
//! | 10..12 | antenna     |
//! | 12     | direction   |
//! | 13     | cell id     |
//! | 14..16 | (pad)       |
//! | 16..20 | payload_len |
//! | 20..64 | (pad)       |
//!
//! The cell id byte was carved out of the former alignment padding, so
//! single-cell packets from older encoders decode as cell 0 unchanged.

use bytes::{BufMut, Bytes, BytesMut};

/// Header magic ("AGRA" little-endian) for cheap corruption detection.
pub const MAGIC: u32 = 0x4152_4741;
/// Wire size of the packet header.
pub const HEADER_LEN: usize = 64;

/// Direction discriminator carried in the header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum PacketDir {
    /// RRU -> baseband (received IQ samples).
    Uplink = 0,
    /// Baseband -> RRU (samples to transmit).
    Downlink = 1,
}

/// Parsed packet header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketHeader {
    /// Monotonic frame id.
    pub frame: u32,
    /// Symbol index within the frame.
    pub symbol: u16,
    /// Antenna index.
    pub antenna: u16,
    /// Direction of travel.
    pub dir: PacketDir,
    /// Originating cell (multi-cell streams share one socket).
    pub cell: u8,
    /// Payload length in bytes (`3 * samples`).
    pub payload_len: u32,
}

/// Errors from packet decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketError {
    /// Buffer shorter than the fixed header.
    TooShort,
    /// Magic mismatch.
    BadMagic,
    /// Unknown direction byte.
    BadDirection,
    /// Payload length field disagrees with the buffer.
    LengthMismatch,
}

impl core::fmt::Display for PacketError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PacketError::TooShort => write!(f, "packet shorter than header"),
            PacketError::BadMagic => write!(f, "bad magic"),
            PacketError::BadDirection => write!(f, "bad direction byte"),
            PacketError::LengthMismatch => write!(f, "payload length mismatch"),
        }
    }
}

impl std::error::Error for PacketError {}

/// Encodes a packet: 64-byte header followed by the sample payload.
pub fn encode(header: &PacketHeader, payload: &[u8]) -> Bytes {
    debug_assert_eq!(header.payload_len as usize, payload.len());
    let mut buf = BytesMut::with_capacity(HEADER_LEN + payload.len());
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(header.frame);
    buf.put_u16_le(header.symbol);
    buf.put_u16_le(header.antenna);
    buf.put_u8(header.dir as u8);
    buf.put_u8(header.cell);
    buf.put_bytes(0, 2); // alignment
    buf.put_u32_le(payload.len() as u32);
    buf.put_bytes(0, HEADER_LEN - 20); // pad header to 64 bytes
    buf.put_slice(payload);
    buf.freeze()
}

/// Encodes a packet into a caller-provided buffer (e.g. a pooled slot),
/// returning the total packet length. Allocation-free.
///
/// # Panics
/// If `out` is shorter than `HEADER_LEN + payload.len()`.
pub fn encode_into(header: &PacketHeader, payload: &[u8], out: &mut [u8]) -> usize {
    debug_assert_eq!(header.payload_len as usize, payload.len());
    let total = HEADER_LEN + payload.len();
    assert!(out.len() >= total, "encode_into buffer too small: {} < {total}", out.len());
    out[0..4].copy_from_slice(&MAGIC.to_le_bytes());
    out[4..8].copy_from_slice(&header.frame.to_le_bytes());
    out[8..10].copy_from_slice(&header.symbol.to_le_bytes());
    out[10..12].copy_from_slice(&header.antenna.to_le_bytes());
    out[12] = header.dir as u8;
    out[13] = header.cell;
    out[14..16].fill(0);
    out[16..20].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    out[20..HEADER_LEN].fill(0);
    out[HEADER_LEN..total].copy_from_slice(payload);
    total
}

/// Decodes a packet from any byte slice, returning the header and a
/// borrowed payload view — no copy, no refcount traffic. This is the
/// intake path: pooled receive buffers are decoded in place and the
/// payload view lives as long as the buffer does.
pub fn decode_ref(packet: &[u8]) -> Result<(PacketHeader, &[u8]), PacketError> {
    if packet.len() < HEADER_LEN {
        return Err(PacketError::TooShort);
    }
    let magic = u32::from_le_bytes(packet[0..4].try_into().expect("4-byte slice"));
    if magic != MAGIC {
        return Err(PacketError::BadMagic);
    }
    let frame = u32::from_le_bytes(packet[4..8].try_into().expect("4-byte slice"));
    let symbol = u16::from_le_bytes(packet[8..10].try_into().expect("2-byte slice"));
    let antenna = u16::from_le_bytes(packet[10..12].try_into().expect("2-byte slice"));
    let dir = match packet[12] {
        0 => PacketDir::Uplink,
        1 => PacketDir::Downlink,
        _ => return Err(PacketError::BadDirection),
    };
    let cell = packet[13];
    let payload_len = u32::from_le_bytes(packet[16..20].try_into().expect("4-byte slice"));
    if packet.len() != HEADER_LEN + payload_len as usize {
        return Err(PacketError::LengthMismatch);
    }
    let header = PacketHeader { frame, symbol, antenna, dir, cell, payload_len };
    Ok((header, &packet[HEADER_LEN..]))
}

/// Decodes a packet, returning the header and a zero-copy payload slice
/// sharing the input's refcount (for callers that must own the payload).
pub fn decode(packet: &Bytes) -> Result<(PacketHeader, Bytes), PacketError> {
    let (header, _) = decode_ref(packet)?;
    Ok((header, packet.slice(HEADER_LEN..)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header(payload_len: u32) -> PacketHeader {
        PacketHeader {
            frame: 1234,
            symbol: 7,
            antenna: 63,
            dir: PacketDir::Uplink,
            cell: 0,
            payload_len,
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let payload: Vec<u8> = (0..300).map(|i| i as u8).collect();
        let pkt = encode(&sample_header(300), &payload);
        assert_eq!(pkt.len(), HEADER_LEN + 300);
        let (h, p) = decode(&pkt).unwrap();
        assert_eq!(h, sample_header(300));
        assert_eq!(&p[..], &payload[..]);
    }

    #[test]
    fn decode_ref_matches_decode() {
        let payload: Vec<u8> = (0..100).map(|i| (i * 3) as u8).collect();
        let pkt = encode(&PacketHeader { cell: 3, ..sample_header(100) }, &payload);
        let (h_owned, p_owned) = decode(&pkt).unwrap();
        let (h_ref, p_ref) = decode_ref(&pkt).unwrap();
        assert_eq!(h_owned, h_ref);
        assert_eq!(&p_owned[..], p_ref);
        assert_eq!(h_ref.cell, 3);
    }

    #[test]
    fn encode_into_matches_encode() {
        let payload: Vec<u8> = (0..200).map(|i| i as u8).collect();
        let h = PacketHeader { cell: 7, ..sample_header(200) };
        let reference = encode(&h, &payload);
        let mut slot = vec![0xAAu8; 1024];
        let n = encode_into(&h, &payload, &mut slot);
        assert_eq!(n, reference.len());
        assert_eq!(&slot[..n], &reference[..]);
    }

    #[test]
    fn header_is_exactly_64_bytes() {
        let pkt = encode(&sample_header(0), &[]);
        assert_eq!(pkt.len(), 64);
    }

    #[test]
    fn cell_id_occupies_former_padding() {
        // A pre-multi-cell encoder zeroed byte 13; such packets decode as
        // cell 0, and the cell id roundtrips through that byte.
        let pkt = encode(&PacketHeader { cell: 9, ..sample_header(0) }, &[]);
        assert_eq!(pkt[13], 9);
        let mut raw = pkt.to_vec();
        raw[13] = 0;
        let (h, _) = decode(&Bytes::from(raw)).unwrap();
        assert_eq!(h.cell, 0);
    }

    #[test]
    fn paper_sized_packet() {
        // 2048 subcarriers * 3 bytes = 6144-byte payload; fits a 9000-byte
        // jumbo Ethernet frame as the paper requires (§4.3).
        let payload = vec![0u8; 2048 * 3];
        let pkt = encode(
            &PacketHeader { payload_len: payload.len() as u32, ..sample_header(0) },
            &payload,
        );
        assert!(pkt.len() <= 9000, "packet {} bytes exceeds jumbo frame", pkt.len());
    }

    #[test]
    fn bad_magic_rejected() {
        let payload = [0u8; 8];
        let pkt = encode(&sample_header(8), &payload);
        let mut raw = pkt.to_vec();
        raw[0] ^= 0xFF;
        assert_eq!(decode(&Bytes::from(raw)).unwrap_err(), PacketError::BadMagic);
    }

    #[test]
    fn truncated_packet_rejected() {
        let pkt = encode(&sample_header(100), &[0u8; 100]);
        let truncated = pkt.slice(..40);
        assert_eq!(decode(&truncated).unwrap_err(), PacketError::TooShort);
        let clipped = pkt.slice(..HEADER_LEN + 50);
        assert_eq!(decode(&clipped).unwrap_err(), PacketError::LengthMismatch);
    }

    #[test]
    fn bad_direction_rejected() {
        let pkt = encode(&sample_header(0), &[]);
        let mut raw = pkt.to_vec();
        raw[12] = 9; // direction byte
        assert_eq!(decode(&Bytes::from(raw)).unwrap_err(), PacketError::BadDirection);
    }

    #[test]
    fn downlink_direction_roundtrips() {
        let h = PacketHeader { dir: PacketDir::Downlink, ..sample_header(0) };
        let (back, _) = decode(&encode(&h, &[])).unwrap();
        assert_eq!(back.dir, PacketDir::Downlink);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Decoding must never panic on arbitrary bytes — the fronthaul
        /// is an external input surface.
        #[test]
        fn decode_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let _ = decode(&Bytes::from(data));
        }

        /// Any well-formed packet roundtrips exactly.
        #[test]
        fn arbitrary_valid_packets_roundtrip(
            frame in any::<u32>(),
            symbol in any::<u16>(),
            antenna in any::<u16>(),
            cell in any::<u8>(),
            dl in any::<bool>(),
            payload in proptest::collection::vec(any::<u8>(), 0..256),
        ) {
            let h = PacketHeader {
                frame,
                symbol,
                antenna,
                dir: if dl { PacketDir::Downlink } else { PacketDir::Uplink },
                cell,
                payload_len: payload.len() as u32,
            };
            let (back, p) = decode(&encode(&h, &payload)).unwrap();
            prop_assert_eq!(back, h);
            prop_assert_eq!(&p[..], &payload[..]);
        }

        /// Truncating a valid packet anywhere must yield an error, never
        /// a bogus success.
        #[test]
        fn truncations_always_rejected(cut in 0usize..64) {
            let payload = vec![7u8; 96];
            let h = PacketHeader {
                frame: 1, symbol: 2, antenna: 3,
                dir: PacketDir::Uplink, cell: 0, payload_len: 96,
            };
            let pkt = encode(&h, &payload);
            let truncated = pkt.slice(..cut.min(pkt.len() - 1));
            prop_assert!(decode(&truncated).is_err());
        }
    }
}
