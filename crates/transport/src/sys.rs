//! Minimal, self-contained FFI for Linux batched UDP syscalls.
//!
//! The paper's fronthaul amortises per-packet cost through DPDK burst
//! I/O. The closest portable-kernel analogue is `sendmmsg(2)` /
//! `recvmmsg(2)`: one syscall moves up to [`MAX_BATCH`] datagrams. The
//! build environment has no registry access, so instead of the `libc`
//! crate this module hand-declares the three structs the two syscalls
//! need (`iovec`, `msghdr`, `mmsghdr`) with their x86-64/aarch64 glibc
//! layout, plus `sockaddr_in` for the send path.
//!
//! Everything is Linux-gated; on other targets the functions return
//! `ErrorKind::Unsupported` and [`crate::UdpFronthaul`] falls back to
//! the portable one-datagram-at-a-time loop. The same fallback engages
//! at runtime if the kernel rejects the syscalls (`ENOSYS`, seccomp
//! `EPERM`) or the peer is IPv6 (only `sockaddr_in` is declared).

use std::io;

/// Upper bound on datagrams per batched syscall. 64 keeps the on-stack
/// header arrays around 5 KB while amortising the syscall ~64x.
pub const MAX_BATCH: usize = 64;

/// Receive target handed to [`recv_batch`]: a raw destination buffer
/// plus the length the kernel wrote back. Raw pointers (rather than
/// `&mut [u8]`) let callers stage a fixed-size scratch array without
/// fighting reference initialisation; the contract is documented on
/// [`recv_batch`].
#[derive(Clone, Copy)]
pub struct RecvSlot {
    /// Destination buffer start. Must be valid for `cap` writes for the
    /// duration of the `recv_batch` call, with no other access.
    pub ptr: *mut u8,
    /// Destination buffer capacity in bytes.
    pub cap: usize,
    /// Bytes received into this slot (written by `recv_batch`).
    pub len: usize,
}

impl RecvSlot {
    /// An inert slot (ignored by `recv_batch` sizing if beyond `want`).
    pub const EMPTY: RecvSlot = RecvSlot { ptr: core::ptr::null_mut(), cap: 0, len: 0 };
}

/// True when the error means the batched syscalls are unavailable on
/// this kernel (not a transient socket condition): fall back to the
/// single-datagram path permanently.
pub fn batch_unsupported(err: &io::Error) -> bool {
    const ENOSYS: i32 = 38;
    const EPERM: i32 = 1;
    matches!(err.raw_os_error(), Some(ENOSYS) | Some(EPERM))
        || err.kind() == io::ErrorKind::Unsupported
}

#[cfg(target_os = "linux")]
mod imp {
    use super::{RecvSlot, MAX_BATCH};
    use core::ffi::{c_int, c_uint, c_void};
    use std::io;
    use std::net::{SocketAddr, UdpSocket};
    use std::os::fd::AsRawFd;

    const AF_INET: u16 = 2;
    const MSG_DONTWAIT: c_int = 0x40;

    /// `struct iovec` from `<sys/uio.h>`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct IoVec {
        base: *mut c_void,
        len: usize,
    }

    /// `struct msghdr` from `<sys/socket.h>` (glibc layout: `msg_iovlen`
    /// and `msg_controllen` are `size_t` on 64-bit Linux).
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct MsgHdr {
        name: *mut c_void,
        namelen: u32,
        iov: *mut IoVec,
        iovlen: usize,
        control: *mut c_void,
        controllen: usize,
        flags: c_int,
    }

    /// `struct mmsghdr` from `<sys/socket.h>`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct MMsgHdr {
        hdr: MsgHdr,
        len: c_uint,
    }

    /// `struct sockaddr_in` from `<netinet/in.h>`; `port` and `addr` are
    /// big-endian on the wire.
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct SockAddrIn {
        family: u16,
        port: u16,
        addr: u32,
        zero: [u8; 8],
    }

    extern "C" {
        fn sendmmsg(fd: c_int, msgvec: *mut MMsgHdr, vlen: c_uint, flags: c_int) -> c_int;
        fn recvmmsg(
            fd: c_int,
            msgvec: *mut MMsgHdr,
            vlen: c_uint,
            flags: c_int,
            timeout: *mut c_void,
        ) -> c_int;
    }

    const NULL_IOV: IoVec = IoVec { base: core::ptr::null_mut(), len: 0 };
    const NULL_MSG: MMsgHdr = MMsgHdr {
        hdr: MsgHdr {
            name: core::ptr::null_mut(),
            namelen: 0,
            iov: core::ptr::null_mut(),
            iovlen: 0,
            control: core::ptr::null_mut(),
            controllen: 0,
            flags: 0,
        },
        len: 0,
    };

    /// Sends up to `MAX_BATCH` datagrams in one `sendmmsg` call; returns
    /// how many the kernel accepted (a prefix of `pkts`).
    pub fn send_batch(socket: &UdpSocket, peer: SocketAddr, pkts: &[&[u8]]) -> io::Result<usize> {
        let SocketAddr::V4(peer4) = peer else {
            return Err(io::Error::new(io::ErrorKind::Unsupported, "mmsg path is IPv4-only"));
        };
        let n = pkts.len().min(MAX_BATCH);
        if n == 0 {
            return Ok(0);
        }
        let mut name = SockAddrIn {
            family: AF_INET,
            port: peer4.port().to_be(),
            addr: u32::from(*peer4.ip()).to_be(),
            zero: [0; 8],
        };
        let mut iovs = [NULL_IOV; MAX_BATCH];
        let mut msgs = [NULL_MSG; MAX_BATCH];
        for i in 0..n {
            // The kernel never writes through a send iovec; the *mut cast
            // is demanded by the (symmetric) C signature.
            iovs[i] = IoVec { base: pkts[i].as_ptr() as *mut c_void, len: pkts[i].len() };
            msgs[i].hdr = MsgHdr {
                name: (&mut name) as *mut SockAddrIn as *mut c_void,
                namelen: core::mem::size_of::<SockAddrIn>() as u32,
                iov: &mut iovs[i],
                iovlen: 1,
                control: core::ptr::null_mut(),
                controllen: 0,
                flags: 0,
            };
        }
        // SAFETY: `msgs[..n]` is fully initialised; every iovec points at
        // a live `&[u8]` borrowed for the duration of the call; `name`
        // outlives the call and matches `namelen`. `sendmmsg` only reads
        // the payload buffers.
        let sent = unsafe { sendmmsg(socket.as_raw_fd(), msgs.as_mut_ptr(), n as c_uint, 0) };
        if sent < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(sent as usize)
        }
    }

    /// Receives up to `slots.len().min(MAX_BATCH)` datagrams in one
    /// `recvmmsg` call, writing each datagram into its slot and the
    /// received length into `slot.len`. Returns how many slots were
    /// filled (a prefix).
    ///
    /// Caller contract: each `slots[i].ptr` must be valid for
    /// `slots[i].cap` writes for the duration of the call, with no
    /// concurrent access (see [`RecvSlot::ptr`]). Datagrams longer than
    /// `cap` are truncated by the kernel.
    pub fn recv_batch(socket: &UdpSocket, slots: &mut [RecvSlot]) -> io::Result<usize> {
        let n = slots.len().min(MAX_BATCH);
        if n == 0 {
            return Ok(0);
        }
        let mut iovs = [NULL_IOV; MAX_BATCH];
        let mut msgs = [NULL_MSG; MAX_BATCH];
        for i in 0..n {
            iovs[i] = IoVec { base: slots[i].ptr as *mut c_void, len: slots[i].cap };
            msgs[i].hdr.iov = &mut iovs[i];
            msgs[i].hdr.iovlen = 1;
        }
        // SAFETY: `msgs[..n]` is fully initialised; by the caller
        // contract every iovec points at an exclusively-held buffer valid
        // for `cap` writes. `MSG_DONTWAIT` keeps the call non-blocking
        // regardless of socket mode; the null timeout is allowed.
        let got = unsafe {
            recvmmsg(
                socket.as_raw_fd(),
                msgs.as_mut_ptr(),
                n as c_uint,
                MSG_DONTWAIT,
                core::ptr::null_mut(),
            )
        };
        if got < 0 {
            return Err(io::Error::last_os_error());
        }
        let got = got as usize;
        for i in 0..got {
            slots[i].len = msgs[i].len as usize;
        }
        Ok(got)
    }
}

#[cfg(target_os = "linux")]
pub use imp::{recv_batch, send_batch};

#[cfg(not(target_os = "linux"))]
mod imp_portable {
    use super::RecvSlot;
    use std::io;
    use std::net::{SocketAddr, UdpSocket};

    fn unsupported() -> io::Error {
        io::Error::new(io::ErrorKind::Unsupported, "batched socket I/O requires Linux")
    }

    /// Non-Linux stub: always `Unsupported`, so callers engage the
    /// portable single-datagram fallback.
    pub fn send_batch(_: &UdpSocket, _: SocketAddr, _: &[&[u8]]) -> io::Result<usize> {
        Err(unsupported())
    }

    /// Non-Linux stub: always `Unsupported`.
    pub fn recv_batch(_: &UdpSocket, _: &mut [RecvSlot]) -> io::Result<usize> {
        Err(unsupported())
    }
}

#[cfg(not(target_os = "linux"))]
pub use imp_portable::{recv_batch, send_batch};

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::net::{SocketAddr, UdpSocket};

    fn pair() -> (UdpSocket, UdpSocket, SocketAddr) {
        let a = UdpSocket::bind("127.0.0.1:0").unwrap();
        let b = UdpSocket::bind("127.0.0.1:0").unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        let dst = b.local_addr().unwrap();
        (a, b, dst)
    }

    #[test]
    fn mmsg_roundtrip_preserves_order_and_content() {
        let (tx, rx, dst) = pair();
        let pkts: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; 32 + i as usize]).collect();
        let refs: Vec<&[u8]> = pkts.iter().map(|p| &p[..]).collect();
        let sent = match send_batch(&tx, dst, &refs) {
            Ok(n) => n,
            Err(e) if batch_unsupported(&e) => return, // kernel without mmsg: nothing to test
            Err(e) => panic!("sendmmsg failed: {e}"),
        };
        assert_eq!(sent, 10);
        let mut bufs = vec![[0u8; 64]; 10];
        let mut slots: Vec<RecvSlot> =
            bufs.iter_mut().map(|b| RecvSlot { ptr: b.as_mut_ptr(), cap: 64, len: 0 }).collect();
        // Loopback delivery is fast but give the kernel a moment.
        let mut got = 0;
        for _ in 0..1000 {
            match recv_batch(&rx, &mut slots[got..]) {
                Ok(0) => std::thread::yield_now(),
                Ok(n) => {
                    // recv_batch writes lens into the subslice; shift base.
                    got += n;
                    if got == 10 {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::yield_now(),
                Err(e) => panic!("recvmmsg failed: {e}"),
            }
        }
        assert_eq!(got, 10);
        // Note: slots beyond the first recv_batch call received their lens
        // relative to the subslice start, which we advanced, so `slots[i]`
        // always describes packet i.
        for (i, (slot, buf)) in slots.iter().zip(&bufs).enumerate() {
            assert_eq!(slot.len, 32 + i, "packet {i} length");
            assert!(buf[..slot.len].iter().all(|&b| b == i as u8), "packet {i} content");
        }
    }

    #[test]
    fn recv_batch_on_empty_socket_would_block() {
        let (_tx, rx, _dst) = pair();
        let mut buf = [0u8; 16];
        let mut slots = [RecvSlot { ptr: buf.as_mut_ptr(), cap: 16, len: 0 }];
        match recv_batch(&rx, &mut slots) {
            Ok(0) => {}
            Ok(n) => panic!("received {n} packets from an empty socket"),
            Err(e) => assert!(
                e.kind() == std::io::ErrorKind::WouldBlock || batch_unsupported(&e),
                "unexpected error: {e}"
            ),
        }
    }
}
