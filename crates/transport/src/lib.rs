//! # agora-fronthaul — the RRU/baseband link
//!
//! Substitute for the paper's DPDK fronthaul (DESIGN.md §3):
//!
//! * [`packet`]: the 64-byte-header UDP packet format of §5.2.
//! * [`pool`]: recycled fixed-slab packet buffers (the mempool
//!   substitute) and the [`PacketBuf`] packet currency.
//! * [`sys`]: hand-declared `sendmmsg`/`recvmmsg` FFI (Linux) for
//!   batched socket I/O; portable fallback elsewhere.
//! * [`fronthaul`]: the [`Fronthaul`] transport trait — lock-free
//!   in-memory rings (DPDK stand-in) and real UDP sockets with batched,
//!   pooled, error-counted I/O.
//! * [`demux`]: cell-aware routing of one socket's receive stream to
//!   per-cell intakes (multi-cell deployments).
//! * [`rru`]: the emulated RRU / IQ sample generator with ground truth.
//! * [`gen`]: the paced, fault-injecting multi-cell traffic generator.
//! * [`pacing`]: nanosecond-precision symbol pacing.
//! * [`fault`]: deterministic fault injection (loss/reorder/dup/jitter).

pub mod demux;
pub mod fault;
pub mod fronthaul;
pub mod gen;
pub mod pacing;
pub mod packet;
pub mod pool;
pub mod rru;
pub mod sys;

pub use demux::{CellDemux, DemuxStats, Route};
pub use fault::{FaultConfig, FaultInjector, FaultStats, FaultyFronthaul, LossModel};
pub use fronthaul::{Fronthaul, MemFronthaul, UdpFronthaul};
pub use gen::MultiCellGenerator;
pub use pacing::Pacer;
pub use packet::{
    decode, decode_ref, encode, encode_into, PacketDir, PacketError, PacketHeader, HEADER_LEN,
};
pub use pool::{PacketBuf, PacketPool, PooledPacket};
pub use rru::{FrameGroundTruth, RruConfig, RruEmulator};
