//! # agora-fronthaul — the RRU/baseband link
//!
//! Substitute for the paper's DPDK fronthaul (DESIGN.md §3):
//!
//! * [`packet`]: the 64-byte-header UDP packet format of §5.2.
//! * [`fronthaul`]: the [`Fronthaul`] transport trait with lock-free
//!   in-memory rings (DPDK stand-in) and real UDP sockets.
//! * [`rru`]: the emulated RRU / IQ sample generator with ground truth.
//! * [`pacing`]: nanosecond-precision symbol pacing.
//! * [`fault`]: deterministic fault injection (loss/reorder/dup/jitter).

pub mod fault;
pub mod fronthaul;
pub mod pacing;
pub mod packet;
pub mod rru;

pub use fault::{FaultConfig, FaultInjector, FaultStats, FaultyFronthaul, LossModel};
pub use fronthaul::{Fronthaul, MemFronthaul, UdpFronthaul};
pub use pacing::Pacer;
pub use packet::{decode, encode, PacketDir, PacketError, PacketHeader, HEADER_LEN};
pub use rru::{FrameGroundTruth, RruConfig, RruEmulator};
