//! Fronthaul fault injection: deterministic loss, reordering,
//! duplication and arrival jitter.
//!
//! The paper's fronthaul is a dedicated 40 GbE link, but §6 still
//! observes occasional packet loss ("Agora drops the frame and
//! continues") — the baseband must degrade gracefully, never hang or
//! touch freed frame buffers. This module makes that failure mode a
//! first-class, *reproducible* experiment axis: [`FaultInjector`]
//! transforms a packet stream under a seeded RNG, so a given
//! `(FaultConfig, packet stream)` pair always produces the same losses,
//! duplicates and arrival order. [`FaultyFronthaul`] applies the same
//! model online around any [`Fronthaul`] implementation.
//!
//! Loss models:
//! * **i.i.d.** — every packet dropped independently with probability
//!   `p` (random congestion drops).
//! * **Gilbert–Elliott** — a two-state Markov chain (good/bad) with
//!   per-state loss probabilities, reproducing the *bursty* loss of a
//!   congested or interfered link: losses cluster, which stresses frame
//!   abandonment much harder than the same average rate spread evenly.
//!
//! Reordering/jitter uses slot displacement: packet `i` is released at
//! slot `i + d` with `d` drawn from `1..=max_delay` (probability
//! `reorder_prob`), then the stream is stably sorted by slot. This
//! models NIC/switch queue jitter: packets leave late but the stream
//! stays causally plausible.

use crate::fronthaul::Fronthaul;
use crate::packet::decode_ref;
use crate::pool::PacketBuf;
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Packet-loss process applied to the stream.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum LossModel {
    /// No loss (the default).
    #[default]
    None,
    /// Independent loss with probability `p` per packet.
    Iid {
        /// Per-packet loss probability in `[0, 1]`.
        p: f64,
    },
    /// Two-state Markov (Gilbert–Elliott) bursty loss.
    GilbertElliott {
        /// Probability of moving good -> bad at each packet.
        p_enter_burst: f64,
        /// Probability of moving bad -> good at each packet.
        p_exit_burst: f64,
        /// Loss probability while in the good state.
        loss_good: f64,
        /// Loss probability while in the bad state.
        loss_bad: f64,
    },
}

impl LossModel {
    /// Samples whether the next packet is lost, advancing the burst
    /// state for the Markov model. Exactly one state transition and one
    /// loss draw are consumed per call, so the RNG stream is stable.
    pub fn sample<R: Rng>(&self, rng: &mut R, in_burst: &mut bool) -> bool {
        match *self {
            LossModel::None => false,
            LossModel::Iid { p } => p > 0.0 && rng.gen_bool(p),
            LossModel::GilbertElliott { p_enter_burst, p_exit_burst, loss_good, loss_bad } => {
                let flip = if *in_burst { p_exit_burst } else { p_enter_burst };
                if flip > 0.0 && rng.gen_bool(flip) {
                    *in_burst = !*in_burst;
                }
                let p = if *in_burst { loss_bad } else { loss_good };
                p > 0.0 && rng.gen_bool(p)
            }
        }
    }

    /// The stationary mean loss rate of the model (for labelling sweeps).
    pub fn mean_rate(&self) -> f64 {
        match *self {
            LossModel::None => 0.0,
            LossModel::Iid { p } => p,
            LossModel::GilbertElliott { p_enter_burst, p_exit_burst, loss_good, loss_bad } => {
                let denom = p_enter_burst + p_exit_burst;
                if denom == 0.0 {
                    return loss_good;
                }
                let frac_bad = p_enter_burst / denom;
                loss_good * (1.0 - frac_bad) + loss_bad * frac_bad
            }
        }
    }
}

/// Full fault-injection configuration. The default injects nothing, so
/// wiring the injector in unconditionally costs only a per-packet branch.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Loss process.
    pub loss: LossModel,
    /// Probability a delivered packet is delayed (slot-displaced).
    pub reorder_prob: f64,
    /// Maximum displacement in slots (packets) for a delayed packet.
    pub max_delay: usize,
    /// Probability a delivered packet is also duplicated; the copy gets
    /// its own displacement, so duplicates may arrive arbitrarily late.
    pub duplicate_prob: f64,
    /// RNG seed. Same seed + same stream -> same faults, always.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            loss: LossModel::None,
            reorder_prob: 0.0,
            max_delay: 8,
            duplicate_prob: 0.0,
            seed: 1,
        }
    }
}

/// Counts of what the injector actually did.
#[derive(Debug, Clone, Default)]
pub struct FaultStats {
    /// Packets offered to the injector.
    pub offered: u64,
    /// Packets emitted (delivered originals + duplicates).
    pub delivered: u64,
    /// Packets dropped by the loss model.
    pub lost: u64,
    /// Extra copies injected.
    pub duplicated: u64,
    /// Packets emitted after a packet that was originally behind them.
    pub reordered: u64,
    /// Losses per frame id (decoded from the packet header; packets with
    /// undecodable headers are counted in `lost` only).
    pub per_frame_lost: BTreeMap<u32, u32>,
    /// Losses per originating cell (multi-cell streams share one link).
    pub per_cell_lost: BTreeMap<u8, u64>,
    /// Injected duplicates per cell.
    pub per_cell_duplicated: BTreeMap<u8, u64>,
    /// Emitted packets per cell (originals + duplicates).
    pub per_cell_delivered: BTreeMap<u8, u64>,
    /// Losses per (cell, frame) — the per-cell refinement of
    /// `per_frame_lost`, for reconciling demuxed engines exactly.
    pub per_cell_frame_lost: BTreeMap<(u8, u32), u32>,
}

impl FaultStats {
    fn note_lost(&mut self, pkt: &[u8]) {
        self.lost += 1;
        if let Ok((hdr, _)) = decode_ref(pkt) {
            *self.per_frame_lost.entry(hdr.frame).or_insert(0) += 1;
            *self.per_cell_lost.entry(hdr.cell).or_insert(0) += 1;
            *self.per_cell_frame_lost.entry((hdr.cell, hdr.frame)).or_insert(0) += 1;
        }
    }

    fn note_duplicated(&mut self, pkt: &[u8]) {
        self.duplicated += 1;
        if let Ok((hdr, _)) = decode_ref(pkt) {
            *self.per_cell_duplicated.entry(hdr.cell).or_insert(0) += 1;
        }
    }

    fn note_delivered(&mut self, pkt: &[u8]) {
        self.delivered += 1;
        if let Ok((hdr, _)) = decode_ref(pkt) {
            *self.per_cell_delivered.entry(hdr.cell).or_insert(0) += 1;
        }
    }
}

/// Offline fault injector: transforms a complete packet stream.
pub struct FaultInjector {
    cfg: FaultConfig,
    rng: StdRng,
    in_burst: bool,
    stats: FaultStats,
}

impl FaultInjector {
    /// Creates an injector with its RNG seeded from `cfg.seed`.
    pub fn new(cfg: FaultConfig) -> Self {
        Self {
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            in_burst: false,
            stats: FaultStats::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Cumulative statistics across all `apply` calls.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    fn record_loss(stats: &mut FaultStats, pkt: &[u8]) {
        stats.note_lost(pkt);
    }

    /// Samples a slot displacement for a delivered packet: `0` (on time)
    /// or `1..=max_delay`. Consumes a fixed number of RNG draws per
    /// outcome so fault streams stay reproducible.
    fn sample_delay(&mut self) -> usize {
        if self.cfg.reorder_prob > 0.0
            && self.cfg.max_delay > 0
            && self.rng.gen_bool(self.cfg.reorder_prob)
        {
            self.rng.gen_range(0..self.cfg.max_delay) + 1
        } else {
            0
        }
    }

    /// Applies the configured faults to a packet stream and returns the
    /// faulted stream (possibly shorter through loss, longer through
    /// duplication, and re-ordered through jitter).
    pub fn apply(&mut self, packets: Vec<Bytes>) -> Vec<Bytes> {
        // (release slot, emission seq, original index, packet)
        let mut staged: Vec<(usize, usize, usize, Bytes)> = Vec::with_capacity(packets.len());
        let mut seq = 0usize;
        for (i, pkt) in packets.into_iter().enumerate() {
            self.stats.offered += 1;
            if self.cfg.loss.sample(&mut self.rng, &mut self.in_burst) {
                Self::record_loss(&mut self.stats, &pkt);
                continue;
            }
            let delay = self.sample_delay();
            let duplicate =
                self.cfg.duplicate_prob > 0.0 && self.rng.gen_bool(self.cfg.duplicate_prob);
            if duplicate {
                self.stats.note_duplicated(&pkt);
                let dup_delay = self.sample_delay();
                staged.push((i + 1 + dup_delay, seq + 1, i, pkt.clone()));
            }
            staged.push((i + delay, seq, i, pkt));
            seq += 2;
        }
        // Stable release order: by slot, ties by emission sequence.
        staged.sort_by_key(|&(slot, s, _, _)| (slot, s));
        let mut max_orig = 0usize;
        let mut first = true;
        let mut out = Vec::with_capacity(staged.len());
        for (_, _, orig, pkt) in staged {
            if !first && orig < max_orig {
                self.stats.reordered += 1;
            }
            max_orig = max_orig.max(orig);
            first = false;
            self.stats.note_delivered(&pkt);
            out.push(pkt);
        }
        out
    }
}

struct FaultyState {
    rng: StdRng,
    in_burst: bool,
    stats: FaultStats,
    /// Packets awaiting release, keyed by (release tick, admission seq).
    pending: BTreeMap<(u64, u64), (u64, PacketBuf)>,
    /// Virtual clock: advances on every admitted packet and every
    /// `recv` poll, so jittered packets drain even when the sender
    /// pauses.
    tick: u64,
    seq: u64,
    /// Highest admission index emitted so far (reorder detection).
    max_emitted: u64,
    emitted_any: bool,
}

/// Online fault injection around any [`Fronthaul`]: `recv` pulls from the
/// inner transport through the fault model. `send` passes through
/// untouched (faults are injected on the receive path only, which is
/// where the baseband's robustness is tested).
pub struct FaultyFronthaul<F: Fronthaul> {
    inner: F,
    cfg: FaultConfig,
    state: Mutex<FaultyState>,
}

impl<F: Fronthaul> FaultyFronthaul<F> {
    /// Wraps `inner` with the fault model of `cfg`.
    pub fn new(inner: F, cfg: FaultConfig) -> Self {
        Self {
            inner,
            cfg,
            state: Mutex::new(FaultyState {
                rng: StdRng::seed_from_u64(cfg.seed),
                in_burst: false,
                stats: FaultStats::default(),
                pending: BTreeMap::new(),
                tick: 0,
                seq: 0,
                max_emitted: 0,
                emitted_any: false,
            }),
        }
    }

    /// Snapshot of the fault statistics so far.
    pub fn stats(&self) -> FaultStats {
        self.state.lock().unwrap().stats.clone()
    }

    /// A reference to the wrapped transport.
    pub fn inner(&self) -> &F {
        &self.inner
    }

    /// Drains the inner transport and the jitter buffer completely,
    /// returning every packet still owed to the receiver (loss is still
    /// applied to packets pulled from the inner transport).
    pub fn flush(&self) -> Vec<PacketBuf> {
        let mut st = self.state.lock().unwrap();
        while let Some(pkt) = self.inner.recv() {
            Self::admit(&self.cfg, &mut st, pkt);
        }
        let drained: Vec<(u64, PacketBuf)> =
            std::mem::take(&mut st.pending).into_values().collect();
        drained.into_iter().map(|(orig, pkt)| Self::emit(&mut st, orig, pkt)).collect()
    }

    fn admit(cfg: &FaultConfig, st: &mut FaultyState, pkt: PacketBuf) {
        st.stats.offered += 1;
        let admission = st.tick;
        st.tick += 1;
        if cfg.loss.sample(&mut st.rng, &mut st.in_burst) {
            FaultInjector::record_loss(&mut st.stats, &pkt);
            return;
        }
        let delay = |st: &mut FaultyState| -> u64 {
            if cfg.reorder_prob > 0.0 && cfg.max_delay > 0 && st.rng.gen_bool(cfg.reorder_prob) {
                st.rng.gen_range(0..cfg.max_delay as u64) + 1
            } else {
                0
            }
        };
        let d = delay(st);
        let duplicate = cfg.duplicate_prob > 0.0 && st.rng.gen_bool(cfg.duplicate_prob);
        if duplicate {
            st.stats.note_duplicated(&pkt);
            let dd = delay(st);
            let key = (admission + 1 + dd, st.seq + 1);
            // Cloning deep-copies pooled packets to the heap, so the
            // duplicate never aliases the original's pool slot.
            st.pending.insert(key, (admission, pkt.clone()));
        }
        st.pending.insert((admission + d, st.seq), (admission, pkt));
        st.seq += 2;
    }

    fn emit(st: &mut FaultyState, orig: u64, pkt: PacketBuf) -> PacketBuf {
        if st.emitted_any && orig < st.max_emitted {
            st.stats.reordered += 1;
        }
        st.max_emitted = st.max_emitted.max(orig);
        st.emitted_any = true;
        st.stats.note_delivered(&pkt);
        pkt
    }

    fn release(st: &mut FaultyState) -> Option<PacketBuf> {
        let (&key, _) = st.pending.iter().next()?;
        if key.0 > st.tick {
            return None;
        }
        let (orig, pkt) = st.pending.remove(&key).unwrap();
        Some(Self::emit(st, orig, pkt))
    }
}

impl<F: Fronthaul> Fronthaul for FaultyFronthaul<F> {
    fn send(&self, packet: PacketBuf) -> Result<(), PacketBuf> {
        self.inner.send(packet)
    }

    fn recv(&self) -> Option<PacketBuf> {
        let mut st = self.state.lock().unwrap();
        while let Some(pkt) = self.inner.recv() {
            Self::admit(&self.cfg, &mut st, pkt);
        }
        // Empty polls advance the virtual clock too, so a paused sender
        // cannot strand jittered packets in the buffer forever.
        st.tick += 1;
        Self::release(&mut st)
    }

    fn link_errors(&self) -> (u64, u64) {
        self.inner.link_errors()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fronthaul::MemFronthaul;
    use crate::packet::{encode, PacketDir, PacketHeader};

    fn stream(frames: u32, per_frame: u16) -> Vec<Bytes> {
        let mut out = Vec::new();
        for f in 0..frames {
            for a in 0..per_frame {
                out.push(encode(
                    &PacketHeader {
                        frame: f,
                        symbol: 0,
                        antenna: a,
                        dir: PacketDir::Uplink,
                        cell: 0,
                        payload_len: 3,
                    },
                    &[f as u8, a as u8, 0],
                ));
            }
        }
        out
    }

    fn order_key(pkt: &[u8]) -> (u32, u16) {
        let (h, _) = decode_ref(pkt).unwrap();
        (h.frame, h.antenna)
    }

    #[test]
    fn default_config_is_transparent() {
        let pkts = stream(4, 8);
        let mut inj = FaultInjector::new(FaultConfig::default());
        let out = inj.apply(pkts.clone());
        assert_eq!(out, pkts);
        let st = inj.stats();
        assert_eq!(st.offered, 32);
        assert_eq!(st.delivered, 32);
        assert_eq!((st.lost, st.duplicated, st.reordered), (0, 0, 0));
    }

    #[test]
    fn iid_loss_is_counted_and_deterministic() {
        let cfg = FaultConfig { loss: LossModel::Iid { p: 0.2 }, seed: 42, ..Default::default() };
        let mut a = FaultInjector::new(cfg);
        let mut b = FaultInjector::new(cfg);
        let out_a = a.apply(stream(10, 16));
        let out_b = b.apply(stream(10, 16));
        assert_eq!(out_a, out_b, "same seed must fault identically");
        let st = a.stats();
        assert!(st.lost > 0, "20% loss over 160 packets must drop some");
        assert_eq!(st.delivered + st.lost, st.offered);
        assert_eq!(st.per_frame_lost.values().map(|&n| n as u64).sum::<u64>(), st.lost);
    }

    #[test]
    fn different_seeds_fault_differently() {
        let mk = |seed| {
            let mut inj = FaultInjector::new(FaultConfig {
                loss: LossModel::Iid { p: 0.3 },
                seed,
                ..Default::default()
            });
            inj.apply(stream(10, 16))
        };
        assert_ne!(mk(1), mk(2));
    }

    #[test]
    fn gilbert_elliott_losses_are_bursty() {
        // Compare the longest loss run of a bursty model against an
        // i.i.d. model with the same mean rate: bursts must cluster.
        let ge = LossModel::GilbertElliott {
            p_enter_burst: 0.02,
            p_exit_burst: 0.25,
            loss_good: 0.0,
            loss_bad: 0.9,
        };
        let rate = ge.mean_rate();
        assert!(rate > 0.0 && rate < 0.2, "mean rate {rate}");
        let longest_run = |model: LossModel| -> usize {
            let mut rng = StdRng::seed_from_u64(9);
            let mut burst = false;
            let (mut cur, mut best) = (0usize, 0usize);
            for _ in 0..20_000 {
                if model.sample(&mut rng, &mut burst) {
                    cur += 1;
                    best = best.max(cur);
                } else {
                    cur = 0;
                }
            }
            best
        };
        assert!(
            longest_run(ge) >= 2 * longest_run(LossModel::Iid { p: rate }).max(1),
            "Gilbert-Elliott must produce longer loss runs than i.i.d."
        );
    }

    #[test]
    fn reordering_preserves_the_multiset() {
        let pkts = stream(6, 16);
        let mut inj = FaultInjector::new(FaultConfig {
            reorder_prob: 0.3,
            max_delay: 5,
            seed: 11,
            ..Default::default()
        });
        let out = inj.apply(pkts.clone());
        assert_eq!(out.len(), pkts.len(), "reordering must not lose packets");
        let mut a: Vec<_> = pkts.iter().map(|p| order_key(p)).collect();
        let mut b: Vec<_> = out.iter().map(|p| order_key(p)).collect();
        assert_ne!(a, b, "30% displacement over 96 packets must reorder");
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert!(inj.stats().reordered > 0);
    }

    #[test]
    fn bounded_displacement_limits_reordering_depth() {
        let pkts = stream(4, 32);
        let mut inj = FaultInjector::new(FaultConfig {
            reorder_prob: 1.0,
            max_delay: 3,
            seed: 5,
            ..Default::default()
        });
        let out = inj.apply(pkts.clone());
        // Packet originally at index i can appear at most max_delay slots
        // late, and can slip earlier only as far as displaced peers allow.
        for (pos, pkt) in out.iter().enumerate() {
            let orig = pkts.iter().position(|p| p == pkt).unwrap();
            assert!(pos.abs_diff(orig) <= 3, "packet moved {} -> {} (beyond max_delay)", orig, pos);
        }
    }

    #[test]
    fn duplicates_are_injected_and_counted() {
        let pkts = stream(6, 16);
        let mut inj =
            FaultInjector::new(FaultConfig { duplicate_prob: 0.25, seed: 3, ..Default::default() });
        let out = inj.apply(pkts.clone());
        let st = inj.stats();
        assert!(st.duplicated > 0);
        assert_eq!(out.len() as u64, pkts.len() as u64 + st.duplicated);
        assert_eq!(st.delivered, out.len() as u64);
    }

    #[test]
    fn combined_fault_counters_are_consistent() {
        let pkts = stream(12, 24);
        let offered = pkts.len() as u64;
        let mut inj = FaultInjector::new(FaultConfig {
            loss: LossModel::Iid { p: 0.05 },
            reorder_prob: 0.1,
            max_delay: 8,
            duplicate_prob: 0.05,
            seed: 77,
        });
        let out = inj.apply(pkts);
        let st = inj.stats();
        assert_eq!(st.offered, offered);
        assert_eq!(st.delivered, offered - st.lost + st.duplicated);
        assert_eq!(out.len() as u64, st.delivered);
    }

    #[test]
    fn faulty_fronthaul_applies_loss_online() {
        let (rru, bbu) = MemFronthaul::pair(1024);
        let faulty = FaultyFronthaul::new(
            bbu,
            FaultConfig { loss: LossModel::Iid { p: 0.3 }, seed: 8, ..Default::default() },
        );
        for pkt in stream(8, 16) {
            assert!(rru.send(pkt.into()).is_ok());
        }
        let mut got = Vec::new();
        // recv() drains with loss applied; extra polls flush the clock.
        for _ in 0..1024 {
            if let Some(p) = faulty.recv() {
                got.push(p);
            }
        }
        let st = faulty.stats();
        assert_eq!(st.offered, 128);
        assert!(st.lost > 0);
        assert_eq!(got.len() as u64, st.delivered);
        assert_eq!(st.delivered + st.lost, st.offered);
    }

    #[test]
    fn faulty_fronthaul_flush_releases_jittered_packets() {
        let (rru, bbu) = MemFronthaul::pair(1024);
        let faulty = FaultyFronthaul::new(
            bbu,
            FaultConfig { reorder_prob: 1.0, max_delay: 64, seed: 2, ..Default::default() },
        );
        let pkts = stream(2, 8);
        for pkt in pkts.iter() {
            assert!(rru.send(pkt.clone().into()).is_ok());
        }
        // A single poll cannot release everything (displacements up to 64).
        let first = faulty.recv();
        let mut rest = faulty.flush();
        if let Some(p) = first {
            rest.insert(0, p);
        }
        assert_eq!(rest.len(), pkts.len(), "flush must release every buffered packet");
        let mut a: Vec<_> = pkts.iter().map(|p| order_key(p)).collect();
        let mut b: Vec<_> = rest.iter().map(|p| order_key(p)).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn faulty_fronthaul_send_passes_through() {
        let (rru, bbu) = MemFronthaul::pair(16);
        let faulty = FaultyFronthaul::new(
            bbu,
            FaultConfig { loss: LossModel::Iid { p: 1.0 }, ..Default::default() },
        );
        // Downlink (send) path is never faulted, even at 100% loss.
        assert!(faulty.send(stream(1, 1).pop().unwrap().into()).is_ok());
        assert!(rru.recv().is_some());
    }

    #[test]
    fn mean_rate_matches_empirical_rate() {
        let model = LossModel::GilbertElliott {
            p_enter_burst: 0.01,
            p_exit_burst: 0.2,
            loss_good: 0.001,
            loss_bad: 0.5,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let mut burst = false;
        let n = 200_000;
        let lost = (0..n).filter(|_| model.sample(&mut rng, &mut burst)).count();
        let empirical = lost as f64 / n as f64;
        let analytic = model.mean_rate();
        assert!(
            (empirical - analytic).abs() < 0.2 * analytic,
            "empirical {empirical} vs analytic {analytic}"
        );
    }
}
