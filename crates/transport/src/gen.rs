//! Paced multi-cell traffic generation.
//!
//! The paper's IQ sample generator saturates the baseband server from a
//! second machine, pacing packet bursts with nanosecond RDTSC timestamps
//! (§5.2). [`MultiCellGenerator`] scales the single-cell [`RruEmulator`]
//! to that role for C cells at once: every cell contributes one packet
//! per antenna per symbol, the shared [`Pacer`] gates each symbol slot
//! (one token per (frame, symbol) across all cells), an inline
//! [`FaultInjector`] perturbs the merged stream, and the result is
//! batch-emitted through [`Fronthaul::send_batch`] — so a single socket
//! carries C interleaved cell streams exactly the way one 40 GbE pipe
//! carries a multi-cell deployment.
//!
//! Per-cell ground truth and per-cell fault statistics come back to the
//! caller, so a demuxing receiver can reconcile every loss, duplicate
//! and late packet per cell, exactly.

use crate::fault::{FaultConfig, FaultInjector, FaultStats};
use crate::fronthaul::Fronthaul;
use crate::pacing::Pacer;
use crate::pool::PacketBuf;
use crate::rru::{FrameGroundTruth, RruEmulator};
use bytes::Bytes;
use std::collections::VecDeque;
use std::time::Duration;

/// A paced, fault-injecting, multi-cell packet source.
///
/// All cells must share one frame schedule length (they are symbol-
/// synchronous, as co-located cells driven by one clock would be).
pub struct MultiCellGenerator {
    cells: Vec<RruEmulator>,
    injector: FaultInjector,
    symbol_interval: Option<Duration>,
}

impl MultiCellGenerator {
    /// Builds a generator over `cells` (each carrying its own
    /// `cell_id`, seed and channel). No pacing and no faults until the
    /// respective builders are called.
    pub fn new(cells: Vec<RruEmulator>) -> MultiCellGenerator {
        assert!(!cells.is_empty(), "need at least one cell");
        let symbols = cells[0].cell().symbols_per_frame();
        assert!(
            cells.iter().all(|c| c.cell().symbols_per_frame() == symbols),
            "cells must be symbol-synchronous (same schedule length)"
        );
        MultiCellGenerator {
            cells,
            injector: FaultInjector::new(FaultConfig::default()),
            symbol_interval: None,
        }
    }

    /// Injects faults inline between generation and emission.
    pub fn with_faults(mut self, cfg: FaultConfig) -> MultiCellGenerator {
        self.injector = FaultInjector::new(cfg);
        self
    }

    /// Paces emission: one token per symbol slot, shared by all cells
    /// (each tick releases every cell's packets for that symbol).
    pub fn with_pacing(mut self, symbol_interval: Duration) -> MultiCellGenerator {
        self.symbol_interval = Some(symbol_interval);
        self
    }

    /// Number of cell streams.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// The fault ground truth accumulated so far (per-cell maps filled).
    pub fn stats(&self) -> &FaultStats {
        self.injector.stats()
    }

    /// Drives frames `0..frames` for every cell through `fh`, returning
    /// `truths[cell][frame]` ground truth. Emission retries on
    /// backpressure, so the link must be drained concurrently or sized
    /// for the whole stream.
    pub fn run<F: Fronthaul + ?Sized>(
        &mut self,
        fh: &F,
        frames: u32,
    ) -> Vec<Vec<FrameGroundTruth>> {
        let symbols = self.cells[0].cell().symbols_per_frame();
        let mut truths: Vec<Vec<FrameGroundTruth>> =
            (0..self.cells.len()).map(|_| Vec::with_capacity(frames as usize)).collect();
        let mut pacer = self.symbol_interval.map(Pacer::new);
        let mut out: VecDeque<PacketBuf> = VecDeque::new();
        // per_cell[c] = packets of cell c for the current frame, in
        // symbol-major order (the RRU emits symbol-major already).
        let mut per_cell: Vec<Vec<Bytes>> = vec![Vec::new(); self.cells.len()];
        for frame in 0..frames {
            for (c, rru) in self.cells.iter_mut().enumerate() {
                let (packets, gt) = rru.generate_frame(frame);
                per_cell[c] = packets;
                truths[c].push(gt);
            }
            for sym in 0..symbols {
                if let Some(p) = pacer.as_mut() {
                    p.wait_next();
                }
                // Interleave all cells' packets of this symbol slot and
                // run them through the fault model as one tick batch.
                let mut tick: Vec<Bytes> = Vec::new();
                for (c, pkts) in per_cell.iter().enumerate() {
                    let per_sym = pkts.len() / symbols;
                    debug_assert_eq!(per_sym, self.cells[c].cell().num_antennas);
                    tick.extend(pkts[sym * per_sym..(sym + 1) * per_sym].iter().cloned());
                }
                for pkt in self.injector.apply(tick) {
                    out.push_back(PacketBuf::Heap(pkt));
                }
                // Batch-emit with retry: unsent packets stay queued.
                while !out.is_empty() {
                    if fh.send_batch(&mut out) == 0 {
                        std::thread::yield_now();
                    }
                }
            }
        }
        truths
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::LossModel;
    use crate::fronthaul::MemFronthaul;
    use crate::packet::decode_ref;
    use crate::rru::RruConfig;
    use agora_phy::CellConfig;

    fn make_cells(n: usize) -> Vec<RruEmulator> {
        (0..n)
            .map(|c| {
                RruEmulator::new(
                    CellConfig::tiny_test(2),
                    RruConfig {
                        snr_db: 30.0,
                        seed: 100 + c as u64,
                        cell_id: c as u8,
                        ..Default::default()
                    },
                )
            })
            .collect()
    }

    #[test]
    fn faultless_run_delivers_every_cell_in_order() {
        let cells = make_cells(3);
        let per_frame: usize =
            cells.iter().map(|c| c.cell().symbols_per_frame() * c.cell().num_antennas).sum();
        let frames = 2u32;
        let mut gen = MultiCellGenerator::new(cells);
        let (tx, rx) = MemFronthaul::pair(per_frame * frames as usize + 8);
        let truths = gen.run(&tx, frames);
        assert_eq!(truths.len(), 3);
        assert!(truths.iter().all(|t| t.len() == frames as usize));

        let mut seen = vec![0usize; 3];
        let mut batch = Vec::new();
        let mut last_slot = None;
        while rx.recv_batch(&mut batch, 32) > 0 {
            for pkt in batch.drain(..) {
                let (h, _) = decode_ref(&pkt).unwrap();
                seen[h.cell as usize] += 1;
                // The merged stream is ordered by (frame, symbol) slots.
                let slot = (h.frame, h.symbol);
                if let Some(prev) = last_slot {
                    assert!(slot >= prev, "slot order violated: {prev:?} then {slot:?}");
                }
                last_slot = Some(slot);
            }
        }
        let per_cell = per_frame / 3 * frames as usize;
        assert_eq!(seen, vec![per_cell; 3], "every cell delivers every packet");
        assert_eq!(gen.stats().offered, (per_cell * 3) as u64);
        assert_eq!(gen.stats().lost, 0);
    }

    #[test]
    fn per_cell_fault_ledgers_reconcile_with_delivery() {
        let cells = make_cells(4);
        let per_frame: usize =
            cells.iter().map(|c| c.cell().symbols_per_frame() * c.cell().num_antennas).sum();
        let frames = 4u32;
        let mut gen = MultiCellGenerator::new(cells).with_faults(FaultConfig {
            loss: LossModel::Iid { p: 0.05 },
            duplicate_prob: 0.05,
            reorder_prob: 0.1,
            max_delay: 4,
            seed: 99,
        });
        let (tx, rx) = MemFronthaul::pair(2 * per_frame * frames as usize + 8);
        gen.run(&tx, frames);

        let mut delivered = std::collections::BTreeMap::<u8, u64>::new();
        let mut batch = Vec::new();
        while rx.recv_batch(&mut batch, 64) > 0 {
            for pkt in batch.drain(..) {
                let (h, _) = decode_ref(&pkt).unwrap();
                *delivered.entry(h.cell).or_insert(0) += 1;
            }
        }
        let st = gen.stats();
        assert!(st.lost > 0 && st.duplicated > 0, "faults must fire at these rates");
        // Global ledger: offered = delivered - duplicated + lost.
        assert_eq!(st.offered, st.delivered - st.duplicated + st.lost);
        // Per-cell ledgers sum to the global ones and match delivery.
        assert_eq!(st.per_cell_lost.values().sum::<u64>(), st.lost);
        assert_eq!(st.per_cell_duplicated.values().sum::<u64>(), st.duplicated);
        let per_cell_offered = (per_frame / 4 * frames as usize) as u64;
        for c in 0u8..4 {
            let got = delivered.get(&c).copied().unwrap_or(0);
            let lost = st.per_cell_lost.get(&c).copied().unwrap_or(0);
            let dup = st.per_cell_duplicated.get(&c).copied().unwrap_or(0);
            assert_eq!(
                got,
                per_cell_offered - lost + dup,
                "cell {c}: delivery must reconcile exactly"
            );
            assert_eq!(
                st.per_cell_delivered.get(&c).copied().unwrap_or(0),
                got,
                "cell {c}: injector's delivered ledger"
            );
            // The (cell, frame) loss map refines the per-cell count.
            let by_frame: u64 = st
                .per_cell_frame_lost
                .iter()
                .filter(|((cc, _), _)| *cc == c)
                .map(|(_, &n)| n as u64)
                .sum();
            assert_eq!(by_frame, lost, "cell {c}: per-frame refinement");
        }
    }

    #[test]
    fn pacing_spreads_emission_over_the_schedule() {
        let cells = make_cells(1);
        let symbols = cells[0].cell().symbols_per_frame();
        let per_frame = symbols * cells[0].cell().num_antennas;
        let frames = 3u32;
        let interval = Duration::from_micros(200);
        let mut gen = MultiCellGenerator::new(cells).with_pacing(interval);
        let (tx, rx) = MemFronthaul::pair(per_frame * frames as usize + 8);
        let t0 = std::time::Instant::now();
        gen.run(&tx, frames);
        let elapsed = t0.elapsed();
        // symbols*frames ticks at 200 us each (first fires immediately).
        let floor = interval * (symbols as u32 * frames - 1);
        assert!(elapsed >= floor, "paced run finished in {elapsed:?}, floor {floor:?}");
        let mut batch = Vec::new();
        let mut n = 0;
        while rx.recv_batch(&mut batch, 64) > 0 {
            n += batch.len();
            batch.clear();
        }
        assert_eq!(n, per_frame * frames as usize);
    }

    #[test]
    fn mismatched_schedules_are_rejected() {
        let a = RruEmulator::new(CellConfig::tiny_test(2), RruConfig::default());
        let mut cfg = CellConfig::tiny_test(2);
        cfg.schedule = agora_phy::FrameSchedule::uplink(1, 3);
        let b = RruEmulator::new(cfg, RruConfig::default());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            MultiCellGenerator::new(vec![a, b])
        }));
        assert!(result.is_err(), "schedule-length mismatch must be rejected");
    }
}
