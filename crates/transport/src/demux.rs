//! Cell-aware fronthaul demultiplexing.
//!
//! A multi-cell deployment shares one socket (one `recv_batch` drain)
//! across C cells; every packet carries its originating cell in the
//! header's cell byte. [`CellDemux`] classifies each received buffer by
//! that byte so the network thread can hand it to the right cell's
//! intake. Packets addressed to a cell outside the deployment are
//! *dropped and counted* — never delivered to cell 0, which would
//! corrupt that cell's frame state with foreign geometry.

use crate::packet::decode_ref;
use crate::pool::PacketBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Where one received buffer should go.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Deliver to this cell's intake.
    Cell(usize),
    /// Valid header, but the cell id is outside the deployment — drop.
    Misrouted,
    /// Header failed to decode — drop (the per-cell intake would reject
    /// it anyway, but it has no cell to charge the error to).
    Undecodable,
}

/// Lock-free demux counters, shared between the network thread and
/// whoever reads stats.
#[derive(Debug)]
pub struct DemuxStats {
    routed: Vec<AtomicU64>,
    misrouted: AtomicU64,
    undecodable: AtomicU64,
}

impl DemuxStats {
    fn new(num_cells: usize) -> Self {
        Self {
            routed: (0..num_cells).map(|_| AtomicU64::new(0)).collect(),
            misrouted: AtomicU64::new(0),
            undecodable: AtomicU64::new(0),
        }
    }

    /// Packets delivered to one cell's intake.
    pub fn routed(&self, cell: usize) -> u64 {
        self.routed.get(cell).map_or(0, |a| a.load(Ordering::Relaxed))
    }

    /// Packets dropped because their cell id is outside the deployment.
    pub fn misrouted(&self) -> u64 {
        self.misrouted.load(Ordering::Relaxed)
    }

    /// Packets dropped because the header failed to decode.
    pub fn undecodable(&self) -> u64 {
        self.undecodable.load(Ordering::Relaxed)
    }

    /// Total packets seen (routed + dropped).
    pub fn total(&self) -> u64 {
        self.routed.iter().map(|a| a.load(Ordering::Relaxed)).sum::<u64>()
            + self.misrouted()
            + self.undecodable()
    }
}

/// Routes one socket's receive stream to per-cell intakes by the
/// header's cell byte.
#[derive(Debug)]
pub struct CellDemux {
    num_cells: usize,
    stats: DemuxStats,
}

impl CellDemux {
    /// A demux for `num_cells` deployed cells (ids `0..num_cells`).
    pub fn new(num_cells: usize) -> Self {
        assert!(num_cells > 0, "a deployment has at least one cell");
        Self { num_cells, stats: DemuxStats::new(num_cells) }
    }

    /// Number of deployed cells.
    pub fn num_cells(&self) -> usize {
        self.num_cells
    }

    /// Classifies one received buffer and records it in the counters.
    pub fn classify(&self, pkt: &[u8]) -> Route {
        match decode_ref(pkt) {
            Ok((hdr, _)) => {
                let cell = hdr.cell as usize;
                if cell < self.num_cells {
                    self.stats.routed[cell].fetch_add(1, Ordering::Relaxed);
                    Route::Cell(cell)
                } else {
                    self.stats.misrouted.fetch_add(1, Ordering::Relaxed);
                    Route::Misrouted
                }
            }
            Err(_) => {
                self.stats.undecodable.fetch_add(1, Ordering::Relaxed);
                Route::Undecodable
            }
        }
    }

    /// Drains a receive batch through `sink(cell, pkt)`, dropping
    /// misrouted/undecodable buffers. Returns how many were delivered.
    pub fn route_batch<F: FnMut(usize, PacketBuf)>(
        &self,
        batch: &mut Vec<PacketBuf>,
        mut sink: F,
    ) -> usize {
        let mut delivered = 0;
        for pkt in batch.drain(..) {
            if let Route::Cell(c) = self.classify(&pkt) {
                sink(c, pkt);
                delivered += 1;
            }
        }
        delivered
    }

    /// The demux counters.
    pub fn stats(&self) -> &DemuxStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{encode, PacketDir, PacketHeader};
    use bytes::Bytes;

    fn pkt(cell: u8) -> PacketBuf {
        let hdr = PacketHeader {
            frame: 1,
            symbol: 2,
            antenna: 3,
            dir: PacketDir::Uplink,
            cell,
            payload_len: 6,
        };
        PacketBuf::Heap(encode(&hdr, &[0u8; 6]))
    }

    #[test]
    fn routes_by_cell_byte() {
        let d = CellDemux::new(4);
        assert_eq!(d.classify(&pkt(0)), Route::Cell(0));
        assert_eq!(d.classify(&pkt(3)), Route::Cell(3));
        assert_eq!(d.stats().routed(0), 1);
        assert_eq!(d.stats().routed(3), 1);
        assert_eq!(d.stats().total(), 2);
    }

    #[test]
    fn unknown_cell_is_counted_and_dropped_not_sent_to_cell_zero() {
        let d = CellDemux::new(2);
        assert_eq!(d.classify(&pkt(2)), Route::Misrouted);
        assert_eq!(d.classify(&pkt(255)), Route::Misrouted);
        assert_eq!(d.stats().misrouted(), 2);
        assert_eq!(d.stats().routed(0), 0, "misrouted packets never reach cell 0");
    }

    #[test]
    fn undecodable_buffers_are_counted() {
        let d = CellDemux::new(1);
        assert_eq!(d.classify(&[0xFFu8; 16]), Route::Undecodable);
        assert_eq!(d.stats().undecodable(), 1);
    }

    #[test]
    fn route_batch_delivers_only_known_cells() {
        let d = CellDemux::new(2);
        let mut batch =
            vec![pkt(0), pkt(1), pkt(5), PacketBuf::Heap(Bytes::from(vec![0u8; 8])), pkt(1)];
        let mut got: Vec<usize> = Vec::new();
        let delivered = d.route_batch(&mut batch, |c, _| got.push(c));
        assert_eq!(delivered, 3);
        assert_eq!(got, vec![0, 1, 1]);
        assert!(batch.is_empty(), "the batch is fully drained");
        assert_eq!(d.stats().misrouted(), 1);
        assert_eq!(d.stats().undecodable(), 1);
    }
}
