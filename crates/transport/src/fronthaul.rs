//! Fronthaul transports.
//!
//! The paper moves IQ samples between the RRU and the baseband server
//! over 40 GbE with DPDK kernel-bypass. This module abstracts the link
//! behind the [`Fronthaul`] trait with two implementations:
//!
//! * [`MemFronthaul`] — lock-free in-memory rings. This is the DPDK
//!   substitute (DESIGN.md §3): packets appear in user space with
//!   sub-microsecond overhead and no syscalls, preserving the property
//!   that network I/O never blocks the data path.
//! * [`UdpFronthaul`] — real (non-blocking) UDP sockets, demonstrating
//!   the identical code path over an actual network stack (loopback or
//!   NIC), at kernel-stack cost.

use agora_queue::MpmcQueue;
use bytes::Bytes;
use std::io::ErrorKind;
use std::net::{SocketAddr, UdpSocket};
use std::sync::Arc;

/// A bidirectional packet link endpoint.
///
/// Implementations must be cheap to clone/share across the network
/// threads; sends and receives never block.
pub trait Fronthaul: Send + Sync {
    /// Enqueues a packet for the peer. Returns `false` if the link is
    /// full/backpressured (callers may retry or drop, as a NIC would).
    fn send(&self, packet: Bytes) -> bool;

    /// Dequeues a packet from the peer, if any.
    fn recv(&self) -> Option<Bytes>;
}

/// One side of an in-memory fronthaul link.
pub struct MemFronthaul {
    tx: Arc<MpmcQueue<Bytes>>,
    rx: Arc<MpmcQueue<Bytes>>,
}

impl MemFronthaul {
    /// Creates a connected pair `(rru_side, bbu_side)` with the given
    /// per-direction capacity (packets).
    pub fn pair(capacity: usize) -> (MemFronthaul, MemFronthaul) {
        let a = Arc::new(MpmcQueue::new(capacity));
        let b = Arc::new(MpmcQueue::new(capacity));
        (MemFronthaul { tx: a.clone(), rx: b.clone() }, MemFronthaul { tx: b, rx: a })
    }

    /// Packets waiting to be received on this side (diagnostics).
    pub fn pending(&self) -> usize {
        self.rx.len()
    }
}

impl Fronthaul for MemFronthaul {
    fn send(&self, packet: Bytes) -> bool {
        self.tx.push(packet).is_ok()
    }

    fn recv(&self) -> Option<Bytes> {
        self.rx.pop()
    }
}

/// UDP-socket fronthaul endpoint (non-blocking).
pub struct UdpFronthaul {
    socket: UdpSocket,
    peer: SocketAddr,
    /// Receive scratch sized for jumbo frames.
    mtu: usize,
}

impl UdpFronthaul {
    /// Binds `local` and targets `peer`. Uses non-blocking I/O; callers
    /// poll like they poll the in-memory rings.
    pub fn new(local: SocketAddr, peer: SocketAddr) -> std::io::Result<UdpFronthaul> {
        let socket = UdpSocket::bind(local)?;
        socket.set_nonblocking(true)?;
        Ok(UdpFronthaul { socket, peer, mtu: 9000 })
    }

    /// The locally bound address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Re-targets the peer (e.g. after learning the generator's port).
    pub fn set_peer(&mut self, peer: SocketAddr) {
        self.peer = peer;
    }
}

impl Fronthaul for UdpFronthaul {
    fn send(&self, packet: Bytes) -> bool {
        match self.socket.send_to(&packet, self.peer) {
            Ok(n) => n == packet.len(),
            Err(e) if e.kind() == ErrorKind::WouldBlock => false,
            Err(_) => false,
        }
    }

    fn recv(&self) -> Option<Bytes> {
        let mut buf = vec![0u8; self.mtu];
        match self.socket.recv_from(&mut buf) {
            Ok((n, _src)) => {
                buf.truncate(n);
                Some(Bytes::from(buf))
            }
            Err(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{decode, encode, PacketDir, PacketHeader};

    fn test_packet(frame: u32) -> Bytes {
        encode(
            &PacketHeader { frame, symbol: 0, antenna: 0, dir: PacketDir::Uplink, payload_len: 4 },
            &[1, 2, 3, 4],
        )
    }

    #[test]
    fn mem_pair_delivers_both_directions() {
        let (rru, bbu) = MemFronthaul::pair(16);
        assert!(rru.send(test_packet(1)));
        assert!(bbu.send(test_packet(2)));
        let at_bbu = bbu.recv().unwrap();
        let at_rru = rru.recv().unwrap();
        assert_eq!(decode(&at_bbu).unwrap().0.frame, 1);
        assert_eq!(decode(&at_rru).unwrap().0.frame, 2);
        assert!(bbu.recv().is_none());
    }

    #[test]
    fn mem_backpressure_reports_full() {
        let (rru, _bbu) = MemFronthaul::pair(2);
        assert!(rru.send(test_packet(0)));
        assert!(rru.send(test_packet(1)));
        assert!(!rru.send(test_packet(2)), "third send must be refused");
    }

    #[test]
    fn mem_preserves_order() {
        let (rru, bbu) = MemFronthaul::pair(64);
        for f in 0..50 {
            rru.send(test_packet(f));
        }
        for f in 0..50 {
            let p = bbu.recv().unwrap();
            assert_eq!(decode(&p).unwrap().0.frame, f);
        }
    }

    #[test]
    fn udp_loopback_roundtrip() {
        let a_addr: SocketAddr = "127.0.0.1:0".parse().unwrap();
        let mut a = UdpFronthaul::new(a_addr, a_addr).unwrap();
        let b = UdpFronthaul::new(a_addr, a.local_addr().unwrap()).unwrap();
        a.set_peer(b.local_addr().unwrap());

        assert!(a.send(test_packet(7)));
        // Non-blocking receive may need a brief moment on loopback.
        let mut got = None;
        for _ in 0..1000 {
            if let Some(p) = b.recv() {
                got = Some(p);
                break;
            }
            std::thread::yield_now();
        }
        let p = got.expect("packet not delivered over loopback");
        assert_eq!(decode(&p).unwrap().0.frame, 7);
        // And the reverse direction.
        assert!(b.send(test_packet(8)));
        let mut got = None;
        for _ in 0..1000 {
            if let Some(p) = a.recv() {
                got = Some(p);
                break;
            }
            std::thread::yield_now();
        }
        assert_eq!(decode(&got.unwrap()).unwrap().0.frame, 8);
    }

    #[test]
    fn pending_counts_queued_packets() {
        let (rru, bbu) = MemFronthaul::pair(16);
        assert_eq!(bbu.pending(), 0);
        rru.send(test_packet(0));
        rru.send(test_packet(1));
        assert_eq!(bbu.pending(), 2);
        bbu.recv();
        assert_eq!(bbu.pending(), 1);
    }
}
