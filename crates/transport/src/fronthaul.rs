//! Fronthaul transports.
//!
//! The paper moves IQ samples between the RRU and the baseband server
//! over 40 GbE with DPDK kernel-bypass: batched bursts of preallocated
//! mbufs, zero syscalls and zero allocations per packet. This module
//! abstracts the link behind the [`Fronthaul`] trait and reproduces the
//! two DPDK properties separately:
//!
//! * [`MemFronthaul`] — lock-free in-memory rings. This is the
//!   zero-syscall substitute (DESIGN.md §3): packets appear in user
//!   space with sub-microsecond overhead, preserving the property that
//!   network I/O never blocks the data path.
//! * [`UdpFronthaul`] — real (non-blocking) UDP sockets. The batched
//!   [`Fronthaul::send_batch`]/[`Fronthaul::recv_batch`] path uses
//!   `sendmmsg`/`recvmmsg` ([`crate::sys`]) to amortise the syscall and
//!   a [`PacketPool`] to recycle receive buffers, which is as close to
//!   burst I/O as a kernel socket gets. Real socket errors are counted
//!   (`tx_errors`/`rx_errors`), never silently swallowed.
//!
//! Packets travel as [`PacketBuf`] — heap bytes or pooled slots,
//! uniformly `&[u8]` — so every implementation composes with the pool.

use crate::pool::{PacketBuf, PacketPool, PooledPacket};
use crate::sys;
use agora_queue::MpmcQueue;
use std::collections::VecDeque;
use std::io::ErrorKind;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

/// A bidirectional packet link endpoint.
///
/// Implementations must be cheap to share across the network threads;
/// sends and receives never block. The batched entry points have
/// sequential default implementations, so in-memory and fault-wrapped
/// links compose with batching callers unchanged.
pub trait Fronthaul: Send + Sync {
    /// Enqueues a packet for the peer. On backpressure the packet is
    /// handed back (`Err`) so callers can retry without copying; a
    /// packet accepted (`Ok`) may still be dropped downstream, as on a
    /// real NIC.
    fn send(&self, packet: PacketBuf) -> Result<(), PacketBuf>;

    /// Dequeues a packet from the peer, if any.
    fn recv(&self) -> Option<PacketBuf>;

    /// Sends the front of `packets` until the link backpressures,
    /// removing sent packets from the deque; returns how many were
    /// sent. Unsent packets stay queued, front first, for retry.
    fn send_batch(&self, packets: &mut VecDeque<PacketBuf>) -> usize {
        let mut sent = 0;
        while let Some(pkt) = packets.pop_front() {
            match self.send(pkt) {
                Ok(()) => sent += 1,
                Err(back) => {
                    packets.push_front(back);
                    break;
                }
            }
        }
        sent
    }

    /// Appends up to `max` pending packets to `out`; returns how many
    /// arrived. `0` means the link is currently empty, not closed.
    fn recv_batch(&self, out: &mut Vec<PacketBuf>, max: usize) -> usize {
        let mut n = 0;
        while n < max {
            match self.recv() {
                Some(p) => {
                    out.push(p);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    /// Cumulative real link errors as `(tx_errors, rx_errors)` — socket
    /// failures that consumed or corrupted a packet (not backpressure).
    fn link_errors(&self) -> (u64, u64) {
        (0, 0)
    }
}

/// One side of an in-memory fronthaul link.
pub struct MemFronthaul {
    tx: Arc<MpmcQueue<PacketBuf>>,
    rx: Arc<MpmcQueue<PacketBuf>>,
}

impl MemFronthaul {
    /// Creates a connected pair `(rru_side, bbu_side)` with the given
    /// per-direction capacity (packets).
    pub fn pair(capacity: usize) -> (MemFronthaul, MemFronthaul) {
        let a = Arc::new(MpmcQueue::new(capacity));
        let b = Arc::new(MpmcQueue::new(capacity));
        (MemFronthaul { tx: a.clone(), rx: b.clone() }, MemFronthaul { tx: b, rx: a })
    }

    /// Packets waiting to be received on this side (diagnostics).
    pub fn pending(&self) -> usize {
        self.rx.len()
    }
}

impl Fronthaul for MemFronthaul {
    fn send(&self, packet: PacketBuf) -> Result<(), PacketBuf> {
        self.tx.push(packet)
    }

    fn recv(&self) -> Option<PacketBuf> {
        self.rx.pop()
    }
}

/// Magic word leading an aggregated datagram; distinct from the
/// per-packet magic so plain and aggregated datagrams interoperate on
/// one socket.
const AGG_MAGIC: u32 = 0x4147_4752;
/// Aggregated datagram header: `[magic u32][count u16][pad u16]`,
/// followed by `count` x `[len u32][len bytes]`.
const AGG_HEADER_LEN: usize = 8;
/// Largest UDP payload over IPv4.
const MAX_DATAGRAM: usize = 65_507;

/// UDP-socket fronthaul endpoint (non-blocking).
///
/// With a [`PacketPool`] attached ([`Self::with_pool`]), receives land
/// in recycled slots instead of fresh heap buffers; with the Linux
/// `mmsg` syscalls available, `send_batch`/`recv_batch` move up to
/// [`sys::MAX_BATCH`] datagrams per syscall. Both degrade gracefully:
/// no pool falls back to heap buffers, no `mmsg` (non-Linux, seccomp,
/// IPv6 peer) falls back to the one-datagram syscall loop.
///
/// [`Self::with_aggregation`] additionally coalesces `send_batch`
/// bursts into jumbo datagrams — per-datagram kernel cost (not the
/// syscall boundary) dominates UDP, so symbol-sized transfers are what
/// actually buy line rate.
pub struct UdpFronthaul {
    socket: UdpSocket,
    peer: SocketAddr,
    /// Receive scratch sized for jumbo frames.
    mtu: usize,
    /// Recycled receive buffers (heap fallback when absent/exhausted).
    pool: Option<PacketPool>,
    /// Pooled buffers staged for the next batched receive. Acquired
    /// slots that a `recvmmsg` round leaves unfilled are kept here for
    /// the next round rather than bounced back to the pool.
    rx_staged: Mutex<Vec<PooledPacket>>,
    /// Real send failures (not backpressure): the datagram was dropped.
    tx_errors: AtomicU64,
    /// Real receive failures: a poll was aborted by a socket error.
    rx_errors: AtomicU64,
    /// Whether the batched syscalls are believed available; cleared on
    /// the first `ENOSYS`/`EPERM`/`Unsupported` so later batches go
    /// straight to the portable loop.
    mmsg_ok: AtomicBool,
    /// Packets coalesced per datagram by `send_batch` (0 = off). Both
    /// endpoints of a link must agree: the receive path only splits
    /// aggregated datagrams when this is non-zero.
    aggregate: usize,
    /// Reused jumbo build buffer for aggregated sends.
    tx_jumbo: Mutex<Vec<u8>>,
    /// Reused jumbo receive scratch for aggregated receives.
    rx_jumbo: Mutex<Vec<u8>>,
    /// Split-out packets an aggregated receive could not hand to its
    /// caller (a datagram can carry more packets than `max`); drained
    /// ahead of the socket on the next receive.
    rx_split: Mutex<VecDeque<PacketBuf>>,
}

impl UdpFronthaul {
    /// Binds `local` and targets `peer`. Uses non-blocking I/O; callers
    /// poll like they poll the in-memory rings.
    pub fn new(local: SocketAddr, peer: SocketAddr) -> std::io::Result<UdpFronthaul> {
        let socket = UdpSocket::bind(local)?;
        socket.set_nonblocking(true)?;
        Ok(UdpFronthaul {
            socket,
            peer,
            mtu: 9000,
            pool: None,
            rx_staged: Mutex::new(Vec::new()),
            tx_errors: AtomicU64::new(0),
            rx_errors: AtomicU64::new(0),
            mmsg_ok: AtomicBool::new(cfg!(target_os = "linux")),
            aggregate: 0,
            tx_jumbo: Mutex::new(Vec::new()),
            rx_jumbo: Mutex::new(Vec::new()),
            rx_split: Mutex::new(VecDeque::new()),
        })
    }

    /// Attaches a buffer pool for allocation-free receives. Slots
    /// shorter than the link MTU cap the receivable datagram size
    /// (longer datagrams are truncated, as `recv(2)` does).
    pub fn with_pool(mut self, pool: PacketPool) -> UdpFronthaul {
        assert!(pool.slot_size() >= crate::packet::HEADER_LEN, "pool slots below header size");
        self.rx_staged = Mutex::new(Vec::with_capacity(sys::MAX_BATCH));
        self.pool = Some(pool);
        self
    }

    /// Coalesces up to `packets_per_datagram` fronthaul packets into
    /// one UDP datagram on `send_batch` and splits them back out on the
    /// receive side. Both endpoints of a link must opt in. Plain
    /// single-packet `send`s still interoperate: the receive path
    /// recognises aggregated datagrams by their magic word.
    pub fn with_aggregation(mut self, packets_per_datagram: usize) -> UdpFronthaul {
        assert!(packets_per_datagram >= 1, "aggregation factor must be at least 1");
        self.aggregate = packets_per_datagram;
        self
    }

    /// The configured aggregation factor (0 when off).
    pub fn aggregation(&self) -> usize {
        self.aggregate
    }

    /// The locally bound address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Re-targets the peer (e.g. after learning the generator's port).
    pub fn set_peer(&mut self, peer: SocketAddr) {
        self.peer = peer;
    }

    /// Real send errors so far (dropped datagrams, not backpressure).
    pub fn tx_errors(&self) -> u64 {
        self.tx_errors.load(Relaxed)
    }

    /// Real receive errors so far.
    pub fn rx_errors(&self) -> u64 {
        self.rx_errors.load(Relaxed)
    }

    /// Whether the batched `mmsg` syscall path is active.
    pub fn batched_syscalls_active(&self) -> bool {
        self.mmsg_ok.load(Relaxed)
    }

    fn send_one(&self, packet: PacketBuf) -> Result<(), PacketBuf> {
        match self.socket.send_to(&packet, self.peer) {
            Ok(n) => {
                if n != packet.len() {
                    // A truncated datagram send is a real fault worth
                    // surfacing, not a retry condition.
                    self.tx_errors.fetch_add(1, Relaxed);
                }
                Ok(())
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => Err(packet),
            Err(_) => {
                // The packet is gone, like a NIC drop — but counted.
                self.tx_errors.fetch_add(1, Relaxed);
                Ok(())
            }
        }
    }

    fn recv_one(&self) -> Option<PacketBuf> {
        if let Some(pool) = &self.pool {
            if let Some(mut pkt) = pool.acquire() {
                return match self.socket.recv_from(pkt.buf_mut()) {
                    Ok((n, _src)) => {
                        pkt.set_len(n);
                        Some(PacketBuf::Pooled(pkt))
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => None,
                    Err(_) => {
                        self.rx_errors.fetch_add(1, Relaxed);
                        None
                    }
                };
            }
            // Pool exhausted: fall through to a heap buffer so intake
            // keeps making progress.
        }
        let mut buf = vec![0u8; self.mtu];
        match self.socket.recv_from(&mut buf) {
            Ok((n, _src)) => {
                buf.truncate(n);
                Some(PacketBuf::from(buf))
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => None,
            Err(_) => {
                self.rx_errors.fetch_add(1, Relaxed);
                None
            }
        }
    }

    /// One `recvmmsg` round into staged pooled slots (or heap buffers
    /// when no pool slot is available). Returns packets appended.
    fn recv_batch_mmsg(&self, out: &mut Vec<PacketBuf>, want: usize) -> std::io::Result<usize> {
        let mut staged = self.rx_staged.lock().expect("rx scratch poisoned");
        if let Some(pool) = &self.pool {
            while staged.len() < want {
                match pool.acquire() {
                    Some(p) => staged.push(p),
                    None => break,
                }
            }
        }
        let mut slots = [sys::RecvSlot::EMPTY; sys::MAX_BATCH];
        if !staged.is_empty() {
            let n_bufs = staged.len().min(want);
            for (slot, pkt) in slots.iter_mut().zip(staged.iter_mut().take(n_bufs)) {
                let (ptr, cap) = pkt.raw_parts_mut();
                *slot = sys::RecvSlot { ptr, cap, len: 0 };
            }
            // The raw pointers stay valid across the syscall: each slot
            // is exclusively owned by a PooledPacket held in `staged`
            // under the lock for the whole call.
            let got = match sys::recv_batch(&self.socket, &mut slots[..n_bufs]) {
                Ok(g) => g,
                Err(e) if e.kind() == ErrorKind::WouldBlock => 0,
                Err(e) => return Err(e),
            };
            for (slot, mut pkt) in slots.iter().zip(staged.drain(..got)) {
                pkt.set_len(slot.len);
                out.push(PacketBuf::Pooled(pkt));
            }
            return Ok(got);
        }
        // No pool (or fully exhausted): heap buffers, still one syscall.
        let mut bufs: Vec<Vec<u8>> = (0..want).map(|_| vec![0u8; self.mtu]).collect();
        for (slot, buf) in slots.iter_mut().zip(bufs.iter_mut()) {
            *slot = sys::RecvSlot { ptr: buf.as_mut_ptr(), cap: buf.len(), len: 0 };
        }
        let got = match sys::recv_batch(&self.socket, &mut slots[..want]) {
            Ok(g) => g,
            Err(e) if e.kind() == ErrorKind::WouldBlock => 0,
            Err(e) => return Err(e),
        };
        for (slot, mut buf) in slots.iter().zip(bufs.drain(..got)) {
            buf.truncate(slot.len);
            out.push(PacketBuf::from(buf));
        }
        Ok(got)
    }

    /// Lands one packet's bytes in a pool slot when one is available
    /// and large enough, else in a fresh heap buffer.
    fn intake_copy(&self, bytes: &[u8]) -> PacketBuf {
        if let Some(pool) = &self.pool {
            if bytes.len() <= pool.slot_size() {
                if let Some(mut slot) = pool.acquire() {
                    slot.buf_mut()[..bytes.len()].copy_from_slice(bytes);
                    slot.set_len(bytes.len());
                    return PacketBuf::Pooled(slot);
                }
            }
        }
        PacketBuf::from(bytes.to_vec())
    }

    /// Sends the queue as aggregated jumbo datagrams. Packets leave the
    /// queue only once the socket accepts their datagram, so
    /// backpressure (`WouldBlock`) keeps them intact for the caller's
    /// next round; a real send error sheds the datagram's packets and
    /// counts one `tx_error`, matching the single-datagram path.
    fn send_batch_aggregated(&self, packets: &mut VecDeque<PacketBuf>) -> usize {
        let mut jumbo = self.tx_jumbo.lock().expect("tx scratch poisoned");
        let mut sent = 0;
        while !packets.is_empty() {
            jumbo.clear();
            jumbo.extend_from_slice(&AGG_MAGIC.to_le_bytes());
            jumbo.extend_from_slice(&[0u8; 4]); // count + pad, patched below
            let mut count = 0usize;
            for pkt in packets.iter() {
                if count >= self.aggregate || jumbo.len() + 4 + pkt.len() > MAX_DATAGRAM {
                    break;
                }
                jumbo.extend_from_slice(&(pkt.len() as u32).to_le_bytes());
                jumbo.extend_from_slice(&pkt[..]);
                count += 1;
            }
            if count == 0 {
                // A packet too large for any datagram can never leave.
                self.tx_errors.fetch_add(1, Relaxed);
                packets.pop_front();
                continue;
            }
            jumbo[4..6].copy_from_slice(&(count as u16).to_le_bytes());
            match self.socket.send_to(&jumbo, self.peer) {
                Ok(_) => {
                    packets.drain(..count);
                    sent += count;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => {
                    self.tx_errors.fetch_add(1, Relaxed);
                    packets.drain(..count);
                    break;
                }
            }
        }
        sent
    }

    /// Receives datagrams into the reused jumbo scratch and splits them
    /// into individual packets (pool slots when available). Staged
    /// leftovers from earlier over-full datagrams are drained first;
    /// new ones past `max` are staged for the next call.
    fn recv_batch_aggregated(&self, out: &mut Vec<PacketBuf>, max: usize) -> usize {
        let mut n = 0;
        {
            let mut split = self.rx_split.lock().expect("rx split queue poisoned");
            while n < max {
                match split.pop_front() {
                    Some(p) => {
                        out.push(p);
                        n += 1;
                    }
                    None => break,
                }
            }
        }
        let mut scratch = self.rx_jumbo.lock().expect("rx scratch poisoned");
        if scratch.len() < MAX_DATAGRAM {
            scratch.resize(MAX_DATAGRAM, 0);
        }
        while n < max {
            let got = match self.socket.recv_from(scratch.as_mut_slice()) {
                Ok((g, _src)) => g,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => {
                    self.rx_errors.fetch_add(1, Relaxed);
                    break;
                }
            };
            let dgram = &scratch[..got];
            if dgram.len() >= AGG_HEADER_LEN && dgram[..4] == AGG_MAGIC.to_le_bytes() {
                let count = u16::from_le_bytes([dgram[4], dgram[5]]) as usize;
                let mut off = AGG_HEADER_LEN;
                for _ in 0..count {
                    let Some(len_bytes) = dgram.get(off..off + 4) else {
                        // Truncated mid-frame: count the mangled
                        // datagram once and move on.
                        self.rx_errors.fetch_add(1, Relaxed);
                        break;
                    };
                    let len = u32::from_le_bytes(len_bytes.try_into().unwrap()) as usize;
                    off += 4;
                    let Some(body) = dgram.get(off..off + len) else {
                        self.rx_errors.fetch_add(1, Relaxed);
                        break;
                    };
                    off += len;
                    let pkt = self.intake_copy(body);
                    if n < max {
                        out.push(pkt);
                        n += 1;
                    } else {
                        self.rx_split.lock().expect("rx split queue poisoned").push_back(pkt);
                    }
                }
            } else {
                // A plain datagram from an un-aggregated sender.
                out.push(self.intake_copy(dgram));
                n += 1;
            }
        }
        n
    }
}

impl Fronthaul for UdpFronthaul {
    fn send(&self, packet: PacketBuf) -> Result<(), PacketBuf> {
        self.send_one(packet)
    }

    fn recv(&self) -> Option<PacketBuf> {
        if self.aggregate > 0 {
            if let Some(p) = self.rx_split.lock().expect("rx split queue poisoned").pop_front() {
                return Some(p);
            }
            let mut one = Vec::with_capacity(1);
            self.recv_batch_aggregated(&mut one, 1);
            return one.pop();
        }
        self.recv_one()
    }

    fn send_batch(&self, packets: &mut VecDeque<PacketBuf>) -> usize {
        if packets.is_empty() {
            return 0;
        }
        if self.aggregate > 1 {
            return self.send_batch_aggregated(packets);
        }
        if self.mmsg_ok.load(Relaxed) && matches!(self.peer, SocketAddr::V4(_)) {
            let n = packets.len().min(sys::MAX_BATCH);
            let mut refs: [&[u8]; sys::MAX_BATCH] = [&[]; sys::MAX_BATCH];
            for (slot, pkt) in refs.iter_mut().zip(packets.iter().take(n)) {
                *slot = pkt;
            }
            match sys::send_batch(&self.socket, self.peer, &refs[..n]) {
                Ok(sent) => {
                    packets.drain(..sent);
                    return sent;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return 0,
                Err(e) if sys::batch_unsupported(&e) => {
                    self.mmsg_ok.store(false, Relaxed);
                    // fall through to the sequential path below
                }
                Err(_) => {
                    // The head datagram failed for a real reason: count
                    // it, drop it, let the rest retry next round.
                    self.tx_errors.fetch_add(1, Relaxed);
                    packets.pop_front();
                    return 0;
                }
            }
        }
        let mut sent = 0;
        while let Some(pkt) = packets.pop_front() {
            match self.send_one(pkt) {
                Ok(()) => sent += 1,
                Err(back) => {
                    packets.push_front(back);
                    break;
                }
            }
        }
        sent
    }

    fn recv_batch(&self, out: &mut Vec<PacketBuf>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        if self.aggregate > 0 {
            return self.recv_batch_aggregated(out, max);
        }
        if self.mmsg_ok.load(Relaxed) {
            match self.recv_batch_mmsg(out, max.min(sys::MAX_BATCH)) {
                Ok(n) => return n,
                Err(e) if sys::batch_unsupported(&e) => self.mmsg_ok.store(false, Relaxed),
                Err(_) => {
                    self.rx_errors.fetch_add(1, Relaxed);
                    return 0;
                }
            }
        }
        let mut n = 0;
        while n < max {
            match self.recv_one() {
                Some(p) => {
                    out.push(p);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    fn link_errors(&self) -> (u64, u64) {
        (self.tx_errors(), self.rx_errors())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{decode_ref, encode, PacketDir, PacketHeader};

    fn test_packet(frame: u32) -> PacketBuf {
        PacketBuf::from(encode(
            &PacketHeader {
                frame,
                symbol: 0,
                antenna: 0,
                dir: PacketDir::Uplink,
                cell: 0,
                payload_len: 4,
            },
            &[1, 2, 3, 4],
        ))
    }

    fn udp_pair() -> (UdpFronthaul, UdpFronthaul) {
        let any: SocketAddr = "127.0.0.1:0".parse().unwrap();
        let mut a = UdpFronthaul::new(any, any).unwrap();
        let b = UdpFronthaul::new(any, a.local_addr().unwrap()).unwrap();
        a.set_peer(b.local_addr().unwrap());
        (a, b)
    }

    /// Polls `recv_batch` until `n` packets arrive (loopback is fast but
    /// asynchronous) or the spin budget runs out.
    fn recv_n(fh: &impl Fronthaul, n: usize) -> Vec<PacketBuf> {
        let mut got = Vec::with_capacity(n);
        for _ in 0..100_000 {
            let want = n - got.len();
            fh.recv_batch(&mut got, want);
            if got.len() == n {
                break;
            }
            std::thread::yield_now();
        }
        got
    }

    #[test]
    fn mem_pair_delivers_both_directions() {
        let (rru, bbu) = MemFronthaul::pair(16);
        assert!(rru.send(test_packet(1)).is_ok());
        assert!(bbu.send(test_packet(2)).is_ok());
        let at_bbu = bbu.recv().unwrap();
        let at_rru = rru.recv().unwrap();
        assert_eq!(decode_ref(&at_bbu).unwrap().0.frame, 1);
        assert_eq!(decode_ref(&at_rru).unwrap().0.frame, 2);
        assert!(bbu.recv().is_none());
    }

    #[test]
    fn mem_backpressure_returns_packet() {
        let (rru, _bbu) = MemFronthaul::pair(2);
        assert!(rru.send(test_packet(0)).is_ok());
        assert!(rru.send(test_packet(1)).is_ok());
        let back = rru.send(test_packet(2)).expect_err("third send must be refused");
        assert_eq!(decode_ref(&back).unwrap().0.frame, 2, "refused packet handed back intact");
    }

    #[test]
    fn mem_preserves_order() {
        let (rru, bbu) = MemFronthaul::pair(64);
        for f in 0..50 {
            rru.send(test_packet(f)).unwrap();
        }
        for f in 0..50 {
            let p = bbu.recv().unwrap();
            assert_eq!(decode_ref(&p).unwrap().0.frame, f);
        }
    }

    #[test]
    fn mem_batch_roundtrip_preserves_order() {
        let (rru, bbu) = MemFronthaul::pair(64);
        let mut outgoing: VecDeque<PacketBuf> = (0..20).map(test_packet).collect();
        assert_eq!(rru.send_batch(&mut outgoing), 20);
        assert!(outgoing.is_empty());
        let mut got = Vec::new();
        assert_eq!(bbu.recv_batch(&mut got, 64), 20);
        for (f, p) in got.iter().enumerate() {
            assert_eq!(decode_ref(p).unwrap().0.frame, f as u32);
        }
    }

    #[test]
    fn mem_send_batch_stops_at_backpressure() {
        let (rru, _bbu) = MemFronthaul::pair(4);
        let mut outgoing: VecDeque<PacketBuf> = (0..10).map(test_packet).collect();
        let sent = rru.send_batch(&mut outgoing);
        assert_eq!(sent, 4, "ring capacity bounds the batch");
        assert_eq!(outgoing.len(), 6, "unsent packets stay queued");
        // The head of the remainder is the first unsent packet.
        assert_eq!(decode_ref(&outgoing[0]).unwrap().0.frame, 4);
    }

    #[test]
    fn udp_loopback_roundtrip() {
        let (a, b) = udp_pair();
        assert!(a.send(test_packet(7)).is_ok());
        let got = recv_n(&b, 1);
        assert_eq!(decode_ref(&got[0]).unwrap().0.frame, 7);
        // And the reverse direction.
        assert!(b.send(test_packet(8)).is_ok());
        let got = recv_n(&a, 1);
        assert_eq!(decode_ref(&got[0]).unwrap().0.frame, 8);
    }

    #[test]
    fn udp_batch_roundtrip_preserves_order_and_content() {
        let (a, b) = udp_pair();
        let mut outgoing: VecDeque<PacketBuf> = (0..40).map(test_packet).collect();
        while !outgoing.is_empty() {
            if a.send_batch(&mut outgoing) == 0 {
                std::thread::yield_now();
            }
        }
        let got = recv_n(&b, 40);
        assert_eq!(got.len(), 40, "loopback should deliver the whole batch");
        for (f, p) in got.iter().enumerate() {
            assert_eq!(decode_ref(p).unwrap().0.frame, f as u32, "order preserved on loopback");
        }
        assert_eq!(a.link_errors(), (0, 0));
        assert_eq!(b.link_errors(), (0, 0));
    }

    #[test]
    fn udp_aggregated_roundtrip_preserves_order_and_bytes() {
        let (a, b) = udp_pair();
        let a = a.with_aggregation(8);
        let b = b.with_aggregation(8).with_pool(PacketPool::new(16, 2048));
        let reference: Vec<PacketBuf> = (0..30).map(test_packet).collect();
        let mut outgoing: VecDeque<PacketBuf> = reference.iter().cloned().collect();
        while !outgoing.is_empty() {
            if a.send_batch(&mut outgoing) == 0 {
                std::thread::yield_now();
            }
        }
        let got = recv_n(&b, 30);
        assert_eq!(got.len(), 30, "loopback should deliver every aggregated packet");
        for (want, have) in reference.iter().zip(&got) {
            assert_eq!(&want[..], &have[..], "split packets must be byte-identical");
        }
        // 30 packets at factor 8 ride in ceil(30/8) = 4 datagrams whose
        // splits exceed a small `max`: leftovers must stage, not drop.
        let mut outgoing: VecDeque<PacketBuf> = reference.iter().cloned().collect();
        while !outgoing.is_empty() {
            if a.send_batch(&mut outgoing) == 0 {
                std::thread::yield_now();
            }
        }
        let mut trickle = Vec::new();
        for _ in 0..100_000 {
            let want = 3.min(30 - trickle.len());
            b.recv_batch(&mut trickle, want);
            if trickle.len() == 30 {
                break;
            }
            std::thread::yield_now();
        }
        assert_eq!(trickle.len(), 30, "staged leftovers drain across small-max calls");
        for (want, have) in reference.iter().zip(&trickle) {
            assert_eq!(&want[..], &have[..]);
        }
        assert_eq!(a.link_errors(), (0, 0));
        assert_eq!(b.link_errors(), (0, 0));
    }

    #[test]
    fn udp_aggregated_endpoint_accepts_plain_datagrams() {
        let (a, b) = udp_pair();
        let b = b.with_aggregation(8);
        // Plain single-packet sends from an un-aggregated peer.
        assert!(a.send(test_packet(5)).is_ok());
        let mut got = Vec::new();
        for _ in 0..100_000 {
            if b.recv_batch(&mut got, 4) > 0 {
                break;
            }
            std::thread::yield_now();
        }
        assert_eq!(got.len(), 1);
        assert_eq!(decode_ref(&got[0]).unwrap().0.frame, 5);
        // The single-packet recv() also splits aggregated datagrams.
        let a = a.with_aggregation(4);
        let mut outgoing: VecDeque<PacketBuf> = (10..14).map(test_packet).collect();
        while !outgoing.is_empty() {
            if a.send_batch(&mut outgoing) == 0 {
                std::thread::yield_now();
            }
        }
        let mut singles = Vec::new();
        for _ in 0..100_000 {
            if let Some(p) = b.recv() {
                singles.push(p);
                if singles.len() == 4 {
                    break;
                }
            } else {
                std::thread::yield_now();
            }
        }
        let frames: Vec<u32> = singles.iter().map(|p| decode_ref(p).unwrap().0.frame).collect();
        assert_eq!(frames, vec![10, 11, 12, 13]);
    }

    #[test]
    fn udp_pooled_receive_recycles_slots() {
        let pool = PacketPool::new(8, 2048);
        let (a, b) = udp_pair();
        let b = b.with_pool(pool.clone());
        for round in 0..5u32 {
            let mut outgoing: VecDeque<PacketBuf> =
                (0..4).map(|i| test_packet(round * 4 + i)).collect();
            while !outgoing.is_empty() {
                if a.send_batch(&mut outgoing) == 0 {
                    std::thread::yield_now();
                }
            }
            let got = recv_n(&b, 4);
            assert_eq!(got.len(), 4);
            for (i, p) in got.iter().enumerate() {
                assert_eq!(decode_ref(p).unwrap().0.frame, round * 4 + i as u32);
            }
            // Dropping the received packets returns their slots.
            drop(got);
        }
        // All slots come home once the endpoint (and its staged
        // buffers) is gone.
        drop(b);
        assert_eq!(pool.available(), 8, "no pooled slot may leak");
    }

    #[test]
    fn pending_counts_queued_packets() {
        let (rru, bbu) = MemFronthaul::pair(16);
        assert_eq!(bbu.pending(), 0);
        rru.send(test_packet(0)).unwrap();
        rru.send(test_packet(1)).unwrap();
        assert_eq!(bbu.pending(), 2);
        bbu.recv();
        assert_eq!(bbu.pending(), 1);
    }

    #[test]
    fn udp_send_to_invalid_peer_counts_tx_error() {
        // Port 0 is never a valid destination: the kernel rejects the
        // datagram outright — a real error, not backpressure, so the
        // packet is a counted drop and the link keeps going.
        let any: SocketAddr = "127.0.0.1:0".parse().unwrap();
        let fh = UdpFronthaul::new(any, any).unwrap();
        assert!(fh.send(test_packet(0)).is_ok(), "real errors are drops, not retries");
        assert_eq!(fh.link_errors().0, 1, "the drop must be counted");
        // The batched path counts and sheds the failing head the same way.
        let mut outgoing: VecDeque<PacketBuf> = (0..3).map(test_packet).collect();
        fh.send_batch(&mut outgoing);
        assert!(fh.link_errors().0 >= 2, "batched send must count the failed datagram");
        assert!(outgoing.len() < 3, "the failed head must not clog the queue");
    }

    /// Builds one packet per `(frame, payload)` pair.
    fn encode_all(pkts: &[(u32, Vec<u8>)]) -> Vec<PacketBuf> {
        pkts.iter()
            .map(|(f, pl)| {
                PacketBuf::from(encode(
                    &PacketHeader {
                        frame: *f,
                        symbol: 0,
                        antenna: 0,
                        dir: PacketDir::Uplink,
                        cell: 0,
                        payload_len: pl.len() as u32,
                    },
                    pl,
                ))
            })
            .collect()
    }

    /// Deterministic multi-seed batch≡single equivalence over the real
    /// UDP loopback: the batched syscalls must deliver exactly the bytes
    /// the one-datagram-per-syscall path delivers, in the same order.
    #[test]
    fn udp_batch_equals_single_across_seeds() {
        for seed in [1u64, 42, 4242] {
            let pkts: Vec<(u32, Vec<u8>)> = (0..30u32)
                .map(|i| {
                    let len = ((seed as u32 * 31 + i * 7) % 120) as usize;
                    (i, (0..len).map(|j| (seed as usize + i as usize * 13 + j) as u8).collect())
                })
                .collect();
            let (batx, barx) = udp_pair();
            let (sitx, sirx) = udp_pair();
            let mut outgoing: VecDeque<PacketBuf> = encode_all(&pkts).into();
            while !outgoing.is_empty() {
                if batx.send_batch(&mut outgoing) == 0 {
                    std::thread::yield_now();
                }
            }
            for p in encode_all(&pkts) {
                let mut p = p;
                while let Err(back) = sitx.send(p) {
                    p = back;
                    std::thread::yield_now();
                }
            }
            let batched = recv_n(&barx, pkts.len());
            let single = recv_n(&sirx, pkts.len());
            assert_eq!(batched.len(), pkts.len(), "seed {seed}: batched path lost packets");
            assert_eq!(single.len(), pkts.len(), "seed {seed}: single path lost packets");
            for (i, (b, s)) in batched.iter().zip(single.iter()).enumerate() {
                assert_eq!(&b[..], &s[..], "seed {seed}, packet {i}: payload divergence");
            }
        }
    }

    mod equivalence {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// For any packet sequence, sending through `send_batch` and
            /// draining through `recv_batch` yields byte-identical
            /// packets, in the same order, as the one-at-a-time path.
            #[test]
            fn mem_batch_equals_single(
                pkts in proptest::collection::vec(
                    (0u32..1000, proptest::collection::vec(any::<u8>(), 0..64)),
                    0..40,
                )
            ) {
                let (batx, barx) = MemFronthaul::pair(64);
                let (sitx, sirx) = MemFronthaul::pair(64);
                let mut outgoing: VecDeque<PacketBuf> = encode_all(&pkts).into();
                let sent = batx.send_batch(&mut outgoing);
                prop_assert_eq!(sent, pkts.len());
                for p in encode_all(&pkts) {
                    prop_assert!(sitx.send(p).is_ok());
                }
                let mut batched = Vec::new();
                barx.recv_batch(&mut batched, 64);
                let mut single = Vec::new();
                while let Some(p) = sirx.recv() {
                    single.push(p);
                }
                prop_assert_eq!(batched.len(), pkts.len());
                prop_assert_eq!(single.len(), pkts.len());
                for (b, s) in batched.iter().zip(single.iter()) {
                    prop_assert_eq!(&b[..], &s[..]);
                }
            }
        }
    }
}
