//! Symbol-rate pacing for the IQ generator.
//!
//! The paper's generator "uses nanosecond-precision RDTSC timestamps to
//! precisely control the idle time between sets of packets" so frames
//! arrive at exactly the configured frame rate (measured error < 1 µs for
//! a 5 ms frame). [`Pacer`] spins on a monotonic clock until each symbol's
//! departure time; on x86-64 the underlying `Instant` reads the TSC.

use std::time::{Duration, Instant};

/// Paces emissions at a fixed interval from a start instant, immune to
/// drift (absolute schedule, not sleep-relative).
#[derive(Debug)]
pub struct Pacer {
    start: Instant,
    interval: Duration,
    next_tick: u64,
}

impl Pacer {
    /// Creates a pacer emitting every `interval`, starting now.
    pub fn new(interval: Duration) -> Self {
        Self { start: Instant::now(), interval, next_tick: 0 }
    }

    /// Absolute schedule offset of `tick`, in u64 nanoseconds. The old
    /// `interval * tick as u32` truncated the tick to 32 bits (wrapping
    /// the deadline backwards after 2^32 ticks — under an hour at
    /// sub-microsecond symbol intervals — which silently disabled
    /// pacing) and could panic on `Duration * u32` overflow. 64-bit
    /// nanosecond arithmetic covers ~584 years of schedule.
    #[inline]
    fn scheduled(&self, tick: u64) -> Duration {
        Duration::from_nanos((self.interval.as_nanos() as u64).saturating_mul(tick))
    }

    /// Busy-waits until the next tick boundary and returns the tick index.
    /// If the caller is already late, returns immediately (no tick is
    /// skipped — backlog drains at full speed, like a NIC queue).
    pub fn wait_next(&mut self) -> u64 {
        let tick = self.next_tick;
        let deadline = self.start + self.scheduled(tick);
        while Instant::now() < deadline {
            std::hint::spin_loop();
        }
        self.next_tick += 1;
        tick
    }

    /// Nanoseconds elapsed since the pacer started.
    pub fn elapsed_ns(&self) -> u128 {
        self.start.elapsed().as_nanos()
    }

    /// How far behind schedule the pacer currently is (zero when on time).
    pub fn lag(&self) -> Duration {
        self.start.elapsed().saturating_sub(self.scheduled(self.next_tick))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_monotonic() {
        let mut p = Pacer::new(Duration::from_micros(10));
        assert_eq!(p.wait_next(), 0);
        assert_eq!(p.wait_next(), 1);
        assert_eq!(p.wait_next(), 2);
    }

    #[test]
    fn interval_is_respected_on_average() {
        // 200 ticks at 50 us = 10 ms nominal; allow generous slack for CI.
        // t0 is taken *before* the pacer's internal start instant so the
        // lower bound holds even if the thread is preempted in between.
        let t0 = Instant::now();
        let mut p = Pacer::new(Duration::from_micros(50));
        for _ in 0..200 {
            p.wait_next();
        }
        let elapsed = t0.elapsed();
        assert!(elapsed >= Duration::from_micros(50 * 199), "finished too fast: {elapsed:?}");
        assert!(elapsed < Duration::from_millis(500), "far too slow: {elapsed:?}");
    }

    #[test]
    fn tick_beyond_u32_does_not_wrap_deadline() {
        // Regression: `interval * tick as u32` truncated the tick, so tick
        // 2^32 wrapped its deadline back to the start instant and lag()
        // reported the full elapsed time. With u64 ns math the scheduled
        // offset keeps growing, so a far-future tick shows zero lag.
        let mut p = Pacer::new(Duration::from_secs(1));
        p.next_tick = (u32::MAX as u64) + 1; // wraps to tick 0 under the bug
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(p.lag(), Duration::ZERO, "deadline wrapped backwards");
        // Saturating math: an absurd tick must not panic.
        p.next_tick = u64::MAX;
        assert_eq!(p.lag(), Duration::ZERO);
    }

    #[test]
    fn late_caller_is_not_blocked() {
        let mut p = Pacer::new(Duration::from_micros(100));
        std::thread::sleep(Duration::from_millis(2));
        // ~20 ticks behind; the next several waits return immediately.
        let t0 = Instant::now();
        for _ in 0..10 {
            p.wait_next();
        }
        assert!(t0.elapsed() < Duration::from_millis(1));
        assert!(p.lag() > Duration::from_micros(500));
    }
}
