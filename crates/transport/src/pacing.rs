//! Symbol-rate pacing for the IQ generator.
//!
//! The paper's generator "uses nanosecond-precision RDTSC timestamps to
//! precisely control the idle time between sets of packets" so frames
//! arrive at exactly the configured frame rate (measured error < 1 µs for
//! a 5 ms frame). [`Pacer`] spins on a monotonic clock until each symbol's
//! departure time; on x86-64 the underlying `Instant` reads the TSC.

use std::time::{Duration, Instant};

/// Paces emissions at a fixed interval from a start instant, immune to
/// drift (absolute schedule, not sleep-relative).
#[derive(Debug)]
pub struct Pacer {
    start: Instant,
    interval: Duration,
    next_tick: u64,
}

impl Pacer {
    /// Creates a pacer emitting every `interval`, starting now.
    pub fn new(interval: Duration) -> Self {
        Self { start: Instant::now(), interval, next_tick: 0 }
    }

    /// Busy-waits until the next tick boundary and returns the tick index.
    /// If the caller is already late, returns immediately (no tick is
    /// skipped — backlog drains at full speed, like a NIC queue).
    pub fn wait_next(&mut self) -> u64 {
        let tick = self.next_tick;
        let deadline = self.start + self.interval * tick as u32;
        while Instant::now() < deadline {
            std::hint::spin_loop();
        }
        self.next_tick += 1;
        tick
    }

    /// Nanoseconds elapsed since the pacer started.
    pub fn elapsed_ns(&self) -> u128 {
        self.start.elapsed().as_nanos()
    }

    /// How far behind schedule the pacer currently is (zero when on time).
    pub fn lag(&self) -> Duration {
        let scheduled = self.interval * self.next_tick as u32;
        self.start.elapsed().saturating_sub(scheduled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_monotonic() {
        let mut p = Pacer::new(Duration::from_micros(10));
        assert_eq!(p.wait_next(), 0);
        assert_eq!(p.wait_next(), 1);
        assert_eq!(p.wait_next(), 2);
    }

    #[test]
    fn interval_is_respected_on_average() {
        // 200 ticks at 50 us = 10 ms nominal; allow generous slack for CI.
        let mut p = Pacer::new(Duration::from_micros(50));
        let t0 = Instant::now();
        for _ in 0..200 {
            p.wait_next();
        }
        let elapsed = t0.elapsed();
        assert!(
            elapsed >= Duration::from_micros(50 * 199),
            "finished too fast: {elapsed:?}"
        );
        assert!(elapsed < Duration::from_millis(100), "far too slow: {elapsed:?}");
    }

    #[test]
    fn late_caller_is_not_blocked() {
        let mut p = Pacer::new(Duration::from_micros(100));
        std::thread::sleep(Duration::from_millis(2));
        // ~20 ticks behind; the next several waits return immediately.
        let t0 = Instant::now();
        for _ in 0..10 {
            p.wait_next();
        }
        assert!(t0.elapsed() < Duration::from_millis(1));
        assert!(p.lag() > Duration::from_micros(500));
    }
}
