//! Criterion micro-benchmarks of the per-block kernels — the raw
//! numbers behind Table 3's "time per task" column and §4.2's matrix-
//! optimisation claims, measured on this machine's real Rust kernels.
//!
//! Groups:
//! * `fft`: 2048-point FFT (the per-antenna task).
//! * `zf`: pseudo-inverse per subcarrier group — direct vs SVD (§4.2:
//!   "roughly an order of magnitude slower").
//! * `gemm`: specialised ("JIT"-analogue) vs generic equalization GEMM.
//! * `demod`: fused equalize+demod per 8-subcarrier block.
//! * `ldpc`: decode per code block — the dominant block.
//! * `queue`: MPMC push/pop — the 64-byte message hot path.

use agora_fft::{Direction, FftPlan};
use agora_ldpc::{BaseGraphId, DecodeConfig, Decoder, Encoder};
use agora_math::{pinv_direct, pinv_svd, CMat, Cf32, Gemm};
use agora_phy::demod::demod_soft;
use agora_phy::modulation::ModScheme;
use agora_queue::{MpmcQueue, Msg, TaskType};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn rand_mat(rows: usize, cols: usize, seed: u64) -> CMat {
    let mut state = seed | 1;
    CMat::from_fn(rows, cols, |_, _| {
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f32 / (1u64 << 53) as f32) - 0.25
        };
        Cf32::new(next(), next())
    })
}

fn bench_fft(c: &mut Criterion) {
    let plan = FftPlan::new(2048);
    let data: Vec<Cf32> = (0..2048).map(|i| Cf32::cis(0.1 * i as f32)).collect();
    c.bench_function("fft/2048_forward", |b| {
        b.iter_batched(
            || data.clone(),
            |mut d| {
                plan.execute(&mut d, Direction::Forward);
                black_box(d)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_zf(c: &mut Criterion) {
    let h = rand_mat(64, 16, 42);
    c.bench_function("zf/pinv_direct_64x16", |b| {
        b.iter(|| black_box(pinv_direct(black_box(&h)).unwrap()))
    });
    c.bench_function("zf/pinv_svd_64x16", |b| b.iter(|| black_box(pinv_svd(black_box(&h), 1e-6))));
}

fn bench_gemm(c: &mut Criterion) {
    let det = rand_mat(16, 64, 7);
    let block = rand_mat(64, 8, 8);
    let spec = Gemm::plan(16, 64, 8);
    let generic = Gemm::plan_generic(16, 64, 8);
    let mut out = vec![Cf32::ZERO; 16 * 8];
    c.bench_function("gemm/specialized_16x64x8", |b| {
        b.iter(|| {
            spec.run(det.as_slice(), block.as_slice(), &mut out);
            black_box(&out);
        })
    });
    c.bench_function("gemm/generic_16x64x8", |b| {
        b.iter(|| {
            generic.run(det.as_slice(), block.as_slice(), &mut out);
            black_box(&out);
        })
    });
}

fn bench_demod(c: &mut Criterion) {
    let syms: Vec<Cf32> = (0..8).map(|i| Cf32::cis(0.7 * i as f32).scale(0.9)).collect();
    let mut llrs = Vec::new();
    c.bench_function("demod/qam64_8sc_soft", |b| {
        b.iter(|| {
            demod_soft(ModScheme::Qam64, black_box(&syms), 0.05, &mut llrs);
            black_box(&llrs);
        })
    });
}

fn bench_ldpc(c: &mut Criterion) {
    let z = 104;
    let enc = Encoder::new(BaseGraphId::Bg1, z);
    let info: Vec<u8> = (0..enc.info_len()).map(|i| (i % 2) as u8).collect();
    let cw = enc.encode(&info);
    let llr: Vec<f32> = cw
        .iter()
        .enumerate()
        .map(|(i, &b)| {
            if i < 2 * z {
                0.0
            } else if b == 0 {
                4.0
            } else {
                -4.0
            }
        })
        .collect();
    let mut dec = Decoder::new(BaseGraphId::Bg1, z);
    let cfg = DecodeConfig { max_iters: 5, early_termination: false, ..Default::default() };
    c.bench_function("ldpc/encode_bg1_z104", |b| b.iter(|| black_box(enc.encode(&info))));
    c.bench_function("ldpc/decode_bg1_z104_5it", |b| b.iter(|| black_box(dec.decode(&llr, &cfg))));
}

fn bench_queue(c: &mut Criterion) {
    let q: MpmcQueue<Msg> = MpmcQueue::new(1024);
    let msg = Msg::task(TaskType::Demod, 1, 2, 3, 64);
    c.bench_function("queue/push_pop_64B", |b| {
        b.iter(|| {
            q.push(black_box(msg)).unwrap();
            black_box(q.pop().unwrap());
        })
    });
}

fn bench_full_frame(c: &mut Criterion) {
    // End-to-end inline processing of one tiny-cell uplink frame: the
    // number a downstream user cares about first ("how fast is a frame
    // on one core?").
    use agora_core::{EngineConfig, InlineProcessor};
    use agora_fronthaul::{RruConfig, RruEmulator};
    use agora_phy::CellConfig;
    let cell = CellConfig::tiny_test(2);
    let mut rru = RruEmulator::new(cell.clone(), RruConfig { snr_db: 28.0, ..Default::default() });
    let mut cfg = EngineConfig::new(cell.clone(), 1);
    cfg.noise_power = rru.noise_power();
    let mut proc = InlineProcessor::new(cfg);
    let (packets, _gt) = rru.generate_frame(0);
    c.bench_function("frame/tiny_uplink_inline", |b| {
        b.iter(|| black_box(proc.process_frame(0, &packets)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_fft, bench_zf, bench_gemm, bench_demod, bench_ldpc, bench_queue, bench_full_frame
}
criterion_main!(benches);
