//! Kernel calibration: measures the real Rust kernels on the local
//! machine and converts them into a [`agora_core::sim::CostModel`].
//!
//! The paper's Table 3 reports per-task costs measured on a Xeon Gold
//! 6130 with MKL/FlexRAN/AVX-512. Our kernels are portable Rust, so
//! absolute numbers differ; calibrating the simulator with *our*
//! measured costs keeps the schedule realistic for this machine, while
//! `CostModel::paper` reproduces the paper's absolute scale. Benches
//! report both.

use agora_core::sim::CostModel;
use agora_core::{EngineConfig, InlineProcessor};
use agora_fronthaul::{RruConfig, RruEmulator};
use agora_phy::CellConfig;
use std::time::Instant;

/// Measured per-task kernel costs (ns).
#[derive(Debug, Clone, Copy)]
pub struct Calibration {
    /// One 2048-point FFT + demap (+CSI on pilots).
    pub fft_ns: f64,
    /// One ZF group (pinv of M x K + precoder).
    pub zf_ns: f64,
    /// Equalize + demod of one subcarrier.
    pub demod_sc_ns: f64,
    /// One LDPC decode (code block at the cell's Z/iters).
    pub decode_ns: f64,
}

impl Calibration {
    /// Converts to the simulator's cost model.
    pub fn cost_model(&self) -> CostModel {
        CostModel::measured(self.fft_ns, self.zf_ns, self.demod_sc_ns, self.decode_ns)
    }
}

/// Measures kernel costs for a cell by timing the inline engine's phases
/// over `reps` frames. The breakdown leans on the inline processor
/// executing blocks in distinct phases, timed separately.
pub fn calibrate(cell: &CellConfig, reps: usize) -> Calibration {
    let mut rru = RruEmulator::new(cell.clone(), RruConfig { snr_db: 25.0, ..Default::default() });
    let mut cfg = EngineConfig::new(cell.clone(), 1);
    cfg.noise_power = rru.noise_power();
    let kernels = agora_core::Kernels::new(cfg.clone());
    let mut scratch = kernels.scratch();
    let mut proc = InlineProcessor::new(cfg);
    let g = kernels.geom;

    // Generate one frame and ingest it so buffers hold real data.
    let (packets, _gt) = rru.generate_frame(0);
    // Prime all buffers (CSI, detectors, LLRs) by a full pass.
    let _ = proc.process_frame(0, &packets);
    let fb = proc.buffers(0);

    // FFT: time data-symbol FFT tasks.
    let symbol = cell.schedule.uplink_indices()[0];
    let t0 = Instant::now();
    let mut n = 0u64;
    for _ in 0..reps {
        for ant in 0..g.m {
            kernels.fft_task(fb, &mut scratch, symbol, ant);
            n += 1;
        }
    }
    let fft_ns = t0.elapsed().as_nanos() as f64 / n as f64;

    // ZF: per group.
    let t0 = Instant::now();
    let mut n = 0u64;
    for _ in 0..reps {
        for group in 0..cell.num_zf_groups() {
            kernels.zf_task(fb, &mut scratch, group);
            n += 1;
        }
    }
    let zf_ns = t0.elapsed().as_nanos() as f64 / n as f64;

    // Demod: per subcarrier.
    let t0 = Instant::now();
    let mut n = 0u64;
    for _ in 0..reps {
        kernels.demod_task(fb, &mut scratch, 0, symbol, 0, g.q);
        n += g.q as u64;
    }
    let demod_sc_ns = t0.elapsed().as_nanos() as f64 / n as f64;

    // Decode: per (symbol, user) block.
    let t0 = Instant::now();
    let mut n = 0u64;
    for _ in 0..reps {
        for user in 0..g.k {
            kernels.decode_task(fb, &mut scratch, symbol, user);
            n += 1;
        }
    }
    let decode_ns = t0.elapsed().as_nanos() as f64 / n as f64;

    Calibration { fft_ns, zf_ns, demod_sc_ns, decode_ns }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_produces_positive_costs() {
        let cell = CellConfig::tiny_test(1);
        let c = calibrate(&cell, 1);
        assert!(c.fft_ns > 0.0 && c.zf_ns > 0.0 && c.demod_sc_ns > 0.0 && c.decode_ns > 0.0);
        // Decode is the heavyweight block even at tiny scale.
        assert!(c.decode_ns > c.demod_sc_ns);
    }
}
