//! Measured complex-GEMM sweep: scalar planned kernels vs the AVX2 plane.
//!
//! This is the evidence behind the AVX2 complex-GEMM plane: per-call wall
//! time for the beamforming shapes the frame loop actually runs, compared
//! between a `SimdTier::Scalar`-pinned plan (the `simd_gemm` ablation's
//! off state — still the shape-specialised "JIT" kernel where one exists)
//! and the AVX2 register-tiled kernel. Three matrix products are timed
//! per antenna/user geometry:
//!
//! - **equalize** — the batched `(K, M, B=8)` GEMM behind `demod_task`
//!   (one cache line of subcarriers per call),
//! - **gemv** — the single-subcarrier `(K, M)` detector apply used by the
//!   strided (cache-layout-off) path and `equalize_one`,
//! - **zf** — the full `pinv_into` Gram chain (`H^H H`, Gauss-Jordan
//!   inverse, `(H^H H)^-1 H^H`) behind `zf_task`.
//!
//! The 64x16 row is the paper configuration; its measured equalize and ZF
//! times feed the simulator's calibration constants
//! (`agora_core::sim::MEASURED_ZF_NS` / `MEASURED_EQ_SC_NS`). Writes
//! `results/gemm_simd.csv`.

use agora_bench::csv::write_csv;
use agora_math::simd::SimdTier;
use agora_math::{pinv_into, CMat, Cf32, Gemm, PinvMethod, PinvScratch};
use std::time::Instant;

/// Subcarriers per equalize call (one 64-byte cache line of `Cf32`).
const BATCH: usize = 8;

/// Timing trials per configuration; the minimum is reported, which is the
/// robust estimator on a shared core (anything above the minimum is
/// scheduler or frequency noise, not the kernel under test).
const TRIALS: usize = 5;

fn fill(seed: u64, buf: &mut [Cf32]) {
    let mut state = seed | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state >> 11) as f32 / (1u64 << 53) as f32) - 0.25
    };
    for v in buf.iter_mut() {
        *v = Cf32::new(next(), next());
    }
}

/// Per-call nanoseconds for a planned GEMM `(m, k, n)`: best of [`TRIALS`].
fn time_gemm(plan: &Gemm, a: &[Cf32], b: &[Cf32], c: &mut [Cf32], reps: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..TRIALS {
        let t0 = Instant::now();
        for _ in 0..reps {
            plan.run(std::hint::black_box(a), std::hint::black_box(b), c);
            std::hint::black_box(&c);
        }
        best = best.min(t0.elapsed().as_secs_f64() * 1e9 / reps as f64);
    }
    best
}

/// Per-call nanoseconds for `pinv_into` with the scratch tier pinned.
fn time_pinv(h: &CMat, s: &mut PinvScratch, out: &mut CMat, reps: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..TRIALS {
        let t0 = Instant::now();
        for _ in 0..reps {
            pinv_into(std::hint::black_box(h), PinvMethod::Direct, s, out);
            std::hint::black_box(&out);
        }
        best = best.min(t0.elapsed().as_secs_f64() * 1e9 / reps as f64);
    }
    best
}

fn main() {
    let tier = SimdTier::detect();
    println!("complex GEMM sweep (detected tier: {tier:?}, equalize batch B={BATCH})");
    println!(
        "{:>8} {:>6} | {:>11} {:>9} {:>6} | {:>11} {:>9} {:>6} | {:>11} {:>9} {:>6}",
        "M",
        "K",
        "eq_scal_ns",
        "eq_simd",
        "x",
        "gv_scal_ns",
        "gv_simd",
        "x",
        "zf_scal_ns",
        "zf_simd",
        "x"
    );
    let mut rows = Vec::new();
    let mut eq64 = 0.0f64;
    let mut paper = (0.0f64, 0.0f64); // (eq_simd_per_sc, zf_simd)
    for (m, k) in [(64usize, 16usize), (32, 8), (16, 4)] {
        // Equalize: users_out[K x B] = W[K x M] * ant_block[M x B].
        let mut w = vec![Cf32::ZERO; k * m];
        let mut ant = vec![Cf32::ZERO; m * BATCH];
        let mut out = vec![Cf32::ZERO; k * BATCH];
        fill(m as u64 * 31 + k as u64, &mut w);
        fill(m as u64 * 57 + 5, &mut ant);
        let reps = (1usize << 22) / (m * k * BATCH);
        let scal_plan = Gemm::plan_with_tier(k, m, BATCH, SimdTier::Scalar);
        let simd_plan = Gemm::plan_with_tier(k, m, BATCH, tier);
        let eq_scal = time_gemm(&scal_plan, &w, &ant, &mut out, reps);
        let eq_simd = time_gemm(&simd_plan, &w, &ant, &mut out, reps);

        // GEMV: users_out[K] = W[K x M] * y[M] (strided / one-subcarrier path).
        let gv_reps = reps * BATCH;
        let mut one_out = vec![Cf32::ZERO; k];
        let gv_scal = {
            let mut best = f64::INFINITY;
            for _ in 0..TRIALS {
                let t0 = Instant::now();
                for _ in 0..gv_reps {
                    agora_math::gemv_with_tier(
                        k,
                        m,
                        std::hint::black_box(&w),
                        std::hint::black_box(&ant[..m]),
                        &mut one_out,
                        SimdTier::Scalar,
                    );
                    std::hint::black_box(&one_out);
                }
                best = best.min(t0.elapsed().as_secs_f64() * 1e9 / gv_reps as f64);
            }
            best
        };
        let gv_simd = {
            let mut best = f64::INFINITY;
            for _ in 0..TRIALS {
                let t0 = Instant::now();
                for _ in 0..gv_reps {
                    agora_math::gemv_with_tier(
                        k,
                        m,
                        std::hint::black_box(&w),
                        std::hint::black_box(&ant[..m]),
                        &mut one_out,
                        tier,
                    );
                    std::hint::black_box(&one_out);
                }
                best = best.min(t0.elapsed().as_secs_f64() * 1e9 / gv_reps as f64);
            }
            best
        };

        // ZF: pinv of an M x K channel (the per-group zf_task core).
        let h = CMat::from_fn(m, k, |r, c| {
            let i = (r * k + c) as u64;
            Cf32::new(
                ((i * 2654435761 % 1000) as f32 / 1000.0) - 0.5,
                ((i * 40503 % 1000) as f32 / 1000.0) - 0.5,
            )
        });
        let mut pout = CMat::zeros(k, m);
        let zf_reps = ((1usize << 24) / (m * k * k)).max(64);
        let mut s_scal = PinvScratch::with_tier(m, k, SimdTier::Scalar);
        let mut s_simd = PinvScratch::with_tier(m, k, tier);
        let zf_scal = time_pinv(&h, &mut s_scal, &mut pout, zf_reps);
        let zf_simd = time_pinv(&h, &mut s_simd, &mut pout, zf_reps);

        let eq_x = eq_scal / eq_simd;
        let gv_x = gv_scal / gv_simd;
        let zf_x = zf_scal / zf_simd;
        println!(
            "{m:>8} {k:>6} | {eq_scal:>11.0} {eq_simd:>9.0} {eq_x:>5.1}x | {gv_scal:>11.0} {gv_simd:>9.0} {gv_x:>5.1}x | {zf_scal:>11.0} {zf_simd:>9.0} {zf_x:>5.1}x"
        );
        rows.push(format!(
            "{m},{k},{BATCH},{eq_scal:.0},{eq_simd:.0},{eq_x:.2},{gv_scal:.0},{gv_simd:.0},{gv_x:.2},{zf_scal:.0},{zf_simd:.0},{zf_x:.2}"
        ));
        if (m, k) == (64, 16) {
            eq64 = eq_x;
            paper = (eq_simd / BATCH as f64, zf_simd);
        }
    }
    let p = write_csv(
        "gemm_simd",
        "m,k,batch,eq_scalar_ns,eq_simd_ns,eq_speedup,gemv_scalar_ns,gemv_simd_ns,gemv_speedup,zf_scalar_ns,zf_simd_ns,zf_speedup",
        &rows,
    );
    println!("\nwrote {}", p.display());
    println!(
        "64x16 (paper config): equalize {eq64:.1}x; per-subcarrier equalize {:.0} ns, zf group {:.0} ns",
        paper.0, paper.1
    );
    // The PR's acceptance floor — fail loudly if the kernels regress.
    if eq64 < 3.0 {
        println!("FAIL: below the >=3x floor for the 64x16 equalize GEMM");
        std::process::exit(1);
    }
}
