//! Figure 8, deployment flavour: multi-cell scalability at a FIXED
//! total core budget. Sweeps C ∈ {1, 2, 4, 8} cells over one shared
//! link and one shared 8-worker pool — the "millions of users" axis:
//! how much aggregate frame throughput one server sustains as it is
//! sliced into more cells, and what the slicing costs per frame.
//!
//! Each cell runs the tiny 8x2 test geometry with its own seed; the
//! paced `MultiCellGenerator` interleaves all cell streams onto one
//! in-memory link and the deployment demuxes by the header cell byte.
//! The supervisor runs with default policy; with evenly loaded cells it
//! should migrate rarely or never (the `migrations` column records it).

use agora_bench::csv::write_csv;
use agora_core::deploy::{Deployment, DeploymentConfig};
use agora_core::EngineConfig;
use agora_fronthaul::{MemFronthaul, MultiCellGenerator, RruConfig, RruEmulator};
use agora_phy::CellConfig;
use std::sync::atomic::AtomicBool;
use std::time::Instant;

const TOTAL_WORKERS: usize = 8;
const FRAMES_PER_CELL: u32 = 6;

fn main() {
    let cell = CellConfig::tiny_test(2);
    println!(
        "Figure 8 (cells) — aggregate throughput vs cell count at {TOTAL_WORKERS} total workers"
    );
    println!("cells  frames  completed  dropped  wall_ms  frames/s  mean_ul_us  migrations");
    let mut rows = Vec::new();
    for cells in [1usize, 2, 4, 8] {
        let rrus: Vec<RruEmulator> = (0..cells)
            .map(|c| {
                RruEmulator::new(
                    cell.clone(),
                    RruConfig {
                        snr_db: 30.0,
                        seed: 4000 + c as u64,
                        cell_id: c as u8,
                        ..Default::default()
                    },
                )
            })
            .collect();
        let cfgs: Vec<EngineConfig> = rrus
            .iter()
            .map(|r| {
                let mut cfg = EngineConfig::new(cell.clone(), 1);
                cfg.noise_power = r.noise_power();
                cfg
            })
            .collect();
        let per_frame = cell.symbols_per_frame() * cell.num_antennas;
        let capacity = (2 * cells * per_frame * FRAMES_PER_CELL as usize).next_power_of_two();
        let (tx, rx) = MemFronthaul::pair(capacity);
        let mut generator = MultiCellGenerator::new(rrus);
        let _truths = generator.run(&tx, FRAMES_PER_CELL);

        let deployment = Deployment::new(DeploymentConfig::new(cfgs, TOTAL_WORKERS));
        let done = AtomicBool::new(true);
        let t0 = Instant::now();
        let results = deployment.process_fronthaul(&rx, FRAMES_PER_CELL, &done);
        let wall = t0.elapsed();

        let total_frames = (cells as u32 * FRAMES_PER_CELL) as u64;
        let stats = deployment.stats().rollup();
        let completed = stats.frames_completed();
        let dropped = stats.frames_dropped();
        let mut lat_sum_ns = 0u64;
        let mut lat_n = 0u64;
        for res in &results {
            for r in res {
                if !r.dropped {
                    lat_sum_ns += r.uplink_latency_ns();
                    lat_n += 1;
                }
            }
        }
        let mean_ul_us =
            if lat_n > 0 { lat_sum_ns as f64 / lat_n as f64 / 1000.0 } else { f64::NAN };
        let wall_ms = wall.as_secs_f64() * 1e3;
        let fps = total_frames as f64 / wall.as_secs_f64();
        let migrations = deployment.migrations();
        println!(
            "{cells:>5}  {total_frames:>6}  {completed:>9}  {dropped:>7}  {wall_ms:>7.2}  \
             {fps:>8.1}  {mean_ul_us:>10.1}  {migrations:>10}"
        );
        rows.push(format!(
            "{cells},{TOTAL_WORKERS},{FRAMES_PER_CELL},{total_frames},{completed},{dropped},\
             {wall_ms:.3},{fps:.1},{mean_ul_us:.1},{migrations}"
        ));
    }
    let p = write_csv(
        "fig8_cells",
        "cells,total_workers,frames_per_cell,frames_total,completed,dropped,wall_ms,\
         frames_per_sec,mean_uplink_latency_us,migrations",
        &rows,
    );
    println!("\nwrote {}", p.display());
    println!("expected shape: aggregate throughput holds roughly flat as the fixed core");
    println!("budget is sliced across more cells, with per-frame latency rising from");
    println!("cross-cell contention (this machine time-shares one physical core).");
}
