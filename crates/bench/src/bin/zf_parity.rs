//! CI smoke: ZF Cholesky-solve correctness and tier parity.
//! Deterministic (fixed seeds), fast (<1 s), exit code 1 on any
//! violation — `scripts/ci.sh` runs it after the test suite as a
//! release-build cross-check of the Cholesky ZF plane's contracts:
//!
//! * the Cholesky-solved detector `(H^H H)^{-1} H^H` agrees with the
//!   Gauss-Jordan detector to f32 accuracy on every engine shape;
//! * the Cholesky chain (Gram, factor, solve) is **bit-identical** on
//!   the detected SIMD tier and the forced-scalar tier;
//! * the iterative equalizer's CG solve recovers the direct solution;
//! * a nearly-singular channel (duplicated user column) is rejected by
//!   the factorisation's pivot test instead of returning garbage.

use agora_math::{pinv_into, CMat, Cf32, CholScratch, Cholesky, PinvMethod, PinvScratch, SimdTier};
use agora_phy::equalize::{cg_solve_gram, CgScratch};

fn fill(seed: u64, buf: &mut [Cf32]) {
    let mut state = seed | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state >> 11) as f32 / (1u64 << 53) as f32) - 0.25
    };
    for v in buf.iter_mut() {
        *v = Cf32::new(next(), next());
    }
}

fn channel(m: usize, k: usize, seed: u64) -> CMat {
    let mut h = CMat::zeros(m, k);
    fill(seed, h.as_mut_slice());
    h
}

fn bits(v: &[Cf32]) -> Vec<(u32, u32)> {
    v.iter().map(|c| (c.re.to_bits(), c.im.to_bits())).collect()
}

fn main() {
    let tier = SimdTier::detect();
    println!("ZF Cholesky parity smoke (detected tier: {tier:?})");
    let mut failures = 0usize;

    let shapes: &[(usize, usize)] = &[(64, 16), (32, 8), (16, 4), (64, 15), (24, 7), (8, 1)];

    // Cholesky detector vs Gauss-Jordan detector (f32 agreement), and
    // tier parity of the Cholesky route (bit-exactness).
    for &(m, k) in shapes {
        let h = channel(m, k, (m * 131 + k) as u64);
        let mut gj = CMat::zeros(k, m);
        let mut ch = CMat::zeros(k, m);
        let mut ch_scalar = CMat::zeros(k, m);
        let mut s = PinvScratch::with_tier(m, k, tier);
        pinv_into(&h, PinvMethod::Direct, &mut s, &mut gj);
        pinv_into(&h, PinvMethod::Cholesky, &mut s, &mut ch);
        let mut s_scalar = PinvScratch::with_tier(m, k, SimdTier::Scalar);
        pinv_into(&h, PinvMethod::Cholesky, &mut s_scalar, &mut ch_scalar);
        let diff = ch.max_abs_diff(&gj);
        if diff > 1e-3 {
            println!("FAIL detector ({m},{k}): Cholesky vs Gauss-Jordan diff {diff:.3e}");
            failures += 1;
        }
        if bits(ch.as_slice()) != bits(ch_scalar.as_slice()) {
            println!("FAIL detector ({m},{k}): Cholesky tiers diverge");
            failures += 1;
        }
        // CG on the Gram system must land on the direct solve.
        let hh = h.hermitian();
        let gram = hh.matmul(&h);
        let chol = match Cholesky::factor(&gram) {
            Ok(c) => c,
            Err(e) => {
                println!("FAIL factor ({m},{k}): {e:?}");
                failures += 1;
                continue;
            }
        };
        let mut x_true = vec![Cf32::ZERO; k];
        fill((k * 977 + m) as u64, &mut x_true);
        let b = gram.matvec(&x_true);
        let bm = CMat::from_fn(k, 1, |r, _| b[r]);
        let direct = chol.solve(&bm);
        let mut cg = CgScratch::new(k);
        let mut x = vec![Cf32::ZERO; k];
        cg_solve_gram(gram.as_slice(), k, &b, &mut x, 16, 1e-5, &mut cg);
        let scale = direct.as_slice().iter().map(|z| z.abs()).fold(1.0f32, f32::max);
        let cg_diff = x
            .iter()
            .zip(direct.as_slice().iter())
            .map(|(a, e)| (*a - *e).abs())
            .fold(0.0f32, f32::max);
        if cg_diff > 1e-3 * scale {
            println!("FAIL cg ({m},{k}): diff {cg_diff:.3e} vs direct solve");
            failures += 1;
        }
    }

    // Factor tier parity is bit-exact on odd sizes too.
    for &k in &[1usize, 3, 5, 7, 11, 15, 16] {
        let h = channel(4 * k.max(2), k, (k * 7919) as u64);
        let hh = h.hermitian();
        let gram = hh.matmul(&h);
        let mut l_simd = CMat::zeros(k, k);
        let mut l_scal = CMat::zeros(k, k);
        let mut sc = CholScratch::new(k);
        if Cholesky::factor_into(&gram, &mut l_simd, &mut sc, tier).is_err()
            || Cholesky::factor_into(&gram, &mut l_scal, &mut sc, SimdTier::Scalar).is_err()
        {
            println!("FAIL factor_into k={k}: unexpected pivot rejection");
            failures += 1;
            continue;
        }
        if bits(l_simd.as_slice()) != bits(l_scal.as_slice()) {
            println!("FAIL factor_into k={k}: tiers diverge");
            failures += 1;
        }
    }

    // Nearly-duplicated user channels must be rejected by the pivot test
    // (the f32-aware singularity guard), not silently inverted.
    let base = channel(64, 16, 4242);
    let mut bad = base.clone();
    for r in 0..64 {
        let v = bad[(r, 0)];
        bad[(r, 1)] = v + Cf32::new(1e-6, -1e-6);
    }
    let hh = bad.hermitian();
    let gram = hh.matmul(&bad);
    match Cholesky::factor(&gram) {
        Ok(_) => {
            println!("FAIL guard: near-duplicate user channel passed the pivot test");
            failures += 1;
        }
        Err(e) => println!("guard OK: near-duplicate channel rejected at step {}", e.step),
    }

    if failures > 0 {
        println!("zf parity smoke: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("zf parity smoke: OK ({} detector shapes, 7 factor sizes, 1 guard)", shapes.len());
}
