//! Extension: frame-completion ratio and end-to-end block error rate
//! under injected fronthaul faults (packet loss, reordering,
//! duplication), sweeping the i.i.d. loss rate plus one bursty
//! Gilbert-Elliott point of matched mean rate.
//!
//! The paper's stance (§6) is that Agora drops a frame it cannot finish
//! in time and keeps pace; this sweep quantifies the cost of that
//! policy: each lost packet strands a whole frame, so the completed-
//! frame ratio decays like (1-p)^packets_per_frame while the engine
//! itself never stalls, and the block error rate tracks the abandoned
//! frames rather than the decoder.
//!
//! Usage: ext_faults [frames_per_point]   (default 40)

use agora_bench::csv::write_csv;
use agora_core::{Engine, EngineConfig};
use agora_fronthaul::{FaultConfig, FaultInjector, LossModel, RruConfig, RruEmulator};
use agora_ldpc::BaseGraphId;
use agora_phy::frame::LdpcParams;
use agora_phy::pilots::PilotScheme;
use agora_phy::{CellConfig, FrameSchedule, ModScheme};

/// Reduced 64x16 cell (full paper antenna/user counts, short FFT and
/// code so a multi-point sweep stays fast).
fn cell_64x16() -> CellConfig {
    let cell = CellConfig {
        num_antennas: 64,
        num_users: 16,
        fft_size: 128,
        num_data_sc: 64,
        cp_len: 0,
        modulation: ModScheme::Qpsk,
        pilot_scheme: PilotScheme::FrequencyOrthogonal,
        zf_group: 16,
        ldpc: LdpcParams { base_graph: BaseGraphId::Bg2, z: 4, rate: 1.0 / 3.0, max_iters: 8 },
        schedule: FrameSchedule::uplink(1, 2),
        symbol_duration_ns: 71_000,
    };
    cell.validate().expect("valid reduced cell");
    cell
}

struct PointResult {
    completed: u64,
    dropped: u64,
    lost: u64,
    late: u64,
    dup: u64,
    reordered: u64,
    offered: u64,
    bler: f64,
}

fn run_point(cell: &CellConfig, frames: u32, loss: LossModel, seed: u64) -> PointResult {
    let mut rru = RruEmulator::new(
        cell.clone(),
        RruConfig { snr_db: 30.0, seed: 1000 + seed, ..Default::default() },
    );
    let mut packets = Vec::new();
    let mut truths = Vec::new();
    for f in 0..frames {
        let (p, gt) = rru.generate_frame(f);
        packets.extend(p);
        truths.push(gt);
    }
    let noise = rru.noise_power();
    let mut inj = FaultInjector::new(FaultConfig {
        loss,
        reorder_prob: 0.05,
        max_delay: 16,
        duplicate_prob: 0.005,
        seed,
    });
    let faulted = inj.apply(packets);
    let fs = inj.stats().clone();

    let mut cfg = EngineConfig::new(cell.clone(), 3);
    cfg.noise_power = noise;
    cfg.frame_deadline_ns = Some(200_000_000);
    let engine = Engine::new(cfg);
    let results = engine.process(faulted, frames, false);

    // End-to-end BLER vs ground truth: a block is in error if its frame
    // was abandoned before decode or the decoded bits mismatch.
    let mut blocks = 0u64;
    let mut bad = 0u64;
    for r in &results {
        let gt = &truths[r.frame as usize];
        for symbol in cell.schedule.uplink_indices() {
            for user in 0..cell.num_users {
                blocks += 1;
                let ok = r.decode_ok[symbol][user]
                    && r.decoded[symbol][user] == gt.info_bits[symbol][user];
                if !ok {
                    bad += 1;
                }
            }
        }
    }
    let stats = engine.stats();
    PointResult {
        completed: stats.frames_completed(),
        dropped: stats.frames_dropped(),
        lost: fs.lost,
        late: stats.packets_late(),
        dup: stats.packets_duplicate(),
        reordered: fs.reordered,
        offered: fs.offered,
        bler: if blocks == 0 { 0.0 } else { bad as f64 / blocks as f64 },
    }
}

fn main() {
    let frames: u32 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(40);
    let cell = cell_64x16();
    let pkts_per_frame = (cell.schedule.pilot_indices().len()
        + cell.schedule.uplink_indices().len())
        * cell.num_antennas;

    println!("Extension — frame survival under fronthaul faults (64x16, {frames} frames/point)");
    println!("model  p        completed  dropped  pred_ratio  lost  late  dup   bler");
    let header = "model,loss_rate,frames,completed,dropped,completed_ratio,\
                  predicted_ratio,offered,lost,late,duplicate,reordered,bler";
    let mut rows = Vec::new();

    let mut points: Vec<(String, LossModel)> = vec![("none".into(), LossModel::None)];
    for p in [0.001, 0.005, 0.01, 0.02, 0.05] {
        points.push((format!("iid"), LossModel::Iid { p }));
    }
    // A bursty point matched to 1% mean loss: rare bursts, 50% in-burst
    // loss. Bursts concentrate losses into fewer frames, so MORE frames
    // survive than under i.i.d. loss of the same mean rate.
    let ge = LossModel::GilbertElliott {
        p_enter_burst: 0.004,
        p_exit_burst: 0.2,
        loss_good: 0.0,
        loss_bad: 0.5,
    };
    points.push(("gilbert".into(), ge));

    for (i, (name, loss)) in points.iter().enumerate() {
        let r = run_point(&cell, frames, *loss, 7 + i as u64);
        let rate = loss.mean_rate();
        let ratio = r.completed as f64 / frames as f64;
        // Under i.i.d. loss a frame survives iff none of its packets is
        // lost: (1-p)^n. Bursty loss beats this bound at equal mean rate.
        let pred = (1.0 - rate).powi(pkts_per_frame as i32);
        println!(
            "{:<6} {:<8.4} {:<10} {:<8} {:<11.4} {:<5} {:<5} {:<5} {:.4}",
            name, rate, r.completed, r.dropped, pred, r.lost, r.late, r.dup, r.bler
        );
        rows.push(format!(
            "{},{:.5},{},{},{},{:.5},{:.5},{},{},{},{},{},{:.5}",
            name,
            rate,
            frames,
            r.completed,
            r.dropped,
            ratio,
            pred,
            r.offered,
            r.lost,
            r.late,
            r.dup,
            r.reordered,
            r.bler
        ));
    }

    let path = write_csv("ext_faults", header, &rows);
    println!("wrote {}", path.display());
}
