//! Fronthaul batching benchmark: sustained packets/s through a real UDP
//! loopback at the 64-antenna uplink packet shape (384-byte IQ
//! payloads), for three intake configurations —
//!
//! * `single`          one sendto/recvfrom syscall per packet,
//! * `batched`         `sendmmsg`/`recvmmsg` bursts into heap buffers,
//! * `batched+pooled`  bursts coalesced into symbol-sized jumbo
//!                     datagrams (16 packets each) that split into
//!                     recycled `PacketPool` slabs on receive (zero
//!                     steady-state allocations) — per-datagram kernel
//!                     cost, not the syscall boundary, dominates UDP,
//!                     so aggregation is what buys line rate,
//!
//! — plus an intake-to-FFT latency probe: `Engine::process_fronthaul`
//! drains pre-queued frames at the same packet shape and the per-frame
//! first-packet → pilot-FFT-done milestone gap is reported per mode
//! (`rx_batch` 1 vs 64; the pooled mode stages payloads in recycled
//! slab slots). Mirrors the paper's fig. 10 argument that packet I/O
//! must batch to keep the FFT stage fed at line rate.
//!
//! Writes `results/fronthaul_batch.csv` and exits non-zero if the
//! batched+pooled configuration fails a 3x speedup gate over
//! single-syscall I/O (best of 5 trials), unless the kernel lacks the
//! mmsg syscalls (graceful skip).

use agora_bench::csv::write_csv;
use agora_core::{Engine, EngineConfig};
use agora_fronthaul::{
    encode, Fronthaul, MemFronthaul, PacketBuf, PacketDir, PacketHeader, PacketPool, RruConfig,
    RruEmulator, UdpFronthaul,
};
use agora_ldpc::BaseGraphId;
use agora_phy::frame::LdpcParams;
use agora_phy::pilots::PilotScheme;
use agora_phy::{CellConfig, FrameSchedule, ModScheme};
use std::collections::VecDeque;
use std::net::SocketAddr;
use std::sync::atomic::AtomicBool;
use std::time::Instant;

/// Reduced 64-antenna, 16-user cell (128-point FFT): the paper's
/// antenna/user counts at a bench-friendly FFT size; uplink packets
/// carry 128 samples x 3 B = 384-byte payloads.
fn cell_64x16() -> CellConfig {
    let cell = CellConfig {
        num_antennas: 64,
        num_users: 16,
        fft_size: 128,
        num_data_sc: 64,
        cp_len: 0,
        modulation: ModScheme::Qpsk,
        pilot_scheme: PilotScheme::FrequencyOrthogonal,
        zf_group: 16,
        ldpc: LdpcParams { base_graph: BaseGraphId::Bg2, z: 4, rate: 1.0 / 3.0, max_iters: 8 },
        schedule: FrameSchedule::uplink(1, 2),
        symbol_duration_ns: 71_000,
    };
    cell.validate().expect("bench cell must validate");
    cell
}

const BURST: usize = 128;
const CYCLES: usize = 200;
const TRIALS: usize = 5;
const PAYLOAD: usize = 384;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Single,
    Batched,
    BatchedPooled,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Single => "single",
            Mode::Batched => "batched",
            Mode::BatchedPooled => "batched+pooled",
        }
    }
}

/// Packets coalesced per jumbo datagram in the pooled mode: one
/// datagram per 16 antennas' worth of a symbol.
const AGGREGATE: usize = 16;

fn udp_pair(pool: Option<PacketPool>, aggregate: usize) -> (UdpFronthaul, UdpFronthaul) {
    let any: SocketAddr = "127.0.0.1:0".parse().unwrap();
    let mut tx = UdpFronthaul::new(any, any).expect("bind tx");
    let mut rx = UdpFronthaul::new(any, tx.local_addr().unwrap()).expect("bind rx");
    if let Some(p) = pool {
        rx = rx.with_pool(p);
    }
    if aggregate > 0 {
        tx = tx.with_aggregation(aggregate);
        rx = rx.with_aggregation(aggregate);
    }
    tx.set_peer(rx.local_addr().unwrap());
    (tx, rx)
}

/// One burst of 64-antenna uplink packets (antenna-major, one symbol).
fn burst_template() -> Vec<PacketBuf> {
    let payload = vec![0x5Au8; PAYLOAD];
    (0..BURST)
        .map(|i| {
            PacketBuf::from(encode(
                &PacketHeader {
                    frame: (i / 64) as u32,
                    symbol: 0,
                    antenna: (i % 64) as u16,
                    dir: PacketDir::Uplink,
                    cell: 0,
                    payload_len: PAYLOAD as u32,
                },
                &payload,
            ))
        })
        .collect()
}

/// Consecutive empty polls before a drain loop gives the burst up for
/// lost. UDP loopback sheds packets silently when the socket buffer
/// fills, so an unbounded "wait for all of them" loop can hang; a lost
/// packet simply doesn't count toward the trial's packet rate.
const DRAIN_BUDGET: u32 = 10_000;

/// Single-threaded burst ping: send a burst, drain it, repeat. Returns
/// (delivered packets/s, mean non-empty receive batch size).
fn throughput_trial(mode: Mode) -> (f64, f64) {
    let pool = (mode == Mode::BatchedPooled).then(|| PacketPool::new(256, 2048));
    let aggregate = if mode == Mode::BatchedPooled { AGGREGATE } else { 0 };
    let (tx, rx) = udp_pair(pool, aggregate);
    let template = burst_template();
    let mut outgoing: VecDeque<PacketBuf> = VecDeque::with_capacity(BURST);
    let mut got: Vec<PacketBuf> = Vec::with_capacity(BURST);
    let (mut batches, mut batch_pkts) = (0u64, 0u64);
    let mut delivered = 0usize;
    let t0 = Instant::now();
    for _ in 0..CYCLES {
        outgoing.extend(template.iter().cloned());
        let mut empty = 0u32;
        match mode {
            Mode::Single => {
                while let Some(pkt) = outgoing.pop_front() {
                    let mut p = pkt;
                    while let Err(back) = tx.send(p) {
                        p = back;
                        std::thread::yield_now();
                    }
                }
                while got.len() < BURST && empty < DRAIN_BUDGET {
                    match rx.recv() {
                        Some(p) => {
                            got.push(p);
                            empty = 0;
                        }
                        None => {
                            empty += 1;
                            std::thread::yield_now();
                        }
                    }
                }
            }
            Mode::Batched | Mode::BatchedPooled => {
                while !outgoing.is_empty() {
                    if tx.send_batch(&mut outgoing) == 0 {
                        std::thread::yield_now();
                    }
                }
                while got.len() < BURST && empty < DRAIN_BUDGET {
                    let want = BURST - got.len();
                    let n = rx.recv_batch(&mut got, want);
                    if n == 0 {
                        empty += 1;
                        std::thread::yield_now();
                    } else {
                        empty = 0;
                        batches += 1;
                        batch_pkts += n as u64;
                    }
                }
            }
        }
        delivered += got.len();
        got.clear();
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let pps = delivered as f64 / elapsed;
    let mean_batch = if batches == 0 { 1.0 } else { batch_pkts as f64 / batches as f64 };
    (pps, mean_batch)
}

/// Best-of-N trials (throughput benches race the scheduler; the best
/// trial is the least-disturbed one).
fn best_of(mode: Mode) -> (f64, f64) {
    (0..TRIALS).map(|_| throughput_trial(mode)).fold(
        (0.0, 0.0),
        |acc, t| {
            if t.0 > acc.0 {
                t
            } else {
                acc
            }
        },
    )
}

/// Drains pre-queued frames from a lossless in-memory link into the
/// engine and returns the mean first-packet -> pilot-FFT-done gap (ns)
/// across completed frames. Pre-queueing keeps the probe deterministic
/// on a loaded machine — a concurrently paced UDP producer would race
/// the engine threads for cores and shed packets — while the batching
/// knob still varies per mode: `rx_batch` 1 vs 64, and the pooled mode
/// stages every payload in a recycled `PacketPool` slab so the FFT
/// stage reads straight out of pool memory.
fn intake_to_fft_ns(mode: Mode) -> f64 {
    let cell = cell_64x16();
    let frames = 8u32;
    let per_frame = cell.symbols_per_frame() * cell.num_antennas;
    let total = frames as usize * per_frame;
    let mut rru =
        RruEmulator::new(cell.clone(), RruConfig { snr_db: 30.0, seed: 77, ..Default::default() });
    let noise = rru.noise_power();
    let pool =
        (mode == Mode::BatchedPooled).then(|| PacketPool::new(total.next_power_of_two(), 2048));
    let (tx, rx) = MemFronthaul::pair(total.next_power_of_two());
    for f in 0..frames {
        let (pkts, _truth) = rru.generate_frame(f);
        for b in pkts {
            let pkt = match &pool {
                Some(p) => {
                    let mut slot = p.acquire().expect("pool sized for the whole run");
                    slot.buf_mut()[..b.len()].copy_from_slice(&b);
                    slot.set_len(b.len());
                    PacketBuf::Pooled(slot)
                }
                None => PacketBuf::Heap(b),
            };
            tx.send(pkt).expect("mem link sized for the whole run");
        }
    }
    let mut cfg = EngineConfig::new(cell, 3);
    cfg.noise_power = noise;
    cfg.rx_batch = match mode {
        Mode::Single => 1,
        _ => 64,
    };
    let engine = Engine::new(cfg);
    // Every packet is already queued, so the producer is done up front;
    // the net thread drains the link and exits on its first empty poll.
    let done = AtomicBool::new(true);
    let results = engine.process_fronthaul(&rx, frames, &done);
    let gaps: Vec<u64> = results
        .iter()
        .filter(|r| !r.dropped && r.milestones.pilot_done_ns > 0)
        .map(|r| r.milestones.pilot_done_ns.saturating_sub(r.milestones.first_packet_ns))
        .collect();
    if gaps.is_empty() {
        return f64::NAN;
    }
    gaps.iter().sum::<u64>() as f64 / gaps.len() as f64
}

fn main() {
    // Probe: if the kernel refuses the mmsg syscalls, the batched modes
    // silently degrade to the portable loop — a speedup gate would
    // measure nothing, so skip gracefully.
    let (probe_tx, _probe_rx) = udp_pair(None, 0);
    let mut probe: VecDeque<PacketBuf> = burst_template().into_iter().take(4).collect();
    probe_tx.send_batch(&mut probe);
    if !probe_tx.batched_syscalls_active() {
        println!("fronthaul_batch: mmsg syscalls unavailable on this kernel; skipping gate");
        write_csv(
            "fronthaul_batch",
            "mode,pps,speedup,mean_rx_batch,intake_fft_ns",
            &["single,0,1.0,1.0,nan".to_string()],
        );
        return;
    }

    println!(
        "fronthaul batching bench: {BURST}-packet bursts x {CYCLES} cycles, \
         {PAYLOAD}-byte payloads, best of {TRIALS} trials\n"
    );
    let modes = [Mode::Single, Mode::Batched, Mode::BatchedPooled];
    let mut pps = Vec::new();
    let mut rows = Vec::new();
    for &mode in &modes {
        let (p, mean_batch) = best_of(mode);
        let latency = intake_to_fft_ns(mode);
        let speedup = if mode == Mode::Single { 1.0 } else { p / pps[0] };
        println!(
            "{:<16} {:>12.0} pps  {:>6.2}x  mean rx batch {:>5.1}  intake->FFT {:>9.0} ns",
            mode.name(),
            p,
            speedup,
            mean_batch,
            latency,
        );
        rows.push(format!("{},{p:.0},{speedup:.3},{mean_batch:.2},{latency:.0}", mode.name()));
        pps.push(p);
    }
    let path = write_csv("fronthaul_batch", "mode,pps,speedup,mean_rx_batch,intake_fft_ns", &rows);
    println!("\nwrote {}", path.display());

    let gate = pps[2] / pps[0];
    if gate < 3.0 {
        println!("FAIL: batched+pooled speedup {gate:.2}x is below the 3x gate");
        std::process::exit(1);
    }
    println!("OK: batched+pooled sustains {gate:.2}x single-syscall packet rate");
}
