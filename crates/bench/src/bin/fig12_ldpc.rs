//! Figure 12: LDPC BER and decode time vs SNR, for (a) lifting sizes
//! Z in {104, 384} x iterations in {5, 10} at rate 1/3, and (b) code
//! rates {1/3, 2/3, 8/9} at Z=104, 5 iterations. BPSK over AWGN,
//! measured on this machine's real decoder.
//!
//! A third sweep compares the fixed-point `i8` layered decoder (AVX2
//! and forced-scalar tiers) against the `f32` reference on identical
//! noisy words, writing `results/ldpc_simd.csv` with per-point times
//! and BLER plus a per-Z summary row recording the waterfall SNR shift
//! (`bler_delta_db`) the quantisation costs.

use agora_bench::csv::write_csv;
use agora_ldpc::{
    quantize_llrs, BaseGraphId, DecodeConfig, DecodeConfigI8, Decoder, DecoderI8, Encoder,
    ErrorStats, RateMatch, DEFAULT_LLR_SCALE,
};
use agora_math::SimdTier;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

struct Point {
    ber: f64,
    bler: f64,
    time_us: f64,
}

fn run_point(z: usize, iters: usize, rate: f32, snr_db: f32, blocks: usize, seed: u64) -> Point {
    let bg = BaseGraphId::Bg1;
    let enc = Encoder::new(bg, z);
    let rm = RateMatch::for_rate(bg, z, rate);
    let mut dec = Decoder::new(bg, z);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = ErrorStats::new();
    let sigma2 = 10.0f32.powf(-snr_db / 10.0);
    let sigma = sigma2.sqrt();
    let mut decode_time = 0.0f64;

    for _ in 0..blocks {
        let info: Vec<u8> = (0..enc.info_len()).map(|_| rng.gen::<bool>() as u8).collect();
        let cw = enc.encode(&info);
        let tx = rm.extract(&cw);
        // BPSK + AWGN, LLR = 2y/sigma^2.
        let llrs: Vec<f32> = tx
            .iter()
            .map(|&b| {
                let x = if b == 0 { 1.0f32 } else { -1.0 };
                let n: f32 = {
                    let u1: f64 = rng.gen::<f64>().max(1e-12);
                    let u2: f64 = rng.gen();
                    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
                };
                2.0 * (x + sigma * n) / sigma2
            })
            .collect();
        let full = rm.fill_llrs(&llrs);
        let t0 = Instant::now();
        let res = dec.decode(
            &full,
            &DecodeConfig {
                max_iters: iters,
                active_rows: Some(rm.active_rows()),
                early_termination: false,
                ..Default::default()
            },
        );
        decode_time += t0.elapsed().as_secs_f64();
        stats.record(&info, &res.info_bits, res.success);
    }
    Point { ber: stats.ber(), bler: stats.bler(), time_us: decode_time * 1e6 / blocks as f64 }
}

struct SimdPoint {
    f32_bler: f64,
    i8_bler: f64,
    f32_time_us: f64,
    i8_time_us: f64,
    i8_scalar_time_us: f64,
}

/// Runs the `f32` layered decoder and the `i8` decoder (detected tier and
/// forced scalar) over the *same* noisy words, so BLER differences are
/// purely quantisation and time differences purely the decoder plane.
fn run_simd_point(
    z: usize,
    iters: usize,
    rate: f32,
    snr_db: f32,
    blocks: usize,
    seed: u64,
) -> SimdPoint {
    let bg = BaseGraphId::Bg1;
    let enc = Encoder::new(bg, z);
    let rm = RateMatch::for_rate(bg, z, rate);
    let mut dec = Decoder::new(bg, z);
    let mut dec_i8 = DecoderI8::new(bg, z);
    let mut dec_i8_scalar = DecoderI8::with_tier(bg, z, SimdTier::Scalar);
    let mut rng = StdRng::seed_from_u64(seed);
    let sigma2 = 10.0f32.powf(-snr_db / 10.0);
    let sigma = sigma2.sqrt();

    let mut f32_stats = ErrorStats::new();
    let mut i8_stats = ErrorStats::new();
    let mut full = vec![0.0f32; dec.codeword_len()];
    let mut tx_i8 = Vec::new();
    let mut full_i8 = vec![0i8; dec_i8.codeword_len()];
    let (mut t_f32, mut t_i8, mut t_i8_scalar) = (0.0f64, 0.0f64, 0.0f64);

    for _ in 0..blocks {
        let info: Vec<u8> = (0..enc.info_len()).map(|_| rng.gen::<bool>() as u8).collect();
        let cw = enc.encode(&info);
        let tx = rm.extract(&cw);
        let llrs: Vec<f32> = tx
            .iter()
            .map(|&b| {
                let x = if b == 0 { 1.0f32 } else { -1.0 };
                let n: f32 = {
                    let u1: f64 = rng.gen::<f64>().max(1e-12);
                    let u2: f64 = rng.gen();
                    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
                };
                2.0 * (x + sigma * n) / sigma2
            })
            .collect();
        rm.fill_llrs_into(&llrs, &mut full);
        tx_i8.resize(llrs.len(), 0);
        quantize_llrs(&llrs, &mut tx_i8, DEFAULT_LLR_SCALE);
        rm.fill_llrs_into(&tx_i8, &mut full_i8);

        let cfg_f32 = DecodeConfig {
            max_iters: iters,
            active_rows: Some(rm.active_rows()),
            early_termination: false,
            ..Default::default()
        };
        let cfg_i8 = DecodeConfigI8 {
            max_iters: iters,
            active_rows: Some(rm.active_rows()),
            early_termination: false,
            ..Default::default()
        };

        let t0 = Instant::now();
        let rf = dec.decode(&full, &cfg_f32);
        t_f32 += t0.elapsed().as_secs_f64();
        f32_stats.record(&info, &rf.info_bits, rf.success);

        let t0 = Instant::now();
        let ri = dec_i8.decode(&full_i8, &cfg_i8);
        t_i8 += t0.elapsed().as_secs_f64();
        i8_stats.record(&info, &ri.info_bits, ri.success);

        let t0 = Instant::now();
        let rs = dec_i8_scalar.decode(&full_i8, &cfg_i8);
        t_i8_scalar += t0.elapsed().as_secs_f64();
        assert_eq!(rs.info_bits, ri.info_bits, "i8 tiers must be bit-exact");
    }
    let us = 1e6 / blocks as f64;
    SimdPoint {
        f32_bler: f32_stats.bler(),
        i8_bler: i8_stats.bler(),
        f32_time_us: t_f32 * us,
        i8_time_us: t_i8 * us,
        i8_scalar_time_us: t_i8_scalar * us,
    }
}

/// SNR (linear interpolation in dB) where a BLER curve first crosses
/// `target`, or `None` if it never does on the grid.
fn waterfall_snr(snrs: &[f32], blers: &[f64], target: f64) -> Option<f64> {
    for i in 1..blers.len() {
        let (b0, b1) = (blers[i - 1], blers[i]);
        if b0 > target && b1 <= target {
            let (s0, s1) = (snrs[i - 1] as f64, snrs[i] as f64);
            if (b0 - b1).abs() < 1e-12 {
                return Some(s1);
            }
            return Some(s0 + (s1 - s0) * (b0 - target) / (b0 - b1));
        }
    }
    None
}

fn main() {
    let blocks: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(12);
    let snrs = [-2.0f32, 0.0, 2.0, 4.0, 6.0, 10.0, 15.0, 20.0];
    let mut rows = Vec::new();

    println!("Figure 12(a) — BER & decode time vs SNR for (Z, iterations), R=1/3");
    println!("config          snr_db   ber       bler     time_us");
    for (z, iters) in [(384usize, 10usize), (384, 5), (104, 10), (104, 5)] {
        for &snr in &snrs {
            let p = run_point(z, iters, 1.0 / 3.0, snr, blocks, 7);
            println!(
                "Z={z:<4} it={iters:<3}  {snr:>6.1}  {:>8.2e}  {:>7.3}  {:>8.1}",
                p.ber, p.bler, p.time_us
            );
            rows.push(format!("a,{z},{iters},0.333,{snr},{},{},{}", p.ber, p.bler, p.time_us));
        }
    }

    println!("\nFigure 12(b) — BER & decode time vs SNR for code rates, Z=104, 5 it");
    println!("rate   snr_db   ber       bler     time_us");
    for rate in [1.0f32 / 3.0, 2.0 / 3.0, 8.0 / 9.0] {
        for &snr in &snrs {
            let p = run_point(104, 5, rate, snr, blocks, 9);
            println!(
                "{rate:<5.2} {snr:>6.1}  {:>8.2e}  {:>7.3}  {:>8.1}",
                p.ber, p.bler, p.time_us
            );
            rows.push(format!("b,104,5,{rate},{snr},{},{},{}", p.ber, p.bler, p.time_us));
        }
    }

    let p = write_csv("fig12_ldpc", "panel,z,iters,rate,snr_db,ber,bler,time_us", &rows);
    println!("\nwrote {}", p.display());
    println!("expected shapes: decode time linear in Z and iterations; lower rate ->");
    println!("more time and lower BER; BER waterfall below ~10 dB (paper Figure 12).");

    // Fixed-point plane: f32 layered vs i8 layered (AVX2 + forced scalar)
    // on identical noisy words, across the waterfall. The summary rows
    // interpolate where each curve crosses BLER = 0.5 and record the SNR
    // shift the i8 quantisation costs (acceptance: <= 0.2 dB, with the
    // AVX2 i8 path >= 2x faster than f32 at Z >= 64).
    println!("\nFixed-point sweep — f32 vs i8 layered decoder, R=1/3, 5 it");
    println!("Z     snr_db  f32_bler  i8_bler  f32_us   i8_us   i8_scalar_us");
    let simd_blocks = blocks.max(24);
    let simd_snrs = [1.0f32, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 5.0, 6.0];
    let mut simd_rows = Vec::new();
    for z in [64usize, 104, 384] {
        let mut f32_blers = Vec::new();
        let mut i8_blers = Vec::new();
        for &snr in &simd_snrs {
            let sp = run_simd_point(z, 5, 1.0 / 3.0, snr, simd_blocks, 21);
            println!(
                "{z:<5} {snr:>6.1}  {:>8.3}  {:>7.3}  {:>6.1}  {:>6.1}  {:>12.1}",
                sp.f32_bler, sp.i8_bler, sp.f32_time_us, sp.i8_time_us, sp.i8_scalar_time_us
            );
            simd_rows.push(format!(
                "point,{z},5,{snr},{},{},{},{},{},{:.3},",
                sp.f32_bler,
                sp.i8_bler,
                sp.f32_time_us,
                sp.i8_time_us,
                sp.i8_scalar_time_us,
                sp.f32_time_us / sp.i8_time_us
            ));
            f32_blers.push(sp.f32_bler);
            i8_blers.push(sp.i8_bler);
        }
        // Waterfall positions at BLER = 0.5: the curves are steep there,
        // so the correlated-noise comparison resolves small shifts.
        let delta = match (
            waterfall_snr(&simd_snrs, &f32_blers, 0.5),
            waterfall_snr(&simd_snrs, &i8_blers, 0.5),
        ) {
            (Some(f), Some(i)) => i - f,
            // A curve pinned at 0 or 1 over the whole grid means the
            // shift is below the grid resolution at this Z.
            _ => 0.0,
        };
        println!("Z={z}: waterfall shift from quantisation = {delta:+.3} dB");
        simd_rows.push(format!("summary,{z},5,,,,,,,,{delta:.3}"));
    }
    let p = write_csv(
        "ldpc_simd",
        "kind,z,iters,snr_db,f32_bler,i8_bler,f32_time_us,i8_time_us,i8_scalar_time_us,speedup,bler_delta_db",
        &simd_rows,
    );
    println!("\nwrote {}", p.display());
    println!("expected shape: i8 AVX2 >= 2x faster than f32 layered at Z >= 64,");
    println!("with the quantisation waterfall shift within 0.2 dB.");
}
