//! Figure 12: LDPC BER and decode time vs SNR, for (a) lifting sizes
//! Z in {104, 384} x iterations in {5, 10} at rate 1/3, and (b) code
//! rates {1/3, 2/3, 8/9} at Z=104, 5 iterations. BPSK over AWGN,
//! measured on this machine's real decoder.

use agora_bench::csv::write_csv;
use agora_ldpc::{BaseGraphId, DecodeConfig, Decoder, Encoder, ErrorStats, RateMatch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

struct Point {
    ber: f64,
    bler: f64,
    time_us: f64,
}

fn run_point(z: usize, iters: usize, rate: f32, snr_db: f32, blocks: usize, seed: u64) -> Point {
    let bg = BaseGraphId::Bg1;
    let enc = Encoder::new(bg, z);
    let rm = RateMatch::for_rate(bg, z, rate);
    let mut dec = Decoder::new(bg, z);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = ErrorStats::new();
    let sigma2 = 10.0f32.powf(-snr_db / 10.0);
    let sigma = sigma2.sqrt();
    let mut decode_time = 0.0f64;

    for _ in 0..blocks {
        let info: Vec<u8> = (0..enc.info_len()).map(|_| rng.gen::<bool>() as u8).collect();
        let cw = enc.encode(&info);
        let tx = rm.extract(&cw);
        // BPSK + AWGN, LLR = 2y/sigma^2.
        let llrs: Vec<f32> = tx
            .iter()
            .map(|&b| {
                let x = if b == 0 { 1.0f32 } else { -1.0 };
                let n: f32 = {
                    let u1: f64 = rng.gen::<f64>().max(1e-12);
                    let u2: f64 = rng.gen();
                    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
                };
                2.0 * (x + sigma * n) / sigma2
            })
            .collect();
        let full = rm.fill_llrs(&llrs);
        let t0 = Instant::now();
        let res = dec.decode(
            &full,
            &DecodeConfig {
                max_iters: iters,
                active_rows: Some(rm.active_rows()),
                early_termination: false,
                ..Default::default()
            },
        );
        decode_time += t0.elapsed().as_secs_f64();
        stats.record(&info, &res.info_bits, res.success);
    }
    Point { ber: stats.ber(), bler: stats.bler(), time_us: decode_time * 1e6 / blocks as f64 }
}

fn main() {
    let blocks: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(12);
    let snrs = [-2.0f32, 0.0, 2.0, 4.0, 6.0, 10.0, 15.0, 20.0];
    let mut rows = Vec::new();

    println!("Figure 12(a) — BER & decode time vs SNR for (Z, iterations), R=1/3");
    println!("config          snr_db   ber       bler     time_us");
    for (z, iters) in [(384usize, 10usize), (384, 5), (104, 10), (104, 5)] {
        for &snr in &snrs {
            let p = run_point(z, iters, 1.0 / 3.0, snr, blocks, 7);
            println!("Z={z:<4} it={iters:<3}  {snr:>6.1}  {:>8.2e}  {:>7.3}  {:>8.1}", p.ber, p.bler, p.time_us);
            rows.push(format!("a,{z},{iters},0.333,{snr},{},{},{}", p.ber, p.bler, p.time_us));
        }
    }

    println!("\nFigure 12(b) — BER & decode time vs SNR for code rates, Z=104, 5 it");
    println!("rate   snr_db   ber       bler     time_us");
    for rate in [1.0f32 / 3.0, 2.0 / 3.0, 8.0 / 9.0] {
        for &snr in &snrs {
            let p = run_point(104, 5, rate, snr, blocks, 9);
            println!("{rate:<5.2} {snr:>6.1}  {:>8.2e}  {:>7.3}  {:>8.1}", p.ber, p.bler, p.time_us);
            rows.push(format!("b,104,5,{rate},{snr},{},{},{}", p.ber, p.bler, p.time_us));
        }
    }

    let p = write_csv("fig12_ldpc", "panel,z,iters,rate,snr_db,ber,bler,time_us", &rows);
    println!("\nwrote {}", p.display());
    println!("expected shapes: decode time linear in Z and iterations; lower rate ->");
    println!("more time and lower BER; BER waterfall below ~10 dB (paper Figure 12).");
}
