//! Table 3: computation cost of the uplink blocks (tasks per frame,
//! time per task, batch size, total time across cores) for 64x16 MIMO,
//! 1 ms frames, 26 cores.
//!
//! Two columns of numbers are produced:
//! * **simulated** — the schedule simulator with the paper's Table 3
//!   costs (sanity: the totals must reproduce the paper's 16.63 ms);
//! * **measured** — this machine's real Rust kernels, calibrated on a
//!   reduced cell and scaled analytically to 64x16 (absolute values
//!   differ from the Xeon Gold 6130 + MKL/FlexRAN stack; the *ratios*
//!   are the reproducible claim).

use agora_bench::calibrate;
use agora_bench::csv::write_csv;
use agora_core::sim::{simulate, SimConfig};
use agora_core::stats::{type_index, TYPE_NAMES};
use agora_core::BatchSizes;
use agora_phy::CellConfig;
use agora_queue::TaskType;

fn main() {
    let cell = CellConfig::emulated_rru(64, 16, 13);
    let cfg = SimConfig::new(cell.clone(), 26, 8);
    let rep = simulate(&cfg);
    let b = BatchSizes::default();

    println!("Table 3 — uplink block costs, 64x16 MIMO, 1 ms frame, 26 cores");
    println!("(simulated with paper-calibrated per-task costs)\n");
    println!("block    tasks/frame  time/task(us)  batch  total(ms, all cores)");
    let mut rows = Vec::new();
    let frames = cfg.frames as f64;
    for t in [TaskType::Fft, TaskType::Zf, TaskType::Demod, TaskType::Decode] {
        let i = type_index(t);
        let tasks = rep.tasks[i] as f64 / frames;
        let per_task_us = if rep.tasks[i] > 0 {
            (rep.busy_ns[i] + rep.datamove_ns[i]) / rep.tasks[i] as f64 / 1000.0
        } else {
            0.0
        };
        let total_ms = (rep.busy_ns[i] + rep.datamove_ns[i]) / frames / 1e6;
        let batch = match t {
            TaskType::Fft => b.fft,
            TaskType::Zf => b.zf,
            TaskType::Demod => b.demod,
            _ => b.decode,
        };
        println!(
            "{:<8} {:>11.0}  {:>13.2}  {:>5}  {:>8.2}",
            TYPE_NAMES[i], tasks, per_task_us, batch, total_ms
        );
        rows.push(format!("{},{tasks},{per_task_us},{batch},{total_ms}", TYPE_NAMES[i]));
    }
    let busy_total: f64 = rep.busy_ns.iter().sum::<f64>() / frames / 1e6;
    let move_total: f64 = rep.datamove_ns.iter().sum::<f64>() / frames / 1e6;
    let sync_total: f64 = rep.sync_ns / frames / 1e6;
    println!("\ncompute total {busy_total:.2} ms | data movement {move_total:.2} ms | sync {sync_total:.2} ms");
    println!("paper: 16.63 ms compute, ~8.9 ms movement+sync of the 26 ms budget\n");

    // Real-kernel calibration on a reduced cell (full 64x16 decode at
    // Z=104 is heavy on one core; ratios are what matter).
    println!("calibrating this machine's real kernels (16x4 cell, Z=40)...");
    let mut small = CellConfig::emulated_rru(16, 4, 2);
    small.fft_size = 2048;
    small.num_data_sc = 1200;
    small.ldpc.z = 40;
    small.validate().expect("valid calibration cell");
    let cal = calibrate(&small, 2);
    println!("measured per-task costs (this machine, portable Rust kernels):");
    println!("  FFT(2048):      {:>9.1} us", cal.fft_ns / 1000.0);
    println!("  ZF (16x4):      {:>9.1} us", cal.zf_ns / 1000.0);
    println!("  demod/SC (16x4):{:>9.3} us", cal.demod_sc_ns / 1000.0);
    println!("  decode (Z=40):  {:>9.1} us", cal.decode_ns / 1000.0);
    println!(
        "  decode dominance: decode/task is {:.0}x demod/SC (paper: ~245x)",
        cal.decode_ns / cal.demod_sc_ns
    );
    rows.push(format!(
        "measured,{},{},{},{}",
        cal.fft_ns / 1000.0,
        cal.zf_ns / 1000.0,
        cal.demod_sc_ns / 1000.0,
        cal.decode_ns / 1000.0
    ));
    let p =
        write_csv("table3_blocks", "block,tasks_per_frame,time_per_task_us,batch,total_ms", &rows);
    println!("\nwrote {}", p.display());
}
