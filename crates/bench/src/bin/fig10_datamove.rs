//! Figure 10: cumulative data-movement time across all cores per block,
//! (left) vs the number of worker cores at 64x16, and (right) vs the
//! number of antennas at K=16 with 26 cores.
//!
//! The paper isolates movement by replacing kernels with dummy versions
//! that only perform the memory traffic; the simulator's movement model
//! (bytes-per-task x cache-line transfer cost x remote-line probability)
//! plays that role here.

use agora_bench::csv::write_csv;
use agora_core::sim::{simulate, SimConfig};
use agora_core::stats::type_index;
use agora_phy::CellConfig;
use agora_queue::TaskType;

const BLOCKS: [TaskType; 4] = [TaskType::Fft, TaskType::Demod, TaskType::Zf, TaskType::Decode];

fn movement_row(cell: &CellConfig, workers: usize) -> [f64; 4] {
    let cfg = SimConfig::new(cell.clone(), workers, 4);
    let rep = simulate(&cfg);
    let mut out = [0.0; 4];
    for (j, t) in BLOCKS.iter().enumerate() {
        out[j] = rep.datamove_ns[type_index(*t)] / cfg.frames as f64 / 1e6;
    }
    out
}

fn main() {
    println!("Figure 10 — cumulative data movement time per block (ms per frame)\n");
    let mut rows = Vec::new();

    println!("(left) 64x16 MIMO, varying worker cores:");
    println!("cores   FFT    Demod  ZF     Decode");
    let cell = CellConfig::emulated_rru(64, 16, 13);
    for workers in [1usize, 6, 11, 16, 21, 26] {
        let m = movement_row(&cell, workers);
        println!("{workers:>5}  {:>5.2}  {:>5.2}  {:>5.3}  {:>5.3}", m[0], m[1], m[2], m[3]);
        rows.push(format!("cores,{workers},{},{},{},{}", m[0], m[1], m[2], m[3]));
    }

    println!("\n(right) 16 users, 26 cores, varying antennas:");
    println!("ants    FFT    Demod  ZF     Decode");
    for m_ant in [16usize, 32, 48, 64] {
        let cell = CellConfig::emulated_rru(m_ant, 16, 13);
        let m = movement_row(&cell, 26);
        println!("{m_ant:>5}  {:>5.2}  {:>5.2}  {:>5.3}  {:>5.3}", m[0], m[1], m[2], m[3]);
        rows.push(format!("antennas,{m_ant},{},{},{},{}", m[0], m[1], m[2], m[3]));
    }

    let p = write_csv("fig10_datamove", "sweep,x,fft_ms,demod_ms,zf_ms,decode_ms", &rows);
    println!("\nwrote {}", p.display());
    println!("expected shape: FFT and Demod dominate (they move nearly all the");
    println!("network data); both grow ~linearly with antennas; growth with cores is");
    println!("mild (remote-line probability saturates) — matching the paper.");
}
