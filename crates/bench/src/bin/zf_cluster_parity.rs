//! CI smoke: antenna-cluster partitioned ZF parity.
//! Deterministic (seeded generators), fast, exit code 1 on any
//! violation — `scripts/ci.sh` runs it after the test suite as a
//! release-build cross-check of the staged ZF path's contracts:
//!
//! * at `antenna_clusters = 1` the staged path (partial Gram -> fold ->
//!   solve) is **bit-identical** to the monolithic `zf_task` through the
//!   full inline engine — uplink decodes AND downlink time-domain
//!   samples — in both direct and iterative equalization modes;
//! * the threaded engine agrees: clustered `FrameResult`s (C=1 and a
//!   C=4 sharded reduce) carry the same decoded bits and decode flags
//!   as the monolithic engine, under the real scheduler;
//! * a singular Gram (near-duplicated user channels) degrades
//!   consistently: every reduce shard falls back to the same full SVD
//!   pseudo-inverse, so the assembled detector equals the unsharded
//!   fallback bit for bit.

use agora_core::config::EqMode;
use agora_core::inline_engine::InlineProcessor;
use agora_core::{Engine, EngineConfig};
use agora_fronthaul::{RruConfig, RruEmulator};
use agora_math::{
    gram_reduce, pinv_from_gram_slice_into, pinv_into, CMat, Cf32, PinvMethod, PinvScratch,
    SimdTier,
};
use agora_phy::frame::FrameSchedule;
use agora_phy::{CellConfig, ClusterPlan};
use bytes::Bytes;
use std::process::exit;

fn check(ok: bool, what: &str) {
    if ok {
        println!("OK   {what}");
    } else {
        println!("FAIL {what}");
        exit(1);
    }
}

fn bits(v: &[Cf32]) -> Vec<(u32, u32)> {
    v.iter().map(|c| (c.re.to_bits(), c.im.to_bits())).collect()
}

/// Inline engine: C=1 staged vs monolithic must agree bit for bit on a
/// mixed pilot/uplink/downlink frame.
fn inline_single_cluster_bit_parity() {
    let mut cell = CellConfig::tiny_test(2);
    cell.schedule = FrameSchedule::parse("PUUDD").unwrap();
    cell.validate().unwrap();
    let mut rru =
        RruEmulator::new(cell.clone(), RruConfig { snr_db: 25.0, seed: 61, ..Default::default() });
    let (packets, _gt) = rru.generate_frame(0);
    for iterative in [false, true] {
        let mut cfg = EngineConfig::new(cell.clone(), 1);
        cfg.noise_power = rru.noise_power();
        if iterative {
            cfg.ablation.eq_mode = EqMode::Iterative;
        }
        let mut staged_cfg = cfg.clone();
        staged_cfg.ablation.clustered_zf = true;
        staged_cfg.antenna_clusters = 1;
        let rm = InlineProcessor::new(cfg).process_frame(0, &packets);
        let rs = InlineProcessor::new(staged_cfg).process_frame(0, &packets);
        let mode = if iterative { "iterative" } else { "direct" };
        check(
            rm.decoded == rs.decoded && rm.decode_ok == rs.decode_ok,
            &format!("inline C=1 uplink bits identical ({mode})"),
        );
        let dl_same = cell.schedule.downlink_indices().into_iter().all(|symbol| {
            (0..cell.num_antennas)
                .all(|ant| bits(&rm.dl_time[symbol][ant]) == bits(&rs.dl_time[symbol][ant]))
        });
        check(dl_same, &format!("inline C=1 downlink samples identical ({mode})"));
    }
}

/// Threaded engine: clustered runs (C=1 bit-parity, C=4 sharded reduce)
/// against the monolithic engine under the real scheduler.
fn threaded_cluster_parity() {
    let cell = CellConfig::tiny_test(2);
    let mut rru =
        RruEmulator::new(cell.clone(), RruConfig { snr_db: 30.0, seed: 67, ..Default::default() });
    let frames = 2u32;
    let mut packets: Vec<Bytes> = Vec::new();
    for f in 0..frames {
        let (p, _) = rru.generate_frame(f);
        packets.extend(p);
    }
    for iterative in [false, true] {
        let run = |clusters: usize| {
            let mut cfg = EngineConfig::new(cell.clone(), 2);
            cfg.noise_power = rru.noise_power();
            if iterative {
                cfg.ablation.eq_mode = EqMode::Iterative;
            }
            if clusters > 0 {
                cfg.ablation.clustered_zf = true;
                cfg.antenna_clusters = clusters;
            }
            let mut results = Engine::new(cfg).process(packets.clone(), frames, false);
            results.sort_by_key(|r| r.frame);
            results
        };
        let mono = run(0);
        let mode = if iterative { "iterative" } else { "direct" };
        for clusters in [1usize, 4] {
            let staged = run(clusters);
            let same = mono.len() == staged.len()
                && mono.iter().zip(staged.iter()).all(|(m, s)| {
                    !s.dropped && m.decoded == s.decoded && m.decode_ok == s.decode_ok
                });
            check(same, &format!("threaded C={clusters} frames match monolithic ({mode})"));
        }
    }
}

/// Singular Gram: every column shard of the sharded reduce must take the
/// same SVD fallback and reassemble the exact unsharded fallback
/// detector.
fn singular_fallback_consistency() {
    let tier = SimdTier::detect();
    let (m, k) = (64usize, 16usize);
    let mut h = CMat::from_fn(m, k, |r, c| {
        let i = (r * k + c) as u64;
        Cf32::new(
            ((i * 2654435761 % 1000) as f32 / 1000.0) - 0.5,
            ((i * 40503 % 1000) as f32 / 1000.0) - 0.5,
        )
    });
    // Nearly duplicate user 1 onto user 0: the Gram fails the Cholesky
    // pivot test and the solve must degrade through the SVD fallback.
    for r in 0..m {
        let v = h[(r, 0)];
        h[(r, 1)] = v + Cf32::new(1e-6, -1e-6);
    }
    let clusters = 4usize;
    let plan = ClusterPlan::new(m, clusters);
    // Fold partial Grams exactly as the reduce does (here via the full
    // Gram per cluster slice through pinv scratch staging).
    let mut parts = vec![Cf32::ZERO; clusters * k * k];
    for cluster in 0..clusters {
        let rows = plan.range(cluster);
        let len = rows.len();
        let a = &h.as_slice()[rows.start * k..rows.end * k];
        let mut ah = vec![Cf32::ZERO; k * len];
        agora_math::simd::conj_transpose(a, len, k, &mut ah, tier);
        agora_math::gram_accumulate_with_tier(
            len,
            k,
            &ah,
            a,
            &mut parts[cluster * k * k..(cluster + 1) * k * k],
            tier,
        );
    }
    // Unsharded reference: the full pinv (falls back to SVD internally).
    let mut s = PinvScratch::with_tier(m, k, tier);
    let mut full = CMat::zeros(k, m);
    pinv_into(&h, PinvMethod::Cholesky, &mut s, &mut full);
    // Sharded: each shard folds and solves its own column slice.
    let mut assembled = CMat::zeros(k, m);
    for shard in 0..clusters {
        let cols = plan.range(shard);
        let mut out = CMat::zeros(k, cols.len());
        gram_reduce(&parts, s.gram_mut().as_mut_slice());
        pinv_from_gram_slice_into(
            &h,
            PinvMethod::Cholesky,
            cols.start,
            cols.len(),
            &mut s,
            &mut out,
        );
        for u in 0..k {
            for (c, a) in cols.clone().enumerate() {
                assembled[(u, a)] = out[(u, c)];
            }
        }
    }
    check(
        bits(assembled.as_slice()) == bits(full.as_slice()),
        "singular channel: sharded SVD fallback equals unsharded fallback",
    );
}

fn main() {
    println!("ZF cluster parity smoke (detected tier: {:?})", SimdTier::detect());
    inline_single_cluster_bit_parity();
    threaded_cluster_parity();
    singular_fallback_consistency();
    println!("zf cluster parity smoke: OK");
}
