//! CI smoke: multi-cell deployment parity.
//! Deterministic (seeded generators), fast, exit code 1 on any
//! violation — `scripts/ci.sh` runs it after the test suite as a
//! release-build cross-check of the deployment layer's contracts:
//!
//! * a C=4 deployment over ONE faulty link reconciles per-cell
//!   loss/dup/frame ledgers *exactly* against the fault injector's
//!   ground-truth counters (no packet mis-charged to another cell);
//! * the demux delivery counts match the injector's per-cell delivery
//!   ledger, and misrouted packets are counted, not delivered;
//! * under loss-free faults (dup + reorder), every `FrameResult` a
//!   deployment emits is bit-identical — decoded bits, decode flags,
//!   frame ids, drop status — to running each cell's packets through
//!   its own standalone `Engine`.

use agora_core::deploy::{Deployment, DeploymentConfig};
use agora_core::{Engine, EngineConfig, FrameResult};
use agora_fronthaul::packet::decode_ref;
use agora_fronthaul::{
    FaultConfig, Fronthaul, LossModel, MemFronthaul, MultiCellGenerator, PacketBuf, RruConfig,
    RruEmulator,
};
use agora_phy::CellConfig;
use bytes::Bytes;
use std::process::exit;
use std::sync::atomic::AtomicBool;

const CELLS: usize = 4;
const FRAMES: u32 = 4;

fn check(ok: bool, what: &str) {
    if ok {
        println!("OK   {what}");
    } else {
        println!("FAIL {what}");
        exit(1);
    }
}

fn rrus(seed_base: u64) -> (CellConfig, Vec<RruEmulator>, Vec<f32>) {
    let cell = CellConfig::tiny_test(2);
    let rrus: Vec<RruEmulator> = (0..CELLS)
        .map(|c| {
            RruEmulator::new(
                cell.clone(),
                RruConfig {
                    snr_db: 30.0,
                    seed: seed_base + c as u64,
                    cell_id: c as u8,
                    ..Default::default()
                },
            )
        })
        .collect();
    let noise = rrus.iter().map(|r| r.noise_power()).collect();
    (cell, rrus, noise)
}

fn link_for(cell: &CellConfig) -> (MemFronthaul, MemFronthaul) {
    // Size for the whole run (with duplication headroom) so the ring
    // never drops and the ledgers reconcile exactly.
    let per_frame = cell.symbols_per_frame() * cell.num_antennas;
    MemFronthaul::pair((2 * CELLS * per_frame * FRAMES as usize).next_power_of_two())
}

fn deployment_for(cell: &CellConfig, noise: &[f32], deadline: Option<u64>) -> Deployment {
    let cells = noise
        .iter()
        .map(|&n| {
            let mut cfg = EngineConfig::new(cell.clone(), 1);
            cfg.noise_power = n;
            cfg.frame_deadline_ns = deadline;
            cfg
        })
        .collect();
    Deployment::new(DeploymentConfig::new(cells, CELLS))
}

/// C=4 over one faulty link: per-cell loss/dup/frame ledgers reconcile
/// exactly against the injector's counters.
fn ledger_reconciliation() {
    let (cell, rrus, noise) = rrus(1000);
    let mut generator = MultiCellGenerator::new(rrus).with_faults(FaultConfig {
        loss: LossModel::Iid { p: 0.03 },
        reorder_prob: 0.05,
        max_delay: 8,
        duplicate_prob: 0.03,
        seed: 11,
    });
    let (tx, rx) = link_for(&cell);
    let truths = generator.run(&tx, FRAMES);
    let fs = generator.stats().clone();
    check(fs.lost > 0, "ledger: 3% loss fired over the run");
    check(fs.duplicated > 0, "ledger: 3% duplication fired over the run");

    let deployment = deployment_for(&cell, &noise, Some(700_000_000));
    let done = AtomicBool::new(true);
    let results = deployment.process_fronthaul(&rx, FRAMES, &done);
    check(results.iter().all(|r| r.len() == FRAMES as usize), "ledger: every cell emits 4 frames");

    let stats = deployment.stats();
    let demux = deployment.demux_stats();
    check(demux.misrouted() == 0, "ledger: no misrouted packets in a 4-cell stream");
    check(
        stats.link().rx_batch_packets() == fs.delivered,
        "ledger: every surviving packet drained from the shared link",
    );
    for c in 0..CELLS {
        let cid = c as u8;
        let s = stats.cell(c);
        check(
            demux.routed(c) == fs.per_cell_delivered.get(&cid).copied().unwrap_or(0),
            &format!("ledger: cell {c} demux count matches the delivery ledger"),
        );
        check(
            s.packets_lost() == fs.per_cell_lost.get(&cid).copied().unwrap_or(0),
            &format!("ledger: cell {c} loss reconciles"),
        );
        check(
            s.packets_duplicate() + s.packets_late()
                == fs.per_cell_duplicated.get(&cid).copied().unwrap_or(0),
            &format!("ledger: cell {c} dup+late equals injected duplicates"),
        );
        for r in &results[c] {
            let lost_here = fs.per_cell_frame_lost.get(&(cid, r.frame)).copied().unwrap_or(0);
            check(
                r.dropped == (lost_here > 0),
                &format!("ledger: cell {c} frame {} drop status matches frame loss", r.frame),
            );
            if !r.dropped {
                let gt = &truths[c][r.frame as usize];
                let ok = cell.schedule.uplink_indices().into_iter().all(|sym| {
                    (0..cell.num_users)
                        .all(|u| r.decode_ok[sym][u] && r.decoded[sym][u] == gt.info_bits[sym][u])
                });
                check(ok, &format!("ledger: cell {c} frame {} decodes ground truth", r.frame));
            }
        }
    }
    let roll = stats.rollup();
    check(roll.packets_lost() == fs.lost, "ledger: rolled-up loss equals total injected loss");
    check(
        roll.frames_completed() + roll.frames_dropped() == (CELLS as u64) * FRAMES as u64,
        "ledger: rollup accounts for every frame",
    );
}

/// Loss-free faults (dup + reorder): deployment results are
/// bit-identical to per-cell standalone engines fed the demuxed stream.
fn bit_identical_vs_standalone() {
    let (cell, rrus, noise) = rrus(2000);
    let mut generator = MultiCellGenerator::new(rrus).with_faults(FaultConfig {
        loss: LossModel::None,
        reorder_prob: 0.08,
        max_delay: 8,
        duplicate_prob: 0.05,
        seed: 23,
    });
    let (tx, rx) = link_for(&cell);
    let _truths = generator.run(&tx, FRAMES);

    // Capture the exact delivered stream, then replay it to the
    // deployment over a fresh link and to per-cell standalone engines.
    let mut stream: Vec<Bytes> = Vec::new();
    let mut batch = Vec::new();
    while rx.recv_batch(&mut batch, 64) > 0 {
        for pkt in batch.drain(..) {
            stream.push(pkt.into_bytes());
        }
    }
    check(stream.len() as u64 == generator.stats().delivered, "parity: captured whole stream");

    let (tx2, rx2) = link_for(&cell);
    for p in &stream {
        tx2.send(PacketBuf::Heap(p.clone())).expect("replay link sized for the run");
    }
    let deployment = deployment_for(&cell, &noise, None);
    let done = AtomicBool::new(true);
    let dep_results = deployment.process_fronthaul(&rx2, FRAMES, &done);

    for c in 0..CELLS {
        let mine: Vec<Bytes> = stream
            .iter()
            .filter(|p| decode_ref(p).expect("valid packets").0.cell as usize == c)
            .cloned()
            .collect();
        let mut cfg = EngineConfig::new(cell.clone(), 2);
        cfg.noise_power = noise[c];
        let engine = Engine::new(cfg);
        let solo = engine.process(mine, FRAMES, false);
        check(solo.len() == dep_results[c].len(), &format!("parity: cell {c} frame counts match"));
        for (a, b) in solo.iter().zip(&dep_results[c]) {
            let same = frame_results_equal(a, b);
            check(same, &format!("parity: cell {c} frame {} bit-identical", a.frame));
        }
        // The duplicate/late split depends on arrival timing, but the
        // sum is the injected duplicate count either way.
        let solo_dups = engine.stats().packets_duplicate() + engine.stats().packets_late();
        let dep = deployment.stats().cell(c);
        check(
            solo_dups == dep.packets_duplicate() + dep.packets_late(),
            &format!("parity: cell {c} duplicate ledger matches"),
        );
    }
}

/// Everything except timing milestones (wall-clock, inherently run
/// dependent) must match bit for bit.
fn frame_results_equal(a: &FrameResult, b: &FrameResult) -> bool {
    a.frame == b.frame
        && a.dropped == b.dropped
        && a.lost_packets == b.lost_packets
        && a.decode_ok == b.decode_ok
        && a.decoded == b.decoded
}

/// Packets naming an undeployed cell are counted and dropped.
fn misroute_counting() {
    let (cell, rrus, noise) = rrus(3000);
    let mut rogue = RruEmulator::new(
        cell.clone(),
        RruConfig { snr_db: 30.0, seed: 77, cell_id: 7, ..Default::default() },
    );
    let (tx, rx) = link_for(&cell);
    let (rogue_pkts, _) = rogue.generate_frame(0);
    let rogue_count = rogue_pkts.len() as u64;
    for p in rogue_pkts {
        tx.send(PacketBuf::Heap(p)).unwrap();
    }
    let mut generator = MultiCellGenerator::new(rrus);
    let _ = generator.run(&tx, FRAMES);

    let deployment = deployment_for(&cell, &noise, None);
    let done = AtomicBool::new(true);
    let results = deployment.process_fronthaul(&rx, FRAMES, &done);
    check(
        results.iter().all(|r| r.iter().all(|f| !f.dropped)),
        "misroute: all real cells complete despite the rogue stream",
    );
    check(
        deployment.stats().link().packets_misrouted() == rogue_count,
        "misroute: every rogue packet counted",
    );
    check(deployment.demux_stats().misrouted() == rogue_count, "misroute: demux counter agrees");
    check(
        (0..CELLS).all(|c| deployment.stats().cell(c).rx_errors() == 0),
        "misroute: rogue packets never reach a cell's intake",
    );
}

fn main() {
    ledger_reconciliation();
    bit_identical_vs_standalone();
    misroute_counting();
    println!("deployment parity: all checks passed");
}
