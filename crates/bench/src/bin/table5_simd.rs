//! Table 5: latency sensitivity to the SIMD tier. The paper compares
//! four Xeon servers (AVX2 vs AVX-512); this machine is fixed hardware,
//! so the reproduction (DESIGN.md §3, substitution 6) measures the real
//! kernels under the *scalar* and *AVX2* dispatch tiers, derives the
//! slowdown ratio, and replays the schedule with the scaled costs —
//! answering the same question ("how much does wider SIMD buy?").

use agora_bench::csv::write_csv;
use agora_core::sim::{min_workers, simulate, SimConfig};
use agora_ldpc::{
    quantize_llrs, BaseGraphId, DecodeConfigI8, DecoderI8, Encoder, RateMatch, DEFAULT_LLR_SCALE,
};
use agora_math::simd::{i16_to_f32, SimdTier};
use agora_phy::demod::{demod_soft, demod_soft_exact, demod_soft_simd};
use agora_phy::modulation::ModScheme;
use agora_phy::CellConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Measures the data-conversion kernel under both tiers.
fn conversion_ratio() -> f64 {
    let src: Vec<i16> = (0..16384).map(|i| (i % 4096) as i16 - 2048).collect();
    let mut dst = vec![0.0f32; src.len()];
    let reps = 2000;
    let time = |tier: SimdTier, dst: &mut Vec<f32>| {
        let t0 = Instant::now();
        for _ in 0..reps {
            i16_to_f32(&src, dst, 32768.0, tier);
            std::hint::black_box(&dst);
        }
        t0.elapsed().as_secs_f64()
    };
    let scalar = time(SimdTier::Scalar, &mut dst);
    let simd = time(SimdTier::detect(), &mut dst);
    scalar / simd
}

/// Measures the demodulator: factorised per-axis (vector-friendly) vs
/// exhaustive (scalar-style) max-log.
fn demod_ratio() -> (f64, f64) {
    let syms: Vec<agora_math::Cf32> =
        (0..512).map(|i| agora_math::Cf32::cis(0.37 * i as f32).scale(0.9)).collect();
    let mut llrs = Vec::new();
    let reps = 300;
    let mut time = |f: &dyn Fn(&mut Vec<f32>)| {
        let t0 = Instant::now();
        for _ in 0..reps {
            f(&mut llrs);
            std::hint::black_box(&llrs);
        }
        t0.elapsed().as_secs_f64()
    };
    let simd = time(&|l| demod_soft_simd(ModScheme::Qam64, &syms, 0.05, l));
    let scalar = time(&|l| demod_soft(ModScheme::Qam64, &syms, 0.05, l));
    let exhaustive = time(&|l| demod_soft_exact(ModScheme::Qam64, &syms, 0.05, l));
    (scalar / simd, exhaustive / simd)
}

/// Measures the `i8` layered LDPC decoder under the forced-scalar and
/// detected tiers on the same noisy Z=384 word: the Z-lane kernel is the
/// decoder's SIMD surface, so this ratio is what a wider (or absent)
/// vector unit buys the decode block.
fn ldpc_i8_ratio() -> f64 {
    let (bg, z, rate) = (BaseGraphId::Bg1, 384usize, 1.0f32 / 3.0);
    let enc = Encoder::new(bg, z);
    let rm = RateMatch::for_rate(bg, z, rate);
    let mut rng = StdRng::seed_from_u64(13);
    let info: Vec<u8> = (0..enc.info_len()).map(|_| rng.gen::<bool>() as u8).collect();
    let tx = rm.extract(&enc.encode(&info));
    let sigma2 = 10.0f32.powf(-4.0 / 10.0);
    let sigma = sigma2.sqrt();
    let llrs: Vec<f32> = tx
        .iter()
        .map(|&b| {
            let x = if b == 0 { 1.0f32 } else { -1.0 };
            let n: f32 = {
                let u1: f64 = rng.gen::<f64>().max(1e-12);
                let u2: f64 = rng.gen();
                ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
            };
            2.0 * (x + sigma * n) / sigma2
        })
        .collect();
    let mut tx_i8 = vec![0i8; llrs.len()];
    quantize_llrs(&llrs, &mut tx_i8, DEFAULT_LLR_SCALE);
    let dec = DecoderI8::new(bg, z);
    let mut full = vec![0i8; dec.codeword_len()];
    rm.fill_llrs_into(&tx_i8, &mut full);
    let cfg = DecodeConfigI8 {
        max_iters: 5,
        active_rows: Some(rm.active_rows()),
        early_termination: false,
        ..Default::default()
    };
    let reps = 200;
    let time = |tier: SimdTier| {
        let mut d = DecoderI8::with_tier(bg, z, tier);
        let t0 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(d.decode(&full, &cfg));
        }
        t0.elapsed().as_secs_f64()
    };
    let scalar = time(SimdTier::Scalar);
    let simd = time(SimdTier::detect());
    scalar / simd
}

/// Measures the planned equalize GEMM under both dispatch tiers at the
/// paper's 64x16 geometry, batch of 8 subcarriers as `demod_task` sees:
/// the scalar tier still runs the shape-specialised "JIT" kernel, so
/// this is exactly what the AVX2 complex-GEMM plane buys the
/// equalize/precode blocks.
fn gemm_ratio() -> f64 {
    use agora_math::{Cf32, Gemm};
    let (k, m, b) = (16usize, 64usize, 8usize);
    let w: Vec<Cf32> = (0..k * m).map(|i| Cf32::cis(0.29 * i as f32).scale(0.8)).collect();
    let ant: Vec<Cf32> = (0..m * b).map(|i| Cf32::cis(0.53 * i as f32).scale(0.6)).collect();
    let mut out = vec![Cf32::ZERO; k * b];
    let reps = 20_000;
    let mut time = |plan: &Gemm| {
        let t0 = Instant::now();
        for _ in 0..reps {
            plan.run(std::hint::black_box(&w), std::hint::black_box(&ant), &mut out);
            std::hint::black_box(&out);
        }
        t0.elapsed().as_secs_f64()
    };
    let scalar = time(&Gemm::plan_with_tier(k, m, b, SimdTier::Scalar));
    let simd = time(&Gemm::plan_with_tier(k, m, b, SimdTier::detect()));
    scalar / simd
}

/// Measures the batched FFT engine under both dispatch tiers (n = 2048,
/// the paper's transform size), batch of 8 as the engine's FFT stage
/// sees.
fn fft_ratio() -> f64 {
    use agora_fft::{Direction, FftPlan};
    let n = 2048usize;
    let batch = 8usize;
    let src: Vec<agora_math::Cf32> =
        (0..batch * n).map(|i| agora_math::Cf32::cis(0.13 * i as f32).scale(0.7)).collect();
    let mut buf = src.clone();
    let reps = 40;
    let mut time = |plan: &FftPlan| {
        let t0 = Instant::now();
        for _ in 0..reps {
            buf.copy_from_slice(&src);
            plan.execute_batch(&mut buf, Direction::Forward);
            std::hint::black_box(&buf);
        }
        t0.elapsed().as_secs_f64()
    };
    let scalar = time(&FftPlan::with_tier(n, SimdTier::Scalar));
    let simd = time(&FftPlan::new(n));
    scalar / simd
}

fn main() {
    let conv = conversion_ratio();
    let (dem_simd, dem_exh) = demod_ratio();
    let ldpc = ldpc_i8_ratio();
    let fft = fft_ratio();
    let gemm_r = gemm_ratio();
    println!("Table 5 — SIMD-tier sensitivity (this machine: {:?})", SimdTier::detect());
    println!("measured kernel speedups from vectorised paths:");
    println!("  i16->f32 conversion (AVX2 vs scalar): {conv:.1}x");
    println!("  64-QAM demod (AVX2 vs scalar axis search): {dem_simd:.1}x");
    println!("  64-QAM demod (AVX2 vs exhaustive max-log): {dem_exh:.1}x");
    println!("  i8 LDPC Z=384 (AVX2 vs scalar Z-lane): {ldpc:.1}x");
    println!("  2048-pt batched FFT (AVX2 vs scalar butterflies): {fft:.1}x");
    println!("  64x16 equalize GEMM (AVX2 vs scalar planned): {gemm_r:.1}x");
    let dem = dem_exh;

    // Replay the 64x16 schedule with costs scaled for each tier: take
    // the paper's AVX-512 numbers as baseline, inflate the SIMD-heavy
    // blocks (FFT, demod, conversion share of FFT) by the measured
    // ratios for weaker tiers.
    println!("\ntier        cores  median_ms  p99.9_ms");
    let cell = CellConfig::emulated_rru(64, 16, 13);
    let mut rows = Vec::new();
    // Decode-block scaling: avx2-vs-avx512 is unmeasurable here (use the
    // old "partly scalar" heuristic), but losing the vector unit entirely
    // is exactly the measured i8 Z-lane ratio.
    // Per-block scaling: the FFT/IFFT stage uses this repo's measured
    // batched-FFT tier ratio; demod/precode take the worst of the
    // conversion, demod, and equalize-GEMM ratios (a scalar machine
    // loses all three vector paths in the fused block).
    let tiers: [(&str, f64, f64, f64); 3] = [
        ("avx512", 1.0, 1.0, 1.0),
        ("avx2", 1.35, 1.35, 1.0 + 0.35 * 0.5), // paper: 26 -> 32 cores, ~1.13x latency
        ("scalar", fft.max(2.0), conv.max(dem).max(gemm_r).max(2.0), ldpc.max(1.0)), // measured vector speedup lost
    ];
    for (name, fft_scale, scale, decode_scale) in tiers {
        let target = cell.frame_duration_ns() as f64 + 0.6e6;
        let cores = min_workers(&cell, 16, target, |cfg| {
            cfg.costs.fft_ns *= fft_scale;
            cfg.costs.demod_sc_ns *= scale;
            cfg.costs.precode_sc_ns *= scale;
            cfg.costs.ifft_ns *= fft_scale;
            cfg.costs.decode_ns *= decode_scale;
        })
        .unwrap_or(64);
        let mut cfg = SimConfig::new(cell.clone(), cores, 60);
        cfg.costs.fft_ns *= fft_scale;
        cfg.costs.demod_sc_ns *= scale;
        cfg.costs.precode_sc_ns *= scale;
        cfg.costs.ifft_ns *= fft_scale;
        cfg.costs.decode_ns *= decode_scale;
        let rep = simulate(&cfg);
        println!(
            "{name:<10} {cores:>6}  {:>9.2}  {:>8.2}",
            rep.median_latency_ms(),
            rep.percentile_latency_ms(99.9)
        );
        rows.push(format!(
            "{name},{cores},{},{}",
            rep.median_latency_ms(),
            rep.percentile_latency_ms(99.9)
        ));
    }
    let p = write_csv("table5_simd", "tier,cores,median_ms,p999_ms", &rows);
    println!("\nwrote {}", p.display());
    println!("expected shape (paper Table 5): AVX-512 machines need ~26 cores at");
    println!("~1.19 ms median; the AVX2-only machine needs more cores (32) and runs");
    println!("~1.34 ms median — wider SIMD buys both cores and latency.");
}
