//! Figure 11: inter-core synchronisation overhead vs number of antennas
//! (K=16), with the fewest cores that sustain the uplink rate at each
//! antenna count (the paper's right axis). Reports both scheduler
//! calibrations: the work-stealing default and the legacy shared-queue
//! baseline (`SyncModel::shared_queues`).

use agora_bench::csv::write_csv;
use agora_core::sim::{min_workers, simulate, SimConfig, SyncModel};
use agora_phy::CellConfig;

fn main() {
    println!("Figure 11 — synchronisation overhead vs antennas (16 users, 1 ms frames)");
    println!("ants   cores  sync_ms  shared_ms  budget_ms  share");
    let mut rows = Vec::new();
    for m in [16usize, 32, 48, 64] {
        let cell = CellConfig::emulated_rru(m, 16, 13);
        let target = cell.frame_duration_ns() as f64 + 0.6e6;
        let cores = min_workers(&cell, 12, target, |_| {}).unwrap_or(40);
        let cfg = SimConfig::new(cell.clone(), cores, 12);
        let rep = simulate(&cfg);
        let sync_ms = rep.sync_ns / cfg.frames as f64 / 1e6;
        let mut shared_cfg = SimConfig::new(cell.clone(), cores, 12);
        shared_cfg.sync = SyncModel::shared_queues();
        let shared = simulate(&shared_cfg);
        let shared_ms = shared.sync_ns / shared_cfg.frames as f64 / 1e6;
        let budget_ms = cores as f64 * cell.frame_duration_ns() as f64 / 1e6;
        println!(
            "{m:>4}  {cores:>6}  {sync_ms:>7.2}  {shared_ms:>9.2}  {budget_ms:>9.1}  {:>5.1}%",
            100.0 * sync_ms / budget_ms
        );
        rows.push(format!("{m},{cores},{sync_ms},{shared_ms},{budget_ms}"));
    }
    let p = write_csv("fig11_sync", "antennas,cores,sync_ms,sync_ms_shared,budget_ms", &rows);
    println!("\nwrote {}", p.display());
    println!("expected shape: sync time grows with antennas (more FFT messages) and");
    println!("with the correspondingly larger core counts, but stays a bounded");
    println!("fraction of the budget (paper: <=2.5 ms of the 26 ms at 64 antennas);");
    println!("the work-stealing scheduler's sync_ms sits below the shared-queue column.");
}
