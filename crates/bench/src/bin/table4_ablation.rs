//! Table 4: effectiveness of the optimisations, shown by disabling one
//! at a time (median and p99.9 uplink latency, 64x16, 1 ms frames, 26
//! cores).
//!
//! Scheduling-level ablations (batching, memory layout, streaming
//! stores, real-time process) run on the schedule simulator; the matrix
//! ablations (direct-inverse vs SVD, specialised vs generic GEMM) are
//! also measured on this machine's *real kernels* and their measured
//! ratios are folded into the simulated per-task costs.

use agora_bench::csv::write_csv;
use agora_core::sim::{simulate, JitterModel, SimConfig};
use agora_core::BatchSizes;
use agora_math::{pinv_direct, pinv_svd, CMat, Cf32, Gemm};
use agora_phy::CellConfig;
use std::time::Instant;

fn rand_mat(rows: usize, cols: usize, seed: u64) -> CMat {
    let mut state = seed | 1;
    CMat::from_fn(rows, cols, |_, _| {
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f32 / (1u64 << 53) as f32) - 0.25
        };
        Cf32::new(next(), next())
    })
}

/// Measures the real slowdown of the SVD pseudo-inverse vs the direct
/// route on this machine (paper: ~8.5x on MKL).
fn measure_pinv_ratio() -> f64 {
    let h = rand_mat(64, 16, 3);
    let reps = 20;
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(pinv_direct(&h).unwrap());
    }
    let direct = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(pinv_svd(&h, 1e-6));
    }
    let svd = t0.elapsed().as_secs_f64();
    svd / direct
}

/// Measures the generic-vs-specialised GEMM ratio (paper: MKL JIT gives
/// 3-5x on small shapes).
fn measure_gemm_ratio() -> f64 {
    let a = rand_mat(16, 64, 5);
    let b = rand_mat(64, 8, 6);
    let mut c = vec![Cf32::ZERO; 16 * 8];
    let spec = Gemm::plan(16, 64, 8);
    let gen = Gemm::plan_generic(16, 64, 8);
    let reps = 3000;
    let t0 = Instant::now();
    for _ in 0..reps {
        spec.run(a.as_slice(), b.as_slice(), &mut c);
        std::hint::black_box(&c);
    }
    let fast = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    for _ in 0..reps {
        gen.run(a.as_slice(), b.as_slice(), &mut c);
        std::hint::black_box(&c);
    }
    let slow = t0.elapsed().as_secs_f64();
    slow / fast
}

fn main() {
    let cell = CellConfig::emulated_rru(64, 16, 13);
    let frames = 200;
    // Scheduling ablations run at the sustained frame rate, like the
    // deployed system.
    let base_cfg = SimConfig::new(cell.clone(), 26, frames);
    let base = simulate(&base_cfg);
    let b_med = base.median_latency_ms();
    let b_999 = base.percentile_latency_ms(99.9);
    // The matrix ablations add more work than ANY 26-core schedule can
    // sustain at a 1 ms frame rate (SVD alone adds ~9 core-ms per
    // frame), so they are measured in isolated-frame mode: frames spaced
    // 5x apart, reporting the pure latency penalty. The paper's modest
    // 1.27x suggests the same effective methodology.
    let mut gap_cfg = base_cfg.clone();
    gap_cfg.inter_frame_gap_ns = 4.0 * cell.frame_duration_ns() as f64;
    let gap_base = simulate(&gap_cfg);
    let g_med = gap_base.median_latency_ms();
    let g_999 = gap_base.percentile_latency_ms(99.9);

    println!("Table 4 — optimisation ablations (64x16, 1 ms frame, 26 cores, uplink)");
    println!("configuration                    median_ms  x     p99.9_ms  x");
    println!("baseline (all optimisations on)  {b_med:>9.2}  1.00  {b_999:>8.2}  1.00");
    let mut rows = vec![format!("baseline,{b_med},1.0,{b_999},1.0")];

    let rows_ref = &mut rows;
    let mut report =
        move |name: &str, rep: &agora_core::sim::SimReport, ref_med: f64, ref_999: f64| {
            let med = rep.median_latency_ms();
            let p999 = rep.percentile_latency_ms(99.9);
            println!(
                "{name:<36} {med:>9.2}  {:<4.2}  {p999:>8.2}  {:<4.2}",
                med / ref_med,
                p999 / ref_999
            );
            rows_ref.push(format!("{name},{med},{},{p999},{}", med / ref_med, p999 / ref_999));
        };

    // Batching off: one task per message.
    let mut cfg = base_cfg.clone();
    cfg.batch = BatchSizes::ones();
    report("batching disabled", &simulate(&cfg), b_med, b_999);

    // Memory access optimisation off: strided demod input.
    let mut cfg = base_cfg.clone();
    cfg.movement.cache_layout = false;
    report("memory access opt disabled", &simulate(&cfg), b_med, b_999);

    // Non-temporal stores off.
    let mut cfg = base_cfg.clone();
    cfg.movement.streaming_stores = false;
    report("non-temporal store disabled", &simulate(&cfg), b_med, b_999);

    // Matrix inverse optimisation off. The paper measures the SVD route
    // at 135 us vs 15.8 us direct (8.5x, §4.2); our deliberately naive
    // Jacobi SVD is slower still — both ratios are reported, the paper's
    // drives the simulated row.
    let measured_pinv = measure_pinv_ratio();
    let paper_pinv = 135.0 / 15.8;
    let mut cfg = gap_cfg.clone();
    cfg.costs.zf_ns *= paper_pinv;
    report(
        &format!("matrix inverse opt disabled ({paper_pinv:.1}x ZF) [isolated]"),
        &simulate(&cfg),
        g_med,
        g_999,
    );
    println!("    (this machine's Jacobi-SVD/direct ratio: {measured_pinv:.1}x)");

    // JIT GEMM off. The paper cites 3-5x from MKL's JIT on small shapes;
    // the GEMM is ~60% of the fused demod task. Our monomorphised-vs-
    // generic Rust ratio is also measured and reported.
    let measured_gemm = measure_gemm_ratio();
    let paper_gemm: f64 = 3.0; // low end of the paper's 3-5x JIT gain
    let gemm_share = 0.6;
    let scale = 1.0 + gemm_share * (paper_gemm - 1.0);
    let mut cfg = base_cfg.clone();
    cfg.costs.demod_sc_ns *= scale;
    cfg.costs.precode_sc_ns *= scale;
    report(&format!("JIT matmul disabled ({paper_gemm:.1}x GEMM)"), &simulate(&cfg), b_med, b_999);
    println!("    (this machine's generic/specialised GEMM ratio: {measured_gemm:.1}x)");

    // Real-time process off: inject OS preemption jitter (Linux CFS
    // timeslices are a few ms; most tasks escape, the tail does not).
    let mut cfg = base_cfg.clone();
    cfg.jitter = Some(JitterModel { preempt_prob: 3e-4, mean_ns: 0.8e6 });
    report("real-time process disabled", &simulate(&cfg), b_med, b_999);

    let p = write_csv("table4_ablation", "config,median_ms,median_x,p999_ms,p999_x", &rows);
    println!("\nwrote {}", p.display());
    println!("expected shape (paper): batching 1.64x median; memory access 1.40x;");
    println!("NT stores 1.12x; inverse opt 1.27x; JIT 1.18x; non-RT ~1.0x median");
    println!("but 3.7x p99.9.");
}
