//! CI smoke: work-stealing scheduler parity.
//! Deterministic (seeded generators), fast, exit code 1 on any
//! violation — `scripts/ci.sh` runs it after the test suite as a
//! release-build cross-check of the scheduler ablation's contract:
//!
//! * a threaded `Engine` with `work_stealing` on emits `FrameResult`s
//!   bit-identical to the same engine with stealing off AND to the
//!   single-threaded `InlineProcessor`, and the lane counters account
//!   for every dispatched message;
//! * a C=4 `Deployment` with stealing on, fed through ONE faulty link,
//!   still reconciles per-cell loss/frame ledgers exactly against the
//!   fault injector's ground truth;
//! * under loss-free faults (dup + reorder), a stealing deployment and
//!   a shared-queue deployment produce bit-identical results.

use agora_core::deploy::{Deployment, DeploymentConfig};
use agora_core::{Engine, EngineConfig, FrameResult, InlineProcessor};
use agora_fronthaul::{
    FaultConfig, Fronthaul, LossModel, MemFronthaul, MultiCellGenerator, PacketBuf, RruConfig,
    RruEmulator,
};
use agora_phy::CellConfig;
use agora_queue::TaskType;
use bytes::Bytes;
use std::process::exit;
use std::sync::atomic::AtomicBool;

const CELLS: usize = 4;
const FRAMES: u32 = 3;

const COMPUTE: [TaskType; 7] = [
    TaskType::Fft,
    TaskType::Zf,
    TaskType::Demod,
    TaskType::Decode,
    TaskType::Encode,
    TaskType::Precode,
    TaskType::Ifft,
];

fn check(ok: bool, what: &str) {
    if ok {
        println!("OK   {what}");
    } else {
        println!("FAIL {what}");
        exit(1);
    }
}

/// Everything except timing milestones (wall-clock, inherently run
/// dependent) must match bit for bit.
fn frame_results_equal(a: &FrameResult, b: &FrameResult) -> bool {
    a.frame == b.frame
        && a.dropped == b.dropped
        && a.lost_packets == b.lost_packets
        && a.decode_ok == b.decode_ok
        && a.decoded == b.decoded
}

fn sorted(mut r: Vec<FrameResult>) -> Vec<FrameResult> {
    r.sort_by_key(|f| f.frame);
    r
}

/// Stealing on == stealing off == inline on a single engine, plus the
/// lane/steal counters behave as documented.
fn engine_parity() {
    let cell = CellConfig::tiny_test(2);
    let mut rru =
        RruEmulator::new(cell.clone(), RruConfig { snr_db: 28.0, seed: 3, ..Default::default() });
    let mut packets = Vec::new();
    for f in 0..FRAMES {
        let (p, _) = rru.generate_frame(f);
        packets.extend(p);
    }
    let mut cfg = EngineConfig::new(cell, 2);
    cfg.noise_power = rru.noise_power();

    let stealing = Engine::new(cfg.clone());
    let with_lanes = sorted(stealing.process(packets.clone(), FRAMES, false));
    check(with_lanes.len() == FRAMES as usize, "engine: stealing run emits every frame");

    let messages: u64 = COMPUTE.iter().map(|&t| stealing.stats().messages(t)).sum();
    check(
        stealing.stats().lane_pushes() + stealing.stats().lane_overflows() == messages,
        "engine: lane counters account for every dispatched message",
    );

    let mut mono_cfg = cfg.clone();
    mono_cfg.ablation.work_stealing = false;
    let mono = Engine::new(mono_cfg);
    let shared = sorted(mono.process(packets.clone(), FRAMES, false));
    check(mono.stats().lane_pushes() == 0, "engine: stealing off never touches a lane");
    check(mono.stats().steals() == 0, "engine: stealing off never steals");
    check(
        with_lanes.len() == shared.len()
            && with_lanes.iter().zip(&shared).all(|(a, b)| frame_results_equal(a, b)),
        "engine: stealing on/off bit-identical",
    );

    let mut inline = InlineProcessor::new(cfg);
    for f in 0..FRAMES {
        let per_frame: Vec<Bytes> = packets
            .iter()
            .filter(|p| agora_fronthaul::decode(p).unwrap().0.frame == f)
            .cloned()
            .collect();
        let reference = inline.process_frame(f, &per_frame);
        let t = with_lanes.iter().find(|r| r.frame == f).unwrap();
        check(
            t.decoded == reference.decoded && t.decode_ok == reference.decode_ok,
            &format!("engine: frame {f} bit-identical to inline"),
        );
    }
}

fn rrus(seed_base: u64) -> (CellConfig, Vec<RruEmulator>, Vec<f32>) {
    let cell = CellConfig::tiny_test(2);
    let rrus: Vec<RruEmulator> = (0..CELLS)
        .map(|c| {
            RruEmulator::new(
                cell.clone(),
                RruConfig {
                    snr_db: 30.0,
                    seed: seed_base + c as u64,
                    cell_id: c as u8,
                    ..Default::default()
                },
            )
        })
        .collect();
    let noise = rrus.iter().map(|r| r.noise_power()).collect();
    (cell, rrus, noise)
}

fn link_for(cell: &CellConfig) -> (MemFronthaul, MemFronthaul) {
    let per_frame = cell.symbols_per_frame() * cell.num_antennas;
    MemFronthaul::pair((2 * CELLS * per_frame * FRAMES as usize).next_power_of_two())
}

fn deployment_for(
    cell: &CellConfig,
    noise: &[f32],
    deadline: Option<u64>,
    stealing: bool,
) -> Deployment {
    let cells = noise
        .iter()
        .map(|&n| {
            let mut cfg = EngineConfig::new(cell.clone(), 1);
            cfg.noise_power = n;
            cfg.frame_deadline_ns = deadline;
            cfg.ablation.work_stealing = stealing;
            cfg
        })
        .collect();
    Deployment::new(DeploymentConfig::new(cells, CELLS))
}

/// C=4 with stealing on, over one faulty link: the per-cell
/// loss/frame ledgers still reconcile exactly.
fn deployment_fault_ledger() {
    let (cell, rrus, noise) = rrus(1000);
    let mut generator = MultiCellGenerator::new(rrus).with_faults(FaultConfig {
        loss: LossModel::Iid { p: 0.03 },
        reorder_prob: 0.05,
        max_delay: 8,
        duplicate_prob: 0.03,
        seed: 11,
    });
    let (tx, rx) = link_for(&cell);
    let truths = generator.run(&tx, FRAMES);
    let fs = generator.stats().clone();
    check(fs.lost > 0, "faults: 3% loss fired over the run");

    let deployment = deployment_for(&cell, &noise, Some(700_000_000), true);
    let done = AtomicBool::new(true);
    let results = deployment.process_fronthaul(&rx, FRAMES, &done);
    check(
        results.iter().all(|r| r.len() == FRAMES as usize),
        "faults: every cell emits every frame under stealing",
    );
    let stats = deployment.stats();
    for c in 0..CELLS {
        let cid = c as u8;
        check(
            stats.cell(c).packets_lost() == fs.per_cell_lost.get(&cid).copied().unwrap_or(0),
            &format!("faults: cell {c} loss ledger reconciles under stealing"),
        );
        for r in &results[c] {
            let lost_here = fs.per_cell_frame_lost.get(&(cid, r.frame)).copied().unwrap_or(0);
            check(
                r.dropped == (lost_here > 0),
                &format!("faults: cell {c} frame {} drop status matches frame loss", r.frame),
            );
            if !r.dropped {
                let gt = &truths[c][r.frame as usize];
                let ok = cell.schedule.uplink_indices().into_iter().all(|sym| {
                    (0..cell.num_users)
                        .all(|u| r.decode_ok[sym][u] && r.decoded[sym][u] == gt.info_bits[sym][u])
                });
                check(ok, &format!("faults: cell {c} frame {} decodes ground truth", r.frame));
            }
        }
    }
    let roll = stats.rollup();
    check(roll.packets_lost() == fs.lost, "faults: rolled-up loss equals injected loss");
    check(
        roll.frames_completed() + roll.frames_dropped() == (CELLS as u64) * FRAMES as u64,
        "faults: rollup accounts for every frame",
    );
}

/// Loss-free faults (dup + reorder): a stealing deployment and a
/// shared-queue deployment replaying the same stream are bit-identical.
fn deployment_stealing_parity() {
    let (cell, rrus, noise) = rrus(2000);
    let mut generator = MultiCellGenerator::new(rrus).with_faults(FaultConfig {
        loss: LossModel::None,
        reorder_prob: 0.08,
        max_delay: 8,
        duplicate_prob: 0.05,
        seed: 23,
    });
    let (tx, rx) = link_for(&cell);
    let _ = generator.run(&tx, FRAMES);

    let mut stream: Vec<Bytes> = Vec::new();
    let mut batch = Vec::new();
    while rx.recv_batch(&mut batch, 64) > 0 {
        for pkt in batch.drain(..) {
            stream.push(pkt.into_bytes());
        }
    }
    check(stream.len() as u64 == generator.stats().delivered, "parity: captured whole stream");

    let mut runs = Vec::new();
    for stealing in [true, false] {
        let (tx2, rx2) = link_for(&cell);
        for p in &stream {
            tx2.send(PacketBuf::Heap(p.clone())).expect("replay link sized for the run");
        }
        let deployment = deployment_for(&cell, &noise, None, stealing);
        let done = AtomicBool::new(true);
        runs.push(deployment.process_fronthaul(&rx2, FRAMES, &done));
    }
    for c in 0..CELLS {
        check(
            runs[0][c].len() == runs[1][c].len()
                && runs[0][c].iter().zip(&runs[1][c]).all(|(a, b)| frame_results_equal(a, b)),
            &format!("parity: cell {c} stealing on/off bit-identical"),
        );
    }
}

fn main() {
    engine_parity();
    deployment_fault_ledger();
    deployment_stealing_parity();
    println!("sched parity: all checks passed");
}
