//! CI smoke: FFT tier parity. Deterministic (fixed xorshift inputs),
//! fast (<1 s), exit code 1 on any violation — `scripts/ci.sh` runs it
//! after the test suite as a release-build cross-check of the SIMD FFT
//! engine's invariants:
//!
//! 1. The detected-tier kernel agrees with the forced-scalar kernel to
//!    within accumulation tolerance, single and batched, both directions.
//! 2. Batched execution is bit-identical to running the same transforms
//!    one at a time on the same tier (the `batched_fft` ablation contract).
//! 3. The pre-reversed entry point composed with the plan's own
//!    bit-reversal is bit-identical to the fused `execute` path.

use agora_fft::{Direction, FftPlan};
use agora_math::{Cf32, SimdTier};

const SIZES: &[usize] = &[64, 256, 2048];
const BATCH: usize = 4;

fn test_signal(len: usize, seed: u64) -> Vec<Cf32> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 40) as f32 / (1u64 << 24) as f32 - 0.5
    };
    (0..len).map(|_| Cf32::new(next(), next())).collect()
}

fn max_err(a: &[Cf32], b: &[Cf32]) -> f32 {
    a.iter().zip(b.iter()).map(|(x, y)| (*x - *y).norm_sqr().sqrt()).fold(0.0, f32::max)
}

fn bits_equal(a: &[Cf32], b: &[Cf32]) -> bool {
    a.iter()
        .zip(b.iter())
        .all(|(x, y)| x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits())
}

fn main() {
    let tier = SimdTier::detect();
    println!("fft parity smoke (detected tier: {tier:?})");
    let mut failures = 0usize;

    for &n in SIZES {
        let fast = FftPlan::new(n);
        let scalar = FftPlan::with_tier(n, SimdTier::Scalar);
        // Tolerance grows with accumulation depth, as in the proptests.
        let tol = 1e-4 * (n as f32).sqrt();
        let input = test_signal(BATCH * n, 0xF0F7 + n as u64);

        for dir in [Direction::Forward, Direction::Inverse] {
            // 1. Scalar vs detected tier, single transform.
            let mut a = input[..n].to_vec();
            let mut b = input[..n].to_vec();
            fast.execute(&mut a, dir);
            scalar.execute(&mut b, dir);
            let err = max_err(&a, &b);
            if err > tol {
                println!("FAIL n={n} {dir:?}: tier divergence {err:e} > {tol:e}");
                failures += 1;
            }

            // 2. Batched vs single-at-a-time on the detected tier:
            // bit-identical, per the `batched_fft` ablation contract.
            let mut batch = input.clone();
            fast.execute_batch(&mut batch, dir);
            let mut singles = input.clone();
            for chunk in singles.chunks_exact_mut(n) {
                fast.execute(chunk, dir);
            }
            if !bits_equal(&batch, &singles) {
                println!("FAIL n={n} {dir:?}: batched execution not bit-identical to singles");
                failures += 1;
            }

            // 3. Manual bit-reversal + pre-reversed entry vs fused
            // execute: bit-identical (same butterflies, same data).
            let mut pre = vec![Cf32::ZERO; n];
            for (i, &j) in fast.bitrev().iter().enumerate() {
                pre[i] = input[j as usize];
            }
            fast.execute_prereversed(&mut pre, dir);
            let mut fused = input[..n].to_vec();
            fast.execute(&mut fused, dir);
            if !bits_equal(&pre, &fused) {
                println!("FAIL n={n} {dir:?}: prereversed path diverges from execute");
                failures += 1;
            }
        }
        println!("  n={n:<5} ok (single + batch x{BATCH} + prereversed, fwd/inv)");
    }

    if failures > 0 {
        println!("fft parity smoke: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("fft parity smoke: OK");
}
