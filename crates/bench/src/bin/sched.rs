//! Scheduler micro-benchmark: per-task scheduling overhead of the
//! work-stealing dispatch path (per-worker lanes + batched queue ops)
//! vs the legacy shared per-type queues, at the paper's 64x16 message
//! mix with 8 worker lanes. Also probes the idle-CPU cost of parked vs
//! spinning workers, and doubles as the PGO training workload
//! (`--pgo-workload` runs the threaded engine frame loop at 64x16).
//!
//! Gate (scripts/ci.sh): the lane path must cut per-task scheduling
//! overhead (dispatch -> execute-start -> completion-retire, queue ops
//! only) by >= 30% vs the shared-queue baseline; exit code 1 otherwise.
//!
//! Writes `results/sched.csv` (metric,mode,value).

use agora_bench::csv::write_csv;
use agora_queue::{IdleGate, MpmcQueue, Msg, TaskLane, TaskType};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

const LANES: usize = 8;
const WORKER_BATCH: usize = 16;
const COMPLETE_BATCH: usize = 64;
const NUM_TYPES: usize = 7;

/// Same drain priority as `agora_core::engine::PRIORITY`.
const PRIORITY: [TaskType; NUM_TYPES] = [
    TaskType::Zf,
    TaskType::Demod,
    TaskType::Decode,
    TaskType::Fft,
    TaskType::Precode,
    TaskType::Ifft,
    TaskType::Encode,
];

/// One frame's dispatch events at 64x16 (paper batch sizes: FFT 2,
/// ZF 3, demod 64, decode 1). Each inner vec is one `Ready` batch the
/// manager hands to the scheduler at once.
fn frame_events(frame: u32) -> Vec<Vec<Msg>> {
    let (m, k, q, groups) = (64u32, 16u32, 1200u32, 75u32);
    let symbols = 14u32; // 1 pilot + 13 uplink
    let mut events = Vec::new();
    for sym in 0..symbols {
        let fft: Vec<Msg> =
            (0..m.div_ceil(2)).map(|i| Msg::task(TaskType::Fft, frame, sym, i * 2, 2)).collect();
        events.push(fft);
        if sym == 0 {
            let zf: Vec<Msg> = (0..groups.div_ceil(3))
                .map(|i| Msg::task(TaskType::Zf, frame, 0, i * 3, 3))
                .collect();
            events.push(zf);
        } else {
            let demod: Vec<Msg> = (0..q.div_ceil(64))
                .map(|i| Msg::task(TaskType::Demod, frame, sym, i * 64, 64))
                .collect();
            events.push(demod);
            let decode: Vec<Msg> =
                (0..k).map(|u| Msg::task(TaskType::Decode, frame, sym, u, 1)).collect();
            events.push(decode);
        }
    }
    events
}

fn total_msgs(events: &[Vec<Msg>]) -> usize {
    events.iter().map(Vec::len).sum()
}

/// Legacy path: per-type shared MPMC queues, one CAS per message on
/// every hop, workers scan the priority list to find work, completions
/// retired one at a time.
fn shared_round_trip(events: &[Vec<Msg>], reps: usize) -> f64 {
    let queues: Vec<MpmcQueue<Msg>> = (0..NUM_TYPES).map(|_| MpmcQueue::new(2048)).collect();
    let complete: MpmcQueue<Msg> = MpmcQueue::new(2048);
    let msgs = total_msgs(events) * reps;
    let start = Instant::now();
    for _ in 0..reps {
        for ev in events {
            for m in ev {
                queues[m.task as usize].push(*m).expect("shared push");
            }
            // Worker: scan priority queues, execute one message at a
            // time, push its completion.
            loop {
                let mut got = None;
                for t in PRIORITY {
                    if let Some(m) = queues[t as usize].pop() {
                        got = Some(m);
                        break;
                    }
                }
                let Some(m) = got else { break };
                black_box(m);
                complete.push(Msg::complete(m.task, m.frame, m.symbol, m.base, m.count, 0)).ok();
            }
            // Manager: retire completions one at a time.
            while let Some(c) = complete.pop() {
                black_box(c);
            }
        }
    }
    start.elapsed().as_nanos() as f64 / msgs as f64
}

/// Work-stealing path: the manager places each Ready batch into a lane
/// with one batched claim, workers drain lanes in WORKER_BATCH chunks
/// and push completions batched, the manager retires completions in
/// COMPLETE_BATCH chunks.
fn steal_round_trip(events: &[Vec<Msg>], reps: usize) -> f64 {
    let lanes: Vec<TaskLane<Msg>> = (0..LANES).map(|_| TaskLane::new(256)).collect();
    let complete: MpmcQueue<Msg> = MpmcQueue::new(2048);
    let msgs = total_msgs(events) * reps;
    let mut buf: Vec<Msg> = Vec::with_capacity(WORKER_BATCH);
    let mut done: Vec<Msg> = Vec::with_capacity(WORKER_BATCH);
    let mut cbuf: Vec<Msg> = Vec::with_capacity(COMPLETE_BATCH);
    let mut rr = 0usize;
    let start = Instant::now();
    for _ in 0..reps {
        for ev in events {
            let lane = &lanes[rr % LANES];
            rr += 1;
            let mut off = lane.push_batch(ev);
            while off < ev.len() {
                // Lane full: drain a worker batch to make room (the
                // engine falls back to shared queues here; for the
                // queue-op cost that path is identical).
                drain_worker(&lanes, &complete, &mut buf, &mut done);
                off += lane.push_batch(&ev[off..]);
            }
            loop {
                if !drain_worker(&lanes, &complete, &mut buf, &mut done) {
                    break;
                }
            }
            loop {
                cbuf.clear();
                if complete.pop_batch(&mut cbuf, COMPLETE_BATCH) == 0 {
                    break;
                }
                for c in &cbuf {
                    black_box(*c);
                }
            }
        }
    }
    start.elapsed().as_nanos() as f64 / msgs as f64
}

/// One worker trip: pop a batch from the first non-empty lane, execute,
/// push completions batched. Returns false when all lanes are dry.
fn drain_worker(
    lanes: &[TaskLane<Msg>],
    complete: &MpmcQueue<Msg>,
    buf: &mut Vec<Msg>,
    done: &mut Vec<Msg>,
) -> bool {
    buf.clear();
    for lane in lanes {
        if lane.pop_batch(buf, WORKER_BATCH) > 0 {
            break;
        }
    }
    if buf.is_empty() {
        return false;
    }
    done.clear();
    for m in buf.iter() {
        black_box(*m);
        done.push(Msg::complete(m.task, m.frame, m.symbol, m.base, m.count, 0));
    }
    let mut off = 0;
    while off < done.len() {
        off += complete.push_batch(&done[off..]);
    }
    true
}

/// Fixed busy-work kernel for the idle probe.
fn busy_work(iters: u64) -> u64 {
    let mut acc = 0u64;
    for i in 0..iters {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    black_box(acc)
}

/// Measures how much `n` idle worker threads slow down a busy thread:
/// spinning workers steal cycles, parked workers should not. Returns
/// (solo_ms, spin_ms, park_ms).
fn idle_probe(n: usize, iters: u64) -> (f64, f64, f64) {
    let solo = {
        let t = Instant::now();
        busy_work(iters);
        t.elapsed().as_secs_f64() * 1e3
    };

    let spin = {
        let stop = Arc::new(AtomicBool::new(false));
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        std::hint::spin_loop();
                    }
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(10));
        let t = Instant::now();
        busy_work(iters);
        let el = t.elapsed().as_secs_f64() * 1e3;
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        el
    };

    let park = {
        let stop = Arc::new(AtomicBool::new(false));
        let gate = Arc::new(IdleGate::new());
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let stop = Arc::clone(&stop);
                let gate = Arc::clone(&gate);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let seen = gate.epoch();
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        gate.park(seen, std::time::Duration::from_millis(50));
                    }
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(10));
        let t = Instant::now();
        busy_work(iters);
        let el = t.elapsed().as_secs_f64() * 1e3;
        stop.store(true, Ordering::Relaxed);
        while gate.sleepers() > 0 {
            gate.wake_all();
            std::thread::yield_now();
        }
        gate.wake_all();
        for h in handles {
            h.join().unwrap();
        }
        el
    };

    (solo, spin, park)
}

/// PGO training workload: the threaded engine frame loop at 64x16
/// (short frame so the profile run stays bounded on small machines).
fn pgo_workload() {
    use agora_core::{Engine, EngineConfig};
    use agora_fronthaul::{RruConfig, RruEmulator};
    use agora_phy::CellConfig;

    let cell = CellConfig::emulated_rru(64, 16, 2);
    let mut rru =
        RruEmulator::new(cell.clone(), RruConfig { snr_db: 30.0, seed: 9, ..Default::default() });
    let mut packets = Vec::new();
    for f in 0..2u32 {
        let (p, _) = rru.generate_frame(f);
        packets.extend(p);
    }
    let mut cfg = EngineConfig::new(cell, 2);
    cfg.noise_power = rru.noise_power();
    let engine = Engine::new(cfg);
    let results = engine.process(packets, 2, false);
    println!("pgo workload: processed {} frames at 64x16", results.len());
}

fn main() {
    if std::env::args().any(|a| a == "--pgo-workload") {
        pgo_workload();
        return;
    }

    println!("Scheduler overhead — 64x16 message mix, {LANES} lanes, batched vs shared queues");
    let events = frame_events(0);
    let per_frame = total_msgs(&events);
    println!("messages per frame: {per_frame}");

    // Warm up, then measure.
    let reps = 200;
    shared_round_trip(&events, 20);
    steal_round_trip(&events, 20);
    let shared_ns = shared_round_trip(&events, reps);
    let steal_ns = steal_round_trip(&events, reps);
    let reduction = 100.0 * (1.0 - steal_ns / shared_ns);
    println!("shared queues : {shared_ns:>7.1} ns/task");
    println!("lane+batch    : {steal_ns:>7.1} ns/task");
    println!("reduction     : {reduction:>7.1} %  (gate: >= 30%)");

    let (solo_ms, spin_ms, park_ms) = idle_probe(8, 200_000_000);
    let spin_x = spin_ms / solo_ms;
    let park_x = park_ms / solo_ms;
    println!("idle probe    : busy thread solo {solo_ms:.1} ms, vs 8 spinning {spin_ms:.1} ms ({spin_x:.2}x), vs 8 parked {park_ms:.1} ms ({park_x:.2}x)");

    let rows = vec![
        format!("per_task_overhead_ns,shared,{shared_ns:.2}"),
        format!("per_task_overhead_ns,steal,{steal_ns:.2}"),
        format!("overhead_reduction_pct,steal_vs_shared,{reduction:.2}"),
        format!("busy_ms,solo,{solo_ms:.2}"),
        format!("busy_ms,8_spinning,{spin_ms:.2}"),
        format!("busy_ms,8_parked,{park_ms:.2}"),
        format!("interference_x,8_spinning,{spin_x:.3}"),
        format!("interference_x,8_parked,{park_x:.3}"),
    ];
    let p = write_csv("sched", "metric,mode,value", &rows);
    println!("wrote {}", p.display());

    let mut ok = true;
    if reduction < 30.0 {
        println!("FAIL per-task scheduling overhead reduction {reduction:.1}% < 30%");
        ok = false;
    } else {
        println!("OK   per-task scheduling overhead reduction {reduction:.1}% >= 30%");
    }
    if park_x > spin_x {
        println!("FAIL parked workers interfere more than spinning ({park_x:.2}x > {spin_x:.2}x)");
        ok = false;
    } else {
        println!(
            "OK   parked workers interfere no more than spinning ({park_x:.2}x <= {spin_x:.2}x)"
        );
    }
    if !ok {
        std::process::exit(1);
    }
}
