//! Antenna-cluster partitioned ZF: critical-path speedup measurement.
//!
//! The staged ZF path splits `W = (H^H H)^{-1} H^H` into per-cluster
//! partial Grams (`H_i^H H_i` over an antenna slice) that run on
//! independent workers, a deterministic tree fold, and a column-sharded
//! Cholesky solve. A single core does the *same* total work plus the
//! fold, so the win is parallelism: this bench times each stage in
//! isolation and reports the **critical path** a C-worker execution
//! pays — `max_i partial(i) + max_j reduce(j)` — against the monolithic
//! `pinv_into` chain.
//!
//! The 64x16 clusters=1 row also measures the Gram share of the
//! monolithic task, which calibrates the simulator's
//! `agora_core::sim::MEASURED_ZF_GRAM_FRAC` split.
//!
//! Writes `results/zf_cluster.csv`. Exits non-zero if the M=256 K=16
//! clusters=4 critical path falls below the PR's >=2x acceptance floor,
//! or if the M=64 clusters=1 staged path regresses the monolithic task.

use agora_bench::csv::write_csv;
use agora_math::simd::SimdTier;
use agora_math::{
    gram_accumulate_with_tier, gram_reduce, pinv_from_gram_slice_into, pinv_into, CMat, Cf32,
    PinvMethod, PinvScratch,
};
use agora_phy::ClusterPlan;
use std::time::Instant;

/// Timing trials per configuration; the minimum is reported.
const TRIALS: usize = 5;

fn bench<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..TRIALS {
        let t0 = Instant::now();
        for _ in 0..reps {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64() * 1e9 / reps as f64);
    }
    best
}

fn channel(m: usize, k: usize) -> CMat {
    CMat::from_fn(m, k, |r, c| {
        let i = (r * k + c) as u64;
        Cf32::new(
            ((i * 2654435761 % 1000) as f32 / 1000.0) - 0.5,
            ((i * 40503 % 1000) as f32 / 1000.0) - 0.5,
        )
    })
}

fn main() {
    let tier = SimdTier::detect();
    let k = 16usize;
    println!("Antenna-cluster partitioned ZF critical path (detected tier: {tier:?})");
    println!(
        "{:>6} {:>4} {:>9} | {:>11} {:>11} {:>11} {:>11} {:>6}",
        "M", "K", "clusters", "mono_ns", "partial_ns", "reduce_ns", "critical", "x"
    );
    let mut rows = Vec::new();
    let mut gate_256x4 = 0.0f64;
    let mut gate_64x1 = 0.0f64;
    let mut gram_frac_64 = 0.0f64;
    for m in [64usize, 128, 256] {
        let h = channel(m, k);
        let reps = ((1usize << 24) / (m * k * k)).max(32);
        let mut s = PinvScratch::with_tier(m, k, tier);
        let mut out_mono = CMat::zeros(k, m);
        let mono = bench(reps, || {
            pinv_into(std::hint::black_box(&h), PinvMethod::Cholesky, &mut s, &mut out_mono);
            std::hint::black_box(&out_mono);
        });
        for clusters in [1usize, 2, 4, 8] {
            let plan = ClusterPlan::new(m, clusters);
            // Per-cluster partial Grams: each would run on its own
            // worker, so the stage cost is the slowest cluster.
            let mut parts = vec![Cf32::ZERO; clusters * k * k];
            let mut ah = vec![Cf32::ZERO; k * plan.max_len()];
            let mut max_partial = 0.0f64;
            for cluster in 0..clusters {
                let rows_r = plan.range(cluster);
                let len = rows_r.len();
                let a = &h.as_slice()[rows_r.start * k..rows_r.end * k];
                let part = &mut parts[cluster * k * k..(cluster + 1) * k * k] as *mut [Cf32];
                let t = bench(reps, || {
                    // SAFETY: single-threaded bench; re-borrowed per rep.
                    let part = unsafe { &mut *part };
                    agora_math::simd::conj_transpose(a, len, k, &mut ah[..k * len], tier);
                    part.fill(Cf32::ZERO);
                    gram_accumulate_with_tier(len, k, &ah[..k * len], a, part, tier);
                    std::hint::black_box(&part);
                });
                max_partial = max_partial.max(t);
            }
            // Column-sharded reduce + solve (uplink-only model:
            // shards == clusters). Each shard folds the partials itself
            // and solves its own column slice; stage cost is the
            // slowest shard.
            let solve_plan = ClusterPlan::new(m, clusters);
            let mut staged = CMat::zeros(k, m);
            let mut max_reduce = 0.0f64;
            for shard in 0..clusters {
                let cols = solve_plan.range(shard);
                let mut out = CMat::zeros(k, cols.len());
                let t = bench(reps, || {
                    gram_reduce(std::hint::black_box(&parts), s.gram_mut().as_mut_slice());
                    pinv_from_gram_slice_into(
                        &h,
                        PinvMethod::Cholesky,
                        cols.start,
                        cols.len(),
                        &mut s,
                        &mut out,
                    );
                    std::hint::black_box(&out);
                });
                max_reduce = max_reduce.max(t);
                for u in 0..k {
                    for (c, a) in cols.clone().enumerate() {
                        staged[(u, a)] = out[(u, c)];
                    }
                }
            }
            let critical = max_partial + max_reduce;
            let x = mono / critical;
            println!(
                "{m:>6} {k:>4} {clusters:>9} | {mono:>11.0} {max_partial:>11.0} {max_reduce:>11.0} {critical:>11.0} {x:>5.2}x"
            );
            // Staged output must agree with the monolithic detector: bit
            // for bit at clusters=1, to f32 rounding otherwise (the tree
            // fold reassociates the Gram sum).
            if clusters == 1 {
                let same =
                    staged.as_slice().iter().zip(out_mono.as_slice().iter()).all(|(a, b)| {
                        a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits()
                    });
                if !same {
                    println!("FAIL: clusters=1 staged detector is not bit-identical (M={m})");
                    std::process::exit(1);
                }
            } else {
                let diff = staged.max_abs_diff(&out_mono) as f64;
                if diff > 1e-3 {
                    println!("FAIL: staged detector diverges ({diff:.2e}) at M={m} C={clusters}");
                    std::process::exit(1);
                }
            }
            rows.push(format!(
                "{m},{k},{clusters},{mono:.0},{max_partial:.0},{max_reduce:.0},{critical:.0},{x:.2}"
            ));
            if m == 256 && clusters == 4 {
                gate_256x4 = x;
            }
            if m == 64 && clusters == 1 {
                gate_64x1 = x;
                gram_frac_64 = max_partial / mono;
            }
        }
    }
    let p = write_csv(
        "zf_cluster",
        "m,k,clusters,monolithic_ns,partial_ns,reduce_ns,critical_ns,speedup",
        &rows,
    );
    println!("\nwrote {}", p.display());
    println!(
        "64x16 Gram share of the monolithic task: {gram_frac_64:.2} (feeds MEASURED_ZF_GRAM_FRAC)"
    );
    // Acceptance gates: parallel win at scale, no single-cluster tax.
    if gate_256x4 < 2.0 {
        println!("FAIL: 256x16 clusters=4 critical path {gate_256x4:.2}x is below the >=2x floor");
        std::process::exit(1);
    }
    if gate_64x1 < 0.85 {
        println!(
            "FAIL: 64x16 clusters=1 staged path regresses the monolithic task ({gate_64x1:.2}x)"
        );
        std::process::exit(1);
    }
}
