//! Figure 7: complementary CDF of Agora's uplink processing time for
//! four MIMO configurations (1 ms frame, 26 worker cores). The paper
//! measures 8000 frames; the simulator replays the same count.

use agora_bench::csv::write_csv;
use agora_core::sim::{simulate, JitterModel, SimConfig};
use agora_phy::CellConfig;

fn main() {
    let frames = 8000;
    let configs = [(64usize, 16usize), (32, 16), (64, 8), (16, 4)];
    println!("Figure 7 — uplink latency CCDF, 1 ms frames, 26 cores, {frames} frames");
    println!("config   p50_ms  p90_ms  p99_ms  p99.9_ms  max_ms");
    let mut rows = Vec::new();
    for (m, k) in configs {
        let cell = CellConfig::emulated_rru(m, k, 13);
        let mut cfg = SimConfig::new(cell, 26, frames);
        // Small residual jitter so the distribution has a realistic tail
        // (the real system sees cache/TLB noise even as an RT process).
        cfg.jitter = Some(JitterModel { preempt_prob: 0.02, mean_ns: 2.0e4 });
        let rep = simulate(&cfg);
        let p = |q: f64| rep.percentile_latency_ms(q);
        println!(
            "{m}x{k:<5} {:>6.2}  {:>6.2}  {:>6.2}  {:>8.2}  {:>6.2}",
            p(50.0),
            p(90.0),
            p(99.0),
            p(99.9),
            rep.max_latency_ms()
        );
        // CCDF series for plotting.
        let mut lats: Vec<f64> = rep.latencies_ns.iter().map(|l| l / 1e6).collect();
        lats.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (i, l) in lats.iter().enumerate().step_by((frames / 200).max(1)) {
            let ccdf = 1.0 - i as f64 / lats.len() as f64;
            rows.push(format!("{m}x{k},{l},{ccdf}"));
        }
    }
    let p = write_csv("fig7_ccdf", "config,latency_ms,ccdf", &rows);
    println!("\nwrote {}", p.display());
    println!("expected shape: 64x16 worst (p99.9 ~ 1.3 ms vs 1 ms frame),");
    println!("smaller configs shift left; all well under the 4 ms eMBB bound.");
}
