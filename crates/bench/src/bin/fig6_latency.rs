//! Figure 6: median (and p99.9) processing latency and minimum core
//! count vs frame length (1–5 ms), uplink and downlink, Agora vs the
//! pipeline-parallel variant. 64x16 MIMO, paper-calibrated costs on the
//! schedule simulator.

use agora_bench::csv::write_csv;
use agora_core::sim::{min_workers, pipeline_allocation, simulate, SimConfig, SimPolicy};
use agora_phy::frame::FrameSchedule;
use agora_phy::CellConfig;

fn main() {
    let frames = 32;
    println!("Figure 6 — processing latency and #cores vs frame length (64x16 MIMO)");
    println!("direction frame_ms cores  agora_med_ms agora_p999_ms  pp_cores pp_med_ms pp_p999_ms");
    let mut rows = Vec::new();

    for (dir, is_ul) in [("uplink", true), ("downlink", false)] {
        for data_symbols in [13usize, 27, 41, 55, 69] {
            let mut cell = CellConfig::emulated_rru(64, 16, data_symbols);
            if !is_ul {
                cell.schedule = FrameSchedule::downlink(1, data_symbols);
            }
            let frame_ms = cell.frame_duration_ns() as f64 / 1e6;
            // Minimum cores that keep up with the IQ rate within the
            // paper's observed latency envelope (~frame + 1 ms).
            let target = cell.frame_duration_ns() as f64 + 0.6e6;
            let cores = min_workers(&cell, 24, target, |_| {}).unwrap_or(64);

            let dp_cfg = SimConfig::new(cell.clone(), cores, frames);
            let dp = simulate(&dp_cfg);

            let pp_alloc = pipeline_allocation(&dp_cfg);
            let pp_cores: usize = pp_alloc.iter().sum();
            let mut pp_cfg = SimConfig::new(cell.clone(), pp_cores, frames);
            pp_cfg.policy = SimPolicy::PipelineParallel { cores: pp_alloc };
            let pp = simulate(&pp_cfg);

            println!(
                "{dir:<9} {frame_ms:<8.0} {cores:<6} {:<12.2} {:<13.2}  {pp_cores:<3} {:<9.2} {:<9.2}",
                dp.median_latency_ms(),
                dp.percentile_latency_ms(99.9),
                pp.median_latency_ms(),
                pp.percentile_latency_ms(99.9),
            );
            rows.push(format!(
                "{dir},{frame_ms},{cores},{},{},{pp_cores},{},{}",
                dp.median_latency_ms(),
                dp.percentile_latency_ms(99.9),
                pp.median_latency_ms(),
                pp.percentile_latency_ms(99.9),
            ));
        }
    }
    let p = write_csv(
        "fig6_latency",
        "direction,frame_ms,cores,agora_med_ms,agora_p999_ms,pp_cores,pp_med_ms,pp_p999_ms",
        &rows,
    );
    println!("\nwrote {}", p.display());
    println!("expected shape: Agora tracks the frame length closely (UL ~ frame+0.2ms),");
    println!("pipeline-parallel sits noticeably higher (paper: ~30% worse).");
}
