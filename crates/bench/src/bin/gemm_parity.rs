//! CI smoke: complex-GEMM tier parity. Deterministic (fixed seeds), fast
//! (<1 s), exit code 1 on any violation — `scripts/ci.sh` runs it after
//! the test suite as a release-build cross-check of the AVX2 GEMM plane's
//! contract: `gemm`, `gemv`, and `gram` produce **bit-identical** results
//! on the detected SIMD tier and the forced-scalar tier, for every shape
//! class the kernels dispatch on (4-row blocks, masked column tails,
//! scalar row remainders, packed k-tails).

use agora_math::{Cf32, Gemm, SimdTier};

fn fill(seed: u64, buf: &mut [Cf32]) {
    let mut state = seed | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state >> 11) as f32 / (1u64 << 53) as f32) - 0.25
    };
    for v in buf.iter_mut() {
        *v = Cf32::new(next(), next());
    }
}

fn bits(v: &[Cf32]) -> Vec<(u32, u32)> {
    v.iter().map(|c| (c.re.to_bits(), c.im.to_bits())).collect()
}

fn main() {
    let tier = SimdTier::detect();
    println!("complex GEMM parity smoke (detected tier: {tier:?})");
    let mut failures = 0usize;

    // Shape sweep: engine shapes plus odd sizes that exercise every tail
    // path (m%4 row remainders, n%4 masked columns, k%4 packed tails,
    // n==1 gemv delegation).
    let shapes: &[(usize, usize, usize)] = &[
        (16, 64, 8), // paper equalize (K, M, B)
        (64, 16, 8), // paper precode (M, K, B)
        (8, 32, 8),
        (4, 16, 8),
        (16, 64, 1), // gemv delegation
        (5, 7, 3),   // everything-tail
        (3, 9, 1),
        (13, 13, 13),
        (1, 1, 1),
        (2, 33, 6),
        (17, 4, 5),
        (33, 65, 9),
    ];
    for &(m, k, n) in shapes {
        let mut a = vec![Cf32::ZERO; m * k];
        let mut b = vec![Cf32::ZERO; k * n];
        fill((m * 131 + k * 17 + n) as u64, &mut a);
        fill((m * 7 + k * 311 + n * 5) as u64, &mut b);
        let mut c_scal = vec![Cf32::ZERO; m * n];
        let mut c_simd = vec![Cf32::ZERO; m * n];
        agora_math::gemm_with_tier(m, k, n, &a, &b, &mut c_scal, SimdTier::Scalar);
        agora_math::gemm_with_tier(m, k, n, &a, &b, &mut c_simd, tier);
        if bits(&c_scal) != bits(&c_simd) {
            println!("FAIL gemm ({m},{k},{n}): tiers diverge");
            failures += 1;
        }
        // The planned path must agree with the free function bit-for-bit.
        let plan = Gemm::plan_with_tier(m, k, n, tier);
        let mut c_plan = vec![Cf32::ZERO; m * n];
        plan.run(&a, &b, &mut c_plan);
        if bits(&c_plan) != bits(&c_scal) {
            println!("FAIL plan ({m},{k},{n}) kernel {:?}: diverges from scalar", plan.kernel());
            failures += 1;
        }
    }

    // GEMV over shapes hitting the packed-panel TK tiling and tails.
    for &(m, k) in
        &[(16usize, 64usize), (64, 16), (4, 4), (5, 67), (1, 1), (3, 129), (31, 70), (8, 256)]
    {
        let mut a = vec![Cf32::ZERO; m * k];
        let mut x = vec![Cf32::ZERO; k];
        fill((m * 997 + k) as u64, &mut a);
        fill((k * 13 + m) as u64, &mut x);
        let mut y_scal = vec![Cf32::ZERO; m];
        let mut y_simd = vec![Cf32::ZERO; m];
        agora_math::gemv_with_tier(m, k, &a, &x, &mut y_scal, SimdTier::Scalar);
        agora_math::gemv_with_tier(m, k, &a, &x, &mut y_simd, tier);
        if bits(&y_scal) != bits(&y_simd) {
            println!("FAIL gemv ({m},{k}): tiers diverge");
            failures += 1;
        }
    }

    // Gram (A^H A) over ZF shapes plus tails.
    for &(rows, cols) in &[(64usize, 16usize), (32, 8), (16, 4), (7, 5), (64, 15), (9, 9), (1, 3)] {
        let mut a = vec![Cf32::ZERO; rows * cols];
        fill((rows * 53 + cols) as u64, &mut a);
        let mut g_scal = vec![Cf32::ZERO; cols * cols];
        let mut g_simd = vec![Cf32::ZERO; cols * cols];
        agora_math::gram_with_tier(rows, cols, &a, &mut g_scal, SimdTier::Scalar);
        agora_math::gram_with_tier(rows, cols, &a, &mut g_simd, tier);
        if bits(&g_scal) != bits(&g_simd) {
            println!("FAIL gram ({rows},{cols}): tiers diverge");
            failures += 1;
        }
    }

    if failures > 0 {
        println!("gemm parity smoke: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("gemm parity smoke: OK ({} gemm, 8 gemv, 7 gram shapes)", shapes.len());
}
