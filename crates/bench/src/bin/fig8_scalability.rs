//! Figure 8: uplink processing time and speedup vs number of worker
//! cores (1 ms frame, 64x16 MIMO). Latency falls until it is bound by
//! the frame length (~26 cores in the paper).

use agora_bench::csv::write_csv;
use agora_core::sim::{simulate, SimConfig};
use agora_phy::CellConfig;

fn main() {
    let cell = CellConfig::emulated_rru(64, 16, 13);
    println!("Figure 8 — uplink processing time & speedup vs #cores (64x16, 1 ms frame)");
    println!("cores  time_ms  speedup  ideal");
    let mut rows = Vec::new();
    let mut t1 = 0.0f64;
    for cores in [1usize, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30] {
        // Single-frame processing time (no back-to-back pressure), as in
        // the figure: how fast can N cores chew one frame.
        let cfg = SimConfig::new(cell.clone(), cores, 3);
        let rep = simulate(&cfg);
        let t = rep.median_latency_ms();
        if cores == 1 {
            t1 = t;
        }
        let speedup = t1 / t;
        println!("{cores:>5}  {t:>7.2}  {speedup:>7.2}  {cores:>5}");
        rows.push(format!("{cores},{t},{speedup}"));
    }
    let p = write_csv("fig8_scalability", "cores,time_ms,speedup", &rows);
    println!("\nwrote {}", p.display());
    println!("expected shape: near-linear speedup at low counts, flattening as the");
    println!("latency becomes bound by the 1 ms frame arrival (paper: ~26 cores).");
}
