//! Figure 13: where the time goes, Agora vs the pipeline-parallel
//! variant (64x16, 1 ms frame, 26 cores):
//! (a) per-block processing (wall-clock span each block occupies);
//! (b) milestone breakdown — queueing delay, pilot done, ZF done,
//!     decode done.

use agora_bench::csv::write_csv;
use agora_core::sim::{pipeline_allocation, simulate, SimConfig, SimPolicy};
use agora_phy::CellConfig;

fn main() {
    let cell = CellConfig::emulated_rru(64, 16, 13);
    let frames = 12;

    let dp_cfg = SimConfig::new(cell.clone(), 26, frames);
    let dp = simulate(&dp_cfg);

    let mut pp_cfg = SimConfig::new(cell.clone(), 26, frames);
    // Static allocation computed by the §5.4 policy (each block gets
    // enough cores to keep up; spares go to the slowest block). ZF ends
    // up with ~3 dedicated cores — exactly the bottleneck the paper
    // calls out in §6.3.1.
    let alloc = pipeline_allocation(&pp_cfg);
    println!("pipeline-parallel core allocation [FFT,ZF,Demod,Decode,Enc,Pre,IFFT]: {alloc:?}\n");
    pp_cfg.policy = SimPolicy::PipelineParallel { cores: alloc };
    let pp = simulate(&pp_cfg);

    let mid = |rep: &agora_core::sim::SimReport| {
        let n = rep.milestones.len();
        let ms = rep.milestones[n / 2];
        (
            (ms.processing_start_ns - ms.first_packet_ns).max(0.0) / 1e3,
            (ms.pilot_done_ns - ms.first_packet_ns) / 1e3,
            (ms.zf_done_ns - ms.first_packet_ns) / 1e3,
            (ms.decode_done_ns - ms.first_packet_ns) / 1e3,
        )
    };
    let (dq, dpil, dzf, ddec) = mid(&dp);
    let (pq, ppil, pzf, pdec) = mid(&pp);

    println!("Figure 13(b) — milestones within a frame (us from first packet)");
    println!("milestone        Agora     PipelineParallel");
    println!("queueing delay  {dq:>7.0}   {pq:>7.0}");
    println!("pilot done      {dpil:>7.0}   {ppil:>7.0}");
    println!("ZF done         {dzf:>7.0}   {pzf:>7.0}");
    println!("decode done     {ddec:>7.0}   {pdec:>7.0}");

    println!("\nFigure 13(a) — per-block span (us): time from block start to finish");
    println!("block   Agora     PP       PP/Agora");
    let zf_dp = dzf - dpil;
    let zf_pp = pzf - ppil;
    println!("ZF      {zf_dp:>7.0}  {zf_pp:>7.0}  {:>6.1}x", zf_pp / zf_dp.max(1.0));
    let tail_dp = ddec - dzf;
    let tail_pp = pdec - pzf;
    println!("ZF->dec {tail_dp:>7.0}  {tail_pp:>7.0}  {:>6.1}x", tail_pp / tail_dp.max(1.0));

    let rows = vec![
        format!("agora,{dq},{dpil},{dzf},{ddec}"),
        format!("pipeline,{pq},{ppil},{pzf},{pdec}"),
    ];
    let p = write_csv("fig13_breakdown", "design,queueing_us,pilot_us,zf_us,decode_us", &rows);
    println!("\nwrote {}", p.display());
    println!("expected shape: Agora's big win is ZF (paper: 8.8x faster — all 26");
    println!("cores attack the 75 ZF tasks vs 3 dedicated cores); the ZF->decode");
    println!("span is similar in both designs; PP has slightly lower queueing delay.");
}
