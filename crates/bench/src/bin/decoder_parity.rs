//! CI smoke: fixed-point decoder parity. Deterministic (fixed seeds),
//! fast (<1 s), exit code 1 on any violation — `scripts/ci.sh` runs it
//! after the test suite as a release-build cross-check of the decoding
//! plane's two invariants:
//!
//! 1. The `i8` decoder is bit-exact between the detected SIMD tier and
//!    the forced-scalar tier (same info bits, success flag, iterations).
//! 2. The `i8` plane agrees with the `f32` reference: clean codewords
//!    decode perfectly on both, and at operating SNR both land on the
//!    transmitted bits.

use agora_ldpc::{
    quantize_llrs, BaseGraphId, DecodeConfig, DecodeConfigI8, Decoder, DecoderI8, Encoder,
    RateMatch, DEFAULT_LLR_SCALE,
};
use agora_math::SimdTier;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The (base graph, Z) points the benches sweep, plus tail shapes that
/// exercise the scalar remainder of the Z-lane kernels.
const CASES: &[(BaseGraphId, usize)] = &[
    (BaseGraphId::Bg1, 384),
    (BaseGraphId::Bg1, 104),
    (BaseGraphId::Bg1, 64),
    (BaseGraphId::Bg2, 56),
    (BaseGraphId::Bg2, 36),
    (BaseGraphId::Bg1, 30),
];

fn awgn_llrs(tx: &[u8], snr_db: f32, rng: &mut StdRng) -> Vec<f32> {
    let sigma2 = 10.0f32.powf(-snr_db / 10.0);
    let sigma = sigma2.sqrt();
    tx.iter()
        .map(|&b| {
            let x = if b == 0 { 1.0f32 } else { -1.0 };
            let n: f32 = {
                let u1: f64 = rng.gen::<f64>().max(1e-12);
                let u2: f64 = rng.gen();
                ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
            };
            2.0 * (x + sigma * n) / sigma2
        })
        .collect()
}

fn main() {
    let mut failures = 0usize;
    let tier = SimdTier::detect();
    println!("decoder parity smoke (detected tier: {tier:?})");

    for &(bg, z) in CASES {
        let enc = Encoder::new(bg, z);
        let rm = RateMatch::for_rate(bg, z, 1.0 / 3.0);
        let mut dec_f32 = Decoder::new(bg, z);
        let mut dec_i8 = DecoderI8::new(bg, z);
        let mut dec_i8_scalar = DecoderI8::with_tier(bg, z, SimdTier::Scalar);
        let mut rng = StdRng::seed_from_u64(0xA60A + z as u64);
        let mut full_f32 = vec![0.0f32; dec_f32.codeword_len()];
        let mut full_i8 = vec![0i8; dec_i8.codeword_len()];

        for word in 0..8 {
            let info: Vec<u8> = (0..enc.info_len()).map(|_| rng.gen::<bool>() as u8).collect();
            let tx = rm.extract(&enc.encode(&info));
            // Word 0 is noiseless; the rest sit at operating SNR where
            // both planes must still land on the transmitted bits.
            let llrs = if word == 0 {
                tx.iter().map(|&b| if b == 0 { 12.0f32 } else { -12.0 }).collect()
            } else {
                awgn_llrs(&tx, 5.0, &mut rng)
            };
            rm.fill_llrs_into(&llrs, &mut full_f32);
            let mut tx_i8 = vec![0i8; llrs.len()];
            quantize_llrs(&llrs, &mut tx_i8, DEFAULT_LLR_SCALE);
            rm.fill_llrs_into(&tx_i8, &mut full_i8);

            let cfg_f32 = DecodeConfig {
                max_iters: 8,
                active_rows: Some(rm.active_rows()),
                ..Default::default()
            };
            let cfg_i8 = DecodeConfigI8 {
                max_iters: 8,
                active_rows: Some(rm.active_rows()),
                ..Default::default()
            };
            let rf = dec_f32.decode(&full_f32, &cfg_f32);
            let ri = dec_i8.decode(&full_i8, &cfg_i8);
            let rs = dec_i8_scalar.decode(&full_i8, &cfg_i8);

            if ri.info_bits != rs.info_bits
                || ri.success != rs.success
                || ri.iterations != rs.iterations
            {
                println!("FAIL {bg:?} Z={z} word {word}: i8 tiers diverge (detected vs scalar)");
                failures += 1;
            }
            if !rf.success || rf.info_bits != info {
                println!("FAIL {bg:?} Z={z} word {word}: f32 reference missed the codeword");
                failures += 1;
            }
            if !ri.success || ri.info_bits != info {
                println!("FAIL {bg:?} Z={z} word {word}: i8 plane missed the codeword");
                failures += 1;
            }
        }
        println!("  {bg:?} Z={z:<4} ok (8 words, clean + 5 dB)");
    }

    if failures > 0 {
        println!("decoder parity smoke: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("decoder parity smoke: OK");
}
