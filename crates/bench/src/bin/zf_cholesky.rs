//! Measured ZF solve comparison: Gauss-Jordan inverse vs Cholesky solve.
//!
//! PR 4's `gemm_simd` sweep showed the equalize GEMM at 3.6x but the
//! *full ZF task* at only 1.4x — the Gram product and detector product
//! vectorized while the Gauss-Jordan `K x K` inverse stayed serial scalar
//! code. This bench times the complete `pinv_into` chain (`H^H H`, solve,
//! detector product) for the PR 4 baseline (`PinvMethod::Direct`,
//! Gauss-Jordan) against the blocked Cholesky solve route
//! (`PinvMethod::Cholesky`), which factors the Gram matrix with
//! GEMM-tiled panel updates and solves `(H^H H) W = H^H` directly without
//! ever forming the inverse.
//!
//! The 64x16 row is the paper configuration; its Cholesky time feeds the
//! simulator calibration constant `agora_core::sim::MEASURED_ZF_NS`.
//! Writes `results/zf_cholesky.csv` and exits non-zero if the 64x16
//! speedup falls below the PR's >=3x acceptance floor.

use agora_bench::csv::write_csv;
use agora_math::simd::SimdTier;
use agora_math::{pinv_into, CMat, Cf32, PinvMethod, PinvScratch};
use std::time::Instant;

/// Timing trials per configuration; the minimum is reported (anything
/// above the minimum is scheduler or frequency noise).
const TRIALS: usize = 5;

/// Per-call nanoseconds for `pinv_into` with the given method.
fn time_pinv(
    h: &CMat,
    method: PinvMethod,
    s: &mut PinvScratch,
    out: &mut CMat,
    reps: usize,
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..TRIALS {
        let t0 = Instant::now();
        for _ in 0..reps {
            pinv_into(std::hint::black_box(h), method, s, out);
            std::hint::black_box(&out);
        }
        best = best.min(t0.elapsed().as_secs_f64() * 1e9 / reps as f64);
    }
    best
}

fn main() {
    let tier = SimdTier::detect();
    println!("ZF solve comparison (detected tier: {tier:?})");
    println!(
        "{:>8} {:>6} | {:>11} {:>11} {:>6} | {:>12}",
        "M", "K", "gj_ns", "chol_ns", "x", "max|dW|"
    );
    let mut rows = Vec::new();
    let mut paper_x = 0.0f64;
    let mut paper_chol = 0.0f64;
    for (m, k) in [(64usize, 16usize), (32, 8), (16, 4), (64, 15), (24, 7)] {
        let h = CMat::from_fn(m, k, |r, c| {
            let i = (r * k + c) as u64;
            Cf32::new(
                ((i * 2654435761 % 1000) as f32 / 1000.0) - 0.5,
                ((i * 40503 % 1000) as f32 / 1000.0) - 0.5,
            )
        });
        let mut out_gj = CMat::zeros(k, m);
        let mut out_ch = CMat::zeros(k, m);
        let reps = ((1usize << 24) / (m * k * k)).max(64);
        let mut s = PinvScratch::with_tier(m, k, tier);
        let gj = time_pinv(&h, PinvMethod::Direct, &mut s, &mut out_gj, reps);
        let ch = time_pinv(&h, PinvMethod::Cholesky, &mut s, &mut out_ch, reps);
        let x = gj / ch;
        // The two routes solve the same system; they must agree to f32
        // rounding (they associate differently, so not bit-exact).
        let diff = out_gj.max_abs_diff(&out_ch) as f64;
        println!("{m:>8} {k:>6} | {gj:>11.0} {ch:>11.0} {x:>5.1}x | {diff:>12.2e}");
        if diff > 1e-3 {
            println!("FAIL: Gauss-Jordan and Cholesky detectors diverge ({diff:.2e})");
            std::process::exit(1);
        }
        rows.push(format!("{m},{k},{gj:.0},{ch:.0},{x:.2}"));
        if (m, k) == (64, 16) {
            paper_x = x;
            paper_chol = ch;
        }
    }
    let p = write_csv("zf_cholesky", "m,k,gauss_jordan_ns,cholesky_ns,speedup", &rows);
    println!("\nwrote {}", p.display());
    println!("64x16 (paper config): full ZF task {paper_x:.1}x, Cholesky chain {paper_chol:.0} ns");
    // The PR's acceptance floor — fail loudly if the solve regresses.
    if paper_x < 3.0 {
        println!("FAIL: below the >=3x floor for the 64x16 ZF task");
        std::process::exit(1);
    }
}
