//! Measured FFT sweep: scalar vs AVX2, single vs batched execution.
//!
//! This is the evidence behind the SIMD FFT engine: per-transform wall
//! time for the pre-PR-equivalent scalar `FftPlan::execute` (separate
//! bit-reversal pass + scalar radix-2 butterflies), the AVX2 single
//! transform, and the AVX2 batched path (`execute_batch`, B transforms
//! advancing through each stage together). The n=2048 row is the paper
//! configuration and feeds the simulator's `fft_ns` calibration default
//! (`agora_core::sim::MEASURED_FFT_NS`). Writes `results/fft_simd.csv`.

use agora_bench::csv::write_csv;
use agora_fft::{Direction, FftBatchPlan, FftPlan};
use agora_math::simd::SimdTier;
use agora_math::Cf32;
use std::time::Instant;

/// Antennas per batch: the engine's per-symbol FFT run granularity, large
/// enough to amortize twiddle loads, small enough that the working set
/// (batch * n * 8 bytes) stays cache-resident at n=4096.
const BATCH: usize = 8;

fn signal(len: usize) -> Vec<Cf32> {
    (0..len)
        .map(|i| {
            let t = i as f32;
            Cf32::new((0.3 * t).sin() + 0.2, (0.7 * t).cos() - 0.1)
        })
        .collect()
}

/// Timing trials per configuration; the minimum is reported, which is the
/// robust estimator on a shared core (anything above the minimum is
/// scheduler or frequency noise, not the kernel under test).
const TRIALS: usize = 5;

/// Per-transform nanoseconds for `plan.execute` (copy-in + run, the
/// engine's real usage shape): best of [`TRIALS`] runs.
fn time_single(plan: &FftPlan, src: &[Cf32], reps: usize) -> f64 {
    let mut buf = src.to_vec();
    let mut best = f64::INFINITY;
    for _ in 0..TRIALS {
        let t0 = Instant::now();
        for _ in 0..reps {
            buf.copy_from_slice(src);
            plan.execute(&mut buf, Direction::Forward);
            std::hint::black_box(&buf);
        }
        best = best.min(t0.elapsed().as_secs_f64() * 1e9 / reps as f64);
    }
    best
}

/// Per-transform nanoseconds for the batched path: best of [`TRIALS`] runs.
fn time_batch(plan: &FftBatchPlan, src: &[Cf32], reps: usize) -> f64 {
    let mut buf = src.to_vec();
    let mut best = f64::INFINITY;
    for _ in 0..TRIALS {
        let t0 = Instant::now();
        for _ in 0..reps {
            buf.copy_from_slice(src);
            plan.execute(&mut buf, Direction::Forward);
            std::hint::black_box(&buf);
        }
        best = best.min(t0.elapsed().as_secs_f64() * 1e9 / (reps * plan.batch()) as f64);
    }
    best
}

fn main() {
    let tier = SimdTier::detect();
    println!("FFT SIMD sweep (detected tier: {tier:?}, batch B={BATCH})");
    println!(
        "{:>6} {:>14} {:>12} {:>12} {:>8} {:>8}",
        "n", "scalar_ns", "simd_ns", "batch_ns", "1x", "Bx"
    );
    let mut rows = Vec::new();
    let mut n2048 = (0.0f64, 0.0f64);
    for log2 in [6u32, 8, 10, 11, 12] {
        let n = 1usize << log2;
        let reps = ((1usize << 22) / n).max(64);
        let src = signal(n);
        let src_b = signal(n * BATCH);
        let scalar = time_single(&FftPlan::with_tier(n, SimdTier::Scalar), &src, reps);
        let simd = time_single(&FftPlan::with_tier(n, tier), &src, reps);
        let batch =
            time_batch(&FftBatchPlan::with_tier(n, BATCH, tier), &src_b, (reps / BATCH).max(16));
        let su1 = scalar / simd;
        let sub = scalar / batch;
        println!("{n:>6} {scalar:>14.0} {simd:>12.0} {batch:>12.0} {su1:>7.1}x {sub:>7.1}x");
        rows.push(format!("{n},{BATCH},{scalar:.0},{simd:.0},{batch:.0},{su1:.2},{sub:.2}"));
        if n == 2048 {
            n2048 = (su1, sub);
        }
    }
    let p = write_csv(
        "fft_simd",
        "n,batch,scalar_single_ns,simd_single_ns,simd_batch_per_fft_ns,speedup_single,speedup_batch",
        &rows,
    );
    println!("\nwrote {}", p.display());
    println!(
        "n=2048 (paper config): single {:.1}x, batched {:.1}x over the scalar plan",
        n2048.0, n2048.1
    );
    // The PR's acceptance floor — fail loudly if the kernels regress.
    if n2048.0 < 3.0 || n2048.1 < 5.0 {
        println!("FAIL: below the >=3x single / >=5x batched floor at n=2048");
        std::process::exit(1);
    }
}
