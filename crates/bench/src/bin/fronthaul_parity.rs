//! CI smoke: fronthaul delivery parity across I/O paths.
//! Deterministic (fixed payload patterns), fast (<1 s), exit code 1 on
//! any violation — `scripts/ci.sh` runs it after the test suite as a
//! release-build cross-check of the transport plane's contracts:
//!
//! * `send_batch`/`recv_batch` over the in-memory link deliver exactly
//!   the bytes the single-packet calls deliver, in order;
//! * the batched UDP loopback path (`sendmmsg`/`recvmmsg` when
//!   available, portable loop otherwise) delivers the same bytes, in
//!   order, with zero link errors;
//! * aggregated jumbo datagrams split back into byte-identical packets
//!   landing in recycled `PacketPool` slots, and every slot is back in
//!   the pool once the packets drop (no leaks);
//! * a plain single-packet send interoperates with an aggregated
//!   receiver.

use agora_fronthaul::{
    encode, Fronthaul, MemFronthaul, PacketBuf, PacketDir, PacketHeader, PacketPool, UdpFronthaul,
};
use std::collections::VecDeque;
use std::net::SocketAddr;
use std::process::exit;

fn packets(n: usize) -> Vec<PacketBuf> {
    (0..n)
        .map(|i| {
            let payload: Vec<u8> = (0..64 + (i * 7) % 320).map(|b| (b ^ i) as u8).collect();
            PacketBuf::from(encode(
                &PacketHeader {
                    frame: (i / 8) as u32,
                    symbol: (i % 8) as u16,
                    antenna: i as u16,
                    dir: PacketDir::Uplink,
                    cell: 0,
                    payload_len: payload.len() as u32,
                },
                &payload,
            ))
        })
        .collect()
}

fn check(ok: bool, what: &str) {
    if ok {
        println!("OK   {what}");
    } else {
        println!("FAIL {what}");
        exit(1);
    }
}

fn send_all(fh: &impl Fronthaul, pkts: &[PacketBuf]) {
    let mut outgoing: VecDeque<PacketBuf> = pkts.iter().cloned().collect();
    let mut spins = 0u32;
    while !outgoing.is_empty() {
        if fh.send_batch(&mut outgoing) == 0 {
            spins += 1;
            assert!(spins < 1_000_000, "send stalled");
            std::thread::yield_now();
        }
    }
}

fn recv_all(fh: &impl Fronthaul, n: usize) -> Vec<PacketBuf> {
    let mut got = Vec::with_capacity(n);
    for _ in 0..1_000_000 {
        let want = n - got.len();
        fh.recv_batch(&mut got, want);
        if got.len() == n {
            break;
        }
        std::thread::yield_now();
    }
    got
}

fn bytes_equal(reference: &[PacketBuf], got: &[PacketBuf]) -> bool {
    reference.len() == got.len() && reference.iter().zip(got).all(|(a, b)| a[..] == b[..])
}

fn udp_pair() -> (UdpFronthaul, UdpFronthaul) {
    let any: SocketAddr = "127.0.0.1:0".parse().unwrap();
    let mut tx = UdpFronthaul::new(any, any).expect("bind tx");
    let rx = UdpFronthaul::new(any, tx.local_addr().unwrap()).expect("bind rx");
    tx.set_peer(rx.local_addr().unwrap());
    (tx, rx)
}

fn main() {
    let reference = packets(48);

    // 1. In-memory link: batched calls vs single calls.
    let (tx, rx) = MemFronthaul::pair(64);
    send_all(&tx, &reference);
    let batched = recv_all(&rx, reference.len());
    for p in &reference {
        tx.send(p.clone()).expect("mem link sized for the burst");
    }
    let single: Vec<PacketBuf> = (0..reference.len()).map(|_| rx.recv().unwrap()).collect();
    check(bytes_equal(&reference, &batched), "mem batch == reference");
    check(bytes_equal(&batched, &single), "mem batch == mem single");

    // 2. Batched UDP loopback (mmsg or the portable fallback).
    let (tx, rx) = udp_pair();
    send_all(&tx, &reference);
    let got = recv_all(&rx, reference.len());
    check(bytes_equal(&reference, &got), "udp batch delivers identical bytes in order");
    check(
        tx.link_errors() == (0, 0) && rx.link_errors() == (0, 0),
        "udp batch round trip has zero link errors",
    );
    println!(
        "     (batched syscalls {})",
        if tx.batched_syscalls_active() { "active" } else { "unavailable; portable loop" }
    );

    // 3. Aggregated jumbo datagrams into pooled slots, then recycling.
    let pool = PacketPool::new(64, 2048);
    let (tx, rx) = udp_pair();
    let tx = tx.with_aggregation(16);
    let rx = rx.with_aggregation(16).with_pool(pool.clone());
    send_all(&tx, &reference);
    let got = recv_all(&rx, reference.len());
    check(bytes_equal(&reference, &got), "aggregated+pooled split is byte-identical");
    check(got.iter().all(|p| p.is_pooled()), "aggregated receives land in pool slots");
    drop(got);
    drop(rx);
    check(pool.available() == pool.capacity(), "every pool slot returned after packet drop");

    // 4. Plain sender into an aggregated receiver.
    let (tx, rx) = udp_pair();
    let rx = rx.with_aggregation(16);
    tx.send(reference[0].clone()).expect("loopback send");
    let got = recv_all(&rx, 1);
    check(bytes_equal(&reference[..1], &got), "plain datagram interoperates with aggregation");

    println!("fronthaul parity: all checks passed");
}
