//! Extension ablations beyond the paper's tables (DESIGN.md §5):
//!
//! 1. **Stale-precoder downlink early start** (§3.4.2) — the paper
//!    describes the mechanism but never isolates its benefit; we do.
//! 2. **Batch-size sweep** — the paper picks FFT batch 2 and demod
//!    batch 64 empirically; we sweep the space.
//! 3. **Layered vs flooding LDPC scheduling** — FlexRAN is layered; we
//!    implement both and measure the iteration/latency trade.

use agora_bench::csv::write_csv;
use agora_core::sim::{simulate, SimConfig};
use agora_ldpc::{BaseGraphId, DecodeConfig, Decoder, Encoder, RateMatch};
use agora_phy::frame::FrameSchedule;
use agora_phy::CellConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    let mut rows = Vec::new();

    // --- 1. Stale precoder -------------------------------------------------
    println!("Extension 1 — §3.4.2 stale-precoder downlink early start");
    let mut cell = CellConfig::emulated_rru(64, 16, 0);
    cell.schedule = FrameSchedule::downlink(1, 13);
    let mut cfg = SimConfig::new(cell.clone(), 21, 16);
    let off = simulate(&cfg);
    cfg.stale_precoder = true;
    let on = simulate(&cfg);
    let steady = |rep: &agora_core::sim::SimReport| {
        rep.latencies_ns[2..].iter().sum::<f64>() / (rep.latencies_ns.len() - 2) as f64 / 1e6
    };
    println!("  downlink latency without early start: {:.2} ms", steady(&off));
    println!("  downlink latency with    early start: {:.2} ms", steady(&on));
    println!("  -> the first symbols leave before this frame's ZF is ready\n");
    rows.push(format!("stale_precoder,off,{}", steady(&off)));
    rows.push(format!("stale_precoder,on,{}", steady(&on)));

    // --- 2. Batch-size sweep ----------------------------------------------
    println!("Extension 2 — batch-size sweep (64x16, 1 ms frame, 26 cores)");
    println!("  fft_batch demod_batch  median_ms");
    let cell = CellConfig::emulated_rru(64, 16, 13);
    for (fft_b, demod_b) in
        [(1usize, 8usize), (1, 64), (2, 64), (4, 64), (2, 8), (2, 16), (2, 128), (8, 256)]
    {
        let mut cfg = SimConfig::new(cell.clone(), 26, 12);
        cfg.batch.fft = fft_b;
        cfg.batch.demod = demod_b;
        let rep = simulate(&cfg);
        println!("  {fft_b:>9} {demod_b:>11}  {:>9.3}", rep.median_latency_ms());
        rows.push(format!("batch,{fft_b}x{demod_b},{}", rep.median_latency_ms()));
    }
    println!("  -> the paper's (2, 64) sits in the flat optimum\n");

    // --- 3. Layered vs flooding LDPC ---------------------------------------
    println!("Extension 3 — layered vs flooding LDPC decode (BG1, Z=104, R=1/3, 2 dB)");
    let z = 104;
    let enc = Encoder::new(BaseGraphId::Bg1, z);
    let rm = RateMatch::for_rate(BaseGraphId::Bg1, z, 1.0 / 3.0);
    let mut dec = Decoder::new(BaseGraphId::Bg1, z);
    let mut rng = StdRng::seed_from_u64(3);
    let blocks = 12;
    let sigma2 = 10.0f32.powf(-2.0 / 10.0);
    let mut results = Vec::new();
    for schedule in ["layered", "flooding"] {
        let mut iters_total = 0usize;
        let mut fails = 0usize;
        let mut elapsed = 0.0f64;
        for _ in 0..blocks {
            let info: Vec<u8> = (0..enc.info_len()).map(|_| rng.gen::<bool>() as u8).collect();
            let cw = enc.encode(&info);
            let llr: Vec<f32> = rm
                .extract(&cw)
                .iter()
                .map(|&b| {
                    let x = if b == 0 { 1.0f32 } else { -1.0 };
                    let u1: f64 = rng.gen::<f64>().max(1e-12);
                    let u2: f64 = rng.gen();
                    let n =
                        ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32;
                    2.0 * (x + sigma2.sqrt() * n) / sigma2
                })
                .collect();
            let full = rm.fill_llrs(&llr);
            let dc = DecodeConfig { max_iters: 20, ..Default::default() };
            let t0 = Instant::now();
            let res = if schedule == "layered" {
                dec.decode(&full, &dc)
            } else {
                dec.decode_flooding(&full, &dc)
            };
            elapsed += t0.elapsed().as_secs_f64();
            iters_total += res.iterations;
            if !res.success || res.info_bits != info {
                fails += 1;
            }
        }
        let mean_iters = iters_total as f64 / blocks as f64;
        let ms = elapsed * 1e3 / blocks as f64;
        println!(
            "  {schedule:<9} mean iterations {mean_iters:>5.1}, {ms:>6.2} ms/block, failures {fails}/{blocks}"
        );
        results.push((schedule, mean_iters));
        rows.push(format!("ldpc_schedule,{schedule},{mean_iters}"));
    }
    println!("  -> layered converges in roughly half the iterations, as expected\n");

    let p = write_csv("ext_ablations", "experiment,variant,value", &rows);
    println!("wrote {}", p.display());
}
