//! Figure 9: worst-user block error rate (BLER) vs number of client
//! uplink streams, 64-antenna base station, 64-QAM, rate-1/3 LDPC.
//!
//! The paper measures this over the air with a Skylark Faros array and
//! 17–26 dB pilot SNR; here the radio is a Rician LOS channel model
//! (DESIGN.md §3, substitution 5) with per-user SNR drawn from the same
//! range, pushed through the complete receive PHY (FFT, channel
//! estimation, ZF, equalization, demod, LDPC decode).

use agora_bench::csv::write_csv;
use agora_channel::{per_user_snrs, FadingModel};
use agora_core::{EngineConfig, InlineProcessor};
use agora_fronthaul::{RruConfig, RruEmulator};
use agora_ldpc::ErrorStats;
use agora_phy::CellConfig;

fn main() {
    // Frames per point: enough to resolve BLER down to ~1e-2 quickly;
    // increase for smoother floors.
    let frames: u32 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(20);
    println!("Figure 9 — worst-user BLER vs #users (64 antennas, 64-QAM, R=1/3)");
    println!("users  worst_bler  mean_bler  blocks   target=0.1");
    let mut rows = Vec::new();

    for num_users in [1usize, 2, 4, 6, 8] {
        // The paper's OTA cell: 64 antennas, 512-point FFT, 300 data
        // subcarriers, time-orthogonal ZC pilots, 4 ms frames.
        let cell = CellConfig::over_the_air(num_users, 14);
        cell.validate().expect("valid OTA cell");
        let snrs = per_user_snrs(num_users, 17.0, 26.0, 1000 + num_users as u64);
        let offsets: Vec<f32> = snrs.iter().map(|s| s - 26.0).collect();
        let mut rru = RruEmulator::new(
            cell.clone(),
            RruConfig {
                snr_db: 26.0,
                fading: FadingModel::Rician { k_db: 0.0 },
                user_snr_offsets_db: Some(offsets),
                seed: 42 + num_users as u64,
                ..Default::default()
            },
        );
        let mut cfg = EngineConfig::new(cell.clone(), 1);
        cfg.noise_power = rru.noise_power();
        // 300 data subcarriers: use a 4-wide demod block (must divide Q).
        cfg.demod_block = 4;
        let mut engine = InlineProcessor::new(cfg);

        let mut per_user = vec![ErrorStats::new(); num_users];
        for frame in 0..frames {
            let (packets, gt) = rru.generate_frame(frame);
            let res = engine.process_frame(frame, &packets);
            for symbol in cell.schedule.uplink_indices() {
                for (user, st) in per_user.iter_mut().enumerate() {
                    st.record(
                        &gt.info_bits[symbol][user],
                        &res.decoded[symbol][user],
                        res.decode_ok[symbol][user],
                    );
                }
            }
        }
        let worst = per_user.iter().map(|s| s.bler()).fold(0.0f64, f64::max);
        let mean = per_user.iter().map(|s| s.bler()).sum::<f64>() / num_users as f64;
        let blocks: u64 = per_user.iter().map(|s| s.blocks).sum();
        println!("{num_users:>5}  {worst:>10.4}  {mean:>9.4}  {blocks:>6}");
        rows.push(format!("{num_users},{worst},{mean},{blocks}"));
    }
    let p = write_csv("fig9_bler", "users,worst_bler,mean_bler,blocks", &rows);
    println!("\nwrote {}", p.display());
    println!("expected shape: BLER grows with spatial load but the worst user stays");
    println!("below the 10% 5G NR target through 8 streams (paper Figure 9).");
}
