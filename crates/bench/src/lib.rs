//! # agora-bench — experiment harness
//!
//! One binary per table/figure of the paper's evaluation (§6), plus
//! Criterion micro-benches for the kernels. Each binary prints the
//! paper's rows/series to stdout and writes CSV under `results/`.
//!
//! | target | reproduces |
//! |---|---|
//! | `fig6_latency` | Fig 6: latency & min cores vs frame length, UL+DL |
//! | `fig7_ccdf` | Fig 7: uplink latency CCDF, four MIMO configs |
//! | `fig8_scalability` | Fig 8: processing time & speedup vs cores |
//! | `fig9_bler` | Fig 9: worst-user BLER vs number of users |
//! | `table3_blocks` | Table 3: per-block cost breakdown |
//! | `fig10_datamove` | Fig 10: data movement vs cores / antennas |
//! | `fig11_sync` | Fig 11: synchronisation overhead vs antennas |
//! | `fig12_ldpc` | Fig 12: LDPC BER & decode time |
//! | `fig13_breakdown` | Fig 13: block latency + milestones, DP vs PP |
//! | `table4_ablation` | Table 4: optimisation ablations |
//! | `table5_simd` | Table 5: SIMD-tier sensitivity |
//! | `fronthaul_batch` | Fig 10 (I/O side): packets/s and intake-to-FFT latency, single vs batched vs aggregated+pooled UDP |
//! | `fronthaul_parity` | CI smoke: batch/single delivery parity, aggregation split, pool recycling |
//! | `fig8_cells` | Fig 8, deployment flavour: aggregate throughput vs cell count at a fixed total core budget |
//! | `deployment_parity` | CI smoke: multi-cell ledger reconciliation, demux counts, bit-identical vs standalone engines |
//!
//! The multi-core latency figures run on the calibrated discrete-event
//! simulator (`agora_core::sim`) because this machine exposes a single
//! core — see DESIGN.md §3 substitution 4. Kernel calibration
//! ([`calibrate`]) measures the real Rust kernels and feeds their costs
//! into the simulator.

pub mod calibrate;
pub mod csv;

pub use calibrate::{calibrate, Calibration};
