//! Tiny CSV writer for experiment outputs (kept dependency-free).

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Resolves the workspace-level `results/` directory, creating it if
/// needed.
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; results live at the repo root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let dir = root.join("results");
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes rows to `results/<name>.csv` with a header line.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> PathBuf {
    let path = results_dir().join(format!("{name}.csv"));
    let mut f = fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").unwrap();
    for r in rows {
        writeln!(f, "{r}").unwrap();
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_file_with_header_and_rows() {
        let p = write_csv("selftest", "a,b", &vec!["1,2".to_string(), "3,4".to_string()]);
        let content = fs::read_to_string(&p).unwrap();
        assert_eq!(content, "a,b\n1,2\n3,4\n");
        let _ = fs::remove_file(p);
    }
}
