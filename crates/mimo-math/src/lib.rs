//! # agora-math — complex linear algebra for massive MIMO baseband
//!
//! From-scratch replacement for the subset of Intel MKL that the Agora
//! paper (CoNEXT 2020) relies on:
//!
//! * [`complex`]: `Cf32`/`Cf64` scalar complex arithmetic.
//! * [`matrix`]: dense row-major complex matrices ([`CMat`]).
//! * [`gemm`]: generic, shape-specialised ("JIT"-analogue), and AVX2
//!   register-tiled complex GEMM/GEMV/Gram kernels behind runtime tier
//!   dispatch; all tiers are bit-identical.
//! * [`inverse`]: Gauss-Jordan inversion and LU solves.
//! * [`cholesky`]: Hermitian positive-definite factorisation.
//! * [`qr`]: modified Gram-Schmidt thin QR (the middle pseudo-inverse
//!   route: no Gram-matrix conditioning penalty, cheaper than SVD).
//! * [`svd`]: one-sided Jacobi thin SVD (the robust pseudo-inverse route).
//! * [`pinv`]: zero-forcing pseudo-inverse, both fast and robust paths.
//! * [`simd`]: runtime-dispatched AVX2 kernels for IQ conversion,
//!   streaming copies, and transposes, with scalar fallbacks.
//!
//! No allocation happens in the hot kernels; everything operates on
//! caller-provided slices.

pub mod cholesky;
pub mod complex;
pub mod gemm;
pub(crate) mod gemm_simd;
pub mod inverse;
pub mod matrix;
pub mod pinv;
pub mod qr;
pub mod simd;
pub mod svd;
#[cfg(test)]
pub(crate) mod testutil;

pub use cholesky::{CholScratch, Cholesky, NotPositiveDefinite};
pub use complex::{Cf32, Cf64};
pub use gemm::{
    caxpy, caxpy_scalar, caxpy_with_tier, gemm, gemm_fixed, gemm_scalar, gemm_with_tier, gemv,
    gemv_scalar, gemv_with_tier, gram, gram_accumulate, gram_accumulate_scalar,
    gram_accumulate_with_tier, gram_pair, gram_pair_with_tier, gram_reduce, gram_scalar,
    gram_with_tier, Gemm, GemmKernel,
};
pub use inverse::{invert, invert_into, solve, InvError};
pub use matrix::CMat;
pub use pinv::{
    cond_estimate, normalize_precoder, normalize_precoder_in_place, pinv, pinv_cholesky,
    pinv_direct, pinv_from_gram_slice_into, pinv_into, pinv_svd, PinvMethod, PinvScratch,
};
pub use qr::{qr, Qr};
pub use simd::SimdTier;
pub use svd::{svd, Svd};
