//! Thin singular value decomposition via one-sided Jacobi rotations.
//!
//! This is the "numerically robust" pseudo-inverse route that matrix
//! libraries such as MKL take for ill-conditioned channels (§4.2 of the
//! paper). It is roughly an order of magnitude slower than inverting the
//! small Gram matrix directly, which is exactly the gap Table 4's "matrix
//! inverse optimisation" row measures; we therefore keep this
//! implementation deliberately straightforward.
//!
//! One-sided Jacobi operates on the columns of `A` (`m x n`, `m >= n`):
//! it repeatedly applies complex plane rotations from the right until all
//! column pairs are orthogonal. The column norms then give the singular
//! values, the normalised columns give `U`, and the accumulated rotations
//! give `V`.

use crate::complex::Cf64;
use crate::matrix::CMat;

/// Thin SVD `A = U diag(s) V^H` with `U: m x n`, `s: n`, `V: n x n`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors (thin, `m x n`).
    pub u: CMat,
    /// Singular values in descending order.
    pub s: Vec<f32>,
    /// Right singular vectors (`n x n`).
    pub v: CMat,
}

/// Convergence threshold on the normalised off-diagonal inner product.
const TOL: f64 = 1e-12;
/// Iteration cap: a full sweep touches every column pair once; well-
/// conditioned MIMO-sized problems converge in < 10 sweeps.
const MAX_SWEEPS: usize = 60;

/// Computes the thin SVD of `a` (`m x n`, requires `m >= n`).
///
/// Internally accumulates in `f64` for stability and returns `f32`
/// factors. Singular values are sorted in descending order; columns of
/// `U`/`V` are permuted to match.
///
/// # Panics
/// Panics if `m < n`; transpose first for wide matrices.
pub fn svd(a: &CMat) -> Svd {
    let (m, n) = a.shape();
    assert!(m >= n, "one-sided Jacobi SVD requires m >= n (got {m}x{n})");

    // Working copy of A in f64, column-major for cheap column access.
    let mut w: Vec<Vec<Cf64>> =
        (0..n).map(|c| (0..m).map(|r| a[(r, c)].to_f64()).collect()).collect();
    // V starts as identity, column-major.
    let mut v: Vec<Vec<Cf64>> = (0..n)
        .map(|c| (0..n).map(|r| if r == c { Cf64::ONE } else { Cf64::ZERO }).collect())
        .collect();

    for _sweep in 0..MAX_SWEEPS {
        let mut converged = true;
        for p in 0..n {
            for q in p + 1..n {
                // Column inner products.
                let mut app = 0.0f64;
                let mut aqq = 0.0f64;
                let mut apq = Cf64::ZERO;
                for (&wp, &wq) in w[p].iter().zip(&w[q]) {
                    app += wp.norm_sqr();
                    aqq += wq.norm_sqr();
                    apq = wp.conj_mul(wq) + apq;
                }
                let off = apq.abs();
                if off <= TOL * (app * aqq).sqrt().max(f64::MIN_POSITIVE) {
                    continue;
                }
                converged = false;

                // Complex Jacobi rotation zeroing the (p, q) inner product.
                // Phase-align: let alpha = apq / |apq|.
                let alpha = Cf64::new(apq.re / off, apq.im / off);
                let tau = (aqq - app) / (2.0 * off);
                let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;

                // Columns p and q are mixed:
                //   wp' =  c*wp - s*conj(alpha)*wq
                //   wq' =  s*alpha*wp + c*wq
                let sa = alpha.scale(s);
                let sac = alpha.conj().scale(s);
                let (wlo, whi) = w.split_at_mut(q);
                for (ep, eq) in wlo[p].iter_mut().zip(whi[0].iter_mut()) {
                    let (wp, wq) = (*ep, *eq);
                    *ep = wp.scale(c) - sac * wq;
                    *eq = sa * wp + wq.scale(c);
                }
                let (vlo, vhi) = v.split_at_mut(q);
                for (ep, eq) in vlo[p].iter_mut().zip(vhi[0].iter_mut()) {
                    let (vp, vq) = (*ep, *eq);
                    *ep = vp.scale(c) - sac * vq;
                    *eq = sa * vp + vq.scale(c);
                }
            }
        }
        if converged {
            break;
        }
    }

    // Extract singular values (column norms) and normalise U.
    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<f64> =
        (0..n).map(|c| w[c].iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()).collect();
    order.sort_by(|&i, &j| norms[j].partial_cmp(&norms[i]).unwrap());

    let mut u = CMat::zeros(m, n);
    let mut vm = CMat::zeros(n, n);
    let mut s_out = Vec::with_capacity(n);
    for (new_c, &old_c) in order.iter().enumerate() {
        let norm = norms[old_c];
        s_out.push(norm as f32);
        let inv = if norm > 0.0 { 1.0 / norm } else { 0.0 };
        for r in 0..m {
            u[(r, new_c)] = w[old_c][r].scale(inv).to_f32();
        }
        for r in 0..n {
            vm[(r, new_c)] = v[old_c][r].to_f32();
        }
    }
    Svd { u, s: s_out, v: vm }
}

impl Svd {
    /// Reconstructs `U diag(s) V^H`; used in tests and residual checks.
    pub fn reconstruct(&self) -> CMat {
        let n = self.s.len();
        let mut us = self.u.clone();
        for c in 0..n {
            for r in 0..us.rows() {
                us[(r, c)] = us[(r, c)].scale(self.s[c]);
            }
        }
        us.matmul(&self.v.hermitian())
    }

    /// Moore-Penrose pseudo-inverse `V diag(1/s) U^H`, zeroing singular
    /// values below `rcond * s_max`.
    pub fn pinv(&self, rcond: f32) -> CMat {
        let smax = self.s.first().copied().unwrap_or(0.0);
        let cutoff = rcond * smax;
        let n = self.s.len();
        let mut vs = self.v.clone();
        for c in 0..n {
            let inv = if self.s[c] > cutoff { 1.0 / self.s[c] } else { 0.0 };
            for r in 0..vs.rows() {
                vs[(r, c)] = vs[(r, c)].scale(inv);
            }
        }
        vs.matmul(&self.u.hermitian())
    }

    /// 2-norm condition number `s_max / s_min`; infinite if rank-deficient.
    pub fn cond(&self) -> f32 {
        match (self.s.first(), self.s.last()) {
            (Some(&max), Some(&min)) if min > 0.0 => max / min,
            _ => f32::INFINITY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Cf32;

    fn rand_mat(m: usize, n: usize, seed: u64) -> CMat {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        CMat::from_fn(m, n, |_, _| {
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 11) as f32 / (1u64 << 53) as f32) - 0.25
            };
            Cf32::new(next(), next())
        })
    }

    #[test]
    fn reconstruction_error_small() {
        let a = rand_mat(12, 5, 1);
        let d = svd(&a);
        assert!(d.reconstruct().max_abs_diff(&a) < 1e-4);
    }

    #[test]
    fn singular_values_sorted_nonnegative() {
        let a = rand_mat(16, 8, 2);
        let d = svd(&a);
        for w in d.s.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert!(d.s.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn u_columns_orthonormal() {
        let a = rand_mat(10, 4, 3);
        let d = svd(&a);
        let g = d.u.hermitian().matmul(&d.u);
        assert!(g.max_abs_diff(&CMat::identity(4)) < 1e-4);
    }

    #[test]
    fn v_unitary() {
        let a = rand_mat(9, 6, 4);
        let d = svd(&a);
        let g = d.v.hermitian().matmul(&d.v);
        assert!(g.max_abs_diff(&CMat::identity(6)) < 1e-4);
    }

    #[test]
    fn diagonal_matrix_svd() {
        let mut a = CMat::zeros(4, 3);
        a[(0, 0)] = Cf32::real(3.0);
        a[(1, 1)] = Cf32::real(1.0);
        a[(2, 2)] = Cf32::real(2.0);
        let d = svd(&a);
        assert!((d.s[0] - 3.0).abs() < 1e-4);
        assert!((d.s[1] - 2.0).abs() < 1e-4);
        assert!((d.s[2] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn pinv_satisfies_moore_penrose() {
        let a = rand_mat(8, 4, 5);
        let p = svd(&a).pinv(1e-6);
        // A A+ A == A
        let aa = a.matmul(&p).matmul(&a);
        assert!(aa.max_abs_diff(&a) < 1e-3);
        // A+ A A+ == A+
        let pp = p.matmul(&a).matmul(&p);
        assert!(pp.max_abs_diff(&p) < 1e-3);
    }

    #[test]
    fn pinv_of_rank_deficient() {
        // Two identical columns -> rank 1.
        let col = rand_mat(6, 1, 7);
        let a = CMat::from_fn(6, 2, |r, _| col[(r, 0)]);
        let d = svd(&a);
        assert!(d.s[1] < 1e-4 * d.s[0].max(1e-20));
        let p = d.pinv(1e-4);
        // Moore-Penrose still holds for the rank-deficient case.
        let aa = a.matmul(&p).matmul(&a);
        assert!(aa.max_abs_diff(&a) < 1e-3);
    }

    #[test]
    fn cond_of_identity_is_one() {
        let d = svd(&CMat::identity(5));
        assert!((d.cond() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn mimo_sized_svd_converges() {
        // The paper's target shape: 64 antennas x 16 users.
        let a = rand_mat(64, 16, 11);
        let d = svd(&a);
        assert!(d.reconstruct().max_abs_diff(&a) < 1e-3);
        assert!(d.cond().is_finite());
    }
}
