//! Complex matrix inversion and linear solves.
//!
//! Zero-forcing needs the inverse of the small `K x K` Gram matrix
//! `H^H H`. The paper's key observation (§4.2) is that this inverse is
//! *cheap* — ~16 µs for K=16 — because K is small even when M is large;
//! the expensive, numerically robust SVD route is unnecessary for
//! well-conditioned channels. This module provides the direct route:
//! Gauss-Jordan elimination with partial pivoting ([`invert`]) and an LU
//! solve ([`solve`]).

use crate::complex::Cf32;
use crate::matrix::CMat;

/// Errors from direct inversion/solving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvError {
    /// The matrix is not square.
    NotSquare,
    /// A pivot smaller than the singularity threshold was encountered; the
    /// matrix is singular or numerically near-singular.
    Singular {
        /// Elimination step at which the pivot collapsed.
        step: usize,
    },
}

impl core::fmt::Display for InvError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            InvError::NotSquare => write!(f, "matrix is not square"),
            InvError::Singular { step } => {
                write!(f, "matrix is singular (pivot collapsed at step {step})")
            }
        }
    }
}

impl std::error::Error for InvError {}

/// Relative singularity threshold for an `n x n` elimination whose
/// largest initial element magnitude is `scale`: pivots at or below
/// `n * eps_f32 * scale` are treated as singular.
///
/// The previous guard compared against `1e-12 * scale`, which is *below
/// f32 resolution* (machine epsilon ~1.2e-7) — it could only fire on
/// exactly-zero pivots, so near-singular Gram matrices (e.g. two users
/// with almost-identical channels) sailed through and produced garbage
/// detectors instead of degrading to the SVD route.
#[inline]
fn pivot_threshold(n: usize, scale: f32) -> f32 {
    (n as f32) * f32::EPSILON * scale.max(f32::MIN_POSITIVE)
}

/// Inverts a square complex matrix by Gauss-Jordan elimination with
/// partial (row) pivoting.
///
/// This is the paper's "matrix inverse optimisation": invert the small
/// `K x K` matrix directly instead of taking an SVD pseudo-inverse of the
/// full `M x K` channel (compare [`crate::pinv::pinv_svd`]).
pub fn invert(a: &CMat) -> Result<CMat, InvError> {
    if a.rows() != a.cols() {
        return Err(InvError::NotSquare);
    }
    let n = a.rows();
    let mut work = CMat::zeros(n, n);
    let mut out = CMat::zeros(n, n);
    invert_into(a, &mut work, &mut out)?;
    Ok(out)
}

/// [`invert`] into caller-owned storage: `work` is clobbered with the
/// eliminated copy of `a`, `out` receives the inverse. Neither allocates,
/// so hot paths (the per-subcarrier-group ZF task) can reuse scratch
/// matrices across calls.
///
/// # Panics
/// Panics if `work` or `out` is not the same shape as `a`.
pub fn invert_into(a: &CMat, work: &mut CMat, out: &mut CMat) -> Result<(), InvError> {
    if a.rows() != a.cols() {
        return Err(InvError::NotSquare);
    }
    let n = a.rows();
    assert_eq!(work.shape(), (n, n), "work matrix shape mismatch");
    assert_eq!(out.shape(), (n, n), "output matrix shape mismatch");
    if n == 0 {
        return Ok(());
    }
    // Augmented [A | I] across the two buffers, eliminated in place.
    work.copy_from(a);
    let m = work;
    let inv = out;
    inv.as_mut_slice().fill(Cf32::ZERO);
    for i in 0..n {
        inv[(i, i)] = Cf32::ONE;
    }
    let scale = m.as_slice().iter().map(|z| z.norm_sqr()).fold(0.0f32, f32::max).sqrt();
    let thr = pivot_threshold(n, scale);

    for col in 0..n {
        // Partial pivot: find the largest magnitude in this column at or
        // below the diagonal.
        let mut pivot_row = col;
        let mut pivot_mag = m[(col, col)].norm_sqr();
        for r in col + 1..n {
            let mag = m[(r, col)].norm_sqr();
            if mag > pivot_mag {
                pivot_mag = mag;
                pivot_row = r;
            }
        }
        if pivot_mag.sqrt() <= thr {
            return Err(InvError::Singular { step: col });
        }
        if pivot_row != col {
            swap_rows(m, col, pivot_row);
            swap_rows(inv, col, pivot_row);
        }
        // Normalise the pivot row.
        let pinv = m[(col, col)].inv();
        for z in m.row_mut(col).iter_mut() {
            *z *= pinv;
        }
        for z in inv.row_mut(col).iter_mut() {
            *z *= pinv;
        }
        // Eliminate the column from all other rows.
        for r in 0..n {
            if r == col {
                continue;
            }
            let factor = m[(r, col)];
            if factor == Cf32::ZERO {
                continue;
            }
            for c in 0..n {
                let sub_m = m[(col, c)];
                let sub_i = inv[(col, c)];
                m[(r, c)] -= factor * sub_m;
                inv[(r, c)] -= factor * sub_i;
            }
        }
    }
    Ok(())
}

/// Solves `A X = B` for `X` via LU decomposition with partial pivoting,
/// without forming `A^{-1}` explicitly.
pub fn solve(a: &CMat, b: &CMat) -> Result<CMat, InvError> {
    if a.rows() != a.cols() {
        return Err(InvError::NotSquare);
    }
    let n = a.rows();
    assert_eq!(b.rows(), n, "RHS row count must match A");
    let mut lu = a.clone();
    let mut perm: Vec<usize> = (0..n).collect();
    let scale = lu.as_slice().iter().map(|z| z.norm_sqr()).fold(0.0f32, f32::max).sqrt();
    let thr = pivot_threshold(n, scale);

    for col in 0..n {
        let mut pivot_row = col;
        let mut pivot_mag = lu[(col, col)].norm_sqr();
        for r in col + 1..n {
            let mag = lu[(r, col)].norm_sqr();
            if mag > pivot_mag {
                pivot_mag = mag;
                pivot_row = r;
            }
        }
        if pivot_mag.sqrt() <= thr {
            return Err(InvError::Singular { step: col });
        }
        if pivot_row != col {
            swap_rows(&mut lu, col, pivot_row);
            perm.swap(col, pivot_row);
        }
        let pinv = lu[(col, col)].inv();
        for r in col + 1..n {
            let l = lu[(r, col)] * pinv;
            lu[(r, col)] = l;
            for c in col + 1..n {
                let u = lu[(col, c)];
                lu[(r, c)] -= l * u;
            }
        }
    }

    // Apply permutation to B, then forward/back substitution per column.
    let ncols = b.cols();
    let mut x = CMat::zeros(n, ncols);
    for c in 0..ncols {
        // y = L^{-1} P b
        let mut y = vec![Cf32::ZERO; n];
        for i in 0..n {
            let mut acc = b[(perm[i], c)];
            for (j, &yj) in y.iter().enumerate().take(i) {
                acc -= lu[(i, j)] * yj;
            }
            y[i] = acc;
        }
        // x = U^{-1} y
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in i + 1..n {
                acc -= lu[(i, j)] * x[(j, c)];
            }
            x[(i, c)] = acc * lu[(i, i)].inv();
        }
    }
    Ok(x)
}

fn swap_rows(m: &mut CMat, a: usize, b: usize) {
    if a == b {
        return;
    }
    let cols = m.cols();
    let s = m.as_mut_slice();
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    let (head, tail) = s.split_at_mut(hi * cols);
    head[lo * cols..lo * cols + cols].swap_with_slice(&mut tail[..cols]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{rand_diag_dominant as well_conditioned, rand_mat as rand_rect};

    fn rand_mat(n: usize, seed: u64) -> CMat {
        rand_rect(n, n, seed)
    }

    #[test]
    fn invert_identity() {
        let i = CMat::identity(5);
        let inv = invert(&i).unwrap();
        assert!(inv.max_abs_diff(&i) < 1e-6);
    }

    #[test]
    fn invert_diagonal() {
        let d =
            CMat::from_fn(
                3,
                3,
                |r, c| {
                    if r == c {
                        Cf32::new(0.0, (r + 1) as f32)
                    } else {
                        Cf32::ZERO
                    }
                },
            );
        let inv = invert(&d).unwrap();
        let prod = d.matmul(&inv);
        assert!(prod.max_abs_diff(&CMat::identity(3)) < 1e-6);
    }

    #[test]
    fn invert_random_16x16() {
        let a = well_conditioned(16, 42);
        let inv = invert(&a).unwrap();
        let prod = a.matmul(&inv);
        assert!(prod.max_abs_diff(&CMat::identity(16)) < 1e-3);
        let prod2 = inv.matmul(&a);
        assert!(prod2.max_abs_diff(&CMat::identity(16)) < 1e-3);
    }

    #[test]
    fn invert_into_matches_invert_and_reuses_scratch() {
        let mut work = CMat::zeros(8, 8);
        let mut out = CMat::zeros(8, 8);
        for seed in [7u64, 21, 63] {
            let a = well_conditioned(8, seed);
            invert_into(&a, &mut work, &mut out).unwrap();
            let expect = invert(&a).unwrap();
            assert!(out.max_abs_diff(&expect) < 1e-6, "seed {seed}");
        }
    }

    #[test]
    fn invert_singular_fails() {
        let mut a = CMat::zeros(3, 3);
        a[(0, 0)] = Cf32::ONE;
        a[(1, 1)] = Cf32::ONE;
        // Row 2 is all zeros -> singular.
        match invert(&a) {
            Err(InvError::Singular { .. }) => {}
            other => panic!("expected singular, got {other:?}"),
        }
    }

    #[test]
    fn invert_rejects_non_square() {
        let a = CMat::zeros(2, 3);
        assert_eq!(invert(&a), Err(InvError::NotSquare));
    }

    #[test]
    fn invert_requires_pivoting() {
        // Zero on the leading diagonal forces a row swap.
        let a = CMat::from_slice(2, 2, &[Cf32::ZERO, Cf32::ONE, Cf32::ONE, Cf32::ZERO]);
        let inv = invert(&a).unwrap();
        assert!(a.matmul(&inv).max_abs_diff(&CMat::identity(2)) < 1e-6);
    }

    #[test]
    fn solve_matches_invert() {
        let a = well_conditioned(8, 7);
        let b = rand_mat(8, 9);
        let x = solve(&a, &b).unwrap();
        let x_ref = invert(&a).unwrap().matmul(&b);
        assert!(x.max_abs_diff(&x_ref) < 1e-3);
        // Residual check: A x == b.
        assert!(a.matmul(&x).max_abs_diff(&b) < 1e-3);
    }

    #[test]
    fn solve_identity_returns_rhs() {
        let i = CMat::identity(4);
        let b = rand_mat(4, 11);
        let x = solve(&i, &b).unwrap();
        assert!(x.max_abs_diff(&b) < 1e-6);
    }

    #[test]
    fn invert_empty_matrix() {
        let a = CMat::zeros(0, 0);
        assert!(invert(&a).unwrap().is_empty());
    }

    /// Near-singular Gram matrix of a nearly-duplicate-user channel: two
    /// columns differing by ~1e-6. The old `1e-12` guard (below f32
    /// resolution) let this through and produced a garbage inverse; the
    /// relative threshold must reject it in both elimination routines.
    #[test]
    fn near_singular_gram_is_rejected() {
        let m = 16;
        let base = rand_rect(m, 1, 77);
        let h = CMat::from_fn(m, 2, |r, c| {
            let mut v = base[(r, 0)];
            if c == 1 {
                v += Cf32::new(1e-6 * (r as f32 + 1.0), -1e-6);
            }
            v
        });
        let g = h.gram();
        match invert(&g) {
            Err(InvError::Singular { .. }) => {}
            Ok(inv) => panic!(
                "near-singular Gram inverted, max entry {}",
                inv.max_abs_diff(&CMat::zeros(2, 2))
            ),
            other => panic!("unexpected {other:?}"),
        }
        match solve(&g, &CMat::identity(2)) {
            Err(InvError::Singular { .. }) => {}
            other => panic!("solve accepted near-singular Gram: {other:?}"),
        }
    }

    /// Well-scaled but *small-magnitude* matrices must still invert: the
    /// threshold is relative to the matrix scale, not absolute.
    #[test]
    fn tiny_scale_well_conditioned_still_inverts() {
        let a = well_conditioned(8, 5).scale(1e-6);
        let inv = invert(&a).unwrap();
        assert!(a.matmul(&inv).max_abs_diff(&CMat::identity(8)) < 1e-3);
    }
}
