//! Runtime-dispatched SIMD kernels for data-movement-heavy primitives.
//!
//! The paper uses AVX-512 intrinsics for three things outside the matrix
//! library: converting integer IQ samples to floats, demodulation, and
//! matrix transposes; and non-temporal (streaming) stores to skip the
//! cache-coherence traffic when a block's output is consumed by cores
//! other than the producer (§4.1). This module provides those primitives
//! with scalar fallbacks and `std::arch` AVX2 fast paths selected at
//! runtime, so the same binary runs on any x86-64 (and the scalar paths on
//! any architecture). The demodulation SIMD lives in `agora-phy` next to
//! its tables; these are the shared data-plane kernels.

use crate::complex::Cf32;

/// SIMD instruction-set tier available/selected at runtime. Table 5 of the
/// paper compares AVX2 and AVX-512 servers; we reproduce it by pinning the
/// dispatch tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdTier {
    /// Pure scalar loops (portable baseline).
    Scalar,
    /// 256-bit AVX2 kernels.
    Avx2,
}

impl SimdTier {
    /// The best tier the current CPU supports.
    pub fn detect() -> SimdTier {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return SimdTier::Avx2;
            }
        }
        SimdTier::Scalar
    }

    /// [`Self::detect`] computed once per process. Plan constructors and
    /// auto-dispatching kernels use this so hot loops never repeat the
    /// feature probe.
    pub fn cached() -> SimdTier {
        use std::sync::OnceLock;
        static CACHE: OnceLock<SimdTier> = OnceLock::new();
        *CACHE.get_or_init(SimdTier::detect)
    }
}

/// Converts packed `i16` IQ components to `f32`, scaling by `1/scale`
/// (e.g. 32768 for Q15 samples). The RRU sends fixed-point samples; the
/// baseband computes in float, so this runs on every received byte.
pub fn i16_to_f32(src: &[i16], dst: &mut [f32], scale: f32, tier: SimdTier) {
    assert_eq!(src.len(), dst.len());
    match tier {
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => unsafe { i16_to_f32_avx2(src, dst, scale) },
        _ => i16_to_f32_scalar(src, dst, scale),
    }
}

/// Scalar reference conversion.
pub fn i16_to_f32_scalar(src: &[i16], dst: &mut [f32], scale: f32) {
    let inv = 1.0 / scale;
    for (d, &s) in dst.iter_mut().zip(src.iter()) {
        *d = s as f32 * inv;
    }
}

/// AVX2 conversion: 16 samples per iteration via `vpmovsxwd` + `vcvtdq2ps`.
///
/// # Safety
/// Caller must ensure the CPU supports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn i16_to_f32_avx2(src: &[i16], dst: &mut [f32], scale: f32) {
    use core::arch::x86_64::*;
    let inv = _mm256_set1_ps(1.0 / scale);
    let n = src.len();
    let chunks = n / 8;
    for i in 0..chunks {
        let p = src.as_ptr().add(i * 8);
        let v16 = _mm_loadu_si128(p as *const __m128i);
        let v32 = _mm256_cvtepi16_epi32(v16);
        let vf = _mm256_mul_ps(_mm256_cvtepi32_ps(v32), inv);
        _mm256_storeu_ps(dst.as_mut_ptr().add(i * 8), vf);
    }
    i16_to_f32_scalar(&src[chunks * 8..], &mut dst[chunks * 8..], scale);
}

/// Converts `f32` back to saturating `i16` with scaling (downlink TX path).
pub fn f32_to_i16(src: &[f32], dst: &mut [i16], scale: f32, tier: SimdTier) {
    assert_eq!(src.len(), dst.len());
    match tier {
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => unsafe { f32_to_i16_avx2(src, dst, scale) },
        _ => f32_to_i16_scalar(src, dst, scale),
    }
}

/// Scalar reference conversion with saturation.
pub fn f32_to_i16_scalar(src: &[f32], dst: &mut [i16], scale: f32) {
    for (d, &s) in dst.iter_mut().zip(src.iter()) {
        let v = (s * scale).round();
        *d = v.clamp(i16::MIN as f32, i16::MAX as f32) as i16;
    }
}

/// AVX2 float-to-i16 with packed saturation.
///
/// # Safety
/// Caller must ensure the CPU supports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn f32_to_i16_avx2(src: &[f32], dst: &mut [i16], scale: f32) {
    use core::arch::x86_64::*;
    let vs = _mm256_set1_ps(scale);
    let n = src.len();
    let chunks = n / 16;
    for i in 0..chunks {
        let a = _mm256_mul_ps(_mm256_loadu_ps(src.as_ptr().add(i * 16)), vs);
        let b = _mm256_mul_ps(_mm256_loadu_ps(src.as_ptr().add(i * 16 + 8)), vs);
        let ia = _mm256_cvtps_epi32(a);
        let ib = _mm256_cvtps_epi32(b);
        // packs saturates to i16 but interleaves 128-bit lanes; permute back.
        let packed = _mm256_packs_epi32(ia, ib);
        let fixed = _mm256_permute4x64_epi64(packed, 0b11011000);
        _mm256_storeu_si256(dst.as_mut_ptr().add(i * 16) as *mut __m256i, fixed);
    }
    f32_to_i16_scalar(&src[chunks * 16..], &mut dst[chunks * 16..], scale);
}

/// Copies complex samples with *streaming* (non-temporal) stores when the
/// tier allows, bypassing the cache. Producers whose output is consumed by
/// other cores use this to avoid coherence traffic — the paper's §4.1
/// "non-temporal stores" optimisation (Table 4 row 3 toggles it off).
pub fn stream_copy(src: &[Cf32], dst: &mut [Cf32], tier: SimdTier) {
    assert_eq!(src.len(), dst.len());
    match tier {
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => unsafe { stream_copy_avx(src, dst) },
        _ => dst.copy_from_slice(src),
    }
}

/// Streaming copy with `movntps`. Handles unaligned prologue/epilogue with
/// regular stores.
///
/// # Safety
/// Caller must ensure the CPU supports AVX (implied by AVX2).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn stream_copy_avx(src: &[Cf32], dst: &mut [Cf32]) {
    use core::arch::x86_64::*;
    let n_floats = src.len() * 2;
    let sp = src.as_ptr() as *const f32;
    let dp = dst.as_mut_ptr() as *mut f32;
    // Align destination to 32 bytes for the streaming stores.
    let mut i = 0usize;
    while i < n_floats && !(dp.add(i) as usize).is_multiple_of(32) {
        *dp.add(i) = *sp.add(i);
        i += 1;
    }
    while i + 8 <= n_floats {
        let v = _mm256_loadu_ps(sp.add(i));
        _mm256_stream_ps(dp.add(i), v);
        i += 8;
    }
    while i < n_floats {
        *dp.add(i) = *sp.add(i);
        i += 1;
    }
    _mm_sfence();
}

/// Out-of-place transpose of a row-major `rows x cols` matrix of complex
/// samples (`dst` becomes `cols x rows`). Blocked for cache friendliness;
/// this is the "matrix transpose" kernel the paper vectorises, used when
/// re-laying antenna-major FFT output into subcarrier-major blocks. The
/// AVX2 tier routes full 8x8 tiles through an in-register microkernel.
pub fn transpose(src: &[Cf32], rows: usize, cols: usize, dst: &mut [Cf32], tier: SimdTier) {
    assert_eq!(src.len(), rows * cols);
    assert_eq!(dst.len(), rows * cols);
    match tier {
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => unsafe { transpose_avx2(src, rows, cols, dst) },
        _ => transpose_scalar(src, rows, cols, dst),
    }
}

/// Scalar reference transpose (cache-blocked).
pub fn transpose_scalar(src: &[Cf32], rows: usize, cols: usize, dst: &mut [Cf32]) {
    assert_eq!(src.len(), rows * cols);
    assert_eq!(dst.len(), rows * cols);
    const B: usize = 8; // 8 complex = one cache line per row slice
    for rb in (0..rows).step_by(B) {
        for cb in (0..cols).step_by(B) {
            let rmax = (rb + B).min(rows);
            let cmax = (cb + B).min(cols);
            for r in rb..rmax {
                for c in cb..cmax {
                    dst[c * rows + r] = src[r * cols + c];
                }
            }
        }
    }
}

/// AVX2 transpose: interior 8x8 tiles go through the in-register
/// microkernel; the ragged right/bottom edges fall back to scalar moves.
///
/// # Safety
/// Caller must ensure the CPU supports AVX2 and that `src`/`dst` are
/// `rows * cols` elements.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn transpose_avx2(src: &[Cf32], rows: usize, cols: usize, dst: &mut [Cf32]) {
    const B: usize = 8;
    let rfull = rows - rows % B;
    let cfull = cols - cols % B;
    for rb in (0..rfull).step_by(B) {
        for cb in (0..cfull).step_by(B) {
            transpose_8x8_avx2(
                src.as_ptr().add(rb * cols + cb),
                cols,
                dst.as_mut_ptr().add(cb * rows + rb),
                rows,
            );
        }
    }
    for r in 0..rfull {
        for c in cfull..cols {
            dst[c * rows + r] = src[r * cols + c];
        }
    }
    for r in rfull..rows {
        for c in 0..cols {
            dst[c * rows + r] = src[r * cols + c];
        }
    }
}

/// In-register 8x8 `Cf32` transpose. A complex sample is 8 bytes, so a
/// 4x4 sub-tile is exactly four `__m256d` registers and transposes with
/// `unpacklo/hi_pd` + `permute2f128_pd`; the 8x8 tile is four such 4x4
/// transposes with the off-diagonal sub-tiles swapped. No scalar
/// element moves — 16 loads, 32 shuffles, 16 stores per tile.
///
/// # Safety
/// Caller must ensure the CPU supports AVX2, `src` points at an 8x8 tile
/// of a matrix with row stride `src_stride`, and `dst` at an 8x8 tile
/// with row stride `dst_stride`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn transpose_8x8_avx2(
    src: *const Cf32,
    src_stride: usize,
    dst: *mut Cf32,
    dst_stride: usize,
) {
    // dst sub-tile (bc, br) receives the transpose of src sub-tile (br, bc).
    for (br, bc) in [(0usize, 0usize), (0, 4), (4, 0), (4, 4)] {
        transpose_4x4_avx2(
            src.add(br * src_stride + bc),
            src_stride,
            dst.add(bc * dst_stride + br),
            dst_stride,
        );
    }
}

/// 4x4 `Cf32` in-register transpose (each row one `__m256d`). Shared with
/// the GEMV panel-packing step in `gemm_simd`.
///
/// # Safety
/// Same contract as [`transpose_8x8_avx2`] with 4x4 tiles.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn transpose_4x4_avx2(
    src: *const Cf32,
    src_stride: usize,
    dst: *mut Cf32,
    dst_stride: usize,
) {
    use core::arch::x86_64::*;
    // Treat each Cf32 as one f64 lane; we only move bits, never do math.
    let r0 = _mm256_loadu_pd(src as *const f64);
    let r1 = _mm256_loadu_pd(src.add(src_stride) as *const f64);
    let r2 = _mm256_loadu_pd(src.add(2 * src_stride) as *const f64);
    let r3 = _mm256_loadu_pd(src.add(3 * src_stride) as *const f64);
    let t0 = _mm256_unpacklo_pd(r0, r1); // [s00 s10 s02 s12]
    let t1 = _mm256_unpackhi_pd(r0, r1); // [s01 s11 s03 s13]
    let t2 = _mm256_unpacklo_pd(r2, r3); // [s20 s30 s22 s32]
    let t3 = _mm256_unpackhi_pd(r2, r3); // [s21 s31 s23 s33]
    let c0 = _mm256_permute2f128_pd(t0, t2, 0x20); // [s00 s10 s20 s30]
    let c1 = _mm256_permute2f128_pd(t1, t3, 0x20); // [s01 s11 s21 s31]
    let c2 = _mm256_permute2f128_pd(t0, t2, 0x31); // [s02 s12 s22 s32]
    let c3 = _mm256_permute2f128_pd(t1, t3, 0x31); // [s03 s13 s23 s33]
    _mm256_storeu_pd(dst as *mut f64, c0);
    _mm256_storeu_pd(dst.add(dst_stride) as *mut f64, c1);
    _mm256_storeu_pd(dst.add(2 * dst_stride) as *mut f64, c2);
    _mm256_storeu_pd(dst.add(3 * dst_stride) as *mut f64, c3);
}

/// Out-of-place conjugate transpose (`dst = src^H`, `cols x rows`). Same
/// tiling as [`transpose`]; conjugation is a sign-bit flip fused into the
/// tile stores, so the result is bit-exact on every tier (pure data
/// movement, no arithmetic). This is the Hermitian kernel behind the ZF
/// pseudo-inverse's `H^H` operand.
pub fn conj_transpose(src: &[Cf32], rows: usize, cols: usize, dst: &mut [Cf32], tier: SimdTier) {
    assert_eq!(src.len(), rows * cols);
    assert_eq!(dst.len(), rows * cols);
    match tier {
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => unsafe { conj_transpose_avx2(src, rows, cols, dst) },
        _ => conj_transpose_scalar(src, rows, cols, dst),
    }
}

/// Scalar reference conjugate transpose (cache-blocked).
pub fn conj_transpose_scalar(src: &[Cf32], rows: usize, cols: usize, dst: &mut [Cf32]) {
    assert_eq!(src.len(), rows * cols);
    assert_eq!(dst.len(), rows * cols);
    const B: usize = 8;
    for rb in (0..rows).step_by(B) {
        for cb in (0..cols).step_by(B) {
            let rmax = (rb + B).min(rows);
            let cmax = (cb + B).min(cols);
            for r in rb..rmax {
                for c in cb..cmax {
                    dst[c * rows + r] = src[r * cols + c].conj();
                }
            }
        }
    }
}

/// AVX2 conjugate transpose: full 8x8 tiles through the in-register
/// microkernel with the sign flip applied on the transposed columns;
/// ragged edges fall back to scalar conjugate moves.
///
/// # Safety
/// Caller must ensure the CPU supports AVX2 and that `src`/`dst` are
/// `rows * cols` elements.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn conj_transpose_avx2(src: &[Cf32], rows: usize, cols: usize, dst: &mut [Cf32]) {
    const B: usize = 8;
    let rfull = rows - rows % B;
    let cfull = cols - cols % B;
    for rb in (0..rfull).step_by(B) {
        for cb in (0..cfull).step_by(B) {
            for (br, bc) in [(0usize, 0usize), (0, 4), (4, 0), (4, 4)] {
                conj_transpose_4x4_avx2(
                    src.as_ptr().add((rb + br) * cols + cb + bc),
                    cols,
                    dst.as_mut_ptr().add((cb + bc) * rows + rb + br),
                    rows,
                );
            }
        }
    }
    for r in 0..rfull {
        for c in cfull..cols {
            dst[c * rows + r] = src[r * cols + c].conj();
        }
    }
    for r in rfull..rows {
        for c in 0..cols {
            dst[c * rows + r] = src[r * cols + c].conj();
        }
    }
}

/// [`transpose_4x4_avx2`] with conjugation fused into the stores: a
/// `Cf32` viewed as one f64 lane has the imaginary part in the upper
/// 32 bits, so the f64 sign bit (bit 63) *is* the imaginary sign bit and
/// one XOR against `-0.0` per register conjugates four samples.
///
/// # Safety
/// Same contract as [`transpose_4x4_avx2`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn conj_transpose_4x4_avx2(
    src: *const Cf32,
    src_stride: usize,
    dst: *mut Cf32,
    dst_stride: usize,
) {
    use core::arch::x86_64::*;
    let flip = _mm256_set1_pd(-0.0);
    let r0 = _mm256_loadu_pd(src as *const f64);
    let r1 = _mm256_loadu_pd(src.add(src_stride) as *const f64);
    let r2 = _mm256_loadu_pd(src.add(2 * src_stride) as *const f64);
    let r3 = _mm256_loadu_pd(src.add(3 * src_stride) as *const f64);
    let t0 = _mm256_unpacklo_pd(r0, r1);
    let t1 = _mm256_unpackhi_pd(r0, r1);
    let t2 = _mm256_unpacklo_pd(r2, r3);
    let t3 = _mm256_unpackhi_pd(r2, r3);
    let c0 = _mm256_permute2f128_pd(t0, t2, 0x20);
    let c1 = _mm256_permute2f128_pd(t1, t3, 0x20);
    let c2 = _mm256_permute2f128_pd(t0, t2, 0x31);
    let c3 = _mm256_permute2f128_pd(t1, t3, 0x31);
    _mm256_storeu_pd(dst as *mut f64, _mm256_xor_pd(c0, flip));
    _mm256_storeu_pd(dst.add(dst_stride) as *mut f64, _mm256_xor_pd(c1, flip));
    _mm256_storeu_pd(dst.add(2 * dst_stride) as *mut f64, _mm256_xor_pd(c2, flip));
    _mm256_storeu_pd(dst.add(3 * dst_stride) as *mut f64, _mm256_xor_pd(c3, flip));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_returns_some_tier() {
        let t = SimdTier::detect();
        assert!(t == SimdTier::Scalar || t == SimdTier::Avx2);
    }

    #[test]
    fn i16_conversion_scalar_matches_simd() {
        let src: Vec<i16> = (0..103).map(|i| (i * 517 % 32768) as i16 - 16384).collect();
        let mut a = vec![0.0f32; src.len()];
        let mut b = vec![0.0f32; src.len()];
        i16_to_f32(&src, &mut a, 32768.0, SimdTier::Scalar);
        i16_to_f32(&src, &mut b, 32768.0, SimdTier::detect());
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-7);
        }
    }

    #[test]
    fn f32_to_i16_roundtrip() {
        let orig: Vec<i16> = (0..97).map(|i| (i * 613 % 30000) as i16 - 15000).collect();
        let mut f = vec![0.0f32; orig.len()];
        i16_to_f32(&orig, &mut f, 32768.0, SimdTier::detect());
        let mut back = vec![0i16; orig.len()];
        f32_to_i16(&f, &mut back, 32768.0, SimdTier::detect());
        assert_eq!(orig, back);
    }

    #[test]
    fn f32_to_i16_saturates() {
        let src = [2.0f32, -2.0, 0.5];
        let mut dst = [0i16; 3];
        f32_to_i16(&src, &mut dst, 32768.0, SimdTier::Scalar);
        assert_eq!(dst[0], i16::MAX);
        assert_eq!(dst[1], i16::MIN);
        let mut dst_simd = [0i16; 3];
        f32_to_i16(&src, &mut dst_simd, 32768.0, SimdTier::detect());
        // SIMD path may differ by at most 1 LSB at the saturation boundary.
        assert!((dst[2] - dst_simd[2]).abs() <= 1);
    }

    #[test]
    fn stream_copy_matches_memcpy() {
        let src: Vec<Cf32> = (0..333).map(|i| Cf32::new(i as f32, -(i as f32))).collect();
        let mut dst = vec![Cf32::ZERO; src.len()];
        stream_copy(&src, &mut dst, SimdTier::detect());
        assert_eq!(src, dst);
    }

    #[test]
    fn transpose_roundtrip() {
        let rows = 13;
        let cols = 22;
        let src: Vec<Cf32> =
            (0..rows * cols).map(|i| Cf32::new(i as f32, 2.0 * i as f32)).collect();
        let mut t = vec![Cf32::ZERO; src.len()];
        let mut back = vec![Cf32::ZERO; src.len()];
        transpose(&src, rows, cols, &mut t, SimdTier::detect());
        transpose(&t, cols, rows, &mut back, SimdTier::detect());
        assert_eq!(src, back);
    }

    #[test]
    fn transpose_full_tiles_match_scalar() {
        // 16x24 is entirely 8x8 tiles: every element goes through the
        // in-register microkernel on the AVX2 tier.
        let rows = 16;
        let cols = 24;
        let src: Vec<Cf32> =
            (0..rows * cols).map(|i| Cf32::new(i as f32, -0.5 * i as f32)).collect();
        let mut a = vec![Cf32::ZERO; src.len()];
        let mut b = vec![Cf32::ZERO; src.len()];
        transpose_scalar(&src, rows, cols, &mut a);
        transpose(&src, rows, cols, &mut b, SimdTier::detect());
        assert_eq!(a, b);
    }

    #[test]
    fn transpose_element_mapping() {
        let src: Vec<Cf32> = (0..6).map(|i| Cf32::real(i as f32)).collect();
        let mut dst = vec![Cf32::ZERO; 6];
        transpose(&src, 2, 3, &mut dst, SimdTier::detect());
        // src is [[0,1,2],[3,4,5]]; dst should be [[0,3],[1,4],[2,5]].
        let expect = [0.0, 3.0, 1.0, 4.0, 2.0, 5.0];
        for (z, &e) in dst.iter().zip(expect.iter()) {
            assert_eq!(z.re, e);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn simd_conversion_equals_scalar(src in proptest::collection::vec(any::<i16>(), 0..512)) {
            let mut a = vec![0.0f32; src.len()];
            let mut b = vec![0.0f32; src.len()];
            i16_to_f32_scalar(&src, &mut a, 32768.0);
            i16_to_f32(&src, &mut b, 32768.0, SimdTier::detect());
            prop_assert_eq!(a, b);
        }

        #[test]
        fn transpose_is_involutive(rows in 1usize..32, cols in 1usize..32) {
            let src: Vec<Cf32> = (0..rows * cols).map(|i| Cf32::new(i as f32, 0.5 * i as f32)).collect();
            let mut t = vec![Cf32::ZERO; src.len()];
            let mut back = vec![Cf32::ZERO; src.len()];
            transpose(&src, rows, cols, &mut t, SimdTier::detect());
            transpose(&t, cols, rows, &mut back, SimdTier::detect());
            prop_assert_eq!(src, back);
        }

        #[test]
        fn transpose_simd_equals_scalar(rows in 1usize..40, cols in 1usize..40) {
            // Shapes straddle the 8x8 tile boundary both ways, so the
            // microkernel interior and the ragged edge paths both run.
            let src: Vec<Cf32> = (0..rows * cols).map(|i| Cf32::new(i as f32, -(i as f32))).collect();
            let mut a = vec![Cf32::ZERO; src.len()];
            let mut b = vec![Cf32::ZERO; src.len()];
            transpose_scalar(&src, rows, cols, &mut a);
            transpose(&src, rows, cols, &mut b, SimdTier::detect());
            prop_assert_eq!(a, b);
        }

        #[test]
        fn conj_transpose_simd_equals_scalar(rows in 1usize..40, cols in 1usize..40) {
            let src: Vec<Cf32> = (0..rows * cols)
                .map(|i| Cf32::new(0.25 * i as f32 - 3.0, 7.0 - 0.5 * i as f32))
                .collect();
            let mut a = vec![Cf32::ZERO; src.len()];
            let mut b = vec![Cf32::ZERO; src.len()];
            conj_transpose_scalar(&src, rows, cols, &mut a);
            conj_transpose(&src, rows, cols, &mut b, SimdTier::detect());
            prop_assert_eq!(a, b);
        }

        #[test]
        fn conj_transpose_is_conj_of_transpose(rows in 1usize..24, cols in 1usize..24) {
            let src: Vec<Cf32> = (0..rows * cols).map(|i| Cf32::new(i as f32, 1.0 + i as f32)).collect();
            let mut t = vec![Cf32::ZERO; src.len()];
            let mut h = vec![Cf32::ZERO; src.len()];
            transpose(&src, rows, cols, &mut t, SimdTier::detect());
            conj_transpose(&src, rows, cols, &mut h, SimdTier::detect());
            let tc: Vec<Cf32> = t.iter().map(|z| z.conj()).collect();
            prop_assert_eq!(tc, h);
        }
    }
}
